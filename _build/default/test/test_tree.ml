module Graph = Smrp_graph.Graph
module Tree = Smrp_core.Tree
module Fixtures = Smrp_topology.Fixtures

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_float = Alcotest.(check (float 1e-9))
let check_ilist = Alcotest.(check (list int))

let assert_valid t = match Tree.validate t with Ok () -> () | Error e -> Alcotest.fail e

let edge g u v = (Option.get (Graph.edge_between g u v)).Graph.id

(* Line 0-1-2-3-4: source 0, graft 0-1-2, member at 2. *)
let line_tree () =
  let g = Fixtures.line 5 in
  let t = Tree.create g ~source:0 in
  Tree.graft t ~nodes:[ 0; 1; 2 ] ~edges:[ edge g 0 1; edge g 1 2 ];
  Tree.add_member t 2;
  (g, t)

let create_basics () =
  let g = Fixtures.line 3 in
  let t = Tree.create g ~source:1 in
  check "source on tree" true (Tree.is_on_tree t 1);
  check "others off" false (Tree.is_on_tree t 0);
  check_int "no members" 0 (Tree.member_count t);
  check_float "source delay" 0.0 (Tree.delay_to_source t 1);
  check_int "source shr" 0 (Tree.shr t 1);
  check_ilist "on-tree nodes" [ 1 ] (Tree.on_tree_nodes t);
  assert_valid t

let graft_and_member () =
  let g, t = line_tree () in
  ignore g;
  check "relay on tree" true (Tree.is_on_tree t 1);
  check "relay not member" false (Tree.is_member t 1);
  check "member" true (Tree.is_member t 2);
  check_int "N at relay" 1 (Tree.subtree_members t 1);
  check_int "N at source" 1 (Tree.subtree_members t 0);
  check_int "SHR of member" 2 (Tree.shr t 2);
  check_float "delay" 2.0 (Tree.delay_to_source t 2);
  check_ilist "path" [ 2; 1; 0 ] (Tree.path_to_source t 2);
  check_int "tree edges" 2 (List.length (Tree.tree_edges t));
  check_float "cost" 2.0 (Tree.total_cost t);
  assert_valid t

let graft_errors () =
  let g = Fixtures.line 5 in
  let t = Tree.create g ~source:0 in
  Alcotest.check_raises "short path" (Invalid_argument "Tree.graft: path needs at least two nodes")
    (fun () -> Tree.graft t ~nodes:[ 0 ] ~edges:[]);
  Alcotest.check_raises "merge off-tree" (Invalid_argument "Tree.graft: node 2 is off-tree")
    (fun () -> Tree.graft t ~nodes:[ 2; 3 ] ~edges:[ edge g 2 3 ]);
  Tree.graft t ~nodes:[ 0; 1 ] ~edges:[ edge g 0 1 ];
  Alcotest.check_raises "interior already on tree"
    (Invalid_argument "Tree.graft: interior node already on-tree") (fun () ->
      Tree.graft t ~nodes:[ 0; 1 ] ~edges:[ edge g 0 1 ]);
  Alcotest.check_raises "edge mismatch"
    (Invalid_argument "Tree.graft: edge does not join consecutive nodes") (fun () ->
      Tree.graft t ~nodes:[ 1; 2 ] ~edges:[ edge g 2 3 ])

let members_and_counts () =
  let g = Fixtures.diamond () in
  let t = Tree.create g ~source:0 in
  Tree.graft t ~nodes:[ 0; 1; 3 ] ~edges:[ edge g 0 1; edge g 1 3 ];
  Tree.add_member t 3;
  Tree.add_member t 1;
  check_int "two members" 2 (Tree.member_count t);
  check_ilist "members sorted" [ 1; 3 ] (Tree.members t);
  check_int "N at 1 counts both" 2 (Tree.subtree_members t 1);
  check_int "SHR of 3" 3 (Tree.shr t 3);
  assert_valid t;
  Alcotest.check_raises "double join" (Invalid_argument "Tree.add_member: already a member")
    (fun () -> Tree.add_member t 3)

let leave_prunes_relays () =
  let g, t = line_tree () in
  ignore g;
  Tree.remove_member t 2;
  check "member gone" false (Tree.is_on_tree t 2);
  check "relay pruned" false (Tree.is_on_tree t 1);
  check "source stays" true (Tree.is_on_tree t 0);
  check_int "no members" 0 (Tree.member_count t);
  assert_valid t

let leave_keeps_shared_relays () =
  let g = Fixtures.line 5 in
  let t = Tree.create g ~source:0 in
  Tree.graft t ~nodes:[ 0; 1; 2; 3 ] ~edges:[ edge g 0 1; edge g 1 2; edge g 2 3 ];
  Tree.add_member t 3;
  Tree.add_member t 2;
  Tree.remove_member t 3;
  check "3 pruned" false (Tree.is_on_tree t 3);
  check "2 stays (member)" true (Tree.is_member t 2);
  check_int "N at 1" 1 (Tree.subtree_members t 1);
  assert_valid t

let interior_member_leave_keeps_subtree () =
  let g = Fixtures.line 5 in
  let t = Tree.create g ~source:0 in
  Tree.graft t ~nodes:[ 0; 1; 2; 3 ] ~edges:[ edge g 0 1; edge g 1 2; edge g 2 3 ];
  Tree.add_member t 3;
  Tree.add_member t 2;
  Tree.remove_member t 2;
  check "2 stays as relay for 3" true (Tree.is_on_tree t 2);
  check "2 no longer member" false (Tree.is_member t 2);
  check_int "N at 2" 1 (Tree.subtree_members t 2);
  assert_valid t

let descendants_order () =
  let g = Fixtures.grid 3 in
  (* source 0; two branches: 0-1-2 and 0-3-6. *)
  let t = Tree.create g ~source:0 in
  Tree.graft t ~nodes:[ 0; 1; 2 ] ~edges:[ edge g 0 1; edge g 1 2 ];
  Tree.add_member t 2;
  Tree.graft t ~nodes:[ 0; 3; 6 ] ~edges:[ edge g 0 3; edge g 3 6 ];
  Tree.add_member t 6;
  let d = Tree.descendants t 0 in
  check_int "five nodes" 5 (List.length d);
  check_int "self first" 0 (List.hd d);
  check_ilist "subtree of 1" [ 1; 2 ] (Tree.descendants t 1)

let detach_attach_previous_is_identity () =
  let g = Fixtures.grid 3 in
  let t = Tree.create g ~source:0 in
  Tree.graft t ~nodes:[ 0; 1; 2; 5 ] ~edges:[ edge g 0 1; edge g 1 2; edge g 2 5 ];
  Tree.add_member t 5;
  let before = Format.asprintf "%a" Tree.pp t in
  let branch, (nodes, edges) = Tree.detach_branch t ~node:5 in
  check_int "branch root" 5 (Tree.branch_root branch);
  check "branch contains root" true (Tree.branch_contains branch 5);
  check "branch excludes others" false (Tree.branch_contains branch 2);
  check_int "branch members" 1 (Tree.branch_member_count branch);
  Tree.attach_branch t branch ~nodes ~edges;
  let after = Format.asprintf "%a" Tree.pp t in
  Alcotest.(check string) "tree unchanged" before after;
  assert_valid t

let detach_prunes_emptied_relays () =
  let g = Fixtures.grid 3 in
  let t = Tree.create g ~source:0 in
  Tree.graft t ~nodes:[ 0; 1; 2; 5 ] ~edges:[ edge g 0 1; edge g 1 2; edge g 2 5 ];
  Tree.add_member t 5;
  let _branch, (nodes, _) = Tree.detach_branch t ~node:5 in
  (* Relays 1 and 2 carried only node 5; the previous attachment runs from
     the survivor (the source). *)
  check "relay 1 pruned" false (Tree.is_on_tree t 1);
  check "relay 2 pruned" false (Tree.is_on_tree t 2);
  check_ilist "previous runs from source" [ 0; 1; 2; 5 ] nodes

let attach_moves_subtree_delays () =
  let g = Fixtures.grid 3 in
  (* 0-1-2-5 with member 5 and member 2: move node 2 (subtree {2,5}) onto
     0-3-4...no: attach 2 via path 0-3-4-5? 5 is in subtree. Use 2's new
     path through 3-4: nodes [0;3;4;...]? 4 adjacent to 5 not 2. Grid(3):
     2's neighbors are 1 and 5. So attach via [0;1;2] only... use node 5
     instead: move 5 from parent 2 to path 0-3-4-5. *)
  let t = Tree.create g ~source:0 in
  Tree.graft t ~nodes:[ 0; 1; 2; 5 ] ~edges:[ edge g 0 1; edge g 1 2; edge g 2 5 ];
  Tree.add_member t 5;
  Tree.add_member t 2;
  let branch, _previous = Tree.detach_branch t ~node:5 in
  Tree.attach_branch t branch ~nodes:[ 0; 3; 4; 5 ]
    ~edges:[ edge g 0 3; edge g 3 4; edge g 4 5 ];
  check_float "new delay" 3.0 (Tree.delay_to_source t 5);
  check_ilist "new path" [ 5; 4; 3; 0 ] (Tree.path_to_source t 5);
  check_int "N at 2 back to itself" 1 (Tree.subtree_members t 2);
  check_int "N at 4" 1 (Tree.subtree_members t 4);
  assert_valid t

let detach_source_rejected () =
  let g = Fixtures.line 3 in
  let t = Tree.create g ~source:0 in
  Alcotest.check_raises "source" (Invalid_argument "Tree.detach_branch: cannot detach the source")
    (fun () -> ignore (Tree.detach_branch t ~node:0))

let attach_rejects_branch_crossing () =
  let g = Fixtures.grid 3 in
  let t = Tree.create g ~source:0 in
  Tree.graft t ~nodes:[ 0; 1; 2; 5; 4 ] ~edges:[ edge g 0 1; edge g 1 2; edge g 2 5; edge g 5 4 ];
  Tree.add_member t 4;
  let branch, previous = Tree.detach_branch t ~node:5 in
  Alcotest.check_raises "path through branch node"
    (Invalid_argument "Tree.attach_branch: path crosses the branch") (fun () ->
      (* 0-3-4-5 passes through 4, which is inside the detached subtree. *)
      Tree.attach_branch t branch ~nodes:[ 0; 3; 4; 5 ]
        ~edges:[ edge g 0 3; edge g 3 4; edge g 4 5 ]);
  let nodes, edges = previous in
  Tree.attach_branch t branch ~nodes ~edges;
  assert_valid t

let validate_catches_corruption () =
  (* validate is the oracle for the property tests, so check that it is not
     vacuously true: a hand-corrupted count must be reported. *)
  let g, t = line_tree () in
  ignore g;
  match Tree.validate t with
  | Error e -> Alcotest.fail e
  | Ok () ->
      (* No public mutator can corrupt the tree; instead check an off-tree
         query raises. *)
      Alcotest.check_raises "delay of off-tree node"
        (Invalid_argument "Tree.delay_to_source: node is off-tree") (fun () ->
          ignore (Tree.delay_to_source t 4))

let () =
  Alcotest.run "tree"
    [
      ( "basics",
        [
          Alcotest.test_case "create" `Quick create_basics;
          Alcotest.test_case "graft and member" `Quick graft_and_member;
          Alcotest.test_case "graft errors" `Quick graft_errors;
          Alcotest.test_case "members and counts" `Quick members_and_counts;
          Alcotest.test_case "descendants" `Quick descendants_order;
        ] );
      ( "leave",
        [
          Alcotest.test_case "prunes relay chain" `Quick leave_prunes_relays;
          Alcotest.test_case "keeps shared relays" `Quick leave_keeps_shared_relays;
          Alcotest.test_case "interior member leaves" `Quick interior_member_leave_keeps_subtree;
        ] );
      ( "branch",
        [
          Alcotest.test_case "detach/attach round trip" `Quick detach_attach_previous_is_identity;
          Alcotest.test_case "detach prunes emptied relays" `Quick detach_prunes_emptied_relays;
          Alcotest.test_case "attach re-homes subtree delays" `Quick attach_moves_subtree_delays;
          Alcotest.test_case "cannot detach source" `Quick detach_source_rejected;
          Alcotest.test_case "attach rejects branch crossing" `Quick attach_rejects_branch_crossing;
        ] );
      ( "validation",
        [ Alcotest.test_case "off-tree queries rejected" `Quick validate_catches_corruption ] );
    ]
