module Rng = Smrp_rng.Rng
module Graph = Smrp_graph.Graph
module Connectivity = Smrp_graph.Connectivity
module Waxman = Smrp_topology.Waxman
module Transit_stub = Smrp_topology.Transit_stub
module Fixtures = Smrp_topology.Fixtures

(* Property tests run with a pinned PRNG state so failures are
   reproducible run over run. *)
let qcheck_case t = QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| 424242 |]) t

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_float = Alcotest.(check (float 1e-9))

(* -- Waxman ------------------------------------------------------------ *)

let waxman_connected () =
  for seed = 1 to 10 do
    let t = Waxman.generate (Rng.create seed) ~n:60 ~alpha:0.15 ~beta:0.2 in
    check "connected" true (Connectivity.is_connected t.Waxman.graph)
  done

let waxman_deterministic () =
  let a = Waxman.generate (Rng.create 5) ~n:50 ~alpha:0.2 ~beta:0.2 in
  let b = Waxman.generate (Rng.create 5) ~n:50 ~alpha:0.2 ~beta:0.2 in
  check_int "same edge count" (Graph.edge_count a.Waxman.graph) (Graph.edge_count b.Waxman.graph);
  check "same positions" true (a.Waxman.positions = b.Waxman.positions)

let waxman_node_count () =
  let t = Waxman.generate (Rng.create 1) ~n:37 ~alpha:0.3 ~beta:0.3 in
  check_int "node count" 37 (Graph.node_count t.Waxman.graph);
  check_int "positions" 37 (Array.length t.Waxman.positions)

let waxman_alpha_monotone () =
  let degree alpha =
    Waxman.measured_average_degree (Rng.create 7) ~n:80 ~alpha ~beta:0.2 ~samples:5
  in
  check "denser with larger alpha" true (degree 0.1 < degree 0.4)

let waxman_min_delay () =
  let t = Waxman.generate (Rng.create 2) ~n:50 ~alpha:0.3 ~beta:0.3 in
  Graph.iter_edges
    (fun e -> check "delay floored" true (e.Graph.delay >= Waxman.min_delay))
    t.Waxman.graph

let waxman_unit_delays () =
  let t = Waxman.generate ~link_delay:`Unit (Rng.create 3) ~n:40 ~alpha:0.2 ~beta:0.2 in
  Graph.iter_edges (fun e -> check_float "unit" 1.0 e.Graph.delay) t.Waxman.graph

let waxman_uniform_delays () =
  let t = Waxman.generate ~link_delay:(`Uniform (2.0, 9.0)) (Rng.create 3) ~n:40 ~alpha:0.2 ~beta:0.2 in
  Graph.iter_edges
    (fun e -> check "in range" true (e.Graph.delay >= 2.0 && e.Graph.delay <= 9.0))
    t.Waxman.graph

let waxman_rejects_bad_params () =
  Alcotest.check_raises "bad alpha" (Invalid_argument "Waxman.generate: alpha out of (0, 1]")
    (fun () -> ignore (Waxman.generate (Rng.create 1) ~n:10 ~alpha:1.5 ~beta:0.2))

let waxman_calibration () =
  let alpha =
    Waxman.calibrate_alpha (Rng.create 11) ~n:100 ~beta:0.2 ~target_degree:6.0
  in
  let measured =
    Waxman.measured_average_degree (Rng.create 13) ~n:100 ~alpha ~beta:0.2 ~samples:5
  in
  check "calibrated within 25%" true (abs_float (measured -. 6.0) < 1.5)

(* -- Transit-stub ------------------------------------------------------ *)

let ts_structure () =
  let t = Transit_stub.generate (Rng.create 4) Transit_stub.default_params in
  let p = Transit_stub.default_params in
  let transit_total = p.Transit_stub.transit_domains * p.Transit_stub.transit_nodes_per_domain in
  let stubs = transit_total * p.Transit_stub.stubs_per_transit_node in
  check_int "stub count" stubs t.Transit_stub.stub_count;
  check_int "node count" (transit_total + (stubs * p.Transit_stub.stub_nodes))
    (Graph.node_count t.Transit_stub.graph);
  check_int "transit nodes" transit_total (List.length (Transit_stub.transit_nodes t));
  check "connected" true (Connectivity.is_connected t.Transit_stub.graph)

let ts_gateways_and_agents () =
  let t = Transit_stub.generate (Rng.create 5) Transit_stub.default_params in
  for d = 0 to t.Transit_stub.stub_count - 1 do
    let gw = t.Transit_stub.stub_gateway.(d) in
    let attach = t.Transit_stub.stub_attach.(d) in
    (match t.Transit_stub.roles.(gw) with
    | Transit_stub.Transit _ -> ()
    | Transit_stub.Stub _ -> Alcotest.fail "gateway must be transit");
    (match t.Transit_stub.roles.(attach) with
    | Transit_stub.Stub d' -> check_int "attach in own stub" d d'
    | Transit_stub.Transit _ -> Alcotest.fail "attach must be stub");
    check "access link exists" true (Graph.mem_edge t.Transit_stub.graph gw attach)
  done

let ts_stub_partition () =
  let t = Transit_stub.generate (Rng.create 6) Transit_stub.default_params in
  let total =
    List.init t.Transit_stub.stub_count (fun d -> List.length (Transit_stub.nodes_of_stub t d))
    |> List.fold_left ( + ) 0
  in
  check_int "stubs partition the non-transit nodes"
    (Graph.node_count t.Transit_stub.graph - List.length (Transit_stub.transit_nodes t))
    total

let ts_inter_domain_links () =
  let p = { Transit_stub.default_params with Transit_stub.transit_domains = 3 } in
  let t = Transit_stub.generate (Rng.create 8) p in
  check_int "one link per consecutive pair" 2 (Array.length t.Transit_stub.inter_domain_links);
  Array.iteri
    (fun i (eid, a, b) ->
      let e = Graph.edge t.Transit_stub.graph eid in
      check "edge endpoints match" true
        ((e.Graph.u = a && e.Graph.v = b) || (e.Graph.u = b && e.Graph.v = a));
      (match (t.Transit_stub.roles.(a), t.Transit_stub.roles.(b)) with
      | Transit_stub.Transit da, Transit_stub.Transit db ->
          check_int "left endpoint domain" i da;
          check_int "right endpoint domain" (i + 1) db
      | _ -> Alcotest.fail "inter-domain endpoints must be transit"))
    t.Transit_stub.inter_domain_links

let ts_rejects_bad_params () =
  Alcotest.check_raises "bad params" (Invalid_argument "Transit_stub.generate: bad parameters")
    (fun () ->
      ignore
        (Transit_stub.generate (Rng.create 1)
           { Transit_stub.default_params with Transit_stub.transit_domains = 0 }))

(* -- Fixtures ---------------------------------------------------------- *)

let fig1_shape () =
  let f = Fixtures.fig1 () in
  check_int "nodes" 5 (Graph.node_count f.Fixtures.graph);
  check_int "edges" 6 (Graph.edge_count f.Fixtures.graph)

let fig4_shape () =
  let f = Fixtures.fig4 () in
  check_int "nodes" 8 (Graph.node_count f.Fixtures.graph);
  check_int "edges" 10 (Graph.edge_count f.Fixtures.graph);
  check "connected" true (Connectivity.is_connected f.Fixtures.graph)

let deterministic_shapes () =
  check_int "diamond edges" 4 (Graph.edge_count (Fixtures.diamond ()));
  check_int "line edges" 6 (Graph.edge_count (Fixtures.line 7));
  check_int "ring edges" 7 (Graph.edge_count (Fixtures.ring 7));
  check_int "grid edges" 24 (Graph.edge_count (Fixtures.grid 4));
  Alcotest.check_raises "tiny ring" (Invalid_argument "Fixtures.ring") (fun () ->
      ignore (Fixtures.ring 2))

let qcheck_waxman_connected =
  QCheck.Test.make ~name:"waxman graphs are always connected" ~count:40
    QCheck.(pair small_int (int_range 5 80))
    (fun (seed, n) ->
      let t = Waxman.generate (Rng.create seed) ~n ~alpha:0.1 ~beta:0.15 in
      Connectivity.is_connected t.Waxman.graph)

let qcheck_ts_connected =
  QCheck.Test.make ~name:"transit-stub graphs are always connected" ~count:25 QCheck.small_int
    (fun seed ->
      let t = Transit_stub.generate (Rng.create seed) Transit_stub.default_params in
      Connectivity.is_connected t.Transit_stub.graph)

let () =
  Alcotest.run "topology"
    [
      ( "waxman",
        [
          Alcotest.test_case "connected" `Quick waxman_connected;
          Alcotest.test_case "deterministic" `Quick waxman_deterministic;
          Alcotest.test_case "node count" `Quick waxman_node_count;
          Alcotest.test_case "alpha raises density" `Quick waxman_alpha_monotone;
          Alcotest.test_case "min delay floor" `Quick waxman_min_delay;
          Alcotest.test_case "unit delays" `Quick waxman_unit_delays;
          Alcotest.test_case "uniform delays" `Quick waxman_uniform_delays;
          Alcotest.test_case "rejects bad params" `Quick waxman_rejects_bad_params;
          Alcotest.test_case "degree calibration" `Slow waxman_calibration;
        ] );
      ( "transit_stub",
        [
          Alcotest.test_case "structure" `Quick ts_structure;
          Alcotest.test_case "gateways and agents" `Quick ts_gateways_and_agents;
          Alcotest.test_case "stub partition" `Quick ts_stub_partition;
          Alcotest.test_case "inter-domain links" `Quick ts_inter_domain_links;
          Alcotest.test_case "rejects bad params" `Quick ts_rejects_bad_params;
        ] );
      ( "fixtures",
        [
          Alcotest.test_case "fig1 shape" `Quick fig1_shape;
          Alcotest.test_case "fig4 shape" `Quick fig4_shape;
          Alcotest.test_case "deterministic shapes" `Quick deterministic_shapes;
        ] );
      ( "properties",
        [
          qcheck_case qcheck_waxman_connected;
          qcheck_case qcheck_ts_connected;
        ] );
    ]
