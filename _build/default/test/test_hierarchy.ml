(* Hierarchical recovery architecture (§3.3.3). *)

module Graph = Smrp_graph.Graph
module Subgraph = Smrp_graph.Subgraph
module Rng = Smrp_rng.Rng
module Transit_stub = Smrp_topology.Transit_stub
module Tree = Smrp_core.Tree
module Failure = Smrp_core.Failure
module Hierarchy = Smrp_core.Hierarchy

(* Property tests run with a pinned PRNG state so failures are
   reproducible run over run. *)
let qcheck_case t = QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| 424242 |]) t

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let scene seed =
  let rng = Rng.create seed in
  let ts = Transit_stub.generate rng Transit_stub.default_params in
  let stub_nodes =
    List.concat (List.init ts.Transit_stub.stub_count (Transit_stub.nodes_of_stub ts))
  in
  let pool = Array.of_list stub_nodes in
  Rng.shuffle rng pool;
  (ts, pool.(0), Array.to_list (Array.sub pool 1 10))

let stub_of ts v =
  match ts.Transit_stub.roles.(v) with
  | Transit_stub.Stub d -> d
  | Transit_stub.Transit _ -> -1

let build_structure () =
  let ts, source, members = scene 1 in
  let h = Hierarchy.build ts ~source ~members in
  let domains = Hierarchy.member_domains h in
  (* Every member's stub domain is represented. *)
  let domain_ids = List.map (fun d -> d.Hierarchy.id) domains in
  List.iter
    (fun m -> check "member's domain present" true (List.mem (stub_of ts m) domain_ids))
    members;
  (* Domain trees validate and carry their local members. *)
  List.iter
    (fun (d : Hierarchy.domain) ->
      (match Tree.validate d.Hierarchy.tree with Ok () -> () | Error e -> Alcotest.fail e);
      List.iter
        (fun m ->
          if stub_of ts m = d.Hierarchy.id then
            let sub_m = Option.get (Subgraph.node_to_sub d.Hierarchy.sub m) in
            check "member subscribed in its domain" true (Tree.is_member d.Hierarchy.tree sub_m))
        members)
    domains

let top_domain_connects_agents () =
  let ts, source, members = scene 2 in
  let h = Hierarchy.build ts ~source ~members in
  let top = Hierarchy.top_domain h in
  (match Tree.validate top.Hierarchy.tree with Ok () -> () | Error e -> Alcotest.fail e);
  let source_domain = stub_of ts source in
  List.iter
    (fun (d : Hierarchy.domain) ->
      if d.Hierarchy.id <> source_domain then begin
        let sub_agent = Option.get (Subgraph.node_to_sub top.Hierarchy.sub d.Hierarchy.agent) in
        check "agent is a top-tree member" true (Tree.is_member top.Hierarchy.tree sub_agent)
      end)
    (Hierarchy.member_domains h)

let source_domain_rooted_at_source () =
  let ts, source, members = scene 3 in
  let h = Hierarchy.build ts ~source ~members in
  let d =
    List.find (fun d -> d.Hierarchy.id = stub_of ts source) (Hierarchy.member_domains h)
  in
  let sub_source = Option.get (Subgraph.node_to_sub d.Hierarchy.sub source) in
  check_int "tree rooted at the actual source" sub_source (Tree.source d.Hierarchy.tree)

let owning_domain_classification () =
  let ts, source, members = scene 4 in
  let h = Hierarchy.build ts ~source ~members in
  (* A transit-transit edge belongs to the top domain. *)
  let transit = Transit_stub.transit_nodes ts in
  let transit_edge =
    Graph.fold_edges
      (fun acc e ->
        if acc = None && List.mem e.Graph.u transit && List.mem e.Graph.v transit then
          Some e.Graph.id
        else acc)
      None ts.Transit_stub.graph
  in
  (match Hierarchy.owning_domain h (Failure.Link (Option.get transit_edge)) with
  | Some d -> check_int "top domain owns transit links" (-1) d.Hierarchy.id
  | None -> Alcotest.fail "transit link must be owned");
  (* An edge strictly inside a member stub belongs to that stub's domain. *)
  let dom = List.hd (Hierarchy.member_domains h) in
  match Tree.tree_edges dom.Hierarchy.tree with
  | [] -> () (* single-node domain tree: nothing to classify *)
  | sub_eid :: _ -> (
      let orig = dom.Hierarchy.sub.Subgraph.edge_from_sub.(sub_eid) in
      match Hierarchy.owning_domain h (Failure.Link orig) with
      | Some d -> check_int "stub domain owns its links" dom.Hierarchy.id d.Hierarchy.id
      | None -> Alcotest.fail "stub link must be owned")

let recoveries_confined () =
  let ts, source, members = scene 5 in
  let h = Hierarchy.build ts ~source ~members in
  List.iter
    (fun (dom : Hierarchy.domain) ->
      match Tree.tree_edges dom.Hierarchy.tree with
      | [] -> ()
      | sub_eid :: _ ->
          let orig = dom.Hierarchy.sub.Subgraph.edge_from_sub.(sub_eid) in
          let recoveries = Hierarchy.recover h (Failure.Link orig) in
          List.iter
            (fun r ->
              check "confined" true r.Hierarchy.confined;
              check "non-negative RD" true (r.Hierarchy.recovery_distance >= 0.0))
            recoveries)
    (Hierarchy.member_domains h)

let flat_equivalent_members () =
  let ts, source, members = scene 6 in
  let h = Hierarchy.build ts ~source ~members in
  let flat = Hierarchy.flat_equivalent h in
  (match Tree.validate flat with Ok () -> () | Error e -> Alcotest.fail e);
  List.iter (fun m -> check "member in flat tree" true (Tree.is_member flat m)) members;
  check_int "exactly the receivers" (List.length (List.sort_uniq compare members))
    (Tree.member_count flat)

let domain_of_node_lookup () =
  let ts, source, members = scene 7 in
  let h = Hierarchy.build ts ~source ~members in
  let m = List.hd members in
  (match Hierarchy.domain_of_node h m with
  | Some d -> check_int "member's own domain" (stub_of ts m) d.Hierarchy.id
  | None -> Alcotest.fail "member domain must exist");
  let transit = List.hd (Transit_stub.transit_nodes ts) in
  check "transit nodes have no stub domain" true (Hierarchy.domain_of_node h transit = None)

let qcheck_hierarchy_builds =
  QCheck.Test.make ~name:"hierarchies build with valid domain trees" ~count:40 QCheck.small_int
    (fun seed ->
      let ts, source, members = scene seed in
      let h = Hierarchy.build ts ~source ~members in
      List.for_all
        (fun (d : Hierarchy.domain) -> Tree.validate d.Hierarchy.tree = Ok ())
        (Hierarchy.top_domain h :: Hierarchy.member_domains h))

let () =
  Alcotest.run "hierarchy"
    [
      ( "build",
        [
          Alcotest.test_case "domain structure" `Quick build_structure;
          Alcotest.test_case "top domain connects agents" `Quick top_domain_connects_agents;
          Alcotest.test_case "source domain rooted at source" `Quick source_domain_rooted_at_source;
          Alcotest.test_case "flat equivalent" `Quick flat_equivalent_members;
          Alcotest.test_case "domain lookup" `Quick domain_of_node_lookup;
        ] );
      ( "recovery",
        [
          Alcotest.test_case "owning domain" `Quick owning_domain_classification;
          Alcotest.test_case "recoveries confined" `Quick recoveries_confined;
        ] );
      ("properties", [ qcheck_case qcheck_hierarchy_builds ]);
    ]
