(* Flat random-graph families and the cross-family experiment. *)

module Rng = Smrp_rng.Rng
module Graph = Smrp_graph.Graph
module Connectivity = Smrp_graph.Connectivity
module Flat_models = Smrp_topology.Flat_models
module Families = Smrp_experiments.Families
module Stats = Smrp_metrics.Stats

(* Property tests run with a pinned PRNG state so failures are
   reproducible run over run. *)
let qcheck_case t = QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| 424242 |]) t

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let pure_random_basic () =
  let t = Flat_models.pure_random (Rng.create 2) ~n:60 ~p:0.08 in
  check_int "node count" 60 (Graph.node_count t.Flat_models.graph);
  check "connected" true (Connectivity.is_connected t.Flat_models.graph);
  check "positions drawn" true (Array.length t.Flat_models.positions = 60)

let pure_random_degree () =
  let p = Flat_models.probability_for_degree ~n:100 ~target_degree:6.0 in
  let total = ref 0.0 in
  for seed = 1 to 10 do
    let t = Flat_models.pure_random (Rng.create seed) ~n:100 ~p in
    total := !total +. Graph.average_degree t.Flat_models.graph
  done;
  let mean = !total /. 10.0 in
  check "degree near target" true (abs_float (mean -. 6.0) < 1.0)

let pure_random_distance_independent () =
  (* Unlike Waxman, long edges are as common as short ones: compare the mean
     edge length with the mean pairwise distance. *)
  let t = Flat_models.pure_random (Rng.create 7) ~n:120 ~p:0.1 in
  let dist (x1, y1) (x2, y2) = sqrt (((x1 -. x2) ** 2.) +. ((y1 -. y2) ** 2.)) in
  let pos = t.Flat_models.positions in
  let edge_lengths = ref [] in
  Graph.iter_edges
    (fun e -> edge_lengths := dist pos.(e.Graph.u) pos.(e.Graph.v) :: !edge_lengths)
    t.Flat_models.graph;
  check "edges are long on average (> 0.4)" true (Stats.mean !edge_lengths > 0.4)

let locality_prefers_near () =
  let t =
    Flat_models.locality (Rng.create 9) ~n:120 ~radius:0.25 ~p_near:0.5 ~p_far:0.01
  in
  let dist (x1, y1) (x2, y2) = sqrt (((x1 -. x2) ** 2.) +. ((y1 -. y2) ** 2.)) in
  let pos = t.Flat_models.positions in
  let near = ref 0 and far = ref 0 in
  Graph.iter_edges
    (fun e ->
      if dist pos.(e.Graph.u) pos.(e.Graph.v) < 0.25 then incr near else incr far)
    t.Flat_models.graph;
  (* Repair edges can be long; the raw draw is dominated by near edges. *)
  check "mostly near edges" true (!near > 2 * !far)

let models_reject_bad_params () =
  Alcotest.check_raises "bad p" (Invalid_argument "Flat_models.pure_random: p out of [0, 1]")
    (fun () -> ignore (Flat_models.pure_random (Rng.create 1) ~n:10 ~p:1.5));
  Alcotest.check_raises "bad radius"
    (Invalid_argument "Flat_models.locality: radius must be positive") (fun () ->
      ignore (Flat_models.locality (Rng.create 1) ~n:10 ~radius:0.0 ~p_near:0.5 ~p_far:0.1))

let family_experiment_shapes () =
  let rows = Families.run ~seed:5 ~scenarios:6 () in
  check_int "four families" 4 (List.length rows);
  let flat = List.filter (fun r -> r.Families.family <> "transit-stub") rows in
  List.iter
    (fun r ->
      check (r.Families.family ^ " advantage persists") true (r.Families.rd.Stats.mean > 0.05))
    flat;
  check "renders" true (String.length (Families.render rows) > 100)

let qcheck_models_connected =
  QCheck.Test.make ~name:"flat models always produce connected graphs" ~count:40
    QCheck.small_int (fun seed ->
      let rng = Rng.create seed in
      let n = 10 + Rng.int rng 60 in
      let a = Flat_models.pure_random rng ~n ~p:0.05 in
      let b = Flat_models.locality rng ~n ~radius:0.3 ~p_near:0.2 ~p_far:0.02 in
      Connectivity.is_connected a.Flat_models.graph
      && Connectivity.is_connected b.Flat_models.graph)

let () =
  Alcotest.run "families"
    [
      ( "models",
        [
          Alcotest.test_case "pure random basics" `Quick pure_random_basic;
          Alcotest.test_case "pure random degree" `Quick pure_random_degree;
          Alcotest.test_case "distance independence" `Quick pure_random_distance_independent;
          Alcotest.test_case "locality prefers near" `Quick locality_prefers_near;
          Alcotest.test_case "rejects bad params" `Quick models_reject_bad_params;
        ] );
      ( "experiment",
        [ Alcotest.test_case "cross-family shapes" `Quick family_experiment_shapes ] );
      ("properties", [ qcheck_case qcheck_models_connected ]);
    ]
