(* The partial-knowledge query scheme (§3.3.1). *)

module Graph = Smrp_graph.Graph
module Rng = Smrp_rng.Rng
module Waxman = Smrp_topology.Waxman
module Fixtures = Smrp_topology.Fixtures
module Tree = Smrp_core.Tree
module Spf = Smrp_core.Spf
module Smrp = Smrp_core.Smrp
module Query = Smrp_core.Query

(* Property tests run with a pinned PRNG state so failures are
   reproducible run over run. *)
let qcheck_case t = QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| 424242 |]) t

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let assert_valid t = match Tree.validate t with Ok () -> () | Error e -> Alcotest.fail e

let query_candidates_subset_of_full () =
  let f = Fixtures.fig1 () in
  let t = Spf.build f.Fixtures.graph ~source:f.Fixtures.s ~members:[ f.Fixtures.c ] in
  let full = List.map (fun c -> c.Smrp.merge) (Smrp.candidates t ~joiner:f.Fixtures.d) in
  let q = List.map (fun c -> c.Smrp.merge) (Query.candidates t ~joiner:f.Fixtures.d) in
  check "subset" true (List.for_all (fun m -> List.mem m full) q);
  check "non-empty" true (q <> [])

let query_neighbor_on_tree_answers_directly () =
  let g = Fixtures.line 4 in
  let t = Spf.build g ~source:0 ~members:[ 2 ] in
  (* Joiner 3's only neighbour is 2, which is on-tree. *)
  let cands = Query.candidates t ~joiner:3 in
  check_int "one candidate" 1 (List.length cands);
  check_int "merge at the neighbour" 2 (List.hd cands).Smrp.merge

let query_forwards_along_neighbor_spf () =
  let g = Fixtures.grid 3 in
  let t = Spf.build g ~source:0 ~members:[ 1 ] in
  (* Joiner 8: neighbours 5 and 7, both off-tree; their SPF paths towards 0
     hit the tree at 1 or 0 (grid paths).  All candidate merges must be
     on-tree nodes. *)
  let cands = Query.candidates t ~joiner:8 in
  check "answers exist" true (cands <> []);
  List.iter (fun c -> check "merge on tree" true (Tree.is_on_tree t c.Smrp.merge)) cands

let query_attach_paths_graftable () =
  let rng = Rng.create 42 in
  let topo = Waxman.generate rng ~n:50 ~alpha:0.2 ~beta:0.2 in
  let g = topo.Waxman.graph in
  let sample = Smrp_rng.Rng.sample_without_replacement rng 10 50 in
  let t = Query.build ~d_thresh:0.3 g ~source:(List.hd sample) ~members:(List.tl sample) in
  check_int "all joined" 9 (Tree.member_count t);
  assert_valid t

let query_dedupes_by_merge () =
  let g = Fixtures.diamond () in
  let t = Spf.build g ~source:0 ~members:[] in
  (* Joiner 3 has neighbours 1 and 2; both SPF paths end at the source, so
     both answers share merge node 0 and only the cheaper connection stays. *)
  let cands = Query.candidates t ~joiner:3 in
  check_int "single deduped candidate" 1 (List.length cands);
  check_int "merge at source" 0 (List.hd cands).Smrp.merge

let query_join_degrades_gracefully () =
  (* A joiner whose single neighbour is the source itself. *)
  let g = Fixtures.line 2 in
  let t = Tree.create g ~source:0 in
  Query.join ~d_thresh:0.3 t 1;
  check "joined" true (Tree.is_member t 1);
  assert_valid t

let qcheck_query_trees_valid =
  QCheck.Test.make ~name:"query-built trees always validate" ~count:100 QCheck.small_int
    (fun seed ->
      let rng = Rng.create seed in
      let n = 20 + Rng.int rng 40 in
      let topo = Waxman.generate rng ~n ~alpha:0.2 ~beta:0.2 in
      let k = 2 + Rng.int rng 10 in
      let sample = Smrp_rng.Rng.sample_without_replacement rng (k + 1) n in
      let t =
        Query.build ~d_thresh:0.3 topo.Waxman.graph ~source:(List.hd sample)
          ~members:(List.tl sample)
      in
      Tree.validate t = Ok () && Tree.member_count t = k)

let qcheck_query_no_better_than_full =
  QCheck.Test.make ~name:"query candidates never beat the full-knowledge optimum SHR" ~count:100
    QCheck.small_int (fun seed ->
      let rng = Rng.create seed in
      let n = 20 + Rng.int rng 40 in
      let topo = Waxman.generate rng ~n ~alpha:0.2 ~beta:0.2 in
      let k = 2 + Rng.int rng 8 in
      let sample = Smrp_rng.Rng.sample_without_replacement rng (k + 2) n in
      let source = List.hd sample in
      let joiner = List.nth sample 1 in
      let members = List.filteri (fun i _ -> i >= 2) sample in
      let t = Smrp.build ~d_thresh:0.3 topo.Waxman.graph ~source ~members in
      if Tree.is_on_tree t joiner then true
      else begin
        let best shrs = List.fold_left min max_int shrs in
        let full = List.map (fun c -> c.Smrp.shr) (Smrp.candidates t ~joiner) in
        let q = List.map (fun c -> c.Smrp.shr) (Query.candidates t ~joiner) in
        q = [] || best q >= best full
      end)

let () =
  Alcotest.run "query"
    [
      ( "candidates",
        [
          Alcotest.test_case "subset of full knowledge" `Quick query_candidates_subset_of_full;
          Alcotest.test_case "on-tree neighbour answers" `Quick query_neighbor_on_tree_answers_directly;
          Alcotest.test_case "forwards along neighbour SPF" `Quick query_forwards_along_neighbor_spf;
          Alcotest.test_case "dedupes by merge node" `Quick query_dedupes_by_merge;
        ] );
      ( "join",
        [
          Alcotest.test_case "builds valid trees" `Quick query_attach_paths_graftable;
          Alcotest.test_case "degrades gracefully" `Quick query_join_degrades_gracefully;
        ] );
      ( "properties",
        [
          qcheck_case qcheck_query_trees_valid;
          qcheck_case qcheck_query_no_better_than_full;
        ] );
    ]
