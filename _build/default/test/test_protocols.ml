(* SPF baseline and SMRP join semantics beyond the paper's walkthroughs. *)

module Graph = Smrp_graph.Graph
module Rng = Smrp_rng.Rng
module Waxman = Smrp_topology.Waxman
module Fixtures = Smrp_topology.Fixtures
module Tree = Smrp_core.Tree
module Spf = Smrp_core.Spf
module Smrp = Smrp_core.Smrp

(* Property tests run with a pinned PRNG state so failures are
   reproducible run over run. *)
let qcheck_case t = QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| 424242 |]) t

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_float = Alcotest.(check (float 1e-9))
let check_ilist = Alcotest.(check (list int))

let assert_valid t = match Tree.validate t with Ok () -> () | Error e -> Alcotest.fail e

(* -- SPF --------------------------------------------------------------- *)

let spf_line () =
  let g = Fixtures.line 5 in
  let t = Spf.build g ~source:0 ~members:[ 4; 2 ] in
  check_ilist "4 via the line" [ 4; 3; 2; 1; 0 ] (Tree.path_to_source t 4);
  check "2 became member on existing path" true (Tree.is_member t 2);
  check_int "two members" 2 (Tree.member_count t);
  assert_valid t

let spf_merges_at_first_on_tree_node () =
  let g = Fixtures.grid 3 in
  let t = Tree.create g ~source:0 in
  Spf.join t 2;
  (* 8's shortest path to 0 has several options; whatever it picks, the graft
     must merge at the deepest on-tree node of that path, so the structure
     remains a tree: edges = on-tree nodes - 1. *)
  Spf.join t 8;
  check_int "still a tree" (List.length (Tree.on_tree_nodes t) - 1)
    (List.length (Tree.tree_edges t));
  assert_valid t

let spf_attach_path_on_tree () =
  let g = Fixtures.line 3 in
  let t = Tree.create g ~source:0 in
  Spf.join t 2;
  Alcotest.(check (pair (list int) (list int))) "trivial attach" ([ 1 ], []) (Spf.attach_path t 1)

let spf_errors () =
  let g = Graph.create 3 in
  ignore (Graph.add_edge g 0 1 1.0);
  let t = Tree.create g ~source:0 in
  Alcotest.check_raises "unreachable" (Invalid_argument "Spf.attach_path: source unreachable")
    (fun () -> Spf.join t 2);
  Spf.join t 1;
  Alcotest.check_raises "double join" (Invalid_argument "Spf.join: already a member") (fun () ->
      Spf.join t 1)

let spf_leave_roundtrip () =
  let g = Fixtures.line 4 in
  let t = Spf.build g ~source:0 ~members:[ 3 ] in
  Spf.leave t 3;
  check_ilist "tree shrinks to source" [ 0 ] (Tree.on_tree_nodes t);
  assert_valid t

(* -- SMRP candidates --------------------------------------------------- *)

let candidates_on_fig1 () =
  let f = Fixtures.fig1 () in
  let t = Spf.build f.Fixtures.graph ~source:f.Fixtures.s ~members:[ f.Fixtures.c ] in
  (* Tree: S-A-C.  Candidates for D: merge at A (via L_AD), at C (via L_CD),
     at S (via B). *)
  let cands = Smrp.candidates t ~joiner:f.Fixtures.d in
  let merges = List.map (fun c -> c.Smrp.merge) cands in
  check_ilist "three merge options" [ f.Fixtures.s; f.Fixtures.a; f.Fixtures.c ] merges;
  let at node = List.find (fun c -> c.Smrp.merge = node) cands in
  check_int "SHR at S" 0 (at f.Fixtures.s).Smrp.shr;
  check_int "SHR at A" 1 (at f.Fixtures.a).Smrp.shr;
  check_int "SHR at C" 2 (at f.Fixtures.c).Smrp.shr;
  check_float "delay via A" 2.0 (at f.Fixtures.a).Smrp.total_delay;
  check_float "attach via C" 2.0 (at f.Fixtures.c).Smrp.attach_delay;
  check_float "delay via B to S" 3.0 (at f.Fixtures.s).Smrp.total_delay

let candidate_interiors_avoid_tree () =
  let g = Fixtures.grid 4 in
  let rng = Rng.create 3 in
  let members = Smrp_rng.Rng.sample_without_replacement rng 5 16 in
  let t = Smrp.build g ~source:0 ~members:(List.filter (fun v -> v <> 0) members) in
  let joiner = List.find (fun v -> not (Tree.is_on_tree t v)) (List.init 16 (fun i -> 15 - i)) in
  List.iter
    (fun c ->
      match c.Smrp.attach_nodes with
      | _merge :: interior_and_joiner ->
          let interior = List.filteri (fun i _ -> i < List.length interior_and_joiner - 1) interior_and_joiner in
          List.iter
            (fun v -> check "interior off-tree" false (Tree.is_on_tree t v))
            interior
      | [] -> Alcotest.fail "empty candidate path")
    (Smrp.candidates t ~joiner)

(* -- SMRP selection ---------------------------------------------------- *)

let select_min_shr_within_bound () =
  let mk merge shr total =
    {
      Smrp.merge;
      attach_nodes = [];
      attach_edges = [];
      attach_delay = 0.0;
      total_delay = total;
      shr;
    }
  in
  let cands = [ mk 1 3 1.0; mk 2 0 1.25; mk 3 1 1.05 ] in
  (* Bound 1.3: all pass; min SHR is merge 2. *)
  let c = Option.get (Smrp.select ~d_thresh:0.3 ~spf_distance:1.0 cands) in
  check_int "min SHR wins" 2 c.Smrp.merge;
  (* Bound 1.1: merge 2 is filtered; merge 3 wins. *)
  let c = Option.get (Smrp.select ~d_thresh:0.1 ~spf_distance:1.0 cands) in
  check_int "bounded min SHR" 3 c.Smrp.merge;
  (* Bound 1.0: only merge 1 passes. *)
  let c = Option.get (Smrp.select ~d_thresh:0.0 ~spf_distance:1.0 cands) in
  check_int "strict bound" 1 c.Smrp.merge

let select_tie_breaks () =
  let mk merge shr total =
    {
      Smrp.merge;
      attach_nodes = [];
      attach_edges = [];
      attach_delay = 0.0;
      total_delay = total;
      shr;
    }
  in
  let c =
    Option.get (Smrp.select ~d_thresh:1.0 ~spf_distance:1.0 [ mk 4 1 1.5; mk 2 1 1.2; mk 9 1 1.2 ])
  in
  check_int "shr tie -> shorter delay, then lower id" 2 c.Smrp.merge

let select_fallback_when_nothing_bounded () =
  let mk merge total =
    {
      Smrp.merge;
      attach_nodes = [];
      attach_edges = [];
      attach_delay = 0.0;
      total_delay = total;
      shr = merge;
    }
  in
  let c = Option.get (Smrp.select ~d_thresh:0.0 ~spf_distance:0.1 [ mk 1 5.0; mk 2 4.0 ]) in
  check_int "lowest delay fallback" 2 c.Smrp.merge;
  check "empty gives none" true (Smrp.select ~d_thresh:0.3 ~spf_distance:1.0 [] = None)

let select_rejects_negative_threshold () =
  Alcotest.check_raises "negative" (Invalid_argument "Smrp.select: d_thresh must be non-negative")
    (fun () -> ignore (Smrp.select ~d_thresh:(-0.1) ~spf_distance:1.0 []))

(* -- SMRP joins -------------------------------------------------------- *)

let smrp_zero_threshold_matches_spf_delay () =
  (* With D_thresh = 0 every selected path must have the unicast shortest
     delay. *)
  let rng = Rng.create 17 in
  let topo = Waxman.generate rng ~n:60 ~alpha:0.2 ~beta:0.2 in
  let g = topo.Waxman.graph in
  let members = Smrp_rng.Rng.sample_without_replacement rng 12 60 in
  let source = List.hd members in
  let t = Smrp.build ~d_thresh:0.0 g ~source ~members:(List.tl members) in
  List.iter
    (fun m ->
      let spf = Option.get (Smrp.spf_distance t m) in
      check "delay equals SPF" true (Tree.delay_to_source t m <= spf +. 1e-9))
    (List.tl members);
  assert_valid t

let smrp_join_on_tree_node () =
  let g = Fixtures.line 4 in
  let t = Smrp.build g ~source:0 ~members:[ 3 ] in
  Smrp.join t 1;
  check "1 is member" true (Tree.is_member t 1);
  check_int "no new edges" 3 (List.length (Tree.tree_edges t));
  assert_valid t

let smrp_member_delay_at_least_spf () =
  let rng = Rng.create 23 in
  let topo = Waxman.generate rng ~n:80 ~alpha:0.2 ~beta:0.2 in
  let g = topo.Waxman.graph in
  let sample = Smrp_rng.Rng.sample_without_replacement rng 20 80 in
  let source = List.hd sample in
  let t = Smrp.build ~d_thresh:0.3 g ~source ~members:(List.tl sample) in
  List.iter
    (fun m ->
      let spf = Option.get (Smrp.spf_distance t m) in
      check "tree delay >= unicast shortest" true (Tree.delay_to_source t m >= spf -. 1e-9))
    (List.tl sample);
  assert_valid t

let smrp_build_deterministic () =
  let build () =
    let rng = Rng.create 31 in
    let topo = Waxman.generate rng ~n:50 ~alpha:0.2 ~beta:0.2 in
    let members = Smrp_rng.Rng.sample_without_replacement rng 10 50 in
    let t = Smrp.build topo.Waxman.graph ~source:(List.hd members) ~members:(List.tl members) in
    Format.asprintf "%a" Tree.pp t
  in
  Alcotest.(check string) "same tree" (build ()) (build ())

(* -- Properties -------------------------------------------------------- *)

let random_scene seed =
  let rng = Rng.create seed in
  let n = 20 + Rng.int rng 60 in
  let topo = Waxman.generate rng ~n ~alpha:0.2 ~beta:0.2 in
  let k = 2 + Rng.int rng (min 15 (n - 2)) in
  let sample = Smrp_rng.Rng.sample_without_replacement rng (k + 1) n in
  (topo.Waxman.graph, List.hd sample, List.tl sample)

let qcheck_smrp_tree_valid =
  QCheck.Test.make ~name:"SMRP trees always validate with all members attached" ~count:150
    QCheck.small_int (fun seed ->
      let g, source, members = random_scene seed in
      let t = Smrp.build ~d_thresh:0.3 g ~source ~members in
      Tree.validate t = Ok ()
      && List.for_all (Tree.is_member t) members
      && Tree.member_count t = List.length members)

let qcheck_spf_tree_valid =
  QCheck.Test.make ~name:"SPF trees always validate and follow shortest delays" ~count:150
    QCheck.small_int (fun seed ->
      let g, source, members = random_scene seed in
      let t = Spf.build g ~source ~members in
      Tree.validate t = Ok ()
      && List.for_all
           (fun m ->
             let spf = Option.get (Smrp.spf_distance t m) in
             abs_float (Tree.delay_to_source t m -. spf) < 1e-9)
           members)

let qcheck_smrp_shr_not_worse =
  QCheck.Test.make ~name:"SMRP members never merge at higher SHR than joining the SPF way"
    ~count:100 QCheck.small_int (fun seed ->
      (* At join time SMRP picks the minimum-SHR candidate within the bound;
         re-joining the final tree must never find the recorded structure
         invalid. Weak but cheap invariant: total SHR sum is finite and all
         members' SHR are consistent with Eq. 2 (checked via path walk). *)
      let g, source, members = random_scene seed in
      let t = Smrp.build ~d_thresh:0.3 g ~source ~members in
      List.for_all
        (fun m ->
          let by_walk =
            List.fold_left
              (fun acc v -> if v = source then acc else acc + Tree.subtree_members t v)
              0 (Tree.path_to_source t m)
          in
          by_walk = Tree.shr t m)
        members)

let () =
  Alcotest.run "protocols"
    [
      ( "spf",
        [
          Alcotest.test_case "line build" `Quick spf_line;
          Alcotest.test_case "merges at first on-tree node" `Quick spf_merges_at_first_on_tree_node;
          Alcotest.test_case "attach path for on-tree node" `Quick spf_attach_path_on_tree;
          Alcotest.test_case "errors" `Quick spf_errors;
          Alcotest.test_case "leave round trip" `Quick spf_leave_roundtrip;
        ] );
      ( "candidates",
        [
          Alcotest.test_case "fig1 candidate set" `Quick candidates_on_fig1;
          Alcotest.test_case "interiors avoid the tree" `Quick candidate_interiors_avoid_tree;
        ] );
      ( "selection",
        [
          Alcotest.test_case "min SHR within bound" `Quick select_min_shr_within_bound;
          Alcotest.test_case "tie breaks" `Quick select_tie_breaks;
          Alcotest.test_case "fallback" `Quick select_fallback_when_nothing_bounded;
          Alcotest.test_case "rejects negative threshold" `Quick select_rejects_negative_threshold;
        ] );
      ( "smrp_join",
        [
          Alcotest.test_case "zero threshold stays shortest" `Quick smrp_zero_threshold_matches_spf_delay;
          Alcotest.test_case "join of on-tree node" `Quick smrp_join_on_tree_node;
          Alcotest.test_case "delay at least SPF" `Quick smrp_member_delay_at_least_spf;
          Alcotest.test_case "deterministic build" `Quick smrp_build_deterministic;
        ] );
      ( "properties",
        [
          qcheck_case qcheck_smrp_tree_valid;
          qcheck_case qcheck_spf_tree_valid;
          qcheck_case qcheck_smrp_shr_not_worse;
        ] );
    ]
