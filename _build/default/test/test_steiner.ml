(* The Takahashi–Matsuyama cost-minimising baseline. *)

module Graph = Smrp_graph.Graph
module Rng = Smrp_rng.Rng
module Waxman = Smrp_topology.Waxman
module Fixtures = Smrp_topology.Fixtures
module Tree = Smrp_core.Tree
module Spf = Smrp_core.Spf
module Steiner = Smrp_core.Steiner

(* Property tests run with a pinned PRNG state so failures are
   reproducible run over run. *)
let qcheck_case t = QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| 424242 |]) t

let check = Alcotest.(check bool)
let check_float = Alcotest.(check (float 1e-9))

let assert_valid t = match Tree.validate t with Ok () -> () | Error e -> Alcotest.fail e

let classic_steiner_case () =
  (* A case where SPF is strictly worse than Steiner: two members behind a
     shared "highway".  Topology: s-h (3.0), h-a (1.0), h-b (1.0), s-a (3.5),
     s-b (3.5).  SPF joins a and b by their direct 3.5 links (cost 7.0); the
     heuristic connects a directly (3.5 < 4) but then reaches b through the
     shared h-a spur (cost 2), totalling 5.5 — between the optimum (5.0) and
     SPF, as a 2-approximation should. *)
  let g = Graph.create 4 in
  let s = 0 and h = 1 and a = 2 and b = 3 in
  ignore (Graph.add_edge g s h 3.0);
  ignore (Graph.add_edge g h a 1.0);
  ignore (Graph.add_edge g h b 1.0);
  ignore (Graph.add_edge g s a 3.5);
  ignore (Graph.add_edge g s b 3.5);
  let spf = Spf.build g ~source:s ~members:[ a; b ] in
  let steiner = Steiner.build g ~source:s ~members:[ a; b ] in
  check_float "SPF pays for disjoint direct links" 7.0 (Tree.total_cost spf);
  check_float "Steiner shares the spur" 5.5 (Tree.total_cost steiner);
  assert_valid steiner

let build_order_is_nearest_first () =
  (* On a line, the Takahashi–Matsuyama order connects members nearest
     first regardless of the list order; the result is the same chain. *)
  let g = Fixtures.line 6 in
  let t = Steiner.build g ~source:0 ~members:[ 5; 2; 4 ] in
  Alcotest.(check (list int)) "chain" [ 5; 4; 3; 2; 1; 0 ] (Tree.path_to_source t 5);
  assert_valid t

let join_attaches_cheapest () =
  let g = Fixtures.diamond () in
  let t = Tree.create g ~source:0 in
  Steiner.join t 3;
  check "member joined" true (Tree.is_member t 3);
  check_float "two unit links" 2.0 (Tree.total_cost t);
  assert_valid t

let errors () =
  let g = Graph.create 3 in
  ignore (Graph.add_edge g 0 1 1.0);
  let t = Tree.create g ~source:0 in
  Alcotest.check_raises "unreachable" (Invalid_argument "Steiner.join: no connection to the tree")
    (fun () -> Steiner.join t 2);
  Steiner.join t 1;
  Alcotest.check_raises "double join" (Invalid_argument "Steiner.join: already a member")
    (fun () -> Steiner.join t 1)

let qcheck_steiner_bounded_by_star_cost =
  (* The provable bound: each greedy connection costs at most the member's
     distance to the source (the source is always on the tree), so the TM
     tree costs at most Σ d(s, m).  (The heuristic is NOT always cheaper
     than the SPF tree — SPF paths can overlap luckily — so that is not a
     law; on average it wins, which Cost_min measures.) *)
  QCheck.Test.make ~name:"Steiner cost is bounded by the shortest-path star" ~count:100
    QCheck.small_int (fun seed ->
      let rng = Rng.create seed in
      let n = 20 + Rng.int rng 50 in
      let topo = Waxman.generate rng ~n ~alpha:0.2 ~beta:0.2 in
      let k = 2 + Rng.int rng 12 in
      let sample = Smrp_rng.Rng.sample_without_replacement rng (k + 1) n in
      let source = List.hd sample and members = List.tl sample in
      let steiner = Steiner.build topo.Waxman.graph ~source ~members in
      let star =
        List.fold_left
          (fun acc m ->
            match
              Smrp_graph.Dijkstra.shortest_path topo.Waxman.graph ~src:source ~dst:m
            with
            | Some (d, _, _) -> acc +. d
            | None -> acc)
          0.0 members
      in
      Tree.validate steiner = Ok () && Tree.total_cost steiner <= star +. 1e-9)

let qcheck_steiner_valid_trees =
  QCheck.Test.make ~name:"Steiner trees validate with all members" ~count:100 QCheck.small_int
    (fun seed ->
      let rng = Rng.create seed in
      let n = 15 + Rng.int rng 40 in
      let topo = Waxman.generate rng ~n ~alpha:0.25 ~beta:0.25 in
      let k = 2 + Rng.int rng 10 in
      let sample = Smrp_rng.Rng.sample_without_replacement rng (k + 1) n in
      let t =
        Steiner.build topo.Waxman.graph ~source:(List.hd sample) ~members:(List.tl sample)
      in
      Tree.validate t = Ok () && List.for_all (Tree.is_member t) (List.tl sample))

let conjecture_experiment_shapes () =
  let r = Smrp_experiments.Cost_min.run ~seed:4 ~scenarios:6 () in
  let open Smrp_metrics.Stats in
  check "Steiner cheaper than SPF" true
    (r.Smrp_experiments.Cost_min.cost_spf_vs_steiner.mean >= 0.0);
  check "conjecture: advantage persists vs cost-min" true
    (r.Smrp_experiments.Cost_min.rd_vs_steiner.mean
    >= r.Smrp_experiments.Cost_min.rd_vs_spf.mean -. 0.05);
  check "renders" true
    (String.length (Smrp_experiments.Cost_min.render r) > 80)

let () =
  Alcotest.run "steiner"
    [
      ( "heuristic",
        [
          Alcotest.test_case "classic sharing case" `Quick classic_steiner_case;
          Alcotest.test_case "nearest-first order" `Quick build_order_is_nearest_first;
          Alcotest.test_case "join attaches cheapest" `Quick join_attaches_cheapest;
          Alcotest.test_case "errors" `Quick errors;
        ] );
      ( "properties",
        [
          qcheck_case qcheck_steiner_bounded_by_star_cost;
          qcheck_case qcheck_steiner_valid_trees;
        ] );
      ( "conjecture",
        [ Alcotest.test_case "experiment shapes" `Quick conjecture_experiment_shapes ] );
    ]
