module Related_work = Smrp_experiments.Related_work
module Stats = Smrp_metrics.Stats

let check = Alcotest.(check bool)

let feasibility_monotone_in_alpha () =
  let rows = Related_work.feasibility ~seed:3 ~samples:30 ~alphas:[ 0.2; 0.8 ] () in
  match rows with
  | [ sparse; dense ] ->
      check "denser graphs admit redundant trees more often" true
        (dense.Related_work.feasible_fraction >= sparse.Related_work.feasible_fraction);
      check "degree grows" true
        (dense.Related_work.average_degree > sparse.Related_work.average_degree)
  | _ -> Alcotest.fail "expected two rows"

let comparison_shapes () =
  let cmp = Related_work.compare_schemes ~seed:3 ~scenarios:8 () in
  check "scenarios collected" true (cmp.Related_work.scenarios > 0);
  check "redundant trees recover instantly" true (cmp.Related_work.rd_redundant = 0.0);
  check "SMRP detours are short but nonzero" true (cmp.Related_work.rd_smrp.Stats.mean > 0.0);
  check "redundant trees provision much more capacity" true
    (cmp.Related_work.cost_redundant.Stats.mean > cmp.Related_work.cost_smrp.Stats.mean);
  check "backup paths are slower than primaries" true
    (cmp.Related_work.post_failure_delay_redundant.Stats.mean
    >= cmp.Related_work.delay_redundant.Stats.mean);
  check "renders" true
    (String.length (Related_work.render (Related_work.feasibility ~samples:5 ()) cmp) > 100)

let () =
  Alcotest.run "related_work"
    [
      ( "comparison",
        [
          Alcotest.test_case "feasibility monotone in alpha" `Quick feasibility_monotone_in_alpha;
          Alcotest.test_case "comparison shapes" `Quick comparison_shapes;
        ] );
    ]
