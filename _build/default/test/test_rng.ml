module Rng = Smrp_rng.Rng

(* Property tests run with a pinned PRNG state so failures are
   reproducible run over run. *)
let qcheck_case t = QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| 424242 |]) t

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let determinism () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let copy_independent () =
  let a = Rng.create 7 in
  ignore (Rng.bits64 a);
  let b = Rng.copy a in
  Alcotest.(check int64) "copy continues identically" (Rng.bits64 a) (Rng.bits64 b)

let split_diverges () =
  let a = Rng.create 7 in
  let b = Rng.split a in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Rng.bits64 a = Rng.bits64 b then incr same
  done;
  check "split streams differ" true (!same < 2)

let int_bounds () =
  let r = Rng.create 1 in
  for _ = 1 to 10_000 do
    let v = Rng.int r 7 in
    check "in range" true (v >= 0 && v < 7)
  done

let int_covers_range () =
  let r = Rng.create 3 in
  let seen = Array.make 5 false in
  for _ = 1 to 1_000 do
    seen.(Rng.int r 5) <- true
  done;
  Array.iteri (fun i s -> check (Printf.sprintf "value %d drawn" i) true s) seen

let int_rejects_bad_bound () =
  Alcotest.check_raises "zero bound" (Invalid_argument "Rng.int: bound must be positive") (fun () ->
      ignore (Rng.int (Rng.create 1) 0))

let float_bounds () =
  let r = Rng.create 2 in
  for _ = 1 to 10_000 do
    let v = Rng.float r 3.5 in
    check "in range" true (v >= 0.0 && v < 3.5)
  done

let float_mean () =
  let r = Rng.create 4 in
  let n = 20_000 in
  let total = ref 0.0 in
  for _ = 1 to n do
    total := !total +. Rng.float r 1.0
  done;
  let mean = !total /. float_of_int n in
  check "mean near 0.5" true (abs_float (mean -. 0.5) < 0.02)

let shuffle_is_permutation () =
  let r = Rng.create 5 in
  let a = Array.init 50 Fun.id in
  Rng.shuffle r a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "same multiset" (Array.init 50 Fun.id) sorted;
  check "actually permuted" true (a <> Array.init 50 Fun.id)

let sample_without_replacement () =
  let r = Rng.create 6 in
  for _ = 1 to 100 do
    let s = Rng.sample_without_replacement r 10 30 in
    check_int "ten values" 10 (List.length s);
    check "sorted distinct in range" true
      (List.for_all (fun v -> v >= 0 && v < 30) s
      && List.sort_uniq compare s = s)
  done

let sample_full_range () =
  let r = Rng.create 8 in
  let s = Rng.sample_without_replacement r 5 5 in
  Alcotest.(check (list int)) "whole population" [ 0; 1; 2; 3; 4 ] s

let exponential_positive () =
  let r = Rng.create 9 in
  for _ = 1 to 1_000 do
    check "positive" true (Rng.exponential r 2.0 >= 0.0)
  done

let exponential_mean () =
  let r = Rng.create 10 in
  let n = 20_000 in
  let total = ref 0.0 in
  for _ = 1 to n do
    total := !total +. Rng.exponential r 2.0
  done;
  check "mean near 1/rate" true (abs_float ((!total /. float_of_int n) -. 0.5) < 0.02)

let pick_rejects_empty () =
  Alcotest.check_raises "empty array" (Invalid_argument "Rng.pick: empty array") (fun () ->
      ignore (Rng.pick (Rng.create 1) [||]))

let pick_uniform () =
  let r = Rng.create 11 in
  let arr = [| "a"; "b"; "c" |] in
  let counts = Hashtbl.create 3 in
  for _ = 1 to 3_000 do
    let v = Rng.pick r arr in
    Hashtbl.replace counts v (1 + Option.value ~default:0 (Hashtbl.find_opt counts v))
  done;
  Array.iter
    (fun v -> check (v ^ " drawn often") true (Option.value ~default:0 (Hashtbl.find_opt counts v) > 800))
    arr

let qcheck_int_in_bound =
  QCheck.Test.make ~name:"Rng.int stays within arbitrary bounds" ~count:500
    QCheck.(pair small_int (int_range 1 1_000_000))
    (fun (seed, bound) ->
      let r = Rng.create seed in
      let v = Rng.int r bound in
      v >= 0 && v < bound)

let qcheck_sample_distinct =
  QCheck.Test.make ~name:"sample_without_replacement yields distinct values" ~count:200
    QCheck.(pair small_int (pair (int_range 0 50) (int_range 50 200)))
    (fun (seed, (k, n)) ->
      let r = Rng.create seed in
      let s = Rng.sample_without_replacement r k n in
      List.length s = k && List.sort_uniq compare s = s)

let () =
  Alcotest.run "rng"
    [
      ( "determinism",
        [
          Alcotest.test_case "same seed, same stream" `Quick determinism;
          Alcotest.test_case "copy continues identically" `Quick copy_independent;
          Alcotest.test_case "split diverges" `Quick split_diverges;
        ] );
      ( "draws",
        [
          Alcotest.test_case "int bounds" `Quick int_bounds;
          Alcotest.test_case "int covers range" `Quick int_covers_range;
          Alcotest.test_case "int rejects bad bound" `Quick int_rejects_bad_bound;
          Alcotest.test_case "float bounds" `Quick float_bounds;
          Alcotest.test_case "float mean" `Quick float_mean;
          Alcotest.test_case "pick uniform-ish" `Quick pick_uniform;
          Alcotest.test_case "pick rejects empty" `Quick pick_rejects_empty;
          Alcotest.test_case "exponential positive" `Quick exponential_positive;
          Alcotest.test_case "exponential mean" `Quick exponential_mean;
        ] );
      ( "sampling",
        [
          Alcotest.test_case "shuffle is a permutation" `Quick shuffle_is_permutation;
          Alcotest.test_case "sample without replacement" `Quick sample_without_replacement;
          Alcotest.test_case "sample full range" `Quick sample_full_range;
        ] );
      ( "properties",
        [
          qcheck_case qcheck_int_in_bound;
          qcheck_case qcheck_sample_distinct;
        ] );
    ]
