module Stats = Smrp_metrics.Stats
module Table = Smrp_metrics.Table

let check = Alcotest.(check bool)
let check_float = Alcotest.(check (float 1e-9))

let summarize_known_sample () =
  let s = Stats.summarize [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ] in
  check_float "mean" 5.0 s.Stats.mean;
  Alcotest.(check int) "count" 8 s.Stats.count;
  check_float "min" 2.0 s.Stats.min;
  check_float "max" 9.0 s.Stats.max;
  (* Sample stddev of this classic sample is sqrt(32/7). *)
  Alcotest.(check (float 1e-6)) "stddev" (sqrt (32.0 /. 7.0)) s.Stats.stddev;
  Alcotest.(check (float 1e-6)) "ci95" (1.96 *. sqrt (32.0 /. 7.0) /. sqrt 8.0) s.Stats.ci95

let summarize_singleton () =
  let s = Stats.summarize [ 3.0 ] in
  check_float "mean" 3.0 s.Stats.mean;
  check_float "stddev zero" 0.0 s.Stats.stddev;
  check_float "ci zero" 0.0 s.Stats.ci95

let summarize_empty_rejected () =
  Alcotest.check_raises "empty" (Invalid_argument "Stats.summarize: empty sample") (fun () ->
      ignore (Stats.summarize []))

let percentiles () =
  let xs = [ 1.0; 2.0; 3.0; 4.0; 5.0 ] in
  check_float "median" 3.0 (Stats.percentile 0.5 xs);
  check_float "min" 1.0 (Stats.percentile 0.0 xs);
  check_float "max" 5.0 (Stats.percentile 1.0 xs);
  check_float "interpolated" 1.5 (Stats.percentile 0.125 xs);
  Alcotest.check_raises "out of range" (Invalid_argument "Stats.percentile: p out of [0, 1]")
    (fun () -> ignore (Stats.percentile 1.5 xs))

let relative_metrics () =
  check_float "reduction" 0.25 (Stats.relative_reduction ~baseline:4.0 ~improved:3.0);
  check_float "increase" 0.25 (Stats.relative_increase ~baseline:4.0 ~changed:5.0);
  check_float "zero baseline reduction" 0.0 (Stats.relative_reduction ~baseline:0.0 ~improved:1.0);
  check_float "zero baseline increase" 0.0 (Stats.relative_increase ~baseline:0.0 ~changed:1.0)

let table_renders_aligned () =
  let t = Table.create ~columns:[ "name"; "value" ] in
  Table.add_row t [ "alpha"; "1" ];
  Table.add_row t [ "b"; "23456" ];
  let out = Table.render t in
  let lines = String.split_on_char '\n' out in
  Alcotest.(check int) "header + rule + rows" 4 (List.length lines);
  check "contains header" true (String.length (List.hd lines) > 0);
  (* All lines the same width modulo trailing pad. *)
  check "row content present" true
    (List.exists (fun l -> String.length l >= 5 && String.sub l 0 5 = "alpha") lines)

let table_rejects_bad_rows () =
  let t = Table.create ~columns:[ "a"; "b" ] in
  Alcotest.check_raises "width" (Invalid_argument "Table.add_row: width mismatch") (fun () ->
      Table.add_row t [ "only-one" ]);
  Alcotest.check_raises "no columns" (Invalid_argument "Table.create: no columns") (fun () ->
      ignore (Table.create ~columns:[]))

let csv_export () =
  let t = Table.create ~columns:[ "name"; "value" ] in
  Table.add_row t [ "plain"; "1" ];
  Table.add_row t [ "with,comma"; "quote\"inside" ];
  let out = Table.to_csv t in
  Alcotest.(check string) "csv"
    "name,value\nplain,1\n\"with,comma\",\"quote\"\"inside\"\n" out

let scatter_marks_points () =
  let out = Table.scatter ~xlabel:"x" ~ylabel:"y" [ (1.0, 0.5); (2.0, 2.0) ] in
  check "has star" true (String.contains out '*');
  check "has diagonal" true (String.contains out '.');
  check "diagonal hit marked" true (String.contains out 'o');
  Alcotest.(check string) "empty plot" "(no points)" (Table.scatter ~xlabel:"x" ~ylabel:"y" [])

let () =
  Alcotest.run "metrics"
    [
      ( "stats",
        [
          Alcotest.test_case "summarize known sample" `Quick summarize_known_sample;
          Alcotest.test_case "singleton" `Quick summarize_singleton;
          Alcotest.test_case "empty rejected" `Quick summarize_empty_rejected;
          Alcotest.test_case "percentiles" `Quick percentiles;
          Alcotest.test_case "relative metrics" `Quick relative_metrics;
        ] );
      ( "rendering",
        [
          Alcotest.test_case "table aligned" `Quick table_renders_aligned;
          Alcotest.test_case "table rejects bad rows" `Quick table_rejects_bad_rows;
          Alcotest.test_case "csv export" `Quick csv_export;
          Alcotest.test_case "scatter marks points" `Quick scatter_marks_points;
        ] );
    ]
