(* The Session façade: churn, reshaping and failure repair end to end. *)

module Graph = Smrp_graph.Graph
module Rng = Smrp_rng.Rng
module Waxman = Smrp_topology.Waxman
module Fixtures = Smrp_topology.Fixtures
module Tree = Smrp_core.Tree
module Failure = Smrp_core.Failure
module Recovery = Smrp_core.Recovery
module Session = Smrp_core.Session

(* Property tests run with a pinned PRNG state so failures are
   reproducible run over run. *)
let qcheck_case t = QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| 424242 |]) t

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let edge g u v = (Option.get (Graph.edge_between g u v)).Graph.id

let assert_valid t = match Tree.validate t with Ok () -> () | Error e -> Alcotest.fail e

let join_leave_events () =
  let g = Fixtures.line 4 in
  let s = Session.create g ~source:0 ~protocol:(Session.Smrp { d_thresh = 0.3 }) in
  Session.join s 3;
  Session.join s 2;
  Session.leave s 3;
  check_int "one member" 1 (Tree.member_count (Session.tree s));
  (match Session.events s with
  | [ Session.Joined 3; Session.Joined 2; Session.Left 3 ] -> ()
  | _ -> Alcotest.fail "unexpected event log");
  assert_valid (Session.tree s)

let protocols_choose_strategy () =
  let g = Fixtures.fig1 () in
  ignore g;
  let f = Fixtures.fig1 () in
  let graph = f.Fixtures.graph in
  let run protocol =
    let s = Session.create graph ~source:f.Fixtures.s ~protocol in
    Session.join s f.Fixtures.c;
    Session.join s f.Fixtures.d;
    let repairs = Session.fail s (Failure.Link (edge graph f.Fixtures.a f.Fixtures.d)) in
    (s, repairs)
  in
  let _, spf_repairs = run Session.Spf in
  (match spf_repairs with
  | [ r ] -> check "SPF repairs globally" true (r.Session.strategy = `Global)
  | _ -> Alcotest.fail "expected one repair");
  let _, smrp_repairs = run (Session.Smrp { d_thresh = 0.3 }) in
  match smrp_repairs with
  | [ r ] ->
      check "SMRP repairs locally" true (r.Session.strategy = `Local);
      check "local detour is short" true (r.Session.detour.Recovery.recovery_distance <= 2.0)
  | _ -> Alcotest.fail "expected one repair"

let fail_restores_members () =
  let rng = Rng.create 77 in
  let topo = Waxman.generate rng ~n:60 ~alpha:0.25 ~beta:0.25 in
  let g = topo.Waxman.graph in
  let sample = Smrp_rng.Rng.sample_without_replacement rng 13 60 in
  let source = List.hd sample in
  let members = List.tl sample in
  let s = Session.create g ~source ~protocol:(Session.Smrp { d_thresh = 0.3 }) in
  List.iter (Session.join s) members;
  let victim = List.hd members in
  match Failure.worst_case_for_member (Session.tree s) victim with
  | None -> Alcotest.fail "expected a worst case"
  | Some f ->
      let affected = Failure.affected_members (Session.tree s) f in
      let repairs = Session.fail s f in
      let tree = Session.tree s in
      assert_valid tree;
      let lost =
        List.filter_map (function Session.Lost m -> Some m | _ -> None) (Session.events s)
      in
      List.iter
        (fun m ->
          if List.mem m lost then check "lost member off tree" false (Tree.is_member tree m)
          else check "member restored" true (Tree.is_member tree m))
        members;
      check_int "every affected member repaired or lost" (List.length affected)
        (List.length repairs + List.length lost)

let fail_logs_lost_members () =
  let g = Fixtures.line 3 in
  let s = Session.create g ~source:0 ~protocol:(Session.Smrp { d_thresh = 0.3 }) in
  Session.join s 2;
  let repairs = Session.fail s (Failure.Link (edge g 1 2)) in
  check_int "no repairs possible" 0 (List.length repairs);
  check "lost logged" true (List.mem (Session.Lost 2) (Session.events s));
  check "member dropped" false (Tree.is_member (Session.tree s) 2)

let fail_cascades_through_recovered_members () =
  (* Fig. 2(b)'s effect: after the failure cuts several members, an early
     repair can serve as a later member's merge point.  With D_thresh = 0
     both members share the 0-1-2-3 side of the ring; when 0-1 fails, member
     3 re-attaches around the ring (RD 5) and member 2 then merges onto 3's
     fresh path for RD 1 instead of its own RD 6 detour. *)
  let g = Fixtures.ring 8 in
  let s = Session.create g ~source:0 ~protocol:(Session.Smrp { d_thresh = 0.0 }) in
  Session.join s 2;
  Session.join s 3;
  let repairs = Session.fail s (Failure.Link (edge g 0 1)) in
  let tree = Session.tree s in
  assert_valid tree;
  check "2 and 3 back" true (Tree.is_member tree 2 && Tree.is_member tree 3);
  match repairs with
  | [ first; second ] ->
      check_int "far member first" 3 first.Session.detour.Recovery.member;
      Alcotest.(check (float 1e-9)) "around the ring" 5.0
        first.Session.detour.Recovery.recovery_distance;
      check_int "near member second" 2 second.Session.detour.Recovery.member;
      Alcotest.(check (float 1e-9)) "one hop onto the fresh path" 1.0
        second.Session.detour.Recovery.recovery_distance
  | _ -> Alcotest.fail "expected two repairs"

let reshape_all_counts () =
  let f = Fixtures.fig4 () in
  let s = Session.create f.Fixtures.graph ~source:f.Fixtures.s ~protocol:(Session.Smrp { d_thresh = 0.3 }) in
  Session.join s f.Fixtures.e;
  Session.join s f.Fixtures.g;
  Session.join s f.Fixtures.f;
  let switches = Session.reshape_all s in
  check "at least E switched" true (switches >= 1);
  assert_valid (Session.tree s)

let reshape_all_noop_for_spf () =
  let g = Fixtures.line 4 in
  let s = Session.create g ~source:0 ~protocol:Session.Spf in
  Session.join s 3;
  check_int "SPF does not reshape" 0 (Session.reshape_all s)

let sequential_failures_accumulate () =
  (* Two consecutive persistent failures on a ring: the session must avoid
     BOTH failed links for the second repair and for later joins. *)
  let g = Fixtures.ring 8 in
  let s = Session.create g ~source:0 ~protocol:(Session.Smrp { d_thresh = 0.0 }) in
  Session.join s 2;
  ignore (Session.fail s (Failure.Link (edge g 0 1)));
  (* 2 is now attached the long way round: 2-3-4-5-6-7-0. *)
  check "2 repaired" true (Tree.is_member (Session.tree s) 2);
  ignore (Session.fail s (Failure.Link (edge g 4 5)));
  (* Both ring arcs towards 2 now have a cut: 2 is isolated and dropped. *)
  check "2 lost after the second cut" false (Tree.is_member (Session.tree s) 2);
  (match Session.active_failure s with
  | Some (Failure.Multi [ _; _ ]) -> ()
  | _ -> Alcotest.fail "expected two active failures");
  (* A new join on the surviving side must route around both failures. *)
  Session.join s 6;
  check "6 joined on the surviving arc" true (Tree.is_member (Session.tree s) 6);
  Alcotest.(check (list int)) "6's path avoids the cuts" [ 6; 7; 0 ]
    (Tree.path_to_source (Session.tree s) 6);
  assert_valid (Session.tree s)

let join_after_failure_avoids_dead_link () =
  let g = Fixtures.diamond () in
  let s = Session.create g ~source:0 ~protocol:Session.Spf in
  ignore (Session.fail s (Failure.Link (edge g 0 1)));
  Session.join s 3;
  (* 3's unicast shortest path tie goes via 1 or 2; with 0-1 dead it must
     come in through 2. *)
  Alcotest.(check (list int)) "routes around the failure" [ 3; 2; 0 ]
    (Tree.path_to_source (Session.tree s) 3);
  assert_valid (Session.tree s)

let reshape_respects_active_failures () =
  let g = Fixtures.ring 6 in
  let s = Session.create g ~source:0 ~protocol:(Session.Smrp { d_thresh = 2.0 }) in
  Session.join s 2;
  ignore (Session.fail s (Failure.Link (edge g 0 1)));
  ignore (Session.reshape_all s);
  (* Whatever reshaping did, the tree must not use the failed link. *)
  let f = Option.get (Session.active_failure s) in
  List.iter
    (fun eid -> check "no failed link in tree" true (Failure.edge_ok g f eid))
    (Tree.tree_edges (Session.tree s));
  assert_valid (Session.tree s)

let qcheck_session_failures_leave_valid_trees =
  QCheck.Test.make ~name:"session repair always leaves a valid tree" ~count:80 QCheck.small_int
    (fun seed ->
      let rng = Rng.create seed in
      let n = 20 + Rng.int rng 40 in
      let topo = Waxman.generate rng ~n ~alpha:0.2 ~beta:0.2 in
      let g = topo.Waxman.graph in
      let k = 2 + Rng.int rng 10 in
      let sample = Smrp_rng.Rng.sample_without_replacement rng (k + 1) n in
      let s =
        Session.create g ~source:(List.hd sample) ~protocol:(Session.Smrp { d_thresh = 0.3 })
      in
      List.iter (Session.join s) (List.tl sample);
      let victim = List.nth sample 1 in
      match Failure.worst_case_for_member (Session.tree s) victim with
      | None -> true
      | Some f ->
          ignore (Session.fail s f);
          Tree.validate (Session.tree s) = Ok ())

let () =
  Alcotest.run "session"
    [
      ( "membership",
        [
          Alcotest.test_case "join/leave with events" `Quick join_leave_events;
          Alcotest.test_case "reshape_all counts" `Quick reshape_all_counts;
          Alcotest.test_case "reshape_all noop for SPF" `Quick reshape_all_noop_for_spf;
        ] );
      ( "failures",
        [
          Alcotest.test_case "protocol picks strategy" `Quick protocols_choose_strategy;
          Alcotest.test_case "restores members" `Quick fail_restores_members;
          Alcotest.test_case "logs lost members" `Quick fail_logs_lost_members;
          Alcotest.test_case "repairs cascade" `Quick fail_cascades_through_recovered_members;
          Alcotest.test_case "sequential failures accumulate" `Quick sequential_failures_accumulate;
          Alcotest.test_case "joins avoid dead links" `Quick join_after_failure_avoids_dead_link;
          Alcotest.test_case "reshape respects failures" `Quick reshape_respects_active_failures;
        ] );
      ( "properties",
        [ qcheck_case qcheck_session_failures_leave_valid_trees ] );
    ]
