module Graph = Smrp_graph.Graph
module Fixtures = Smrp_topology.Fixtures
module Tree = Smrp_core.Tree
module Spf = Smrp_core.Spf
module Failure = Smrp_core.Failure
module Dot = Smrp_core.Dot

let check = Alcotest.(check bool)

let contains haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec scan i = i + nl <= hl && (String.sub haystack i nl = needle || scan (i + 1)) in
  scan 0

let tree_export () =
  let g = Fixtures.line 4 in
  let t = Spf.build g ~source:0 ~members:[ 3 ] in
  let dot = Dot.tree t in
  check "digraph" true (contains dot "digraph");
  check "member styled" true (contains dot "3 [shape=box");
  check "source styled" true (contains dot "0 [shape=doublecircle");
  check "edge present" true (contains dot "3 -> 2");
  check "balanced braces" true (contains dot "}")

let network_export () =
  let f = Fixtures.fig1 () in
  let g = f.Fixtures.graph in
  let t = Spf.build g ~source:f.Fixtures.s ~members:[ f.Fixtures.c; f.Fixtures.d ] in
  let eid = (Option.get (Graph.edge_between g f.Fixtures.a f.Fixtures.d)).Graph.id in
  let dot = Dot.network ~tree:t ~failure:(Failure.Link eid) ~highlight:[ 0 ] g in
  check "undirected graph" true (contains dot "graph network");
  check "failed edge dashed red" true (contains dot "style=dashed, color=red");
  check "highlight dotted blue" true (contains dot "style=dotted, color=blue");
  check "tree edges bold" true (contains dot "penwidth=2.5");
  check "labels carry delays" true (contains dot "label=\"1.5\"")

let network_without_tree () =
  let g = Fixtures.diamond () in
  let dot = Dot.network g in
  check "renders plain" true (contains dot "0 -- 1")

let () =
  Alcotest.run "dot"
    [
      ( "export",
        [
          Alcotest.test_case "tree" `Quick tree_export;
          Alcotest.test_case "network with failure" `Quick network_export;
          Alcotest.test_case "network plain" `Quick network_without_tree;
        ] );
    ]
