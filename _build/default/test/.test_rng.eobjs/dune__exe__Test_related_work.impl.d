test/test_related_work.ml: Alcotest Smrp_experiments Smrp_metrics String
