test/test_topology.ml: Alcotest Array List QCheck QCheck_alcotest Random Smrp_graph Smrp_rng Smrp_topology
