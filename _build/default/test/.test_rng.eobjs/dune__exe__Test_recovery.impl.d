test/test_recovery.ml: Alcotest Array List Option QCheck QCheck_alcotest Random Smrp_core Smrp_graph Smrp_rng Smrp_topology
