test/test_paper_examples.ml: Alcotest List Option Smrp_core Smrp_graph Smrp_topology
