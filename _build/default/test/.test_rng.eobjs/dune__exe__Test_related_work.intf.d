test/test_related_work.mli:
