test/test_paper_examples.mli:
