test/test_steiner.ml: Alcotest List QCheck QCheck_alcotest Random Smrp_core Smrp_experiments Smrp_graph Smrp_metrics Smrp_rng Smrp_topology String
