test/test_reshape.mli:
