test/test_rng.ml: Alcotest Array Fun Hashtbl List Option Printf QCheck QCheck_alcotest Random Smrp_rng
