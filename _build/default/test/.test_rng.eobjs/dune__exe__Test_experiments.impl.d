test/test_experiments.ml: Alcotest List Smrp_core Smrp_experiments Smrp_metrics String
