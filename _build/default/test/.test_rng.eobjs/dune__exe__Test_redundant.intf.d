test/test_redundant.mli:
