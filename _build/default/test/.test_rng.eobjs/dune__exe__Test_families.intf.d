test/test_families.mli:
