test/test_tree.ml: Alcotest Format List Option Smrp_core Smrp_graph Smrp_topology
