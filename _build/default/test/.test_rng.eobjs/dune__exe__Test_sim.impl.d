test/test_sim.ml: Alcotest List Option Smrp_core Smrp_graph Smrp_rng Smrp_sim Smrp_topology
