test/test_dot.mli:
