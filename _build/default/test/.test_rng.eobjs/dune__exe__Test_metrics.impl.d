test/test_metrics.ml: Alcotest List Smrp_metrics String
