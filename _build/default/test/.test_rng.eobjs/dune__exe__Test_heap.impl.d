test/test_heap.ml: Alcotest List Option QCheck QCheck_alcotest Random Smrp_graph
