test/test_graph.ml: Alcotest Array List Option Printf QCheck QCheck_alcotest Random Smrp_graph Smrp_rng Smrp_topology
