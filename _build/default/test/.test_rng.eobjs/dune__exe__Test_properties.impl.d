test/test_properties.ml: Alcotest Fun List Option QCheck QCheck_alcotest Random Smrp_core Smrp_graph Smrp_rng Smrp_topology
