test/test_families.ml: Alcotest Array List QCheck QCheck_alcotest Random Smrp_experiments Smrp_graph Smrp_metrics Smrp_rng Smrp_topology String
