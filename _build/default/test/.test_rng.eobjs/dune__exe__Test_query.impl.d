test/test_query.ml: Alcotest List QCheck QCheck_alcotest Random Smrp_core Smrp_graph Smrp_rng Smrp_topology
