test/test_dot.ml: Alcotest Option Smrp_core Smrp_graph Smrp_topology String
