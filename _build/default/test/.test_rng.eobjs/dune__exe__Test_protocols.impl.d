test/test_protocols.ml: Alcotest Format List Option QCheck QCheck_alcotest Random Smrp_core Smrp_graph Smrp_rng Smrp_topology
