(* Redundant trees (Medard et al. [16]): construction, the per-node
   link-disjointness guarantee, and single-failure survival. *)

module Graph = Smrp_graph.Graph
module Connectivity = Smrp_graph.Connectivity
module Rng = Smrp_rng.Rng
module Waxman = Smrp_topology.Waxman
module Fixtures = Smrp_topology.Fixtures
module Failure = Smrp_core.Failure
module Redundant = Smrp_core.Redundant

(* Property tests run with a pinned PRNG state so failures are
   reproducible run over run. *)
let qcheck_case t = QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| 424242 |]) t

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let every_node_protected g t =
  let n = Graph.node_count g in
  let ok = ref true in
  for v = 0 to n - 1 do
    if v <> Redundant.source t then begin
      if not (Redundant.paths_disjoint t v) then ok := false;
      (* Any single link failure leaves v connected through one tree. *)
      Graph.iter_edges
        (fun e -> if not (Redundant.survives t (Failure.Link e.Graph.id) ~member:v) then ok := false)
        g
    end
  done;
  !ok

let ring_builds () =
  let g = Fixtures.ring 6 in
  let t = Option.get (Redundant.build g ~source:0) in
  check "every node protected" true (every_node_protected g t);
  (* On a ring the red and blue paths are the two ways around. *)
  let red_nodes, _ = Redundant.red_path t 3 in
  let blue_nodes, _ = Redundant.blue_path t 3 in
  check "paths differ" true (red_nodes <> blue_nodes);
  check_int "together they cover the ring" 8 (List.length red_nodes + List.length blue_nodes)

let diamond_builds () =
  let g = Fixtures.diamond () in
  let t = Option.get (Redundant.build g ~source:0) in
  check "every node protected" true (every_node_protected g t)

let grid_builds () =
  let g = Fixtures.grid 4 in
  let t = Option.get (Redundant.build g ~source:5) in
  check "every node protected" true (every_node_protected g t)

let line_rejected () =
  check "bridges make it impossible" true (Redundant.build (Fixtures.line 4) ~source:0 = None)

let pendant_rejected () =
  (* A triangle with a pendant node: 2-edge-connected except the pendant. *)
  let g = Graph.create 4 in
  ignore (Graph.add_edge g 0 1 1.0);
  ignore (Graph.add_edge g 1 2 1.0);
  ignore (Graph.add_edge g 2 0 1.0);
  ignore (Graph.add_edge g 2 3 1.0);
  check "rejected" true (Redundant.build g ~source:0 = None)

let disconnected_rejected () =
  let g = Graph.create 4 in
  ignore (Graph.add_edge g 0 1 1.0);
  ignore (Graph.add_edge g 2 3 1.0);
  check "rejected" true (Redundant.build g ~source:0 = None)

let two_blocks_share_source () =
  (* Two cycles sharing only the source: 2-edge-connected (every edge on a
     cycle) but not 2-vertex-connected — the closed-ear case. *)
  let g = Graph.create 5 in
  ignore (Graph.add_edge g 0 1 1.0);
  ignore (Graph.add_edge g 1 2 1.0);
  ignore (Graph.add_edge g 2 0 1.0);
  ignore (Graph.add_edge g 0 3 1.0);
  ignore (Graph.add_edge g 3 4 1.0);
  ignore (Graph.add_edge g 4 0 1.0);
  let t = Option.get (Redundant.build g ~source:0) in
  check "every node protected" true (every_node_protected g t)

let closed_ear_off_source () =
  (* A cycle with a second cycle hanging off a non-source node. *)
  let g = Graph.create 6 in
  ignore (Graph.add_edge g 0 1 1.0);
  ignore (Graph.add_edge g 1 2 1.0);
  ignore (Graph.add_edge g 2 0 1.0);
  ignore (Graph.add_edge g 2 3 1.0);
  ignore (Graph.add_edge g 3 4 1.0);
  ignore (Graph.add_edge g 4 5 1.0);
  ignore (Graph.add_edge g 5 2 1.0);
  let t = Option.get (Redundant.build g ~source:0) in
  check "every node protected" true (every_node_protected g t)

let delays_and_cost () =
  let g = Fixtures.ring 4 in
  let t = Option.get (Redundant.build g ~source:0) in
  check "delay is the faster path" true (Redundant.delay t 1 <= Redundant.worst_delay t 1);
  let cost_all = Redundant.provisioned_cost t ~receivers:[ 1; 2; 3 ] in
  (* All four ring edges are provisioned. *)
  Alcotest.(check (float 1e-9)) "whole ring provisioned" 4.0 cost_all;
  let cost_one = Redundant.provisioned_cost t ~receivers:[ 1 ] in
  check "subset costs less or equal" true (cost_one <= cost_all)

let singleton_graph () =
  let g = Graph.create 1 in
  let t = Option.get (Redundant.build g ~source:0) in
  check_int "source" 0 (Redundant.source t)

let qcheck_protection_on_2ec_graphs =
  QCheck.Test.make ~name:"MFBG protects every node on 2-edge-connected Waxman graphs" ~count:80
    QCheck.small_int (fun seed ->
      let rng = Rng.create seed in
      let n = 8 + Rng.int rng 30 in
      (* Dense draws are usually 2-edge-connected; skip the rest. *)
      let topo = Waxman.generate rng ~n ~alpha:0.8 ~beta:0.6 in
      let g = topo.Waxman.graph in
      if Connectivity.bridges g <> [] then true
      else
        match Redundant.build g ~source:0 with
        | None -> false (* bridgeless connected graph must build *)
        | Some t -> every_node_protected g t)

let qcheck_rejects_bridged_graphs =
  QCheck.Test.make ~name:"construction rejects exactly the bridged graphs" ~count:80
    QCheck.small_int (fun seed ->
      let rng = Rng.create seed in
      let n = 6 + Rng.int rng 30 in
      let topo = Waxman.generate rng ~n ~alpha:0.2 ~beta:0.2 in
      let g = topo.Waxman.graph in
      let has_bridge = Connectivity.bridges g <> [] in
      match Redundant.build g ~source:0 with
      | None -> has_bridge
      | Some _ -> not has_bridge)

let () =
  Alcotest.run "redundant"
    [
      ( "construction",
        [
          Alcotest.test_case "ring" `Quick ring_builds;
          Alcotest.test_case "diamond" `Quick diamond_builds;
          Alcotest.test_case "grid" `Quick grid_builds;
          Alcotest.test_case "two blocks at the source" `Quick two_blocks_share_source;
          Alcotest.test_case "closed ear off the source" `Quick closed_ear_off_source;
          Alcotest.test_case "singleton" `Quick singleton_graph;
        ] );
      ( "rejection",
        [
          Alcotest.test_case "line" `Quick line_rejected;
          Alcotest.test_case "pendant" `Quick pendant_rejected;
          Alcotest.test_case "disconnected" `Quick disconnected_rejected;
        ] );
      ("metrics", [ Alcotest.test_case "delays and cost" `Quick delays_and_cost ]);
      ( "properties",
        [
          qcheck_case qcheck_protection_on_2ec_graphs;
          qcheck_case qcheck_rejects_bridged_graphs;
        ] );
    ]
