(* Quickstart: build an SMRP multicast session on the paper's Figure 1
   topology, break the on-tree link, and watch the local detour restore
   service.

   Run with:  dune exec examples/quickstart.exe *)

module Graph = Smrp_graph.Graph
module Fixtures = Smrp_topology.Fixtures
module Tree = Smrp_core.Tree
module Failure = Smrp_core.Failure
module Recovery = Smrp_core.Recovery
module Session = Smrp_core.Session

let name_of (f : Fixtures.fig1) v =
  if v = f.Fixtures.s then "S"
  else if v = f.Fixtures.a then "A"
  else if v = f.Fixtures.b then "B"
  else if v = f.Fixtures.c then "C"
  else "D"

let path_string f t v =
  String.concat " -> " (List.map (name_of f) (Tree.path_to_source t v))

let () =
  let f = Fixtures.fig1 () in
  let g = f.Fixtures.graph in

  (* One multicast session under SMRP with the paper's reference bound. *)
  let session = Session.create g ~source:f.Fixtures.s ~protocol:(Session.Smrp { d_thresh = 0.3 }) in
  Session.join session f.Fixtures.c;
  Session.join session f.Fixtures.d;

  let tree = Session.tree session in
  print_endline "Initial SMRP tree (Figure 1 topology, members C and D):";
  Printf.printf "  C's path: %s   (SHR %d, delay %g)\n" (path_string f tree f.Fixtures.c)
    (Tree.shr tree f.Fixtures.c)
    (Tree.delay_to_source tree f.Fixtures.c);
  Printf.printf "  D's path: %s   (SHR %d, delay %g)\n" (path_string f tree f.Fixtures.d)
    (Tree.shr tree f.Fixtures.d)
    (Tree.delay_to_source tree f.Fixtures.d);
  Printf.printf "  tree cost: %g\n\n" (Tree.total_cost tree);

  (* Break the link carrying D's traffic and let the session repair itself
     with a local detour. *)
  let failed = Option.get (Graph.edge_between g f.Fixtures.a f.Fixtures.d) in
  Printf.printf "Failing link A--D ...\n";
  let repairs = Session.fail session (Failure.Link failed.Graph.id) in

  List.iter
    (fun r ->
      let d = r.Session.detour in
      Printf.printf "  member %s recovered via %s: new links %s, recovery distance %g\n"
        (name_of f d.Recovery.member) (name_of f d.Recovery.merge)
        (String.concat " -> " (List.map (name_of f) d.Recovery.path_nodes))
        d.Recovery.recovery_distance)
    repairs;

  let tree = Session.tree session in
  print_endline "\nTree after recovery:";
  Printf.printf "  C's path: %s\n" (path_string f tree f.Fixtures.c);
  Printf.printf "  D's path: %s   (delay %g)\n" (path_string f tree f.Fixtures.d)
    (Tree.delay_to_source tree f.Fixtures.d);
  (match Tree.validate tree with
  | Ok () -> print_endline "  (invariants hold)"
  | Error e -> Printf.printf "  INVARIANT VIOLATION: %s\n" e)
