(* A QoS-sensitive video conference (the paper's §3.1 motivating workload):
   participants churn over a 100-router ISP topology, the tree is reshaped
   when Condition I detects SHR drift, and a router failure mid-conference
   is repaired by local detours.

   Run with:  dune exec examples/video_conference.exe *)

module Rng = Smrp_rng.Rng
module Graph = Smrp_graph.Graph
module Waxman = Smrp_topology.Waxman
module Tree = Smrp_core.Tree
module Smrp = Smrp_core.Smrp
module Reshape = Smrp_core.Reshape
module Failure = Smrp_core.Failure
module Session = Smrp_core.Session
module Stats = Smrp_metrics.Stats

let () =
  let rng = Rng.create 2026 in
  let topo = Waxman.generate rng ~n:100 ~alpha:0.2 ~beta:0.2 in
  let g = topo.Waxman.graph in
  Printf.printf "ISP backbone: %d routers, %d links (avg degree %.1f)\n" (Graph.node_count g)
    (Graph.edge_count g) (Graph.average_degree g);

  let everyone = Array.of_list (Rng.sample_without_replacement rng 41 100) in
  Rng.shuffle rng everyone;
  let studio = everyone.(0) in
  let session = Session.create g ~source:studio ~protocol:(Session.Smrp { d_thresh = 0.3 }) in
  let monitor = ref (Reshape.monitor (Session.tree session)) in

  Printf.printf "Studio feed originates at router %d.\n\n" studio;

  (* Phase 1: 25 participants join. *)
  for i = 1 to 25 do
    Session.join session everyone.(i)
  done;
  let tree = Session.tree session in
  let delays = List.map (Tree.delay_to_source tree) (Tree.members tree) in
  Printf.printf "Phase 1 - %d participants connected; mean feed delay %.3f, tree cost %.2f\n"
    (Tree.member_count tree) (Stats.mean delays) (Tree.total_cost tree);

  (* Phase 2: churn — 10 leave, 15 more join; Condition I reshapes drifted
     paths. *)
  for i = 1 to 10 do
    Session.leave session everyone.(i)
  done;
  for i = 26 to 40 do
    Session.join session everyone.(i)
  done;
  let switches = Reshape.run_condition_i ~d_thresh:0.3 ~threshold:1 !monitor (Session.tree session) in
  monitor := Reshape.monitor (Session.tree session);
  let tree = Session.tree session in
  Printf.printf "Phase 2 - churn complete: %d participants, Condition I reshaped %d paths\n"
    (Tree.member_count tree) switches;

  (* Phase 3: a backbone router fails mid-conference. *)
  let victim = List.hd (Tree.members tree) in
  (match Failure.worst_case_for_member tree victim with
  | Some f ->
      let affected = Failure.affected_members tree f in
      Printf.printf "Phase 3 - worst-case failure for participant %d (%s): %d participants cut\n"
        victim
        (Format.asprintf "%a" (Failure.pp g) f)
        (List.length affected);
      let repairs = Session.fail session f in
      let rds = List.map (fun r -> r.Session.detour.Smrp_core.Recovery.recovery_distance) repairs in
      let lost =
        List.filter_map (function Session.Lost m -> Some m | _ -> None) (Session.events session)
      in
      Printf.printf "          %d repaired by local detour (mean recovery distance %.3f), %d lost\n"
        (List.length repairs)
        (match rds with [] -> 0.0 | _ -> Stats.mean rds)
        (List.length lost)
  | None -> print_endline "Phase 3 - victim adjacent to the source; nothing to fail");

  let tree = Session.tree session in
  match Tree.validate tree with
  | Ok () ->
      let delays = List.map (Tree.delay_to_source tree) (Tree.members tree) in
      Printf.printf "\nConference continues with %d participants; mean feed delay %.3f\n"
        (Tree.member_count tree) (Stats.mean delays)
  | Error e -> Printf.printf "invariant violation: %s\n" e
