(* Packet-level restoration timeline (the paper's §1 motivation): the same
   session run twice through the discrete-event simulator — once recovering
   with SMRP local detours, once as a PIM-style system that must wait for
   unicast reconvergence — with per-member disruption timelines.

   Run with:  dune exec examples/failure_storm.exe *)

module Rng = Smrp_rng.Rng
module Graph = Smrp_graph.Graph
module Waxman = Smrp_topology.Waxman
module Tree = Smrp_core.Tree
module Failure = Smrp_core.Failure
module Engine = Smrp_sim.Engine
module Protocol = Smrp_sim.Protocol

let run_side ~graph ~source ~members ~name strategy =
  let engine = Engine.create () in
  let config =
    { Protocol.default_config with Protocol.strategy; ospf_convergence = 5.0 }
  in
  let proto = Protocol.create ~config engine graph ~source in
  Protocol.start proto;
  List.iteri
    (fun i m -> ignore (Engine.schedule engine ~delay:(0.5 +. float_of_int i) (fun () -> Protocol.join proto m)))
    members;
  Engine.run ~until:60.0 engine;
  (* Fail the busiest link below the source. *)
  let tree = Protocol.tree proto in
  let busiest =
    List.fold_left
      (fun best c ->
        match best with
        | Some b when Tree.subtree_members tree b >= Tree.subtree_members tree c -> best
        | _ -> Some c)
      None (Tree.children tree source)
  in
  (match busiest with
  | Some child -> Protocol.inject_link_failure proto (Option.get (Tree.parent_edge tree child))
  | None -> failwith "empty tree");
  Engine.run ~until:120.0 engine;
  Printf.printf "%s:\n" name;
  List.iter
    (fun r ->
      match (r.Protocol.detected, r.Protocol.restored) with
      | Some d, Some rr ->
          Printf.printf "  member %3d  disrupted, detected +%.2fs, video back +%.2fs\n"
            r.Protocol.member d rr
      | Some d, None ->
          Printf.printf "  member %3d  disrupted at +%.2fs and never restored\n" r.Protocol.member d
      | None, _ -> ())
    (Protocol.reports proto);
  let restored = List.filter_map (fun r -> r.Protocol.restored) (Protocol.reports proto) in
  (match restored with
  | [] -> Printf.printf "  (no member needed recovery)\n"
  | _ ->
      Printf.printf "  mean restoration: %.2fs over %d members\n"
        (List.fold_left ( +. ) 0.0 restored /. float_of_int (List.length restored))
        (List.length restored));
  print_newline ()

let () =
  let rng = Rng.create 90210 in
  let topo = Waxman.generate rng ~n:80 ~alpha:0.25 ~beta:0.25 in
  let graph = topo.Waxman.graph in
  let sample = Array.of_list (Rng.sample_without_replacement rng 16 80) in
  Rng.shuffle rng sample;
  let source = sample.(0) in
  let members = Array.to_list (Array.sub sample 1 15) in
  Printf.printf
    "Monitoring feed from router %d to %d stations; the busiest uplink fails at t=60s.\n\n" source
    (List.length members);
  run_side ~graph ~source ~members ~name:"SMRP (immediate local detour)" Protocol.Local;
  run_side ~graph ~source ~members ~name:"PIM over OSPF (global re-join after ~5s reconvergence)"
    Protocol.Global
