examples/quickstart.ml: List Option Printf Smrp_core Smrp_graph Smrp_topology String
