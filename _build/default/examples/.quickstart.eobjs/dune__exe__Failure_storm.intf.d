examples/failure_storm.mli:
