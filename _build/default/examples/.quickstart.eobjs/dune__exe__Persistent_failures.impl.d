examples/persistent_failures.ml: Array Format List Option Printf Smrp_core Smrp_graph Smrp_rng Smrp_topology
