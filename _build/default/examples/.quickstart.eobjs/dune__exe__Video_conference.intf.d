examples/video_conference.mli:
