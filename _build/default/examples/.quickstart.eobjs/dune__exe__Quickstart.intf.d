examples/quickstart.mli:
