examples/persistent_failures.mli:
