examples/hierarchical_recovery.ml: Array Format List Printf Smrp_core Smrp_graph Smrp_rng Smrp_topology String
