examples/failure_storm.ml: Array List Option Printf Smrp_core Smrp_graph Smrp_rng Smrp_sim Smrp_topology
