examples/video_conference.ml: Array Format List Printf Smrp_core Smrp_graph Smrp_metrics Smrp_rng Smrp_topology
