examples/hierarchical_recovery.mli:
