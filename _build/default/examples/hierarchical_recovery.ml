(* Hierarchical recovery (§3.3.3): a transit-stub internetwork where every
   stub domain repairs its own failures, keeping reconfiguration out of the
   backbone.

   Run with:  dune exec examples/hierarchical_recovery.exe *)

module Rng = Smrp_rng.Rng
module Graph = Smrp_graph.Graph
module Subgraph = Smrp_graph.Subgraph
module Transit_stub = Smrp_topology.Transit_stub
module Tree = Smrp_core.Tree
module Failure = Smrp_core.Failure
module Recovery = Smrp_core.Recovery
module Hierarchy = Smrp_core.Hierarchy

let () =
  let rng = Rng.create 7 in
  let ts = Transit_stub.generate rng Transit_stub.default_params in
  let g = ts.Transit_stub.graph in
  Printf.printf "Transit-stub internetwork: %d routers, %d links, %d stub domains\n"
    (Graph.node_count g) (Graph.edge_count g) ts.Transit_stub.stub_count;

  (* The session: a source and twelve receivers scattered over the stubs. *)
  let stub_nodes =
    List.concat (List.init ts.Transit_stub.stub_count (Transit_stub.nodes_of_stub ts))
  in
  let pool = Array.of_list stub_nodes in
  Rng.shuffle rng pool;
  let source = pool.(0) in
  let members = Array.to_list (Array.sub pool 1 12) in
  let h = Hierarchy.build ~d_thresh:0.3 ts ~source ~members in

  let domains = Hierarchy.member_domains h in
  Printf.printf "Recovery domains in use: top (transit) + %d stub domains, agents: %s\n\n"
    (List.length domains)
    (String.concat ", "
       (List.map (fun (d : Hierarchy.domain) -> string_of_int d.Hierarchy.agent) domains));

  (* Fail the first on-tree link inside each member stub domain and recover
     locally; compare against the flat tree over the whole internetwork. *)
  let flat = Hierarchy.flat_equivalent h in
  let stub_of v =
    match ts.Transit_stub.roles.(v) with Transit_stub.Stub d -> d | Transit_stub.Transit _ -> -1
  in
  List.iter
    (fun (dom : Hierarchy.domain) ->
      let bridges = Smrp_graph.Connectivity.bridges dom.Hierarchy.sub.Subgraph.graph in
      match
        List.filter (fun e -> not (List.mem e bridges)) (Tree.tree_edges dom.Hierarchy.tree)
      with
      | [] -> ()
      | sub_eid :: _ ->
          let orig = dom.Hierarchy.sub.Subgraph.edge_from_sub.(sub_eid) in
          let f = Failure.Link orig in
          Printf.printf "Failure in stub domain %d (%s):\n" dom.Hierarchy.id
            (Format.asprintf "%a" (Failure.pp g) f);
          List.iter
            (fun r ->
              Printf.printf "  hierarchical: receiver %d re-attached inside domain %d, RD %.2f\n"
                r.Hierarchy.receiver r.Hierarchy.domain_id r.Hierarchy.recovery_distance)
            (Hierarchy.recover h f);
          List.iter
            (fun m ->
              match Recovery.local_detour flat f ~member:m with
              | Some d ->
                  let escaped =
                    List.exists (fun v -> stub_of v <> dom.Hierarchy.id) d.Recovery.path_nodes
                  in
                  Printf.printf "  flat:         receiver %d detour RD %.2f%s\n" m
                    d.Recovery.recovery_distance
                    (if escaped then "  (detour leaves the domain!)" else "")
              | None -> Printf.printf "  flat:         receiver %d unrecoverable\n" m)
            (Failure.affected_members flat f))
    domains
