(* A session outliving a sequence of persistent failures (§1: disruptions
   "usually last for hours", so several can be active at once).  Every
   repair, every later join, and every reshaping pass must route around all
   accumulated failures.

   Run with:  dune exec examples/persistent_failures.exe *)

module Rng = Smrp_rng.Rng
module Graph = Smrp_graph.Graph
module Waxman = Smrp_topology.Waxman
module Tree = Smrp_core.Tree
module Failure = Smrp_core.Failure
module Recovery = Smrp_core.Recovery
module Session = Smrp_core.Session

let () =
  let rng = Rng.create 404 in
  let topo = Waxman.generate rng ~n:80 ~alpha:0.25 ~beta:0.25 in
  let g = topo.Waxman.graph in
  let pool = Array.of_list (Rng.sample_without_replacement rng 25 80) in
  Rng.shuffle rng pool;
  (* A realistic head-end is multi-homed: source the session at the
     best-connected sampled router. *)
  let best = ref 0 in
  Array.iteri (fun i v -> if Graph.degree g v > Graph.degree g pool.(!best) then best := i) pool;
  let tmp = pool.(0) in
  pool.(0) <- pool.(!best);
  pool.(!best) <- tmp;
  let source = pool.(0) in
  let session = Session.create g ~source ~protocol:(Session.Smrp { d_thresh = 0.3 }) in
  for i = 1 to 16 do
    Session.join session pool.(i)
  done;
  Printf.printf "Session up: source %d, %d members, tree cost %.2f\n\n" source
    (Tree.member_count (Session.tree session))
    (Tree.total_cost (Session.tree session));

  (* Three persistent failures arrive over the session's lifetime; between
     them, members churn and the tree is reshaped. *)
  let describe_failure round f =
    Printf.printf "--- failure %d: %s\n" round (Format.asprintf "%a" (Failure.pp g) f)
  in
  (* A failure is only worth staging if it does not sever the source from
     the bulk of the network once combined with the failures already
     active (a fiber cut that isolates the head-end is a different story). *)
  let survivable f =
    let combined =
      Failure.compose (f :: Option.to_list (Session.active_failure session))
    in
    let reachable =
      Smrp_graph.Connectivity.reachable_from
        ~node_ok:(Failure.node_ok combined)
        ~edge_ok:(Failure.edge_ok g combined)
        g source
    in
    Array.fold_left (fun acc r -> if r then acc + 1 else acc) 0 reachable
    > Graph.node_count g / 2
  in
  let fail_something round =
    let tree = Session.tree session in
    let candidates =
      List.filter_map
        (fun m ->
          match Failure.worst_case_for_member tree m with
          | Some f when survivable f -> Some f
          | _ -> None)
        (Tree.members tree)
    in
    match candidates with
    | f :: _ ->
        describe_failure round f;
        let repairs = Session.fail session f in
        let lost =
          List.length
            (List.filter
               (fun m -> not (Tree.is_member (Session.tree session) m))
               (Failure.affected_members tree f))
        in
        Printf.printf "    %d members repaired (mean RD %.3f), %d lost\n" (List.length repairs)
          (match repairs with
          | [] -> 0.0
          | _ ->
              List.fold_left
                (fun acc r -> acc +. r.Session.detour.Recovery.recovery_distance)
                0.0 repairs
              /. float_of_int (List.length repairs))
          lost
    | [] -> Printf.printf "--- failure %d: no survivable worst-case link, skipping\n" round
  in
  fail_something 1;
  Printf.printf "    late joiner %d arrives (must avoid the dead link)\n" pool.(17);
  Session.join session pool.(17);
  fail_something 2;
  let switches = Session.reshape_all session in
  Printf.printf "    reshaping pass: %d switches (all avoiding dead links)\n" switches;
  Session.join session pool.(18);
  fail_something 3;

  let tree = Session.tree session in
  (match Session.active_failure session with
  | Some f ->
      Printf.printf "\nActive failures at end: %s\n" (Format.asprintf "%a" (Failure.pp g) f);
      (* Audit: no tree edge uses a failed component. *)
      let clean =
        List.for_all (Failure.edge_ok g f) (Tree.tree_edges tree)
        && List.for_all (Failure.node_ok f) (Tree.on_tree_nodes tree)
      in
      Printf.printf "tree avoids every failed component: %b\n" clean
  | None -> print_endline "\nno failures recorded?");
  match Tree.validate tree with
  | Ok () ->
      Printf.printf "final session: %d members, tree cost %.2f, invariants hold\n"
        (Tree.member_count tree) (Tree.total_cost tree)
  | Error e -> Printf.printf "INVARIANT VIOLATION: %s\n" e
