lib/rng/rng.ml: Array Int Int64 Set
