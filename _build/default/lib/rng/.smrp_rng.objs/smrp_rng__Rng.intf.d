lib/rng/rng.mli:
