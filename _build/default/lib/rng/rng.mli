(** Deterministic pseudo-random number generation.

    All stochastic components of the SMRP reproduction draw from this module so
    that every experiment is reproducible bit-for-bit from an integer seed.
    The generator is SplitMix64 (Steele, Lea & Flood, OOPSLA 2014): tiny state,
    excellent statistical quality for simulation purposes, and cheap
    {!split}ting into independent streams. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] returns a fresh generator determined by [seed]. *)

val copy : t -> t
(** [copy t] is an independent generator with the same current state. *)

val split : t -> t
(** [split t] advances [t] and returns a new generator whose stream is
    independent of the remainder of [t]'s stream.  Used to give each
    topology / member-set / failure draw its own stream so adding samples to
    one experiment does not perturb another. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)].  [bound] must be positive. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool
(** Fair coin flip. *)

val pick : t -> 'a array -> 'a
(** [pick t a] is a uniformly chosen element of the non-empty array [a]. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val sample_without_replacement : t -> int -> int -> int list
(** [sample_without_replacement t k n] draws [k] distinct integers uniformly
    from [\[0, n)], in increasing order.  Requires [0 <= k <= n]. *)

val exponential : t -> float -> float
(** [exponential t rate] draws from Exp(rate); used for simulator timers. *)
