(* SplitMix64.  Reference: Steele, Lea & Flood, "Fast splittable
   pseudorandom number generators", OOPSLA 2014.  The mixing constants below
   are the published ones. *)

type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed = { state = mix64 (Int64.of_int seed) }

let copy t = { state = t.state }

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t = { state = mix64 (bits64 t) }

(* Rejection sampling over the low bits keeps the draw exactly uniform. *)
let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  let mask = Int64.of_int max_int in
  let rec draw () =
    let v = Int64.to_int (Int64.logand (bits64 t) mask) in
    let r = v mod bound in
    (* Discard draws from the final partial block to avoid modulo bias. *)
    if v - r > max_int - bound + 1 then draw () else r
  in
  draw ()

let float t bound =
  (* 53 uniform mantissa bits. *)
  let v = Int64.to_float (Int64.shift_right_logical (bits64 t) 11) in
  bound *. (v /. 9007199254740992.0)

let bool t = Int64.logand (bits64 t) 1L = 1L

let pick t a =
  if Array.length a = 0 then invalid_arg "Rng.pick: empty array";
  a.(int t (Array.length a))

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let sample_without_replacement t k n =
  if k < 0 || k > n then invalid_arg "Rng.sample_without_replacement";
  (* Floyd's algorithm: O(k) expected insertions, exact uniformity. *)
  let module S = Set.Make (Int) in
  let chosen = ref S.empty in
  for j = n - k to n - 1 do
    let v = int t (j + 1) in
    chosen := if S.mem v !chosen then S.add j !chosen else S.add v !chosen
  done;
  S.elements !chosen

let exponential t rate =
  if rate <= 0.0 then invalid_arg "Rng.exponential: rate must be positive";
  let u = 1.0 -. float t 1.0 in
  -.log u /. rate
