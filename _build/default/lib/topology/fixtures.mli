(** Deterministic topologies reconstructing the paper's worked examples.

    The figures give link-delay relations rather than a full delay table; the
    delays chosen here satisfy every relation the text states (which paths are
    shortest, which candidates violate the [D_thresh = 0.3] bound, the quoted
    SHR values), so the unit tests can assert the paper's walkthroughs
    verbatim. *)

(** Figure 1: S, A, B, C, D with members C and D. *)
type fig1 = {
  graph : Smrp_graph.Graph.t;
  s : int;
  a : int;
  b : int;
  c : int;
  d : int;
}

val fig1 : unit -> fig1

(** Figure 4: S, A, B, C, D, E, F, G; members E, G, F join in that order with
    [D_thresh = 0.3]. *)
type fig4 = {
  graph : Smrp_graph.Graph.t;
  s : int;
  a : int;
  b : int;
  c : int;
  d : int;
  e : int;
  f : int;
  g : int;
}

val fig4 : unit -> fig4

val diamond : unit -> Smrp_graph.Graph.t
(** A 4-node diamond (0-1, 0-2, 1-3, 2-3, unit delays): the smallest topology
    with two disjoint source→member paths; used across unit tests. *)

val line : int -> Smrp_graph.Graph.t
(** [line n]: a path graph with [n] nodes and unit delays. *)

val ring : int -> Smrp_graph.Graph.t
(** [ring n]: a cycle with [n >= 3] nodes and unit delays. *)

val grid : int -> Smrp_graph.Graph.t
(** [grid k]: a [k × k] mesh with unit delays; node [(r, c)] is [r * k + c]. *)
