lib/topology/transit_stub.mli: Smrp_graph Smrp_rng
