lib/topology/flat_models.ml: Array Float List Smrp_graph Smrp_rng Waxman
