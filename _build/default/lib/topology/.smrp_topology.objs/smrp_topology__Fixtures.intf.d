lib/topology/fixtures.mli: Smrp_graph
