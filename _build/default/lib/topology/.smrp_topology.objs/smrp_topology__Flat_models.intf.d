lib/topology/flat_models.mli: Smrp_graph Smrp_rng Waxman
