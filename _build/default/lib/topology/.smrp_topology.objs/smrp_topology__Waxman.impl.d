lib/topology/waxman.ml: Array Float List Smrp_graph Smrp_rng
