lib/topology/waxman.mli: Smrp_graph Smrp_rng
