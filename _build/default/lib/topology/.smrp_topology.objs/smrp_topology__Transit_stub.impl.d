lib/topology/transit_stub.ml: Array List Smrp_graph Smrp_rng Waxman
