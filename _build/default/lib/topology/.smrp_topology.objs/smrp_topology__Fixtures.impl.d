lib/topology/fixtures.ml: Smrp_graph
