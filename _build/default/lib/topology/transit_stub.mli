(** Two-level transit–stub topologies (GT-ITM style), used by the §3.3.3
    hierarchical recovery architecture.

    The top level is a connected Waxman graph of transit routers partitioned
    into transit domains; each transit router sponsors a number of stub
    domains, each a small connected Waxman graph attached to its transit
    router by a single access link. *)

type node_role =
  | Transit of int  (** transit router, carrying its transit-domain id *)
  | Stub of int  (** stub router, carrying its stub-domain id *)

type t = {
  graph : Smrp_graph.Graph.t;
  roles : node_role array;
  stub_count : int;  (** Number of stub domains. *)
  transit_domain_count : int;
  stub_gateway : int array;
      (** [stub_gateway.(d)] is the transit router to which stub domain [d]
          attaches. *)
  stub_attach : int array;
      (** [stub_attach.(d)] is the stub router holding the access link —
          the natural agent of recovery domain [d] (§3.3.3). *)
  inter_domain_links : (int * int * int) array;
      (** One entry per link joining consecutive transit domains [i] and
          [i+1]: [(edge id, endpoint in domain i, endpoint in domain i+1)].
          Used by the 3-level recovery architecture. *)
}

type params = {
  transit_domains : int;  (** ≥ 1 *)
  transit_nodes_per_domain : int;  (** ≥ 1 *)
  stubs_per_transit_node : int;  (** ≥ 0 *)
  stub_nodes : int;  (** nodes per stub domain, ≥ 1 *)
  stub_alpha : float;
  stub_beta : float;
}

val default_params : params

val generate : Smrp_rng.Rng.t -> params -> t

val nodes_of_stub : t -> int -> int list
(** All graph nodes belonging to a given stub domain. *)

val transit_nodes : t -> int list
