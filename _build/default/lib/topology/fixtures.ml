module Graph = Smrp_graph.Graph

type fig1 = { graph : Graph.t; s : int; a : int; b : int; c : int; d : int }

(* Delay choices (see .mli): the SPF tree reaches C and D through A; when
   L_AD fails, the global detour D-B-S is the new shortest path (delay 3,
   both links new) while the local detour D-C re-attaches at cost 2, matching
   the RD_D = 2 example and the "global has shorter end-to-end delay, local
   has shorter recovery path" narrative. *)
let fig1 () =
  let g = Graph.create 5 in
  let s = 0 and a = 1 and b = 2 and c = 3 and d = 4 in
  ignore (Graph.add_edge g s a 1.0);
  ignore (Graph.add_edge g a c 1.0);
  ignore (Graph.add_edge g a d 1.0);
  ignore (Graph.add_edge g s b 1.5);
  ignore (Graph.add_edge g b d 1.5);
  ignore (Graph.add_edge g c d 2.0);
  { graph = g; s; a; b; c; d }

type fig4 = {
  graph : Graph.t;
  s : int;
  a : int;
  b : int;
  c : int;
  d : int;
  e : int;
  f : int;
  g : int;
}

(* Relations satisfied by these delays (D_thresh = 0.3):
   - E's SPF path is S-A-D-E (delay 3); after it joins, SHR(S,D) = 2.
   - G's SPF path is G-F-D-A-S (delay 4); candidate G-B-S has delay 4.5
     <= 1.3 * 4, merges at S with SHR 0, and wins despite the longer delay.
   - F's SPF path is F-D-A-S (delay 3, bound 3.9); F-B-S costs 4.0 and
     F-G-B-S costs 5.5, both over the bound, so F merges at D (SHR 2).
   - After F joins, SHR(S,D) rises from 2 to 4, triggering reshaping at E,
     which switches to E-C-A-S (delay 3.8 <= 3.9) whose merge point A has
     the smaller (adjusted) SHR. *)
let fig4 () =
  let g = Graph.create 8 in
  let s = 0 and a = 1 and b = 2 and c = 3 and d = 4 and e = 5 and f = 6 and gg = 7 in
  ignore (Graph.add_edge g s a 1.0);
  ignore (Graph.add_edge g a d 1.0);
  ignore (Graph.add_edge g d e 1.0);
  ignore (Graph.add_edge g a c 1.4);
  ignore (Graph.add_edge g c e 1.4);
  ignore (Graph.add_edge g d f 1.0);
  ignore (Graph.add_edge g f gg 1.0);
  ignore (Graph.add_edge g s b 2.5);
  ignore (Graph.add_edge g b gg 2.0);
  ignore (Graph.add_edge g b f 1.5);
  { graph = g; s; a; b; c; d; e; f; g = gg }

let diamond () =
  let g = Graph.create 4 in
  ignore (Graph.add_edge g 0 1 1.0);
  ignore (Graph.add_edge g 0 2 1.0);
  ignore (Graph.add_edge g 1 3 1.0);
  ignore (Graph.add_edge g 2 3 1.0);
  g

let line n =
  if n < 1 then invalid_arg "Fixtures.line";
  let g = Graph.create n in
  for i = 0 to n - 2 do
    ignore (Graph.add_edge g i (i + 1) 1.0)
  done;
  g

let ring n =
  if n < 3 then invalid_arg "Fixtures.ring";
  let g = line n in
  ignore (Graph.add_edge g (n - 1) 0 1.0);
  g

let grid k =
  if k < 1 then invalid_arg "Fixtures.grid";
  let g = Graph.create (k * k) in
  for r = 0 to k - 1 do
    for c = 0 to k - 1 do
      let v = (r * k) + c in
      if c < k - 1 then ignore (Graph.add_edge g v (v + 1) 1.0);
      if r < k - 1 then ignore (Graph.add_edge g v (v + k) 1.0)
    done
  done;
  g
