module Rng = Smrp_rng.Rng
module Graph = Smrp_graph.Graph
module Connectivity = Smrp_graph.Connectivity

type t = {
  graph : Graph.t;
  positions : (float * float) array;
  repaired_edges : int list;
}

type link_delay = [ `Euclidean | `Unit | `Uniform of float * float ]

let min_delay = 0.01

let distance (x1, y1) (x2, y2) = sqrt (((x1 -. x2) ** 2.0) +. ((y1 -. y2) ** 2.0))

let euclidean_delay positions u v = Float.max min_delay (distance positions.(u) positions.(v))

let make_delay link_delay rng positions u v =
  match link_delay with
  | `Euclidean -> euclidean_delay positions u v
  | `Unit -> 1.0
  | `Uniform (lo, hi) ->
      if lo <= 0.0 || hi < lo then invalid_arg "Waxman: bad uniform delay range";
      lo +. Rng.float rng (hi -. lo)

(* Stitch components together with the geometrically shortest inter-component
   edge until one component remains. *)
let repair_connectivity link_delay rng g positions =
  let rec step added =
    let comp, count = Connectivity.components g in
    if count <= 1 then List.rev added
    else begin
      let n = Graph.node_count g in
      let best = ref None in
      for u = 0 to n - 1 do
        for v = u + 1 to n - 1 do
          if comp.(u) <> comp.(v) then begin
            let d = distance positions.(u) positions.(v) in
            match !best with
            | Some (bd, _, _) when bd <= d -> ()
            | _ -> best := Some (d, u, v)
          end
        done
      done;
      match !best with
      | None -> List.rev added (* unreachable: count > 1 implies a pair exists *)
      | Some (_, u, v) ->
          let id = Graph.add_edge g u v (make_delay link_delay rng positions u v) in
          step (id :: added)
    end
  in
  step []

let generate ?(link_delay = `Euclidean) rng ~n ~alpha ~beta =
  if n <= 0 then invalid_arg "Waxman.generate: n must be positive";
  if alpha <= 0.0 || alpha > 1.0 then invalid_arg "Waxman.generate: alpha out of (0, 1]";
  if beta <= 0.0 || beta > 1.0 then invalid_arg "Waxman.generate: beta out of (0, 1]";
  let positions = Array.init n (fun _ ->
      let x = Rng.float rng 1.0 in
      let y = Rng.float rng 1.0 in
      (x, y))
  in
  let l = sqrt 2.0 in
  let g = Graph.create n in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      let d = distance positions.(u) positions.(v) in
      let p = alpha *. exp (-.d /. (beta *. l)) in
      if Rng.float rng 1.0 < p then
        ignore (Graph.add_edge g u v (make_delay link_delay rng positions u v))
    done
  done;
  let repaired_edges = repair_connectivity link_delay rng g positions in
  { graph = g; positions; repaired_edges }

let measured_average_degree rng ~n ~alpha ~beta ~samples =
  if samples <= 0 then invalid_arg "Waxman.measured_average_degree: samples must be positive";
  let total = ref 0.0 in
  for _ = 1 to samples do
    let t = generate rng ~n ~alpha ~beta in
    total := !total +. Graph.average_degree t.graph
  done;
  !total /. float_of_int samples

let calibrate_alpha rng ~n ~beta ~target_degree =
  (* Expected degree is monotone in alpha, so bisection converges; the
     empirical estimate uses a fixed per-probe sample count. *)
  let probe alpha =
    let rng' = Rng.split rng in
    measured_average_degree rng' ~n ~alpha ~beta ~samples:5
  in
  let rec bisect lo hi iters =
    if iters = 0 then (lo +. hi) /. 2.0
    else
      let mid = (lo +. hi) /. 2.0 in
      if probe mid < target_degree then bisect mid hi (iters - 1) else bisect lo mid (iters - 1)
  in
  bisect 0.01 1.0 12
