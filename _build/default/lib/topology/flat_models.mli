(** The other flat random-graph families of Zegura, Calvert & Donahoo
    (IEEE/ACM ToN 1997 — the paper's reference [7], which it cites to argue
    that a target node degree can be reached under different models).  Used
    by the topology-family experiment to check that SMRP's advantage is not
    an artefact of the Waxman model. *)

type t = {
  graph : Smrp_graph.Graph.t;
  positions : (float * float) array;
  repaired_edges : int list;
}

val pure_random : ?link_delay:Waxman.link_delay -> Smrp_rng.Rng.t -> n:int -> p:float -> t
(** G(n, p): every pair connected with probability [p], independent of
    distance.  Nodes still carry plane positions so Euclidean delays remain
    meaningful.  Connectivity is repaired as in {!Waxman.generate}. *)

val locality :
  ?link_delay:Waxman.link_delay ->
  Smrp_rng.Rng.t ->
  n:int ->
  radius:float ->
  p_near:float ->
  p_far:float ->
  t
(** Zegura's locality model: pairs closer than [radius] connect with
    probability [p_near], the rest with [p_far]. *)

val probability_for_degree : n:int -> target_degree:float -> float
(** The [p] giving the target expected average degree in G(n, p). *)
