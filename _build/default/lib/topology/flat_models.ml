module Rng = Smrp_rng.Rng
module Graph = Smrp_graph.Graph
module Connectivity = Smrp_graph.Connectivity

type t = {
  graph : Graph.t;
  positions : (float * float) array;
  repaired_edges : int list;
}

let distance (x1, y1) (x2, y2) = sqrt (((x1 -. x2) ** 2.0) +. ((y1 -. y2) ** 2.0))

let make_delay link_delay rng positions u v =
  match link_delay with
  | `Euclidean -> Float.max Waxman.min_delay (distance positions.(u) positions.(v))
  | `Unit -> 1.0
  | `Uniform (lo, hi) ->
      if lo <= 0.0 || hi < lo then invalid_arg "Flat_models: bad uniform delay range";
      lo +. Rng.float rng (hi -. lo)

(* Same stitching strategy as Waxman.generate. *)
let repair link_delay rng g positions =
  let rec step added =
    let comp, count = Connectivity.components g in
    if count <= 1 then List.rev added
    else begin
      let n = Graph.node_count g in
      let best = ref None in
      for u = 0 to n - 1 do
        for v = u + 1 to n - 1 do
          if comp.(u) <> comp.(v) then begin
            let d = distance positions.(u) positions.(v) in
            match !best with Some (bd, _, _) when bd <= d -> () | _ -> best := Some (d, u, v)
          end
        done
      done;
      match !best with
      | None -> List.rev added
      | Some (_, u, v) ->
          let id = Graph.add_edge g u v (make_delay link_delay rng positions u v) in
          step (id :: added)
    end
  in
  step []

let generate_with ?(link_delay = `Euclidean) rng ~n ~edge_probability =
  if n <= 0 then invalid_arg "Flat_models: n must be positive";
  let positions = Array.init n (fun _ ->
      let x = Rng.float rng 1.0 in
      let y = Rng.float rng 1.0 in
      (x, y))
  in
  let g = Graph.create n in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      let p = edge_probability positions u v in
      if p > 0.0 && Rng.float rng 1.0 < p then
        ignore (Graph.add_edge g u v (make_delay link_delay rng positions u v))
    done
  done;
  let repaired_edges = repair link_delay rng g positions in
  { graph = g; positions; repaired_edges }

let pure_random ?link_delay rng ~n ~p =
  if p < 0.0 || p > 1.0 then invalid_arg "Flat_models.pure_random: p out of [0, 1]";
  generate_with ?link_delay rng ~n ~edge_probability:(fun _ _ _ -> p)

let locality ?link_delay rng ~n ~radius ~p_near ~p_far =
  if radius <= 0.0 then invalid_arg "Flat_models.locality: radius must be positive";
  if p_near < 0.0 || p_near > 1.0 || p_far < 0.0 || p_far > 1.0 then
    invalid_arg "Flat_models.locality: probabilities out of [0, 1]";
  generate_with ?link_delay rng ~n ~edge_probability:(fun positions u v ->
      if distance positions.(u) positions.(v) < radius then p_near else p_far)

let probability_for_degree ~n ~target_degree =
  if n < 2 then invalid_arg "Flat_models.probability_for_degree: n too small";
  Float.min 1.0 (target_degree /. float_of_int (n - 1))
