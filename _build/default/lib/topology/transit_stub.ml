module Rng = Smrp_rng.Rng
module Graph = Smrp_graph.Graph

type node_role = Transit of int | Stub of int

type t = {
  graph : Graph.t;
  roles : node_role array;
  stub_count : int;
  transit_domain_count : int;
  stub_gateway : int array;
  stub_attach : int array;
  inter_domain_links : (int * int * int) array;
}

type params = {
  transit_domains : int;
  transit_nodes_per_domain : int;
  stubs_per_transit_node : int;
  stub_nodes : int;
  stub_alpha : float;
  stub_beta : float;
}

(* Dense stub domains: intra-stub redundancy is what makes domain-confined
   recovery possible, mirroring multi-homed enterprise networks. *)
let default_params =
  {
    transit_domains = 2;
    transit_nodes_per_domain = 4;
    stubs_per_transit_node = 2;
    stub_nodes = 6;
    stub_alpha = 0.9;
    stub_beta = 0.6;
  }

(* Transit links are long-haul: give them a higher base delay than stub
   links so that shortest paths prefer staying inside a stub domain, as in
   real transit-stub internetworks. *)
let transit_link_delay = 1.0
let access_link_delay = 0.5

let generate rng p =
  if p.transit_domains < 1 || p.transit_nodes_per_domain < 1 || p.stub_nodes < 1
     || p.stubs_per_transit_node < 0
  then invalid_arg "Transit_stub.generate: bad parameters";
  let transit_total = p.transit_domains * p.transit_nodes_per_domain in
  let stub_count = transit_total * p.stubs_per_transit_node in
  let n = transit_total + (stub_count * p.stub_nodes) in
  let g = Graph.create n in
  let roles = Array.make n (Transit 0) in
  (* Transit routers are nodes [0, transit_total): a ring per domain plus a
     few random chords, and one link between consecutive domains. *)
  for dom = 0 to p.transit_domains - 1 do
    let base = dom * p.transit_nodes_per_domain in
    for i = 0 to p.transit_nodes_per_domain - 1 do
      roles.(base + i) <- Transit dom;
      if p.transit_nodes_per_domain > 1 then begin
        let next = base + ((i + 1) mod p.transit_nodes_per_domain) in
        if not (Graph.mem_edge g (base + i) next) then
          ignore (Graph.add_edge g (base + i) next transit_link_delay)
      end
    done;
    (* One random chord per domain adds redundancy when the ring is big
       enough for a chord to exist. *)
    if p.transit_nodes_per_domain >= 4 then begin
      let a = base + Rng.int rng p.transit_nodes_per_domain in
      let b = base + Rng.int rng p.transit_nodes_per_domain in
      if a <> b && not (Graph.mem_edge g a b) then
        ignore (Graph.add_edge g a b transit_link_delay)
    end
  done;
  let inter_domain = ref [] in
  for dom = 0 to p.transit_domains - 2 do
    let a = (dom * p.transit_nodes_per_domain) + Rng.int rng p.transit_nodes_per_domain in
    let b = ((dom + 1) * p.transit_nodes_per_domain) + Rng.int rng p.transit_nodes_per_domain in
    if not (Graph.mem_edge g a b) then begin
      let eid = Graph.add_edge g a b (2.0 *. transit_link_delay) in
      inter_domain := (eid, a, b) :: !inter_domain
    end
  done;
  (* Stub domains: a connected Waxman graph each, attached by one access
     link from a uniformly chosen stub node to the sponsoring transit
     router. *)
  let stub_gateway = Array.make (max 1 stub_count) 0 in
  let stub_attach = Array.make (max 1 stub_count) 0 in
  let next_node = ref transit_total in
  let stub_id = ref 0 in
  for transit = 0 to transit_total - 1 do
    for _ = 1 to p.stubs_per_transit_node do
      let d = !stub_id in
      incr stub_id;
      stub_gateway.(d) <- transit;
      let base = !next_node in
      next_node := base + p.stub_nodes;
      for i = base to base + p.stub_nodes - 1 do
        roles.(i) <- Stub d
      done;
      (* Local Waxman draw over the stub's nodes, then a spanning chain to
         guarantee connectivity inside the stub. *)
      let local = Waxman.generate rng ~n:p.stub_nodes ~alpha:p.stub_alpha ~beta:p.stub_beta in
      Graph.iter_edges
        (fun e ->
          let u = base + e.Graph.u and v = base + e.Graph.v in
          if not (Graph.mem_edge g u v) then ignore (Graph.add_edge g u v e.Graph.delay))
        local.Waxman.graph;
      let attach = base + Rng.int rng p.stub_nodes in
      stub_attach.(d) <- attach;
      ignore (Graph.add_edge g attach transit access_link_delay)
    done
  done;
  {
    graph = g;
    roles;
    stub_count;
    transit_domain_count = p.transit_domains;
    stub_gateway;
    stub_attach;
    inter_domain_links = Array.of_list (List.rev !inter_domain);
  }

let nodes_of_stub t d =
  let acc = ref [] in
  Array.iteri (fun i role -> match role with Stub d' when d' = d -> acc := i :: !acc | _ -> ()) t.roles;
  List.rev !acc

let transit_nodes t =
  let acc = ref [] in
  Array.iteri (fun i role -> match role with Transit _ -> acc := i :: !acc | _ -> ()) t.roles;
  List.rev !acc
