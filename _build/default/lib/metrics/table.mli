(** Plain-text rendering of experiment output: aligned tables for the
    series of Figs. 8–10 and an ASCII scatter for Fig. 7, so the benchmark
    harness prints the same rows/series the paper reports. *)

type t

val create : columns:string list -> t

val add_row : t -> string list -> unit
(** Row length must match the column count. *)

val render : t -> string

val to_csv : t -> string
(** RFC-4180-style CSV of the same rows (quotes doubled, cells containing
    commas/quotes/newlines quoted). *)

val pp : Format.formatter -> t -> unit

val scatter :
  ?width:int ->
  ?height:int ->
  xlabel:string ->
  ylabel:string ->
  (float * float) list ->
  string
(** ASCII scatter plot with the [y = x] diagonal marked ([.]), points ([*]),
    points on the diagonal ([o]).  Mirrors Fig. 7's presentation: points
    below the diagonal mean the local detour beat the global one. *)
