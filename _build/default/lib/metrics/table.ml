type t = { columns : string list; mutable rows : string list list (* newest first *) }

let create ~columns =
  if columns = [] then invalid_arg "Table.create: no columns";
  { columns; rows = [] }

let add_row t row =
  if List.length row <> List.length t.columns then invalid_arg "Table.add_row: width mismatch";
  t.rows <- row :: t.rows

let render t =
  let rows = List.rev t.rows in
  let widths =
    List.mapi
      (fun i c ->
        List.fold_left (fun w row -> max w (String.length (List.nth row i))) (String.length c) rows)
      t.columns
  in
  let line cells =
    let padded = List.map2 (fun cell w -> Printf.sprintf "%-*s" w cell) cells widths in
    String.concat "  " padded
  in
  let rule = String.concat "--" (List.map (fun w -> String.make w '-') widths) in
  String.concat "\n" (line t.columns :: rule :: List.map line rows)

let csv_cell cell =
  let needs_quoting = String.exists (fun c -> c = ',' || c = '"' || c = '\n') cell in
  if not needs_quoting then cell
  else begin
    let buf = Buffer.create (String.length cell + 2) in
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string buf "\"\"" else Buffer.add_char buf c)
      cell;
    Buffer.add_char buf '"';
    Buffer.contents buf
  end

let to_csv t =
  let line cells = String.concat "," (List.map csv_cell cells) in
  String.concat "\n" (line t.columns :: List.map line (List.rev t.rows)) ^ "\n"

let pp ppf t = Format.pp_print_string ppf (render t)

let scatter ?(width = 60) ?(height = 24) ~xlabel ~ylabel points =
  if width < 8 || height < 4 then invalid_arg "Table.scatter: too small";
  match points with
  | [] -> "(no points)"
  | _ ->
      let xs = List.map fst points and ys = List.map snd points in
      let hi =
        List.fold_left Float.max neg_infinity (xs @ ys) |> fun v -> if v <= 0.0 then 1.0 else v
      in
      let grid = Array.make_matrix height width ' ' in
      let cell_x v = min (width - 1) (int_of_float (v /. hi *. float_of_int (width - 1))) in
      let cell_y v = min (height - 1) (int_of_float (v /. hi *. float_of_int (height - 1))) in
      (* Diagonal y = x. *)
      for col = 0 to width - 1 do
        let v = float_of_int col /. float_of_int (width - 1) *. hi in
        let row = cell_y v in
        grid.(height - 1 - row).(col) <- '.'
      done;
      List.iter
        (fun (x, y) ->
          let col = cell_x x and row = cell_y y in
          let c = if grid.(height - 1 - row).(col) = '.' then 'o' else '*' in
          grid.(height - 1 - row).(col) <- c)
        points;
      let buf = Buffer.create ((width + 4) * (height + 3)) in
      Buffer.add_string buf (Printf.sprintf "%s (vertical) vs %s (horizontal); scale 0..%.3g\n" ylabel xlabel hi);
      Array.iter
        (fun row ->
          Buffer.add_char buf '|';
          Array.iter (Buffer.add_char buf) row;
          Buffer.add_char buf '\n')
        grid;
      Buffer.add_char buf '+';
      Buffer.add_string buf (String.make width '-');
      Buffer.contents buf
