lib/metrics/table.mli: Format
