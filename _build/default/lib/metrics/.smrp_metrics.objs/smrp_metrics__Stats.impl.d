lib/metrics/stats.ml: Array Float Format List
