lib/metrics/table.ml: Array Buffer Float Format List Printf String
