(** Summary statistics for the evaluation metrics of §4.2: means and the 95%
    confidence intervals plotted as error bars in Figs. 8–10. *)

type summary = {
  count : int;
  mean : float;
  stddev : float;  (** Sample standard deviation (n-1). *)
  ci95 : float;  (** Half-width of the normal-approximation 95% CI. *)
  min : float;
  max : float;
}

val summarize : float list -> summary
(** Raises [Invalid_argument] on an empty list. *)

val mean : float list -> float

val percentile : float -> float list -> float
(** [percentile p xs] with [p] in [\[0,1\]] via linear interpolation. *)

val relative_reduction : baseline:float -> improved:float -> float
(** [(baseline - improved) / baseline]: the paper's [RD^relative] shape. *)

val relative_increase : baseline:float -> changed:float -> float
(** [(changed - baseline) / baseline]: the paper's delay/cost penalties. *)

val pp_summary : Format.formatter -> summary -> unit
