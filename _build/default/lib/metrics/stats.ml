type summary = {
  count : int;
  mean : float;
  stddev : float;
  ci95 : float;
  min : float;
  max : float;
}

let mean = function
  | [] -> invalid_arg "Stats.mean: empty sample"
  | xs -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let summarize = function
  | [] -> invalid_arg "Stats.summarize: empty sample"
  | xs ->
      let n = List.length xs in
      let m = mean xs in
      let sq = List.fold_left (fun acc x -> acc +. ((x -. m) ** 2.0)) 0.0 xs in
      let stddev = if n < 2 then 0.0 else sqrt (sq /. float_of_int (n - 1)) in
      (* Normal approximation: adequate for the ≥ 100-scenario samples the
         experiments draw. *)
      let ci95 = 1.96 *. stddev /. sqrt (float_of_int n) in
      {
        count = n;
        mean = m;
        stddev;
        ci95;
        min = List.fold_left Float.min infinity xs;
        max = List.fold_left Float.max neg_infinity xs;
      }

let percentile p = function
  | [] -> invalid_arg "Stats.percentile: empty sample"
  | xs ->
      if p < 0.0 || p > 1.0 then invalid_arg "Stats.percentile: p out of [0, 1]";
      let sorted = List.sort compare xs in
      let arr = Array.of_list sorted in
      let n = Array.length arr in
      let pos = p *. float_of_int (n - 1) in
      let lo = int_of_float (Float.floor pos) in
      let hi = int_of_float (Float.ceil pos) in
      if lo = hi then arr.(lo)
      else begin
        let frac = pos -. float_of_int lo in
        (arr.(lo) *. (1.0 -. frac)) +. (arr.(hi) *. frac)
      end

let relative_reduction ~baseline ~improved =
  if baseline = 0.0 then 0.0 else (baseline -. improved) /. baseline

let relative_increase ~baseline ~changed =
  if baseline = 0.0 then 0.0 else (changed -. baseline) /. baseline

let pp_summary ppf s =
  Format.fprintf ppf "mean %.4f ± %.4f (n=%d, sd %.4f, range [%.4f, %.4f])" s.mean s.ci95 s.count
    s.stddev s.min s.max
