let always _ = true

let reachable_from ?(node_ok = always) ?(edge_ok = always) g start =
  let n = Graph.node_count g in
  let seen = Array.make n false in
  if node_ok start then begin
    let queue = Queue.create () in
    seen.(start) <- true;
    Queue.add start queue;
    while not (Queue.is_empty queue) do
      let u = Queue.pop queue in
      let visit (v, eid) =
        if node_ok v && edge_ok eid && not seen.(v) then begin
          seen.(v) <- true;
          Queue.add v queue
        end
      in
      List.iter visit (Graph.neighbors g u)
    done
  end;
  seen

let components ?(node_ok = always) ?(edge_ok = always) g =
  let n = Graph.node_count g in
  let comp = Array.make n (-1) in
  let count = ref 0 in
  for start = 0 to n - 1 do
    if node_ok start && comp.(start) < 0 then begin
      let id = !count in
      incr count;
      let queue = Queue.create () in
      comp.(start) <- id;
      Queue.add start queue;
      while not (Queue.is_empty queue) do
        let u = Queue.pop queue in
        let visit (v, eid) =
          if node_ok v && edge_ok eid && comp.(v) < 0 then begin
            comp.(v) <- id;
            Queue.add v queue
          end
        in
        List.iter visit (Graph.neighbors g u)
      done
    end
  done;
  (comp, !count)

let is_connected ?node_ok ?edge_ok g =
  let _, count = components ?node_ok ?edge_ok g in
  count <= 1

(* Iterative Tarjan low-link computation shared by bridge and articulation
   detection.  An explicit stack avoids overflow on large topologies. *)
type dfs_state = {
  disc : int array;
  low : int array;
  parent_edge : int array;
  mutable time : int;
}

let dfs_lowlink g ~on_tree_edge ~on_root_children =
  let n = Graph.node_count g in
  let st =
    { disc = Array.make n (-1); low = Array.make n (-1); parent_edge = Array.make n (-1); time = 0 }
  in
  for root = 0 to n - 1 do
    if st.disc.(root) < 0 then begin
      let root_children = ref 0 in
      (* Stack frames: (node, remaining adjacency). *)
      let stack = ref [ (root, Graph.neighbors g root) ] in
      st.disc.(root) <- st.time;
      st.low.(root) <- st.time;
      st.time <- st.time + 1;
      while !stack <> [] do
        match !stack with
        | [] -> ()
        | (u, remaining) :: rest -> begin
            match remaining with
            | [] ->
                stack := rest;
                (match rest with
                | (p, _) :: _ ->
                    if st.low.(u) < st.low.(p) then st.low.(p) <- st.low.(u);
                    on_tree_edge ~parent:p ~child:u ~edge:st.parent_edge.(u)
                | [] -> ())
            | (v, eid) :: tail ->
                stack := (u, tail) :: rest;
                if st.disc.(v) < 0 then begin
                  st.parent_edge.(v) <- eid;
                  st.disc.(v) <- st.time;
                  st.low.(v) <- st.time;
                  st.time <- st.time + 1;
                  if u = root then incr root_children;
                  stack := (v, Graph.neighbors g v) :: !stack
                end
                else if eid <> st.parent_edge.(u) && st.disc.(v) < st.low.(u) then
                  st.low.(u) <- st.disc.(v)
          end
      done;
      on_root_children ~root ~children:!root_children
    end
  done;
  st

let bridges g =
  (* Tree edge (parent, child) is a bridge iff low(child) = disc(child):
     nothing in the child's subtree reaches above the child.  Low values are
     final once the whole DFS completes, so tree edges are collected first and
     tested afterwards. *)
  let tree_edges = ref [] in
  let st =
    dfs_lowlink g
      ~on_tree_edge:(fun ~parent:_ ~child ~edge -> tree_edges := (child, edge) :: !tree_edges)
      ~on_root_children:(fun ~root:_ ~children:_ -> ())
  in
  let found = ref [] in
  List.iter
    (fun (child, edge) ->
      if edge >= 0 && st.low.(child) = st.disc.(child) then found := edge :: !found)
    !tree_edges;
  List.sort_uniq compare !found

let articulation_points g =
  let cut = Array.make (Graph.node_count g) false in
  let tree_children = Hashtbl.create 64 in
  let st =
    dfs_lowlink g
      ~on_tree_edge:(fun ~parent ~child ~edge ->
        ignore edge;
        Hashtbl.replace tree_children parent
          (child :: (try Hashtbl.find tree_children parent with Not_found -> [])))
      ~on_root_children:(fun ~root ~children -> if children >= 2 then cut.(root) <- true)
  in
  Hashtbl.iter
    (fun parent children ->
      (* A non-root node is a cut vertex iff some DFS child cannot reach above it. *)
      if st.parent_edge.(parent) >= 0 then
        List.iter (fun c -> if st.low.(c) >= st.disc.(parent) then cut.(parent) <- true) children)
    tree_children;
  let result = ref [] in
  for v = Graph.node_count g - 1 downto 0 do
    if cut.(v) then result := v :: !result
  done;
  !result
