(** Induced-subgraph extraction with node renumbering, used by the
    hierarchical recovery architecture to confine a recovery domain's
    computations to its own routers. *)

type t = {
  graph : Graph.t;  (** The induced subgraph over the kept nodes. *)
  to_sub : int array;  (** Original node → subgraph node, [-1] if dropped. *)
  from_sub : int array;  (** Subgraph node → original node. *)
  edge_from_sub : int array;  (** Subgraph edge id → original edge id. *)
}

val extract : Graph.t -> keep:(int -> bool) -> t
(** [extract g ~keep] is the subgraph induced by the nodes satisfying [keep];
    every edge of [g] with both endpoints kept is copied (same delay/cost). *)

val node_to_sub : t -> int -> int option

val node_from_sub : t -> int -> int
