type t = {
  graph : Graph.t;
  to_sub : int array;
  from_sub : int array;
  edge_from_sub : int array;
}

let extract g ~keep =
  let n = Graph.node_count g in
  let to_sub = Array.make n (-1) in
  let kept = ref [] in
  for v = n - 1 downto 0 do
    if keep v then kept := v :: !kept
  done;
  let from_sub = Array.of_list !kept in
  Array.iteri (fun sub orig -> to_sub.(orig) <- sub) from_sub;
  let sub = Graph.create (Array.length from_sub) in
  let edge_map = ref [] in
  Graph.iter_edges
    (fun e ->
      let u = to_sub.(e.Graph.u) and v = to_sub.(e.Graph.v) in
      if u >= 0 && v >= 0 then begin
        let id = Graph.add_edge ~cost:e.Graph.cost sub u v e.Graph.delay in
        edge_map := (id, e.Graph.id) :: !edge_map
      end)
    g;
  let edge_from_sub = Array.make (Graph.edge_count sub) (-1) in
  List.iter (fun (sub_id, orig_id) -> edge_from_sub.(sub_id) <- orig_id) !edge_map;
  { graph = sub; to_sub; from_sub; edge_from_sub }

let node_to_sub t v = if t.to_sub.(v) < 0 then None else Some t.to_sub.(v)

let node_from_sub t v = t.from_sub.(v)
