type result = {
  graph : Graph.t;
  src : int;
  dist : float array;
  parent : int array;
  parent_edge : int array;
}

let always _ = true

let never _ = false

let run ?(node_ok = always) ?(edge_ok = always) ?(absorb = never) g ~source =
  let n = Graph.node_count g in
  if source < 0 || source >= n then invalid_arg "Dijkstra.run: source out of range";
  if not (node_ok source) then invalid_arg "Dijkstra.run: source is filtered out";
  let dist = Array.make n infinity in
  let parent = Array.make n (-1) in
  let parent_edge = Array.make n (-1) in
  let settled = Array.make n false in
  let heap = Heap.create () in
  dist.(source) <- 0.0;
  Heap.add heap 0.0 source;
  let rec loop () =
    match Heap.pop_min heap with
    | None -> ()
    | Some (d, u) ->
        if not settled.(u) then begin
          settled.(u) <- true;
          (* An absorbing node terminates the search along its branch: it can
             be a shortest-path target but contributes no further relaxation. *)
          if u = source || not (absorb u) then
            let relax (v, eid) =
              if node_ok v && edge_ok eid && not settled.(v) then begin
                let e = Graph.edge g eid in
                let d' = d +. e.Graph.delay in
                if d' < dist.(v) then begin
                  dist.(v) <- d';
                  parent.(v) <- u;
                  parent_edge.(v) <- eid;
                  Heap.add heap d' v
                end
              end
            in
            List.iter relax (Graph.neighbors g u)
        end;
        loop ()
  in
  loop ();
  { graph = g; src = source; dist; parent; parent_edge }

let source r = r.src

let distance r v = if r.dist.(v) = infinity then None else Some r.dist.(v)

let reachable r v = r.dist.(v) <> infinity

let parent r v = if r.parent.(v) < 0 then None else Some r.parent.(v)

let path_rev r v =
  if r.dist.(v) = infinity then None
  else begin
    let rec walk v nodes edges =
      if v = r.src then (v :: nodes, edges)
      else walk r.parent.(v) (v :: nodes) (r.parent_edge.(v) :: edges)
    in
    Some (walk v [] [])
  end

let path_nodes r v = Option.map fst (path_rev r v)

let path_edges r v = Option.map snd (path_rev r v)

let shortest_path ?node_ok ?edge_ok g ~src ~dst =
  let r = run ?node_ok ?edge_ok g ~source:src in
  match path_rev r dst with
  | None -> None
  | Some (nodes, edges) -> Some (r.dist.(dst), nodes, edges)
