type t = { delay : float; nodes : int list; edges : int list }

let of_edges g ~src edge_ids =
  let step (node, delay, nodes) eid =
    let e = Graph.edge g eid in
    let next = Graph.other_end e node in
    (next, delay +. e.Graph.delay, next :: nodes)
  in
  let last, delay, rev_nodes = List.fold_left step (src, 0.0, [ src ]) edge_ids in
  ignore last;
  { delay; nodes = List.rev rev_nodes; edges = edge_ids }

let delay_of_edges g edge_ids =
  List.fold_left (fun acc eid -> acc +. (Graph.edge g eid).Graph.delay) 0.0 edge_ids

let cost_of_edges g edge_ids =
  List.fold_left (fun acc eid -> acc +. (Graph.edge g eid).Graph.cost) 0.0 edge_ids

let concat p q =
  (match (List.rev p.nodes, q.nodes) with
  | last :: _, first :: _ when last = first -> ()
  | _ -> invalid_arg "Paths.concat: endpoints do not meet");
  let q_tail = match q.nodes with [] -> [] | _ :: tl -> tl in
  { delay = p.delay +. q.delay; nodes = p.nodes @ q_tail; edges = p.edges @ q.edges }

let is_simple p =
  let module S = Set.Make (Int) in
  let rec check seen = function
    | [] -> true
    | v :: rest -> (not (S.mem v seen)) && check (S.add v seen) rest
  in
  check S.empty p.nodes

let pp ppf p =
  Format.fprintf ppf "@[<h>[delay %g:" p.delay;
  List.iter (fun v -> Format.fprintf ppf " %d" v) p.nodes;
  Format.fprintf ppf "]@]"

(* Yen's k-shortest loopless paths.  Candidate paths are kept in a sorted
   list; graph filtering is expressed through the composable [node_ok] /
   [edge_ok] predicates so no copy of the graph is ever made. *)
let yen ?(k = 3) ?(node_ok = fun _ -> true) ?(edge_ok = fun _ -> true) g ~src ~dst =
  if k <= 0 then []
  else
    match Dijkstra.shortest_path ~node_ok ~edge_ok g ~src ~dst with
    | None -> []
    | Some (delay, nodes, edges) ->
        let first = { delay; nodes; edges } in
        let accepted = ref [ first ] in
        let candidates = ref [] in
        let add_candidate p =
          if not (List.exists (fun q -> q.edges = p.edges) !candidates) then
            candidates := p :: !candidates
        in
        let module S = Set.Make (Int) in
        let rec take_prefix i nodes edges =
          (* First i edges (hence i+1 nodes) of the path. *)
          match (i, nodes, edges) with
          | 0, n :: _, _ -> ([ n ], [])
          | _, n :: ns, e :: es ->
              let pn, pe = take_prefix (i - 1) ns es in
              (n :: pn, e :: pe)
          | _ -> invalid_arg "Paths.yen: prefix out of range"
        in
        (try
           for _ = 2 to k do
             let prev = List.hd !accepted in
             let prev_len = List.length prev.edges in
             for i = 0 to prev_len - 1 do
               let root_nodes, root_edges = take_prefix i prev.nodes prev.edges in
               let spur = List.nth prev.nodes i in
               (* Edges leaving the spur node along any accepted path sharing
                  this root are banned, as are the root's interior nodes. *)
               let rec prefix_eq i pe re =
                 if i = 0 then true
                 else
                   match (pe, re) with
                   | e1 :: pe', e2 :: re' -> e1 = e2 && prefix_eq (i - 1) pe' re'
                   | _ -> false
               in
               let banned_edges =
                 List.filter_map
                   (fun p -> if prefix_eq i p.edges root_edges then List.nth_opt p.edges i else None)
                   !accepted
               in
               let module ES = Set.Make (Int) in
               let banned = ES.of_list banned_edges in
               let root_interior = S.of_list (List.filter (fun v -> v <> spur) root_nodes) in
               let node_ok' v = node_ok v && not (S.mem v root_interior) in
               let edge_ok' e = edge_ok e && not (ES.mem e banned) in
               match Dijkstra.shortest_path ~node_ok:node_ok' ~edge_ok:edge_ok' g ~src:spur ~dst with
               | None -> ()
               | Some (sd, sn, se) ->
                   let root =
                     { delay = delay_of_edges g root_edges; nodes = root_nodes; edges = root_edges }
                   in
                   let total = concat root { delay = sd; nodes = sn; edges = se } in
                   if is_simple total then add_candidate total
             done;
             let remaining =
               List.filter (fun c -> not (List.exists (fun a -> a.edges = c.edges) !accepted)) !candidates
             in
             match List.sort (fun a b -> compare a.delay b.delay) remaining with
             | [] -> raise Exit
             | best :: _ ->
                 candidates := List.filter (fun c -> c.edges <> best.edges) !candidates;
                 accepted := best :: !accepted
           done
         with Exit -> ());
        List.rev !accepted
