(** Path values and multi-path computations. *)

type t = {
  delay : float;  (** Sum of edge delays along the path. *)
  nodes : int list;  (** Node sequence, endpoints inclusive. *)
  edges : int list;  (** Edge-id sequence, one shorter than [nodes]. *)
}

val of_edges : Graph.t -> src:int -> int list -> t
(** Rebuild a path value by walking the edge ids from [src].
    Raises [Invalid_argument] if the edges do not chain. *)

val delay_of_edges : Graph.t -> int list -> float

val cost_of_edges : Graph.t -> int list -> float

val concat : t -> t -> t
(** [concat p q] joins two paths where [p] ends at [q]'s start. *)

val is_simple : t -> bool
(** No repeated node. *)

val pp : Format.formatter -> t -> unit

val yen :
  ?k:int ->
  ?node_ok:(int -> bool) ->
  ?edge_ok:(int -> bool) ->
  Graph.t ->
  src:int ->
  dst:int ->
  t list
(** [yen ~k g ~src ~dst] lists up to [k] (default 3) loopless shortest paths in
    nondecreasing delay order (Yen's algorithm).  Used by the simulator's
    restoration search and by tests as an oracle for detour enumeration. *)
