lib/graph/subgraph.mli: Graph
