lib/graph/connectivity.ml: Array Graph Hashtbl List Queue
