lib/graph/paths.ml: Dijkstra Format Graph Int List Set
