lib/graph/subgraph.ml: Array Graph List
