lib/graph/heap.mli:
