lib/graph/dijkstra.ml: Array Graph Heap List Option
