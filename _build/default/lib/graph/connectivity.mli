(** Connectivity analysis, with the same node/edge filtering convention as
    {!Dijkstra} so that failure scenarios compose. *)

val reachable_from : ?node_ok:(int -> bool) -> ?edge_ok:(int -> bool) -> Graph.t -> int -> bool array
(** BFS reachability from a node in the (filtered) graph. *)

val components : ?node_ok:(int -> bool) -> ?edge_ok:(int -> bool) -> Graph.t -> int array * int
(** [(comp, count)] where [comp.(v)] is the component index of node [v]
    (or [-1] for filtered-out nodes) and [count] the number of components. *)

val is_connected : ?node_ok:(int -> bool) -> ?edge_ok:(int -> bool) -> Graph.t -> bool
(** True when all (non-filtered) nodes lie in one component.  A graph with no
    admissible node is connected vacuously. *)

val bridges : Graph.t -> int list
(** Edge ids whose removal disconnects their component (Tarjan low-link). *)

val articulation_points : Graph.t -> int list
(** Nodes whose removal disconnects their component. *)
