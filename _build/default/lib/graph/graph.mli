(** Undirected weighted graphs.

    Nodes are the integers [0 .. node_count - 1].  Each edge carries a
    propagation [delay] (the paper's link metric, used both for shortest paths
    and end-to-end delay) and a [cost] (used for the tree-cost metric; equal to
    [delay] unless set otherwise, matching §4.2 of the paper where link cost
    and delay coincide).

    Edges are identified by a dense integer id, which lets failure scenarios
    and path computations use O(1) bitset membership tests. *)

type edge = private {
  id : int;
  u : int;
  v : int;
  delay : float;
  cost : float;
}

type t

val create : int -> t
(** [create n] is an empty graph over nodes [0 .. n-1]. *)

val node_count : t -> int

val edge_count : t -> int

val add_edge : ?cost:float -> t -> int -> int -> float -> int
(** [add_edge g u v delay] inserts the undirected edge [(u, v)] and returns its
    id.  [cost] defaults to [delay].  Self-loops and duplicate edges are
    rejected with [Invalid_argument]. *)

val edge : t -> int -> edge
(** Edge by id. *)

val edge_between : t -> int -> int -> edge option
(** The edge joining two nodes, if any. *)

val mem_edge : t -> int -> int -> bool

val other_end : edge -> int -> int
(** [other_end e u] is the endpoint of [e] distinct from [u]. *)

val neighbors : t -> int -> (int * int) list
(** [neighbors g u] lists [(v, edge_id)] pairs, in insertion order. *)

val degree : t -> int -> int

val average_degree : t -> float

val iter_edges : (edge -> unit) -> t -> unit

val fold_edges : ('a -> edge -> 'a) -> 'a -> t -> 'a

val total_cost : t -> float
(** Sum of all edge costs. *)

val pp : Format.formatter -> t -> unit
