type edge = { id : int; u : int; v : int; delay : float; cost : float }

type t = {
  n : int;
  mutable edges : edge array;
  mutable edge_count : int;
  adj : (int * int) list array; (* node -> (neighbor, edge id), reversed order *)
}

let create n =
  if n < 0 then invalid_arg "Graph.create: negative node count";
  { n; edges = [||]; edge_count = 0; adj = Array.make n [] }

let node_count g = g.n

let edge_count g = g.edge_count

let check_node g u name =
  if u < 0 || u >= g.n then invalid_arg (Printf.sprintf "Graph.%s: node %d out of range" name u)

let mem_edge g u v =
  check_node g u "mem_edge";
  check_node g v "mem_edge";
  List.exists (fun (w, _) -> w = v) g.adj.(u)

let add_edge ?cost g u v delay =
  check_node g u "add_edge";
  check_node g v "add_edge";
  if u = v then invalid_arg "Graph.add_edge: self-loop";
  if mem_edge g u v then invalid_arg "Graph.add_edge: duplicate edge";
  if delay <= 0.0 then invalid_arg "Graph.add_edge: delay must be positive";
  let cost = match cost with Some c -> c | None -> delay in
  let id = g.edge_count in
  let e = { id; u; v; delay; cost } in
  let capacity = Array.length g.edges in
  if id = capacity then begin
    let edges' = Array.make (max 16 (2 * capacity)) e in
    Array.blit g.edges 0 edges' 0 id;
    g.edges <- edges'
  end;
  g.edges.(id) <- e;
  g.edge_count <- id + 1;
  g.adj.(u) <- (v, id) :: g.adj.(u);
  g.adj.(v) <- (u, id) :: g.adj.(v);
  id

let edge g id =
  if id < 0 || id >= g.edge_count then invalid_arg "Graph.edge: bad edge id";
  g.edges.(id)

let edge_between g u v =
  check_node g u "edge_between";
  check_node g v "edge_between";
  match List.find_opt (fun (w, _) -> w = v) g.adj.(u) with
  | Some (_, id) -> Some g.edges.(id)
  | None -> None

let other_end e u =
  if e.u = u then e.v
  else if e.v = u then e.u
  else invalid_arg "Graph.other_end: node not an endpoint"

let neighbors g u =
  check_node g u "neighbors";
  List.rev g.adj.(u)

let degree g u =
  check_node g u "degree";
  List.length g.adj.(u)

let average_degree g = if g.n = 0 then 0.0 else 2.0 *. float_of_int g.edge_count /. float_of_int g.n

let iter_edges f g =
  for id = 0 to g.edge_count - 1 do
    f g.edges.(id)
  done

let fold_edges f init g =
  let acc = ref init in
  iter_edges (fun e -> acc := f !acc e) g;
  !acc

let total_cost g = fold_edges (fun acc e -> acc +. e.cost) 0.0 g

let pp ppf g =
  Format.fprintf ppf "@[<v>graph: %d nodes, %d edges" g.n g.edge_count;
  iter_edges (fun e -> Format.fprintf ppf "@,  %d -- %d (delay %g, cost %g)" e.u e.v e.delay e.cost) g;
  Format.fprintf ppf "@]"
