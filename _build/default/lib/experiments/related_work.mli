(** The §2 Related-Work comparison the paper argues qualitatively:
    SMRP's reactive local detours versus Medard et al.'s preplanned
    redundant trees ([16]).

    Two questions are quantified:

    - {b feasibility}: redundant trees need a 2-edge-connected topology;
      on Waxman graphs at the paper's densities most draws contain bridges,
      substantiating "its complexity makes it difficult … to be applied to
      large networks";
    - {b price of protection} (on the feasible draws): instant zero-RD
      switchover versus SMRP's short-but-nonzero detours, against the
      provisioned capacity and steady-state delay each scheme needs. *)

type feasibility_row = {
  alpha : float;
  average_degree : float;
  feasible_fraction : float;  (** Topologies admitting redundant trees. *)
}

type comparison = {
  scenarios : int;  (** Feasible scenarios compared. *)
  rd_smrp : Smrp_metrics.Stats.summary;  (** Worst-case local-detour RD. *)
  rd_redundant : float;  (** Identically zero: instant switchover. *)
  delay_smrp : Smrp_metrics.Stats.summary;  (** Steady delay vs SPF, relative. *)
  delay_redundant : Smrp_metrics.Stats.summary;
      (** Redundant primary-path delay vs SPF, relative. *)
  post_failure_delay_redundant : Smrp_metrics.Stats.summary;
      (** Backup-path delay vs SPF, relative (after switchover). *)
  cost_smrp : Smrp_metrics.Stats.summary;  (** Tree cost vs SPF tree, relative. *)
  cost_redundant : Smrp_metrics.Stats.summary;
      (** Provisioned dual-tree cost vs SPF tree, relative. *)
}

val feasibility :
  ?seed:int -> ?samples:int -> ?alphas:float list -> unit -> feasibility_row list

val compare_schemes : ?seed:int -> ?scenarios:int -> ?alpha:float -> unit -> comparison
(** Draws topologies at [alpha] (default 0.5, dense enough that feasible
    draws are common) and compares the schemes on those admitting redundant
    trees. *)

val render : feasibility_row list -> comparison -> string
