(** Protocol overhead accounting (§3.3.2): what SMRP's signalling actually
    costs on the wire next to the baseline's, measured in the packet-level
    simulator over the join phase and steady state (no failures).

    The paper argues the maintenance overhead is "fairly small" once SHR
    recalculation is deferred into each member's join; here the visible cost
    is the join signalling itself (SMRP paths are slightly longer) on top of
    the hello/refresh baseline both protocols pay. *)

type side = {
  protocol : string;
  hello : int;
  query : int;  (** §3.3.1 query + response frames. *)
  join_req : int;
  refresh : int;
  prune : int;
  data : int;
  join_req_per_member : float;
}

type result = {
  seed : int;
  members : int;
  sim_time : float;
  smrp : side;
  pim : side;
  smrp_query : side;  (** SMRP joining through the §3.3.1 query exchange. *)
  smrp_reshaped : side;  (** SMRP with the Condition-II timer running. *)
}

val run : ?seed:int -> ?members:int -> ?sim_time:float -> unit -> result

val render : result -> string
