module Rng = Smrp_rng.Rng
module Waxman = Smrp_topology.Waxman
module Engine = Smrp_sim.Engine
module Protocol = Smrp_sim.Protocol
module Table = Smrp_metrics.Table

type side = {
  protocol : string;
  hello : int;
  query : int;
  join_req : int;
  refresh : int;
  prune : int;
  data : int;
  join_req_per_member : float;
}

type result = {
  seed : int;
  members : int;
  sim_time : float;
  smrp : side;
  pim : side;
  smrp_query : side;
  smrp_reshaped : side;
}

let run_side ~graph ~source ~member_list ~sim_time ~name config =
  let engine = Engine.create () in
  let proto = Protocol.create ~config engine graph ~source in
  Protocol.start proto;
  List.iteri
    (fun i m ->
      ignore (Engine.schedule engine ~delay:(0.5 +. float_of_int i) (fun () -> Protocol.join proto m)))
    member_list;
  Engine.run ~until:sim_time engine;
  let find key = List.assoc key (Protocol.message_breakdown proto) in
  {
    protocol = name;
    hello = find "hello";
    query = find "query";
    join_req = find "join_req";
    refresh = find "refresh";
    prune = find "prune";
    data = find "data";
    join_req_per_member = float_of_int (find "join_req") /. float_of_int (List.length member_list);
  }

let run ?(seed = 41) ?(members = 30) ?(sim_time = 120.0) () =
  let rng = Rng.create seed in
  let topo_rng = Rng.split rng in
  let member_rng = Rng.split rng in
  let topo = Waxman.generate topo_rng ~n:100 ~alpha:0.2 ~beta:0.2 in
  let source, member_list = Scenario.pick_group member_rng ~n:100 ~group_size:members in
  let graph = topo.Waxman.graph in
  let base strategy = { Protocol.default_config with Protocol.strategy } in
  {
    seed;
    members;
    sim_time;
    smrp = run_side ~graph ~source ~member_list ~sim_time ~name:"SMRP" (base Protocol.Local);
    pim = run_side ~graph ~source ~member_list ~sim_time ~name:"PIM/SPF" (base Protocol.Global);
    smrp_query =
      run_side ~graph ~source ~member_list ~sim_time ~name:"SMRP + query (3.3.1)"
        { (base Protocol.Local) with Protocol.join_mode = Protocol.Query_scheme };
    smrp_reshaped =
      run_side ~graph ~source ~member_list ~sim_time ~name:"SMRP + reshape (3.2.3)"
        { (base Protocol.Local) with Protocol.reshape_period = Some 20.0 };
  }

let render r =
  let t =
    Table.create
      ~columns:[ "protocol"; "hello"; "query"; "join_req"; "refresh"; "prune"; "data"; "join_req/member" ]
  in
  let row s =
    Table.add_row t
      [
        s.protocol;
        string_of_int s.hello;
        string_of_int s.query;
        string_of_int s.join_req;
        string_of_int s.refresh;
        string_of_int s.prune;
        string_of_int s.data;
        Printf.sprintf "%.1f" s.join_req_per_member;
      ]
  in
  row r.smrp;
  row r.pim;
  row r.smrp_query;
  row r.smrp_reshaped;
  Printf.sprintf
    "Protocol overhead (3.3.2): %d members over %.0f sim-seconds, no failures\n%s\n\
     (both protocols pay the same hello/refresh baseline; SMRP's extra signalling is the\n\
     slightly longer join paths — the SHR bookkeeping itself rides on these messages)\n"
    r.members r.sim_time (Table.render t)
