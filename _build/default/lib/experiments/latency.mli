(** Packet-level restoration-latency experiment (the §1 motivation, after
    [25]): on the same topology and group, compare the time from failure to
    data resumption under

    - {b SMRP}: min-SHR tree, starvation/hello detection, immediate local
      detour;
    - {b PIM/OSPF}: SPF tree, same detection, global re-join gated by the
      unicast reconvergence time.

    The failure is the worst case for a random member: the on-tree link
    incident to the source towards it. *)

type config = {
  scenario : Scenario.config;
  ospf_convergence : float;
  settle_time : float;  (** Sim time for joins and soft state to settle. *)
  run_time : float;  (** Sim time after failure injection. *)
}

val default : config

type side_result = {
  restored : int;  (** Members that resumed receiving data. *)
  disrupted : int;  (** Members that lost service at all. *)
  mean_detection : float;  (** Failure → starvation/hello detection. *)
  mean_restoration : float;  (** Failure → first data after recovery. *)
  control_messages : int;
}

type result = { seed : int; smrp : side_result; pim : side_result }

val run : config -> result option
(** [None] when every member's worst-case link is a graph bridge (recovery
    impossible); {!run_many} skips such draws. *)

val run_many : ?seed:int -> ?runs:int -> config -> result list

val render : result list -> string
