lib/experiments/related_work.mli: Smrp_metrics
