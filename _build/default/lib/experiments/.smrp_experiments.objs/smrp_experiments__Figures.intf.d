lib/experiments/figures.mli: Smrp_metrics
