lib/experiments/ablation.ml: Array Int64 List Option Printf Smrp_core Smrp_graph Smrp_metrics Smrp_rng Smrp_topology
