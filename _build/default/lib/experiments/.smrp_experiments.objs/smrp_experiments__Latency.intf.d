lib/experiments/latency.mli: Scenario
