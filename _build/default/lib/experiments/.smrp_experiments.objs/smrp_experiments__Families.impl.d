lib/experiments/families.ml: Array Float Fun List Printf Scenario Smrp_core Smrp_graph Smrp_metrics Smrp_rng Smrp_topology
