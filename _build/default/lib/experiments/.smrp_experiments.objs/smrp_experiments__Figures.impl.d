lib/experiments/figures.ml: Int64 List Printf Scenario Smrp_metrics Smrp_rng Smrp_topology
