lib/experiments/cost_min.ml: Array List Option Printf Smrp_core Smrp_metrics Smrp_rng Smrp_topology
