lib/experiments/scenario.mli: Smrp_core Smrp_graph Smrp_rng Smrp_topology
