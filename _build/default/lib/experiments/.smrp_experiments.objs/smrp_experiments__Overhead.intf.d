lib/experiments/overhead.mli:
