lib/experiments/latency.ml: Array Int64 List Printf Scenario Smrp_core Smrp_graph Smrp_metrics Smrp_rng Smrp_sim Smrp_topology
