lib/experiments/ablation.mli: Smrp_metrics
