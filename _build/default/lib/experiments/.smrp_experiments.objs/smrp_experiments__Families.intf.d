lib/experiments/families.mli: Smrp_metrics
