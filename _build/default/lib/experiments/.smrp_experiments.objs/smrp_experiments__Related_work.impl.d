lib/experiments/related_work.ml: Array List Printf Smrp_core Smrp_graph Smrp_metrics Smrp_rng Smrp_topology
