lib/experiments/scenario.ml: Array List Option Smrp_core Smrp_graph Smrp_metrics Smrp_rng Smrp_topology
