lib/experiments/overhead.ml: List Printf Scenario Smrp_metrics Smrp_rng Smrp_sim Smrp_topology
