lib/experiments/cost_min.mli: Smrp_metrics
