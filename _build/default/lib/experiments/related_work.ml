module Rng = Smrp_rng.Rng
module Graph = Smrp_graph.Graph
module Connectivity = Smrp_graph.Connectivity
module Waxman = Smrp_topology.Waxman
module Tree = Smrp_core.Tree
module Spf = Smrp_core.Spf
module Smrp = Smrp_core.Smrp
module Failure = Smrp_core.Failure
module Recovery = Smrp_core.Recovery
module Redundant = Smrp_core.Redundant
module Stats = Smrp_metrics.Stats
module Table = Smrp_metrics.Table

type feasibility_row = { alpha : float; average_degree : float; feasible_fraction : float }

type comparison = {
  scenarios : int;
  rd_smrp : Stats.summary;
  rd_redundant : float;
  delay_smrp : Stats.summary;
  delay_redundant : Stats.summary;
  post_failure_delay_redundant : Stats.summary;
  cost_smrp : Stats.summary;
  cost_redundant : Stats.summary;
}

let feasibility ?(seed = 16) ?(samples = 100) ?(alphas = [ 0.2; 0.3; 0.5; 0.8 ]) () =
  List.map
    (fun alpha ->
      let rng = Rng.create seed in
      let feasible = ref 0 in
      let degree = ref 0.0 in
      for _ = 1 to samples do
        let topo = Waxman.generate (Rng.split rng) ~n:100 ~alpha ~beta:0.2 in
        degree := !degree +. Graph.average_degree topo.Waxman.graph;
        if Connectivity.bridges topo.Waxman.graph = [] then incr feasible
      done;
      {
        alpha;
        average_degree = !degree /. float_of_int samples;
        feasible_fraction = float_of_int !feasible /. float_of_int samples;
      })
    alphas

let compare_schemes ?(seed = 16) ?(scenarios = 50) ?(alpha = 0.5) () =
  let rng = Rng.create seed in
  let rd = ref [] in
  let delay_smrp = ref [] in
  let delay_red = ref [] in
  let delay_red_post = ref [] in
  let cost_smrp = ref [] in
  let cost_red = ref [] in
  let collected = ref 0 in
  let attempts = ref 0 in
  while !collected < scenarios && !attempts < 20 * scenarios do
    incr attempts;
    let topo_rng = Rng.split rng in
    let member_rng = Rng.split rng in
    let topo = Waxman.generate ~link_delay:`Unit topo_rng ~n:100 ~alpha ~beta:0.2 in
    let g = topo.Waxman.graph in
    let chosen = Array.of_list (Rng.sample_without_replacement member_rng 31 100) in
    Rng.shuffle member_rng chosen;
    let source = chosen.(0) in
    let members = Array.to_list (Array.sub chosen 1 30) in
    match Redundant.build g ~source with
    | None -> ()
    | Some red ->
        incr collected;
        let spf = Spf.build g ~source ~members in
        let smrp = Smrp.build ~d_thresh:0.3 g ~source ~members in
        List.iter
          (fun m ->
            let spf_delay = Tree.delay_to_source spf m in
            delay_smrp :=
              Stats.relative_increase ~baseline:spf_delay ~changed:(Tree.delay_to_source smrp m)
              :: !delay_smrp;
            delay_red :=
              Stats.relative_increase ~baseline:spf_delay ~changed:(Redundant.delay red m)
              :: !delay_red;
            delay_red_post :=
              Stats.relative_increase ~baseline:spf_delay ~changed:(Redundant.worst_delay red m)
              :: !delay_red_post;
            match Failure.worst_case_for_member smrp m with
            | None -> ()
            | Some f -> (
                match Recovery.local_detour smrp f ~member:m with
                | Some d -> rd := d.Recovery.recovery_distance :: !rd
                | None -> ()))
          members;
        let spf_cost = Tree.total_cost spf in
        cost_smrp :=
          Stats.relative_increase ~baseline:spf_cost ~changed:(Tree.total_cost smrp) :: !cost_smrp;
        cost_red :=
          Stats.relative_increase ~baseline:spf_cost
            ~changed:(Redundant.provisioned_cost red ~receivers:members)
          :: !cost_red
  done;
  {
    scenarios = !collected;
    rd_smrp = Stats.summarize (if !rd = [] then [ 0.0 ] else !rd);
    rd_redundant = 0.0;
    delay_smrp = Stats.summarize (if !delay_smrp = [] then [ 0.0 ] else !delay_smrp);
    delay_redundant = Stats.summarize (if !delay_red = [] then [ 0.0 ] else !delay_red);
    post_failure_delay_redundant =
      Stats.summarize (if !delay_red_post = [] then [ 0.0 ] else !delay_red_post);
    cost_smrp = Stats.summarize (if !cost_smrp = [] then [ 0.0 ] else !cost_smrp);
    cost_redundant = Stats.summarize (if !cost_red = [] then [ 0.0 ] else !cost_red);
  }

let pct s = Printf.sprintf "%6.1f%% ± %.1f" (100.0 *. s.Stats.mean) (100.0 *. s.Stats.ci95)

let render rows cmp =
  let feas = Table.create ~columns:[ "alpha"; "avg degree"; "redundant trees feasible" ] in
  List.iter
    (fun r ->
      Table.add_row feas
        [
          Printf.sprintf "%.2f" r.alpha;
          Printf.sprintf "%.2f" r.average_degree;
          Printf.sprintf "%.0f%%" (100.0 *. r.feasible_fraction);
        ])
    rows;
  let t = Table.create ~columns:[ "scheme"; "recovery distance"; "delay vs SPF"; "capacity vs SPF" ] in
  Table.add_row t
    [
      "SMRP (reactive)";
      Printf.sprintf "%.2f ± %.2f hops" cmp.rd_smrp.Stats.mean cmp.rd_smrp.Stats.ci95;
      pct cmp.delay_smrp;
      pct cmp.cost_smrp;
    ];
  Table.add_row t
    [
      "Redundant trees [16]";
      "0 (switchover)";
      Printf.sprintf "%s (post-failure %s)" (pct cmp.delay_redundant)
        (pct cmp.post_failure_delay_redundant);
      pct cmp.cost_redundant;
    ];
  Printf.sprintf
    "Related work: SMRP vs preplanned redundant trees (Medard et al. [16])\n\n\
     Feasibility on Waxman topologies (N=100, 100 draws each):\n%s\n\n\
     Price of protection on feasible draws (alpha=0.5, %d scenarios, N_G=30):\n%s\n"
    (Table.render feas) cmp.scenarios (Table.render t)
