module Heap = Smrp_graph.Heap

type handle = { mutable cancelled : bool }

type event = { handle : handle; action : unit -> unit }

type t = { mutable clock : float; queue : event Heap.t }

let create () = { clock = 0.0; queue = Heap.create () }

let now t = t.clock

let schedule_at t ~time action =
  if time < t.clock then invalid_arg "Engine.schedule_at: time in the past";
  let handle = { cancelled = false } in
  Heap.add t.queue time { handle; action };
  handle

let schedule t ~delay action =
  if delay < 0.0 then invalid_arg "Engine.schedule: negative delay";
  schedule_at t ~time:(t.clock +. delay) action

let cancel handle = handle.cancelled <- true

let every t ~period ?(jitter = fun () -> 0.0) action =
  if period <= 0.0 then invalid_arg "Engine.every: period must be positive";
  (* One outer handle controls the whole series; each firing re-arms. *)
  let master = { cancelled = false } in
  let rec arm () =
    let delay = Float.max 0.0 (period +. jitter ()) in
    ignore
      (schedule t ~delay (fun () ->
           if not master.cancelled then begin
             action ();
             if not master.cancelled then arm ()
           end))
  in
  arm ();
  master

let step t =
  match Heap.pop_min t.queue with
  | None -> false
  | Some (time, ev) ->
      t.clock <- time;
      if not ev.handle.cancelled then ev.action ();
      true

let run ?until t =
  let continue () =
    match until with
    | None -> true
    | Some limit -> (
        match Heap.peek_min t.queue with Some (time, _) -> time <= limit | None -> false)
  in
  while continue () && step t do
    ()
  done;
  match until with
  | Some limit when Heap.length t.queue > 0 -> t.clock <- Float.max t.clock limit
  | Some limit when t.clock < limit -> t.clock <- limit
  | _ -> ()

let pending t = Heap.length t.queue
