lib/sim/net.ml: Array Engine Smrp_core Smrp_graph Smrp_rng
