lib/sim/protocol.mli: Engine Net Smrp_core Smrp_graph
