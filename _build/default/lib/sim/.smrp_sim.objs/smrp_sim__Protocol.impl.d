lib/sim/protocol.ml: Array Engine Hashtbl List Net Option Smrp_core Smrp_graph
