lib/sim/engine.ml: Float Smrp_graph
