lib/sim/net.mli: Engine Smrp_core Smrp_graph Smrp_rng
