lib/sim/engine.mli:
