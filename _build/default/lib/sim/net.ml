module Graph = Smrp_graph.Graph

type 'msg t = {
  engine : Engine.t;
  graph : Graph.t;
  handler : 'msg t -> at:int -> from:int -> 'msg -> unit;
  link_down : bool array;
  node_down : bool array;
  mutable loss : (Smrp_rng.Rng.t * float) option;
  mutable frames_sent : int;
  mutable frames_lost : int;
}

let create engine graph ~handler =
  {
    engine;
    graph;
    handler;
    link_down = Array.make (Graph.edge_count graph) false;
    node_down = Array.make (Graph.node_count graph) false;
    loss = None;
    frames_sent = 0;
    frames_lost = 0;
  }

let engine t = t.engine

let graph t = t.graph

let link_up t eid = not t.link_down.(eid)

let node_up t v = not t.node_down.(v)

let send t ~src ~dst msg =
  match Graph.edge_between t.graph src dst with
  | None -> invalid_arg "Net.send: nodes not adjacent"
  | Some e ->
      let eid = e.Graph.id in
      if t.link_down.(eid) || t.node_down.(src) || t.node_down.(dst) then false
      else begin
        t.frames_sent <- t.frames_sent + 1;
        let lost =
          match t.loss with
          | Some (rng, rate) when Smrp_rng.Rng.float rng 1.0 < rate ->
              t.frames_lost <- t.frames_lost + 1;
              true
          | _ -> false
        in
        if not lost then
          ignore
            (Engine.schedule t.engine ~delay:e.Graph.delay (fun () ->
                 (* The wire may have gone down while the frame was in
                    flight. *)
                 if (not t.link_down.(eid)) && (not t.node_down.(src)) && not t.node_down.(dst)
                 then t.handler t ~at:dst ~from:src msg));
        true
      end

let fail_link t eid = t.link_down.(eid) <- true

let fail_node t v = t.node_down.(v) <- true

let restore_link t eid = t.link_down.(eid) <- false

let restore_node t v = t.node_down.(v) <- false

let as_failure t =
  let downs = ref [] in
  Array.iteri (fun i d -> if d then downs := Smrp_core.Failure.Link i :: !downs) t.link_down;
  Array.iteri (fun v d -> if d then downs := Smrp_core.Failure.Node v :: !downs) t.node_down;
  match !downs with [ f ] -> Some f | _ -> None

let set_loss t ~rng ~rate =
  if rate < 0.0 || rate >= 1.0 then invalid_arg "Net.set_loss: rate out of [0, 1)";
  t.loss <- Some (rng, rate)

let frames_sent t = t.frames_sent

let frames_lost t = t.frames_lost
