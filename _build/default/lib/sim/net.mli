(** Message-passing network over a graph: unicast frames between neighbours
    with per-link propagation delay, plus link/node failure injection.

    Frames in flight when their link or an endpoint fails are dropped at
    delivery time — the receiving interface is down, which is exactly how a
    persistent failure manifests to the protocol above. *)

type 'msg t

val create :
  Engine.t ->
  Smrp_graph.Graph.t ->
  handler:('msg t -> at:int -> from:int -> 'msg -> unit) ->
  'msg t
(** [handler] is invoked at delivery time on the receiving node. *)

val engine : 'msg t -> Engine.t

val graph : 'msg t -> Smrp_graph.Graph.t

val send : 'msg t -> src:int -> dst:int -> 'msg -> bool
(** Send over the (existing) link [src]–[dst]; returns whether the frame was
    put on the wire (i.e. the link and both endpoints were up at send time).
    Raises [Invalid_argument] if the nodes are not adjacent. *)

val fail_link : 'msg t -> int -> unit
(** Take an edge down (by id). *)

val fail_node : 'msg t -> int -> unit
(** Kill a router: all its incident links stop delivering. *)

val restore_link : 'msg t -> int -> unit

val restore_node : 'msg t -> int -> unit

val link_up : 'msg t -> int -> bool

val node_up : 'msg t -> int -> bool

val as_failure : 'msg t -> Smrp_core.Failure.t option
(** The current failure scenario, when exactly one component is down —
    convenience for driving the core library's detour computations from
    simulator state. *)

val set_loss : 'msg t -> rng:Smrp_rng.Rng.t -> rate:float -> unit
(** Bernoulli frame loss: each frame is dropped at delivery with probability
    [rate] (drawn from [rng], so runs stay reproducible).  Models the
    transient losses the soft-state machinery (§3.2) must absorb. *)

val frames_sent : 'msg t -> int
(** Total frames accepted onto a wire: the control-overhead metric. *)

val frames_lost : 'msg t -> int
(** Frames dropped by the loss process (not by failures). *)
