(** Redundant trees for preplanned recovery — Medard, Finn, Barry & Gallager,
    IEEE/ACM ToN 1999 (the paper's reference [16] and Related-Work
    comparator).

    Two directed spanning trees (red and blue) rooted at the multicast
    source are built such that, for {e every} node, its red path and its
    blue path to the source are link-disjoint.  Any single link failure
    therefore leaves every receiver connected through at least one tree:
    recovery is an instant switchover with zero recovery distance — at the
    price of provisioning two trees and of requiring a 2-edge-connected
    topology (the practicality critique in the paper's §2).

    Construction: Schmidt chain decomposition from the source (which also
    certifies 2-edge-connectivity), then the MFBG linear-order ear
    processing — each open ear strings its interior from the lower endpoint
    (red direction) to the higher (blue direction); a closed ear leaves and
    re-enters through distinct links of its anchor. *)

type t

val build : Smrp_graph.Graph.t -> source:int -> t option
(** [None] when the graph is not connected and 2-edge-connected (a bridge
    or isolated node makes single-failure protection impossible). *)

val source : t -> int

val red_parent : t -> int -> (int * int) option
(** [(parent, edge id)] in the red tree; [None] for the source. *)

val blue_parent : t -> int -> (int * int) option

val red_path : t -> int -> int list * int list
(** Nodes (member..source) and edge ids of the red path. *)

val blue_path : t -> int -> int list * int list

val paths_disjoint : t -> int -> bool
(** Whether the node's red and blue paths share no link (the MFBG
    guarantee; exposed for property tests). *)

val survives : t -> Failure.t -> member:int -> bool
(** Whether the member still reaches the source through at least one tree
    under the failure. *)

val delay : t -> int -> float
(** The faster of the two paths' delays (the steady-state path). *)

val worst_delay : t -> int -> float
(** The slower path's delay — what the member experiences right after a
    failure hits its primary. *)

val provisioned_cost : t -> receivers:int list -> float
(** Total cost of the links provisioned for the given receivers: the union
    of all their red and blue path edges. *)
