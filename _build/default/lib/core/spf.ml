module Dijkstra = Smrp_graph.Dijkstra

let attach_path ?failure t nr =
  if Tree.is_on_tree t nr then ([ nr ], [])
  else begin
    let g = Tree.graph t in
    let node_ok v = match failure with None -> true | Some f -> Failure.node_ok f v in
    let edge_ok e = match failure with None -> true | Some f -> Failure.edge_ok g f e in
    match Dijkstra.shortest_path ~node_ok ~edge_ok g ~src:nr ~dst:(Tree.source t) with
    | None -> invalid_arg "Spf.attach_path: source unreachable"
    | Some (_, nodes, edges) ->
        (* The join travels nr → source and grafts at the first on-tree node
           it meets; the graft path runs from that merge node back to nr.
           [nodes] is nr..S with [edges] aligned pairwise. *)
        let rec walk nodes edges acc_nodes acc_edges =
          match (nodes, edges) with
          | v :: _, _ when Tree.is_on_tree t v -> (v :: acc_nodes, acc_edges)
          | v :: rest, e :: es -> walk rest es (v :: acc_nodes) (e :: acc_edges)
          | _ -> invalid_arg "Spf.attach_path: no on-tree node on the path"
        in
        walk nodes edges [] []
  end

let join ?failure t nr =
  if Tree.is_member t nr then invalid_arg "Spf.join: already a member";
  (match attach_path ?failure t nr with
  | [ _ ], [] -> ()
  | nodes, edges -> Tree.graft t ~nodes ~edges);
  Tree.add_member t nr

let leave t m = Tree.remove_member t m

let build g ~source ~members =
  let t = Tree.create g ~source in
  List.iter (join t) members;
  t
