(** Graphviz export for trees and failure scenarios — debugging and
    documentation aid ([dot -Tsvg] renders the output). *)

val tree : Tree.t -> string
(** The multicast tree alone: source as a double circle, members as boxes,
    relays as circles, edges labelled with their delay. *)

val network :
  ?tree:Tree.t -> ?failure:Failure.t -> ?highlight:int list -> Smrp_graph.Graph.t -> string
(** The whole topology; tree edges are drawn bold, failed components dashed
    red, and [highlight]ed edge ids (e.g. a detour path) dotted blue. *)
