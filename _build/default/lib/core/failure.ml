module Graph = Smrp_graph.Graph

type t = Link of int | Node of int | Multi of t list

let compose = function [ f ] -> f | fs -> Multi fs

let rec node_ok f v =
  match f with
  | Link _ -> true
  | Node u -> v <> u
  | Multi fs -> List.for_all (fun f -> node_ok f v) fs

let rec edge_ok g f eid =
  match f with
  | Link e -> eid <> e
  | Node u ->
      let e = Graph.edge g eid in
      e.Graph.u <> u && e.Graph.v <> u
  | Multi fs -> List.for_all (fun f -> edge_ok g f eid) fs

let worst_case_for_member t r =
  if r = Tree.source t then None
  else begin
    (* The first link below the source on the source→r tree path. *)
    match Tree.path_to_source t r with
    | _ :: _ ->
        let rec first_below_source v =
          match Tree.parent t v with
          | Some p when p = Tree.source t -> Option.get (Tree.parent_edge t v)
          | Some p -> first_below_source p
          | None -> invalid_arg "Failure.worst_case_for_member: detached node"
        in
        Some (Link (first_below_source r))
    | [] -> None
  end

let tree_connected t f =
  let g = Tree.graph t in
  let connected = Array.make (Graph.node_count g) false in
  let s = Tree.source t in
  if node_ok f s then begin
    let rec visit v =
      connected.(v) <- true;
      List.iter
        (fun c ->
          match Tree.parent_edge t c with
          | Some eid when node_ok f c && edge_ok g f eid -> visit c
          | _ -> ())
        (Tree.children t v)
    in
    visit s
  end;
  connected

let affected_members t f =
  let connected = tree_connected t f in
  List.filter (fun m -> (not connected.(m)) && node_ok f m) (Tree.members t)

let rec pp g ppf = function
  | Link eid ->
      let e = Graph.edge g eid in
      Format.fprintf ppf "link failure %d--%d (edge %d)" e.Graph.u e.Graph.v eid
  | Node v -> Format.fprintf ppf "node failure %d" v
  | Multi fs ->
      Format.fprintf ppf "@[<h>multiple failures:";
      List.iter (fun f -> Format.fprintf ppf " [%a]" (pp g) f) fs;
      Format.fprintf ppf "@]"
