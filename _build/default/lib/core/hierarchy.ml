module TS = Smrp_topology.Transit_stub
module Graph = Smrp_graph.Graph
module Subgraph = Smrp_graph.Subgraph

type domain = { id : int; sub : Subgraph.t; tree : Tree.t; agent : int }

type t = {
  ts : TS.t;
  d_thresh : float;
  source : int;
  top : domain;
  stubs : (int * domain) list; (* involved stub domains, by stub id *)
}

let stub_of ts v =
  match ts.TS.roles.(v) with
  | TS.Stub d -> d
  | TS.Transit _ -> invalid_arg "Hierarchy: expected a stub node"

let to_sub_exn sub v =
  match Subgraph.node_to_sub sub v with
  | Some s -> s
  | None -> invalid_arg "Hierarchy: node not in domain subgraph"

let build ?(d_thresh = Smrp.default_d_thresh) ts ~source ~members =
  let source_stub = stub_of ts source in
  let by_stub = Hashtbl.create 8 in
  List.iter
    (fun m ->
      let d = stub_of ts m in
      Hashtbl.replace by_stub d (m :: (Option.value ~default:[] (Hashtbl.find_opt by_stub d))))
    members;
  if not (Hashtbl.mem by_stub source_stub) then Hashtbl.replace by_stub source_stub [];
  let involved = List.sort compare (Hashtbl.fold (fun d _ acc -> d :: acc) by_stub []) in
  let build_stub d =
    let agent = ts.TS.stub_attach.(d) in
    let keep v = match ts.TS.roles.(v) with TS.Stub d' -> d' = d | TS.Transit _ -> false in
    let sub = Subgraph.extract ts.TS.graph ~keep in
    let domain_members = Option.value ~default:[] (Hashtbl.find_opt by_stub d) in
    let root = if d = source_stub then source else agent in
    let tree = Tree.create sub.Subgraph.graph ~source:(to_sub_exn sub root) in
    (* In the source's domain the agent subscribes as a relaying member
       (the paper's A_1) so that packets reach the access link. *)
    let receivers =
      let base = List.filter (fun m -> m <> root) domain_members in
      if d = source_stub && agent <> source && not (List.mem agent base) then base @ [ agent ]
      else base
    in
    List.iter (fun m -> Smrp.join ~d_thresh tree (to_sub_exn sub m)) receivers;
    if List.mem root domain_members then Tree.add_member tree (to_sub_exn sub root);
    { id = d; sub; tree; agent }
  in
  let stubs = List.map (fun d -> (d, build_stub d)) involved in
  let agents = List.map (fun (d, dom) -> (d, dom.agent)) stubs in
  let keep_top v =
    match ts.TS.roles.(v) with
    | TS.Transit _ -> true
    | TS.Stub _ -> List.exists (fun (_, a) -> a = v) agents
  in
  let sub_top = Subgraph.extract ts.TS.graph ~keep:keep_top in
  let root_agent = List.assoc source_stub agents in
  let top_tree = Tree.create sub_top.Subgraph.graph ~source:(to_sub_exn sub_top root_agent) in
  List.iter
    (fun (d, a) -> if d <> source_stub then Smrp.join ~d_thresh top_tree (to_sub_exn sub_top a))
    agents;
  let top = { id = -1; sub = sub_top; tree = top_tree; agent = root_agent } in
  { ts; d_thresh; source; top; stubs }

let top_domain t = t.top

let member_domains t = List.map snd t.stubs

let domain_of_node t v =
  match t.ts.TS.roles.(v) with
  | TS.Transit _ -> None
  | TS.Stub d -> Option.map (fun dom -> dom) (List.assoc_opt d t.stubs)

(* Translate a failure in original ids into a domain's subgraph ids; [None]
   when the failed component is absent from the domain. *)
let rec failure_in_domain dom f =
  match f with
  | Failure.Node v -> Option.map (fun s -> Failure.Node s) (Subgraph.node_to_sub dom.sub v)
  | Failure.Link eid ->
      let found = ref None in
      Array.iteri
        (fun sub_id orig_id -> if orig_id = eid && !found = None then found := Some sub_id)
        dom.sub.Subgraph.edge_from_sub;
      Option.map (fun s -> Failure.Link s) !found
  | Failure.Multi fs -> (
      match List.filter_map (failure_in_domain dom) fs with
      | [] -> None
      | local -> Some (Failure.compose local))

let owning_domain t f =
  let domains = t.top :: List.map snd t.stubs in
  List.find_opt (fun dom -> failure_in_domain dom f <> None) domains

type recovery = {
  domain_id : int;
  receiver : int;
  detour : Recovery.detour;
  recovery_distance : float;
  confined : bool;
}

let recover t f =
  let domains = t.top :: List.map snd t.stubs in
  let recover_in dom =
    match failure_in_domain dom f with
    | None -> []
    | Some sub_f ->
        let affected = Failure.affected_members dom.tree sub_f in
        List.filter_map
          (fun m ->
            match Recovery.local_detour dom.tree sub_f ~member:m with
            | None -> None
            | Some d ->
                Some
                  {
                    domain_id = dom.id;
                    receiver = Subgraph.node_from_sub dom.sub m;
                    detour = d;
                    recovery_distance = d.Recovery.recovery_distance;
                    confined = true;
                  })
          affected
  in
  List.concat_map recover_in domains

let flat_equivalent t =
  (* True receivers only: the agent subscribed in the source's domain is a
     relay of the architecture, not a receiver. *)
  let source_stub = stub_of t.ts t.source in
  let members =
    List.concat_map
      (fun (d, dom) ->
        List.filter_map
          (fun m ->
            let orig = Subgraph.node_from_sub dom.sub m in
            if orig = t.source || (d = source_stub && orig = dom.agent) then None else Some orig)
          (Tree.members dom.tree))
      t.stubs
  in
  Smrp.build ~d_thresh:t.d_thresh t.ts.TS.graph ~source:t.source ~members
