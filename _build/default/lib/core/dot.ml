module Graph = Smrp_graph.Graph

let node_attrs tree v =
  match tree with
  | Some t when Tree.source t = v -> " [shape=doublecircle, style=filled, fillcolor=gold]"
  | Some t when Tree.is_member t v -> " [shape=box, style=filled, fillcolor=lightblue]"
  | Some t when Tree.is_on_tree t v -> " [shape=circle, style=filled, fillcolor=lightgrey]"
  | _ -> " [shape=circle]"

let tree t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "digraph multicast_tree {\n  rankdir=BT;\n";
  List.iter
    (fun v -> Buffer.add_string buf (Printf.sprintf "  %d%s;\n" v (node_attrs (Some t) v)))
    (Tree.on_tree_nodes t);
  List.iter
    (fun v ->
      match (Tree.parent t v, Tree.parent_edge t v) with
      | Some p, Some eid ->
          let e = Graph.edge (Tree.graph t) eid in
          Buffer.add_string buf (Printf.sprintf "  %d -> %d [label=\"%g\"];\n" v p e.Graph.delay)
      | _ -> ())
    (Tree.on_tree_nodes t);
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let network ?tree:t ?failure ?(highlight = []) g =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "graph network {\n  layout=neato;\n";
  let failed_node v = match failure with Some f -> not (Failure.node_ok f v) | None -> false in
  let failed_edge e = match failure with Some f -> not (Failure.edge_ok g f e) | None -> false in
  for v = 0 to Graph.node_count g - 1 do
    let attrs =
      if failed_node v then " [shape=circle, style=dashed, color=red]" else node_attrs t v
    in
    Buffer.add_string buf (Printf.sprintf "  %d%s;\n" v attrs)
  done;
  let on_tree_edge eid = match t with Some t -> List.mem eid (Tree.tree_edges t) | None -> false in
  Graph.iter_edges
    (fun e ->
      let style =
        if failed_edge e.Graph.id then "style=dashed, color=red, penwidth=2"
        else if List.mem e.Graph.id highlight then "style=dotted, color=blue, penwidth=2"
        else if on_tree_edge e.Graph.id then "penwidth=2.5"
        else "color=grey"
      in
      Buffer.add_string buf
        (Printf.sprintf "  %d -- %d [label=\"%g\", %s];\n" e.Graph.u e.Graph.v e.Graph.delay style))
    g;
  Buffer.add_string buf "}\n";
  Buffer.contents buf
