type protocol = Spf | Smrp of { d_thresh : float } | Smrp_query of { d_thresh : float }

type repair = { detour : Recovery.detour; strategy : [ `Local | `Global ] }

type event =
  | Joined of int
  | Left of int
  | Reshaped of { node : int; switches : int }
  | Failed of Failure.t
  | Repaired of repair
  | Lost of int

type t = {
  graph : Smrp_graph.Graph.t;
  protocol : protocol;
  mutable tree : Tree.t;
  mutable active_failures : Failure.t list; (* persistent, newest first *)
  mutable events : event list; (* newest first *)
}

let create graph ~source ~protocol =
  { graph; protocol; tree = Tree.create graph ~source; active_failures = []; events = [] }

let active_failure t =
  match t.active_failures with [] -> None | fs -> Some (Failure.compose fs)

let tree t = t.tree

let protocol t = t.protocol

let events t = List.rev t.events

let log t e = t.events <- e :: t.events

let join t nr =
  let failure = active_failure t in
  (match t.protocol with
  | Spf -> Spf.join ?failure t.tree nr
  | Smrp { d_thresh } -> Smrp.join ~d_thresh ?failure t.tree nr
  | Smrp_query { d_thresh } ->
      (* The query scheme has no failure-aware variant; under active
         failures fall back to the failure-aware SMRP selection. *)
      (match failure with
      | None -> Query.join ~d_thresh t.tree nr
      | Some _ -> Smrp.join ~d_thresh ?failure t.tree nr));
  log t (Joined nr)

let leave t m =
  Tree.remove_member t.tree m;
  log t (Left m)

let reshape_all t =
  match t.protocol with
  | Spf -> 0
  | Smrp { d_thresh } | Smrp_query { d_thresh } ->
      let stats = Reshape.stabilize ~d_thresh ?failure:(active_failure t) t.tree in
      if stats.Reshape.switches > 0 then
        log t (Reshaped { node = Tree.source t.tree; switches = stats.Reshape.switches });
      stats.Reshape.switches

let fail t f =
  log t (Failed f);
  t.active_failures <- f :: t.active_failures;
  (* Detours must avoid every failure still active, not just the new one. *)
  let f = Option.get (active_failure t) in
  let strategy = match t.protocol with Spf -> `Global | Smrp _ | Smrp_query _ -> `Local in
  let affected = Failure.affected_members t.tree f in
  let dead =
    List.filter (fun m -> not (Failure.node_ok f m)) (Tree.members t.tree)
  in
  let fresh = Recovery.surviving_tree t.tree f in
  (* Closest-detour-first repair: each re-attachment can serve as a merge
     point for the next member (Fig. 2(b)), so detours are recomputed after
     every graft. *)
  let rec repair pending repairs =
    let detour_of m =
      match strategy with
      | `Local -> Recovery.local_detour fresh f ~member:m
      | `Global -> Recovery.global_detour fresh f ~member:m
    in
    let options =
      List.filter_map (fun m -> Option.map (fun d -> (m, d)) (detour_of m)) pending
    in
    match
      List.sort
        (fun (_, a) (_, b) ->
          compare
            (a.Recovery.recovery_distance, a.Recovery.member)
            (b.Recovery.recovery_distance, b.Recovery.member))
        options
    with
    | [] ->
        List.iter (fun m -> log t (Lost m)) pending;
        List.rev repairs
    | (m, d) :: _ ->
        (match d.Recovery.path_edges with
        | [] -> Tree.add_member fresh m (* merge node is the member itself *)
        | _ ->
            Tree.graft fresh
              ~nodes:(List.rev d.Recovery.path_nodes)
              ~edges:(List.rev d.Recovery.path_edges);
            Tree.add_member fresh m);
        let r = { detour = d; strategy } in
        log t (Repaired r);
        repair (List.filter (fun m' -> m' <> m) pending) (r :: repairs)
  in
  List.iter (fun m -> log t (Lost m)) dead;
  let repairs = repair affected [] in
  t.tree <- fresh;
  repairs
