lib/core/smrp.mli: Failure Smrp_graph Tree
