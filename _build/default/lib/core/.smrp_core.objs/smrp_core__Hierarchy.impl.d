lib/core/hierarchy.ml: Array Failure Hashtbl List Option Recovery Smrp Smrp_graph Smrp_topology Tree
