lib/core/session.ml: Failure List Option Query Recovery Reshape Smrp Smrp_graph Spf Tree
