lib/core/recovery.mli: Failure Tree
