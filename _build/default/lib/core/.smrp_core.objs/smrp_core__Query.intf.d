lib/core/query.mli: Smrp Smrp_graph Tree
