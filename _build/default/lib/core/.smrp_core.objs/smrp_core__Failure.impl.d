lib/core/failure.ml: Array Format List Option Smrp_graph Tree
