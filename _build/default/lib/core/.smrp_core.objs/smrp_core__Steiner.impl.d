lib/core/steiner.ml: List Option Smrp_graph Tree
