lib/core/query.ml: Hashtbl List Smrp Smrp_graph Spf Tree
