lib/core/spf.mli: Failure Smrp_graph Tree
