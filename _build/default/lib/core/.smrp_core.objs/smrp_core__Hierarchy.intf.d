lib/core/hierarchy.mli: Failure Recovery Smrp_graph Smrp_topology Tree
