lib/core/steiner.mli: Smrp_graph Tree
