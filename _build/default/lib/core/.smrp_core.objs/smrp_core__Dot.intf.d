lib/core/dot.mli: Failure Smrp_graph Tree
