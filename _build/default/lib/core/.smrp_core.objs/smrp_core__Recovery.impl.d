lib/core/recovery.ml: Array Failure List Option Smrp_graph Tree
