lib/core/failure.mli: Format Smrp_graph Tree
