lib/core/tree.ml: Array Format List Printf Smrp_graph
