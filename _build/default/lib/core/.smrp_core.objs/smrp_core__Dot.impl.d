lib/core/dot.ml: Buffer Failure List Printf Smrp_graph Tree
