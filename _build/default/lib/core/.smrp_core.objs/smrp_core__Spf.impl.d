lib/core/spf.ml: Failure List Smrp_graph Tree
