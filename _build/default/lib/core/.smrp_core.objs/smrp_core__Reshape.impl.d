lib/core/reshape.ml: Hashtbl List Option Smrp Smrp_graph Tree
