lib/core/redundant.mli: Failure Smrp_graph
