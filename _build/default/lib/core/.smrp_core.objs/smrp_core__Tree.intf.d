lib/core/tree.mli: Format Smrp_graph
