lib/core/reshape.mli: Failure Tree
