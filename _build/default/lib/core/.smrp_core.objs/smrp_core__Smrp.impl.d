lib/core/smrp.ml: Failure List Option Smrp_graph Tree
