lib/core/redundant.ml: Array Failure Float Int List Set Smrp_graph
