lib/core/session.mli: Failure Recovery Smrp_graph Tree
