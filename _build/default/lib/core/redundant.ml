module Graph = Smrp_graph.Graph

type t = {
  graph : Graph.t;
  source : int;
  red_parent : int array;
  red_edge : int array;
  blue_parent : int array;
  blue_edge : int array;
}

(* -- Chain decomposition (Schmidt) ------------------------------------- *)

type chain = { endpoints : int * int; interior : (int * int) list; first_edge : int; last_edge : int }
(* A chain runs ancestor -> back edge -> descendant -> tree edges -> first
   visited node.  [interior] lists (node, tree edge to its successor in the
   walk); [first_edge] is the back edge, [last_edge] joins the final
   interior node to the terminal endpoint (equal to [first_edge] when the
   chain has no interior). *)

let chain_decomposition g ~root =
  let n = Graph.node_count g in
  let parent = Array.make n (-1) in
  let parent_edge = Array.make n (-1) in
  let disc = Array.make n (-1) in
  let order = ref [] in
  let time = ref 0 in
  (* Iterative DFS recording discovery order and tree edges. *)
  let rec explore stack =
    match stack with
    | [] -> ()
    | (u, neighbors) :: rest -> begin
        match neighbors with
        | [] -> explore rest
        | (v, eid) :: tail ->
            if disc.(v) < 0 then begin
              parent.(v) <- u;
              parent_edge.(v) <- eid;
              disc.(v) <- !time;
              incr time;
              order := v :: !order;
              explore ((v, Graph.neighbors g v) :: (u, tail) :: rest)
            end
            else explore ((u, tail) :: rest)
      end
  in
  disc.(root) <- !time;
  incr time;
  order := root :: !order;
  explore [ (root, Graph.neighbors g root) ];
  if !time < n then None (* disconnected *)
  else begin
    let dfs_order = List.rev !order in
    let visited = Array.make n false in
    let edge_in_chain = Array.make (Graph.edge_count g) false in
    let chains = ref [] in
    visited.(root) <- true;
    List.iter
      (fun v ->
        (* Back edges whose ancestor endpoint is v: the other endpoint is a
           descendant with larger discovery time and the edge is not the
           tree edge of either endpoint. *)
        List.iter
          (fun (d, eid) ->
            let is_tree = parent_edge.(d) = eid || parent_edge.(v) = eid in
            if (not is_tree) && disc.(d) > disc.(v) then begin
              edge_in_chain.(eid) <- true;
              (* Walk tree edges upward from d until a visited node. *)
              let rec walk u acc last_edge =
                if visited.(u) then (u, List.rev acc, last_edge)
                else begin
                  visited.(u) <- true;
                  let e = parent_edge.(u) in
                  edge_in_chain.(e) <- true;
                  walk parent.(u) ((u, e) :: acc) e
                end
              in
              let terminal, interior, last_edge = walk d [] eid in
              chains := { endpoints = (v, terminal); interior; first_edge = eid; last_edge } :: !chains
            end)
          (Graph.neighbors g v))
      dfs_order;
    (* 2-edge-connected iff every edge lies in some chain. *)
    let all_covered = ref (Graph.edge_count g > 0 || n = 1) in
    Graph.iter_edges (fun e -> if not edge_in_chain.(e.Graph.id) then all_covered := false) g;
    if !all_covered then Some (List.rev !chains) else None
  end

(* -- MFBG construction -------------------------------------------------- *)

let build g ~source =
  let n = Graph.node_count g in
  if source < 0 || source >= n then invalid_arg "Redundant.build: source out of range";
  if n = 1 then
    Some
      {
        graph = g;
        source;
        red_parent = [| -1 |];
        red_edge = [| -1 |];
        blue_parent = [| -1 |];
        blue_edge = [| -1 |];
      }
  else
    match chain_decomposition g ~root:source with
    | None -> None
    | Some [] -> None
    | Some (first :: rest) ->
        let red_parent = Array.make n (-1) in
        let red_edge = Array.make n (-1) in
        let blue_parent = Array.make n (-1) in
        let blue_edge = Array.make n (-1) in
        (* Total order maintained as a list, source at both conceptual
           ends; position lookup by array index, renumbered per insertion
           (n is small in all uses). *)
        let position = Array.make n (-1) in
        let sequence = ref [ source ] in
        let renumber () = List.iteri (fun i v -> position.(v) <- i) !sequence in
        let insert_after anchor nodes =
          let rec splice = function
            | [] -> invalid_arg "Redundant.build: anchor not in order"
            | x :: tl when x = anchor -> x :: (nodes @ tl)
            | x :: tl -> x :: splice tl
          in
          sequence := splice !sequence;
          renumber ()
        in
        renumber ();
        (* First chain: a cycle through the source. *)
        let lay_cycle chain =
          let v, terminal = chain.endpoints in
          assert (v = source && terminal = source);
          let interior = chain.interior in
          (match interior with
          | [] -> invalid_arg "Redundant.build: degenerate first chain"
          | (x1, _) :: _ ->
              (* Walk order is v -(first_edge)- x1 -(e1)- x2 ... xk -(last)-
                 terminal.  Red goes back towards v; blue forwards to
                 terminal. *)
              red_parent.(x1) <- v;
              red_edge.(x1) <- chain.first_edge;
              let rec link = function
                | (xa, ea) :: ((xb, _) :: _ as tl) ->
                    blue_parent.(xa) <- xb;
                    blue_edge.(xa) <- ea;
                    red_parent.(xb) <- xa;
                    red_edge.(xb) <- ea;
                    link tl
                | [ (xk, ek) ] ->
                    blue_parent.(xk) <- terminal;
                    blue_edge.(xk) <- ek
                | [] -> ()
              in
              link interior;
              insert_after source (List.map fst interior))
        in
        lay_cycle first;
        let lay_ear chain =
          match chain.interior with
          | [] -> () (* a single redundant edge: contributes no tree state *)
          | interior ->
              let a, b = chain.endpoints in
              (* Orient so the chain walk starts at the lower-ordered
                 endpoint: if it does not, reverse the walk. *)
              let forward = position.(a) <= position.(b) in
              let u, w, walk =
                if forward then (a, b, (chain.first_edge, interior, chain.last_edge))
                else begin
                  (* Reverse: interior nodes in reverse order; edge towards
                     the new predecessor is the successor edge of the
                     original walk. *)
                  let nodes = List.map fst interior in
                  let edges = chain.first_edge :: List.map snd interior in
                  (* edges has length interior+1; reversed pairing. *)
                  let rev_nodes = List.rev nodes in
                  let rev_edges = List.rev edges in
                  match rev_edges with
                  | first :: others ->
                      let rebuilt =
                        List.map2 (fun node e -> (node, e)) rev_nodes others
                      in
                      (b, a, (first, rebuilt, List.nth edges 0))
                  | [] -> assert false
                end
              in
              let first_edge, interior, _last = walk in
              (match interior with
              | (x1, _) :: _ ->
                  red_parent.(x1) <- u;
                  red_edge.(x1) <- first_edge;
                  let rec link = function
                    | (xa, ea) :: ((xb, _) :: _ as tl) ->
                        blue_parent.(xa) <- xb;
                        blue_edge.(xa) <- ea;
                        red_parent.(xb) <- xa;
                        red_edge.(xb) <- ea;
                        link tl
                    | [ (xk, ek) ] ->
                        blue_parent.(xk) <- w;
                        blue_edge.(xk) <- ek
                    | [] -> ()
                  in
                  link interior;
                  insert_after u (List.map fst interior)
              | [] -> ())
        in
        List.iter lay_ear rest;
        Some { graph = g; source; red_parent; red_edge; blue_parent; blue_edge }

let source t = t.source

let red_parent t v = if t.red_parent.(v) < 0 then None else Some (t.red_parent.(v), t.red_edge.(v))

let blue_parent t v =
  if t.blue_parent.(v) < 0 then None else Some (t.blue_parent.(v), t.blue_edge.(v))

let path parent edge t v =
  let rec walk v nodes edges steps =
    if steps > Graph.node_count t.graph then invalid_arg "Redundant: cyclic parent chain"
    else if v = t.source then (List.rev (v :: nodes), List.rev edges)
    else walk parent.(v) (v :: nodes) (edge.(v) :: edges) (steps + 1)
  in
  walk v [] [] 0

let red_path t v = path t.red_parent t.red_edge t v

let blue_path t v = path t.blue_parent t.blue_edge t v

let paths_disjoint t v =
  let _, red = red_path t v in
  let _, blue = blue_path t v in
  let module S = Set.Make (Int) in
  S.is_empty (S.inter (S.of_list red) (S.of_list blue))

let survives t f ~member =
  Failure.node_ok f member
  &&
  let ok (nodes, edges) =
    List.for_all (Failure.node_ok f) nodes && List.for_all (Failure.edge_ok t.graph f) edges
  in
  ok (red_path t member) || ok (blue_path t member)

let path_delay t edges =
  List.fold_left (fun acc e -> acc +. (Graph.edge t.graph e).Graph.delay) 0.0 edges

let delay t v =
  let _, red = red_path t v in
  let _, blue = blue_path t v in
  Float.min (path_delay t red) (path_delay t blue)

let worst_delay t v =
  let _, red = red_path t v in
  let _, blue = blue_path t v in
  Float.max (path_delay t red) (path_delay t blue)

let provisioned_cost t ~receivers =
  let module S = Set.Make (Int) in
  let edges =
    List.fold_left
      (fun acc v ->
        let _, red = red_path t v in
        let _, blue = blue_path t v in
        S.union acc (S.union (S.of_list red) (S.of_list blue)))
      S.empty receivers
  in
  S.fold (fun e acc -> acc +. (Graph.edge t.graph e).Graph.cost) edges 0.0
