(** Persistent failure scenarios: a broken link or an incapacitated router
    (§1).  A scenario does not mutate the graph; it is expressed as the
    node/edge filters the path computations already accept, so scenarios
    compose with every search in the library. *)

type t =
  | Link of int  (** edge id *)
  | Node of int
  | Multi of t list
      (** Simultaneous (or accumulated) failures; persistent failures last
          hours, so a session typically outlives several. *)

val compose : t list -> t
(** Flatten a list of scenarios into one (a singleton stays itself). *)

val node_ok : t -> int -> bool
(** Whether a node survives the scenario. *)

val edge_ok : Smrp_graph.Graph.t -> t -> int -> bool
(** Whether an edge survives; a node failure kills its incident links. *)

val worst_case_for_member : Tree.t -> int -> t option
(** The paper's worst case for member [R] (§4.3.1): the failure of the
    on-tree link incident to the source on the path towards [R] — the
    failure that disables the largest portion of [R]'s tree.  [None] when
    [R] is the source itself. *)

val tree_connected : Tree.t -> t -> bool array
(** [tree_connected t f] marks the on-tree nodes that still receive data:
    reachable from the source along surviving tree links and nodes. *)

val affected_members : Tree.t -> t -> int list
(** Members that lost service (excluding a member whose own router died —
    it cannot recover). *)

val pp : Smrp_graph.Graph.t -> Format.formatter -> t -> unit
