(** The 2-level hierarchical recovery architecture (§3.3.3).

    The network is a transit–stub topology.  Each stub domain hosting
    members forms a level-1 recovery domain whose {e agent} is the stub
    router holding the access link; the transit network plus the agents form
    the level-2 (top) recovery domain.  Each domain runs its own multicast
    sub-tree:

    - in the source's stub domain, the tree is rooted at the actual source
      and the agent joins as a relaying member (the paper's [A_1]);
    - in every other member stub domain, the tree is rooted at the agent;
    - in the top domain, the tree is rooted at the source domain's agent and
      the other agents join as members.

    A failure is recovered {e inside the domain that owns the failed
    component}: only that domain's sub-tree is reconfigured, which is the
    scalability argument of §3.3.3. *)

type domain = {
  id : int;  (** Stub-domain id, or [-1] for the top domain. *)
  sub : Smrp_graph.Subgraph.t;
  tree : Tree.t;  (** Over [sub.graph] (subgraph node ids). *)
  agent : int;  (** Agent in original node ids. *)
}

type t

val build :
  ?d_thresh:float ->
  Smrp_topology.Transit_stub.t ->
  source:int ->
  members:int list ->
  t
(** Build the recovery architecture for a session.  [source] and all
    [members] must be stub nodes. *)

val top_domain : t -> domain

val member_domains : t -> domain list
(** Stub domains hosting at least one member (the source's included). *)

val domain_of_node : t -> int -> domain option
(** The level-1 domain owning a stub node. *)

val owning_domain : t -> Failure.t -> domain option
(** The domain responsible for recovering from a failure: the stub domain
    containing a failed stub link/router, or the top domain for transit and
    access failures.  [None] when the failed component carries no session
    state (e.g. a stub domain with no members). *)

type recovery = {
  domain_id : int;  (** [-1] for the top domain. *)
  receiver : int;  (** Original node id (a member, or an agent). *)
  detour : Recovery.detour;  (** In subgraph ids. *)
  recovery_distance : float;
  confined : bool;  (** Whether the detour stayed inside the owning domain —
                        true by construction; recorded for auditability. *)
}

val recover : t -> Failure.t -> recovery list
(** Compute local-detour recoveries for every receiver disconnected by the
    failure, confined to the owning domain.  The failure is given in
    original graph ids. *)

val flat_equivalent : t -> Tree.t
(** The flat (non-hierarchical) SMRP tree over the whole topology with the
    same source and members — the comparison point for the hierarchical
    ablation. *)
