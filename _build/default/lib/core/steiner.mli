(** A cost-minimising multicast baseline: the Takahashi–Matsuyama Steiner
    heuristic (iteratively connect the member closest to the current tree by
    a shortest path; 2-approximation of the minimum Steiner tree).

    §4.2 of the paper conjectures — citing Wei & Estrin [13] — that its
    SPF-based findings "are also applicable to the cost-minimizing multicast
    routing protocols".  This module provides the protocol needed to test
    that conjecture (see the [steiner] experiment). *)

val join : Tree.t -> int -> unit
(** Greedy join: attach via the minimum-cost connection to the current tree
    (the incremental form of Takahashi–Matsuyama; for a batch build in
    nearest-first order use {!build}). *)

val leave : Tree.t -> int -> unit

val build : Smrp_graph.Graph.t -> source:int -> members:int list -> Tree.t
(** Full heuristic: repeatedly connect the currently-closest member, which
    is the classical Takahashi–Matsuyama order (independent of the caller's
    list order). *)
