module Dijkstra = Smrp_graph.Dijkstra

type candidate = {
  merge : int;
  attach_nodes : int list;
  attach_edges : int list;
  attach_delay : float;
  total_delay : float;
  shr : int;
}

let default_d_thresh = 0.3

let candidates ?(exclude = fun _ -> false) ?failure t ~joiner =
  let g = Tree.graph t in
  let alive v = match failure with None -> true | Some f -> Failure.node_ok f v in
  let edge_alive e = match failure with None -> true | Some f -> Failure.edge_ok g f e in
  let admissible v = alive v && not (exclude v) in
  let absorb v = Tree.is_on_tree t v && admissible v in
  let result = Dijkstra.run ~node_ok:admissible ~edge_ok:edge_alive ~absorb g ~source:joiner in
  let acc = ref [] in
  for merge = Smrp_graph.Graph.node_count g - 1 downto 0 do
    if merge <> joiner && absorb merge && Dijkstra.reachable result merge then begin
      match (Dijkstra.path_nodes result merge, Dijkstra.path_edges result merge) with
      | Some nodes, Some edges ->
          let attach_delay = Option.get (Dijkstra.distance result merge) in
          let candidate =
            {
              merge;
              (* Dijkstra paths run joiner → merge; grafting wants them
                 merge → joiner. *)
              attach_nodes = List.rev nodes;
              attach_edges = List.rev edges;
              attach_delay;
              total_delay = attach_delay +. Tree.delay_to_source t merge;
              shr = Tree.shr t merge;
            }
          in
          acc := candidate :: !acc
      | _ -> ()
    end
  done;
  !acc

let spf_distance ?failure t v =
  let g = Tree.graph t in
  let node_ok v = match failure with None -> true | Some f -> Failure.node_ok f v in
  let edge_ok e = match failure with None -> true | Some f -> Failure.edge_ok g f e in
  let r = Dijkstra.run ~node_ok ~edge_ok g ~source:v in
  Dijkstra.distance r (Tree.source t)

let bound_epsilon = 1e-9

let better a b =
  a.shr < b.shr
  || (a.shr = b.shr && a.total_delay < b.total_delay -. bound_epsilon)
  || (a.shr = b.shr && abs_float (a.total_delay -. b.total_delay) <= bound_epsilon && a.merge < b.merge)

let minimum_by le = function
  | [] -> None
  | first :: rest -> Some (List.fold_left (fun best c -> if le c best then c else best) first rest)

let select ?(d_thresh = default_d_thresh) ~spf_distance cands =
  if d_thresh < 0.0 then invalid_arg "Smrp.select: d_thresh must be non-negative";
  let bound = ((1.0 +. d_thresh) *. spf_distance) +. bound_epsilon in
  let bounded = List.filter (fun c -> c.total_delay <= bound) cands in
  match bounded with
  | _ :: _ -> minimum_by better bounded
  | [] ->
      (* No candidate meets the bound: degrade to the lowest-delay
         connection, i.e. SPF behaviour. *)
      minimum_by (fun a b -> a.total_delay < b.total_delay) cands

let join ?d_thresh ?failure t nr =
  if Tree.is_member t nr then invalid_arg "Smrp.join: already a member";
  if Tree.is_on_tree t nr then Tree.add_member t nr
  else begin
    match spf_distance ?failure t nr with
    | None -> invalid_arg "Smrp.join: source unreachable"
    | Some spf_dist -> begin
        match select ?d_thresh ~spf_distance:spf_dist (candidates ?failure t ~joiner:nr) with
        | None -> invalid_arg "Smrp.join: no connection to the tree"
        | Some c ->
            Tree.graft t ~nodes:c.attach_nodes ~edges:c.attach_edges;
            Tree.add_member t nr
      end
  end

let leave t m = Tree.remove_member t m

let build ?d_thresh g ~source ~members =
  let t = Tree.create g ~source in
  List.iter (join ?d_thresh t) members;
  t
