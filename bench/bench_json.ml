(* Minimal JSON: just enough for the bench results/baseline files, because
   the toolchain ships no JSON library.  Numbers are all floats (ints print
   without a fractional part); strings are UTF-8 with the standard escapes;
   object member order is preserved. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

(* -- Parsing ------------------------------------------------------------ *)

type state = { src : string; mutable pos : int }

let error st msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg st.pos))

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let advance st = st.pos <- st.pos + 1

let rec skip_ws st =
  match peek st with
  | Some (' ' | '\t' | '\n' | '\r') ->
      advance st;
      skip_ws st
  | _ -> ()

let expect st c =
  match peek st with
  | Some x when x = c -> advance st
  | _ -> error st (Printf.sprintf "expected %C" c)

let literal st word value =
  let n = String.length word in
  if st.pos + n <= String.length st.src && String.sub st.src st.pos n = word then begin
    st.pos <- st.pos + n;
    value
  end
  else error st (Printf.sprintf "expected %s" word)

let utf8_of_code b code =
  if code < 0x80 then Buffer.add_char b (Char.chr code)
  else if code < 0x800 then begin
    Buffer.add_char b (Char.chr (0xC0 lor (code lsr 6)));
    Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
  end
  else begin
    Buffer.add_char b (Char.chr (0xE0 lor (code lsr 12)));
    Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
    Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
  end

let parse_string st =
  expect st '"';
  let b = Buffer.create 16 in
  let rec loop () =
    match peek st with
    | None -> error st "unterminated string"
    | Some '"' -> advance st
    | Some '\\' -> (
        advance st;
        match peek st with
        | None -> error st "unterminated escape"
        | Some c ->
            advance st;
            (match c with
            | '"' -> Buffer.add_char b '"'
            | '\\' -> Buffer.add_char b '\\'
            | '/' -> Buffer.add_char b '/'
            | 'n' -> Buffer.add_char b '\n'
            | 't' -> Buffer.add_char b '\t'
            | 'r' -> Buffer.add_char b '\r'
            | 'b' -> Buffer.add_char b '\b'
            | 'f' -> Buffer.add_char b '\012'
            | 'u' ->
                if st.pos + 4 > String.length st.src then error st "truncated \\u escape";
                let hex = String.sub st.src st.pos 4 in
                st.pos <- st.pos + 4;
                let code =
                  try int_of_string ("0x" ^ hex) with _ -> error st "bad \\u escape"
                in
                utf8_of_code b code
            | _ -> error st "unknown escape");
            loop ())
    | Some c ->
        advance st;
        Buffer.add_char b c;
        loop ()
  in
  loop ();
  Buffer.contents b

let parse_number st =
  let start = st.pos in
  let number_char = function
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while (match peek st with Some c when number_char c -> true | _ -> false) do
    advance st
  done;
  let s = String.sub st.src start (st.pos - start) in
  match float_of_string_opt s with
  | Some f -> Num f
  | None -> error st (Printf.sprintf "bad number %S" s)

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> error st "unexpected end of input"
  | Some '{' ->
      advance st;
      skip_ws st;
      if peek st = Some '}' then begin
        advance st;
        Obj []
      end
      else begin
        let rec members acc =
          skip_ws st;
          let key = parse_string st in
          skip_ws st;
          expect st ':';
          let v = parse_value st in
          skip_ws st;
          match peek st with
          | Some ',' ->
              advance st;
              members ((key, v) :: acc)
          | Some '}' ->
              advance st;
              List.rev ((key, v) :: acc)
          | _ -> error st "expected ',' or '}'"
        in
        Obj (members [])
      end
  | Some '[' ->
      advance st;
      skip_ws st;
      if peek st = Some ']' then begin
        advance st;
        List []
      end
      else begin
        let rec elements acc =
          let v = parse_value st in
          skip_ws st;
          match peek st with
          | Some ',' ->
              advance st;
              elements (v :: acc)
          | Some ']' ->
              advance st;
              List.rev (v :: acc)
          | _ -> error st "expected ',' or ']'"
        in
        List (elements [])
      end
  | Some '"' -> Str (parse_string st)
  | Some 't' -> literal st "true" (Bool true)
  | Some 'f' -> literal st "false" (Bool false)
  | Some 'n' -> literal st "null" Null
  | Some ('-' | '0' .. '9') -> parse_number st
  | Some c -> error st (Printf.sprintf "unexpected %C" c)

let parse s =
  let st = { src = s; pos = 0 } in
  let v = parse_value st in
  skip_ws st;
  if st.pos <> String.length s then error st "trailing content";
  v

(* -- Printing ----------------------------------------------------------- *)

let escape_into buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

let num_to_string f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%.17g" f

let to_string ?(minify = false) v =
  let buf = Buffer.create 256 in
  let pad depth = if not minify then Buffer.add_string buf (String.make (2 * depth) ' ') in
  let nl () = if not minify then Buffer.add_char buf '\n' in
  let sep () = Buffer.add_string buf (if minify then ":" else ": ") in
  let rec emit depth = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (string_of_bool b)
    | Num f -> Buffer.add_string buf (num_to_string f)
    | Str s ->
        Buffer.add_char buf '"';
        escape_into buf s;
        Buffer.add_char buf '"'
    | List [] -> Buffer.add_string buf "[]"
    | List items ->
        Buffer.add_char buf '[';
        nl ();
        List.iteri
          (fun i item ->
            if i > 0 then begin
              Buffer.add_char buf ',';
              nl ()
            end;
            pad (depth + 1);
            emit (depth + 1) item)
          items;
        nl ();
        pad depth;
        Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj members ->
        Buffer.add_char buf '{';
        nl ();
        List.iteri
          (fun i (k, item) ->
            if i > 0 then begin
              Buffer.add_char buf ',';
              nl ()
            end;
            pad (depth + 1);
            Buffer.add_char buf '"';
            escape_into buf k;
            Buffer.add_char buf '"';
            sep ();
            emit (depth + 1) item)
          members;
        nl ();
        pad depth;
        Buffer.add_char buf '}'
  in
  emit 0 v;
  Buffer.contents buf

(* -- Accessors ---------------------------------------------------------- *)

let member key = function Obj members -> List.assoc_opt key members | _ -> None

let mem_path path v =
  List.fold_left (fun acc key -> Option.bind acc (member key)) (Some v) path

let to_num = function Num f -> Some f | _ -> None

let to_str = function Str s -> Some s | _ -> None

let to_bool = function Bool b -> Some b | _ -> None

let obj_members = function Obj members -> members | _ -> []
