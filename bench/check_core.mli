(** Comparison engine of the bench regression gate (schema version 3).

    Checks a harness-produced [BENCH_RESULTS.json] against a committed
    baseline:

    - [schema_version] must equal {!schema_version} in both files;
    - the [workload] section (fixed-scale deterministic Fig. 9 sweep) must
      match the baseline {e exactly} — its rendering digest, every merged
      metrics total, and the results' attestation that the sequential and
      parallel runs agreed;
    - each [micro_ns_per_run] entry of the baseline is gated by a relative
      tolerance: the baseline's [tolerances.micro_rel.<name>] override or
      [tolerances.micro_default_rel] (default 0.5).  Only slowdowns beyond
      tolerance fail; speed-ups beyond it pass with a refresh-the-baseline
      note.  [~quick:true] multiplies micro tolerances by
      [tolerances.quick_factor] (default 4) for noisy CI runners;
    - each [micro_throughput] entry (a rate, e.g. engine events/s) is gated
      the same way with the direction reversed — a {e drop} beyond the
      [tolerances.throughput_rel.<name>] (or default) tolerance fails,
      a rise passes with a note.

    Baseline metrics absent from the results fail as [Missing]; results
    metrics absent from the baseline are reported as notes only. *)

val schema_version : int

type status = Ok | Improved | Regression | Missing | Mismatch

type row = {
  metric : string;
  baseline : string;
  current : string;
  delta : string;
  tolerance : string;
  status : status;
}

type report = { rows : row list; notes : string list; failures : int }

val check : ?quick:bool -> baseline:Bench_json.t -> results:Bench_json.t -> unit -> report

val passed : report -> bool
(** No row failed ([Improved] and [Ok] both pass). *)

val render : ?quick:bool -> report -> string
(** Human-readable per-metric diff table plus notes and a PASS/FAIL line. *)

val baseline_of_results : Bench_json.t -> Bench_json.t
(** Derive a committable baseline from a results file: the workload
    section, the micro estimates, and default tolerances. *)

val trend : ?window:int -> string list -> string
(** Longitudinal micro-estimate summary from [BENCH_HISTORY.jsonl] lines
    (oldest first, one JSON object per line; malformed or estimate-free
    lines are skipped).  Considers the last [window] runs (default 5) and
    renders, per metric of the latest run, the mean of the preceding runs,
    the latest value, and the relative delta tagged [(slower)] / [(faster)]
    outside ±5%.  Informational only — never part of the gate. *)
