(* The evaluation harness: regenerates every table/figure of the paper's §4
   plus this reproduction's extension experiments, then times the core
   operations with Bechamel.

   Scale: figures use the paper's scenario counts (100 per data point) by
   default; set SMRP_BENCH_SCENARIOS to scale down for a quick pass, and
   SMRP_BENCH_JOBS to pin the domain count of the scenario fan-out.

   Each figure is rendered twice — sequentially (jobs=1) and on the default
   domain pool — and the harness asserts the two renderings are
   byte-identical before printing, then writes both wall-clock timings and
   the micro-benchmark estimates to BENCH_RESULTS.json. *)

module Figures = Smrp_experiments.Figures
module Latency = Smrp_experiments.Latency
module Ablation = Smrp_experiments.Ablation
module Scenario = Smrp_experiments.Scenario
module Pool = Smrp_experiments.Pool
module Rng = Smrp_rng.Rng
module Graph = Smrp_graph.Graph
module Dijkstra = Smrp_graph.Dijkstra
module Waxman = Smrp_topology.Waxman
module Tree = Smrp_core.Tree
module Spf = Smrp_core.Spf
module Smrp = Smrp_core.Smrp
module Reshape = Smrp_core.Reshape
module Failure = Smrp_core.Failure
module Recovery = Smrp_core.Recovery

let scenarios =
  match Sys.getenv_opt "SMRP_BENCH_SCENARIOS" with
  | Some v -> (
      match int_of_string_opt (String.trim v) with
      | Some n -> max 2 n
      | None ->
          Printf.eprintf
            "warning: SMRP_BENCH_SCENARIOS=%S is not an integer; using the default of 100\n%!" v;
          100)
  | None -> 100

let section title = Printf.printf "\n=== %s ===\n\n%!" title

(* -- Figures: sequential vs domain-parallel --------------------------- *)

let figure_timings : (string * float * float) list ref = ref []

(* Render [f ~jobs] once sequentially and once on the default pool, check
   the outputs agree byte-for-byte, record both wall-clock times. *)
let timed_figure name f =
  let time jobs =
    let t0 = Unix.gettimeofday () in
    let out = f ~jobs in
    (out, Unix.gettimeofday () -. t0)
  in
  let seq, seq_s = time (Some 1) in
  let par, par_s = time None in
  if not (String.equal seq par) then (
    Printf.eprintf "FATAL: %s: parallel rendering differs from sequential\n%!" name;
    exit 1);
  figure_timings := (name, seq_s, par_s) :: !figure_timings;
  print_string par;
  Printf.printf "[%s: %.2fs sequential, %.2fs on %d domain(s)]\n" name seq_s par_s
    (Pool.default_jobs ())

let figures () =
  section "Figure 7 (local vs global detour, 4.3.1)";
  timed_figure "fig7" (fun ~jobs -> Figures.Fig7.render (Figures.Fig7.run ?jobs ()));
  section "Figure 8 (effect of D_thresh, 4.3.2)";
  timed_figure "fig8" (fun ~jobs -> Figures.Fig8.render (Figures.Fig8.run ?jobs ~scenarios ()));
  section "Figure 9 (effect of alpha / node degree, 4.3.3)";
  timed_figure "fig9" (fun ~jobs -> Figures.Fig9.render (Figures.Fig9.run ?jobs ~scenarios ()));
  section "Figure 10 (effect of group size, 4.3.4)";
  timed_figure "fig10" (fun ~jobs -> Figures.Fig10.render (Figures.Fig10.run ?jobs ~scenarios ()))

let traced_latency () =
  (* The same restoration-latency scenario with the observability layer
     live: a ring-buffer trace sink plus per-side metric registries.  The
     figures above run with tracing off (the no-op sink path). *)
  let module Trace = Smrp_obs.Trace in
  section "Restoration latency, traced variant (ring-buffer sink + metrics)";
  let rng = Rng.create 25 in
  let rec attempt n =
    if n = 0 then print_string "no recoverable scenario found\n"
    else begin
      let s = Int64.to_int (Rng.bits64 rng) land 0x3FFFFFFF in
      let config =
        { Latency.default with Latency.scenario = { Latency.default.Latency.scenario with Scenario.seed = s } }
      in
      let sink = Trace.ring ~capacity:262144 in
      match Latency.run ~trace_sink:sink ~with_metrics:true config with
      | Some r ->
          print_string (Latency.render [ r ]);
          Printf.printf "trace events captured (ring, capacity 262144): %d\n"
            (List.length (Trace.ring_contents sink))
      | None -> attempt (n - 1)
    end
  in
  attempt 50

let extensions () =
  section "Restoration latency (packet-level; the paper's 1 motivation, [25])";
  print_string (Latency.render (Latency.run_many ~runs:10 Latency.default));
  traced_latency ();
  section "Ablation: tree reshaping (3.2.3)";
  print_string (Ablation.Reshaping.render (Ablation.Reshaping.run ~scenarios:(max 10 (scenarios / 2)) ()));
  section "Ablation: query scheme (3.3.1)";
  print_string (Ablation.Query.render (Ablation.Query.run ~scenarios:(max 10 (scenarios / 2)) ()));
  section "Ablation: hierarchical recovery (3.3.3)";
  print_string (Ablation.Hierarchical.render (Ablation.Hierarchical.run ~scenarios:(max 5 (scenarios / 5)) ()));
  section "Cost-minimising baseline (4.2 conjecture, Wei & Estrin [13])";
  print_string
    (Smrp_experiments.Cost_min.render (Smrp_experiments.Cost_min.run ~scenarios:(max 10 (scenarios / 2)) ()));
  section "Protocol overhead (3.3.2)";
  print_string (Smrp_experiments.Overhead.render (Smrp_experiments.Overhead.run ()));
  section "Topology families (Zegura et al. [7])";
  print_string
    (Smrp_experiments.Families.render
       (Smrp_experiments.Families.run ~scenarios:(max 10 (scenarios / 2)) ()));
  section "Related work: redundant trees (Medard et al. [16], 2)";
  let feas = Smrp_experiments.Related_work.feasibility ~samples:scenarios () in
  let cmp = Smrp_experiments.Related_work.compare_schemes ~scenarios:(max 10 (scenarios / 2)) () in
  print_string (Smrp_experiments.Related_work.render feas cmp)

(* -- Bechamel micro-benchmarks ---------------------------------------- *)

let micro () =
  let open Bechamel in
  section "Microbenchmarks (Bechamel, monotonic clock)";
  (* A fixed reference scenario shared by the pure-computation benches. *)
  let s = Scenario.run Scenario.default in
  let graph = s.Scenario.graph in
  let source = s.Scenario.source in
  let members = s.Scenario.members in
  let victim = List.hd members in
  let worst = Option.get (Failure.worst_case_for_member s.Scenario.smrp_tree victim) in
  (* Steady-state operation benches reuse one workspace, as the protocol
     stack does; the build benches exercise the default private-workspace
     path end to end. *)
  let ws = Dijkstra.workspace ~capacity:(Graph.node_count graph) () in
  let tests =
    [
      Test.make ~name:"waxman_generate_n100"
        (Staged.stage (fun () ->
             let rng = Rng.create 99 in
             ignore (Waxman.generate rng ~n:100 ~alpha:0.2 ~beta:0.2)));
      Test.make ~name:"dijkstra_n100"
        (Staged.stage (fun () -> ignore (Dijkstra.run ~workspace:ws graph ~source)));
      Test.make ~name:"spf_build_30_members"
        (Staged.stage (fun () -> ignore (Spf.build ~ws graph ~source ~members)));
      Test.make ~name:"smrp_build_30_members"
        (Staged.stage (fun () -> ignore (Smrp.build ~d_thresh:0.3 ~ws graph ~source ~members)));
      Test.make ~name:"smrp_candidates"
        (Staged.stage (fun () ->
             ignore (Smrp.candidates ~ws s.Scenario.smrp_tree ~joiner:victim)));
      Test.make ~name:"local_detour"
        (Staged.stage (fun () ->
             ignore (Recovery.local_detour ~ws s.Scenario.smrp_tree worst ~member:victim)));
      Test.make ~name:"global_detour"
        (Staged.stage (fun () ->
             ignore (Recovery.global_detour ~ws s.Scenario.smrp_tree worst ~member:victim)));
      Test.make ~name:"reshape_stabilize"
        (Staged.stage (fun () ->
             let t = Smrp.build ~d_thresh:0.3 ~ws graph ~source ~members in
             ignore (Reshape.stabilize ~d_thresh:0.3 ~ws t)));
    ]
  in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) () in
  let instance = Toolkit.Instance.monotonic_clock in
  let ols = Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |] in
  let results =
    List.map
      (fun test ->
        let tbl = Benchmark.all cfg [ instance ] (Test.make_grouped ~name:"g" [ test ]) in
        Analyze.all ols instance tbl)
      tests
  in
  let rows = ref [] in
  List.iter
    (Hashtbl.iter (fun name o ->
         match Analyze.OLS.estimates o with
         | Some (ns :: _) -> rows := (name, ns) :: !rows
         | _ -> ()))
    results;
  let rows =
    List.sort compare
      (List.map
         (fun (name, ns) ->
           match String.index_opt name '/' with
           | Some i -> (String.sub name (i + 1) (String.length name - i - 1), ns)
           | None -> (name, ns))
         !rows)
  in
  List.iter
    (fun (name, ns) -> Printf.printf "%-28s %12.1f ns/run  (%8.3f ms)\n" name ns (ns /. 1e6))
    rows;
  rows

(* -- BENCH_RESULTS.json ------------------------------------------------ *)

(* Minimal JSON writer: everything we emit is an object of numbers or of
   nested objects, plus one string field. *)
let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (function
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let write_results ~micro_rows =
  let path = "BENCH_RESULTS.json" in
  let oc = open_out path in
  let out fmt = Printf.fprintf oc fmt in
  out "{\n";
  out "  \"harness\": \"%s\",\n" (json_escape "smrp-bench");
  out "  \"scenarios_per_point\": %d,\n" scenarios;
  out "  \"default_jobs\": %d,\n" (Pool.default_jobs ());
  out "  \"micro_ns_per_run\": {\n";
  let n = List.length micro_rows in
  List.iteri
    (fun i (name, ns) ->
      out "    \"%s\": %.1f%s\n" (json_escape name) ns (if i = n - 1 then "" else ","))
    micro_rows;
  out "  },\n";
  out "  \"figures_wall_clock_s\": {\n";
  let timings = List.rev !figure_timings in
  let n = List.length timings in
  List.iteri
    (fun i (name, seq_s, par_s) ->
      out "    \"%s\": { \"sequential\": %.3f, \"parallel\": %.3f }%s\n" (json_escape name)
        seq_s par_s
        (if i = n - 1 then "" else ","))
    timings;
  out "  }\n";
  out "}\n";
  close_out oc;
  Printf.printf "\nwrote %s\n" path

let () =
  Printf.printf "SMRP reproduction benchmark harness (scenarios per point: %d; default jobs: %d)\n"
    scenarios (Pool.default_jobs ());
  figures ();
  extensions ();
  let micro_rows = micro () in
  write_results ~micro_rows;
  print_newline ()
