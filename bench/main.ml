(* The evaluation harness: regenerates every table/figure of the paper's §4
   plus this reproduction's extension experiments, then times the core
   operations with Bechamel.

   Scale: figures use the paper's scenario counts (100 per data point) by
   default; set SMRP_BENCH_SCENARIOS to scale down for a quick pass, and
   SMRP_BENCH_JOBS to pin the domain count of the scenario fan-out.

   Each figure is rendered twice — sequentially (jobs=1) and on the default
   domain pool — and the harness asserts the two renderings are
   byte-identical before printing, then writes both wall-clock timings and
   the micro-benchmark estimates to BENCH_RESULTS.json (schema version 2).

   A fixed-scale deterministic workload section (a small seeded Fig. 9
   sweep, independent of SMRP_BENCH_SCENARIOS) anchors the regression gate:
   its rendering digest and merged metrics totals are exact across machines,
   so bench/check.ml compares them against bench/BASELINE.json with zero
   tolerance, while the machine-dependent micro numbers get relative
   tolerances.  The harness also appends one line per run to
   BENCH_HISTORY.jsonl and writes the workload's stitched multi-domain
   Chrome trace to BENCH_TRACE.jsonl. *)

module Figures = Smrp_experiments.Figures
module Latency = Smrp_experiments.Latency
module Ablation = Smrp_experiments.Ablation
module Scenario = Smrp_experiments.Scenario
module Pool = Smrp_experiments.Pool
module Rng = Smrp_rng.Rng
module Graph = Smrp_graph.Graph
module Dijkstra = Smrp_graph.Dijkstra
module Dspf = Smrp_graph.Dspf
module Waxman = Smrp_topology.Waxman
module Scale = Smrp_topology.Scale
module Tree = Smrp_core.Tree
module Protect = Smrp_core.Protect
module Spf = Smrp_core.Spf
module Smrp = Smrp_core.Smrp
module Reshape = Smrp_core.Reshape
module Failure = Smrp_core.Failure
module Recovery = Smrp_core.Recovery
module Engine = Smrp_sim.Engine
module Metrics = Smrp_obs.Metrics
module Trace = Smrp_obs.Trace
module Profile = Smrp_obs.Profile
module J = Bench_support.Bench_json

let scenarios =
  match Sys.getenv_opt "SMRP_BENCH_SCENARIOS" with
  | Some v -> (
      match int_of_string_opt (String.trim v) with
      | Some n -> max 2 n
      | None ->
          Printf.eprintf
            "warning: SMRP_BENCH_SCENARIOS=%S is not an integer; using the default of 100\n%!" v;
          100)
  | None -> 100

let section title = Printf.printf "\n=== %s ===\n\n%!" title

(* -- Figures: sequential vs domain-parallel --------------------------- *)

let figure_timings : (string * float * float) list ref = ref []

(* Render [f ~jobs] once sequentially and once on the default pool, check
   the outputs agree byte-for-byte, record both wall-clock times. *)
let timed_figure name f =
  let time jobs =
    let t0 = Unix.gettimeofday () in
    let out = f ~jobs in
    (out, Unix.gettimeofday () -. t0)
  in
  let seq, seq_s = time (Some 1) in
  let par, par_s = time None in
  if not (String.equal seq par) then (
    Printf.eprintf "FATAL: %s: parallel rendering differs from sequential\n%!" name;
    exit 1);
  figure_timings := (name, seq_s, par_s) :: !figure_timings;
  print_string par;
  Printf.printf "[%s: %.2fs sequential, %.2fs on %d domain(s)]\n" name seq_s par_s
    (Pool.default_jobs ())

let figures () =
  section "Figure 7 (local vs global detour, 4.3.1)";
  timed_figure "fig7" (fun ~jobs -> Figures.Fig7.render (Figures.Fig7.run ?jobs ()));
  section "Figure 8 (effect of D_thresh, 4.3.2)";
  timed_figure "fig8" (fun ~jobs -> Figures.Fig8.render (Figures.Fig8.run ?jobs ~scenarios ()));
  section "Figure 9 (effect of alpha / node degree, 4.3.3)";
  timed_figure "fig9" (fun ~jobs -> Figures.Fig9.render (Figures.Fig9.run ?jobs ~scenarios ()));
  section "Figure 10 (effect of group size, 4.3.4)";
  timed_figure "fig10" (fun ~jobs -> Figures.Fig10.render (Figures.Fig10.run ?jobs ~scenarios ()))

(* -- Regression-gate workload ------------------------------------------ *)

(* A fixed-scale seeded Fig. 9 sweep (4 alpha values x 4 scenarios, 480
   member measurements), independent of SMRP_BENCH_SCENARIOS: small enough
   for CI, deterministic enough that its rendering digest and merged
   metrics totals are exact across machines (the default [`Unit] link
   metric makes every observed value an integer, so even the histogram sum
   is schedule-independent).  The parallel leg runs with the whole
   instrumentation stack live — sharded metrics, sharded trace rings,
   pool/GC profiling — and must agree with the uninstrumented sequential
   leg exactly; this is the property the regression gate pins. *)

type workload_result = {
  digest : string;
  wl_metrics : (string * float) list;
  seq_par_identical : bool;
}

let workload () =
  section "Regression-gate workload (fixed scale, deterministic)";
  let run ?jobs ~metrics ?profile ?trace () =
    Pool.with_instrumentation ?profile ?trace (fun () ->
        Figures.Fig9.render
          (Figures.Fig9.run ?jobs ~metrics ~seed:9
             ~values:[ 0.15; 0.2; 0.25; 0.3 ]
             ~scenarios:4 ~degree_ten_row:false ()))
  in
  let m_seq = Metrics.create () in
  let seq = run ~jobs:1 ~metrics:m_seq () in
  let m_par = Metrics.create () in
  let profile = Profile.create () in
  let sink = Trace.sharded_ring ~capacity:65536 in
  (* Four explicit domains, not the pool default: the gate must exercise
     multi-domain merge and stitching even on single-core runners. *)
  let par = run ~jobs:4 ~metrics:m_par ~profile ~trace:(Trace.create sink) () in
  let renders_equal = String.equal seq par in
  let snapshots_equal = Metrics.snapshot m_seq = Metrics.snapshot m_par in
  if not (renders_equal && snapshots_equal) then begin
    Printf.eprintf
      "FATAL: workload: parallel run differs from sequential (renderings equal: %b, merged \
       snapshots equal: %b)\n\
       %!"
      renders_equal snapshots_equal;
    exit 1
  end;
  print_string par;
  Printf.printf "merged metrics (%d shard(s)):\n%s\n" (Metrics.shard_count m_par)
    (Metrics.render m_par);
  Printf.printf "pool/GC profile:\n%s\n" (Profile.render profile);
  let events = Trace.stitched_contents sink in
  let oc = open_out "BENCH_TRACE.jsonl" in
  List.iter
    (fun e ->
      output_string oc (Trace.to_json e);
      output_char oc '\n')
    events;
  close_out oc;
  Printf.printf "wrote BENCH_TRACE.jsonl (%d stitched events)\n" (List.length events);
  let wl_metrics =
    List.concat_map
      (fun (name, v) ->
        match v with
        | Metrics.Counter_value n -> [ (name, float_of_int n) ]
        | Metrics.Histogram_value { count; sum; _ } ->
            [ (name ^ ".count", float_of_int count); (name ^ ".sum", sum) ]
        | Metrics.Sketch_value s ->
            [ (name ^ ".count", float_of_int s.Smrp_obs.Sketch.s_count); (name ^ ".sum", s.Smrp_obs.Sketch.s_sum) ]
        | Metrics.Gauge_value _ | Metrics.Series_value _ -> [])
      (Metrics.snapshot m_par)
  in
  { digest = Digest.to_hex (Digest.string par); wl_metrics; seq_par_identical = true }

(* -- Run report / dashboard -------------------------------------------- *)

(* The report campaign at CI scale, run once sequentially and once on four
   explicit domains.  Gates (both fatal): the two reports must serialize to
   byte-identical JSON, and parsing that JSON back must reproduce it
   exactly.  The HTML dashboard and the JSON land next to the other bench
   artefacts for CI upload. *)
let report () =
  section "Run report (comparison dashboard; sequential vs 4-domain identity)";
  let module Report = Smrp_obs.Report in
  let module Dashboard = Smrp_experiments.Dashboard in
  let seq = Dashboard.run ~jobs:1 Dashboard.quick in
  let par = Dashboard.run ~jobs:4 Dashboard.quick in
  let seq_s = Report.to_string seq in
  let par_s = Report.to_string par in
  if not (String.equal seq_s par_s) then begin
    Printf.eprintf "FATAL: report: 4-domain report JSON differs from sequential\n%!";
    exit 1
  end;
  (match Report.of_string par_s with
  | round when String.equal (Report.to_string round) par_s -> ()
  | _ ->
      Printf.eprintf "FATAL: report: JSON round-trip is not the identity\n%!";
      exit 1
  | exception exn ->
      Printf.eprintf "FATAL: report: emitted JSON does not parse back: %s\n%!"
        (Printexc.to_string exn);
      exit 1);
  print_string (Report.render_ascii par);
  let write path contents =
    let oc = open_out path in
    output_string oc contents;
    close_out oc
  in
  write "BENCH_REPORT.json" (par_s ^ "\n");
  write "BENCH_REPORT.html" (Report.render_html par);
  Printf.printf
    "\nwrote BENCH_REPORT.json and BENCH_REPORT.html (sequential/4-domain JSON identical, \
     round-trip exact)\n"

let traced_latency () =
  (* The same restoration-latency scenario with the observability layer
     live: a ring-buffer trace sink plus per-side metric registries.  The
     figures above run with tracing off (the no-op sink path). *)
  let module Trace = Smrp_obs.Trace in
  section "Restoration latency, traced variant (ring-buffer sink + metrics)";
  let rng = Rng.create 25 in
  let rec attempt n =
    if n = 0 then print_string "no recoverable scenario found\n"
    else begin
      let s = Int64.to_int (Rng.bits64 rng) land 0x3FFFFFFF in
      let config =
        { Latency.default with Latency.scenario = { Latency.default.Latency.scenario with Scenario.seed = s } }
      in
      let sink = Trace.ring ~capacity:262144 in
      match Latency.run ~trace_sink:sink ~with_metrics:true config with
      | Some r ->
          print_string (Latency.render [ r ]);
          Printf.printf "trace events captured (ring, capacity 262144): %d\n"
            (List.length (Trace.ring_contents sink))
      | None -> attempt (n - 1)
    end
  in
  attempt 50

let extensions () =
  section "Restoration latency (packet-level; the paper's 1 motivation, [25])";
  print_string (Latency.render (Latency.run_many ~runs:10 Latency.default));
  traced_latency ();
  section "Ablation: tree reshaping (3.2.3)";
  print_string (Ablation.Reshaping.render (Ablation.Reshaping.run ~scenarios:(max 10 (scenarios / 2)) ()));
  section "Ablation: query scheme (3.3.1)";
  print_string (Ablation.Query.render (Ablation.Query.run ~scenarios:(max 10 (scenarios / 2)) ()));
  section "Ablation: hierarchical recovery (3.3.3)";
  print_string (Ablation.Hierarchical.render (Ablation.Hierarchical.run ~scenarios:(max 5 (scenarios / 5)) ()));
  section "Cost-minimising baseline (4.2 conjecture, Wei & Estrin [13])";
  print_string
    (Smrp_experiments.Cost_min.render (Smrp_experiments.Cost_min.run ~scenarios:(max 10 (scenarios / 2)) ()));
  section "Protocol overhead (3.3.2)";
  print_string (Smrp_experiments.Overhead.render (Smrp_experiments.Overhead.run ()));
  section "Topology families (Zegura et al. [7])";
  print_string
    (Smrp_experiments.Families.render
       (Smrp_experiments.Families.run ~scenarios:(max 10 (scenarios / 2)) ()));
  section "Related work: redundant trees (Medard et al. [16], 2)";
  let feas = Smrp_experiments.Related_work.feasibility ~samples:scenarios () in
  let cmp = Smrp_experiments.Related_work.compare_schemes ~scenarios:(max 10 (scenarios / 2)) () in
  print_string (Smrp_experiments.Related_work.render feas cmp)

(* -- Bechamel micro-benchmarks ---------------------------------------- *)

let micro () =
  let open Bechamel in
  section "Microbenchmarks (Bechamel, monotonic clock)";
  (* A fixed reference scenario shared by the pure-computation benches. *)
  let s = Scenario.run Scenario.default in
  let graph = s.Scenario.graph in
  let source = s.Scenario.source in
  let members = s.Scenario.members in
  let victim = List.hd members in
  let worst = Option.get (Failure.worst_case_for_member s.Scenario.smrp_tree victim) in
  (* Steady-state operation benches reuse one workspace, as the protocol
     stack does; the build benches exercise the default private-workspace
     path end to end. *)
  let ws = Dijkstra.workspace ~capacity:(Graph.node_count graph) () in
  (* Recovery-at-scale fixture: a 10^4-node streaming Waxman with the
     incremental SPF and the protection tables warm.  The three benches on
     it share one workload so the numbers compare directly: the full
     Dijkstra recompute, the incremental fail/restore repair, and the O(1)
     table read that answers a recovery query. *)
  let srng = Rng.create 4242 in
  let scale_n = 10_000 in
  let sgraph =
    let alpha, beta = Scale.degree_params ~n:scale_n ~target_degree:8.0 in
    (Scale.waxman srng ~n:scale_n ~alpha ~beta).Scale.graph
  in
  let sws = Dijkstra.workspace ~capacity:(Graph.node_count sgraph) () in
  let sp = Dspf.create sgraph ~source:0 in
  let fail_eid =
    let rec pick tries =
      let v = 1 + Rng.int srng (scale_n - 1) in
      let e = Dspf.parent_edge sp v in
      if e >= 0 || tries = 0 then e else pick (tries - 1)
    in
    pick 1000
  in
  let protect_eids, protect_tables =
    let smembers =
      List.sort_uniq compare (List.init 30 (fun _ -> 1 + Rng.int srng (scale_n - 1)))
    in
    let ptree = Smrp.build ~d_thresh:0.3 ~ws:sws sgraph ~source:0 ~members:smembers in
    let pp = Protect.create ptree in
    let rec take k = function e :: rest when k > 0 -> e :: take (k - 1) rest | _ -> [] in
    let eids = Array.of_list (take 64 (Tree.tree_edges ptree)) in
    Array.iter (fun e -> ignore (Protect.link_lookup pp e)) eids;
    (eids, pp)
  in
  let tests =
    [
      Test.make ~name:"waxman_generate_n100"
        (Staged.stage (fun () ->
             let rng = Rng.create 99 in
             ignore (Waxman.generate rng ~n:100 ~alpha:0.2 ~beta:0.2)));
      Test.make ~name:"dijkstra_n100"
        (Staged.stage (fun () -> ignore (Dijkstra.run ~workspace:ws graph ~source)));
      Test.make ~name:"spf_build_30_members"
        (Staged.stage (fun () -> ignore (Spf.build ~ws graph ~source ~members)));
      Test.make ~name:"smrp_build_30_members"
        (Staged.stage (fun () -> ignore (Smrp.build ~d_thresh:0.3 ~ws graph ~source ~members)));
      Test.make ~name:"smrp_candidates"
        (Staged.stage (fun () ->
             ignore (Smrp.candidates ~ws s.Scenario.smrp_tree ~joiner:victim)));
      Test.make ~name:"local_detour"
        (Staged.stage (fun () ->
             ignore (Recovery.local_detour ~ws s.Scenario.smrp_tree worst ~member:victim)));
      Test.make ~name:"global_detour"
        (Staged.stage (fun () ->
             ignore (Recovery.global_detour ~ws s.Scenario.smrp_tree worst ~member:victim)));
      Test.make ~name:"reshape_stabilize"
        (let base = Smrp.build ~d_thresh:0.3 ~ws graph ~source ~members in
         Staged.stage (fun () ->
             ignore (Reshape.stabilize ~d_thresh:0.3 ~ws (Tree.copy base))));
      Test.make ~name:"dijkstra_full_recover"
        (* What recovery costs without the incremental layer: recompute the
           whole source-rooted SPF on the 10^4-node graph. *)
        (Staged.stage (fun () -> ignore (Dijkstra.run ~workspace:sws sgraph ~source:0)));
      Test.make ~name:"dspf_fail_recover"
        (* One persistent-failure repair round: drop a tree edge, re-attach
           the orphaned subtree, then restore — two incremental updates. *)
        (Staged.stage (fun () ->
             Dspf.fail_edge sp fail_eid;
             Dspf.restore_edge sp fail_eid));
      Test.make ~name:"protect_lookup_1024"
        (* 1024 recovery-distance reads from the warm protection table;
           reported as throughput (recovery_lookups_per_sec). *)
        (Staged.stage (fun () ->
             let m = Array.length protect_eids in
             let acc = ref 0.0 in
             for i = 0 to 1023 do
               acc := !acc +. Protect.link_rd protect_tables protect_eids.(i mod m)
             done;
             ignore (Sys.opaque_identity !acc)));
      Test.make ~name:"engine_1024_events"
        (* One engine reused across runs, as a long simulation would: each
           run schedules a spread of int-coded events and drains them. *)
        (let eng = Engine.create () in
         let code = Engine.register eng (fun _ _ -> ()) in
         Staged.stage (fun () ->
             for k = 0 to 1023 do
               ignore
                 (Engine.schedule_code eng
                    ~delay:(0.001 *. float_of_int (k land 63))
                    ~code ~a:k ~b:0)
             done;
             Engine.run eng));
      Test.make ~name:"engine_1024_events_flight_off"
        (* Same workload with the flight recorder disabled: the pair gates
           recorder overhead (flight_recorder_overhead in check_core). *)
        (let eng = Engine.create ~flight:Smrp_obs.Flight.null () in
         let code = Engine.register eng (fun _ _ -> ()) in
         Staged.stage (fun () ->
             for k = 0 to 1023 do
               ignore
                 (Engine.schedule_code eng
                    ~delay:(0.001 *. float_of_int (k land 63))
                    ~code ~a:k ~b:0)
             done;
             Engine.run eng));
    ]
  in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) () in
  let instance = Toolkit.Instance.monotonic_clock in
  let ols = Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |] in
  let results =
    List.map
      (fun test ->
        let tbl = Benchmark.all cfg [ instance ] (Test.make_grouped ~name:"g" [ test ]) in
        Analyze.all ols instance tbl)
      tests
  in
  let rows = ref [] in
  List.iter
    (Hashtbl.iter (fun name o ->
         match Analyze.OLS.estimates o with
         | Some (ns :: _) -> rows := (name, ns) :: !rows
         | _ -> ()))
    results;
  let rows =
    List.sort compare
      (List.map
         (fun (name, ns) ->
           match String.index_opt name '/' with
           | Some i -> (String.sub name (i + 1) (String.length name - i - 1), ns)
           | None -> (name, ns))
         !rows)
  in
  (* The batch benches report as throughput: 1024 operations per run, so
     ops/s = 1024e9 / ns-per-run.  They live in their own results section
     because their regression direction is reversed (lower is worse). *)
  let micro_rows, throughput_rows =
    List.fold_left
      (fun (m, t) (name, ns) ->
        if String.equal name "engine_1024_events" then
          (m, ("engine_events_per_sec", 1024e9 /. ns) :: t)
        else if String.equal name "engine_1024_events_flight_off" then
          (m, ("engine_events_per_sec_flight_off", 1024e9 /. ns) :: t)
        else if String.equal name "protect_lookup_1024" then
          (m, ("recovery_lookups_per_sec", 1024e9 /. ns) :: t)
        else ((name, ns) :: m, t))
      ([], []) (List.rev rows)
  in
  (* The 10^5-node generation is too slow for the Bechamel quota; one
     hand-timed draw is stable enough for the relative gate (it gets a
     wider per-name tolerance in BASELINE.json). *)
  let waxman_100k_ns =
    let rng = Rng.create 4243 in
    let alpha, beta = Scale.degree_params ~n:100_000 ~target_degree:8.0 in
    let t0 = Unix.gettimeofday () in
    ignore (Scale.waxman rng ~n:100_000 ~alpha ~beta);
    (Unix.gettimeofday () -. t0) *. 1e9
  in
  (* Campaign wall clock: a fixed mini 2x2x2x2 matrix (smaller than the CLI's
     --quick preset so the gate stays cheap), hand-timed like waxman_100k and
     gated with the same widened relative tolerance. *)
  let campaign_quick_ns =
    let module Campaign = Smrp_experiments.Campaign in
    let spec =
      match
        Campaign.spec_of_matrix ~base:Campaign.quick
          "topo=waxman:60,ts; churn=flash,heavy; fail=indep,adversarial; proto=spf,smrp:0.3; \
           instances=1; seed=4244"
      with
      | Ok spec -> spec
      | Error msg -> failwith ("campaign_quick bench spec: " ^ msg)
    in
    let t0 = Unix.gettimeofday () in
    ignore (Campaign.run ~jobs:1 spec : Smrp_obs.Report.t);
    (Unix.gettimeofday () -. t0) *. 1e9
  in
  let micro_rows =
    List.sort compare
      (("waxman_100k", waxman_100k_ns)
      :: ("campaign_quick", campaign_quick_ns)
      :: micro_rows)
  in
  List.iter
    (fun (name, ns) -> Printf.printf "%-28s %12.1f ns/run  (%8.3f ms)\n" name ns (ns /. 1e6))
    micro_rows;
  List.iter
    (fun (name, per_s) -> Printf.printf "%-28s %12.3g events/s\n" name per_s)
    throughput_rows;
  (micro_rows, throughput_rows)

(* -- BENCH_RESULTS.json / BENCH_HISTORY.jsonl -------------------------- *)

let obj_of_rows rows = J.Obj (List.map (fun (n, v) -> (n, J.Num v)) rows)

let write_results ~workload:w ~micro_rows ~throughput_rows =
  let results =
    J.Obj
      [
        ("schema_version", J.Num (float_of_int Bench_support.Check_core.schema_version));
        ("harness", J.Str "smrp-bench");
        ("scenarios_per_point", J.Num (float_of_int scenarios));
        ("default_jobs", J.Num (float_of_int (Pool.default_jobs ())));
        ( "workload",
          J.Obj
            [
              ("fig9_digest", J.Str w.digest);
              ("seq_par_identical", J.Bool w.seq_par_identical);
              ("fig9_metrics", obj_of_rows w.wl_metrics);
            ] );
        ("micro_ns_per_run", obj_of_rows micro_rows);
        ("micro_throughput", obj_of_rows throughput_rows);
        ( "figures_wall_clock_s",
          J.Obj
            (List.map
               (fun (name, seq_s, par_s) ->
                 (name, J.Obj [ ("sequential", J.Num seq_s); ("parallel", J.Num par_s) ]))
               (List.rev !figure_timings)) );
      ]
  in
  let path = "BENCH_RESULTS.json" in
  let oc = open_out path in
  output_string oc (J.to_string results);
  output_char oc '\n';
  close_out oc;
  Printf.printf "\nwrote %s\n" path;
  (* One minified line per harness run, for longitudinal tracking across
     commits (the file is append-only and not part of the gate). *)
  let history =
    J.Obj
      [
        ("ts", J.Num (Unix.gettimeofday ()));
        ("schema_version", J.Num (float_of_int Bench_support.Check_core.schema_version));
        ("fig9_digest", J.Str w.digest);
        ("micro_ns_per_run", obj_of_rows micro_rows);
        ("micro_throughput", obj_of_rows throughput_rows);
      ]
  in
  let oc = open_out_gen [ Open_append; Open_creat; Open_wronly ] 0o644 "BENCH_HISTORY.jsonl" in
  output_string oc (J.to_string ~minify:true history);
  output_char oc '\n';
  close_out oc;
  Printf.printf "appended BENCH_HISTORY.jsonl\n"

let () =
  Printf.printf "SMRP reproduction benchmark harness (scenarios per point: %d; default jobs: %d)\n"
    scenarios (Pool.default_jobs ());
  figures ();
  extensions ();
  report ();
  let w = workload () in
  let micro_rows, throughput_rows = micro () in
  write_results ~workload:w ~micro_rows ~throughput_rows;
  print_newline ()
