(* The bench regression gate: compare a BENCH_RESULTS.json produced by the
   harness against a committed baseline.

   Two classes of check, reflecting what can be exact across machines:

   - The {e workload} section is deterministic by construction (a
     fixed-scale seeded Fig. 9 sweep): its rendering digest and merged
     metrics totals must match the baseline exactly, and the results file
     must attest that the sequential and parallel runs agreed.  Any drift
     here is a correctness change, not noise.
   - The {e micro} section is machine- and load-dependent: each ns/run
     estimate is gated by a relative tolerance (per-metric override or the
     baseline default), and only slowdowns beyond tolerance fail.
     Speed-ups beyond tolerance pass but are flagged as a hint to refresh
     the baseline.  [--quick] multiplies tolerances by the baseline's
     [quick_factor] for noisy CI runners — still enough to catch
     order-of-magnitude regressions.
   - The {e micro_throughput} section carries the same relative-tolerance
     gate with the direction reversed: values are rates (e.g. engine
     events/s), so a {e drop} beyond tolerance is the regression. *)

module J = Bench_json

let schema_version = 3

type status = Ok | Improved | Regression | Missing | Mismatch

type row = {
  metric : string;
  baseline : string;
  current : string;
  delta : string;
  tolerance : string;
  status : status;
}

type report = { rows : row list; notes : string list; failures : int }

let passed r = r.failures = 0

let is_failure = function Regression | Missing | Mismatch -> true | Ok | Improved -> false

let status_label = function
  | Ok -> "ok"
  | Improved -> "improved"
  | Regression -> "REGRESSION"
  | Missing -> "MISSING"
  | Mismatch -> "MISMATCH"

let row ?(baseline = "-") ?(current = "-") ?(delta = "-") ?(tolerance = "-") metric status =
  { metric; baseline; current; delta; tolerance; status }

let num_str f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%.4g" f

(* -- Individual checks -------------------------------------------------- *)

let check_schema ~baseline ~results =
  let get j = Option.bind (J.member "schema_version" j) J.to_num in
  match (get baseline, get results) with
  | Some b, Some r when b = r && int_of_float b = schema_version ->
      [ row "schema_version" Ok ~baseline:(num_str b) ~current:(num_str r) ]
  | b, r ->
      let show = function Some f -> num_str f | None -> "absent" in
      [ row "schema_version" Mismatch ~baseline:(show b) ~current:(show r) ]

let check_workload ~baseline ~results =
  let digest j = Option.bind (J.mem_path [ "workload"; "fig9_digest" ] j) J.to_str in
  let digest_row =
    match (digest baseline, digest results) with
    | Some b, Some r when String.equal b r ->
        [ row "workload.fig9_digest" Ok ~baseline:b ~current:r ]
    | Some b, Some r -> [ row "workload.fig9_digest" Mismatch ~baseline:b ~current:r ]
    | Some b, None -> [ row "workload.fig9_digest" Missing ~baseline:b ~current:"absent" ]
    | None, _ -> []
  in
  let identical_row =
    match Option.bind (J.mem_path [ "workload"; "seq_par_identical" ] results) J.to_bool with
    | Some true -> [ row "workload.seq_par_identical" Ok ~current:"true" ]
    | Some false -> [ row "workload.seq_par_identical" Mismatch ~baseline:"true" ~current:"false" ]
    | None -> [ row "workload.seq_par_identical" Missing ~baseline:"true" ~current:"absent" ]
  in
  let metric_rows =
    let base_metrics =
      match J.mem_path [ "workload"; "fig9_metrics" ] baseline with
      | Some m -> J.obj_members m
      | None -> []
    in
    List.map
      (fun (name, bv) ->
        let metric = "workload." ^ name in
        match
          ( J.to_num bv,
            Option.bind (J.mem_path [ "workload"; "fig9_metrics"; name ] results) J.to_num )
        with
        | Some b, Some r when b = r -> row metric Ok ~baseline:(num_str b) ~current:(num_str r)
        | Some b, Some r -> row metric Mismatch ~baseline:(num_str b) ~current:(num_str r)
        | Some b, None -> row metric Missing ~baseline:(num_str b) ~current:"absent"
        | None, _ -> row metric Mismatch ~baseline:"non-numeric" ~current:"-")
      base_metrics
  in
  digest_row @ identical_row @ metric_rows

let check_micro ~quick ~baseline ~results =
  let base_micro =
    match J.member "micro_ns_per_run" baseline with Some m -> J.obj_members m | None -> []
  in
  let default_tol =
    match Option.bind (J.mem_path [ "tolerances"; "micro_default_rel" ] baseline) J.to_num with
    | Some t -> t
    | None -> 0.5
  in
  let quick_factor =
    if not quick then 1.0
    else
      match Option.bind (J.mem_path [ "tolerances"; "quick_factor" ] baseline) J.to_num with
      | Some f -> f
      | None -> 4.0
  in
  let tol_for name =
    let per_metric =
      Option.bind (J.mem_path [ "tolerances"; "micro_rel"; name ] baseline) J.to_num
    in
    quick_factor *. Option.value per_metric ~default:default_tol
  in
  let rows =
    List.filter_map
      (fun (name, bv) ->
        let metric = "micro." ^ name in
        match
          (J.to_num bv, Option.bind (J.mem_path [ "micro_ns_per_run"; name ] results) J.to_num)
        with
        | Some b, Some r when b > 0.0 ->
            let tol = tol_for name in
            let delta = (r -. b) /. b in
            let status =
              if delta > tol then Regression else if delta < -.tol then Improved else Ok
            in
            Some
              (row metric status ~baseline:(Printf.sprintf "%.1f ns" b)
                 ~current:(Printf.sprintf "%.1f ns" r)
                 ~delta:(Printf.sprintf "%+.1f%%" (100.0 *. delta))
                 ~tolerance:(Printf.sprintf "±%.0f%%" (100.0 *. tol)))
        | Some b, None ->
            Some (row metric Missing ~baseline:(Printf.sprintf "%.1f ns" b) ~current:"absent")
        | _ -> None)
      base_micro
  in
  let extra =
    match J.member "micro_ns_per_run" results with
    | Some m ->
        List.filter_map
          (fun (name, _) ->
            if List.mem_assoc name base_micro then None
            else Some (Printf.sprintf "micro.%s present in results but not in the baseline" name))
          (J.obj_members m)
    | None -> []
  in
  (rows, extra)

let check_throughput ~quick ~baseline ~results =
  let base = match J.member "micro_throughput" baseline with Some m -> J.obj_members m | None -> [] in
  let default_tol =
    match Option.bind (J.mem_path [ "tolerances"; "micro_default_rel" ] baseline) J.to_num with
    | Some t -> t
    | None -> 0.5
  in
  let quick_factor =
    if not quick then 1.0
    else
      match Option.bind (J.mem_path [ "tolerances"; "quick_factor" ] baseline) J.to_num with
      | Some f -> f
      | None -> 4.0
  in
  let tol_for name =
    let per_metric =
      Option.bind (J.mem_path [ "tolerances"; "throughput_rel"; name ] baseline) J.to_num
    in
    quick_factor *. Option.value per_metric ~default:default_tol
  in
  let rate f = Printf.sprintf "%.3g/s" f in
  List.filter_map
    (fun (name, bv) ->
      let metric = "throughput." ^ name in
      match
        (J.to_num bv, Option.bind (J.mem_path [ "micro_throughput"; name ] results) J.to_num)
      with
      | Some b, Some r when b > 0.0 ->
          let tol = tol_for name in
          (* Reversed direction: positive delta means the rate dropped. *)
          let delta = (b -. r) /. b in
          let status =
            if delta > tol then Regression else if delta < -.tol then Improved else Ok
          in
          Some
            (row metric status ~baseline:(rate b) ~current:(rate r)
               ~delta:(Printf.sprintf "%+.1f%%" (100.0 *. ((r -. b) /. b)))
               ~tolerance:(Printf.sprintf "±%.0f%%" (100.0 *. tol)))
      | Some b, None -> Some (row metric Missing ~baseline:(rate b) ~current:"absent")
      | _ -> None)
    base

(* Flight-recorder overhead: recorder-on event throughput must stay within
   tolerance of recorder-off, compared within the same results file (a
   within-run ratio, so machine speed cancels out).  The tolerance comes
   from the baseline ([tolerances.throughput_rel.flight_recorder_overhead],
   default 10%).  Skipped when either side is absent from the results —
   e.g. pre-v4 results files. *)
let check_flight_overhead ~quick ~baseline ~results =
  let metric name = Option.bind (J.mem_path [ "micro_throughput"; name ] results) J.to_num in
  match (metric "engine_events_per_sec", metric "engine_events_per_sec_flight_off") with
  | Some on, Some off when off > 0.0 ->
      let tol =
        match
          Option.bind
            (J.mem_path [ "tolerances"; "throughput_rel"; "flight_recorder_overhead" ] baseline)
            J.to_num
        with
        | Some t -> t
        | None -> 0.1
      in
      let quick_factor =
        if not quick then 1.0
        else
          match Option.bind (J.mem_path [ "tolerances"; "quick_factor" ] baseline) J.to_num with
          | Some f -> f
          | None -> 4.0
      in
      let tol = quick_factor *. tol in
      let overhead = (off -. on) /. off in
      let status = if overhead > tol then Regression else Ok in
      [
        row "throughput.flight_recorder_overhead" status
          ~baseline:(Printf.sprintf "%.3g/s off" off)
          ~current:(Printf.sprintf "%.3g/s on" on)
          ~delta:(Printf.sprintf "%+.1f%%" (-100.0 *. overhead))
          ~tolerance:(Printf.sprintf "-%.0f%%" (100.0 *. tol));
      ]
  | _ -> []

let check ?(quick = false) ~baseline ~results () =
  let micro_rows, micro_notes = check_micro ~quick ~baseline ~results in
  let rows =
    check_schema ~baseline ~results @ check_workload ~baseline ~results @ micro_rows
    @ check_throughput ~quick ~baseline ~results
    @ check_flight_overhead ~quick ~baseline ~results
  in
  let notes =
    micro_notes
    @ List.filter_map
        (fun r ->
          if r.status = Improved then
            Some
              (Printf.sprintf
                 "%s improved beyond tolerance — consider refreshing the baseline" r.metric)
          else None)
        rows
  in
  { rows; notes; failures = List.length (List.filter (fun r -> is_failure r.status) rows) }

(* -- Rendering ---------------------------------------------------------- *)

let render ?(quick = false) r =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "Bench regression gate%s: %d check(s), %d failure(s)\n\n"
       (if quick then " (quick mode)" else "")
       (List.length r.rows) r.failures);
  let widths =
    List.fold_left
      (fun (a, b, c, d, e) row ->
        ( max a (String.length row.metric),
          max b (String.length row.baseline),
          max c (String.length row.current),
          max d (String.length row.delta),
          max e (String.length row.tolerance) ))
      (String.length "metric", 8, 8, 5, 3)
      r.rows
  in
  let wm, wb, wc, wd, wt = widths in
  Buffer.add_string buf
    (Printf.sprintf "%-*s  %*s  %*s  %*s  %*s  %s\n" wm "metric" wb "baseline" wc "current" wd
       "delta" wt "tol" "status");
  List.iter
    (fun row ->
      Buffer.add_string buf
        (Printf.sprintf "%-*s  %*s  %*s  %*s  %*s  %s\n" wm row.metric wb row.baseline wc
           row.current wd row.delta wt row.tolerance (status_label row.status)))
    r.rows;
  if r.notes <> [] then begin
    Buffer.add_char buf '\n';
    List.iter (fun n -> Buffer.add_string buf (Printf.sprintf "note: %s\n" n)) r.notes
  end;
  Buffer.add_string buf (if passed r then "\nPASS\n" else "\nFAIL\n");
  Buffer.contents buf

(* -- History trends ------------------------------------------------------ *)

(* Longitudinal summary over BENCH_HISTORY.jsonl: the latest run's micro
   estimates against the mean of the preceding runs in the window.  Purely
   informational — trends never gate. *)

let last_n n l =
  let len = List.length l in
  if len <= n then l else List.filteri (fun i _ -> i >= len - n) l

let trend ?(window = 5) lines =
  let entries =
    List.filter_map
      (fun line ->
        match J.parse line with
        | v ->
            (* History lines from older runs can predate a whole section —
               e.g. entries written before schema v3 have no
               [micro_throughput]/[engine_events_per_sec].  Any line with at
               least one estimate section stays in the window; a metric the
               line lacks simply contributes nothing to that metric's mean,
               instead of the line being skipped wholesale. *)
            if J.member "micro_ns_per_run" v = None && J.member "micro_throughput" v = None then
              None
            else Some v
        | exception J.Parse_error _ -> None)
      (List.filter (fun l -> String.trim l <> "") lines)
  in
  let entries = last_n window entries in
  match List.rev entries with
  | [] | [ _ ] ->
      Printf.sprintf "Micro trends: need at least 2 history runs with estimates (have %d)\n"
        (List.length entries)
  | latest :: prior_rev ->
      let prior = List.rev prior_rev in
      let section key e = match J.member key e with Some m -> J.obj_members m | None -> [] in
      let buf = Buffer.create 512 in
      Buffer.add_string buf
        (Printf.sprintf "Micro trends: latest vs mean of %d preceding run(s)\n\n" (List.length prior));
      Buffer.add_string buf
        (Printf.sprintf "%-28s  %14s  %14s  %8s\n" "metric" "window mean" "latest" "delta");
      (* [higher_better] flips the arrow: throughput rising is an
         improvement where ns-per-run rising is a regression. *)
      let render_section ~key ~fmt ~higher_better =
        List.iter
          (fun (name, v) ->
            match J.to_num v with
            | None -> ()
            | Some current ->
                let history =
                  List.filter_map
                    (fun e -> Option.bind (J.mem_path [ key; name ] e) J.to_num)
                    prior
                in
                let line =
                  match history with
                  | [] -> Printf.sprintf "%-28s  %14s  %14s  %8s\n" name "-" (fmt current) "new"
                  | _ ->
                      let mean =
                        List.fold_left ( +. ) 0.0 history /. float_of_int (List.length history)
                      in
                      let delta = if mean > 0.0 then (current -. mean) /. mean else 0.0 in
                      let arrow =
                        let worse = if higher_better then delta < -0.05 else delta > 0.05 in
                        let better = if higher_better then delta > 0.05 else delta < -0.05 in
                        if worse then "(slower)" else if better then "(faster)" else ""
                      in
                      Printf.sprintf "%-28s  %14s  %14s  %+7.1f%% %s\n" name (fmt mean)
                        (fmt current) (100.0 *. delta) arrow
                in
                Buffer.add_string buf line)
          (section key latest)
      in
      render_section ~key:"micro_ns_per_run"
        ~fmt:(fun v -> Printf.sprintf "%.1f ns" v)
        ~higher_better:false;
      render_section ~key:"micro_throughput"
        ~fmt:(fun v -> Printf.sprintf "%.3g /s" v)
        ~higher_better:true;
      Buffer.contents buf

(* -- Baseline derivation ------------------------------------------------ *)

let default_tolerances =
  J.Obj
    [
      ("micro_default_rel", J.Num 0.5);
      ("quick_factor", J.Num 4.0);
      ("micro_rel", J.Obj []);
      ("throughput_rel", J.Obj []);
    ]

let baseline_of_results results =
  let copy path = Option.map (fun v -> (List.nth path (List.length path - 1), v)) (J.mem_path path results) in
  let workload =
    List.filter_map copy [ [ "workload"; "fig9_digest" ]; [ "workload"; "fig9_metrics" ] ]
  in
  J.Obj
    (List.filter_map Fun.id
       [
         Some ("schema_version", J.Num (float_of_int schema_version));
         Some ("workload", J.Obj workload);
         Option.map (fun v -> ("micro_ns_per_run", v)) (J.member "micro_ns_per_run" results);
         Option.map (fun v -> ("micro_throughput", v)) (J.member "micro_throughput" results);
         Some ("tolerances", default_tolerances);
       ])
