(* CLI wrapper of the bench regression gate (see Check_core): compares a
   BENCH_RESULTS.json against a committed baseline and exits non-zero on
   breach, printing the per-metric diff.  [--write-baseline] derives a
   fresh committable baseline from a results file instead. *)

module Bench_json = Bench_support.Bench_json
module Check_core = Bench_support.Check_core

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let load what path =
  match Bench_json.parse (read_file path) with
  | v -> v
  | exception Sys_error msg ->
      Printf.eprintf "error: cannot read %s file: %s\n%!" what msg;
      exit 2
  | exception Bench_json.Parse_error msg ->
      Printf.eprintf "error: %s file %s: %s\n%!" what path msg;
      exit 2

(* History lines for the trend summary; a missing or unreadable file is not
   an error (fresh checkouts have no history). *)
let read_history path =
  match open_in path with
  | exception Sys_error _ -> None
  | ic ->
      let rec lines acc =
        match input_line ic with
        | line -> lines (line :: acc)
        | exception End_of_file -> List.rev acc
      in
      Fun.protect ~finally:(fun () -> close_in_noerr ic) (fun () -> Some (lines []))

let () =
  let results = ref "BENCH_RESULTS.json" in
  let baseline = ref "bench/BASELINE.json" in
  let quick = ref false in
  let write_baseline = ref "" in
  let history = ref "BENCH_HISTORY.jsonl" in
  let trend_window = ref 5 in
  let spec =
    [
      ("--results", Arg.Set_string results, "FILE results file (default BENCH_RESULTS.json)");
      ("--baseline", Arg.Set_string baseline, "FILE baseline file (default bench/BASELINE.json)");
      ( "--quick",
        Arg.Set quick,
        " scale micro tolerances by the baseline's quick_factor (noisy CI runners)" );
      ( "--write-baseline",
        Arg.Set_string write_baseline,
        "FILE derive a baseline from --results and write it to FILE, then exit" );
      ( "--history",
        Arg.Set_string history,
        "FILE history file for the trend summary (default BENCH_HISTORY.jsonl; absent file: no \
         summary)" );
      ( "--trend-window",
        Arg.Set_int trend_window,
        "N history runs the trend summary considers (default 5)" );
    ]
  in
  let usage =
    "check [--results FILE] [--baseline FILE] [--quick] [--write-baseline FILE] [--history FILE] \
     [--trend-window N]"
  in
  Arg.parse spec (fun a -> raise (Arg.Bad (Printf.sprintf "unexpected argument %S" a))) usage;
  if !write_baseline <> "" then begin
    let b = Check_core.baseline_of_results (load "results" !results) in
    let oc = open_out !write_baseline in
    output_string oc (Bench_json.to_string b);
    output_char oc '\n';
    close_out oc;
    Printf.printf "wrote %s\n" !write_baseline
  end
  else begin
    let report =
      Check_core.check ~quick:!quick ~baseline:(load "baseline" !baseline)
        ~results:(load "results" !results) ()
    in
    print_string (Check_core.render ~quick:!quick report);
    (* The trend summary rides along after the gate and never affects the
       exit code. *)
    Option.iter
      (fun lines ->
        print_newline ();
        print_string (Check_core.trend ~window:!trend_window lines))
      (read_history !history);
    exit (if Check_core.passed report then 0 else 1)
  end
