(** Hand-rolled JSON for the bench results and baseline files (the
    toolchain ships no JSON library).  Covers the full JSON grammar; every
    number is a float, and the printer round-trips the values the bench
    harness emits ([%.0f] for integral magnitudes below 1e15, [%.17g]
    otherwise). *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list  (** Member order preserved. *)

exception Parse_error of string  (** Message includes the byte offset. *)

val parse : string -> t
(** Raises {!Parse_error} on malformed input or trailing content. *)

val to_string : ?minify:bool -> t -> string
(** Two-space-indented by default; [~minify:true] yields one line (for
    JSONL appends).  No trailing newline. *)

val member : string -> t -> t option
(** Object member lookup; [None] on non-objects. *)

val mem_path : string list -> t -> t option
(** Nested lookup: [mem_path ["a"; "b"] v] is [v.a.b]. *)

val to_num : t -> float option

val to_str : t -> string option

val to_bool : t -> bool option

val obj_members : t -> (string * t) list
(** [[]] on non-objects. *)
