(* smrp: command-line driver for the SMRP reproduction.

   Subcommands regenerate the paper's figures at configurable scale and run
   one-off scenarios for exploration. *)

open Cmdliner
module Figures = Smrp_experiments.Figures
module Scenario = Smrp_experiments.Scenario
module Latency = Smrp_experiments.Latency
module Ablation = Smrp_experiments.Ablation
module Related_work = Smrp_experiments.Related_work
module Scaling = Smrp_experiments.Scaling
module Dot = Smrp_core.Dot
module Flight = Smrp_obs.Flight
module Causal = Smrp_obs.Causal

(* Serialize the global flight-recorder ring (last-N records per domain)
   next to whatever artifact the failing command produced. *)
let write_flight_dump path =
  Flight.write_dump path ~dropped:(Flight.dropped Flight.global) (Flight.snapshot Flight.global)

(* Crash dumps for uncaught exceptions: whatever the recorder holds at the
   crash site is worth more than the backtrace alone. [exit] does not raise,
   so deliberate non-zero exits pass through untouched. *)
let with_crash_dump path f =
  try f ()
  with exn ->
    let bt = Printexc.get_raw_backtrace () in
    (try
       write_flight_dump path;
       Printf.eprintf "crash: flight dump written to %s (inspect with: smrp inspect %s)\n%!"
         path path
     with _ -> ());
    Printexc.raise_with_backtrace exn bt

let seed_arg default =
  Arg.(value & opt int default & info [ "seed" ] ~docv:"SEED" ~doc:"PRNG seed.")

let scenarios_arg =
  Arg.(
    value & opt int 100
    & info [ "scenarios" ] ~docv:"N" ~doc:"Scenarios per data point (paper: 100).")

let csv_arg = Arg.(value & flag & info [ "csv" ] ~doc:"Emit machine-readable CSV instead of a table.")

let fig7_cmd =
  let run seed topologies csv =
    let r = Figures.Fig7.run ~seed ~topologies () in
    print_string (if csv then Figures.Fig7.csv r else Figures.Fig7.render r)
  in
  let topologies =
    Arg.(value & opt int 5 & info [ "topologies" ] ~docv:"N" ~doc:"Random topologies (paper: 5).")
  in
  Cmd.v
    (Cmd.info "fig7" ~doc:"Local vs global detour scatter (§4.3.1).")
    Term.(const run $ seed_arg 7 $ topologies $ csv_arg)

let fig8_cmd =
  let run seed scenarios csv =
    let rows = Figures.Fig8.run ~seed ~scenarios () in
    print_string (if csv then Figures.Fig8.csv rows else Figures.Fig8.render rows)
  in
  Cmd.v
    (Cmd.info "fig8" ~doc:"Effect of D_thresh (§4.3.2).")
    Term.(const run $ seed_arg 8 $ scenarios_arg $ csv_arg)

let fig9_cmd =
  let run seed scenarios degree10 csv =
    let rows = Figures.Fig9.run ~seed ~scenarios ~degree_ten_row:degree10 () in
    print_string (if csv then Figures.Fig9.csv rows else Figures.Fig9.render rows)
  in
  let degree10 =
    Arg.(value & flag & info [ "degree-ten" ] ~doc:"Include the §4.3.3 degree-10 row (slower).")
  in
  Cmd.v
    (Cmd.info "fig9" ~doc:"Effect of alpha / node degree (§4.3.3).")
    Term.(const run $ seed_arg 9 $ scenarios_arg $ degree10 $ csv_arg)

let fig10_cmd =
  let run seed scenarios csv =
    let rows = Figures.Fig10.run ~seed ~scenarios () in
    print_string (if csv then Figures.Fig10.csv rows else Figures.Fig10.render rows)
  in
  Cmd.v
    (Cmd.info "fig10" ~doc:"Effect of group size (§4.3.4).")
    Term.(const run $ seed_arg 10 $ scenarios_arg $ csv_arg)

let all_cmd =
  let run seed scenarios =
    print_string (Figures.Fig7.render (Figures.Fig7.run ~seed ()));
    print_newline ();
    print_string (Figures.Fig8.render (Figures.Fig8.run ~seed ~scenarios ()));
    print_newline ();
    print_string (Figures.Fig9.render (Figures.Fig9.run ~seed ~scenarios ()));
    print_newline ();
    print_string (Figures.Fig10.render (Figures.Fig10.run ~seed ~scenarios ()))
  in
  Cmd.v
    (Cmd.info "all" ~doc:"Regenerate every figure.")
    Term.(const run $ seed_arg 42 $ scenarios_arg)

let scenario_cmd =
  let run seed n group alpha d_thresh =
    let config =
      { Scenario.default with Scenario.seed; n; group_size = group; alpha; d_thresh }
    in
    let s = Scenario.run config in
    let a = Scenario.aggregates s in
    Printf.printf
      "scenario seed=%d: N=%d N_G=%d alpha=%.2f D_thresh=%.2f\n\
       average degree        %.2f\n\
       tree cost             SPF %.3f   SMRP %.3f  (%+.1f%%)\n\
       RD reduction (local)  %.1f%%\n\
       delay penalty         %.1f%%\n\
       local vs global       %.1f%%\n"
      seed n group alpha d_thresh s.Scenario.average_degree s.Scenario.cost_spf
      s.Scenario.cost_smrp
      (100.0 *. a.Scenario.cost_relative)
      (100.0 *. a.Scenario.rd_relative)
      (100.0 *. a.Scenario.delay_relative)
      (100.0 *. a.Scenario.local_vs_global)
  in
  let n = Arg.(value & opt int 100 & info [ "n" ] ~docv:"N" ~doc:"Network size.") in
  let group = Arg.(value & opt int 30 & info [ "group" ] ~docv:"N_G" ~doc:"Group size.") in
  let alpha = Arg.(value & opt float 0.2 & info [ "alpha" ] ~docv:"A" ~doc:"Waxman alpha.") in
  let d_thresh =
    Arg.(value & opt float 0.3 & info [ "d-thresh" ] ~docv:"D" ~doc:"SMRP delay bound.")
  in
  Cmd.v
    (Cmd.info "scenario" ~doc:"Run and summarise one scenario.")
    Term.(const run $ seed_arg 1 $ n $ group $ alpha $ d_thresh)

let latency_cmd =
  let module Trace = Smrp_obs.Trace in
  (* One observed scenario: retry derived seeds (as [run_many] does) until a
     draw has a recoverable victim. *)
  let run_one ?trace_sink ~with_metrics seed =
    let rng = Smrp_rng.Rng.create seed in
    let rec attempt n =
      if n = 0 then None
      else begin
        let s = Int64.to_int (Smrp_rng.Rng.bits64 rng) land 0x3FFFFFFF in
        let config =
          { Latency.default with Latency.scenario = { Latency.default.Latency.scenario with Scenario.seed = s } }
        in
        match Latency.run ?trace_sink ~with_metrics config with
        | Some r -> Some r
        | None -> attempt (n - 1)
      end
    in
    attempt 50
  in
  let run seed runs trace metrics openmetrics =
    if trace = None && not metrics && not openmetrics then
      print_string (Latency.render (Latency.run_many ~seed ~runs Latency.default))
    else begin
      let open_trace file =
        try open_out file
        with Sys_error msg ->
          Printf.eprintf "latency: cannot open trace file: %s\n%!" msg;
          exit 1
      in
      let oc = Option.map open_trace trace in
      let trace_sink = Option.map Trace.channel oc in
      (match run_one ?trace_sink ~with_metrics:metrics seed with
      | Some r ->
          if openmetrics then begin
            let emit label (side : Latency.side_result) =
              Printf.printf "# side: %s\n%s" label
                (Causal.openmetrics_of_episodes side.Latency.episodes)
            in
            emit "smrp" r.Latency.smrp;
            emit "pim" r.Latency.pim;
            print_string "# EOF\n"
          end
          else print_string (Latency.render [ r ])
      | None -> prerr_endline "latency: no recoverable scenario found for this seed");
      Option.iter close_out oc;
      Option.iter
        (Printf.printf
           "trace written to %s (Chrome trace_event JSONL; load in Perfetto or chrome://tracing)\n")
        trace
    end
  in
  let runs = Arg.(value & opt int 10 & info [ "runs" ] ~docv:"N" ~doc:"Topologies to simulate.") in
  let trace =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:
            "Trace one scenario (both protocol sides) to $(docv) as Chrome trace_event JSONL, \
             keyed on the simulation clock.")
  in
  let metrics =
    Arg.(
      value & flag
      & info [ "metrics" ]
          ~doc:"Run one scenario and dump engine/net/protocol metric registries per side.")
  in
  let openmetrics =
    Arg.(
      value & flag
      & info [ "openmetrics" ]
          ~doc:
            "Run one scenario and emit its recovery episodes (both protocol sides) as an \
             OpenMetrics-style text exposition.")
  in
  Cmd.v
    (Cmd.info "latency" ~doc:"Packet-level restoration latency, SMRP vs PIM/OSPF.")
    Term.(const run $ seed_arg 25 $ runs $ trace $ metrics $ openmetrics)

let profile_cmd =
  let module Metrics = Smrp_obs.Metrics in
  let module Trace = Smrp_obs.Trace in
  let module Profile = Smrp_obs.Profile in
  let module Pool = Smrp_experiments.Pool in
  let module Dijkstra = Smrp_graph.Dijkstra in
  let module Reshape = Smrp_core.Reshape in
  let run seed scenarios jobs trace_file =
    let prof = Profile.create () in
    let metrics = Metrics.create () in
    let sink = Trace.sharded_ring ~capacity:262144 in
    let tracer = Trace.create sink in
    let rows =
      Profile.phase prof "fig9.sweep" (fun () ->
          Pool.with_instrumentation ~profile:prof ~trace:tracer (fun () ->
              Figures.Fig9.run ?jobs ~metrics ~seed ~scenarios ~degree_ten_row:false ()))
    in
    let rendered = Profile.phase prof "fig9.render" (fun () -> Figures.Fig9.render rows) in
    (* Condition-II reshape sweeps on a few freshly built trees: the
       per-round counters and wall-time sketches land in the shared
       registry, the per-round/per-sweep spans in the trace. *)
    let reshape_stats =
      Profile.phase prof "reshape.stabilize" (fun () ->
          List.map
            (fun s ->
              let sc = Scenario.run { Scenario.default with Scenario.seed = s } in
              let tree = sc.Scenario.smrp_tree in
              let ws =
                Dijkstra.workspace
                  ~capacity:(Smrp_graph.Graph.node_count sc.Scenario.graph)
                  ()
              in
              if Trace.enabled tracer then Dijkstra.set_trace ws tracer;
              Reshape.stabilize ~ws ~metrics tree)
            (List.init 5 (fun i -> seed + 900 + i)))
    in
    print_string rendered;
    Printf.printf "\n-- reshape stabilize (%d sweeps) --\nrounds %d, switches %d\n"
      (List.length reshape_stats)
      (List.fold_left (fun a (s : Reshape.stats) -> a + s.Reshape.rounds) 0 reshape_stats)
      (List.fold_left (fun a (s : Reshape.stats) -> a + s.Reshape.switches) 0 reshape_stats);
    Printf.printf "\n-- metrics (merged across %d shard(s)) --\n%s"
      (Metrics.shard_count metrics) (Metrics.render metrics);
    Printf.printf "\n-- phases and pool workers --\n%s" (Profile.render prof);
    match trace_file with
    | None -> ()
    | Some file ->
        let oc =
          try open_out file
          with Sys_error msg ->
            Printf.eprintf "profile: cannot open trace file: %s\n%!" msg;
            exit 1
        in
        let events = Trace.stitched_contents sink in
        List.iter
          (fun e ->
            output_string oc (Trace.to_json e);
            output_char oc '\n')
          events;
        close_out oc;
        Printf.printf
          "\ntrace written to %s (%d events, Chrome trace_event JSONL; tids are domain ids; \
           load in Perfetto or chrome://tracing)\n"
          file (List.length events)
  in
  let jobs =
    Arg.(
      value
      & opt (some int) None
      & info [ "jobs" ] ~docv:"N"
          ~doc:"Worker domains (default: SMRP_BENCH_JOBS or the recommended domain count).")
  in
  let trace =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:
            "Write the run's stitched multi-domain trace (pool task/worker spans) to $(docv) \
             as Chrome trace_event JSONL.")
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:
         "Profile a Fig. 9 sweep: merged sharded metrics, per-domain pool utilisation, per-phase \
          GC deltas, and optionally the stitched multi-domain trace.")
    Term.(const run $ seed_arg 9 $ scenarios_arg $ jobs $ trace)

let report_cmd =
  let module Report = Smrp_obs.Report in
  let module Dashboard = Smrp_experiments.Dashboard in
  let run seed scenarios quick jobs html json =
    with_crash_dump "smrp-crash.flight" @@ fun () ->
    let base = if quick then Dashboard.quick else Dashboard.default in
    let scenarios = Option.value scenarios ~default:base.Dashboard.scenarios in
    let report = Dashboard.run ?jobs { base with Dashboard.seed; scenarios } in
    print_string (Report.render_ascii report);
    let write file contents =
      let oc =
        try open_out file
        with Sys_error msg ->
          Printf.eprintf "report: cannot open %s: %s\n%!" file msg;
          exit 1
      in
      output_string oc contents;
      close_out oc
    in
    write html (Report.render_html report);
    Printf.printf "\nHTML dashboard written to %s\n" html;
    Option.iter
      (fun file ->
        write file (Report.to_string report);
        Printf.printf "report JSON written to %s\n" file)
      json
  in
  let scenarios =
    Arg.(
      value
      & opt (some int) None
      & info [ "scenarios" ] ~docv:"N" ~doc:"Random topologies per variant (default 20; 4 with --quick).")
  in
  let quick =
    Arg.(value & flag & info [ "quick" ] ~doc:"Scaled-down campaign (CI/smoke scale).")
  in
  let jobs =
    Arg.(
      value
      & opt (some int) None
      & info [ "jobs" ] ~docv:"N"
          ~doc:"Worker domains (default: SMRP_BENCH_JOBS or the recommended domain count).")
  in
  let html =
    Arg.(
      value & opt string "smrp-report.html"
      & info [ "html" ] ~docv:"FILE" ~doc:"Where to write the HTML comparison dashboard.")
  in
  let json =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE" ~doc:"Also write the structured report as JSON.")
  in
  Cmd.v
    (Cmd.info "report"
       ~doc:
         "Run the comparison campaign (SPF baseline vs SMRP D_thresh sweep vs query scheme, plus \
          the packet-level latency simulation) and emit an ASCII summary and a self-contained \
          HTML dashboard.")
    Term.(const run $ seed_arg 42 $ scenarios $ quick $ jobs $ html $ json)

let campaign_cmd =
  let module Report = Smrp_obs.Report in
  let module Campaign = Smrp_experiments.Campaign in
  let run seed matrix quick jobs json html summary_only =
    with_crash_dump "smrp-crash.flight" @@ fun () ->
    let base = if quick then Campaign.quick else Campaign.default in
    let spec =
      match matrix with
      | None -> base
      | Some m -> (
          match Campaign.spec_of_matrix ~base m with
          | Ok spec -> spec
          | Error msg ->
              Printf.eprintf "campaign: bad --matrix: %s\n" msg;
              exit 2)
    in
    let spec = match seed with None -> spec | Some seed -> { spec with Campaign.seed } in
    let report = Campaign.run ?jobs spec in
    if not summary_only then print_string (Report.render_ascii report);
    print_newline ();
    print_string (Campaign.render_summary report);
    Printf.printf "\ndigest %s\n" (Campaign.digest report);
    let write file contents =
      let oc =
        try open_out file
        with Sys_error msg ->
          Printf.eprintf "campaign: cannot open %s: %s\n%!" file msg;
          exit 1
      in
      output_string oc contents;
      close_out oc
    in
    Option.iter
      (fun file ->
        write file (Report.to_string report);
        Printf.printf "campaign JSON written to %s\n" file)
      json;
    Option.iter
      (fun file ->
        write file (Report.render_html report);
        Printf.printf "HTML dashboard written to %s\n" file)
      html
  in
  let seed =
    Arg.(
      value
      & opt (some int) None
      & info [ "seed" ] ~docv:"SEED" ~doc:"Campaign seed (default: the preset's).")
  in
  let matrix =
    Arg.(
      value
      & opt (some string) None
      & info [ "matrix" ] ~docv:"SPEC"
          ~doc:
            "Matrix description, overriding the preset axis-wise: \
             $(b,axis=value,value;...) with axes $(b,topo) (waxman[:N], ts, locality[:N], \
             scale:N), $(b,churn) (static[:K], flash, diurnal, heavy), $(b,fail) (indep[:K], \
             correlated, regional, cascade, adversarial[:B]), $(b,proto) (spf, smrp[:D], \
             protected[:D], query[:D]), plus $(b,instances=N), $(b,horizon=T), $(b,seed=S) and \
             $(b,figs=7,8,9,10) for paper-figure cells.")
  in
  let quick =
    Arg.(
      value & flag
      & info [ "quick" ] ~doc:"The pinned CI matrix (3x3x2x3, 2 instances per cell).")
  in
  let jobs =
    Arg.(
      value
      & opt (some int) None
      & info [ "jobs" ] ~docv:"N"
          ~doc:
            "Worker domains (default: SMRP_BENCH_JOBS or the recommended domain count). The \
             report is byte-identical whatever the count.")
  in
  let json =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE" ~doc:"Write the structured report as JSON.")
  in
  let html =
    Arg.(
      value
      & opt (some string) None
      & info [ "html" ] ~docv:"FILE" ~doc:"Write the self-contained HTML comparison dashboard.")
  in
  let summary_only =
    Arg.(
      value & flag
      & info [ "summary" ] ~doc:"Print only the per-cell summary table, not the full report.")
  in
  Cmd.v
    (Cmd.info "campaign"
       ~doc:
         "Run a declarative scenario matrix — topology family x churn model x failure model x \
          protocol variant — every cell independently seeded, fanned out across domains, and \
          collected into one comparison report. Paper figures 7-10 are expressible as matrix \
          cells via figs=.")
    Term.(const run $ seed $ matrix $ quick $ jobs $ json $ html $ summary_only)

let fuzz_cmd =
  let module Fuzz = Smrp_check.Fuzz in
  let module Case = Smrp_check.Case in
  let module Exec = Smrp_check.Exec in
  let replay_one ~bug ~engine_diff ~protection file =
    match Case.load file with
    | Error msg ->
        Printf.eprintf "fuzz: cannot load %s: %s\n" file msg;
        exit 2
    | Ok case -> (
        Format.printf "%a@." Case.pp case;
        Flight.reset Flight.global;
        match Fuzz.replay ~bug ~engine_diff ~protection case with
        | Exec.Pass s ->
            Printf.printf "replay: all invariants held (%d event(s) applied, %d skipped)\n"
              s.Exec.applied s.Exec.skipped;
            exit 0
        | Exec.Fail v ->
            Format.printf "replay: VIOLATION %a@." Exec.pp_violation v;
            let dump = file ^ ".flight" in
            write_flight_dump dump;
            Printf.printf "replay: flight dump written to %s (inspect with: smrp inspect %s)\n"
              dump dump;
            exit 1)
  in
  let campaign ~seed ~runs ~bug ~engine_diff ~protection ~max_nodes ~out =
    let params = { Smrp_check.Gen.default with Smrp_check.Gen.max_nodes } in
    let report =
      Fuzz.run { Fuzz.default with Fuzz.seed; runs; bug; params; engine_diff; protection }
    in
    print_string (Fuzz.render report);
    match report.Fuzz.failures with
    | [] -> exit 0
    | f :: _ ->
        Case.save out f.Fuzz.shrunk;
        Printf.printf "fuzz: shrunk repro written to %s (replay with: smrp fuzz --replay %s%s)\n"
          out out
          (match bug with
          | Exec.No_bug -> ""
          | b -> Printf.sprintf " --inject %s" (Exec.bug_to_string b));
        (* Crash dump: re-run the shrunk case on an empty ring so the dump
           holds exactly the failing episode, not the whole campaign's (and
           the shrinker's) record soup. *)
        let dump = out ^ ".flight" in
        Flight.reset Flight.global;
        ignore (Fuzz.replay ~bug ~engine_diff ~protection f.Fuzz.shrunk : Smrp_check.Exec.outcome);
        write_flight_dump dump;
        Printf.printf "fuzz: flight dump written to %s (inspect with: smrp inspect %s)\n" dump
          dump;
        exit 1
  in
  let run seed runs inject engine_diff protection replay max_nodes out =
    let bug =
      match Exec.bug_of_string inject with
      | Ok b -> b
      | Error msg ->
          Printf.eprintf "fuzz: %s\n" msg;
          exit 2
    in
    if engine_diff && bug <> Exec.No_bug then begin
      Printf.eprintf "fuzz: --engine-diff replays the real stack; --inject does not apply\n";
      exit 2
    end;
    if engine_diff && protection then begin
      Printf.eprintf "fuzz: --engine-diff bypasses the tree-level session; --protection does not apply\n";
      exit 2
    end;
    with_crash_dump "smrp-crash.flight" (fun () ->
        match replay with
        | Some file -> replay_one ~bug ~engine_diff ~protection file
        | None -> campaign ~seed ~runs ~bug ~engine_diff ~protection ~max_nodes ~out)
  in
  let runs =
    Arg.(value & opt int 500 & info [ "runs" ] ~docv:"N" ~doc:"Random cases to execute.")
  in
  let inject =
    Arg.(
      value & opt string "none"
      & info [ "inject" ] ~docv:"BUG"
          ~doc:
            "Deliberately inject a protocol bug (oracle self-test): $(b,skip-shr) drops an \
             N_R/SHR bookkeeping update on every join; $(b,drop-member) makes reshaping \
             silently unsubscribe a member; $(b,none) fuzzes the real stack.")
  in
  let engine_diff =
    Arg.(
      value & flag
      & info [ "engine-diff" ]
          ~doc:
            "Engine-differential mode: replay each case as a packet-level simulation on both \
             the timer-wheel and the reference-heap event queues and fail unless the engine \
             fingerprint, frame accounting and member reports are byte-identical.")
  in
  let protection =
    Arg.(
      value & flag
      & info [ "protection" ]
          ~doc:
            "Arm the precomputed-protection layer in every fuzzed session: single link/node \
             failures are repaired by table lookup and audited against a from-scratch branch \
             detour search, on top of the usual oracle battery.")
  in
  let replay =
    Arg.(
      value
      & opt (some string) None
      & info [ "replay" ] ~docv:"FILE" ~doc:"Replay one repro file instead of fuzzing.")
  in
  let max_nodes =
    Arg.(
      value
      & opt int Smrp_check.Gen.default.Smrp_check.Gen.max_nodes
      & info [ "max-nodes" ] ~docv:"N" ~doc:"Topology size ceiling for generated cases.")
  in
  let out =
    Arg.(
      value
      & opt string "smrp-fuzz-repro.json"
      & info [ "out" ] ~docv:"FILE" ~doc:"Where to write the shrunk repro on failure.")
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "Fault-injection fuzzing: random topologies and event schedules driven through \
          Session/Recovery/Reshape with invariant oracles after every event; failures shrink \
          to replayable repro files.")
    Term.(
      const run $ seed_arg 42 $ runs $ inject $ engine_diff $ protection $ replay $ max_nodes
      $ out)

let inspect_cmd =
  let run file codes since episode openmetrics limit =
    let records, dropped =
      match Flight.read_dump file with
      | r -> r
      | exception Flight.Bad_dump msg ->
          Printf.eprintf "inspect: %s\n" msg;
          exit 2
      | exception Sys_error msg ->
          Printf.eprintf "inspect: %s\n" msg;
          exit 2
    in
    let analysis = Causal.of_records ~dropped records in
    if openmetrics then print_string (Causal.to_openmetrics analysis)
    else begin
      print_string (Causal.render analysis);
      let code_ids =
        List.map
          (fun name ->
            match Flight.code_of_name name with
            | Some c -> c
            | None ->
                Printf.eprintf "inspect: unknown --code %S\n" name;
                exit 2)
          codes
      in
      (* b packs (src lsl 31) lor dst for net records. *)
      let src b = b lsr 31 and dst b = b land ((1 lsl 31) - 1) in
      let is_net c = c >= Flight.net_send && c <= Flight.net_drop_loss in
      let touches_member m (r : Flight.decoded) =
        if is_net r.Flight.d_code then src r.Flight.d_b = m || dst r.Flight.d_b = m
        else if r.Flight.d_code = Flight.exec_event then
          Causal.exec_event_operand r.Flight.d_a = m
        else if r.Flight.d_code = Flight.exec_violation then false
        else r.Flight.d_a = m
      in
      let keep (r : Flight.decoded) =
        (code_ids = [] || List.mem r.Flight.d_code code_ids)
        && r.Flight.d_tick >= since
        && match episode with None -> true | Some m -> touches_member m r
      in
      let filtered = List.filter keep records in
      let shown = if limit > 0 then List.filteri (fun i _ -> i < limit) filtered else filtered in
      Printf.printf "records (%d shown of %d matching):\n" (List.length shown)
        (List.length filtered);
      List.iter
        (fun (r : Flight.decoded) ->
          let operands =
            if is_net r.Flight.d_code then
              Printf.sprintf "msg=%d src=%d dst=%d" r.Flight.d_a (src r.Flight.d_b)
                (dst r.Flight.d_b)
            else Printf.sprintf "a=%d b=%d" r.Flight.d_a r.Flight.d_b
          in
          Printf.printf "  %12d %-18s %s (dom %d seq %d)\n" r.Flight.d_tick
            (Flight.code_name r.Flight.d_code)
            operands r.Flight.d_domain r.Flight.d_seq)
        shown;
      if List.length filtered > List.length shown then
        Printf.printf "  ... %d more (raise --limit, or 0 for all)\n"
          (List.length filtered - List.length shown)
    end
  in
  let file =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"DUMP" ~doc:"Flight-recorder dump file (written next to fuzz repros).")
  in
  let codes =
    Arg.(
      value
      & opt (list string) []
      & info [ "code" ] ~docv:"NAME,..."
          ~doc:
            "Only list records with these event codes (symbolic like $(b,net.send), \
             $(b,proto.detected), $(b,exec.violation) — or numeric).")
  in
  let since =
    Arg.(
      value & opt int 0
      & info [ "since" ] ~docv:"TICK" ~doc:"Only list records at or after this tick.")
  in
  let episode =
    Arg.(
      value
      & opt (some int) None
      & info [ "episode" ] ~docv:"MEMBER"
          ~doc:"Only list records touching this member's recovery episode.")
  in
  let openmetrics =
    Arg.(
      value & flag
      & info [ "openmetrics" ]
          ~doc:"Emit the analysis as an OpenMetrics-style text exposition instead.")
  in
  let limit =
    Arg.(
      value & opt int 40
      & info [ "limit" ] ~docv:"N" ~doc:"Cap the record listing (0 = unlimited).")
  in
  Cmd.v
    (Cmd.info "inspect"
       ~doc:
         "Decode a flight-recorder crash dump: record counts, causal recovery episodes with \
          per-phase critical paths, oracle violations attributed to recovery phases, and a \
          filterable record listing.")
    Term.(const run $ file $ codes $ since $ episode $ openmetrics $ limit)

let ablations_cmd =
  let run seed scenarios =
    print_string (Ablation.Reshaping.render (Ablation.Reshaping.run ~seed ~scenarios ()));
    print_newline ();
    print_string (Ablation.Query.render (Ablation.Query.run ~seed ~scenarios ()));
    print_newline ();
    print_string
      (Ablation.Hierarchical.render (Ablation.Hierarchical.run ~seed ~scenarios:(max 5 (scenarios / 2)) ()))
  in
  Cmd.v
    (Cmd.info "ablations" ~doc:"Reshaping, query-scheme and hierarchy ablations.")
    Term.(const run $ seed_arg 11 $ scenarios_arg)

let related_cmd =
  let run seed scenarios =
    let feas = Related_work.feasibility ~seed ~samples:scenarios () in
    let cmp = Related_work.compare_schemes ~seed ~scenarios:(max 10 (scenarios / 2)) () in
    print_string (Related_work.render feas cmp)
  in
  Cmd.v
    (Cmd.info "related-work" ~doc:"SMRP vs redundant trees (Medard et al. [16]).")
    Term.(const run $ seed_arg 16 $ scenarios_arg)

let scale_cmd =
  let run seed ns json =
    let rows = Scaling.run ~ns ~seed () in
    print_string (Scaling.render rows);
    match json with
    | None -> ()
    | Some file ->
        let oc = open_out file in
        output_string oc (Scaling.to_json rows);
        close_out oc;
        Printf.printf "scale: JSON report written to %s\n" file
  in
  let ns =
    Arg.(
      value
      & opt (list int) [ 10_000; 100_000 ]
      & info [ "n" ] ~docv:"N,N,..."
          ~doc:
            "Topology sizes to sweep (comma-separated node counts; pass 1000000 for the \
             million-node run).")
  in
  let json =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE" ~doc:"Also write the machine-readable report here.")
  in
  Cmd.v
    (Cmd.info "scale"
       ~doc:
         "Large-n scaling sweep: grid-bucketed Waxman and transit-stub generation, incremental \
          SPF build/repair and protection-table precompute/lookup, per size.")
    Term.(const run $ seed_arg 17 $ ns $ json)

let dot_cmd =
  let run seed protocol =
    let s = Scenario.run { Scenario.default with Scenario.seed } in
    let tree =
      match protocol with "spf" -> s.Scenario.spf_tree | _ -> s.Scenario.smrp_tree
    in
    print_string (Dot.network ~tree s.Scenario.graph)
  in
  let protocol =
    Arg.(
      value
      & opt (enum [ ("smrp", "smrp"); ("spf", "spf") ]) "smrp"
      & info [ "protocol" ] ~docv:"PROTO" ~doc:"Tree to highlight (smrp or spf).")
  in
  Cmd.v
    (Cmd.info "dot" ~doc:"Emit a Graphviz rendering of one scenario's tree.")
    Term.(const run $ seed_arg 1 $ protocol)

let () =
  let doc = "Reproduction of SMRP (Wu & Shin, DSN 2005)." in
  exit
    (Cmd.eval
       (Cmd.group (Cmd.info "smrp" ~version:"1.0.0" ~doc)
          [
            fig7_cmd;
            fig8_cmd;
            fig9_cmd;
            fig10_cmd;
            all_cmd;
            scenario_cmd;
            campaign_cmd;
            fuzz_cmd;
            inspect_cmd;
            latency_cmd;
            profile_cmd;
            report_cmd;
            ablations_cmd;
            related_cmd;
            scale_cmd;
            dot_cmd;
          ]))
