(** The Survivable Multicast Routing Protocol (§3.2).

    A joining member enumerates, for every on-tree node [R], the shortest
    connection whose interior avoids the tree (so [R] is the true merge
    point, paper footnote 4), and applies the Path Selection Criterion:

    - minimise [SHR(S,R)] over the candidate merge points;
    - subject to [total delay <= (1 + d_thresh) * D_SPF];
    - ties broken by total delay, then lowest node id (determinism).

    If no candidate meets the delay bound the member falls back to the
    lowest-delay candidate (equivalent to the SPF join; the paper does not
    discuss this corner, which arises when every bounded connection is
    blocked — e.g. extreme [d_thresh = 0]
    with a tree whose paths are all non-shortest). *)

type candidate = {
  merge : int;  (** The on-tree merge node [R_i]. *)
  attach_nodes : int list;  (** Path from [merge] to the joiner. *)
  attach_edges : int list;
  attach_delay : float;  (** Delay of the new links only. *)
  total_delay : float;  (** [attach_delay] + tree delay of [merge]. *)
  shr : int;  (** [SHR(S, merge)] in the current tree. *)
}

val default_d_thresh : float
(** 0.3, the paper's reference setting. *)

val candidates :
  ?exclude:(int -> bool) ->
  ?failure:Failure.t ->
  ?ws:Smrp_graph.Dijkstra.workspace ->
  Tree.t ->
  joiner:int ->
  candidate list
(** All merge options for [joiner], ordered by merge-node id.  [exclude]
    removes nodes from both traversal and merging (used by reshaping to
    keep the detached branch out of the search); [failure] removes failed
    components (joins arriving while failures are active).  [ws] makes the
    underlying absorbing Dijkstra allocation-free. *)

val spf_distance :
  ?failure:Failure.t -> ?ws:Smrp_graph.Dijkstra.workspace -> Tree.t -> int -> float option
(** Unicast shortest-path delay from a node to the source, over the
    surviving network when [failure] is given. *)

val select : ?d_thresh:float -> spf_distance:float -> candidate list -> candidate option
(** Apply the Path Selection Criterion; [None] when the list is empty.
    Falls back to the lowest-delay candidate when none meets the bound. *)

val join :
  ?d_thresh:float ->
  ?failure:Failure.t ->
  ?ws:Smrp_graph.Dijkstra.workspace ->
  ?spf_dist:float ->
  Tree.t ->
  int ->
  unit
(** SMRP join (§3.2.2).  A joiner that is already on-tree (a relay)
    subscribes in place and keeps its existing path — a zero-cost join that
    may exceed the delay bound; a later reshaping pass can move it.  Raises
    [Invalid_argument] if the node is already a member or no connection to
    the tree exists.

    [spf_dist] supplies the joiner's unicast SPF distance when the caller
    already maintains it (protection sessions keep the source-rooted tree
    incrementally via {!Smrp_graph.Dspf}), skipping the per-join distance
    search. *)

val leave : Tree.t -> int -> unit
(** Explicit [Leave_Req]: alias of {!Tree.remove_member}. *)

val build :
  ?d_thresh:float ->
  ?ws:Smrp_graph.Dijkstra.workspace ->
  Smrp_graph.Graph.t ->
  source:int ->
  members:int list ->
  Tree.t
(** Fresh tree with the given members joined in list order.  One workspace
    (supplied or private) is reused across every join. *)
