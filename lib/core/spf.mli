(** The SPF-based baseline protocol (PIM-SM-style joins over the underlying
    unicast shortest paths), the comparison point of §4.

    A joining member computes its unicast shortest path towards the source
    and sends the join along it; the join grafts at the first on-tree node it
    meets.

    Every entry point takes an optional [?ws] Dijkstra workspace; passing one
    makes the underlying searches allocation-free (see {!Smrp_graph.Dijkstra}).
    Omitting it allocates a private workspace per search. *)

val attach_path :
  ?failure:Failure.t -> ?ws:Smrp_graph.Dijkstra.workspace -> Tree.t -> int -> int list * int list
(** [attach_path t nr] is the graft [(nodes, edges)] a PIM-style join would
    install: the suffix of [nr]'s unicast shortest path to the source from
    the first on-tree node encountered, returned merge-node first.  Returns
    [([nr], [])] when [nr] is already on-tree.  Raises [Invalid_argument]
    when the source is unreachable. *)

val join : ?failure:Failure.t -> ?ws:Smrp_graph.Dijkstra.workspace -> Tree.t -> int -> unit
(** [join t nr] subscribes [nr].  Raises [Invalid_argument] if [nr] is
    already a member or cannot reach the source. *)

val leave : Tree.t -> int -> unit
(** Explicit [Leave_Req] (§3.2.2): alias of {!Tree.remove_member}. *)

val build :
  ?ws:Smrp_graph.Dijkstra.workspace ->
  Smrp_graph.Graph.t ->
  source:int ->
  members:int list ->
  Tree.t
(** Fresh tree with the given members joined in list order.  One workspace
    (supplied or private) is reused across every join. *)
