module Graph = Smrp_graph.Graph
module Dijkstra = Smrp_graph.Dijkstra
module Paths = Smrp_graph.Paths

type detour = {
  member : int;
  merge : int;
  path_nodes : int list;
  path_edges : int list;
  recovery_distance : float;
  new_total_delay : float;
}

let trivial t member =
  {
    member;
    merge = member;
    path_nodes = [ member ];
    path_edges = [];
    recovery_distance = 0.0;
    new_total_delay = Tree.delay_to_source t member;
  }

let local_detour ?ws t f ~member =
  if not (Failure.node_ok f member) then None
  else begin
    let g = Tree.graph t in
    let surviving = Failure.tree_connected t f in
    if surviving.(member) then Some (trivial t member)
    else begin
      let result =
        Dijkstra.run
          ~node_ok:(Failure.node_ok f)
          ~edge_ok:(Failure.edge_ok g f)
          ~absorb:(fun v -> surviving.(v))
          ?workspace:ws g ~source:member
      in
      (* Descending scan with non-strict replacement: ties on distance end
         at the smallest node id, keeping recovery deterministic. *)
      let best = ref None in
      for v = Graph.node_count g - 1 downto 0 do
        if surviving.(v) && Dijkstra.reachable result v then begin
          let d = Option.get (Dijkstra.distance result v) in
          match !best with
          | Some (bd, _) when bd < d -> ()
          | _ -> best := Some (d, v)
        end
      done;
      match !best with
      | None -> None
      | Some (d, merge) ->
          let path_nodes = Option.get (Dijkstra.path_nodes result merge) in
          let path_edges = Option.get (Dijkstra.path_edges result merge) in
          Some
            {
              member;
              merge;
              path_nodes;
              path_edges;
              recovery_distance = d;
              new_total_delay = d +. Tree.delay_to_source t merge;
            }
    end
  end

(* Branch detour: the re-attachment path of a whole orphaned subtree, used
   by the precomputed-protection tables ([Protect]) and as the search-based
   oracle they are checked against.  [root] is the orphan's root; [eligible]
   marks the merge targets (on-tree, outside the orphaned region, and
   surviving the post-failure pruning — the caller computes this);
   [excluded] marks the orphaned region itself.  Interior path nodes must be
   strictly off-tree, exactly as in the SMRP candidate search (footnote 4),
   so the merge point is the true merge point. *)
let branch_detour ?ws t f ~root ~eligible =
  if not (Failure.node_ok f root) then None
  else begin
    let g = Tree.graph t in
    let node_ok v =
      Failure.node_ok f v && (v = root || (not (Tree.is_on_tree t v)) || eligible v)
    in
    let absorb v = v <> root && eligible v in
    let result =
      Dijkstra.run ~node_ok ~edge_ok:(Failure.edge_ok g f) ~absorb ?workspace:ws g
        ~source:root
    in
    (* Same descending non-strict scan as [local_detour]: deterministic
       smallest-id winner on recovery-distance ties. *)
    let best = ref None in
    for v = Graph.node_count g - 1 downto 0 do
      if v <> root && eligible v && Dijkstra.reachable result v then begin
        let d = Option.get (Dijkstra.distance result v) in
        match !best with
        | Some (bd, _) when bd < d -> ()
        | _ -> best := Some (d, v)
      end
    done;
    match !best with
    | None -> None
    | Some (d, merge) ->
        let path_nodes = Option.get (Dijkstra.path_nodes result merge) in
        let path_edges = Option.get (Dijkstra.path_edges result merge) in
        Some
          {
            member = root;
            merge;
            path_nodes;
            path_edges;
            recovery_distance = d;
            new_total_delay = d +. Tree.delay_to_source t merge;
          }
  end

let surviving_tree old f =
  let fresh = Tree.create (Tree.graph old) ~source:(Tree.source old) in
  let connected = Failure.tree_connected old f in
  (* Re-graft the path of each surviving member rather than copying the
     whole surviving structure: relay chains whose members were all cut off
     must not survive (they would violate the pruning discipline). *)
  List.iter
    (fun m ->
      if connected.(m) then begin
        (* Path runs m..source; find the deepest node already on [fresh]
           and graft the suffix from there down to m. *)
        let rec split acc = function
          | v :: _ when Tree.is_on_tree fresh v -> Some (v :: acc)
          | v :: rest -> split (v :: acc) rest
          | [] -> None
        in
        (match split [] (Tree.path_to_source old m) with
        | Some (merge :: _ :: _ as nodes) ->
            ignore merge;
            let edges =
              match nodes with
              | _ :: rest -> List.map (fun v -> Option.get (Tree.parent_edge old v)) rest
              | [] -> []
            in
            Tree.graft fresh ~nodes ~edges
        | Some ([] | [ _ ]) | None -> ());
        Tree.add_member fresh m
      end)
    (Tree.members old);
  fresh

let global_detour ?ws t f ~member =
  if not (Failure.node_ok f member) then None
  else begin
    let g = Tree.graph t in
    let surviving = Failure.tree_connected t f in
    if surviving.(member) then Some (trivial t member)
    else begin
      match
        Dijkstra.shortest_path
          ~node_ok:(Failure.node_ok f)
          ~edge_ok:(Failure.edge_ok g f)
          ?workspace:ws g ~src:member ~dst:(Tree.source t)
      with
      | None -> None
      | Some (_, nodes, edges) ->
          (* The re-issued join grafts at the first on-tree node along the
             new unicast path that still receives data; only the prefix up to
             it counts as recovery effort. *)
          let rec prefix nodes edges acc_nodes acc_edges =
            match (nodes, edges) with
            | v :: _, _ when surviving.(v) -> (v, List.rev (v :: acc_nodes), List.rev acc_edges)
            | v :: rest, e :: es -> prefix rest es (v :: acc_nodes) (e :: acc_edges)
            | _ -> invalid_arg "Recovery.global_detour: path misses the source"
          in
          let merge, path_nodes, path_edges = prefix nodes edges [] [] in
          let rd = Paths.delay_of_edges g path_edges in
          Some
            {
              member;
              merge;
              path_nodes;
              path_edges;
              recovery_distance = rd;
              new_total_delay = rd +. Tree.delay_to_source t merge;
            }
    end
  end
