module Dijkstra = Smrp_graph.Dijkstra

let candidate_of_previous t (nodes, edges) =
  match nodes with
  | merge :: _ ->
      let attach_delay = Smrp_graph.Paths.delay_of_edges (Tree.graph t) edges in
      {
        Smrp.merge;
        attach_nodes = nodes;
        attach_edges = edges;
        attach_delay;
        total_delay = attach_delay +. Tree.delay_to_source t merge;
        shr = Tree.shr t merge;
      }
  | [] -> invalid_arg "Reshape: empty previous attachment"

let try_reshape ?d_thresh ?failure ?ws t r =
  if not (Tree.is_on_tree t r) then invalid_arg "Reshape.try_reshape: off-tree node";
  if r = Tree.source t then invalid_arg "Reshape.try_reshape: cannot reshape the source";
  let d_thresh = Option.value d_thresh ~default:Smrp.default_d_thresh in
  match Smrp.spf_distance ?failure ?ws t r with
  | None -> false
  | Some spf_dist ->
      let branch, previous = Tree.detach_branch t ~node:r in
      let current = candidate_of_previous t previous in
      let exclude v = Tree.branch_contains branch v && v <> r in
      let cands = Smrp.candidates ~exclude ?failure ?ws t ~joiner:r in
      let bound = ((1.0 +. d_thresh) *. spf_dist) +. 1e-9 in
      let chosen =
        (* Only a candidate that respects the delay bound may replace the
           current path (a fallback returned by [select] when nothing is
           bounded must not). *)
        match Smrp.select ~d_thresh ~spf_distance:spf_dist cands with
        | Some best
          when best.Smrp.total_delay <= bound
               && (best.Smrp.shr < current.Smrp.shr
                  || (best.Smrp.shr = current.Smrp.shr
                     && best.Smrp.total_delay < current.Smrp.total_delay -. 1e-9)) ->
            best
        | _ -> current
      in
      Tree.attach_branch t branch ~nodes:chosen.Smrp.attach_nodes ~edges:chosen.Smrp.attach_edges;
      chosen.Smrp.merge <> current.Smrp.merge || chosen.Smrp.attach_edges <> current.Smrp.attach_edges

type stats = { switches : int; rounds : int }

let stabilize ?d_thresh ?failure ?ws ?(max_rounds = 10) ?metrics t =
  if max_rounds < 1 then invalid_arg "Reshape.stabilize: max_rounds must be positive";
  let ws =
    match ws with
    | Some ws -> ws
    | None ->
        Smrp_graph.Dijkstra.workspace ~capacity:(Smrp_graph.Graph.node_count (Tree.graph t)) ()
  in
  (* Instrumentation rides the workspace tracer (like candidate_search) and
     an optional registry; both off (the default) costs one branch per
     round.  Round and sweep wall times go to sketches so the profile can
     report p50/p99 across many stabilize calls. *)
  let module M = Smrp_obs.Metrics in
  let module Trace = Smrp_obs.Trace in
  let tr = Dijkstra.workspace_trace ws in
  let tracing = Trace.enabled tr in
  let observing = tracing || Option.is_some metrics in
  let clock = Dijkstra.workspace_clock ws in
  let inst =
    Option.map
      (fun m ->
        ( M.counter m "reshape.rounds",
          M.counter m "reshape.scans",
          M.counter m "reshape.switches",
          M.sketch m "reshape.round_s",
          M.sketch m "reshape.stabilize_s" ))
      metrics
  in
  let tid = (Domain.self () :> int) in
  let t_start = if observing then clock () else 0.0 in
  let finish stats =
    if observing then begin
      let dur = clock () -. t_start in
      Option.iter
        (fun (_, _, _, _, sweep_q) -> Smrp_obs.Sketch.observe sweep_q dur)
        inst;
      if tracing then
        Trace.complete tr ~ts:t_start ~dur ~cat:"reshape" ~tid
          ~args:
            [ ("rounds", Trace.Int stats.rounds); ("switches", Trace.Int stats.switches) ]
          "reshape.stabilize"
    end;
    stats
  in
  let rec run rounds switches =
    if rounds = max_rounds then finish { switches; rounds }
    else begin
      let r0 = if observing then clock () else 0.0 in
      (* Deepest-first order: re-homing a subtree does not invalidate the
         pending decisions of shallower nodes as often. *)
      let nodes =
        Tree.on_tree_nodes t
        |> List.filter (fun v -> v <> Tree.source t)
        |> List.map (fun v -> (List.length (Tree.path_to_source t v), v))
        |> List.sort (fun (d1, v1) (d2, v2) -> compare (-d1, v1) (-d2, v2))
        |> List.map snd
      in
      let round_scans = ref 0 in
      let round_switches =
        List.fold_left
          (fun acc v ->
            if Tree.is_on_tree t v && v <> Tree.source t then begin
              incr round_scans;
              if try_reshape ?d_thresh ?failure ~ws t v then acc + 1 else acc
            end
            else acc)
          0 nodes
      in
      if observing then begin
        let dur = clock () -. r0 in
        Option.iter
          (fun (rounds_c, scans_c, switches_c, round_q, _) ->
            M.Counter.incr rounds_c;
            M.Counter.add scans_c !round_scans;
            M.Counter.add switches_c round_switches;
            Smrp_obs.Sketch.observe round_q dur)
          inst;
        if tracing then
          Trace.complete tr ~ts:r0 ~dur ~cat:"reshape" ~tid
            ~args:
              [
                ("round", Trace.Int rounds);
                ("scans", Trace.Int !round_scans);
                ("switches", Trace.Int round_switches);
              ]
            "reshape.round"
      end;
      if round_switches = 0 then finish { switches; rounds = rounds + 1 }
      else run (rounds + 1) (switches + round_switches)
    end
  in
  run 0 0

type monitor = (int, int) Hashtbl.t

let monitor t =
  let m = Hashtbl.create 64 in
  List.iter (fun v -> Hashtbl.replace m v (Tree.shr t v)) (Tree.on_tree_nodes t);
  m

let drifted m t ~threshold =
  List.filter
    (fun v ->
      v <> Tree.source t
      &&
      let old_shr = try Hashtbl.find m v with Not_found -> 0 in
      Tree.shr t v - old_shr > threshold)
    (Tree.on_tree_nodes t)

let note_reshaped m t v = Hashtbl.replace m v (if Tree.is_on_tree t v then Tree.shr t v else 0)

let run_condition_i ?d_thresh ?(threshold = 1) ?ws m t =
  let triggered = drifted m t ~threshold in
  List.fold_left
    (fun acc v ->
      if Tree.is_on_tree t v && v <> Tree.source t then begin
        let switched = try_reshape ?d_thresh ?ws t v in
        note_reshaped m t v;
        if switched then acc + 1 else acc
      end
      else acc)
    0 triggered
