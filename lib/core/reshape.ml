let candidate_of_previous t (nodes, edges) =
  match nodes with
  | merge :: _ ->
      let attach_delay = Smrp_graph.Paths.delay_of_edges (Tree.graph t) edges in
      {
        Smrp.merge;
        attach_nodes = nodes;
        attach_edges = edges;
        attach_delay;
        total_delay = attach_delay +. Tree.delay_to_source t merge;
        shr = Tree.shr t merge;
      }
  | [] -> invalid_arg "Reshape: empty previous attachment"

let try_reshape ?d_thresh ?failure ?ws t r =
  if not (Tree.is_on_tree t r) then invalid_arg "Reshape.try_reshape: off-tree node";
  if r = Tree.source t then invalid_arg "Reshape.try_reshape: cannot reshape the source";
  let d_thresh = Option.value d_thresh ~default:Smrp.default_d_thresh in
  match Smrp.spf_distance ?failure ?ws t r with
  | None -> false
  | Some spf_dist ->
      let branch, previous = Tree.detach_branch t ~node:r in
      let current = candidate_of_previous t previous in
      let exclude v = Tree.branch_contains branch v && v <> r in
      let cands = Smrp.candidates ~exclude ?failure ?ws t ~joiner:r in
      let bound = ((1.0 +. d_thresh) *. spf_dist) +. 1e-9 in
      let chosen =
        (* Only a candidate that respects the delay bound may replace the
           current path (a fallback returned by [select] when nothing is
           bounded must not). *)
        match Smrp.select ~d_thresh ~spf_distance:spf_dist cands with
        | Some best
          when best.Smrp.total_delay <= bound
               && (best.Smrp.shr < current.Smrp.shr
                  || (best.Smrp.shr = current.Smrp.shr
                     && best.Smrp.total_delay < current.Smrp.total_delay -. 1e-9)) ->
            best
        | _ -> current
      in
      Tree.attach_branch t branch ~nodes:chosen.Smrp.attach_nodes ~edges:chosen.Smrp.attach_edges;
      chosen.Smrp.merge <> current.Smrp.merge || chosen.Smrp.attach_edges <> current.Smrp.attach_edges

type stats = { switches : int; rounds : int }

let stabilize ?d_thresh ?failure ?ws ?(max_rounds = 10) t =
  if max_rounds < 1 then invalid_arg "Reshape.stabilize: max_rounds must be positive";
  let ws =
    match ws with
    | Some ws -> ws
    | None ->
        Smrp_graph.Dijkstra.workspace ~capacity:(Smrp_graph.Graph.node_count (Tree.graph t)) ()
  in
  let rec run rounds switches =
    if rounds = max_rounds then { switches; rounds }
    else begin
      (* Deepest-first order: re-homing a subtree does not invalidate the
         pending decisions of shallower nodes as often. *)
      let nodes =
        Tree.on_tree_nodes t
        |> List.filter (fun v -> v <> Tree.source t)
        |> List.map (fun v -> (List.length (Tree.path_to_source t v), v))
        |> List.sort (fun (d1, v1) (d2, v2) -> compare (-d1, v1) (-d2, v2))
        |> List.map snd
      in
      let round_switches =
        List.fold_left
          (fun acc v ->
            if Tree.is_on_tree t v && v <> Tree.source t && try_reshape ?d_thresh ?failure ~ws t v
            then acc + 1
            else acc)
          0 nodes
      in
      if round_switches = 0 then { switches; rounds = rounds + 1 }
      else run (rounds + 1) (switches + round_switches)
    end
  in
  run 0 0

type monitor = (int, int) Hashtbl.t

let monitor t =
  let m = Hashtbl.create 64 in
  List.iter (fun v -> Hashtbl.replace m v (Tree.shr t v)) (Tree.on_tree_nodes t);
  m

let drifted m t ~threshold =
  List.filter
    (fun v ->
      v <> Tree.source t
      &&
      let old_shr = try Hashtbl.find m v with Not_found -> 0 in
      Tree.shr t v - old_shr > threshold)
    (Tree.on_tree_nodes t)

let note_reshaped m t v = Hashtbl.replace m v (if Tree.is_on_tree t v then Tree.shr t v else 0)

let run_condition_i ?d_thresh ?(threshold = 1) ?ws m t =
  let triggered = drifted m t ~threshold in
  List.fold_left
    (fun acc v ->
      if Tree.is_on_tree t v && v <> Tree.source t then begin
        let switched = try_reshape ?d_thresh ?ws t v in
        note_reshaped m t v;
        if switched then acc + 1 else acc
      end
      else acc)
    0 triggered
