module Dijkstra = Smrp_graph.Dijkstra

let candidate_of_previous t (nodes, edges) =
  match nodes with
  | merge :: _ ->
      let attach_delay = Smrp_graph.Paths.delay_of_edges (Tree.graph t) edges in
      {
        Smrp.merge;
        attach_nodes = nodes;
        attach_edges = edges;
        attach_delay;
        total_delay = attach_delay +. Tree.delay_to_source t merge;
        shr = Tree.shr t merge;
      }
  | [] -> invalid_arg "Reshape: empty previous attachment"

let try_reshape ?d_thresh ?failure ?ws t r =
  if not (Tree.is_on_tree t r) then invalid_arg "Reshape.try_reshape: off-tree node";
  if r = Tree.source t then invalid_arg "Reshape.try_reshape: cannot reshape the source";
  let d_thresh = Option.value d_thresh ~default:Smrp.default_d_thresh in
  match Smrp.spf_distance ?failure ?ws t r with
  | None -> false
  | Some spf_dist ->
      let branch, previous = Tree.detach_branch t ~node:r in
      let current = candidate_of_previous t previous in
      let exclude v = Tree.branch_contains branch v && v <> r in
      let cands = Smrp.candidates ~exclude ?failure ?ws t ~joiner:r in
      let bound = ((1.0 +. d_thresh) *. spf_dist) +. 1e-9 in
      let chosen =
        (* Only a candidate that respects the delay bound may replace the
           current path (a fallback returned by [select] when nothing is
           bounded must not). *)
        match Smrp.select ~d_thresh ~spf_distance:spf_dist cands with
        | Some best
          when best.Smrp.total_delay <= bound
               && (best.Smrp.shr < current.Smrp.shr
                  || (best.Smrp.shr = current.Smrp.shr
                     && best.Smrp.total_delay < current.Smrp.total_delay -. 1e-9)) ->
            best
        | _ -> current
      in
      Tree.attach_branch t branch ~nodes:chosen.Smrp.attach_nodes ~edges:chosen.Smrp.attach_edges;
      chosen.Smrp.merge <> current.Smrp.merge || chosen.Smrp.attach_edges <> current.Smrp.attach_edges

type stats = { switches : int; rounds : int }

(* -- Mutation-free single-node evaluation --------------------------------

   [try_reshape] evaluates a node by physically detaching its branch,
   searching, and re-attaching — allocating an O(n) branch bitmap, two
   candidate-record lists and invalidating the SHR cache twice even when
   nothing switches (the common case).  [stabilize] instead evaluates each
   node against epoch-stamped marks describing what the detached tree
   {e would} look like, and only mutates on an actual switch:

   - [sub]: the subtree of the evaluated node [r] (the old branch bitmap);
   - [anc]/[anc_depth]: the strict ancestors of [r] with their depths, so
     the SHR a merge candidate would have after detaching [r]'s branch is
     [shr m - nsub * depth (first marked ancestor of m)] — detaching removes
     [nsub] members from exactly the ancestors of [r], and the ones on [m]'s
     source path are those above the deepest common ancestor;
   - [chain]: the relay chain that detaching would prune (off-tree in the
     detached view: traversable, not a merge point).

   The candidate Dijkstra runs with [dist_bound]: a replacement must beat
   the delay bound, and the fallback [Smrp.select] returns when nothing is
   bounded can never pass [try_reshape]'s bound re-check — so candidates
   beyond the bound can never cause a switch and need not be settled. *)

type scratch = {
  sub : int array;
  anc : int array;
  anc_depth : int array;
  chain : int array;
  stack : int array;
  spf : float array; (* source-rooted SPF distances, hoisted per stabilize *)
  depth : int array;
  eval_stamp : int array; (* mutation stamp at last known-clean evaluation *)
  (* Tree facts cached per mutation stamp, so the per-candidate scan reads
     plain arrays instead of making cross-module calls per node. *)
  on_tree_c : bool array;
  dts_c : float array; (* delay_to_source, on-tree nodes only *)
  shr_c : int array; (* SHR, on-tree nodes only *)
  mutable cache_stamp : int;
  mutable epoch : int;
  mutable mstamp : int; (* bumped on every switch *)
}

let make_scratch n =
  {
    sub = Array.make n 0;
    anc = Array.make n 0;
    anc_depth = Array.make n 0;
    chain = Array.make n 0;
    stack = Array.make n 0;
    spf = Array.make n infinity;
    depth = Array.make n 0;
    eval_stamp = Array.make n 0;
    on_tree_c = Array.make n false;
    dts_c = Array.make n infinity;
    shr_c = Array.make n 0;
    cache_stamp = 0;
    epoch = 0;
    mstamp = 1;
  }

let refresh_caches t sc =
  if sc.cache_stamp <> sc.mstamp then begin
    for v = 0 to Array.length sc.on_tree_c - 1 do
      if Tree.is_on_tree t v then begin
        sc.on_tree_c.(v) <- true;
        sc.dts_c.(v) <- Tree.delay_to_source t v;
        sc.shr_c.(v) <- Tree.shr t v
      end
      else sc.on_tree_c.(v) <- false
    done;
    sc.cache_stamp <- sc.mstamp
  end

let bound_epsilon = 1e-9

(* Evaluate node [r] exactly as [try_reshape] would, mutating the tree only
   on a switch.  [sc.spf] must hold current source-rooted SPF distances. *)
let eval_node t sc ~ws ~d_thresh ~failure r =
  let g = Tree.graph t in
  let spf_dist = sc.spf.(r) in
  if spf_dist = infinity then false
  else begin
    refresh_caches t sc;
    sc.epoch <- sc.epoch + 1;
    let ep = sc.epoch in
    (* Subtree marks (iterative DFS over child lists). *)
    let sp = ref 0 in
    sc.stack.(!sp) <- r;
    incr sp;
    while !sp > 0 do
      decr sp;
      let v = sc.stack.(!sp) in
      sc.sub.(v) <- ep;
      List.iter
        (fun c ->
          sc.stack.(!sp) <- c;
          incr sp)
        (Tree.children t v)
    done;
    let nsub = Tree.subtree_members t r in
    (* Ancestor chain with depths. *)
    let depth_r = ref 0 in
    let v = ref r in
    let src = Tree.source t in
    while !v <> src do
      v := Tree.parent_id t !v;
      incr depth_r
    done;
    let k = ref 1 in
    v := Tree.parent_id t r;
    let continue = ref true in
    while !continue do
      sc.anc.(!v) <- ep;
      sc.anc_depth.(!v) <- !depth_r - !k;
      if !v = src then continue := false
      else begin
        v := Tree.parent_id t !v;
        incr k
      end
    done;
    (* Relay chain the detachment would prune, and the surviving merge
       point of the current attachment. *)
    let chain_child = ref r in
    let m0 = ref (Tree.parent_id t r) in
    let walking = ref true in
    while !walking do
      let v = !m0 in
      if
        v <> src
        && (not (Tree.is_member t v))
        && List.for_all (fun c -> c = !chain_child) (Tree.children t v)
      then begin
        sc.chain.(v) <- ep;
        chain_child := v;
        m0 := Tree.parent_id t v
      end
      else walking := false
    done;
    let m0 = !m0 in
    (* Current attachment: delay summed top-down to match the edge-list fold
       of the detach-based path bit for bit. *)
    let ce_n = ref 0 in
    let v = ref r in
    while !v <> m0 do
      sc.stack.(!ce_n) <- Tree.parent_edge_id t !v;
      incr ce_n;
      v := Tree.parent_id t !v
    done;
    let current_delay = ref 0.0 in
    for i = !ce_n - 1 downto 0 do
      current_delay := !current_delay +. (Smrp_graph.Graph.edge g sc.stack.(i)).Smrp_graph.Graph.delay
    done;
    let current_total = !current_delay +. sc.dts_c.(m0) in
    let current_shr = sc.shr_c.(m0) - (nsub * sc.anc_depth.(m0)) in
    let bound = ((1.0 +. d_thresh) *. spf_dist) +. bound_epsilon in
    (* Candidate search on the virtual detached tree.  The filters close
       over the scratch marks and caches only — every test is an array
       read, plus the failure predicates when a failure is active. *)
    let alive v = match failure with None -> true | Some f -> Failure.node_ok f v in
    let result =
      match failure with
      | None ->
          let node_ok v = sc.sub.(v) <> ep || v = r in
          let absorb v = sc.on_tree_c.(v) && sc.chain.(v) <> ep && sc.sub.(v) <> ep in
          Dijkstra.run ~node_ok ~absorb ~dist_bound:bound ~workspace:ws g ~source:r
      | Some f ->
          let node_ok v = (sc.sub.(v) <> ep || v = r) && Failure.node_ok f v in
          let absorb v = sc.on_tree_c.(v) && sc.chain.(v) <> ep && node_ok v in
          Dijkstra.run ~node_ok
            ~edge_ok:(fun e -> Failure.edge_ok g f e)
            ~absorb ~dist_bound:bound ~workspace:ws g ~source:r
    in
    (* Best bounded candidate, scanned in ascending merge order with the
       same comparisons as [Smrp.select] over [Smrp.candidates]. *)
    let n = Smrp_graph.Graph.node_count g in
    let best = ref (-1) and best_delay = ref infinity and best_shr = ref max_int in
    for m = 0 to n - 1 do
      if
        m <> r
        && sc.on_tree_c.(m)
        && sc.chain.(m) <> ep
        && sc.sub.(m) <> ep
        && alive m
        && Dijkstra.reachable result m
      then begin
        let total = Dijkstra.unsafe_distance result m +. sc.dts_c.(m) in
        if total <= bound then begin
          (* Post-detach SHR: subtract [nsub] per ancestor of [r] on [m]'s
             source path — everything above the first marked ancestor. *)
          let a = ref m in
          while sc.anc.(!a) <> ep do
            a := Tree.parent_id t !a
          done;
          let shr = sc.shr_c.(m) - (nsub * sc.anc_depth.(!a)) in
          let is_better =
            !best < 0 || shr < !best_shr
            || (shr = !best_shr && total < !best_delay -. bound_epsilon)
            || (shr = !best_shr && abs_float (total -. !best_delay) <= bound_epsilon && m < !best)
          in
          if is_better then begin
            best := m;
            best_delay := total;
            best_shr := shr
          end
        end
      end
    done;
    if
      !best >= 0
      && (!best_shr < current_shr
         || (!best_shr = current_shr && !best_delay < current_total -. bound_epsilon))
    then begin
      (* A strictly better bounded candidate exists: do the real detach /
         attach.  Extract the path before anything else touches [ws]. *)
      let nodes = List.rev (Option.get (Dijkstra.path_nodes result !best)) in
      let edges = List.rev (Option.get (Dijkstra.path_edges result !best)) in
      let branch, _previous = Tree.detach_branch t ~node:r in
      Tree.attach_branch t branch ~nodes ~edges;
      true
    end
    else false
  end

let stabilize ?d_thresh ?failure ?ws ?(max_rounds = 10) ?metrics t =
  if max_rounds < 1 then invalid_arg "Reshape.stabilize: max_rounds must be positive";
  let d_thresh = Option.value d_thresh ~default:Smrp.default_d_thresh in
  let ws =
    match ws with
    | Some ws -> ws
    | None ->
        Smrp_graph.Dijkstra.workspace ~capacity:(Smrp_graph.Graph.node_count (Tree.graph t)) ()
  in
  (* Instrumentation rides the workspace tracer (like candidate_search) and
     an optional registry; both off (the default) costs one branch per
     round.  Round and sweep wall times go to sketches so the profile can
     report p50/p99 across many stabilize calls. *)
  let module M = Smrp_obs.Metrics in
  let module Trace = Smrp_obs.Trace in
  let tr = Dijkstra.workspace_trace ws in
  let tracing = Trace.enabled tr in
  let observing = tracing || Option.is_some metrics in
  let clock = Dijkstra.workspace_clock ws in
  let inst =
    Option.map
      (fun m ->
        ( M.counter m "reshape.rounds",
          M.counter m "reshape.scans",
          M.counter m "reshape.switches",
          M.sketch m "reshape.round_s",
          M.sketch m "reshape.stabilize_s" ))
      metrics
  in
  let tid = (Domain.self () :> int) in
  let g = Tree.graph t in
  let n = Smrp_graph.Graph.node_count g in
  let sc = make_scratch n in
  (* One source-rooted SPF serves every per-node bound check: the graph and
     failure are fixed for the whole sweep, so [spf_distance] from each node
     would recompute the same distances n times over.  Extract into the
     scratch immediately — the result borrows [ws] and the next candidate
     search invalidates it. *)
  let src = Tree.source t in
  let src_alive = match failure with None -> true | Some f -> Failure.node_ok f src in
  if src_alive then begin
    let res =
      match failure with
      | None -> Dijkstra.run ~workspace:ws g ~source:src
      | Some f ->
          Dijkstra.run
            ~node_ok:(fun v -> Failure.node_ok f v)
            ~edge_ok:(fun e -> Failure.edge_ok g f e)
            ~workspace:ws g ~source:src
    in
    for v = 0 to n - 1 do
      sc.spf.(v) <- (match Dijkstra.distance res v with Some d -> d | None -> infinity)
    done
  end;
  let t_start = if observing then clock () else 0.0 in
  let finish stats =
    if observing then begin
      let dur = clock () -. t_start in
      Option.iter
        (fun (_, _, _, _, sweep_q) -> Smrp_obs.Sketch.observe sweep_q dur)
        inst;
      if tracing then
        Trace.complete tr ~ts:t_start ~dur ~cat:"reshape" ~tid
          ~args:
            [ ("rounds", Trace.Int stats.rounds); ("switches", Trace.Int stats.switches) ]
          "reshape.stabilize"
    end;
    stats
  in
  let rec run rounds switches =
    if rounds = max_rounds then finish { switches; rounds }
    else begin
      let r0 = if observing then clock () else 0.0 in
      (* Deepest-first order: re-homing a subtree does not invalidate the
         pending decisions of shallower nodes as often.  Depths come from one
         DFS over child lists; the packed key (depth descending, id
         ascending) reproduces the historical sort on path-to-source
         lengths without building the paths. *)
      let sp = ref 0 in
      sc.stack.(!sp) <- src;
      incr sp;
      sc.depth.(src) <- 0;
      let order = Array.make n 0 in
      let k = ref 0 in
      while !sp > 0 do
        decr sp;
        let v = sc.stack.(!sp) in
        if v <> src then begin
          order.(!k) <- ((n - sc.depth.(v)) * n) + v;
          incr k
        end;
        List.iter
          (fun c ->
            sc.depth.(c) <- sc.depth.(v) + 1;
            sc.stack.(!sp) <- c;
            incr sp)
          (Tree.children t v)
      done;
      let order = Array.sub order 0 !k in
      Array.sort (fun (a : int) b -> compare a b) order;
      let round_scans = ref 0 in
      let round_switches = ref 0 in
      Array.iter
        (fun key ->
          let v = key mod n in
          if Tree.is_on_tree t v && v <> src then begin
            incr round_scans;
            (* A node that evaluated clean keeps that verdict until the next
               switch mutates the tree: skip the search, keep the scan
               count (the node was considered, the answer is just known). *)
            if sc.eval_stamp.(v) <> sc.mstamp then begin
              if eval_node t sc ~ws ~d_thresh ~failure v then begin
                sc.mstamp <- sc.mstamp + 1;
                incr round_switches
              end
              else sc.eval_stamp.(v) <- sc.mstamp
            end
          end)
        order;
      let round_switches = !round_switches in
      if observing then begin
        let dur = clock () -. r0 in
        Option.iter
          (fun (rounds_c, scans_c, switches_c, round_q, _) ->
            M.Counter.incr rounds_c;
            M.Counter.add scans_c !round_scans;
            M.Counter.add switches_c round_switches;
            Smrp_obs.Sketch.observe round_q dur)
          inst;
        if tracing then
          Trace.complete tr ~ts:r0 ~dur ~cat:"reshape" ~tid
            ~args:
              [
                ("round", Trace.Int rounds);
                ("scans", Trace.Int !round_scans);
                ("switches", Trace.Int round_switches);
              ]
            "reshape.round"
      end;
      if round_switches = 0 then finish { switches; rounds = rounds + 1 }
      else run (rounds + 1) (switches + round_switches)
    end
  in
  run 0 0

type monitor = (int, int) Hashtbl.t

let monitor t =
  let m = Hashtbl.create 64 in
  List.iter (fun v -> Hashtbl.replace m v (Tree.shr t v)) (Tree.on_tree_nodes t);
  m

let drifted m t ~threshold =
  List.filter
    (fun v ->
      v <> Tree.source t
      &&
      let old_shr = try Hashtbl.find m v with Not_found -> 0 in
      Tree.shr t v - old_shr > threshold)
    (Tree.on_tree_nodes t)

let note_reshaped m t v = Hashtbl.replace m v (if Tree.is_on_tree t v then Tree.shr t v else 0)

let run_condition_i ?d_thresh ?(threshold = 1) ?ws m t =
  let triggered = drifted m t ~threshold in
  List.fold_left
    (fun acc v ->
      if Tree.is_on_tree t v && v <> Tree.source t then begin
        let switched = try_reshape ?d_thresh ?ws t v in
        note_reshaped m t v;
        if switched then acc + 1 else acc
      end
      else acc)
    0 triggered
