(** Precomputed local-detour protection tables.

    For every tree edge — keyed by CSR edge id in flat arrays — the table
    precomputes the {e branch detour} that re-attaches the subtree below
    the edge if the edge fails ({e link protection}) and if the edge's
    upstream endpoint fails ({e node protection}; inapplicable when that
    endpoint is the source).  At failure time {!Session} answers the
    recovery query with array reads instead of per-member candidate
    searches; the entry's semantics are exactly
    {!Recovery.branch_detour}'s, which the fuzz oracle recomputes and
    compares against.

    {b Invalidation} is wholesale and O(1): any tree mutation can improve
    any entry's optimum (a membership change anywhere adds or removes
    merge targets), so {!invalidate} just bumps a version counter.  Stale
    entries refresh lazily on lookup; {!prepare} refreshes every tree-edge
    entry eagerly — {!Session} runs it after each repair so the next
    failure hits only fresh entries. *)

type t

type stats = { lookups : int; recomputes : int }

type entry = {
  root : int;  (** The orphaned branch's root (downstream endpoint). *)
  merge : int;  (** Surviving on-tree merge target. *)
  recovery_distance : float;
  path_nodes : int list;  (** [root ... merge], interior strictly off-tree. *)
  path_edges : int list;
}

val create : Tree.t -> t
(** No entries are built until first use ({!prepare} or a lookup). *)

val invalidate : t -> unit
(** O(1); call after any mutation of the protected tree. *)

val retarget : t -> Tree.t -> unit
(** Point the table at a replacement tree (repair rebuilds swap the tree
    object); implies {!invalidate}. *)

val prepare : t -> unit
(** Eagerly refresh the link and node entries of every current tree edge
    (one bounded search each) and compact the path arenas. *)

val link_lookup : t -> int -> entry option
(** Detour for the branch below edge [eid] should [eid] fail.  [None] when
    the branch is unprotectable (no surviving connection) or [eid] is not
    a tree edge.  Refreshes the entry first if stale. *)

val node_lookup : t -> int -> entry option
(** Detour for the branch below edge [eid] should the edge's {e upstream
    endpoint} fail.  [None] also when that endpoint is the source. *)

val link_rd : t -> int -> float
(** Raw array read of the link entry's recovery distance ([infinity] when
    absent) — no staleness check; only meaningful after {!prepare} with no
    intervening mutation.  This is the O(1) hot path the bench measures. *)

val link_merge : t -> int -> int
(** Raw array read of the link entry's merge node ([-1] no detour, [-2]
    not a tree edge); same freshness contract as {!link_rd}. *)

val tree : t -> Tree.t

val stats : t -> stats
