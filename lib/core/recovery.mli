(** Service restoration after a persistent failure (§3.1, §4.3.1).

    Two strategies are compared throughout the paper:

    - {b local detour}: the disconnected member re-attaches to the nearest
      on-tree node that still receives data (SMRP's recovery architecture);
    - {b global detour}: the member re-runs the SPF join over the surviving
      network, as PIM/MOSPF do once unicast routing re-converges; the new
      path grafts at the first surviving on-tree node it meets.

    Either way the {b recovery distance} [RD] counts only the delay of the
    links newly brought into the tree (the [RD_D = 2] example of §3.1). *)

type detour = {
  member : int;
  merge : int;  (** Surviving on-tree node where service is re-joined. *)
  path_nodes : int list;  (** New links only: [member ... merge]. *)
  path_edges : int list;
  recovery_distance : float;  (** [RD_R]: delay over [path_edges]. *)
  new_total_delay : float;  (** End-to-end delay after restoration. *)
}

val local_detour :
  ?ws:Smrp_graph.Dijkstra.workspace -> Tree.t -> Failure.t -> member:int -> detour option
(** Shortest connection from the receiver to any surviving on-tree node over
    the surviving network.  [None] if the receiver is isolated.  A receiver
    that still gets data receives the trivial detour ([merge = member],
    [recovery_distance = 0]).  [member] need not currently be subscribed —
    staged repair ({!Session.fail}) re-attaches receivers one at a time. *)

val global_detour :
  ?ws:Smrp_graph.Dijkstra.workspace -> Tree.t -> Failure.t -> member:int -> detour option
(** SPF re-join over the surviving network. *)

val surviving_tree : Tree.t -> Failure.t -> Tree.t
(** A fresh tree over the same graph containing exactly the structure (and
    members) that still receives data under the failure — the starting point
    for staged repair. *)
