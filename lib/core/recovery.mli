(** Service restoration after a persistent failure (§3.1, §4.3.1).

    Two strategies are compared throughout the paper:

    - {b local detour}: the disconnected member re-attaches to the nearest
      on-tree node that still receives data (SMRP's recovery architecture);
    - {b global detour}: the member re-runs the SPF join over the surviving
      network, as PIM/MOSPF do once unicast routing re-converges; the new
      path grafts at the first surviving on-tree node it meets.

    Either way the {b recovery distance} [RD] counts only the delay of the
    links newly brought into the tree (the [RD_D = 2] example of §3.1). *)

type detour = {
  member : int;
  merge : int;  (** Surviving on-tree node where service is re-joined. *)
  path_nodes : int list;  (** New links only: [member ... merge]. *)
  path_edges : int list;
  recovery_distance : float;  (** [RD_R]: delay over [path_edges]. *)
  new_total_delay : float;  (** End-to-end delay after restoration. *)
}

val local_detour :
  ?ws:Smrp_graph.Dijkstra.workspace -> Tree.t -> Failure.t -> member:int -> detour option
(** Shortest connection from the receiver to any surviving on-tree node over
    the surviving network.  [None] if the receiver is isolated.  A receiver
    that still gets data receives the trivial detour ([merge = member],
    [recovery_distance = 0]).  [member] need not currently be subscribed —
    staged repair ({!Session.fail}) re-attaches receivers one at a time. *)

val global_detour :
  ?ws:Smrp_graph.Dijkstra.workspace -> Tree.t -> Failure.t -> member:int -> detour option
(** SPF re-join over the surviving network. *)

val branch_detour :
  ?ws:Smrp_graph.Dijkstra.workspace ->
  Tree.t ->
  Failure.t ->
  root:int ->
  eligible:(int -> bool) ->
  detour option
(** Re-attachment path of a whole orphaned subtree: the shortest connection
    from the subtree's [root] to any [eligible] merge target, whose interior
    is strictly off-tree (footnote-4 semantics, so the merge point is the
    true merge point).  [eligible] marks merge targets (on-tree, outside
    the orphaned region, surviving the post-failure pruning — the caller
    supplies this); on-tree nodes that are not eligible — the orphaned
    region included — are neither traversed nor merged into.  Ties on recovery
    distance resolve to the smallest merge id, as in {!local_detour}.  The
    result's [member] field carries [root].

    This is both the computation behind the {!Protect} tables and the
    search-based oracle the fuzz harness compares those tables against. *)

val surviving_tree : Tree.t -> Failure.t -> Tree.t
(** A fresh tree over the same graph containing exactly the structure (and
    members) that still receives data under the failure — the starting point
    for staged repair. *)
