module Dijkstra = Smrp_graph.Dijkstra

let attach_path ?failure ?ws t nr =
  if Tree.is_on_tree t nr then ([ nr ], [])
  else begin
    let g = Tree.graph t in
    (* No filters when there is no failure: the search then takes
       Dijkstra's unfiltered fast path. *)
    let path =
      match failure with
      | None -> Dijkstra.shortest_path ?workspace:ws g ~src:nr ~dst:(Tree.source t)
      | Some f ->
          Dijkstra.shortest_path
            ~node_ok:(fun v -> Failure.node_ok f v)
            ~edge_ok:(fun e -> Failure.edge_ok g f e)
            ?workspace:ws g ~src:nr ~dst:(Tree.source t)
    in
    match path with
    | None -> invalid_arg "Spf.attach_path: source unreachable"
    | Some (_, nodes, edges) ->
        (* The join travels nr → source and grafts at the first on-tree node
           it meets; the graft path runs from that merge node back to nr.
           [nodes] is nr..S with [edges] aligned pairwise. *)
        let rec walk nodes edges acc_nodes acc_edges =
          match (nodes, edges) with
          | v :: _, _ when Tree.is_on_tree t v -> (v :: acc_nodes, acc_edges)
          | v :: rest, e :: es -> walk rest es (v :: acc_nodes) (e :: acc_edges)
          | _ -> invalid_arg "Spf.attach_path: no on-tree node on the path"
        in
        walk nodes edges [] []
  end

let join ?failure ?ws t nr =
  if Tree.is_member t nr then invalid_arg "Spf.join: already a member";
  (match attach_path ?failure ?ws t nr with
  | [ _ ], [] -> ()
  | nodes, edges -> Tree.graft t ~nodes ~edges);
  Tree.add_member t nr

let leave t m = Tree.remove_member t m

let build ?ws g ~source ~members =
  let ws =
    match ws with
    | Some ws -> ws
    | None -> Dijkstra.workspace ~capacity:(Smrp_graph.Graph.node_count g) ()
  in
  let t = Tree.create g ~source in
  List.iter (join ~ws t) members;
  t
