module Graph = Smrp_graph.Graph
module Dijkstra = Smrp_graph.Dijkstra

let candidates ?ws t ~joiner =
  let g = Tree.graph t in
  let collect acc (nb, joining_edge) =
    if Tree.is_on_tree t nb then
      (* The neighbour itself answers immediately. *)
      let e = Graph.edge g joining_edge in
      let attach_delay = e.Graph.delay in
      {
        Smrp.merge = nb;
        attach_nodes = [ nb; joiner ];
        attach_edges = [ joining_edge ];
        attach_delay;
        total_delay = attach_delay +. Tree.delay_to_source t nb;
        shr = Tree.shr t nb;
      }
      :: acc
    else begin
      match Dijkstra.shortest_path ?workspace:ws g ~src:nb ~dst:(Tree.source t) with
      | None -> acc
      | Some (_, nodes, edges) ->
          (* Forward along nb's unicast path until the first on-tree node. *)
          let rec walk nodes edges acc_nodes acc_edges =
            match (nodes, edges) with
            | v :: _, _ when Tree.is_on_tree t v -> Some (v, v :: acc_nodes, acc_edges)
            | v :: rest, e :: es -> walk rest es (v :: acc_nodes) (e :: acc_edges)
            | _ -> None
          in
          (match walk nodes edges [ joiner ] [ joining_edge ] with
          | Some (merge, attach_nodes, attach_edges)
            when not (List.mem joiner (List.tl (List.rev attach_nodes))) ->
              (* Reject answers whose relay path loops back through the
                 joiner itself. *)
              let attach_delay = Smrp_graph.Paths.delay_of_edges g attach_edges in
              {
                Smrp.merge;
                attach_nodes;
                attach_edges;
                attach_delay;
                total_delay = attach_delay +. Tree.delay_to_source t merge;
                shr = Tree.shr t merge;
              }
              :: acc
          | _ -> acc)
    end
  in
  let all = List.fold_left collect [] (Graph.neighbors g joiner) in
  (* Deduplicate by merge node, keeping the lowest-delay connection. *)
  let best = Hashtbl.create 8 in
  List.iter
    (fun c ->
      match Hashtbl.find_opt best c.Smrp.merge with
      | Some c' when c'.Smrp.attach_delay <= c.Smrp.attach_delay -> ()
      | _ -> Hashtbl.replace best c.Smrp.merge c)
    all;
  Hashtbl.fold (fun _ c acc -> c :: acc) best []
  |> List.sort (fun a b -> compare a.Smrp.merge b.Smrp.merge)

let join ?d_thresh ?ws t nr =
  if Tree.is_member t nr then invalid_arg "Query.join: already a member";
  if Tree.is_on_tree t nr then Tree.add_member t nr
  else begin
    match Smrp.spf_distance ?ws t nr with
    | None -> invalid_arg "Query.join: source unreachable"
    | Some spf_dist -> begin
        match Smrp.select ?d_thresh ~spf_distance:spf_dist (candidates ?ws t ~joiner:nr) with
        | Some c ->
            Tree.graft t ~nodes:c.Smrp.attach_nodes ~edges:c.Smrp.attach_edges;
            Tree.add_member t nr
        | None -> Spf.join ?ws t nr
      end
  end

let build ?d_thresh ?ws g ~source ~members =
  let ws =
    match ws with
    | Some ws -> ws
    | None -> Dijkstra.workspace ~capacity:(Graph.node_count g) ()
  in
  let t = Tree.create g ~source in
  List.iter (join ?d_thresh ~ws t) members;
  t
