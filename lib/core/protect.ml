(* Precomputed local-detour protection tables (Bhosle & Gonzalez style).

   For every tree edge [e] (child side [c]) the table holds the {e branch
   detour} that re-attaches the subtree below [e] should [e] fail — and,
   keyed by the same edge id, the detour that re-attaches that subtree
   should the edge's {e upstream endpoint} fail (node protection; the
   upstream node must not be the source).  Entries live in flat arrays
   keyed by CSR edge id: merge node, recovery distance, and an offset/
   length pair into shared path arenas, so answering "where does this
   branch go if its uplink dies?" is a handful of array reads instead of a
   candidate search.

   Invalidation is deliberately wholesale: any tree mutation can change
   any entry's optimum (a new member anywhere adds merge targets), so
   mutations bump a version counter in O(1) and entries refresh lazily on
   lookup — or eagerly via [prepare], which is what {!Session} runs after
   each repair so that the next failure hits only fresh entries.  A lookup
   against a fresh entry allocates nothing until the path is decoded. *)

module Graph = Smrp_graph.Graph
module Dijkstra = Smrp_graph.Dijkstra

type stats = { lookups : int; recomputes : int }

type t = {
  mutable tree : Tree.t;
  n : int;
  m : int;
  ws : Dijkstra.workspace;
  (* Euler intervals of the current tree for O(1) subtree membership:
     [x] is in the subtree of [c] iff [tin.(c) <= tin.(x) < tout.(c)].
     Off-tree nodes carry [tin = -1]. *)
  tin : int array;
  tout : int array;
  mutable euler_version : int;
  mutable version : int; (* bumped by [invalidate] *)
  (* Link protection, keyed by tree-edge id. *)
  link_version : int array;
  link_merge : int array; (* -1 no detour, -2 not a tree edge *)
  link_rd : float array;
  link_off : int array;
  link_len : int array; (* path edge count *)
  (* Node protection (upstream endpoint of the keyed edge fails). *)
  node_version : int array;
  node_merge : int array; (* -2 also when the upstream endpoint is the source *)
  node_rd : float array;
  node_off : int array;
  node_len : int array;
  (* Shared path arenas: entry [i] stores nodes [off..off+len] (root first,
     merge last) and edges [off..off+len-1]. *)
  mutable arena_nodes : int array;
  mutable arena_edges : int array;
  mutable arena_used : int;
  mutable lookups : int;
  mutable recomputes : int;
}

type entry = {
  root : int;
  merge : int;
  recovery_distance : float;
  path_nodes : int list; (* root ... merge *)
  path_edges : int list;
}

let create tree =
  let g = Tree.graph tree in
  let n = Graph.node_count g in
  let m = Graph.edge_count g in
  {
    tree;
    n;
    m;
    ws = Dijkstra.workspace ~capacity:n ();
    tin = Array.make n (-1);
    tout = Array.make n (-1);
    euler_version = -1;
    version = 0;
    link_version = Array.make m (-1);
    link_merge = Array.make m (-2);
    link_rd = Array.make m infinity;
    link_off = Array.make m 0;
    link_len = Array.make m 0;
    node_version = Array.make m (-1);
    node_merge = Array.make m (-2);
    node_rd = Array.make m infinity;
    node_off = Array.make m 0;
    node_len = Array.make m 0;
    arena_nodes = Array.make (max 16 n) 0;
    arena_edges = Array.make (max 16 n) 0;
    arena_used = 0;
    lookups = 0;
    recomputes = 0;
  }

let invalidate t = t.version <- t.version + 1

let retarget t tree =
  t.tree <- tree;
  invalidate t

let stats (t : t) : stats = { lookups = t.lookups; recomputes = t.recomputes }

(* -- Euler tour ---------------------------------------------------------- *)

let refresh_euler t =
  if t.euler_version <> t.version then begin
    Array.fill t.tin 0 t.n (-1);
    let clock = ref 0 in
    (* Iterative DFS over the tree's child lists. *)
    let rec enter v =
      t.tin.(v) <- !clock;
      incr clock;
      List.iter enter (Tree.children t.tree v);
      t.tout.(v) <- !clock
    in
    enter (Tree.source t.tree);
    t.euler_version <- t.version
  end

let in_subtree t ~root x =
  let ti = t.tin.(x) in
  ti >= 0 && ti >= t.tin.(root) && ti < t.tout.(root)

(* -- Entry recomputation ------------------------------------------------- *)

let grow_arena t need =
  if t.arena_used + need > Array.length t.arena_nodes then begin
    let cap = max (2 * Array.length t.arena_nodes) (t.arena_used + need) in
    let nodes = Array.make cap 0 and edges = Array.make cap 0 in
    Array.blit t.arena_nodes 0 nodes 0 t.arena_used;
    Array.blit t.arena_edges 0 edges 0 t.arena_used;
    t.arena_nodes <- nodes;
    t.arena_edges <- edges
  end

(* The merge-eligibility predicate shared with the oracle: on-tree, outside
   the orphaned region, alive, and still on the tree after the post-failure
   pruning — i.e. the source, or a node with surviving members below it.
   [cut] is the root of the orphaned region (the branch root for link
   protection, the failed node for node protection); ancestors of [cut]
   lose its [N_R] contribution. *)
let eligible_fn t f ~cut =
  let tree = t.tree in
  let source = Tree.source tree in
  let cut_members = Tree.subtree_members tree cut in
  fun v ->
    Tree.is_on_tree tree v
    && (not (in_subtree t ~root:cut v))
    && Failure.node_ok f v
    &&
    (v = source
    ||
    let nr = Tree.subtree_members tree v in
    let nr = if in_subtree t ~root:v cut then nr - cut_members else nr in
    nr > 0)

(* Compute one entry into the flat arrays.  [cut] delimits the orphaned
   region; [root] is the branch being re-homed (equal to [cut] for link
   protection, a child of it for node protection). *)
let compute_entry t f ~root ~cut ~merge_a ~rd_a ~off_a ~len_a ~ver_a ~eid =
  t.recomputes <- t.recomputes + 1;
  refresh_euler t;
  let eligible = eligible_fn t f ~cut in
  (match Recovery.branch_detour ~ws:t.ws t.tree f ~root ~eligible with
  | None ->
      merge_a.(eid) <- -1;
      rd_a.(eid) <- infinity;
      off_a.(eid) <- 0;
      len_a.(eid) <- 0
  | Some d ->
      let len = List.length d.Recovery.path_edges in
      grow_arena t (len + 1);
      let off = t.arena_used in
      List.iteri (fun i v -> t.arena_nodes.(off + i) <- v) d.Recovery.path_nodes;
      List.iteri (fun i e -> t.arena_edges.(off + i) <- e) d.Recovery.path_edges;
      t.arena_used <- off + len + 1;
      merge_a.(eid) <- d.Recovery.merge;
      rd_a.(eid) <- d.Recovery.recovery_distance;
      off_a.(eid) <- off;
      len_a.(eid) <- len);
  ver_a.(eid) <- t.version

(* The downstream endpoint of a tree edge, [-1] when the edge is not on
   the tree. *)
let child_of t eid =
  let e = Graph.edge (Tree.graph t.tree) eid in
  if Tree.parent_edge_id t.tree e.Graph.u = eid then e.Graph.u
  else if Tree.parent_edge_id t.tree e.Graph.v = eid then e.Graph.v
  else -1

let refresh_link t eid =
  let c = child_of t eid in
  if c < 0 then begin
    t.link_merge.(eid) <- -2;
    t.link_version.(eid) <- t.version
  end
  else
    compute_entry t (Failure.Link eid) ~root:c ~cut:c ~merge_a:t.link_merge ~rd_a:t.link_rd
      ~off_a:t.link_off ~len_a:t.link_len ~ver_a:t.link_version ~eid

let refresh_node t eid =
  let c = child_of t eid in
  let p = if c < 0 then -1 else Tree.parent_id t.tree c in
  if c < 0 || p < 0 || p = Tree.source t.tree then begin
    t.node_merge.(eid) <- -2;
    t.node_version.(eid) <- t.version
  end
  else
    compute_entry t (Failure.Node p) ~root:c ~cut:p ~merge_a:t.node_merge ~rd_a:t.node_rd
      ~off_a:t.node_off ~len_a:t.node_len ~ver_a:t.node_version ~eid

(* -- Queries ------------------------------------------------------------- *)

let check_eid t eid name =
  if eid < 0 || eid >= t.m then
    invalid_arg (Printf.sprintf "Protect.%s: bad edge id %d" name eid)

let decode t ~merge_a ~rd_a ~off_a ~len_a eid =
  let merge = merge_a.(eid) in
  if merge < 0 then None
  else begin
    let off = off_a.(eid) and len = len_a.(eid) in
    let nodes = ref [] and edges = ref [] in
    for i = off + len downto off do
      nodes := t.arena_nodes.(i) :: !nodes
    done;
    for i = off + len - 1 downto off do
      edges := t.arena_edges.(i) :: !edges
    done;
    Some
      {
        root = t.arena_nodes.(off);
        merge;
        recovery_distance = rd_a.(eid);
        path_nodes = !nodes;
        path_edges = !edges;
      }
  end

let link_lookup t eid =
  check_eid t eid "link_lookup";
  t.lookups <- t.lookups + 1;
  if t.link_version.(eid) <> t.version then refresh_link t eid;
  decode t ~merge_a:t.link_merge ~rd_a:t.link_rd ~off_a:t.link_off ~len_a:t.link_len eid

let node_lookup t eid =
  check_eid t eid "node_lookup";
  t.lookups <- t.lookups + 1;
  if t.node_version.(eid) <> t.version then refresh_node t eid;
  decode t ~merge_a:t.node_merge ~rd_a:t.node_rd ~off_a:t.node_off ~len_a:t.node_len eid

(* Raw hot-path reads for benchmarking the lookup itself: entry must be
   fresh (i.e. after [prepare] with no intervening mutation). *)
let link_rd t eid = t.link_rd.(eid)

let link_merge t eid = t.link_merge.(eid)

let prepare t =
  refresh_euler t;
  (* Compact the arenas: everything is about to be rewritten. *)
  t.arena_used <- 0;
  let tree = t.tree in
  List.iter
    (fun eid ->
      refresh_link t eid;
      refresh_node t eid)
    (Tree.tree_edges tree)

let tree t = t.tree
