module Dijkstra = Smrp_graph.Dijkstra

type candidate = {
  merge : int;
  attach_nodes : int list;
  attach_edges : int list;
  attach_delay : float;
  total_delay : float;
  shr : int;
}

let default_d_thresh = 0.3

(* The candidate search of §3.2.1: a Dijkstra from the joiner that treats
   admissible on-tree nodes as absorbing.  Returns the settled result plus
   the admissibility predicate; callers must consume the result before the
   next run on the same workspace. *)
let candidate_search ?exclude ?failure ?ws t ~joiner =
  let g = Tree.graph t in
  let alive v = match failure with None -> true | Some f -> Failure.node_ok f v in
  let excluded v = match exclude with None -> false | Some f -> f v in
  let admissible v = alive v && not (excluded v) in
  let absorb v = Tree.is_on_tree t v && admissible v in
  (* Spans ride the workspace tracer (see Dijkstra.set_trace): the search
     span nests the inner "dijkstra.run" span in the rendered trace. *)
  let tracing =
    match ws with
    | Some ws -> Smrp_obs.Trace.enabled (Dijkstra.workspace_trace ws)
    | None -> false
  in
  let t0 =
    if tracing then Dijkstra.workspace_clock (Option.get ws) () else 0.0
  in
  let result =
    (* Only pass per-edge/per-node filters when something actually filters:
       the unconstrained search takes Dijkstra's absorb-only fast path. *)
    match (failure, exclude) with
    | None, None -> Dijkstra.run ~absorb ?workspace:ws g ~source:joiner
    | _ ->
        let edge_alive e = match failure with None -> true | Some f -> Failure.edge_ok g f e in
        Dijkstra.run ~node_ok:admissible ~edge_ok:edge_alive ~absorb ?workspace:ws g ~source:joiner
  in
  if tracing then begin
    let ws = Option.get ws in
    Smrp_obs.Trace.complete (Dijkstra.workspace_trace ws) ~ts:t0
      ~dur:(Dijkstra.workspace_clock ws () -. t0)
      ~cat:"smrp"
      ~tid:(Domain.self () :> int)
      ~args:[ ("joiner", Smrp_obs.Trace.Int joiner) ]
      "smrp.candidate_search"
  end;
  (result, admissible)

let candidates ?exclude ?failure ?ws t ~joiner =
  let g = Tree.graph t in
  let result, admissible = candidate_search ?exclude ?failure ?ws t ~joiner in
  let absorb v = Tree.is_on_tree t v && admissible v in
  let acc = ref [] in
  for merge = Smrp_graph.Graph.node_count g - 1 downto 0 do
    if merge <> joiner && absorb merge && Dijkstra.reachable result merge then begin
      match (Dijkstra.path_nodes result merge, Dijkstra.path_edges result merge) with
      | Some nodes, Some edges ->
          let attach_delay = Option.get (Dijkstra.distance result merge) in
          let candidate =
            {
              merge;
              (* Dijkstra paths run joiner → merge; grafting wants them
                 merge → joiner. *)
              attach_nodes = List.rev nodes;
              attach_edges = List.rev edges;
              attach_delay;
              total_delay = attach_delay +. Tree.delay_to_source t merge;
              shr = Tree.shr t merge;
            }
          in
          acc := candidate :: !acc
      | _ -> ()
    end
  done;
  !acc

let spf_distance ?failure ?ws t v =
  let g = Tree.graph t in
  let r =
    match failure with
    | None -> Dijkstra.run ?workspace:ws g ~source:v
    | Some f ->
        Dijkstra.run
          ~node_ok:(fun v -> Failure.node_ok f v)
          ~edge_ok:(fun e -> Failure.edge_ok g f e)
          ?workspace:ws g ~source:v
  in
  Dijkstra.distance r (Tree.source t)

let bound_epsilon = 1e-9

let better a b =
  a.shr < b.shr
  || (a.shr = b.shr && a.total_delay < b.total_delay -. bound_epsilon)
  || (a.shr = b.shr && abs_float (a.total_delay -. b.total_delay) <= bound_epsilon && a.merge < b.merge)

let minimum_by le = function
  | [] -> None
  | first :: rest -> Some (List.fold_left (fun best c -> if le c best then c else best) first rest)

let select ?(d_thresh = default_d_thresh) ~spf_distance cands =
  if d_thresh < 0.0 then invalid_arg "Smrp.select: d_thresh must be non-negative";
  let bound = ((1.0 +. d_thresh) *. spf_distance) +. bound_epsilon in
  let bounded = List.filter (fun c -> c.total_delay <= bound) cands in
  match bounded with
  | _ :: _ -> minimum_by better bounded
  | [] ->
      (* No candidate meets the bound: degrade to the lowest-delay
         connection, i.e. SPF behaviour. *)
      minimum_by (fun a b -> a.total_delay < b.total_delay) cands

(* [select] over [candidates], computed directly off the candidate-search
   result: no candidate record or path is materialised for losing merge
   points.  The scan order (ascending merge id) and every comparison —
   including the fallback to the lowest-delay connection when nothing meets
   the bound — replicate the list-based pipeline exactly. *)
let join_where ?(d_thresh = default_d_thresh) ?failure ?ws t nr ~spf_dist =
  if d_thresh < 0.0 then invalid_arg "Smrp.select: d_thresh must be non-negative";
  let n = Smrp_graph.Graph.node_count (Tree.graph t) in
  let result, admissible = candidate_search ?failure ?ws t ~joiner:nr in
  let bound = ((1.0 +. d_thresh) *. spf_dist) +. bound_epsilon in
  let best = ref (-1) and best_delay = ref infinity and best_shr = ref max_int in
  let fallback = ref (-1) and fallback_delay = ref infinity in
  for merge = 0 to n - 1 do
    if
      merge <> nr && Tree.is_on_tree t merge && admissible merge
      && Dijkstra.reachable result merge
    then begin
      let total = Option.get (Dijkstra.distance result merge) +. Tree.delay_to_source t merge in
      if !fallback < 0 || total < !fallback_delay then begin
        fallback := merge;
        fallback_delay := total
      end;
      if total <= bound then begin
        let shr = Tree.shr t merge in
        let is_better =
          !best < 0 || shr < !best_shr
          || (shr = !best_shr && total < !best_delay -. bound_epsilon)
          || (shr = !best_shr && abs_float (total -. !best_delay) <= bound_epsilon && merge < !best)
        in
        if is_better then begin
          best := merge;
          best_delay := total;
          best_shr := shr
        end
      end
    end
  done;
  let winner = if !best >= 0 then !best else !fallback in
  if winner < 0 then invalid_arg "Smrp.join: no connection to the tree";
  (* Dijkstra paths run joiner → merge; grafting wants them merge → joiner. *)
  let nodes = Option.get (Dijkstra.path_nodes result winner) in
  let edges = Option.get (Dijkstra.path_edges result winner) in
  Tree.graft t ~nodes:(List.rev nodes) ~edges:(List.rev edges);
  Tree.add_member t nr

let join ?d_thresh ?failure ?ws ?spf_dist t nr =
  if Tree.is_member t nr then invalid_arg "Smrp.join: already a member";
  if Tree.is_on_tree t nr then Tree.add_member t nr
  else begin
    (* [spf_dist] lets a caller that already maintains the source-rooted
       SPF (e.g. a protection session's incremental Dspf) skip the
       per-join distance search. *)
    match (match spf_dist with Some _ as d -> d | None -> spf_distance ?failure ?ws t nr) with
    | None -> invalid_arg "Smrp.join: source unreachable"
    | Some spf_dist -> join_where ?d_thresh ?failure ?ws t nr ~spf_dist
  end

let leave t m = Tree.remove_member t m

let build ?d_thresh ?ws g ~source ~members =
  let ws =
    match ws with
    | Some ws -> ws
    | None -> Dijkstra.workspace ~capacity:(Smrp_graph.Graph.node_count g) ()
  in
  let t = Tree.create g ~source in
  (* One source-rooted search supplies every member's unicast SPF distance
     up front (the graph is undirected and never mutates), replacing the
     per-join distance search.  Distances are extracted before the first
     join because the joins' searches reuse — and so invalidate — [ws]. *)
  let from_source = Dijkstra.run ~workspace:ws g ~source in
  let spf_dists = List.map (fun m -> Dijkstra.distance from_source m) members in
  List.iter2
    (fun nr spf_dist ->
      if Tree.is_member t nr then invalid_arg "Smrp.join: already a member";
      if Tree.is_on_tree t nr then Tree.add_member t nr
      else
        match spf_dist with
        | None -> invalid_arg "Smrp.join: source unreachable"
        | Some spf_dist -> join_where ?d_thresh ~ws t nr ~spf_dist)
    members spf_dists;
  t
