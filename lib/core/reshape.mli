(** Tree reshaping (§3.2.3).

    A node re-runs path selection with its own subtree discounted and
    switches to the new path when the new merge point is strictly better
    (smaller adjusted SHR, then smaller delay).  Both trigger conditions are
    provided:

    - {b Condition I}: the node's SHR has drifted by more than a threshold
      since the last check (new members were admitted through its upstream
      path) — see {!monitor};
    - {b Condition II}: a periodic sweep, modelled by {!stabilize}. *)

val try_reshape :
  ?d_thresh:float ->
  ?failure:Failure.t ->
  ?ws:Smrp_graph.Dijkstra.workspace ->
  Tree.t ->
  int ->
  bool
(** [try_reshape t r] re-evaluates node [r]'s upstream path; returns whether
    the node switched.  [r] must be on-tree and not the source. *)

type stats = { switches : int; rounds : int }

val stabilize :
  ?d_thresh:float ->
  ?failure:Failure.t ->
  ?ws:Smrp_graph.Dijkstra.workspace ->
  ?max_rounds:int ->
  ?metrics:Smrp_obs.Metrics.t ->
  Tree.t ->
  stats
(** Sweep all non-source on-tree nodes repeatedly (deepest first, so moved
    subtrees settle before their ancestors are reconsidered) until a round
    performs no switch, or [max_rounds] (default 10) is reached.

    Instrumentation is off the hot path unless enabled: with [?metrics],
    counters [reshape.rounds] / [reshape.scans] / [reshape.switches] and
    wall-time sketches [reshape.round_s] / [reshape.stabilize_s] are
    recorded; with a tracer attached to [ws]
    ({!Smrp_graph.Dijkstra.set_trace}), one "reshape.round" span per round
    and one "reshape.stabilize" span per sweep are emitted (cat
    ["reshape"]), nesting the inner candidate-search and Dijkstra spans. *)

(** Condition-I bookkeeping: remembers [SHR^old] per node, as received after
    the last reshaping round. *)
type monitor

val monitor : Tree.t -> monitor

val drifted : monitor -> Tree.t -> threshold:int -> int list
(** Nodes whose current SHR exceeds the recorded [SHR^old] by more than
    [threshold]. *)

val note_reshaped : monitor -> Tree.t -> int -> unit
(** Record the node's current SHR as its new [SHR^old]. *)

val run_condition_i :
  ?d_thresh:float -> ?threshold:int -> ?ws:Smrp_graph.Dijkstra.workspace -> monitor -> Tree.t -> int
(** Trigger {!try_reshape} at every drifted node (refreshing their
    snapshots); returns the number of switches. *)
