module Graph = Smrp_graph.Graph
module Dijkstra = Smrp_graph.Dijkstra

(* The cheapest connection from [joiner] to the current tree: an absorbing
   Dijkstra over link costs.  Delay and cost coincide on the graphs used
   here, so the delay-weighted search doubles as the cost-weighted one. *)
let cheapest_connection ?ws t ~joiner =
  let absorb v = Tree.is_on_tree t v in
  let result = Dijkstra.run ~absorb ?workspace:ws (Tree.graph t) ~source:joiner in
  let best = ref None in
  for v = Graph.node_count (Tree.graph t) - 1 downto 0 do
    if absorb v && v <> joiner && Dijkstra.reachable result v then begin
      let d = Option.get (Dijkstra.distance result v) in
      match !best with Some (bd, _) when bd < d -> () | _ -> best := Some (d, v)
    end
  done;
  match !best with
  | None -> None
  | Some (d, merge) ->
      Some (d, List.rev (Option.get (Dijkstra.path_nodes result merge)),
            List.rev (Option.get (Dijkstra.path_edges result merge)))

let join t nr =
  if Tree.is_member t nr then invalid_arg "Steiner.join: already a member";
  if Tree.is_on_tree t nr then Tree.add_member t nr
  else begin
    match cheapest_connection t ~joiner:nr with
    | None -> invalid_arg "Steiner.join: no connection to the tree"
    | Some (_, nodes, edges) ->
        Tree.graft t ~nodes ~edges;
        Tree.add_member t nr
  end

let leave t m = Tree.remove_member t m

let build g ~source ~members =
  let ws = Dijkstra.workspace ~capacity:(Graph.node_count g) () in
  let t = Tree.create g ~source in
  (* Takahashi–Matsuyama order: always the member closest to the current
     tree next. *)
  let remaining = ref (List.filter (fun m -> not (Tree.is_member t m)) members) in
  while !remaining <> [] do
    let scored =
      List.filter_map
        (fun m ->
          if Tree.is_on_tree t m then Some (0.0, m)
          else
            Option.map (fun (d, _, _) -> (d, m)) (cheapest_connection ~ws t ~joiner:m))
        !remaining
    in
    match List.sort compare scored with
    | [] -> invalid_arg "Steiner.build: some member cannot reach the tree"
    | (_, next) :: _ ->
        join t next;
        remaining := List.filter (fun m -> m <> next) !remaining
  done;
  t
