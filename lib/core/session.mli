(** High-level façade: one multicast session under a chosen protocol, with
    membership churn, reshaping and failure repair.  This is the API the
    examples and the CLI drive; experiments use the lower-level modules
    directly. *)

type protocol =
  | Spf  (** The SPF/PIM-style baseline. *)
  | Smrp of { d_thresh : float }
  | Smrp_query of { d_thresh : float }  (** SMRP under the §3.3.1 query scheme. *)

type repair = {
  detour : Recovery.detour;
  strategy : [ `Local | `Global | `Protected ];
      (** [`Protected]: answered from the precomputed {!Protect} tables —
          the detour re-attached a whole orphaned branch ([detour.member]
          is the branch root), not a single member. *)
}

type event =
  | Joined of int
  | Left of int
  | Reshaped of { node : int; switches : int }
  | Failed of Failure.t
  | Repaired of repair
  | Lost of int  (** Member permanently isolated by the failure. *)

type t

val create : ?protection:bool -> Smrp_graph.Graph.t -> source:int -> protocol:protocol -> t
(** [~protection:true] (default false) arms the precomputed-protection
    layer: the session maintains {!Protect} branch-detour tables (refreshed
    after every repair, invalidated in O(1) by membership churn) and an
    incremental source SPF ({!Smrp_graph.Dspf}) that replaces the per-join
    unicast distance search.  Under SMRP protocols, a single link or
    non-source node failure is then repaired by table lookup — each
    orphaned branch re-attaches wholesale along its precomputed detour
    (logged as one [`Protected] repair per branch) — with automatic
    fallback to the staged search repair whenever the failure shape or a
    stale precondition rules the tables out.  SPF-protocol sessions accept
    the flag but always use the search path. *)

val protection_enabled : t -> bool

val protection_stats : t -> Protect.stats option
(** Lookup/recompute counters of the protection tables, when armed. *)

val tree : t -> Tree.t

val protocol : t -> protocol

val events : t -> event list
(** Event log, oldest first. *)

val active_failure : t -> Failure.t option
(** The composition of every failure injected so far (persistent failures
    outlive repairs); joins and repairs route around all of them. *)

val join : t -> int -> unit

val leave : t -> int -> unit

val reshape_all : t -> int
(** Condition-II sweep; returns the number of path switches. *)

val fail : t -> Failure.t -> repair list
(** Apply a persistent failure and repair the session.  The failure stays
    active for the rest of the session: later joins and later repairs avoid
    it too.

    Under SMRP protocols each disconnected member takes its local detour;
    under SPF it re-joins by global detour, as PIM would after unicast
    reconvergence.  The tree is rebuilt: surviving structure is kept,
    disconnected members re-attach one by one (closest detour first, so an
    early recovery can serve as a later member's merge point, as in
    Fig. 2(b)).  Members that cannot reach any surviving node are dropped
    and logged as {!Lost}. *)
