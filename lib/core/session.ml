module Graph = Smrp_graph.Graph
module Dspf = Smrp_graph.Dspf

type protocol = Spf | Smrp of { d_thresh : float } | Smrp_query of { d_thresh : float }

type repair = { detour : Recovery.detour; strategy : [ `Local | `Global | `Protected ] }

type event =
  | Joined of int
  | Left of int
  | Reshaped of { node : int; switches : int }
  | Failed of Failure.t
  | Repaired of repair
  | Lost of int

type t = {
  graph : Smrp_graph.Graph.t;
  protocol : protocol;
  mutable tree : Tree.t;
  mutable active_failures : Failure.t list; (* persistent, newest first *)
  mutable events : event list; (* newest first *)
  (* Protection mode: precomputed branch detours answer the recovery query
     ([protection]), and the incrementally-maintained source SPF supplies
     join distances ([spf]); both [None] when protection is off. *)
  protection : Protect.t option;
  spf : Dspf.t option;
}

let create ?(protection = false) graph ~source ~protocol =
  let tree = Tree.create graph ~source in
  {
    graph;
    protocol;
    tree;
    active_failures = [];
    events = [];
    protection = (if protection then Some (Protect.create tree) else None);
    spf = (if protection then Some (Dspf.create graph ~source) else None);
  }

let active_failure t =
  match t.active_failures with [] -> None | fs -> Some (Failure.compose fs)

let tree t = t.tree

let protocol t = t.protocol

let protection_enabled t = Option.is_some t.protection

let protection_stats t = Option.map Protect.stats t.protection

let events t = List.rev t.events

let log t e = t.events <- e :: t.events

let invalidate_protection t = Option.iter Protect.invalidate t.protection

let join t nr =
  let failure = active_failure t in
  (* The incremental SPF already knows the joiner's unicast distance under
     every active failure — protection sessions skip the per-join distance
     search.  [Dspf] returning [None] means the source is unreachable;
     passing nothing lets [Smrp.join] re-derive and raise identically. *)
  let spf_dist =
    match t.spf with
    | Some sp when not (Tree.is_on_tree t.tree nr) -> Dspf.distance sp nr
    | _ -> None
  in
  (match t.protocol with
  | Spf -> Spf.join ?failure t.tree nr
  | Smrp { d_thresh } -> Smrp.join ~d_thresh ?failure ?spf_dist t.tree nr
  | Smrp_query { d_thresh } ->
      (* The query scheme has no failure-aware variant; under active
         failures fall back to the failure-aware SMRP selection. *)
      (match failure with
      | None -> Query.join ~d_thresh t.tree nr
      | Some _ -> Smrp.join ~d_thresh ?failure ?spf_dist t.tree nr));
  invalidate_protection t;
  log t (Joined nr)

let leave t m =
  Tree.remove_member t.tree m;
  invalidate_protection t;
  log t (Left m)

let reshape_all t =
  match t.protocol with
  | Spf -> 0
  | Smrp { d_thresh } | Smrp_query { d_thresh } ->
      let stats = Reshape.stabilize ~d_thresh ?failure:(active_failure t) t.tree in
      if stats.Reshape.switches > 0 then begin
        invalidate_protection t;
        log t (Reshaped { node = Tree.source t.tree; switches = stats.Reshape.switches })
      end;
      stats.Reshape.switches

let rec sync_spf sp = function
  | Failure.Link e -> Dspf.fail_edge sp e
  | Failure.Node v -> Dspf.fail_node sp v
  | Failure.Multi fs -> List.iter (sync_spf sp) fs

(* -- Precomputed-protection repair --------------------------------------- *)

(* Execute the table-driven repair on a copy of the tree: detach every
   orphaned branch, drop dead members, then re-attach each branch along its
   precomputed detour, closest first.  All-or-nothing: any precondition
   miss discards the copy and returns [None] so the caller falls back to
   the search path (the copy guarantees the session tree is untouched). *)
let apply_protected t p ~dead ~entries =
  let lookups =
    List.map
      (fun (eid, kind) ->
        match kind with `Link -> Protect.link_lookup p eid | `Node -> Protect.node_lookup p eid)
      entries
  in
  if List.exists Option.is_none lookups then None
  else begin
    let entries =
      List.sort
        (fun a b ->
          compare
            (a.Protect.recovery_distance, a.Protect.root)
            (b.Protect.recovery_distance, b.Protect.root))
        (List.map Option.get lookups)
    in
    let fresh = Tree.copy t.tree in
    try
      let branches =
        List.map (fun e -> (e, fst (Tree.detach_branch fresh ~node:e.Protect.root))) entries
      in
      List.iter (fun v -> Tree.remove_member fresh v) dead;
      let pending = ref (List.map snd branches) in
      let repairs =
        List.map
          (fun (entry, br) ->
            pending := List.filter (fun b -> b != br) !pending;
            let in_pending v = List.exists (fun b -> Tree.branch_contains b v) !pending in
            (* The precomputed path must still be valid in the current
               state: a genuinely on-tree merge (detached branch nodes
               still read on-tree, so pending branches are checked
               explicitly) and strictly off-tree interiors. *)
            (match List.rev entry.Protect.path_nodes with
            | merge :: rest ->
                if
                  (not (Tree.is_on_tree fresh merge))
                  || Tree.branch_contains br merge || in_pending merge
                then raise Exit;
                let rec interiors = function
                  | [] | [ _ ] -> () (* last node is the branch root *)
                  | v :: tl ->
                      if Tree.is_on_tree fresh v || in_pending v then raise Exit;
                      interiors tl
                in
                interiors rest
            | [] -> raise Exit);
            let new_total_delay =
              entry.Protect.recovery_distance +. Tree.delay_to_source fresh entry.Protect.merge
            in
            Tree.attach_branch fresh br
              ~nodes:(List.rev entry.Protect.path_nodes)
              ~edges:(List.rev entry.Protect.path_edges);
            {
              detour =
                {
                  Recovery.member = entry.Protect.root;
                  merge = entry.Protect.merge;
                  path_nodes = entry.Protect.path_nodes;
                  path_edges = entry.Protect.path_edges;
                  recovery_distance = entry.Protect.recovery_distance;
                  new_total_delay;
                };
              strategy = `Protected;
            })
          branches
      in
      Some (repairs, fresh)
    with Exit | Invalid_argument _ -> None
  end

(* The table-driven fast path applies when the new failure is the only
   active one and orphans whole subtrees of the current tree: a single
   link on a tree edge, or a single non-source node.  Anything else —
   correlated failures, a second failure arriving after the first, source
   failures — falls back to the staged search repair. *)
let try_protected t p f =
  match t.active_failures with
  | [ _ ] -> (
      let tree = t.tree in
      match f with
      | Failure.Link eid ->
          let e = Graph.edge t.graph eid in
          let c =
            if Tree.parent_edge_id tree e.Graph.u = eid then e.Graph.u
            else if Tree.parent_edge_id tree e.Graph.v = eid then e.Graph.v
            else -1
          in
          if c < 0 then Some ([], [], t.tree) (* off-tree link: nothing to repair *)
          else
            Option.map
              (fun (repairs, fresh) -> (repairs, [], fresh))
              (apply_protected t p ~dead:[] ~entries:[ (eid, `Link) ])
      | Failure.Node v ->
          if v = Tree.source tree then None
          else if not (Tree.is_on_tree tree v) then Some ([], [], t.tree)
          else begin
            let entries =
              List.map (fun c -> (Tree.parent_edge_id tree c, `Node)) (Tree.children tree v)
            in
            let dead = if Tree.is_member tree v then [ v ] else [] in
            Option.map
              (fun (repairs, fresh) -> (repairs, dead, fresh))
              (apply_protected t p ~dead ~entries)
          end
      | Failure.Multi _ -> None)
  | _ -> None

let refresh_protection t =
  match t.protection with
  | Some p ->
      Protect.retarget p t.tree;
      Protect.prepare p
  | None -> ()

let fail t f =
  log t (Failed f);
  t.active_failures <- f :: t.active_failures;
  Option.iter (fun sp -> sync_spf sp f) t.spf;
  (* Detours must avoid every failure still active, not just the new one. *)
  let f_all = Option.get (active_failure t) in
  let protected_result =
    match (t.protection, t.protocol) with
    | Some p, (Smrp _ | Smrp_query _) -> try_protected t p f
    | _ -> None
  in
  match protected_result with
  | Some (repairs, dead, fresh) ->
      List.iter (fun m -> log t (Lost m)) dead;
      List.iter (fun r -> log t (Repaired r)) repairs;
      t.tree <- fresh;
      refresh_protection t;
      repairs
  | None ->
      let f = f_all in
      let strategy = match t.protocol with Spf -> `Global | Smrp _ | Smrp_query _ -> `Local in
      let affected = Failure.affected_members t.tree f in
      let dead = List.filter (fun m -> not (Failure.node_ok f m)) (Tree.members t.tree) in
      let fresh = Recovery.surviving_tree t.tree f in
      (* Closest-detour-first repair: each re-attachment can serve as a merge
         point for the next member (Fig. 2(b)), so detours are recomputed after
         every graft. *)
      let rec repair pending repairs =
        let detour_of m =
          match strategy with
          | `Local -> Recovery.local_detour fresh f ~member:m
          | `Global -> Recovery.global_detour fresh f ~member:m
        in
        let options =
          List.filter_map (fun m -> Option.map (fun d -> (m, d)) (detour_of m)) pending
        in
        match
          List.sort
            (fun (_, a) (_, b) ->
              compare
                (a.Recovery.recovery_distance, a.Recovery.member)
                (b.Recovery.recovery_distance, b.Recovery.member))
            options
        with
        | [] ->
            List.iter (fun m -> log t (Lost m)) pending;
            List.rev repairs
        | (m, d) :: _ ->
            (match d.Recovery.path_edges with
            | [] -> Tree.add_member fresh m (* merge node is the member itself *)
            | _ ->
                Tree.graft fresh
                  ~nodes:(List.rev d.Recovery.path_nodes)
                  ~edges:(List.rev d.Recovery.path_edges);
                Tree.add_member fresh m);
            let r = { detour = d; strategy = (strategy :> [ `Local | `Global | `Protected ]) } in
            log t (Repaired r);
            repair (List.filter (fun m' -> m' <> m) pending) (r :: repairs)
      in
      List.iter (fun m -> log t (Lost m)) dead;
      let repairs = repair affected [] in
      t.tree <- fresh;
      refresh_protection t;
      repairs
