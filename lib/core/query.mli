(** The partial-topology query scheme (§3.3.1).

    When a joining member lacks global topology knowledge, it asks each of
    its physical neighbours to forward a query along the neighbour's unicast
    shortest path towards the source; the first on-tree node met answers
    with its SHR.  The member then applies the usual selection criterion to
    this (possibly incomplete) candidate set, so the chosen path may be
    sub-optimal — the degradation quantified by the [query] ablation
    benchmark. *)

val candidates :
  ?ws:Smrp_graph.Dijkstra.workspace -> Tree.t -> joiner:int -> Smrp.candidate list
(** One candidate per answering on-tree node (deduplicated, keeping the
    lowest-delay connection), ordered by merge-node id. *)

val join : ?d_thresh:float -> ?ws:Smrp_graph.Dijkstra.workspace -> Tree.t -> int -> unit
(** SMRP join restricted to query-discovered candidates.  Falls back to the
    SPF join when no query is answered. *)

val build :
  ?d_thresh:float ->
  ?ws:Smrp_graph.Dijkstra.workspace ->
  Smrp_graph.Graph.t ->
  source:int ->
  members:int list ->
  Tree.t
