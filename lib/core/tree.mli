(** The shared multicast tree and its SMRP bookkeeping (§3.2.1).

    A tree lives over a fixed {!Smrp_graph.Graph.t} and is rooted at the
    multicast source.  Every on-tree node [R] carries the state the paper
    keeps at routers:

    - its upstream node [R_u] (parent) and the connecting link;
    - [N_R], the number of members in the subtree rooted at [R];
    - its delay to the source along the tree.

    [SHR(S,R) = Σ N_{R'} over the on-tree path S→R excluding S] (Eq. 2) is
    derived on demand by walking the upstream path, exactly as routers
    accumulate it hop by hop.

    Nodes can be *members* (receivers) and/or *relays*; interior relays with
    no remaining members downstream are pruned eagerly, mirroring the
    [Leave_Req] processing of §3.2.2. *)

type t

val create : Smrp_graph.Graph.t -> source:int -> t
(** A tree containing only the source. *)

val graph : t -> Smrp_graph.Graph.t

val source : t -> int

val copy : t -> t
(** Independent deep copy (the underlying graph is shared).  Mutating the
    copy never affects the original — the building block for benchmark
    closures and differential tests that replay the same tree repeatedly. *)

val is_on_tree : t -> int -> bool

val is_member : t -> int -> bool

val member_count : t -> int

val members : t -> int list
(** In increasing node order. *)

val on_tree_nodes : t -> int list
(** In increasing node order; always includes the source. *)

val parent : t -> int -> int option
(** Upstream node; [None] for the source. *)

val parent_id : t -> int -> int
(** Upstream node as a raw id, [-1] for the source or an off-tree node —
    the option-free variant for hot parent walks. *)

val parent_edge_id : t -> int -> int
(** Upstream edge id, [-1] when there is none. *)

val parent_edge : t -> int -> int option

val children : t -> int -> int list

val subtree_members : t -> int -> int
(** [N_R].  Zero for off-tree nodes. *)

val delay_to_source : t -> int -> float
(** On-tree delay from the node to the source.
    Raises [Invalid_argument] for off-tree nodes. *)

val shr : t -> int -> int
(** [SHR(S,R)] per Eq. 2.  [shr t (source t) = 0].  O(1) amortised: values
    are cached tree-wide and rebuilt in one pass after a mutation, so the
    query-per-on-tree-node pattern of [Smrp.candidates] stays linear. *)

val path_to_source : t -> int -> int list
(** On-tree node sequence [R; ...; S]. *)

val tree_edges : t -> int list
(** Edge ids currently in the tree. *)

val total_cost : t -> float
(** Sum of tree-edge costs (§4.2's [Cost_T]). *)

val descendants : t -> int -> int list
(** The subtree rooted at a node (the node first, then preorder). *)

val graft : t -> nodes:int list -> edges:int list -> unit
(** [graft t ~nodes ~edges] splices a path into the tree.  [nodes] runs from
    an on-tree merge node to an off-tree tip; all other nodes must be
    off-tree; [edges] are the connecting edge ids.  The tip becomes an
    on-tree relay (call {!add_member} to subscribe it). *)

val add_member : t -> int -> unit
(** Subscribe an on-tree node; increments [N_R] along its upstream path. *)

val remove_member : t -> int -> unit
(** Unsubscribe a member; decrements counts and prunes any relay chain left
    without downstream members (§3.2.2 departure). *)

(** {2 Branch transactions (tree reshaping, §3.2.3)}

    Reshaping node [R] re-evaluates [R]'s upstream path with [R]'s own
    subtree discounted ("the value of SHR may be inaccurate and should be
    adjusted before the path comparison is made").  The tree supports this
    as a transaction: {!detach_branch} removes [R]'s subtree contribution
    and prunes the old upstream relays, the caller evaluates candidate
    merge points against the adjusted tree, and {!attach_branch} commits
    either the new path or the recorded previous one.

    Between detach and attach the tree is transiently inconsistent
    ({!validate} may fail); branch nodes still test {!is_on_tree} but must
    be excluded from path searches via {!branch_contains}. *)

type branch

val detach_branch : t -> node:int -> branch * (int list * int list)
(** [detach_branch t ~node] detaches the subtree rooted at [node] (not the
    source).  Returns the branch and the previous attachment [(nodes,
    edges)] — the old upstream path from the deepest ancestor that remains
    on-tree down to [node] — suitable for re-attachment verbatim. *)

val branch_root : branch -> int

val branch_contains : branch -> int -> bool

val branch_member_count : branch -> int
(** Members inside the detached subtree. *)

val attach_branch : t -> branch -> nodes:int list -> edges:int list -> unit
(** [attach_branch t br ~nodes ~edges] grafts the branch back; [nodes] runs
    from an on-tree merge node (outside the branch) to the branch root, the
    interior being off-tree.  Subtree delays are updated by the re-homing
    delta. *)

val validate : t -> (unit, string) result
(** Full invariant audit (acyclicity, count and delay consistency, pruning
    discipline, edge existence); used by tests and property checks. *)

val unsafe_tweak_subtree_members : t -> int -> int -> unit
(** [unsafe_tweak_subtree_members t v delta] adds [delta] to the recorded
    [N_R] of node [v] without updating any other bookkeeping, deliberately
    desynchronising the Eq. 1/2 state from the actual membership.  This is a
    fault-injection hook for the {!Smrp_check} harness (emulating a router
    that drops an [N_R] update); {!validate} and the check oracles exist to
    catch exactly this corruption.  Never call it outside a test or fuzzing
    context. *)

val pp : Format.formatter -> t -> unit
