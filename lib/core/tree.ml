module Graph = Smrp_graph.Graph

type t = {
  graph : Graph.t;
  source : int;
  parent : int array;
  parent_edge : int array;
  children : int list array;
  on_tree : bool array;
  member : bool array;
  n_r : int array; (* N_R: members in the subtree rooted at each node *)
  delay : float array; (* delay to source, valid when on_tree *)
  mutable member_count : int;
  shr_cache : int array; (* SHR per on-tree node, valid when shr_valid *)
  mutable shr_valid : bool;
}

let create graph ~source =
  let n = Graph.node_count graph in
  if source < 0 || source >= n then invalid_arg "Tree.create: source out of range";
  let t =
    {
      graph;
      source;
      parent = Array.make n (-1);
      parent_edge = Array.make n (-1);
      children = Array.make n [];
      on_tree = Array.make n false;
      member = Array.make n false;
      n_r = Array.make n 0;
      delay = Array.make n infinity;
      member_count = 0;
      shr_cache = Array.make n 0;
      shr_valid = false;
    }
  in
  t.on_tree.(source) <- true;
  t.delay.(source) <- 0.0;
  t

let graph t = t.graph

let source t = t.source

(* Deep copy sharing only the (immutable-in-practice) graph: the benchmark
   and differential-test workhorse — mutate the copy, keep the original. *)
let copy t =
  {
    graph = t.graph;
    source = t.source;
    parent = Array.copy t.parent;
    parent_edge = Array.copy t.parent_edge;
    children = Array.copy t.children;
    on_tree = Array.copy t.on_tree;
    member = Array.copy t.member;
    n_r = Array.copy t.n_r;
    delay = Array.copy t.delay;
    member_count = t.member_count;
    shr_cache = Array.copy t.shr_cache;
    shr_valid = t.shr_valid;
  }

let check_node t v name =
  if v < 0 || v >= Graph.node_count t.graph then
    invalid_arg (Printf.sprintf "Tree.%s: node %d out of range" name v)

let is_on_tree t v =
  check_node t v "is_on_tree";
  t.on_tree.(v)

let is_member t v =
  check_node t v "is_member";
  t.member.(v)

let member_count t = t.member_count

let collect t pred =
  let acc = ref [] in
  for v = Graph.node_count t.graph - 1 downto 0 do
    if pred v then acc := v :: !acc
  done;
  !acc

let members t = collect t (fun v -> t.member.(v))

let on_tree_nodes t = collect t (fun v -> t.on_tree.(v))

let parent t v =
  check_node t v "parent";
  if t.parent.(v) < 0 then None else Some t.parent.(v)

(* Option-free accessors for hot parent walks (reshape evaluation). *)
let parent_id t v =
  check_node t v "parent_id";
  t.parent.(v)

let parent_edge_id t v =
  check_node t v "parent_edge_id";
  t.parent_edge.(v)

let parent_edge t v =
  check_node t v "parent_edge";
  if t.parent_edge.(v) < 0 then None else Some t.parent_edge.(v)

let children t v =
  check_node t v "children";
  t.children.(v)

let subtree_members t v =
  check_node t v "subtree_members";
  t.n_r.(v)

let delay_to_source t v =
  check_node t v "delay_to_source";
  if not t.on_tree.(v) then invalid_arg "Tree.delay_to_source: node is off-tree";
  t.delay.(v)

let require_on_tree t v name =
  check_node t v name;
  if not t.on_tree.(v) then invalid_arg (Printf.sprintf "Tree.%s: node %d is off-tree" name v)

(* SHR(S, v) = sum of N_R over the tree path v..S (source excluded) obeys the
   top-down recurrence SHR(c) = SHR(parent c) + N_R(c), so one DFS from the
   source refreshes every node.  The cache is invalidated wholesale by any
   mutation (membership or structure) and rebuilt lazily on the next query:
   query-heavy phases — [Smrp.candidates] reads SHR for every on-tree node —
   cost O(1) per lookup instead of an O(depth) parent walk. *)
let refresh_shr t =
  if not t.shr_valid then begin
    let rec visit v acc =
      t.shr_cache.(v) <- acc;
      List.iter (fun c -> visit c (acc + t.n_r.(c))) t.children.(v)
    in
    visit t.source 0;
    t.shr_valid <- true
  end

let shr t v =
  require_on_tree t v "shr";
  refresh_shr t;
  t.shr_cache.(v)

let path_to_source t v =
  require_on_tree t v "path_to_source";
  let rec walk v acc = if v = t.source then List.rev (v :: acc) else walk t.parent.(v) (v :: acc) in
  walk v []

let tree_edges t =
  collect t (fun v -> t.parent_edge.(v) >= 0) |> List.map (fun v -> t.parent_edge.(v))

let total_cost t =
  List.fold_left (fun acc eid -> acc +. (Graph.edge t.graph eid).Graph.cost) 0.0 (tree_edges t)

let descendants t v =
  require_on_tree t v "descendants";
  let rec visit v acc = List.fold_left (fun acc c -> visit c acc) (v :: acc) t.children.(v) in
  List.rev (visit v [])

(* Walk the upstream path of [v] (starting at [v] itself) applying [f]. *)
let iter_up t v f =
  let rec walk v =
    f v;
    if v <> t.source then walk t.parent.(v)
  in
  walk v

let graft t ~nodes ~edges =
  t.shr_valid <- false;
  (match nodes with
  | [] | [ _ ] -> invalid_arg "Tree.graft: path needs at least two nodes"
  | merge :: _ -> require_on_tree t merge "graft");
  if List.length edges <> List.length nodes - 1 then invalid_arg "Tree.graft: nodes/edges mismatch";
  let rec splice up rest redges =
    match (rest, redges) with
    | [], [] -> ()
    | v :: rest', eid :: redges' ->
        check_node t v "graft";
        if t.on_tree.(v) then invalid_arg "Tree.graft: interior node already on-tree";
        let e = Graph.edge t.graph eid in
        if not ((e.Graph.u = up && e.Graph.v = v) || (e.Graph.v = up && e.Graph.u = v)) then
          invalid_arg "Tree.graft: edge does not join consecutive nodes";
        t.on_tree.(v) <- true;
        t.parent.(v) <- up;
        t.parent_edge.(v) <- eid;
        t.children.(up) <- v :: t.children.(up);
        t.delay.(v) <- t.delay.(up) +. e.Graph.delay;
        splice v rest' redges'
    | _ -> invalid_arg "Tree.graft: nodes/edges mismatch"
  in
  match nodes with
  | merge :: rest -> splice merge rest edges
  | [] -> assert false

let add_member t v =
  require_on_tree t v "add_member";
  if t.member.(v) then invalid_arg "Tree.add_member: already a member";
  t.shr_valid <- false;
  t.member.(v) <- true;
  t.member_count <- t.member_count + 1;
  iter_up t v (fun r -> t.n_r.(r) <- t.n_r.(r) + 1)

let detach_from_parent t v =
  let p = t.parent.(v) in
  t.children.(p) <- List.filter (fun c -> c <> v) t.children.(p);
  t.parent.(v) <- -1;
  t.parent_edge.(v) <- -1

(* Remove the relay chain starting at [v] upward while nodes carry no
   members, no children and are not the source. *)
let rec prune_up t v =
  if v <> t.source && (not t.member.(v)) && t.children.(v) = [] then begin
    let p = t.parent.(v) in
    detach_from_parent t v;
    t.on_tree.(v) <- false;
    t.delay.(v) <- infinity;
    prune_up t p
  end

let remove_member t v =
  check_node t v "remove_member";
  if not t.member.(v) then invalid_arg "Tree.remove_member: not a member";
  t.shr_valid <- false;
  t.member.(v) <- false;
  t.member_count <- t.member_count - 1;
  iter_up t v (fun r -> t.n_r.(r) <- t.n_r.(r) - 1);
  prune_up t v

(* Shift the delay of a whole subtree by [delta] (used when its root is
   re-homed). *)
let rec shift_delays t v delta =
  t.delay.(v) <- t.delay.(v) +. delta;
  List.iter (fun c -> shift_delays t c delta) t.children.(v)

type branch = {
  root : int;
  nsub : int;
  in_branch : bool array;
  old_root_delay : float;
}

let branch_root br = br.root

let branch_contains br v = br.in_branch.(v)

let branch_member_count br = br.nsub

let detach_branch t ~node =
  require_on_tree t node "detach_branch";
  if node = t.source then invalid_arg "Tree.detach_branch: cannot detach the source";
  t.shr_valid <- false;
  let in_branch = Array.make (Graph.node_count t.graph) false in
  List.iter (fun v -> in_branch.(v) <- true) (descendants t node);
  let nsub = t.n_r.(node) in
  let old_parent = t.parent.(node) in
  (* Record the previous attachment before pruning: the path from the deepest
     ancestor that survives the detachment down to [node].  An ancestor
     survives when it is the source, a member, or it keeps another child. *)
  let rec survivor v chain_child =
    if v = t.source || t.member.(v) || List.exists (fun c -> c <> chain_child) t.children.(v) then v
    else survivor t.parent.(v) v
  in
  let merge = survivor old_parent node in
  let rec old_path v nodes edges =
    if v = merge then (v :: nodes, edges)
    else old_path t.parent.(v) (v :: nodes) (t.parent_edge.(v) :: edges)
  in
  let previous = old_path node [] [] in
  let br = { root = node; nsub; in_branch; old_root_delay = t.delay.(node) } in
  iter_up t old_parent (fun r -> t.n_r.(r) <- t.n_r.(r) - nsub);
  detach_from_parent t node;
  prune_up t old_parent;
  (br, previous)

let attach_branch t br ~nodes ~edges =
  t.shr_valid <- false;
  let node = br.root in
  (match nodes with
  | [] | [ _ ] -> invalid_arg "Tree.attach_branch: path needs at least two nodes"
  | merge :: _ ->
      require_on_tree t merge "attach_branch";
      if br.in_branch.(merge) then invalid_arg "Tree.attach_branch: merge node inside the branch";
      let rec last = function [ x ] -> x | _ :: tl -> last tl | [] -> assert false in
      if last nodes <> node then invalid_arg "Tree.attach_branch: path must end at the branch root");
  if List.length edges <> List.length nodes - 1 then
    invalid_arg "Tree.attach_branch: nodes/edges mismatch";
  let check_edge up v eid =
    let e = Graph.edge t.graph eid in
    if not ((e.Graph.u = up && e.Graph.v = v) || (e.Graph.v = up && e.Graph.u = v)) then
      invalid_arg "Tree.attach_branch: edge does not join consecutive nodes";
    e
  in
  (* Validate the whole path before touching any state, so a rejected attach
     leaves the tree exactly as it was. *)
  let rec prevalidate up rest redges =
    match (rest, redges) with
    | [ v ], [ eid ] -> ignore (check_edge up v eid)
    | v :: rest', eid :: redges' ->
        check_node t v "attach_branch";
        if br.in_branch.(v) then invalid_arg "Tree.attach_branch: path crosses the branch";
        if t.on_tree.(v) then invalid_arg "Tree.attach_branch: interior node already on-tree";
        ignore (check_edge up v eid);
        prevalidate v rest' redges'
    | _ -> invalid_arg "Tree.attach_branch: nodes/edges mismatch"
  in
  (match nodes with
  | merge :: rest -> prevalidate merge rest edges
  | [] -> assert false);
  let rec splice up rest redges =
    match (rest, redges) with
    | [ v ], [ eid ] ->
        assert (v = node);
        let e = check_edge up v eid in
        t.parent.(v) <- up;
        t.parent_edge.(v) <- eid;
        t.children.(up) <- v :: t.children.(up);
        let new_delay = t.delay.(up) +. e.Graph.delay in
        shift_delays t v (new_delay -. br.old_root_delay)
    | v :: rest', eid :: redges' ->
        check_node t v "attach_branch";
        if br.in_branch.(v) then invalid_arg "Tree.attach_branch: path crosses the branch";
        if t.on_tree.(v) then invalid_arg "Tree.attach_branch: interior node already on-tree";
        let e = check_edge up v eid in
        t.on_tree.(v) <- true;
        t.parent.(v) <- up;
        t.parent_edge.(v) <- eid;
        t.children.(up) <- v :: t.children.(up);
        t.delay.(v) <- t.delay.(up) +. e.Graph.delay;
        (* The count walk below covers the interiors too. *)
        t.n_r.(v) <- 0;
        splice v rest' redges'
    | _ -> invalid_arg "Tree.attach_branch: nodes/edges mismatch"
  in
  (match nodes with
  | merge :: rest -> splice merge rest edges
  | [] -> assert false);
  iter_up t t.parent.(node) (fun r -> t.n_r.(r) <- t.n_r.(r) + br.nsub)

let unsafe_tweak_subtree_members t v delta =
  check_node t v "unsafe_tweak_subtree_members";
  t.n_r.(v) <- t.n_r.(v) + delta;
  t.shr_valid <- false

let validate t =
  let n = Graph.node_count t.graph in
  let fail fmt = Format.kasprintf (fun s -> Error s) fmt in
  let rec check_all v =
    if v >= n then Ok ()
    else if not t.on_tree.(v) then
      if t.member.(v) then fail "off-tree node %d is a member" v
      else if t.n_r.(v) <> 0 then fail "off-tree node %d has N_R = %d" v t.n_r.(v)
      else if t.parent.(v) >= 0 then fail "off-tree node %d has a parent" v
      else if t.children.(v) <> [] then fail "off-tree node %d has children" v
      else check_all (v + 1)
    else begin
      (* On-tree: parent linkage, delay and membership accounting. *)
      let parent_ok =
        if v = t.source then
          if t.parent.(v) >= 0 then fail "source has a parent" else Ok ()
        else if t.parent.(v) < 0 then fail "on-tree node %d lacks a parent" v
        else if not t.on_tree.(t.parent.(v)) then fail "node %d's parent is off-tree" v
        else
          let eid = t.parent_edge.(v) in
          if eid < 0 then fail "node %d lacks a parent edge" v
          else
            let e = Graph.edge t.graph eid in
            let p = t.parent.(v) in
            if not ((e.Graph.u = v && e.Graph.v = p) || (e.Graph.v = v && e.Graph.u = p)) then
              fail "node %d's parent edge does not join it to its parent" v
            else if not (List.mem v t.children.(p)) then
              fail "node %d missing from its parent's child list" v
            else if abs_float (t.delay.(v) -. (t.delay.(p) +. e.Graph.delay)) > 1e-9 then
              fail "node %d has inconsistent delay" v
            else Ok ()
      in
      match parent_ok with
      | Error _ as e -> e
      | Ok () ->
          let count_here = if t.member.(v) then 1 else 0 in
          let expected =
            List.fold_left (fun acc c -> acc + t.n_r.(c)) count_here t.children.(v)
          in
          if t.n_r.(v) <> expected then
            fail "node %d has N_R = %d, expected %d" v t.n_r.(v) expected
          else if
            v <> t.source && (not t.member.(v)) && t.children.(v) = []
          then fail "relay %d has no members downstream (should have been pruned)" v
          else check_all (v + 1)
    end
  in
  match check_all 0 with
  | Error _ as e -> e
  | Ok () ->
      (* Acyclicity / reachability: every on-tree node reaches the source. *)
      let rec reaches v steps =
        if steps > n then false else if v = t.source then true else reaches t.parent.(v) (steps + 1)
      in
      let bad = collect t (fun v -> t.on_tree.(v) && not (reaches v 0)) in
      (match bad with
      | [] ->
          let total = List.fold_left (fun acc m -> acc + if t.member.(m) then 1 else 0) 0 (members t) in
          if total <> t.member_count then
            fail "member_count %d does not match %d marked members" t.member_count total
          else Ok ()
      | v :: _ -> fail "on-tree node %d does not reach the source" v)

let pp ppf t =
  Format.fprintf ppf "@[<v>multicast tree (source %d, %d members)" t.source t.member_count;
  List.iter
    (fun v ->
      Format.fprintf ppf "@,  %d%s: parent %d, N_R %d, SHR %d, delay %g" v
        (if t.member.(v) then " [member]" else "")
        t.parent.(v) t.n_r.(v) (shr t v) t.delay.(v))
    (on_tree_nodes t);
  Format.fprintf ppf "@]"
