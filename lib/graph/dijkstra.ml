(* Two implementations share one result interface:

   - [run] is the production path: it borrows a reusable {!workspace} so a
     settled search allocates nothing but the result record.  Visited/settled
     state is epoch-stamped — bumping one counter invalidates the whole
     previous run, so there is no O(n) clearing between runs either.
   - [run_reference] is the seed implementation (boxed adjacency lists,
     generic polymorphic heap, fresh arrays per call), retained as the
     differential-testing oracle for the workspace path. *)

type workspace = {
  mutable dist : float array;
  mutable parent : int array;
  mutable parent_edge : int array;
  mutable visited : int array; (* epoch stamp: dist/parent valid this run *)
  mutable settled : int array; (* epoch stamp: node popped and relaxed *)
  mutable epoch : int;
  heap : Int_heap.t;
  mutable trace : Smrp_obs.Trace.t;
  mutable clock : unit -> float;
}

let workspace ?(capacity = 0) () =
  let capacity = max 0 capacity in
  {
    dist = Array.make capacity infinity;
    parent = Array.make capacity (-1);
    parent_edge = Array.make capacity (-1);
    visited = Array.make capacity 0;
    settled = Array.make capacity 0;
    epoch = 0;
    heap = Int_heap.create ~capacity:(max 16 capacity) ();
    trace = Smrp_obs.Trace.null;
    clock = Smrp_obs.Trace.wall_clock;
  }

(* A workspace doubles as the carrier for hot-path tracing: spans ride the
   workspace because it is domain-private by contract, so emitting through
   it is exactly as domain-safe as the search itself.  With the default
   null tracer the cost per run is one [enabled] branch. *)
let set_trace ws ?clock tr =
  ws.trace <- tr;
  (match clock with Some c -> ws.clock <- c | None -> ());
  ()

let workspace_trace ws = ws.trace

let workspace_clock ws = ws.clock

(* Grow the arrays without clearing: stamps of fresh cells are 0, below any
   live epoch, so they read as untouched. *)
let reserve ws n =
  if Array.length ws.dist < n then begin
    let grow_f a = Array.append a (Array.make (n - Array.length a) infinity) in
    let grow_i fill a = Array.append a (Array.make (n - Array.length a) fill) in
    ws.dist <- grow_f ws.dist;
    ws.parent <- grow_i (-1) ws.parent;
    ws.parent_edge <- grow_i (-1) ws.parent_edge;
    ws.visited <- grow_i 0 ws.visited;
    ws.settled <- grow_i 0 ws.settled
  end

type result = {
  graph : Graph.t;
  src : int;
  ws : workspace;
  epoch : int; (* the workspace epoch this result belongs to *)
}

let always _ = true

let never _ = false

let check_fresh r =
  if r.epoch <> r.ws.epoch then
    invalid_arg "Dijkstra: result invalidated by a later run on the same workspace"

let run ?node_ok ?edge_ok ?absorb ?dist_bound ?workspace:ws g ~source =
  let dist_bound = match dist_bound with Some b -> b | None -> infinity in
  let n = Graph.node_count g in
  if source < 0 || source >= n then invalid_arg "Dijkstra.run: source out of range";
  (match node_ok with
  | Some ok when not (ok source) -> invalid_arg "Dijkstra.run: source is filtered out"
  | _ -> ());
  let offsets, nbr, eids, delays = Graph.csr g in
  let reused = ws <> None in
  let ws = match ws with Some ws -> ws | None -> workspace ~capacity:n () in
  let tracing = Smrp_obs.Trace.enabled ws.trace in
  let t0 = if tracing then ws.clock () else 0.0 in
  reserve ws n;
  ws.epoch <- ws.epoch + 1;
  let epoch = ws.epoch in
  let dist = ws.dist
  and parent = ws.parent
  and parent_edge = ws.parent_edge
  and visited = ws.visited
  and settled = ws.settled
  and heap = ws.heap in
  Int_heap.clear heap;
  dist.(source) <- 0.0;
  parent.(source) <- -1;
  parent_edge.(source) <- -1;
  visited.(source) <- epoch;
  Int_heap.add heap 0.0 source;
  (* Relax every incident edge of the settled node [u].  Indices are in
     range by CSR construction ([reserve] sized the workspace to [n], CSR
     entries point at nodes/edges of [g]).  [u]'s distance is read back
     from [dist] (equal to the minimal heap entry's priority for an
     unsettled node) and the insertion sift is inlined, so no float crosses
     a call boundary — without flambda each such crossing would box.  The
     function itself takes only an int, so the specialised search loops
     below share it without allocation. *)
  let relax u =
    let d = Array.unsafe_get dist u in
    let stop = Array.unsafe_get offsets (u + 1) in
    for i = Array.unsafe_get offsets u to stop - 1 do
      let v = Array.unsafe_get nbr i in
      if Array.unsafe_get settled v <> epoch then begin
        let d' = d +. Array.unsafe_get delays i in
        if Array.unsafe_get visited v <> epoch || d' < Array.unsafe_get dist v then begin
          Array.unsafe_set dist v d';
          Array.unsafe_set parent v u;
          Array.unsafe_set parent_edge v (Array.unsafe_get eids i);
          Array.unsafe_set visited v epoch;
          (* Inlined Int_heap.add: hole-based sift-up of (d', v). *)
          Int_heap.grow heap;
          let pa = heap.Int_heap.prio
          and sa = heap.Int_heap.seq
          and va = heap.Int_heap.value in
          let seq = heap.Int_heap.next_seq in
          heap.Int_heap.next_seq <- seq + 1;
          let j = ref heap.Int_heap.size in
          heap.Int_heap.size <- !j + 1;
          let continue = ref (!j > 0) in
          while !continue do
            let p = (!j - 1) / 2 in
            let pp = Array.unsafe_get pa p in
            if d' < pp || (d' = pp && seq < Array.unsafe_get sa p) then begin
              Array.unsafe_set pa !j pp;
              Array.unsafe_set sa !j (Array.unsafe_get sa p);
              Array.unsafe_set va !j (Array.unsafe_get va p);
              j := p;
              continue := p > 0
            end
            else continue := false
          done;
          Array.unsafe_set pa !j d';
          Array.unsafe_set sa !j seq;
          Array.unsafe_set va !j v
        end
      end
    done
  in
  (match (node_ok, edge_ok, absorb) with
  | None, None, None ->
      (* Unfiltered fast path: no closure calls per edge. *)
      while not (Int_heap.is_empty heap) do
        let u = Int_heap.top heap in
        Int_heap.drop heap;
        if Array.unsafe_get settled u <> epoch then begin
          (* Pops come in nondecreasing distance order: once one exceeds
             [dist_bound], no unsettled node can be within it. *)
          if Array.unsafe_get dist u > dist_bound then Int_heap.clear heap
          else begin
            Array.unsafe_set settled u epoch;
            relax u
          end
        end
      done
  | None, None, Some absorb ->
      (* Absorb-only path (SMRP candidate searches): one absorb check per
         settled node, still no per-edge filter calls. *)
      while not (Int_heap.is_empty heap) do
        let u = Int_heap.top heap in
        Int_heap.drop heap;
        if Array.unsafe_get settled u <> epoch then begin
          if Array.unsafe_get dist u > dist_bound then Int_heap.clear heap
          else begin
            Array.unsafe_set settled u epoch;
            if u = source || not (absorb u) then relax u
          end
        end
      done
  | Some node_ok, None, Some absorb ->
      (* Node-filtered absorbing search with no edge filter — the reshape
         candidate evaluation.  One [node_ok] call per edge target; heap
         pushes stay inlined as in [relax] so no float is boxed. *)
      let relax_ok u =
        let d = Array.unsafe_get dist u in
        let stop = Array.unsafe_get offsets (u + 1) in
        for i = Array.unsafe_get offsets u to stop - 1 do
          let v = Array.unsafe_get nbr i in
          if Array.unsafe_get settled v <> epoch && node_ok v then begin
            let d' = d +. Array.unsafe_get delays i in
            if Array.unsafe_get visited v <> epoch || d' < Array.unsafe_get dist v then begin
              Array.unsafe_set dist v d';
              Array.unsafe_set parent v u;
              Array.unsafe_set parent_edge v (Array.unsafe_get eids i);
              Array.unsafe_set visited v epoch;
              Int_heap.grow heap;
              let pa = heap.Int_heap.prio
              and sa = heap.Int_heap.seq
              and va = heap.Int_heap.value in
              let seq = heap.Int_heap.next_seq in
              heap.Int_heap.next_seq <- seq + 1;
              let j = ref heap.Int_heap.size in
              heap.Int_heap.size <- !j + 1;
              let continue = ref (!j > 0) in
              while !continue do
                let p = (!j - 1) / 2 in
                let pp = Array.unsafe_get pa p in
                if d' < pp || (d' = pp && seq < Array.unsafe_get sa p) then begin
                  Array.unsafe_set pa !j pp;
                  Array.unsafe_set sa !j (Array.unsafe_get sa p);
                  Array.unsafe_set va !j (Array.unsafe_get va p);
                  j := p;
                  continue := p > 0
                end
                else continue := false
              done;
              Array.unsafe_set pa !j d';
              Array.unsafe_set sa !j seq;
              Array.unsafe_set va !j v
            end
          end
        done
      in
      while not (Int_heap.is_empty heap) do
        let u = Int_heap.top heap in
        Int_heap.drop heap;
        if Array.unsafe_get settled u <> epoch then begin
          if Array.unsafe_get dist u > dist_bound then Int_heap.clear heap
          else begin
            Array.unsafe_set settled u epoch;
            if u = source || not (absorb u) then relax_ok u
          end
        end
      done
  | _ ->
      let node_ok = match node_ok with Some f -> f | None -> always in
      let edge_ok = match edge_ok with Some f -> f | None -> always in
      let absorb = match absorb with Some f -> f | None -> never in
      while not (Int_heap.is_empty heap) do
        let u = Int_heap.top heap in
        Int_heap.drop heap;
        if settled.(u) <> epoch && dist.(u) > dist_bound then Int_heap.clear heap
        else if settled.(u) <> epoch then begin
          settled.(u) <- epoch;
          (* An absorbing node terminates the search along its branch: it
             can be a shortest-path target but contributes no further
             relaxation. *)
          if u = source || not (absorb u) then begin
            let d = dist.(u) in
            let stop = offsets.(u + 1) in
            for i = offsets.(u) to stop - 1 do
              let v = nbr.(i) in
              if settled.(v) <> epoch && node_ok v && edge_ok eids.(i) then begin
                let d' = d +. delays.(i) in
                if visited.(v) <> epoch || d' < dist.(v) then begin
                  dist.(v) <- d';
                  parent.(v) <- u;
                  parent_edge.(v) <- eids.(i);
                  visited.(v) <- epoch;
                  Int_heap.add heap d' v
                end
              end
            done
          end
        end
      done);
  if tracing then
    Smrp_obs.Trace.complete ws.trace ~ts:t0
      ~dur:(ws.clock () -. t0)
      ~cat:"graph"
      ~tid:(Domain.self () :> int)
      ~args:
        [
          ("source", Smrp_obs.Trace.Int source);
          ("n", Smrp_obs.Trace.Int n);
          ("ws_reused", Smrp_obs.Trace.Int (if reused then 1 else 0));
        ]
      "dijkstra.run";
  { graph = g; src = source; ws; epoch }

(* The pre-CSR list-and-boxed-heap implementation, verbatim apart from
   repackaging its arrays as a single-use workspace. *)
let run_reference ?(node_ok = always) ?(edge_ok = always) ?(absorb = never) g ~source =
  let n = Graph.node_count g in
  if source < 0 || source >= n then invalid_arg "Dijkstra.run_reference: source out of range";
  if not (node_ok source) then invalid_arg "Dijkstra.run_reference: source is filtered out";
  let dist = Array.make n infinity in
  let parent = Array.make n (-1) in
  let parent_edge = Array.make n (-1) in
  let settled = Array.make n false in
  let heap = Heap.create () in
  dist.(source) <- 0.0;
  Heap.add heap 0.0 source;
  let rec loop () =
    match Heap.pop_min heap with
    | None -> ()
    | Some (d, u) ->
        if not settled.(u) then begin
          settled.(u) <- true;
          if u = source || not (absorb u) then
            let relax (v, eid) =
              if node_ok v && edge_ok eid && not settled.(v) then begin
                let e = Graph.edge g eid in
                let d' = d +. e.Graph.delay in
                if d' < dist.(v) then begin
                  dist.(v) <- d';
                  parent.(v) <- u;
                  parent_edge.(v) <- eid;
                  Heap.add heap d' v
                end
              end
            in
            List.iter relax (Graph.neighbors g u)
        end;
        loop ()
  in
  loop ();
  let visited = Array.map (fun d -> if d = infinity then 0 else 1) dist in
  let ws =
    {
      dist;
      parent;
      parent_edge;
      visited;
      settled = Array.map (fun s -> if s then 1 else 0) settled;
      epoch = 1;
      heap = Int_heap.create ~capacity:1 ();
      trace = Smrp_obs.Trace.null;
      clock = Smrp_obs.Trace.wall_clock;
    }
  in
  { graph = g; src = source; ws; epoch = 1 }

let source r = r.src

let distance r v =
  check_fresh r;
  if r.ws.visited.(v) <> r.epoch then None else Some r.ws.dist.(v)

let reachable r v =
  check_fresh r;
  r.ws.visited.(v) = r.epoch

let unsafe_distance r v = Array.unsafe_get r.ws.dist v

let parent r v =
  check_fresh r;
  if r.ws.visited.(v) <> r.epoch || r.ws.parent.(v) < 0 then None else Some r.ws.parent.(v)

let path_rev r v =
  check_fresh r;
  if r.ws.visited.(v) <> r.epoch then None
  else begin
    let parent = r.ws.parent and parent_edge = r.ws.parent_edge in
    let rec walk v nodes edges =
      if v = r.src then (v :: nodes, edges)
      else walk parent.(v) (v :: nodes) (parent_edge.(v) :: edges)
    in
    Some (walk v [] [])
  end

let path_nodes r v = Option.map fst (path_rev r v)

let path_edges r v = Option.map snd (path_rev r v)

let shortest_path ?node_ok ?edge_ok ?workspace g ~src ~dst =
  let r = run ?node_ok ?edge_ok ?workspace g ~source:src in
  match path_rev r dst with
  | None -> None
  | Some (nodes, edges) -> Some (r.ws.dist.(dst), nodes, edges)
