(* Binary min-heap specialised to [int] values with priorities kept in an
   unboxed [float array] — no per-entry records, no option/tuple allocation
   on the pop path.  Ties break by insertion order ([seq]), matching the
   generic {!Heap} so Dijkstra settles equal-distance nodes in the same
   deterministic order whichever heap backs it. *)

type t = {
  mutable prio : float array;
  mutable seq : int array;
  mutable value : int array;
  mutable size : int;
  mutable next_seq : int;
}

let create ?(capacity = 16) () =
  let capacity = max 1 capacity in
  {
    prio = Array.make capacity 0.0;
    seq = Array.make capacity 0;
    value = Array.make capacity 0;
    size = 0;
    next_seq = 0;
  }

let length h = h.size

let is_empty h = h.size = 0

let clear h =
  h.size <- 0;
  h.next_seq <- 0

let grow h =
  let capacity = Array.length h.prio in
  if h.size = capacity then begin
    let capacity' = 2 * capacity in
    let prio' = Array.make capacity' 0.0 in
    Array.blit h.prio 0 prio' 0 h.size;
    h.prio <- prio';
    let seq' = Array.make capacity' 0 in
    Array.blit h.seq 0 seq' 0 h.size;
    h.seq <- seq';
    let value' = Array.make capacity' 0 in
    Array.blit h.value 0 value' 0 h.size;
    h.value <- value'
  end

(* Hole-based sift-up: keep the inserted entry in registers, shift larger
   ancestors down, write once into the final hole.  Same final layout as a
   swap-based sift, a third of the array traffic. *)
let add h prio value =
  grow h;
  let pa = h.prio and sa = h.seq and va = h.value in
  let seq = h.next_seq in
  h.next_seq <- seq + 1;
  let i = ref h.size in
  h.size <- !i + 1;
  let continue = ref (!i > 0) in
  while !continue do
    let p = (!i - 1) / 2 in
    let pp = Array.unsafe_get pa p in
    if prio < pp || (prio = pp && seq < Array.unsafe_get sa p) then begin
      Array.unsafe_set pa !i pp;
      Array.unsafe_set sa !i (Array.unsafe_get sa p);
      Array.unsafe_set va !i (Array.unsafe_get va p);
      i := p;
      continue := p > 0
    end
    else continue := false
  done;
  Array.unsafe_set pa !i prio;
  Array.unsafe_set sa !i seq;
  Array.unsafe_set va !i value

let top_prio h =
  if h.size = 0 then invalid_arg "Int_heap.top_prio: empty heap";
  h.prio.(0)

let top h =
  if h.size = 0 then invalid_arg "Int_heap.top: empty heap";
  h.value.(0)

(* Hole-based sift-down of the displaced last entry. *)
let drop h =
  if h.size = 0 then invalid_arg "Int_heap.drop: empty heap";
  let n = h.size - 1 in
  h.size <- n;
  if n > 0 then begin
    let pa = h.prio and sa = h.seq and va = h.value in
    let prio = Array.unsafe_get pa n
    and seq = Array.unsafe_get sa n
    and value = Array.unsafe_get va n in
    let i = ref 0 in
    let continue = ref true in
    while !continue do
      let l = (2 * !i) + 1 in
      if l >= n then continue := false
      else begin
        (* Pick the smaller child (insertion order breaks ties). *)
        let c =
          let r = l + 1 in
          if r < n then begin
            let pl = Array.unsafe_get pa l and pr = Array.unsafe_get pa r in
            if pr < pl || (pr = pl && Array.unsafe_get sa r < Array.unsafe_get sa l) then r else l
          end
          else l
        in
        let pc = Array.unsafe_get pa c in
        if pc < prio || (pc = prio && Array.unsafe_get sa c < seq) then begin
          Array.unsafe_set pa !i pc;
          Array.unsafe_set sa !i (Array.unsafe_get sa c);
          Array.unsafe_set va !i (Array.unsafe_get va c);
          i := c
        end
        else continue := false
      end
    done;
    Array.unsafe_set pa !i prio;
    Array.unsafe_set sa !i seq;
    Array.unsafe_set va !i value
  end

let pop_min h =
  if h.size = 0 then None
  else begin
    let p = h.prio.(0) and v = h.value.(0) in
    drop h;
    Some (p, v)
  end
