(** Binary min-heap specialised to [int] values with unboxed [float array]
    priorities: the allocation-free priority queue behind the Dijkstra
    workspace.  Equal priorities pop in insertion order, the same tie-break
    as the generic {!Heap}, so both back identical deterministic searches. *)

(** The representation is exposed so Dijkstra's relaxation loop can inline
    the insertion sift: without flambda, a float passed to {!add} is boxed
    at the call boundary, and that boxing is the last allocation on the
    search's hot path.  Treat the fields as private outside such loops; the
    invariants are those of an implicit binary heap ordered by
    [(prio, seq)], with [size] live entries and [next_seq] the next
    insertion stamp. *)
type t = {
  mutable prio : float array;
  mutable seq : int array;
  mutable value : int array;
  mutable size : int;
  mutable next_seq : int;
}

val create : ?capacity:int -> unit -> t
(** [create ?capacity ()] pre-sizes the backing arrays (default 16). *)

val grow : t -> unit
(** Double the backing arrays if full — call before writing entry [size]
    directly in an inlined insertion. *)

val length : t -> int

val is_empty : t -> bool

val clear : t -> unit
(** O(1) reset; backing arrays are retained for reuse. *)

val add : t -> float -> int -> unit

val top_prio : t -> float
(** Priority of the minimum.  Raises [Invalid_argument] when empty. *)

val top : t -> int
(** Value of the minimum.  Raises [Invalid_argument] when empty. *)

val drop : t -> unit
(** Remove the minimum without returning it (the allocation-free pop).
    Raises [Invalid_argument] when empty. *)

val pop_min : t -> (float * int) option
(** Convenience [top]+[drop]; allocates the pair. *)
