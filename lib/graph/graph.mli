(** Undirected weighted graphs.

    Nodes are the integers [0 .. node_count - 1].  Each edge carries a
    propagation [delay] (the paper's link metric, used both for shortest paths
    and end-to-end delay) and a [cost] (used for the tree-cost metric; equal to
    [delay] unless set otherwise, matching §4.2 of the paper where link cost
    and delay coincide).

    Edges are identified by a dense integer id, which lets failure scenarios
    and path computations use O(1) bitset membership tests. *)

type edge = private {
  id : int;
  u : int;
  v : int;
  delay : float;
  cost : float;
}

type t

val create : int -> t
(** [create n] is an empty graph over nodes [0 .. n-1]. *)

val node_count : t -> int

val edge_count : t -> int

val add_edge : ?cost:float -> t -> int -> int -> float -> int
(** [add_edge g u v delay] inserts the undirected edge [(u, v)] and returns its
    id.  [cost] defaults to [delay].  Self-loops and duplicate edges are
    rejected with [Invalid_argument]. *)

val edge : t -> int -> edge
(** Edge by id. *)

val edge_between : t -> int -> int -> edge option
(** The edge joining two nodes, if any. *)

val mem_edge : t -> int -> int -> bool

val other_end : edge -> int -> int
(** [other_end e u] is the endpoint of [e] distinct from [u]. *)

val freeze : t -> unit
(** Build the CSR (compressed sparse row) adjacency view if any edge has been
    added since the last build.  Read-path traversals call this implicitly;
    call it explicitly before sharing a graph read-only across domains, since
    the lazy rebuild is not synchronised. *)

val csr : t -> int array * int array * int array * float array
(** [csr g] freezes [g] and returns the physical CSR arrays
    [(offsets, neighbor, edge_id, delay)]: the incident edges of node [u]
    occupy indices [offsets.(u) .. offsets.(u+1) - 1] of the three flat
    arrays, in insertion order.  For tight loops that cannot afford the
    closure call of {!iter_neighbors}.  The arrays are the graph's own:
    treat them as read-only and do not retain them across a mutation. *)

val iter_neighbors : t -> int -> (int -> int -> float -> unit) -> unit
(** [iter_neighbors g u f] applies [f neighbor edge_id delay] to each incident
    edge of [u] in insertion order, straight off the CSR arrays — the
    allocation-free replacement for {!neighbors} on hot paths. *)

val neighbors : t -> int -> (int * int) list
(** [neighbors g u] lists [(v, edge_id)] pairs, in insertion order.
    Allocates a fresh list per call; prefer {!iter_neighbors} on hot paths. *)

val degree : t -> int -> int

val average_degree : t -> float

val iter_edges : (edge -> unit) -> t -> unit

val fold_edges : ('a -> edge -> 'a) -> 'a -> t -> 'a

val total_cost : t -> float
(** Sum of all edge costs. *)

val pp : Format.formatter -> t -> unit
