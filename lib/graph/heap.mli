(** Array-backed binary min-heap with [float] priorities and monotone
    insertion order as the tie-break, so equal-priority elements pop in
    insertion order (deterministic Dijkstra and simulator event queues). *)

type 'a t

val create : ?capacity:int -> unit -> 'a t
(** [create ?capacity ()] is an empty heap.  [capacity] pre-sizes the backing
    array (applied at the first insertion) so a heap whose final size is known
    never reallocates; it is a hint, not a limit. *)

val length : 'a t -> int

val is_empty : 'a t -> bool

val add : 'a t -> float -> 'a -> unit
(** [add h prio x] inserts [x] with priority [prio]. *)

val pop_min : 'a t -> (float * 'a) option
(** Remove and return the minimum-priority element, ties broken by insertion
    order. *)

val peek_min : 'a t -> (float * 'a) option

val clear : 'a t -> unit
