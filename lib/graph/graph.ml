type edge = { id : int; u : int; v : int; delay : float; cost : float }

(* The adjacency lives in two forms.  [adj] is the mutable build-side
   structure ((neighbor, edge id) lists in reverse insertion order), cheap to
   extend one edge at a time.  The read path uses a CSR (compressed sparse
   row) view — flat int/float arrays indexed by [adj_offsets] — rebuilt
   lazily whenever an edge has been added since the last freeze, so settled
   traversals (Dijkstra, DFS) touch only contiguous unboxed arrays and
   allocate nothing. *)
type t = {
  n : int;
  mutable edges : edge array;
  mutable edge_count : int;
  adj : (int * int) list array; (* node -> (neighbor, edge id), reversed order *)
  mutable csr_edge_count : int; (* edges included in the CSR view; -1 = never built *)
  mutable adj_offsets : int array; (* n + 1 entries; slice of node u is
                                      [adj_offsets.(u), adj_offsets.(u+1)) *)
  mutable adj_neighbor : int array;
  mutable adj_edge : int array;
  mutable adj_delay : float array;
}

let create n =
  if n < 0 then invalid_arg "Graph.create: negative node count";
  {
    n;
    edges = [||];
    edge_count = 0;
    adj = Array.make n [];
    csr_edge_count = -1;
    adj_offsets = [||];
    adj_neighbor = [||];
    adj_edge = [||];
    adj_delay = [||];
  }

let node_count g = g.n

let edge_count g = g.edge_count

let check_node g u name =
  if u < 0 || u >= g.n then invalid_arg (Printf.sprintf "Graph.%s: node %d out of range" name u)

(* Both endpoint checks hoisted here: every binary edge query funnels through
   this single lookup, which scans the (short) build-side list once. *)
let find_edge_id g u v name =
  check_node g u name;
  check_node g v name;
  let rec scan = function
    | [] -> -1
    | (w, id) :: rest -> if w = v then id else scan rest
  in
  scan g.adj.(u)

let mem_edge g u v = find_edge_id g u v "mem_edge" >= 0

let edge_between g u v =
  let id = find_edge_id g u v "edge_between" in
  if id < 0 then None else Some g.edges.(id)

let add_edge ?cost g u v delay =
  (* The duplicate lookup already bounds-checks both endpoints. *)
  if find_edge_id g u v "add_edge" >= 0 then invalid_arg "Graph.add_edge: duplicate edge";
  if u = v then invalid_arg "Graph.add_edge: self-loop";
  if delay <= 0.0 then invalid_arg "Graph.add_edge: delay must be positive";
  let cost = match cost with Some c -> c | None -> delay in
  let id = g.edge_count in
  let e = { id; u; v; delay; cost } in
  let capacity = Array.length g.edges in
  if id = capacity then begin
    let edges' = Array.make (max 16 (2 * capacity)) e in
    Array.blit g.edges 0 edges' 0 id;
    g.edges <- edges'
  end;
  g.edges.(id) <- e;
  g.edge_count <- id + 1;
  g.adj.(u) <- (v, id) :: g.adj.(u);
  g.adj.(v) <- (u, id) :: g.adj.(v);
  id

let edge g id =
  if id < 0 || id >= g.edge_count then invalid_arg "Graph.edge: bad edge id";
  g.edges.(id)

let other_end e u =
  if e.u = u then e.v
  else if e.v = u then e.u
  else invalid_arg "Graph.other_end: node not an endpoint"

(* Build the CSR view from the edge array.  Filling in edge-id order yields
   insertion-order slices, matching the historical [neighbors] contract. *)
let freeze g =
  if g.csr_edge_count <> g.edge_count then begin
    let m = g.edge_count in
    let offsets = Array.make (g.n + 1) 0 in
    for id = 0 to m - 1 do
      let e = g.edges.(id) in
      offsets.(e.u + 1) <- offsets.(e.u + 1) + 1;
      offsets.(e.v + 1) <- offsets.(e.v + 1) + 1
    done;
    for u = 1 to g.n do
      offsets.(u) <- offsets.(u) + offsets.(u - 1)
    done;
    let neighbor = Array.make (2 * m) 0 in
    let edge_ids = Array.make (2 * m) 0 in
    let delays = Array.make (2 * m) 0.0 in
    let cursor = Array.copy offsets in
    for id = 0 to m - 1 do
      let e = g.edges.(id) in
      let cu = cursor.(e.u) in
      neighbor.(cu) <- e.v;
      edge_ids.(cu) <- id;
      delays.(cu) <- e.delay;
      cursor.(e.u) <- cu + 1;
      let cv = cursor.(e.v) in
      neighbor.(cv) <- e.u;
      edge_ids.(cv) <- id;
      delays.(cv) <- e.delay;
      cursor.(e.v) <- cv + 1
    done;
    g.adj_offsets <- offsets;
    g.adj_neighbor <- neighbor;
    g.adj_edge <- edge_ids;
    g.adj_delay <- delays;
    g.csr_edge_count <- m
  end

(* Zero-cost view of the frozen adjacency for tight loops (Dijkstra's
   relaxation): the physical CSR arrays, which the caller must treat as
   read-only and must not retain across a graph mutation. *)
let csr g =
  freeze g;
  (g.adj_offsets, g.adj_neighbor, g.adj_edge, g.adj_delay)

let iter_neighbors g u f =
  check_node g u "iter_neighbors";
  freeze g;
  let stop = g.adj_offsets.(u + 1) in
  for i = g.adj_offsets.(u) to stop - 1 do
    f g.adj_neighbor.(i) g.adj_edge.(i) g.adj_delay.(i)
  done

let neighbors g u =
  check_node g u "neighbors";
  freeze g;
  let acc = ref [] in
  let lo = g.adj_offsets.(u) in
  for i = g.adj_offsets.(u + 1) - 1 downto lo do
    acc := (g.adj_neighbor.(i), g.adj_edge.(i)) :: !acc
  done;
  !acc

let degree g u =
  check_node g u "degree";
  freeze g;
  g.adj_offsets.(u + 1) - g.adj_offsets.(u)

let average_degree g = if g.n = 0 then 0.0 else 2.0 *. float_of_int g.edge_count /. float_of_int g.n

let iter_edges f g =
  for id = 0 to g.edge_count - 1 do
    f g.edges.(id)
  done

let fold_edges f init g =
  let acc = ref init in
  iter_edges (fun e -> acc := f !acc e) g;
  !acc

let total_cost g = fold_edges (fun acc e -> acc +. e.cost) 0.0 g

let pp ppf g =
  Format.fprintf ppf "@[<v>graph: %d nodes, %d edges" g.n g.edge_count;
  iter_edges (fun e -> Format.fprintf ppf "@,  %d -- %d (delay %g, cost %g)" e.u e.v e.delay e.cost) g;
  Format.fprintf ppf "@]"
