(** Incremental single-source shortest paths (dynamic SPF).

    Maintains the source-rooted shortest-path tree of a frozen {!Graph.t}
    under edge/node failures, restorations and delay changes, using the
    classic affected-subtree approach: a failure orphans exactly the
    subtree below the failed element, which is re-attached by boundary-edge
    relaxation from a workspace heap without touching the unaffected
    region.  Restorations and delay decreases run the dual grow-cascade.

    Distances are bit-identical to a fresh {!Dijkstra.run_reference} over
    the surviving elements after every mutation — the differential suite in
    [test/test_dspf.ml] pins this exactly (no epsilon).

    The structure snapshots the CSR at {!create}; the underlying graph
    must not gain edges while the structure is live.  Failure state lives
    in the structure as an overlay — the graph itself is never mutated. *)

type t

type stats = {
  ops : int;  (** mutations applied since creation *)
  touched : int;
      (** total nodes whose tree state any repair rewrote — the locality
          evidence: compare against [ops × n] for full recomputes *)
}

val create : Graph.t -> source:int -> t
(** Freezes the graph and computes the initial tree.  Raises
    [Invalid_argument] if [source] is out of range. *)

(** {1 Mutations}

    All mutations are idempotent: failing a dead element or restoring a
    live one is a no-op. *)

val fail_edge : t -> int -> unit
(** Remove edge [eid] from the overlay.  A non-tree edge only flips the
    flag; a tree edge triggers an affected-subtree repair. *)

val restore_edge : t -> int -> unit
(** Revive edge [eid] and cascade any strict improvements it enables. *)

val fail_node : t -> int -> unit
(** Remove a node and all its incident paths.  Failing the source empties
    the tree. *)

val restore_node : t -> int -> unit
(** Revive a node; its best re-entry seeds the improvement cascade. *)

val set_delay : t -> int -> float -> unit
(** Override edge [eid]'s delay in the overlay (must be positive; raises
    [Invalid_argument] otherwise).  A decrease grows, an increase on a
    tree edge repairs the downstream subtree.  Dead edges take the new
    delay into account upon restoration. *)

(** {1 Queries} *)

val source : t -> int

val graph : t -> Graph.t

val distance : t -> int -> float option
(** [None] when unreachable (or dead) under the current overlay. *)

val unsafe_distance : t -> int -> float
(** Unchecked array read; [infinity] when unreachable.  Hot-path variant
    of {!distance}. *)

val reachable : t -> int -> bool

val parent : t -> int -> int
(** Tree parent, [-1] for the source and unreachable nodes. *)

val parent_edge : t -> int -> int
(** Edge id to the parent, [-1] for the source and unreachable nodes. *)

val path_rev : t -> int -> (int list * int list) option
(** [(nodes, edges)] from the source to the node, nodes source-first;
    [None] when unreachable. *)

val edge_failed : t -> int -> bool

val node_failed : t -> int -> bool

val delay : t -> int -> float
(** Current overlay delay of edge [eid]. *)

val stats : t -> stats

(** {1 Self-check} *)

val verify : t -> bool
(** Recompute from scratch over the same overlay and compare: distances
    bit-identical, every parent pointer certifying its node's distance
    over a live edge.  Allocates; test/debug only. *)
