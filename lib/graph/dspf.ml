(* Incremental single-source shortest paths (dynamic SPF) over the frozen
   CSR adjacency, in the classic affected-subtree style (Ramalingam–Reps /
   Frigioni et al.): the structure keeps the full source-rooted shortest-path
   tree — distance, parent, parent edge and an intrusive child list per
   node — and patches it under failures, restorations and weight changes
   instead of re-running Dijkstra.

   A deletion (or weight increase) of a tree edge orphans exactly the
   subtree hanging below it.  Only those nodes can change: the repair
   collects them, seeds a workspace heap with the best re-attachment
   candidate of each orphan through its {e boundary} edges (edges into the
   untouched region, whose distances are still valid), and runs a
   Dijkstra-style relaxation confined to the orphaned set.  Nodes outside
   the subtree are never read beyond their settled distances and never
   written, so a leaf-edge failure costs O(degree) while a full recompute
   costs O(E log V).

   Restorations and weight decreases run the dual "grow" phase: seed the
   heap with the improvements the revived element enables and cascade
   strictly decreasing distances outward; the cascade dies out at the
   frontier where the old tree is already as short.

   All state is epoch-stamped (PR-2 style): [mark]/[settled]/[cand_stamp]
   arrays are invalidated wholesale by bumping [stamp], and the repair
   borrows the same unboxed {!Int_heap} as the Dijkstra workspace, so a
   mutation allocates nothing beyond what it must.

   Distances computed here are bit-identical to a fresh
   {!Dijkstra.run_reference} over the surviving elements: both compute the
   same least-fixpoint parent by parent from the source, and float sums
   along identical parent chains associate identically. *)

type t = {
  g : Graph.t;
  src : int;
  n : int;
  (* CSR views captured at creation; the graph must not gain edges while
     the structure is live. *)
  offsets : int array;
  nbr : int array;
  eids : int array;
  (* Overlay state: per-edge live delay (mutable via [set_delay]) and the
     failure flags.  The graph itself is never touched. *)
  delay : float array;
  edge_dead : bool array;
  node_dead : bool array;
  (* The maintained shortest-path tree. *)
  dist : float array; (* infinity = unreachable *)
  parent : int array;
  parent_edge : int array;
  first_child : int array; (* intrusive doubly-linked child lists *)
  next_sib : int array;
  prev_sib : int array;
  (* Repair workspace, epoch-stamped by [stamp]. *)
  heap : Int_heap.t;
  mark : int array; (* node is in the current affected set *)
  settled : int array; (* node re-settled in the current repair *)
  cand_d : float array;
  cand_p : int array;
  cand_e : int array;
  cand_stamp : int array;
  queue : int array; (* affected-set collection, BFS order *)
  mutable stamp : int;
  (* Cumulative locality evidence: mutations applied and nodes whose state
     a repair touched (the affected sets' total size). *)
  mutable ops : int;
  mutable touched : int;
}

type stats = { ops : int; touched : int }

let stats (t : t) = { ops = t.ops; touched = t.touched }

let source t = t.src

let graph t = t.g

(* -- Child-list surgery -------------------------------------------------- *)

let unlink t c =
  let p = t.parent.(c) in
  if p >= 0 then begin
    let pr = t.prev_sib.(c) and nx = t.next_sib.(c) in
    if pr >= 0 then t.next_sib.(pr) <- nx else t.first_child.(p) <- nx;
    if nx >= 0 then t.prev_sib.(nx) <- pr
  end;
  t.prev_sib.(c) <- -1;
  t.next_sib.(c) <- -1

let link t p c =
  let h = t.first_child.(p) in
  t.next_sib.(c) <- h;
  t.prev_sib.(c) <- -1;
  if h >= 0 then t.prev_sib.(h) <- c;
  t.first_child.(p) <- c

(* -- Full (re)computation ------------------------------------------------ *)

(* From-scratch Dijkstra over the overlay into the maintained arrays; used
   at creation and as the [verify] oracle's subject is the incremental
   path, never called on the mutation path afterwards. *)
let recompute t =
  t.stamp <- t.stamp + 1;
  let stamp = t.stamp in
  for v = 0 to t.n - 1 do
    t.dist.(v) <- infinity;
    t.parent.(v) <- -1;
    t.parent_edge.(v) <- -1;
    t.first_child.(v) <- -1;
    t.next_sib.(v) <- -1;
    t.prev_sib.(v) <- -1
  done;
  Int_heap.clear t.heap;
  if not t.node_dead.(t.src) then begin
    t.cand_d.(t.src) <- 0.0;
    t.cand_p.(t.src) <- -1;
    t.cand_e.(t.src) <- -1;
    t.cand_stamp.(t.src) <- stamp;
    Int_heap.add t.heap 0.0 t.src;
    while not (Int_heap.is_empty t.heap) do
      let d = Int_heap.top_prio t.heap in
      let u = Int_heap.top t.heap in
      Int_heap.drop t.heap;
      if t.settled.(u) <> stamp && d <= t.cand_d.(u) then begin
        t.settled.(u) <- stamp;
        t.dist.(u) <- t.cand_d.(u);
        t.parent.(u) <- t.cand_p.(u);
        t.parent_edge.(u) <- t.cand_e.(u);
        if t.parent.(u) >= 0 then link t t.parent.(u) u;
        let stop = t.offsets.(u + 1) in
        for i = t.offsets.(u) to stop - 1 do
          let v = t.nbr.(i) in
          let eid = t.eids.(i) in
          if (not t.edge_dead.(eid)) && (not t.node_dead.(v)) && t.settled.(v) <> stamp then begin
            let d' = t.dist.(u) +. t.delay.(eid) in
            if t.cand_stamp.(v) <> stamp || d' < t.cand_d.(v) then begin
              t.cand_d.(v) <- d';
              t.cand_p.(v) <- u;
              t.cand_e.(v) <- eid;
              t.cand_stamp.(v) <- stamp;
              Int_heap.add t.heap d' v
            end
          end
        done
      end
    done
  end

let create g ~source =
  let n = Graph.node_count g in
  if source < 0 || source >= n then invalid_arg "Dspf.create: source out of range";
  let offsets, nbr, eids, _ = Graph.csr g in
  let m = Graph.edge_count g in
  let t =
    {
      g;
      src = source;
      n;
      offsets;
      nbr;
      eids;
      delay = Array.init m (fun i -> (Graph.edge g i).Graph.delay);
      edge_dead = Array.make m false;
      node_dead = Array.make n false;
      dist = Array.make n infinity;
      parent = Array.make n (-1);
      parent_edge = Array.make n (-1);
      first_child = Array.make n (-1);
      next_sib = Array.make n (-1);
      prev_sib = Array.make n (-1);
      heap = Int_heap.create ~capacity:(max 16 n) ();
      mark = Array.make n 0;
      settled = Array.make n 0;
      cand_d = Array.make n infinity;
      cand_p = Array.make n (-1);
      cand_e = Array.make n (-1);
      cand_stamp = Array.make n 0;
      queue = Array.make (max 1 n) 0;
      stamp = 0;
      ops = 0;
      touched = 0;
    }
  in
  recompute t;
  t

(* -- Queries ------------------------------------------------------------- *)

let check_node t v name =
  if v < 0 || v >= t.n then invalid_arg (Printf.sprintf "Dspf.%s: node %d out of range" name v)

let check_edge t eid name =
  if eid < 0 || eid >= Array.length t.delay then
    invalid_arg (Printf.sprintf "Dspf.%s: bad edge id %d" name eid)

let distance t v =
  check_node t v "distance";
  if t.dist.(v) = infinity then None else Some t.dist.(v)

let unsafe_distance t v = Array.unsafe_get t.dist v

let reachable t v =
  check_node t v "reachable";
  t.dist.(v) < infinity

let parent t v =
  check_node t v "parent";
  t.parent.(v)

let parent_edge t v =
  check_node t v "parent_edge";
  t.parent_edge.(v)

let edge_failed t eid =
  check_edge t eid "edge_failed";
  t.edge_dead.(eid)

let node_failed t v =
  check_node t v "node_failed";
  t.node_dead.(v)

let delay t eid =
  check_edge t eid "delay";
  t.delay.(eid)

let path_rev t v =
  check_node t v "path_rev";
  if t.dist.(v) = infinity then None
  else begin
    let rec walk v nodes edges =
      if v = t.src then (v :: nodes, edges)
      else walk t.parent.(v) (v :: nodes) (t.parent_edge.(v) :: edges)
    in
    Some (walk v [] [])
  end

(* -- Shrink phase: affected-subtree repair ------------------------------- *)

(* Re-settle the orphaned set [queue.(0 .. count-1)] (already marked with
   the current stamp, parent/child pointers cleared).  Distances of nodes
   outside the set are still valid by the subtree property, so the best
   candidate of each orphan through a boundary edge is a correct seed. *)
let resettle t count =
  let stamp = t.stamp in
  Int_heap.clear t.heap;
  for qi = 0 to count - 1 do
    let x = t.queue.(qi) in
    let best = ref infinity and best_p = ref (-1) and best_e = ref (-1) in
    let stop = t.offsets.(x + 1) in
    for i = t.offsets.(x) to stop - 1 do
      let y = t.nbr.(i) in
      let eid = t.eids.(i) in
      if
        (not t.edge_dead.(eid))
        && (not t.node_dead.(y))
        && t.mark.(y) <> stamp
        && t.dist.(y) < infinity
      then begin
        let d = t.dist.(y) +. t.delay.(eid) in
        if d < !best then begin
          best := d;
          best_p := y;
          best_e := eid
        end
      end
    done;
    if !best < infinity then begin
      t.cand_d.(x) <- !best;
      t.cand_p.(x) <- !best_p;
      t.cand_e.(x) <- !best_e;
      t.cand_stamp.(x) <- stamp;
      Int_heap.add t.heap !best x
    end
  done;
  while not (Int_heap.is_empty t.heap) do
    let d = Int_heap.top_prio t.heap in
    let x = Int_heap.top t.heap in
    Int_heap.drop t.heap;
    if t.settled.(x) <> stamp && d <= t.cand_d.(x) then begin
      t.settled.(x) <- stamp;
      t.dist.(x) <- t.cand_d.(x);
      t.parent.(x) <- t.cand_p.(x);
      t.parent_edge.(x) <- t.cand_e.(x);
      link t t.parent.(x) x;
      let stop = t.offsets.(x + 1) in
      for i = t.offsets.(x) to stop - 1 do
        let y = t.nbr.(i) in
        let eid = t.eids.(i) in
        if
          (not t.edge_dead.(eid))
          && (not t.node_dead.(y))
          && t.mark.(y) = stamp
          && t.settled.(y) <> stamp
        then begin
          let d' = t.dist.(x) +. t.delay.(eid) in
          if t.cand_stamp.(y) <> stamp || d' < t.cand_d.(y) then begin
            t.cand_d.(y) <- d';
            t.cand_p.(y) <- x;
            t.cand_e.(y) <- eid;
            t.cand_stamp.(y) <- stamp;
            Int_heap.add t.heap d' y
          end
        end
      done
    end
  done;
  (* Orphans no boundary path could reach fall off the tree. *)
  for qi = 0 to count - 1 do
    let x = t.queue.(qi) in
    if t.settled.(x) <> stamp then t.dist.(x) <- infinity
  done

(* Orphan the subtrees rooted at [roots] and repair them.  Each root is
   unlinked from its (dead or surviving) parent; the whole affected set has
   its tree pointers cleared before reseeding so stale structure can never
   leak into the rebuilt region. *)
let repair_subtrees t roots =
  t.stamp <- t.stamp + 1;
  let stamp = t.stamp in
  let count = ref 0 in
  List.iter
    (fun r ->
      t.mark.(r) <- stamp;
      t.queue.(!count) <- r;
      incr count)
    roots;
  let qi = ref 0 in
  while !qi < !count do
    let x = t.queue.(!qi) in
    incr qi;
    let c = ref t.first_child.(x) in
    while !c >= 0 do
      t.mark.(!c) <- stamp;
      t.queue.(!count) <- !c;
      incr count;
      c := t.next_sib.(!c)
    done
  done;
  List.iter (fun r -> unlink t r) roots;
  for i = 0 to !count - 1 do
    let x = t.queue.(i) in
    t.parent.(x) <- -1;
    t.parent_edge.(x) <- -1;
    t.first_child.(x) <- -1;
    t.next_sib.(x) <- -1;
    t.prev_sib.(x) <- -1
  done;
  t.touched <- t.touched + !count;
  resettle t !count

(* -- Grow phase: decrease cascade ---------------------------------------- *)

(* Propagate strict improvements from pre-seeded candidates.  Because every
   edge delay is positive and pops come in nondecreasing order, the first
   settle of a node is final within the cascade. *)
let grow t =
  let stamp = t.stamp in
  while not (Int_heap.is_empty t.heap) do
    let d = Int_heap.top_prio t.heap in
    let x = Int_heap.top t.heap in
    Int_heap.drop t.heap;
    if t.cand_stamp.(x) = stamp && d <= t.cand_d.(x) && t.cand_d.(x) < t.dist.(x) then begin
      unlink t x;
      t.dist.(x) <- t.cand_d.(x);
      t.parent.(x) <- t.cand_p.(x);
      t.parent_edge.(x) <- t.cand_e.(x);
      if t.parent.(x) >= 0 then link t t.parent.(x) x;
      t.touched <- t.touched + 1;
      let stop = t.offsets.(x + 1) in
      for i = t.offsets.(x) to stop - 1 do
        let y = t.nbr.(i) in
        let eid = t.eids.(i) in
        if (not t.edge_dead.(eid)) && not t.node_dead.(y) then begin
          let d' = t.dist.(x) +. t.delay.(eid) in
          if d' < t.dist.(y) && (t.cand_stamp.(y) <> stamp || d' < t.cand_d.(y)) then begin
            t.cand_d.(y) <- d';
            t.cand_p.(y) <- x;
            t.cand_e.(y) <- eid;
            t.cand_stamp.(y) <- stamp;
            Int_heap.add t.heap d' y
          end
        end
      done
    end
  done

let seed t v d p e =
  t.cand_d.(v) <- d;
  t.cand_p.(v) <- p;
  t.cand_e.(v) <- e;
  t.cand_stamp.(v) <- t.stamp;
  Int_heap.add t.heap d v

let grow_through_edge t eid =
  let e = Graph.edge t.g eid in
  let u = e.Graph.u and v = e.Graph.v in
  if (not t.node_dead.(u)) && not t.node_dead.(v) then begin
    t.stamp <- t.stamp + 1;
    Int_heap.clear t.heap;
    let w = t.delay.(eid) in
    if t.dist.(u) +. w < t.dist.(v) then seed t v (t.dist.(u) +. w) u eid;
    if t.dist.(v) +. w < t.dist.(u) then seed t u (t.dist.(v) +. w) v eid;
    grow t
  end

(* -- Mutations ----------------------------------------------------------- *)

let fail_edge t eid =
  check_edge t eid "fail_edge";
  if not t.edge_dead.(eid) then begin
    t.ops <- t.ops + 1;
    t.edge_dead.(eid) <- true;
    let e = Graph.edge t.g eid in
    let child =
      if t.parent_edge.(e.Graph.u) = eid then e.Graph.u
      else if t.parent_edge.(e.Graph.v) = eid then e.Graph.v
      else -1
    in
    (* A non-tree edge carries no shortest path: distances stand. *)
    if child >= 0 then repair_subtrees t [ child ]
  end

let restore_edge t eid =
  check_edge t eid "restore_edge";
  if t.edge_dead.(eid) then begin
    t.ops <- t.ops + 1;
    t.edge_dead.(eid) <- false;
    grow_through_edge t eid
  end

let fail_node t v =
  check_node t v "fail_node";
  if not t.node_dead.(v) then begin
    t.ops <- t.ops + 1;
    t.node_dead.(v) <- true;
    if t.dist.(v) < infinity then begin
      let roots = ref [] in
      let c = ref t.first_child.(v) in
      while !c >= 0 do
        roots := !c :: !roots;
        c := t.next_sib.(!c)
      done;
      unlink t v;
      t.parent.(v) <- -1;
      t.parent_edge.(v) <- -1;
      t.dist.(v) <- infinity;
      t.touched <- t.touched + 1;
      (* The dead node's child list drains as each subtree is unlinked. *)
      repair_subtrees t !roots
    end
  end

let restore_node t v =
  check_node t v "restore_node";
  if t.node_dead.(v) then begin
    t.ops <- t.ops + 1;
    t.node_dead.(v) <- false;
    t.stamp <- t.stamp + 1;
    Int_heap.clear t.heap;
    if v = t.src then seed t v 0.0 (-1) (-1)
    else begin
      (* Best re-entry for [v] itself; anything shorter through [v]
         cascades from there. *)
      let best = ref infinity and best_p = ref (-1) and best_e = ref (-1) in
      let stop = t.offsets.(v + 1) in
      for i = t.offsets.(v) to stop - 1 do
        let y = t.nbr.(i) in
        let eid = t.eids.(i) in
        if (not t.edge_dead.(eid)) && (not t.node_dead.(y)) && t.dist.(y) < infinity then begin
          let d = t.dist.(y) +. t.delay.(eid) in
          if d < !best then begin
            best := d;
            best_p := y;
            best_e := eid
          end
        end
      done;
      if !best < infinity then seed t v !best !best_p !best_e
    end;
    grow t
  end

let set_delay t eid w =
  check_edge t eid "set_delay";
  if w <= 0.0 then invalid_arg "Dspf.set_delay: delay must be positive";
  let old = t.delay.(eid) in
  if w <> old then begin
    t.ops <- t.ops + 1;
    t.delay.(eid) <- w;
    if not t.edge_dead.(eid) then begin
      if w < old then grow_through_edge t eid
      else begin
        let e = Graph.edge t.g eid in
        let child =
          if t.parent_edge.(e.Graph.u) = eid then e.Graph.u
          else if t.parent_edge.(e.Graph.v) = eid then e.Graph.v
          else -1
        in
        if child >= 0 then repair_subtrees t [ child ]
      end
    end
  end

(* -- Self-check ---------------------------------------------------------- *)

(* Compare the maintained state against a from-scratch Dijkstra over the
   same overlay.  Distances must be bit-identical; parents must certify
   their node's distance over a live edge.  Test/debug only: allocates its
   own scratch arrays so the live workspace stays untouched. *)
let verify t =
  let dist = Array.make t.n infinity in
  let heap = Int_heap.create ~capacity:(max 16 t.n) () in
  let settled = Array.make t.n false in
  if not t.node_dead.(t.src) then begin
    dist.(t.src) <- 0.0;
    Int_heap.add heap 0.0 t.src;
    while not (Int_heap.is_empty heap) do
      let u = Int_heap.top heap in
      Int_heap.drop heap;
      if not settled.(u) then begin
        settled.(u) <- true;
        let stop = t.offsets.(u + 1) in
        for i = t.offsets.(u) to stop - 1 do
          let v = t.nbr.(i) in
          let eid = t.eids.(i) in
          if (not t.edge_dead.(eid)) && (not t.node_dead.(v)) && not settled.(v) then begin
            let d' = dist.(u) +. t.delay.(eid) in
            if d' < dist.(v) then begin
              dist.(v) <- d';
              Int_heap.add heap d' v
            end
          end
        done
      end
    done
  end;
  let ok = ref true in
  for v = 0 to t.n - 1 do
    if t.dist.(v) <> dist.(v) then ok := false
    else if t.dist.(v) < infinity && v <> t.src then begin
      let p = t.parent.(v) and eid = t.parent_edge.(v) in
      if p < 0 || eid < 0 then ok := false
      else if t.edge_dead.(eid) || t.node_dead.(p) || t.node_dead.(v) then ok := false
      else begin
        let e = Graph.edge t.g eid in
        if not ((e.Graph.u = p && e.Graph.v = v) || (e.Graph.v = p && e.Graph.u = v)) then
          ok := false
        else if t.dist.(p) +. t.delay.(eid) <> t.dist.(v) then ok := false
      end
    end
  done;
  !ok
