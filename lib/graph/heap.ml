type 'a entry = { prio : float; seq : int; value : 'a }

type 'a t = {
  mutable data : 'a entry array;
  mutable size : int;
  mutable next_seq : int;
  initial_capacity : int;
}

let create ?(capacity = 16) () =
  if capacity < 0 then invalid_arg "Heap.create: negative capacity";
  { data = [||]; size = 0; next_seq = 0; initial_capacity = max 16 capacity }

let length h = h.size

let is_empty h = h.size = 0

let before a b = a.prio < b.prio || (a.prio = b.prio && a.seq < b.seq)

let grow h entry =
  let capacity = Array.length h.data in
  if h.size = capacity then begin
    let capacity' = max h.initial_capacity (2 * capacity) in
    let data' = Array.make capacity' entry in
    Array.blit h.data 0 data' 0 h.size;
    h.data <- data'
  end

let add h prio value =
  let entry = { prio; seq = h.next_seq; value } in
  h.next_seq <- h.next_seq + 1;
  grow h entry;
  h.data.(h.size) <- entry;
  h.size <- h.size + 1;
  (* Sift up.  The parent index is computed once per level. *)
  let i = ref (h.size - 1) in
  let continue = ref (!i > 0) in
  while !continue do
    let parent = (!i - 1) / 2 in
    if before h.data.(!i) h.data.(parent) then begin
      let tmp = h.data.(!i) in
      h.data.(!i) <- h.data.(parent);
      h.data.(parent) <- tmp;
      i := parent;
      continue := !i > 0
    end
    else continue := false
  done

let peek_min h = if h.size = 0 then None else Some (h.data.(0).prio, h.data.(0).value)

let pop_min h =
  if h.size = 0 then None
  else begin
    let root = h.data.(0) in
    h.size <- h.size - 1;
    if h.size > 0 then begin
      h.data.(0) <- h.data.(h.size);
      (* Sift down. *)
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let smallest = ref !i in
        if l < h.size && before h.data.(l) h.data.(!smallest) then smallest := l;
        if r < h.size && before h.data.(r) h.data.(!smallest) then smallest := r;
        if !smallest = !i then continue := false
        else begin
          let tmp = h.data.(!i) in
          h.data.(!i) <- h.data.(!smallest);
          h.data.(!smallest) <- tmp;
          i := !smallest
        end
      done
    end;
    Some (root.prio, root.value)
  end

let clear h =
  h.size <- 0;
  h.next_seq <- 0
