(** Single-source shortest paths over edge delays, with the filtered and
    absorbing variants the SMRP protocol needs.

    - [node_ok] / [edge_ok] restrict the search to the surviving part of the
      graph under a failure scenario (a node or edge that fails is filtered
      out rather than removed, so edge and node ids stay stable).
    - [absorb] marks nodes that may be *reached* but never *relaxed through*
      (except when one is the source).  Running with [absorb = on-tree] from a
      joining node yields, for every on-tree node [R], the shortest path from
      the joiner to [R] whose interior avoids the tree — i.e. the unique
      candidate connection for which [R] is the true merge point (paper
      footnote 4). *)

type workspace
(** Reusable scratch state (distance/parent/stamp arrays plus an
    int-specialised binary heap).  A [run] that borrows a workspace allocates
    nothing on the search path; repeated runs clear state lazily by bumping
    an epoch counter rather than re-zeroing arrays.  A workspace belongs to
    one domain at a time — create one per worker, never share concurrently. *)

val workspace : ?capacity:int -> unit -> workspace
(** [workspace ~capacity:n ()] pre-sizes for graphs of up to [n] nodes; it
    grows on demand if a larger graph is searched. *)

val set_trace : workspace -> ?clock:(unit -> float) -> Smrp_obs.Trace.t -> unit
(** Attach a tracer to the workspace: every subsequent {!run} borrowing it
    emits one "dijkstra.run" complete span (cat ["graph"], tid = domain id,
    args: source, node count, whether the workspace was reused).  [clock]
    supplies span timestamps in seconds and defaults to
    {!Smrp_obs.Trace.wall_clock}.  The span rides the workspace because a
    workspace is domain-private by contract — pair a shared tracer with a
    {!Smrp_obs.Trace.sharded_ring} sink when several workers trace at once.
    With the default {!Smrp_obs.Trace.null} tracer a run pays one branch. *)

val workspace_trace : workspace -> Smrp_obs.Trace.t

val workspace_clock : workspace -> unit -> float

type result

val run :
  ?node_ok:(int -> bool) ->
  ?edge_ok:(int -> bool) ->
  ?absorb:(int -> bool) ->
  ?dist_bound:float ->
  ?workspace:workspace ->
  Graph.t ->
  source:int ->
  result
(** With [?workspace], the result {e borrows} the workspace arrays and is
    valid only until the next [run] on the same workspace; accessors raise
    [Invalid_argument] on a stale result.  Without it, a private workspace is
    allocated and the result stays valid indefinitely.

    [dist_bound] truncates the search: settling stops at the first node
    whose distance exceeds the bound.  Every node whose true distance is
    [<= dist_bound] is still settled with its exact distance and path;
    beyond the bound a node may read as unreachable or report a tentative
    (over-estimated) distance, so callers must ignore results past the
    bound. *)

val run_reference :
  ?node_ok:(int -> bool) ->
  ?edge_ok:(int -> bool) ->
  ?absorb:(int -> bool) ->
  Graph.t ->
  source:int ->
  result
(** The retained pre-CSR implementation (adjacency lists, boxed polymorphic
    heap, fresh arrays per call).  Kept as the differential-testing oracle:
    for any graph, filters and source it must agree with {!run} exactly —
    same distances, same parents, same tie-breaks. *)

val source : result -> int

val distance : result -> int -> float option
(** Shortest-path delay, [None] if unreachable. *)

val reachable : result -> int -> bool

val unsafe_distance : result -> int -> float
(** The raw distance cell of a node, with no freshness or reachability
    check: meaningful only when {!reachable} just returned [true] for the
    same result.  Exists for scan loops that have already filtered on
    {!reachable} and must not allocate an option per node. *)

val parent : result -> int -> int option
(** Predecessor on the shortest path tree. *)

val path_nodes : result -> int -> int list option
(** Node sequence from the source to the target, inclusive. *)

val path_edges : result -> int -> int list option
(** Edge-id sequence from the source to the target. *)

val shortest_path :
  ?node_ok:(int -> bool) ->
  ?edge_ok:(int -> bool) ->
  ?workspace:workspace ->
  Graph.t ->
  src:int ->
  dst:int ->
  (float * int list * int list) option
(** [(delay, nodes, edge ids)] of one shortest [src]→[dst] path. *)
