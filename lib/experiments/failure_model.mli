(** Failure-placement models for campaign cells — the third matrix axis.

    Recovery protocols behave qualitatively differently under correlated or
    regional outages than under the independent single failures of the
    paper's §4, so each model draws a {!Smrp_core.Failure.t} against the
    {e current} session tree:

    - {b Independent}: uniformly random links/nodes, the §4 baseline;
    - {b Correlated}: a burst of adjacent links (a shared-risk link group:
      a seed edge plus edges met by a breadth-first expansion from its
      endpoints);
    - {b Regional}: every node within a hop-radius ball around a random
      center fails — a regional outage / partition, defined graph-wise so
      it applies to topologies without plane coordinates;
    - {b Cascading}: a tree link fails, its traffic re-routes along the
      incremental-SPF detour, and the link now carrying the orphaned
      subtree fails next, up to a depth — overload propagation;
    - {b Adversarial}: greedy worst-case placement of a budget of tree-link
      failures maximizing members disrupted, refined by local-search swap
      passes (ties broken towards placements isolating more members, judged
      on the residual graph).

    All draws are pure functions of the supplied RNG, tree and graph.  The
    models needing residual-graph reachability (cascading, adversarial)
    evaluate it on one {!Smrp_graph.Dspf.t} held in a {!ws} and reused
    across candidates via fail/restore overlays — never rebuilt per
    candidate. *)

type model =
  | Independent of { events : int; elements : int }
  | Correlated of { events : int; burst : int }
  | Regional of { events : int; radius : int }
  | Cascading of { events : int; depth : int }
  | Adversarial of { events : int; budget : int; passes : int }

val name : model -> string
(** Short axis label: ["indep"], ["correlated"], ["regional"], ["cascade"],
    ["adversarial"]. *)

val events : model -> int
(** How many failure events the model injects per scenario instance. *)

type ws
(** Per-worker scratch: caches one incremental-SPF structure per (graph,
    source) pair, with failure overlays applied and rolled back around each
    candidate evaluation. *)

val create_ws : unit -> ws

val draw :
  ws -> model -> Smrp_rng.Rng.t -> Smrp_graph.Graph.t -> tree:Smrp_core.Tree.t ->
  Smrp_core.Failure.t option
(** Draw one failure event.  Never fails the source node.  [None] when the
    model has nothing to break (e.g. an adversarial or cascading draw
    against a tree with no edges). *)

val disrupted : Smrp_core.Tree.t -> Smrp_core.Failure.t -> int
(** Members losing data under the failure: the members no longer connected
    to the source over surviving tree links and nodes (members whose own
    router died included). *)

val isolated :
  ws -> Smrp_graph.Graph.t -> source:int -> members:int list -> Smrp_core.Failure.t -> int
(** Members unrecoverable under the failure — unreachable from the source
    in the residual graph — evaluated on the workspace's shared
    incremental-SPF structure. *)
