(* Domain-parallel fan-out for embarrassingly parallel scenario sweeps.

   Every §4 figure averages ~100 independently seeded scenarios per data
   point; each scenario is a pure function of its config (topology, group and
   failure draws all derive from the scenario seed), so the fan-out is
   deterministic by construction: workers write into the slot of the input
   they claimed, and the merged output is read back in input order.  Running
   with 1 job or 64 therefore yields byte-identical results — the contract
   the experiment tables rely on.

   Workers share nothing: each scenario builds its own graph, trees, RNG and
   Dijkstra workspace inside the worker that claimed it. *)

let default_jobs () =
  match Sys.getenv_opt "SMRP_BENCH_JOBS" with
  | Some v -> (
      match int_of_string_opt (String.trim v) with
      | Some n when n >= 1 -> n
      | _ ->
          Printf.eprintf
            "warning: SMRP_BENCH_JOBS=%S is not a positive integer; using the domain count\n%!" v;
          Domain.recommended_domain_count ())
  | None -> Domain.recommended_domain_count ()

let map ?jobs f xs =
  let jobs = match jobs with Some j -> max 1 j | None -> default_jobs () in
  let tasks = Array.of_list xs in
  let n = Array.length tasks in
  let jobs = min jobs n in
  if jobs <= 1 then List.map f xs
  else begin
    let results = Array.make n None in
    let error = Atomic.make None in
    let next = Atomic.make 0 in
    let worker () =
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n && Atomic.get error = None then begin
          (match f tasks.(i) with
          | v -> results.(i) <- Some v
          | exception e -> ignore (Atomic.compare_and_set error None (Some e)));
          loop ()
        end
      in
      loop ()
    in
    let domains = Array.init (jobs - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    Array.iter Domain.join domains;
    (match Atomic.get error with Some e -> raise e | None -> ());
    Array.to_list (Array.map (function Some v -> v | None -> assert false) results)
  end

let mapi ?jobs f xs = map ?jobs (fun (i, x) -> f i x) (List.mapi (fun i x -> (i, x)) xs)
