(* Domain-parallel fan-out for embarrassingly parallel scenario sweeps.

   Every §4 figure averages ~100 independently seeded scenarios per data
   point; each scenario is a pure function of its config (topology, group and
   failure draws all derive from the scenario seed), so the fan-out is
   deterministic by construction: workers write into the slot of the input
   they claimed, and the merged output is read back in input order.  Running
   with 1 job or 64 therefore yields byte-identical results — the contract
   the experiment tables rely on.

   Workers share nothing: each scenario builds its own graph, trees, RNG and
   Dijkstra workspace inside the worker that claimed it.

   Observability: an optional [Smrp_obs.Profile.t] records one utilisation
   entry per worker domain (tasks claimed, busy vs. idle wall time), and an
   optional [Smrp_obs.Trace.t] — over a {!Smrp_obs.Trace.sharded_ring} sink
   when parallel — gets one "pool.task" complete span per claimed task plus
   one "pool.worker" span per worker, tids being domain ids.  Neither hook
   affects results; with both absent the per-task cost is two [None]
   checks. *)

module Profile = Smrp_obs.Profile
module Trace = Smrp_obs.Trace

let default_jobs () =
  match Sys.getenv_opt "SMRP_BENCH_JOBS" with
  | Some v -> (
      match int_of_string_opt (String.trim v) with
      | Some n when n >= 1 -> n
      | _ ->
          Printf.eprintf
            "warning: SMRP_BENCH_JOBS=%S is not a positive integer; using the domain count\n%!" v;
          Domain.recommended_domain_count ())
  | None -> Domain.recommended_domain_count ()

(* Ambient instrumentation, consulted when [map] is not given explicit
   hooks.  Installed and read by the orchestrating domain only (the ref
   holds an immutable pair, so a racy read from a nested call would still
   be memory-safe — it is simply unsupported). *)
let ambient : (Profile.t option * Trace.t option) ref = ref (None, None)

let with_instrumentation ?profile ?trace f =
  let old = !ambient in
  ambient := (profile, trace);
  Fun.protect ~finally:(fun () -> ambient := old) f

(* Worker domains may consult this too: the install happens before
   [Domain.spawn] and the restore after the joins, so the spawn edge makes
   the installed value visible to every worker. *)
let ambient_trace () = snd !ambient

let task_span trace i f =
  match trace with
  | Some tr when Trace.enabled tr ->
      let t0 = Trace.wall_clock () in
      let v = f () in
      Trace.complete tr ~ts:t0
        ~dur:(Trace.wall_clock () -. t0)
        ~cat:"pool"
        ~tid:(Domain.self () :> int)
        ~args:[ ("index", Trace.Int i) ]
        "pool.task";
      v
  | _ -> f ()

let map ?jobs ?profile ?trace f xs =
  let profile, trace =
    let amb_p, amb_t = !ambient in
    ( (match profile with Some _ -> profile | None -> amb_p),
      match trace with Some _ -> trace | None -> amb_t )
  in
  let jobs = match jobs with Some j -> max 1 j | None -> default_jobs () in
  let tasks = Array.of_list xs in
  let n = Array.length tasks in
  let jobs = max 1 (min jobs n) in
  let instrumented = profile <> None || (match trace with Some tr -> Trace.enabled tr | None -> false) in
  if jobs <= 1 && not instrumented then List.map f xs
  else begin
    let results = Array.make n None in
    let error = Atomic.make None in
    let next = Atomic.make 0 in
    let worker () =
      let wh = Option.map Profile.worker_start profile in
      let w0 = match trace with Some tr when Trace.enabled tr -> Trace.wall_clock () | _ -> 0.0 in
      let run_task i =
        let body () = task_span trace i (fun () -> f tasks.(i)) in
        match wh with Some h -> Profile.worker_task h body | None -> body ()
      in
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n && Atomic.get error = None then begin
          (match run_task i with
          | v -> results.(i) <- Some v
          | exception e -> ignore (Atomic.compare_and_set error None (Some e)));
          loop ()
        end
      in
      loop ();
      (match trace with
      | Some tr when Trace.enabled tr ->
          Trace.complete tr ~ts:w0
            ~dur:(Trace.wall_clock () -. w0)
            ~cat:"pool"
            ~tid:(Domain.self () :> int)
            "pool.worker"
      | _ -> ());
      Option.iter Profile.worker_stop wh
    in
    let domains = Array.init (jobs - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    Array.iter Domain.join domains;
    (match Atomic.get error with Some e -> raise e | None -> ());
    Array.to_list (Array.map (function Some v -> v | None -> assert false) results)
  end

let mapi ?jobs ?profile ?trace f xs =
  map ?jobs ?profile ?trace (fun (i, x) -> f i x) (List.mapi (fun i x -> (i, x)) xs)
