(** Ablations for the design features §3.2.3–§3.3.3 describe but do not
    evaluate quantitatively: tree reshaping under churn, the partial-
    knowledge query scheme, and the hierarchical recovery architecture. *)

module Reshaping : sig
  (** Build the SMRP tree, churn the group (half the members leave, new ones
      join), then measure the worst-case recovery distance before and after
      a Condition-II reshaping sweep. *)

  type row = {
    scenarios : int;
    switches_per_scenario : float;
    rd_before : Smrp_metrics.Stats.summary;  (** RD^relative vs SPF tree. *)
    rd_after : Smrp_metrics.Stats.summary;
    delay_before : Smrp_metrics.Stats.summary;
    delay_after : Smrp_metrics.Stats.summary;
  }

  val run : ?jobs:int -> ?seed:int -> ?scenarios:int -> unit -> row

  val render : row -> string
end

module Query : sig
  (** Full-topology SMRP vs the §3.3.1 query scheme, both against SPF. *)

  type row = {
    scenarios : int;
    rd_full : Smrp_metrics.Stats.summary;  (** RD^relative, full knowledge. *)
    rd_query : Smrp_metrics.Stats.summary;  (** RD^relative, query scheme. *)
    delay_full : Smrp_metrics.Stats.summary;
    delay_query : Smrp_metrics.Stats.summary;
  }

  val run : ?jobs:int -> ?seed:int -> ?scenarios:int -> unit -> row

  val render : row -> string
end

module Hierarchical : sig
  (** Stub-link failures on transit–stub topologies: domain-confined
      recovery in the 2-level architecture vs local detour on the flat SMRP
      tree over the whole network. *)

  type row = {
    scenarios : int;
    failures : int;
    confined_fraction : float;  (** Hierarchical recoveries confined to the
                                    owning domain (1.0 by construction). *)
    flat_escape_fraction : float;
        (** Flat recoveries whose detour left the failure's stub domain. *)
    rd_hier : Smrp_metrics.Stats.summary;
    rd_flat : Smrp_metrics.Stats.summary;
  }

  val run : ?jobs:int -> ?seed:int -> ?scenarios:int -> unit -> row

  val render : row -> string
end
