module Rng = Smrp_rng.Rng
module Graph = Smrp_graph.Graph
module Dijkstra = Smrp_graph.Dijkstra
module Waxman = Smrp_topology.Waxman
module Tree = Smrp_core.Tree
module Spf = Smrp_core.Spf
module Smrp = Smrp_core.Smrp
module Query = Smrp_core.Query
module Metrics = Smrp_obs.Metrics
module Sketch = Smrp_obs.Sketch
module Report = Smrp_obs.Report

type config = {
  seed : int;
  scenarios : int;
  d_values : float list;
  latency_runs : int;
  latency : Latency.config;
}

let default =
  { seed = 42; scenarios = 20; d_values = [ 0.1; 0.3 ]; latency_runs = 3; latency = Latency.default }

let quick =
  {
    seed = 42;
    scenarios = 4;
    d_values = [ 0.3 ];
    latency_runs = 1;
    latency = { Latency.default with Latency.settle_time = 40.0; run_time = 30.0 };
  }

(* Per-member measurement of one variant on one topology: recovery distance
   under that variant's recovery strategy ([None] if isolated) and the
   member's end-to-end tree delay. *)
type rows = (float option * float) list

(* Everything one seed contributes, one [rows] per variant in variant
   order.  Workers return plain data; the orchestrator records it after the
   fan-out joins, so the report never depends on domain scheduling. *)
let variant_names config =
  ("spf baseline" :: List.map (Printf.sprintf "smrp d=%.2f") config.d_values) @ [ "smrp query" ]

let measure_seed config seed : rows list =
  let base = Scenario.default in
  let rng = Rng.create seed in
  let topo_rng = Rng.split rng in
  let member_rng = Rng.split rng in
  let topo =
    Waxman.generate ~link_delay:base.Scenario.link_delay topo_rng ~n:base.Scenario.n
      ~alpha:base.Scenario.alpha ~beta:base.Scenario.beta
  in
  let graph = topo.Waxman.graph in
  let source, members =
    Scenario.pick_group member_rng ~n:base.Scenario.n ~group_size:base.Scenario.group_size
  in
  let ws = Dijkstra.workspace ~capacity:(Graph.node_count graph) () in
  let rows_of tree strategy =
    List.map
      (fun m -> (Scenario.recovery_distance ~ws tree m strategy, Tree.delay_to_source tree m))
      members
  in
  let spf_tree = Spf.build ~ws graph ~source ~members in
  let spf_rows = rows_of spf_tree `Global in
  let smrp_rows =
    List.map
      (fun d -> rows_of (Smrp.build ~d_thresh:d ~ws graph ~source ~members) `Local)
      config.d_values
  in
  let query_rows =
    rows_of (Query.build ~d_thresh:base.Scenario.d_thresh ~ws graph ~source ~members) `Local
  in
  (spf_rows :: smrp_rows) @ [ query_rows ]

(* Aligned instrument names across every topology variant: the dashboard's
   comparison tables join on these. *)
let record_rows m (rows : rows) =
  Metrics.Counter.incr (Metrics.counter m "runs");
  Metrics.Counter.add (Metrics.counter m "members") (List.length rows);
  let recovered = Metrics.counter m "recovered"
  and isolated = Metrics.counter m "isolated"
  and rd_q = Metrics.sketch m "rd.q"
  and delay_q = Metrics.sketch m "delay.q" in
  List.iter
    (fun (rd, delay) ->
      (match rd with
      | Some rd ->
          Metrics.Counter.incr recovered;
          Sketch.observe rd_q rd
      | None -> Metrics.Counter.incr isolated);
      Sketch.observe delay_q delay)
    rows

(* Packet-level restoration latency (§4.4): sequential, injecting one
   collector registry per side so the protocol's recovery sketches and the
   sim-time series land in their own variants. *)
let run_latency config collector =
  if config.latency_runs > 0 then begin
    let smrp_m = Report.variant_metrics collector "smrp (packet sim)" in
    let pim_m = Report.variant_metrics collector "pim (packet sim)" in
    let rng = Rng.create (config.seed + 1) in
    let rec collect remaining attempts =
      if remaining > 0 && attempts > 0 then begin
        let s = Int64.to_int (Rng.bits64 rng) land 0x3FFFFFFF in
        let lc =
          { config.latency with Latency.scenario = { config.latency.Latency.scenario with Scenario.seed = s } }
        in
        match Latency.run ~smrp_metrics:smrp_m ~pim_metrics:pim_m lc with
        | Some _ -> collect (remaining - 1) (attempts - 1)
        | None -> collect remaining (attempts - 1)
      end
    in
    collect config.latency_runs (5 * config.latency_runs)
  end

let run ?jobs config =
  if config.scenarios < 1 then invalid_arg "Dashboard.run: scenarios must be positive";
  let rng = Rng.create config.seed in
  let seeds =
    List.init config.scenarios (fun _ -> Int64.to_int (Rng.bits64 rng) land 0x3FFFFFFF)
  in
  let per_seed = Pool.map ?jobs (measure_seed config) seeds in
  let collector = Report.collector () in
  let names = variant_names config in
  (* Register variants up front so the report keeps variant order even if a
     variant ends up empty. *)
  let registries = List.map (Report.variant_metrics collector) names in
  List.iter
    (fun rows_per_variant -> List.iter2 record_rows registries rows_per_variant)
    per_seed;
  run_latency config collector;
  let meta =
    [
      ("seed", string_of_int config.seed);
      ("scenarios", string_of_int config.scenarios);
      ("d_values", String.concat ", " (List.map (Printf.sprintf "%.2f") config.d_values));
      ("latency_runs", string_of_int config.latency_runs);
    ]
  in
  Report.of_collector ~title:"SMRP run report" ~meta collector
