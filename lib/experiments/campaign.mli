(** Declarative scenario-matrix campaigns: topology × churn × failure ×
    protocol, every cell a seeded, reproducible experiment.

    A campaign is a value ({!spec}): four axis lists whose cross product
    enumerates the cells, plus the paper's figure drivers as optional extra
    cells.  Running a campaign fans the cells out over {!Pool} under the
    byte-identical-to-sequential contract — workers return plain
    measurement rows, the orchestrator records them into per-cell metric
    registries after the fan-out joins — and renders one
    {!Smrp_obs.Report.t} comparison dashboard (ASCII, HTML, JSON).

    Seeding discipline: every cell derives its root seed from the campaign
    seed XOR an FNV-1a hash of the cell's name, so a cell's results depend
    only on its own coordinates — never on enumeration order, matrix shape,
    or sibling cells — and identical cells (a collapsed sweep axis) are
    deduplicated before the fan-out without changing any surviving cell. *)

type topology =
  | Waxman of { n : int; alpha : float; beta : float; link_delay : Smrp_topology.Waxman.link_delay }
  | Transit_stub of Smrp_topology.Transit_stub.params
  | Locality of { n : int; radius : float; p_near : float; p_far : float }
  | Scale_waxman of { n : int; target_degree : float }
      (** Streaming grid-bucketed generator ({!Smrp_topology.Scale}) for
          large [n]; [alpha]/[beta] derived from the target degree. *)

type protocol =
  | Spf_baseline
  | Smrp of { d_thresh : float; protection : bool }
  | Smrp_query of { d_thresh : float }

type fig = Fig7 | Fig8 | Fig9 | Fig10

type spec = {
  seed : int;
  instances : int;  (** Scenario instances per cell. *)
  horizon : float;  (** Simulated churn horizon per instance. *)
  topologies : (string * topology) list;
  churns : (string * Churn.model) list;
  failures : (string * Failure_model.model) list;
  protocols : (string * protocol) list;
  figures : fig list;  (** Paper-figure cells appended after the matrix. *)
  fig_scenarios : int;  (** Scenarios per figure data point. *)
  fig_topologies : int;  (** Fig. 7 topology count. *)
}

val default : spec
(** A broad matrix: three topology families × all four churn models × all
    five failure models × five protocol variants. *)

val quick : spec
(** The pinned CI matrix: 3 topologies × 3 churn models × 2 failure models
    (independent vs adversarial) × 3 protocols, 2 instances per cell —
    54 cells in a few seconds.  Its digest is pinned by
    [test/test_campaign.ml] so enumeration order can never silently
    drift. *)

type cell = {
  c_name : string;  (** ["topo/churn/fail/proto"]. *)
  c_topology : string * topology;
  c_churn : string * Churn.model;
  c_failure : string * Failure_model.model;
  c_protocol : string * protocol;
}

val cells : spec -> cell list
(** The deduplicated cross product, in axis order (topology outermost,
    protocol innermost); a repeated axis value — a collapsed sweep —
    contributes its cell once. *)

val cell_seed : spec -> cell -> int
(** [spec.seed] XOR FNV-1a of the cell name. *)

val spec_of_matrix : ?base:spec -> string -> (spec, string) result
(** Parse a matrix description, overriding [base] (default {!default})
    axis-wise.  Grammar (see DESIGN.md "Campaign DSL"):
    [clause (';' clause)*] with [clause := axis '=' value (',' value)*].
    Axes: [topo] (waxman\[:N\], ts, locality\[:N\], scale:N), [churn]
    (static\[:K\], flash, diurnal, heavy), [fail] (indep\[:K\],
    correlated, regional, cascade, adversarial\[:B\]), [proto] (spf,
    smrp:D, query:D, protected:D), and scalar clauses [instances=N],
    [horizon=T], [figs=7,8,9,10]. *)

val run : ?jobs:int -> spec -> Smrp_obs.Report.t
(** Run every cell (fanned out over {!Pool.map}) and the figure cells, and
    assemble the comparison report.  Byte-identical whatever [jobs]: cell
    rows are recorded into the collector only after the fan-out joins, and
    the figure drivers already guarantee the same. *)

val digest : Smrp_obs.Report.t -> string
(** Hex digest of the canonical report JSON — the pinning handle. *)

val mean_disrupted : Smrp_obs.Report.t -> failure:string -> float
(** Mean members disrupted per failure event over the matrix cells whose
    failure axis is [failure] (0 when no such cell recorded a failure) —
    the adversarial-vs-independent comparison the quick matrix pins. *)

val render_summary : Smrp_obs.Report.t -> string
(** Compact per-cell table (joins, failure events, mean disrupted, p90
    recovery distance) plus the adversarial-vs-independent ratio when both
    models are present. *)
