(** Drivers regenerating each figure of §4.  Every run is deterministic in
    its [seed]; scenario counts default to the paper's but scale down for
    quick runs.  Scenario fan-outs run domain-parallel through {!Pool}
    ([jobs] to override; results are byte-identical whatever the count).
    Every [run] accepts [?metrics]: a {!Smrp_obs.Metrics.t} registry that
    each scenario records into (see {!Scenario.run}) — shared across the
    parallel fan-out, it merges to exactly the sequential totals.

    Every [run] also accepts [?report]: a {!Smrp_obs.Report.collector}
    that receives each sweep row as its own variant (named after the swept
    parameter, e.g. ["smrp d=0.30"]), recorded via {!Scenario.record} on
    the orchestrating domain after the fan-out joins — the collected
    report is byte-identical whatever [jobs].

    Sampling note: the paper reuses each random topology for several member
    sets (e.g. 10 × 10 in Fig. 8); we draw an independent topology per
    scenario, which samples the same ensemble with marginally more
    between-scenario variance.  EXPERIMENTS.md discusses the substitution. *)

module Fig7 : sig
  (** Local vs. global detour on the SMRP tree (scatter, §4.3.1).
      Paper: most points below y = x; mean reduction ≈ 33%. *)

  type result = {
    points : (float * float) list;  (** (global RD, local RD) per member. *)
    mean_reduction : float;
    below_diagonal_fraction : float;  (** Strictly better local detour. *)
    on_diagonal_fraction : float;  (** Equal-length detours (ties). *)
  }

  val run :
    ?jobs:int ->
    ?metrics:Smrp_obs.Metrics.t ->
    ?report:Smrp_obs.Report.collector ->
    ?seed:int ->
    ?topologies:int ->
    unit ->
    result
  (** Default: 5 topologies of the reference configuration, with Euclidean
      link delays (the scatter is over a continuous recovery-distance
      scale, as in the paper's plot).  [jobs] caps the domain fan-out
      (default {!Pool.default_jobs}); any value yields identical results. *)

  val render : result -> string

  val csv : result -> string
  (** One line per member: [global_rd,local_rd]. *)
end

module Fig8 : sig
  (** Effect of [D_thresh] (§4.3.2).  Paper at 0.3: RD −20%, delay/cost +5%;
      improvement roughly linear in [D_thresh]. *)

  type row = {
    d_thresh : float;
    rd : Smrp_metrics.Stats.summary;  (** RD^relative across scenarios. *)
    rd_tree : Smrp_metrics.Stats.summary;
        (** Supplementary: the tree-construction contribution alone. *)
    delay : Smrp_metrics.Stats.summary;
    cost : Smrp_metrics.Stats.summary;
  }

  val run :
    ?jobs:int ->
    ?metrics:Smrp_obs.Metrics.t ->
    ?report:Smrp_obs.Report.collector ->
    ?seed:int ->
    ?values:float list ->
    ?scenarios:int ->
    unit ->
    row list
  (** Defaults: D_thresh ∈ {0.1, 0.2, 0.3, 0.4}, 100 scenarios each. *)

  val render : row list -> string

  val csv : row list -> string
  (** Numeric columns (means and CI half-widths) for plotting. *)
end

module Fig9 : sig
  (** Effect of node degree via α (§4.3.3).  Paper: improvement shrinks
      slightly as the degree grows; ≈12% even at degree 10. *)

  type row = {
    alpha : float;
    average_degree : float;
    rd : Smrp_metrics.Stats.summary;
    delay : Smrp_metrics.Stats.summary;
    cost : Smrp_metrics.Stats.summary;
  }

  val run :
    ?jobs:int ->
    ?metrics:Smrp_obs.Metrics.t ->
    ?report:Smrp_obs.Report.collector ->
    ?seed:int ->
    ?values:float list ->
    ?scenarios:int ->
    ?degree_ten_row:bool ->
    unit ->
    row list
  (** Defaults: α ∈ {0.15, 0.2, 0.25, 0.3}, 100 scenarios each, plus the
      §4.3.3 extension row with α calibrated to average degree ≈ 10. *)

  val render : row list -> string

  val csv : row list -> string
  (** Numeric columns (means and CI half-widths) for plotting. *)
end

module Fig10 : sig
  (** Effect of group size [N_G] (§4.3.4).  Paper: steady ≈20% RD reduction,
      ≈5% overhead, slight decline with larger groups. *)

  type row = {
    group_size : int;
    rd : Smrp_metrics.Stats.summary;
    delay : Smrp_metrics.Stats.summary;
    cost : Smrp_metrics.Stats.summary;
  }

  val run :
    ?jobs:int ->
    ?metrics:Smrp_obs.Metrics.t ->
    ?report:Smrp_obs.Report.collector ->
    ?seed:int ->
    ?values:int list ->
    ?scenarios:int ->
    unit ->
    row list
  (** Defaults: N_G ∈ {20, 30, 40, 50}, 100 scenarios each. *)

  val render : row list -> string

  val csv : row list -> string
  (** Numeric columns (means and CI half-widths) for plotting. *)
end
