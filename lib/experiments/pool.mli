(** Domain-parallel fan-out over independent seeded scenarios.

    {b Determinism contract}: [map f xs] equals [List.map f xs] exactly —
    workers claim inputs from a shared queue but write results into the slot
    of the input claimed, and the output is merged back in input order.
    Provided [f] is a pure function of its argument (every scenario derives
    its topology, group, failures and RNG stream from its own seed), the
    result is byte-identical whatever the job count or scheduling.

    [f] must not share mutable state across calls: each invocation runs in
    whichever worker domain claimed it.  State [f] records into a shared
    {!Smrp_obs.Metrics.t} registry is fine — the registry shards per domain
    and merges at snapshot.

    {b Observability}: [map] optionally records per-worker utilisation into
    a {!Smrp_obs.Profile.t} (tasks claimed, busy vs. idle wall time, one
    record per worker domain) and emits wall-clock task/worker spans to a
    {!Smrp_obs.Trace.t} — pair the tracer with a
    {!Smrp_obs.Trace.sharded_ring} sink so concurrent emission is safe;
    tids are domain ids.  Neither hook affects results. *)

val default_jobs : unit -> int
(** [SMRP_BENCH_JOBS] if set to a positive integer, otherwise
    [Domain.recommended_domain_count ()]. *)

val with_instrumentation :
  ?profile:Smrp_obs.Profile.t -> ?trace:Smrp_obs.Trace.t -> (unit -> 'a) -> 'a
(** Installs ambient defaults for {!map}'s [?profile]/[?trace] for the
    duration of the callback, so instrumentation reaches [Pool.map] calls
    buried inside figure runners without threading parameters through.
    Install and run from the orchestrating domain only; nesting restores
    the previous defaults on exit. *)

val ambient_trace : unit -> Smrp_obs.Trace.t option
(** The tracer installed by the innermost enclosing
    {!with_instrumentation}, if any.  Safe to call from a {!map} worker
    domain (the install happens before the workers spawn): task bodies that
    want to emit their own spans — e.g. [Scenario.run] installing the
    tracer on its Dijkstra workspace — read the hook here instead of
    requiring an extra parameter. *)

val map :
  ?jobs:int ->
  ?profile:Smrp_obs.Profile.t ->
  ?trace:Smrp_obs.Trace.t ->
  ('a -> 'b) ->
  'a list ->
  'b list
(** [map ?jobs f xs] is [List.map f xs] computed on [min jobs (length xs)]
    domains (the calling domain included).  [jobs] defaults to
    {!default_jobs}; [jobs <= 1] runs sequentially in the calling domain
    with no domain spawned (still recording one worker entry when
    instrumented).  The first exception raised by [f] stops the fan-out and
    is re-raised after all workers join.  [profile]/[trace] default to the
    ambient hooks of {!with_instrumentation}. *)

val mapi :
  ?jobs:int ->
  ?profile:Smrp_obs.Profile.t ->
  ?trace:Smrp_obs.Trace.t ->
  (int -> 'a -> 'b) ->
  'a list ->
  'b list
