(** Domain-parallel fan-out over independent seeded scenarios.

    {b Determinism contract}: [map f xs] equals [List.map f xs] exactly —
    workers claim inputs from a shared queue but write results into the slot
    of the input claimed, and the output is merged back in input order.
    Provided [f] is a pure function of its argument (every scenario derives
    its topology, group, failures and RNG stream from its own seed), the
    result is byte-identical whatever the job count or scheduling.

    [f] must not share mutable state across calls: each invocation runs in
    whichever worker domain claimed it. *)

val default_jobs : unit -> int
(** [SMRP_BENCH_JOBS] if set to a positive integer, otherwise
    [Domain.recommended_domain_count ()]. *)

val map : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map ?jobs f xs] is [List.map f xs] computed on [min jobs (length xs)]
    domains (the calling domain included).  [jobs] defaults to
    {!default_jobs}; [jobs <= 1] runs sequentially in the calling domain
    with no domain spawned.  The first exception raised by [f] stops the
    fan-out and is re-raised after all workers join. *)

val mapi : ?jobs:int -> (int -> 'a -> 'b) -> 'a list -> 'b list
