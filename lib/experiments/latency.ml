module Rng = Smrp_rng.Rng
module Graph = Smrp_graph.Graph
module Tree = Smrp_core.Tree
module Failure = Smrp_core.Failure
module Engine = Smrp_sim.Engine
module Protocol = Smrp_sim.Protocol
module Stats = Smrp_metrics.Stats
module Table = Smrp_metrics.Table
module Waxman = Smrp_topology.Waxman
module Obs = Smrp_obs.Obs
module Trace = Smrp_obs.Trace
module Timeline = Smrp_obs.Timeline

type config = {
  scenario : Scenario.config;
  ospf_convergence : float;
  settle_time : float;
  run_time : float;
}

let default =
  {
    (* Euclidean propagation delays: the packet-level experiment is about
       wall-clock latency, so physical per-link delays are the right model. *)
    scenario = { Scenario.default with Scenario.link_delay = `Euclidean };
    ospf_convergence = 5.0;
    settle_time = 60.0;
    run_time = 60.0;
  }

type side_result = {
  restored : int;
  disrupted : int;
  mean_detection : float;
  mean_restoration : float;
  control_messages : int;
  episodes : Timeline.episode list;
  metrics : string option;
}

type result = { seed : int; smrp : side_result; pim : side_result }

let run_side ?obs config ~graph ~source ~members ~victim strategy =
  let engine = Engine.create ?obs () in
  let proto_config =
    {
      Protocol.default_config with
      Protocol.strategy;
      ospf_convergence = config.ospf_convergence;
      d_thresh = config.scenario.Scenario.d_thresh;
    }
  in
  let proto = Protocol.create ~config:proto_config engine graph ~source in
  Protocol.start proto;
  (* Members join one hello period apart so signalling interleaves
     naturally. *)
  List.iteri
    (fun i m -> ignore (Engine.schedule engine ~delay:(0.5 +. float_of_int i) (fun () -> Protocol.join proto m)))
    members;
  Engine.run ~until:config.settle_time engine;
  (* Worst-case failure for the victim in the tree this protocol built. *)
  (match Failure.worst_case_for_member (Protocol.tree proto) victim with
  | Some (Failure.Link eid) -> Protocol.inject_link_failure proto eid
  | Some (Failure.Node _ | Failure.Multi _) | None ->
      invalid_arg "Latency.run_side: no failable link");
  let before = Protocol.control_messages proto in
  Engine.run ~until:(config.settle_time +. config.run_time) engine;
  let reports = Protocol.reports proto in
  let detections = List.filter_map (fun r -> r.Protocol.detected) reports in
  let restorations = List.filter_map (fun r -> r.Protocol.restored) reports in
  {
    restored = List.length restorations;
    disrupted = List.length detections;
    mean_detection = (match detections with [] -> 0.0 | _ -> Stats.mean detections);
    mean_restoration = (match restorations with [] -> 0.0 | _ -> Stats.mean restorations);
    control_messages = Protocol.control_messages proto - before;
    episodes = Protocol.timeline proto;
    metrics = Option.map (fun o -> Smrp_obs.Metrics.render (Obs.metrics o)) obs;
  }

let run ?trace_sink ?(with_metrics = false) ?smrp_metrics ?pim_metrics config =
  let sc = config.scenario in
  let rng = Rng.create sc.Scenario.seed in
  let topo_rng = Rng.split rng in
  let member_rng = Rng.split rng in
  let topo =
    Waxman.generate ~link_delay:sc.Scenario.link_delay topo_rng ~n:sc.Scenario.n
      ~alpha:sc.Scenario.alpha ~beta:sc.Scenario.beta
  in
  let graph = topo.Waxman.graph in
  let chosen =
    Array.of_list
      (Rng.sample_without_replacement member_rng (sc.Scenario.group_size + 1) sc.Scenario.n)
  in
  Rng.shuffle member_rng chosen;
  let source = chosen.(0) in
  let members = Array.to_list (Array.sub chosen 1 sc.Scenario.group_size) in
  (* Pick a victim whose worst-case link is not a bridge in either tree, so
     recovery is physically possible (the paper measures recovery distances,
     which presumes recoverable members). *)
  let bridges = Smrp_graph.Connectivity.bridges graph in
  let spf_tree = Smrp_core.Spf.build graph ~source ~members in
  let smrp_tree =
    Smrp_core.Smrp.build ~d_thresh:sc.Scenario.d_thresh graph ~source ~members
  in
  let recoverable m =
    let non_bridge tree =
      match Failure.worst_case_for_member tree m with
      | Some (Failure.Link eid) -> not (List.mem eid bridges)
      | Some (Failure.Node _ | Failure.Multi _) | None -> false
    in
    non_bridge spf_tree && non_bridge smrp_tree
  in
  match List.filter recoverable members with
  | [] -> None (* every worst-case link is a bridge: nothing to measure *)
  | candidates ->
      let victim = List.nth candidates (Rng.int member_rng (List.length candidates)) in
      (* One observability context per side: distinct trace pids let both
         simulations share a single trace file, and separate registries keep
         the metric streams comparable. *)
      let side name pid strategy metrics =
        let obs =
          if trace_sink = None && (not with_metrics) && Option.is_none metrics then None
          else begin
            let o = Obs.create ?sink:trace_sink ~pid ?metrics () in
            let tr = Obs.trace o in
            if Trace.enabled tr then Trace.process_name tr name;
            Some o
          end
        in
        run_side ?obs config ~graph ~source ~members ~victim strategy
      in
      Some
        {
          seed = sc.Scenario.seed;
          smrp = side "SMRP (local)" 1 Protocol.Local smrp_metrics;
          pim = side "PIM (global)" 2 Protocol.Global pim_metrics;
        }

let run_many ?(seed = 25) ?(runs = 10) config =
  let rng = Rng.create seed in
  let rec collect acc remaining attempts =
    if remaining = 0 || attempts = 0 then List.rev acc
    else begin
      let s = Int64.to_int (Rng.bits64 rng) land 0x3FFFFFFF in
      match run { config with scenario = { config.scenario with Scenario.seed = s } } with
      | Some r -> collect (r :: acc) (remaining - 1) (attempts - 1)
      | None -> collect acc remaining (attempts - 1)
    end
  in
  collect [] runs (5 * runs)

let rec render results =
  let t =
    Table.create
      ~columns:
        [ "seed"; "protocol"; "disrupted"; "restored"; "detect (s)"; "restore (s)"; "ctrl msgs" ]
  in
  let row seed name (s : side_result) =
    Table.add_row t
      [
        string_of_int seed;
        name;
        string_of_int s.disrupted;
        string_of_int s.restored;
        Printf.sprintf "%.2f" s.mean_detection;
        Printf.sprintf "%.2f" s.mean_restoration;
        string_of_int s.control_messages;
      ]
  in
  List.iter
    (fun r ->
      row r.seed "SMRP (local)" r.smrp;
      row r.seed "PIM (global)" r.pim)
    results;
  let smrp_means = List.map (fun r -> r.smrp.mean_restoration) results in
  let pim_means = List.map (fun r -> r.pim.mean_restoration) results in
  Printf.sprintf
    "Restoration latency: SMRP local detour vs PIM global detour (packet-level)\n%s\n\
     mean restoration: SMRP %.2fs, PIM %.2fs (PIM is gated by OSPF reconvergence ~%.0fs, [25])\n\n%s"
    (Table.render t) (Stats.mean smrp_means) (Stats.mean pim_means) 5.0 (render_phases results)

and render_phases results =
  (* The §3.2 decomposition behind the scalars above: where each disrupted
     member's restoration time went, per recovery step. *)
  let t =
    Table.create
      ~columns:
        [
          "seed"; "protocol"; "member"; "detect (s)"; "signal (s)"; "install (s)";
          "1st data (s)"; "total (s)"; "attempts";
        ]
  in
  let cell = function Some d -> Printf.sprintf "%.3f" d | None -> "-" in
  let acc = Hashtbl.create 16 in
  let note name phase dur =
    Option.iter
      (fun d ->
        let key = (name, phase) in
        Hashtbl.replace acc key (d :: Option.value ~default:[] (Hashtbl.find_opt acc key)))
      dur
  in
  List.iter
    (fun r ->
      List.iter
        (fun (name, side) ->
          List.iter
            (fun (e : Timeline.episode) ->
              let d = Timeline.phase_durations e in
              List.iter (fun (p, dur) -> note name p dur) d;
              Table.add_row t
                [
                  string_of_int r.seed;
                  name;
                  string_of_int e.Timeline.member;
                  cell (List.assoc Timeline.Detection d);
                  cell (List.assoc Timeline.Signalling d);
                  cell (List.assoc Timeline.Installation d);
                  cell (List.assoc Timeline.First_data d);
                  cell (Timeline.total e);
                  string_of_int e.Timeline.attempts;
                ])
            side.episodes)
        [ ("SMRP (local)", r.smrp); ("PIM (global)", r.pim) ])
    results;
  let mean_line name =
    let m phase =
      match Hashtbl.find_opt acc (name, phase) with
      | Some ds -> Printf.sprintf "%s %.3fs" (Timeline.phase_name phase) (Stats.mean ds)
      | None -> Printf.sprintf "%s -" (Timeline.phase_name phase)
    in
    Printf.sprintf "  %-13s %s\n" name (String.concat ", " (List.map m Timeline.phases))
  in
  let metrics_blocks =
    List.concat_map
      (fun r ->
        List.filter_map
          (fun (name, side) ->
            Option.map
              (fun m -> Printf.sprintf "\nmetrics, seed %d, %s:\n%s" r.seed name m)
              side.metrics)
          [ ("SMRP (local)", r.smrp); ("PIM (global)", r.pim) ])
      results
  in
  Printf.sprintf
    "Recovery phase breakdown (failure -> detection -> signalling -> installation -> first data)\n\
     %s\nphase means:\n%s%s%s"
    (Table.render t)
    (mean_line "SMRP (local)")
    (mean_line "PIM (global)")
    (String.concat "" metrics_blocks)
