module Rng = Smrp_rng.Rng
module Graph = Smrp_graph.Graph
module Tree = Smrp_core.Tree
module Failure = Smrp_core.Failure
module Smrp = Smrp_core.Smrp
module Session = Smrp_core.Session
module Waxman = Smrp_topology.Waxman
module Transit_stub = Smrp_topology.Transit_stub
module Flat_models = Smrp_topology.Flat_models
module Scale = Smrp_topology.Scale
module Metrics = Smrp_obs.Metrics
module Sketch = Smrp_obs.Sketch
module Series = Smrp_obs.Series
module Report = Smrp_obs.Report

type topology =
  | Waxman of { n : int; alpha : float; beta : float; link_delay : Waxman.link_delay }
  | Transit_stub of Transit_stub.params
  | Locality of { n : int; radius : float; p_near : float; p_far : float }
  | Scale_waxman of { n : int; target_degree : float }

type protocol =
  | Spf_baseline
  | Smrp of { d_thresh : float; protection : bool }
  | Smrp_query of { d_thresh : float }

type fig = Fig7 | Fig8 | Fig9 | Fig10

type spec = {
  seed : int;
  instances : int;
  horizon : float;
  topologies : (string * topology) list;
  churns : (string * Churn.model) list;
  failures : (string * Failure_model.model) list;
  protocols : (string * protocol) list;
  figures : fig list;
  fig_scenarios : int;
  fig_topologies : int;
}

let default =
  {
    seed = 1;
    instances = 3;
    horizon = 200.0;
    topologies =
      [
        ("waxman100", Waxman { n = 100; alpha = 0.2; beta = 0.2; link_delay = `Euclidean });
        ("ts", Transit_stub Transit_stub.default_params);
        ("loc100", Locality { n = 100; radius = 0.3; p_near = 0.4; p_far = 0.01 });
      ];
    churns =
      [
        ("static", Churn.Static { group_size = 20 });
        ( "flash",
          Churn.Flash_crowd { crowds = 4; mean_size = 8.0; spread = 2.0; mean_lifetime = 30.0 } );
        ("diurnal", Churn.Diurnal { waves = 3; wave_size = 10 });
        ("heavy", Churn.Heavy_tail { arrivals = 40; alpha = 2.5; x_min = 5.0 });
      ];
    failures =
      [
        ("indep", Failure_model.Independent { events = 6; elements = 1 });
        ("correlated", Failure_model.Correlated { events = 4; burst = 3 });
        ("regional", Failure_model.Regional { events = 3; radius = 1 });
        ("cascade", Failure_model.Cascading { events = 3; depth = 3 });
        ("adversarial", Failure_model.Adversarial { events = 3; budget = 3; passes = 1 });
      ];
    protocols =
      [
        ("spf", Spf_baseline);
        ("smrp0.1", Smrp { d_thresh = 0.1; protection = false });
        ("smrp0.3", Smrp { d_thresh = 0.3; protection = false });
        ("protected0.3", Smrp { d_thresh = 0.3; protection = true });
        ("query0.3", Smrp_query { d_thresh = 0.3 });
      ];
    figures = [];
    fig_scenarios = 40;
    fig_topologies = 3;
  }

let quick =
  {
    seed = 42;
    instances = 2;
    horizon = 100.0;
    topologies =
      [
        ("waxman60", Waxman { n = 60; alpha = 0.25; beta = 0.2; link_delay = `Euclidean });
        ( "ts",
          Transit_stub
            {
              Transit_stub.transit_domains = 1;
              transit_nodes_per_domain = 3;
              stubs_per_transit_node = 2;
              stub_nodes = 7;
              stub_alpha = 0.9;
              stub_beta = 0.6;
            } );
        ("loc60", Locality { n = 60; radius = 0.3; p_near = 0.4; p_far = 0.01 });
      ];
    churns =
      [
        ( "flash",
          Churn.Flash_crowd { crowds = 3; mean_size = 6.0; spread = 2.0; mean_lifetime = 25.0 } );
        ("diurnal", Churn.Diurnal { waves = 2; wave_size = 8 });
        ("heavy", Churn.Heavy_tail { arrivals = 25; alpha = 2.5; x_min = 5.0 });
      ];
    failures =
      [
        ("indep", Failure_model.Independent { events = 4; elements = 1 });
        ("adversarial", Failure_model.Adversarial { events = 3; budget = 3; passes = 1 });
      ];
    protocols =
      [
        ("spf", Spf_baseline);
        ("smrp0.3", Smrp { d_thresh = 0.3; protection = false });
        ("query0.3", Smrp_query { d_thresh = 0.3 });
      ];
    figures = [];
    fig_scenarios = 12;
    fig_topologies = 2;
  }

type cell = {
  c_name : string;
  c_topology : string * topology;
  c_churn : string * Churn.model;
  c_failure : string * Failure_model.model;
  c_protocol : string * protocol;
}

let cells spec =
  let seen = Hashtbl.create 64 in
  let out = ref [] in
  List.iter
    (fun topo ->
      List.iter
        (fun churn ->
          List.iter
            (fun fail ->
              List.iter
                (fun proto ->
                  let name =
                    String.concat "/" [ fst topo; fst churn; fst fail; fst proto ]
                  in
                  if not (Hashtbl.mem seen name) then begin
                    Hashtbl.replace seen name ();
                    out :=
                      {
                        c_name = name;
                        c_topology = topo;
                        c_churn = churn;
                        c_failure = fail;
                        c_protocol = proto;
                      }
                      :: !out
                  end)
                spec.protocols)
            spec.failures)
        spec.churns)
    spec.topologies;
  List.rev !out

(* FNV-1a over the cell name: the per-cell seed depends only on the cell's
   own coordinates, never on enumeration order or matrix shape. *)
let fnv1a s =
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c -> h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) 0x100000001b3L)
    s;
  Int64.to_int (Int64.logand !h 0x3FFF_FFFF_FFFF_FFFFL)

let cell_seed spec cell = spec.seed lxor fnv1a cell.c_name

(* -- Cell execution ------------------------------------------------------ *)

let build_topology topo rng =
  match topo with
  | Waxman { n; alpha; beta; link_delay } ->
      (Waxman.generate ~link_delay rng ~n ~alpha ~beta).Waxman.graph
  | Transit_stub params -> (Transit_stub.generate rng params).Transit_stub.graph
  | Locality { n; radius; p_near; p_far } ->
      (Flat_models.locality rng ~n ~radius ~p_near ~p_far).Flat_models.graph
  | Scale_waxman { n; target_degree } ->
      let alpha, beta = Scale.degree_params ~n ~target_degree in
      (Scale.waxman rng ~n ~alpha ~beta).Scale.graph

let session_of g ~source = function
  | Spf_baseline -> Session.create g ~source ~protocol:Session.Spf
  | Smrp { d_thresh; protection } ->
      Session.create ~protection g ~source ~protocol:(Session.Smrp { d_thresh })
  | Smrp_query { d_thresh } ->
      Session.create g ~source ~protocol:(Session.Smrp_query { d_thresh })

(* Plain measurements a worker returns for one cell; the orchestrator turns
   them into metric registries after the fan-out joins, so the report is
   byte-identical whatever the job count. *)
type row = {
  mutable joins : int;
  mutable leaves : int;
  mutable skipped : int;
  mutable fail_events : int;
  mutable disrupted : int;
  mutable repaired : int;
  mutable lost : int;
  mutable members_final : int;
  mutable rd : float list;  (** reversed *)
  mutable delays : float list;  (** reversed *)
  mutable disrupted_t : (float * float) list;  (** reversed *)
}

let empty_row () =
  {
    joins = 0;
    leaves = 0;
    skipped = 0;
    fail_events = 0;
    disrupted = 0;
    repaired = 0;
    lost = 0;
    members_final = 0;
    rd = [];
    delays = [];
    disrupted_t = [];
  }

type action = Churn_op of Churn.op | Fail_draw

let timeline churn fail_times =
  let churn = List.map (fun { Churn.at; op } -> (at, Churn_op op)) churn in
  let fails = List.map (fun at -> (at, Fail_draw)) fail_times in
  (* Stable merge: on equal instants churn applies before the failure. *)
  List.merge (fun (t1, _) (t2, _) -> compare (t1 : float) t2) churn fails

let run_instance spec cell acc rng =
  let g = build_topology (snd cell.c_topology) (Rng.split rng) in
  let n = Graph.node_count g in
  let source = Rng.int rng n in
  let churn_rng = Rng.split rng in
  let fail_rng = Rng.split rng in
  let churn =
    Churn.schedule (snd cell.c_churn) churn_rng ~n ~source ~horizon:spec.horizon
  in
  let fmodel = snd cell.c_failure in
  let k = Failure_model.events fmodel in
  let fail_times =
    List.init k (fun i -> spec.horizon *. float_of_int (i + 1) /. float_of_int (k + 1))
  in
  let s = session_of g ~source (snd cell.c_protocol) in
  let ws = Failure_model.create_ws () in
  let apply (at, act) =
    match act with
    | Churn_op (Churn.Join m) ->
        let tree = Session.tree s in
        let failure = Session.active_failure s in
        let dead =
          match failure with Some f -> not (Failure.node_ok f m) | None -> false
        in
        if Tree.is_member tree m || dead then acc.skipped <- acc.skipped + 1
        else begin
          match Smrp.spf_distance ?failure tree m with
          | None -> acc.skipped <- acc.skipped + 1
          | Some _ ->
              Session.join s m;
              acc.joins <- acc.joins + 1
        end
    | Churn_op (Churn.Leave m) ->
        (* The member may already be gone: dropped as [Lost] by a failure. *)
        if Tree.is_member (Session.tree s) m then begin
          Session.leave s m;
          acc.leaves <- acc.leaves + 1
        end
        else acc.skipped <- acc.skipped + 1
    | Fail_draw -> (
        let tree = Session.tree s in
        match Failure_model.draw ws fmodel fail_rng g ~tree with
        | None -> ()
        | Some f ->
            acc.fail_events <- acc.fail_events + 1;
            let d = Failure_model.disrupted tree f in
            acc.disrupted <- acc.disrupted + d;
            acc.disrupted_t <- (at, float_of_int d) :: acc.disrupted_t;
            let before = Tree.member_count tree in
            let repairs = Session.fail s f in
            acc.repaired <- acc.repaired + List.length repairs;
            List.iter
              (fun r ->
                acc.rd <- r.Session.detour.Smrp_core.Recovery.recovery_distance :: acc.rd)
              repairs;
            let after = Tree.member_count (Session.tree s) in
            acc.lost <- acc.lost + (before - after))
  in
  List.iter apply (timeline churn fail_times);
  let tree = Session.tree s in
  acc.members_final <- acc.members_final + Tree.member_count tree;
  List.iter (fun m -> acc.delays <- Tree.delay_to_source tree m :: acc.delays) (Tree.members tree)

let run_cell spec cell =
  let root = Rng.create (cell_seed spec cell) in
  let acc = empty_row () in
  for _ = 1 to spec.instances do
    run_instance spec cell acc (Rng.split root)
  done;
  acc.rd <- List.rev acc.rd;
  acc.delays <- List.rev acc.delays;
  acc.disrupted_t <- List.rev acc.disrupted_t;
  acc

let variant_of spec cell row =
  let m = Metrics.create () in
  let set name v = Metrics.Counter.add (Metrics.counter m name) v in
  set "churn.joins" row.joins;
  set "churn.leaves" row.leaves;
  set "churn.skipped" row.skipped;
  set "fail.events" row.fail_events;
  set "fail.disrupted" row.disrupted;
  set "fail.repaired" row.repaired;
  set "fail.lost" row.lost;
  set "members.final" row.members_final;
  let rd = Metrics.sketch m "rd.q" in
  List.iter (Sketch.observe rd) row.rd;
  let delay = Metrics.sketch m "delay.q" in
  List.iter (Sketch.observe delay) row.delays;
  let series =
    Metrics.series m ~kind:Series.Sum ~interval:(spec.horizon /. 32.0) "disrupted.t"
  in
  List.iter (fun (ts, v) -> Series.observe series ~ts v) row.disrupted_t;
  let attrs =
    [
      ("topology", fst cell.c_topology);
      ("churn", fst cell.c_churn);
      ("failure", fst cell.c_failure);
      ("protocol", fst cell.c_protocol);
      ("seed", string_of_int (cell_seed spec cell));
    ]
  in
  Report.of_metrics ~name:cell.c_name ~attrs m

let fig_variants ?jobs spec =
  match spec.figures with
  | [] -> []
  | figs ->
      let c = Report.collector () in
      List.iter
        (fun fig ->
          match fig with
          | Fig7 ->
              ignore
                (Figures.Fig7.run ?jobs ~report:c ~seed:7 ~topologies:spec.fig_topologies ()
                  : Figures.Fig7.result)
          | Fig8 ->
              ignore
                (Figures.Fig8.run ?jobs ~report:c ~seed:8 ~scenarios:spec.fig_scenarios ()
                  : Figures.Fig8.row list)
          | Fig9 ->
              ignore
                (Figures.Fig9.run ?jobs ~report:c ~seed:9 ~scenarios:spec.fig_scenarios
                   ~degree_ten_row:false ()
                  : Figures.Fig9.row list)
          | Fig10 ->
              ignore
                (Figures.Fig10.run ?jobs ~report:c ~seed:10 ~scenarios:spec.fig_scenarios ()
                  : Figures.Fig10.row list))
        figs;
      (* Same projection as [Report.of_collector]: name, no attrs — so a
         figure cell's variant is byte-identical to the standalone driver's. *)
      List.map (fun (name, m) -> Report.of_metrics ~name m) (Report.collected c)

let run ?jobs spec =
  let cs = cells spec in
  let rows = Pool.map ?jobs (run_cell spec) cs in
  let variants = List.map2 (variant_of spec) cs rows in
  let meta =
    [
      ("campaign.seed", string_of_int spec.seed);
      ("campaign.instances", string_of_int spec.instances);
      ("campaign.horizon", Printf.sprintf "%g" spec.horizon);
      ( "campaign.matrix",
        Printf.sprintf "%dx%dx%dx%d"
          (List.length spec.topologies) (List.length spec.churns)
          (List.length spec.failures) (List.length spec.protocols) );
      ("campaign.cells", string_of_int (List.length cs));
    ]
  in
  Report.make ~title:"smrp campaign" ~meta (variants @ fig_variants ?jobs spec)

(* -- Analysis ------------------------------------------------------------ *)

let digest report = Digest.to_hex (Digest.string (Report.to_string ~minify:true report))

let count v name = match List.assoc_opt name v.Report.v_counts with Some c -> c | None -> 0

let matrix_variants report =
  List.filter_map
    (fun v ->
      match String.split_on_char '/' v.Report.v_name with
      | [ topo; churn; fail; proto ] -> Some (v, (topo, churn, fail, proto))
      | _ -> None)
    report.Report.r_variants

let mean_disrupted report ~failure =
  let num, den =
    List.fold_left
      (fun (num, den) (v, (_, _, fail, _)) ->
        if String.equal fail failure then
          (num + count v "fail.disrupted", den + count v "fail.events")
        else (num, den))
      (0, 0) (matrix_variants report)
  in
  if den = 0 then 0.0 else float_of_int num /. float_of_int den

let render_summary report =
  let rows = matrix_variants report in
  let b = Buffer.create 1024 in
  Buffer.add_string b
    (Printf.sprintf "%-40s %6s %6s %6s %10s %8s %6s\n" "cell" "joins" "fails" "lost"
       "disr/fail" "rd.p90" "final");
  List.iter
    (fun (v, _) ->
      let fails = count v "fail.events" in
      let per_fail =
        if fails = 0 then 0.0 else float_of_int (count v "fail.disrupted") /. float_of_int fails
      in
      let p90 =
        match List.assoc_opt "rd.q" v.Report.v_dists with
        | Some d -> Printf.sprintf "%8.3f" d.Report.d_p90
        | None -> "       -"
      in
      Buffer.add_string b
        (Printf.sprintf "%-40s %6d %6d %6d %10.2f %s %6d\n" v.Report.v_name
           (count v "churn.joins") fails (count v "fail.lost") per_fail p90
           (count v "members.final")))
    rows;
  let failures =
    List.sort_uniq compare (List.map (fun (_, (_, _, f, _)) -> f) rows)
  in
  if List.mem "indep" failures && List.mem "adversarial" failures then begin
    let indep = mean_disrupted report ~failure:"indep" in
    let adv = mean_disrupted report ~failure:"adversarial" in
    Buffer.add_string b
      (Printf.sprintf
         "\nmean disrupted/failure: indep %.2f, adversarial %.2f (x%.2f)\n"
         indep adv
         (if indep > 0.0 then adv /. indep else Float.nan))
  end;
  Buffer.contents b

(* -- Matrix grammar ------------------------------------------------------ *)

let label_of_token t = String.concat "" (String.split_on_char ':' t)

let split_token t =
  match String.index_opt t ':' with
  | None -> (t, None)
  | Some i -> (String.sub t 0 i, Some (String.sub t (i + 1) (String.length t - i - 1)))

let int_param ~what ~default = function
  | None -> default
  | Some s -> (
      match int_of_string_opt s with
      | Some v when v > 0 -> v
      | _ -> failwith (Printf.sprintf "%s: expected a positive integer, got %S" what s))

let float_param ~what ~default = function
  | None -> default
  | Some s -> (
      match float_of_string_opt s with
      | Some v when v > 0.0 -> v
      | _ -> failwith (Printf.sprintf "%s: expected a positive number, got %S" what s))

let topo_of_token t =
  let base, param = split_token t in
  let topo =
    match base with
    | "waxman" ->
        let n = int_param ~what:t ~default:100 param in
        Waxman { n; alpha = 0.2; beta = 0.2; link_delay = `Euclidean }
    | "ts" -> Transit_stub Transit_stub.default_params
    | "locality" ->
        let n = int_param ~what:t ~default:100 param in
        Locality { n; radius = 0.3; p_near = 0.4; p_far = 0.01 }
    | "scale" ->
        let n = int_param ~what:t ~default:10_000 param in
        Scale_waxman { n; target_degree = 4.0 }
    | _ ->
        failwith
          (Printf.sprintf "topo %S: expected waxman[:N], ts, locality[:N] or scale:N" t)
  in
  (label_of_token t, topo)

let churn_of_token t =
  let base, param = split_token t in
  let churn =
    match base with
    | "static" -> Churn.Static { group_size = int_param ~what:t ~default:20 param }
    | "flash" ->
        Churn.Flash_crowd { crowds = 4; mean_size = 8.0; spread = 2.0; mean_lifetime = 30.0 }
    | "diurnal" -> Churn.Diurnal { waves = 3; wave_size = 10 }
    | "heavy" -> Churn.Heavy_tail { arrivals = 40; alpha = 2.5; x_min = 5.0 }
    | _ ->
        failwith (Printf.sprintf "churn %S: expected static[:K], flash, diurnal or heavy" t)
  in
  (label_of_token t, churn)

let fail_of_token t =
  let base, param = split_token t in
  let fail =
    match base with
    | "indep" ->
        Failure_model.Independent { events = 5; elements = int_param ~what:t ~default:1 param }
    | "correlated" -> Failure_model.Correlated { events = 4; burst = 3 }
    | "regional" -> Failure_model.Regional { events = 3; radius = 1 }
    | "cascade" -> Failure_model.Cascading { events = 3; depth = 3 }
    | "adversarial" ->
        Failure_model.Adversarial
          { events = 3; budget = int_param ~what:t ~default:3 param; passes = 1 }
    | _ ->
        failwith
          (Printf.sprintf
             "fail %S: expected indep[:K], correlated, regional, cascade or adversarial[:B]" t)
  in
  (label_of_token t, fail)

let proto_of_token t =
  let base, param = split_token t in
  let proto =
    match base with
    | "spf" -> Spf_baseline
    | "smrp" -> Smrp { d_thresh = float_param ~what:t ~default:0.3 param; protection = false }
    | "protected" ->
        Smrp { d_thresh = float_param ~what:t ~default:0.3 param; protection = true }
    | "query" -> Smrp_query { d_thresh = float_param ~what:t ~default:0.3 param }
    | _ ->
        failwith
          (Printf.sprintf "proto %S: expected spf, smrp[:D], protected[:D] or query[:D]" t)
  in
  (label_of_token t, proto)

let fig_of_token t =
  match t with
  | "7" -> Fig7
  | "8" -> Fig8
  | "9" -> Fig9
  | "10" -> Fig10
  | _ -> failwith (Printf.sprintf "figs %S: expected 7, 8, 9 or 10" t)

let single ~axis = function
  | [ v ] -> v
  | _ -> failwith (Printf.sprintf "%s: expected a single value" axis)

let spec_of_matrix ?(base = default) s =
  try
    let spec = ref base in
    let clauses =
      String.split_on_char ';' s |> List.map String.trim
      |> List.filter (fun c -> not (String.equal c ""))
    in
    if clauses = [] then failwith "empty matrix spec";
    List.iter
      (fun clause ->
        match String.index_opt clause '=' with
        | None ->
            failwith (Printf.sprintf "clause %S: expected axis=value[,value...]" clause)
        | Some i ->
            let axis = String.trim (String.sub clause 0 i) in
            let values =
              String.sub clause (i + 1) (String.length clause - i - 1)
              |> String.split_on_char ',' |> List.map String.trim
              |> List.filter (fun v -> not (String.equal v ""))
            in
            if values = [] then failwith (Printf.sprintf "axis %S: no values" axis);
            (match axis with
            | "topo" -> spec := { !spec with topologies = List.map topo_of_token values }
            | "churn" -> spec := { !spec with churns = List.map churn_of_token values }
            | "fail" -> spec := { !spec with failures = List.map fail_of_token values }
            | "proto" -> spec := { !spec with protocols = List.map proto_of_token values }
            | "figs" -> spec := { !spec with figures = List.map fig_of_token values }
            | "instances" ->
                spec :=
                  { !spec with instances = int_param ~what:axis ~default:0 (Some (single ~axis values)) }
            | "horizon" ->
                spec :=
                  { !spec with horizon = float_param ~what:axis ~default:0.0 (Some (single ~axis values)) }
            | "seed" -> (
                match int_of_string_opt (single ~axis values) with
                | Some v -> spec := { !spec with seed = v }
                | None -> failwith "seed: expected an integer")
            | _ ->
                failwith
                  (Printf.sprintf
                     "unknown axis %S: expected topo, churn, fail, proto, figs, instances, \
                      horizon or seed"
                     axis)))
      clauses;
    Ok !spec
  with Failure msg -> Error msg
