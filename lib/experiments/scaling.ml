module Rng = Smrp_rng.Rng
module Graph = Smrp_graph.Graph
module Dijkstra = Smrp_graph.Dijkstra
module Dspf = Smrp_graph.Dspf
module Scale = Smrp_topology.Scale
module Transit_stub = Smrp_topology.Transit_stub
module Tree = Smrp_core.Tree
module Protect = Smrp_core.Protect

let now = Smrp_obs.Trace.wall_clock

type row = {
  model : string;
  n : int;
  edges : int;
  avg_degree : float;
  gen_s : float;  (** Topology draw, connectivity repair and CSR freeze. *)
  spf_build_s : float;  (** {!Dspf.create}: initial source-rooted tree. *)
  spf_repair_us : float;  (** Mean incremental repair per tree-edge failure. *)
  tree_edges : int;  (** Edges of the sample multicast tree. *)
  protect_entry_ms : float;
      (** Mean branch-detour precompute per table entry, over a bounded
          sample of tree edges (full [prepare] = entries x this). *)
  protect_lookup_ns : float;  (** Mean per-lookup cost on the warm tables. *)
}

(* Transit–stub shape scaled to ~[n] total nodes: domain count grows with
   the cube root so all three levels deepen together. *)
let ts_params ~n =
  let domains = max 2 (int_of_float (Float.cbrt (float_of_int n /. 100.0))) in
  let tpd = max 4 (int_of_float (Float.sqrt (float_of_int n /. float_of_int (domains * 20)))) in
  let stub_nodes = 8 in
  let per_transit =
    max 1 ((n - (domains * tpd)) / (domains * tpd * stub_nodes))
  in
  {
    Transit_stub.default_params with
    Transit_stub.transit_domains = domains;
    transit_nodes_per_domain = tpd;
    stubs_per_transit_node = per_transit;
    stub_nodes;
  }

(* A source-rooted sample tree built straight from the SPF parents: grafting
   each member's Dspf path costs O(path), so even the 10⁶-node tree builds
   in milliseconds — the per-join candidate search the protocols run is not
   what this sweep measures. *)
let sample_tree sp g ~source ~members =
  let t = Tree.create g ~source in
  List.iter
    (fun m ->
      if (not (Tree.is_on_tree t m)) && Dspf.reachable sp m then begin
        let rec climb v acc_nodes acc_edges =
          if Tree.is_on_tree t v then (v :: acc_nodes, acc_edges)
          else
            let p = Dspf.parent sp v and e = Dspf.parent_edge sp v in
            if p < 0 || e < 0 then (v :: acc_nodes, acc_edges)
            else climb p (v :: acc_nodes) (e :: acc_edges)
        in
        let nodes, edges = climb m [] [] in
        (match edges with [] -> () | _ -> Tree.graft t ~nodes ~edges);
        Tree.add_member t m
      end
      else if Dspf.reachable sp m then Tree.add_member t m)
    members;
  t

let measure_instance rng ~model g =
  Graph.freeze g;
  let source = 0 in
  let t0 = now () in
  let sp = Dspf.create g ~source in
  let spf_build_s = now () -. t0 in
  (* Incremental repair cost: fail and restore a sample of tree edges. *)
  let sample_edges =
    List.filter_map
      (fun v ->
        let e = if v = source then -1 else Dspf.parent_edge sp v in
        if e < 0 then None else Some e)
      (List.init (min 64 (Graph.node_count g)) (fun _ -> Rng.int rng (Graph.node_count g)))
  in
  let sample_edges = List.sort_uniq compare sample_edges in
  let t0 = now () in
  List.iter
    (fun e ->
      Dspf.fail_edge sp e;
      Dspf.restore_edge sp e)
    sample_edges;
  let spf_repair_us =
    match sample_edges with
    | [] -> 0.0
    | es -> (now () -. t0) *. 1e6 /. (2.0 *. float_of_int (List.length es))
  in
  (* Protection tables over a modest member population: the precompute is
     per tree edge, so the sample keeps the sweep wall-clock bounded while
     still exercising the full path at scale. *)
  let members =
    List.sort_uniq compare
      (List.filter
         (fun v -> v <> source)
         (List.init (min 48 (max 1 (Graph.node_count g / 2))) (fun _ ->
              Rng.int rng (Graph.node_count g))))
  in
  let tree = sample_tree sp g ~source ~members in
  let p = Protect.create tree in
  let tree_edges = Tree.tree_edges tree in
  (* Table precompute is one bounded search per entry; at 10^5-10^6 nodes a
     full [prepare] over every tree edge would dominate the sweep, so the
     per-entry cost is measured over a sample and the full cost derived
     (entries x per-entry). *)
  let sample_budget = min 128 (max 16 (2_000_000 / max 1 (Graph.node_count g))) in
  let entry_sample =
    let rec take k = function
      | e :: rest when k > 0 -> e :: take (k - 1) rest
      | _ -> []
    in
    take sample_budget tree_edges
  in
  let t0 = now () in
  List.iter (fun e -> ignore (Protect.link_lookup p e)) entry_sample;
  let protect_entry_ms =
    match entry_sample with
    | [] -> 0.0
    | es -> (now () -. t0) *. 1e3 /. float_of_int (List.length es)
  in
  let lookups = 20_000 in
  (* [link_rd] is the raw O(1) read; the sampled entries above are the warm
     ones, so the throughput loop cycles over exactly those. *)
  let arr = Array.of_list entry_sample in
  let protect_lookup_ns =
    if Array.length arr = 0 then 0.0
    else begin
      let t0 = now () in
      let acc = ref 0.0 in
      for i = 0 to lookups - 1 do
        acc := !acc +. Protect.link_rd p arr.(i mod Array.length arr)
      done;
      ignore (Sys.opaque_identity !acc);
      (now () -. t0) *. 1e9 /. float_of_int lookups
    end
  in
  {
    model;
    n = Graph.node_count g;
    edges = Graph.edge_count g;
    avg_degree = Graph.average_degree g;
    gen_s = 0.0 (* filled by the caller, which timed the draw *);
    spf_build_s;
    spf_repair_us;
    tree_edges = List.length tree_edges;
    protect_entry_ms;
    protect_lookup_ns;
  }

let run_one rng ~model ~n =
  match model with
  | `Waxman ->
      let alpha, beta = Scale.degree_params ~n ~target_degree:8.0 in
      let t0 = now () in
      let t = Scale.waxman rng ~n ~alpha ~beta in
      let gen_s = now () -. t0 in
      { (measure_instance rng ~model:"waxman" t.Scale.graph) with gen_s }
  | `Transit_stub ->
      let p = ts_params ~n in
      let t0 = now () in
      let ts = Scale.transit_stub rng p in
      let gen_s = now () -. t0 in
      { (measure_instance rng ~model:"transit-stub" ts.Scale.ts_graph) with gen_s }

let run ?(ns = [ 10_000; 100_000 ]) ~seed () =
  let rng = Rng.create seed in
  List.concat_map
    (fun n ->
      [ run_one (Rng.split rng) ~model:`Waxman ~n; run_one (Rng.split rng) ~model:`Transit_stub ~n ])
    ns

let render rows =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    "scaling sweep: generation + incremental SPF + protection tables\n";
  Printf.bprintf buf "%-14s %9s %9s %7s %9s %10s %12s %10s %12s %12s\n" "model" "nodes" "edges"
    "degree" "gen(s)" "dspf(s)" "repair(us)" "tree-edges" "entry(ms)" "lookup(ns)";
  List.iter
    (fun r ->
      Printf.bprintf buf "%-14s %9d %9d %7.2f %9.2f %10.3f %12.1f %10d %12.2f %12.1f\n" r.model
        r.n r.edges r.avg_degree r.gen_s r.spf_build_s r.spf_repair_us r.tree_edges
        r.protect_entry_ms r.protect_lookup_ns)
    rows;
  Buffer.contents buf

let to_json rows =
  let buf = Buffer.create 512 in
  Buffer.add_string buf "{\n  \"schema\": \"smrp-scaling-v1\",\n  \"rows\": [\n";
  List.iteri
    (fun i r ->
      Printf.bprintf buf
        "    {\"model\": %S, \"n\": %d, \"edges\": %d, \"avg_degree\": %.3f, \"gen_s\": %.4f, \
         \"spf_build_s\": %.4f, \"spf_repair_us\": %.2f, \"tree_edges\": %d, \
         \"protect_entry_ms\": %.3f, \"protect_lookup_ns\": %.1f}%s\n"
        r.model r.n r.edges r.avg_degree r.gen_s r.spf_build_s r.spf_repair_us r.tree_edges
        r.protect_entry_ms r.protect_lookup_ns
        (if i = List.length rows - 1 then "" else ","))
    rows;
  Buffer.add_string buf "  ]\n}\n";
  Buffer.contents buf
