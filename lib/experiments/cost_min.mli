(** Testing the §4.2 conjecture: "we expect that the results presented in
    this paper are also applicable to the cost-minimizing multicast routing
    protocols" (citing Wei & Estrin [13]).

    The Steiner-heuristic baseline shares links even more aggressively than
    SPF trees, so SMRP's recovery-distance advantage should hold — if
    anything grow — against it, at the expected cost ordering
    (Steiner ≤ SPF ≤ SMRP). *)

type row = {
  scenarios : int;
  rd_vs_spf : Smrp_metrics.Stats.summary;
      (** RD^relative of SMRP against the SPF system (Fig. 8's metric). *)
  rd_vs_steiner : Smrp_metrics.Stats.summary;
      (** Same metric with the Steiner system as the baseline. *)
  cost_spf_vs_steiner : Smrp_metrics.Stats.summary;
      (** SPF tree cost relative to the Steiner tree (≥ 0 expected). *)
  cost_smrp_vs_steiner : Smrp_metrics.Stats.summary;
  delay_steiner_vs_spf : Smrp_metrics.Stats.summary;
      (** Steiner end-to-end delay penalty vs SPF (cost-min trees trade
          delay away). *)
}

val run : ?jobs:int -> ?seed:int -> ?scenarios:int -> unit -> row
(** Scenarios fan out over {!Pool.map}; the result is byte-identical
    whatever [jobs]. *)

val render : row -> string
