module Rng = Smrp_rng.Rng
module Waxman = Smrp_topology.Waxman
module Tree = Smrp_core.Tree
module Spf = Smrp_core.Spf
module Smrp = Smrp_core.Smrp
module Steiner = Smrp_core.Steiner
module Failure = Smrp_core.Failure
module Recovery = Smrp_core.Recovery
module Stats = Smrp_metrics.Stats
module Table = Smrp_metrics.Table

type row = {
  scenarios : int;
  rd_vs_spf : Stats.summary;
  rd_vs_steiner : Stats.summary;
  cost_spf_vs_steiner : Stats.summary;
  cost_smrp_vs_steiner : Stats.summary;
  delay_steiner_vs_spf : Stats.summary;
}

(* Worst-case global-detour RD on the baseline tree vs local-detour RD on
   the SMRP tree — the same full-system metric as Figs. 8-10. *)
let rd_reduction ?ws ~baseline_tree ~smrp_tree m =
  let rd tree strategy =
    match Failure.worst_case_for_member tree m with
    | None -> None
    | Some f ->
        Option.map
          (fun d -> d.Recovery.recovery_distance)
          (match strategy with
          | `Global -> Recovery.global_detour ?ws tree f ~member:m
          | `Local -> Recovery.local_detour ?ws tree f ~member:m)
  in
  match (rd baseline_tree `Global, rd smrp_tree `Local) with
  | Some b, Some i when b > 0.0 -> Some (Stats.relative_reduction ~baseline:b ~improved:i)
  | _ -> None

(* One scenario's contribution, with the per-member item lists in member
   order (the order the sequential loop prepended them in). *)
let run_one (topo_rng, member_rng) =
  let topo = Waxman.generate ~link_delay:`Unit topo_rng ~n:100 ~alpha:0.2 ~beta:0.2 in
  let g = topo.Waxman.graph in
  let chosen = Array.of_list (Rng.sample_without_replacement member_rng 31 100) in
  Rng.shuffle member_rng chosen;
  let source = chosen.(0) in
  let members = Array.to_list (Array.sub chosen 1 30) in
  let ws = Smrp_graph.Dijkstra.workspace ~capacity:100 () in
  let spf = Spf.build ~ws g ~source ~members in
  let smrp = Smrp.build ~d_thresh:0.3 ~ws g ~source ~members in
  let steiner = Steiner.build g ~source ~members in
  let steiner_cost = Tree.total_cost steiner in
  let cost_spf = Stats.relative_increase ~baseline:steiner_cost ~changed:(Tree.total_cost spf) in
  let cost_smrp = Stats.relative_increase ~baseline:steiner_cost ~changed:(Tree.total_cost smrp) in
  let delay_st =
    List.map
      (fun m ->
        Stats.relative_increase
          ~baseline:(Tree.delay_to_source spf m)
          ~changed:(Tree.delay_to_source steiner m))
      members
  in
  let rd_spf = List.filter_map (rd_reduction ~ws ~baseline_tree:spf ~smrp_tree:smrp) members in
  let rd_st = List.filter_map (rd_reduction ~ws ~baseline_tree:steiner ~smrp_tree:smrp) members in
  (cost_spf, cost_smrp, delay_st, rd_spf, rd_st)

let run ?jobs ?(seed = 21) ?(scenarios = 50) () =
  let rng = Rng.create seed in
  let draws =
    List.init scenarios (fun _ ->
        let topo_rng = Rng.split rng in
        let member_rng = Rng.split rng in
        (topo_rng, member_rng))
  in
  let results = Pool.map ?jobs run_one draws in
  (* Merge so each list ends up exactly as the sequential prepend loop left
     it (scenario N's items first, each scenario's items reversed) — the
     float-summation order inside Stats is unchanged. *)
  let merge items_of = List.fold_left (fun acc r -> List.rev_append (items_of r) acc) [] results in
  {
    scenarios;
    rd_vs_spf = Stats.summarize (merge (fun (_, _, _, r, _) -> r));
    rd_vs_steiner = Stats.summarize (merge (fun (_, _, _, _, r) -> r));
    cost_spf_vs_steiner = Stats.summarize (merge (fun (c, _, _, _, _) -> [ c ]));
    cost_smrp_vs_steiner = Stats.summarize (merge (fun (_, c, _, _, _) -> [ c ]));
    delay_steiner_vs_spf = Stats.summarize (merge (fun (_, _, d, _, _) -> d));
  }

let pct s = Printf.sprintf "%5.1f%% ± %.1f" (100.0 *. s.Stats.mean) (100.0 *. s.Stats.ci95)

let render r =
  let t = Table.create ~columns:[ "baseline system"; "SMRP RD reduction"; "baseline cost vs Steiner" ] in
  Table.add_row t [ "SPF/PIM"; pct r.rd_vs_spf; pct r.cost_spf_vs_steiner ];
  Table.add_row t [ "Steiner (cost-min)"; pct r.rd_vs_steiner; "0 (reference)" ];
  Printf.sprintf
    "Cost-minimising baseline (4.2's conjecture; %d scenarios, Takahashi-Matsuyama trees)\n%s\n\
     SMRP tree cost vs Steiner: %s; Steiner delay penalty vs SPF: %s\n\
     (conjecture holds if SMRP's advantage persists against the cost-min baseline)\n"
    r.scenarios (Table.render t) (pct r.cost_smrp_vs_steiner) (pct r.delay_steiner_vs_spf)
