(** The [smrp report] campaign: one run producing a {!Smrp_obs.Report.t}
    that compares restoration quality and latency across variants.

    Variants (in report order):

    - ["spf baseline"] — the deployed recovery architecture: SPF-built tree,
      global detour after unicast reconvergence (PIM-style);
    - ["smrp d=X"] — one per [d_values] entry: SMRP-built tree at that
      [D_thresh], local detour;
    - ["smrp query"] — the §3.3 query-based join scheme at the reference
      [D_thresh], local detour;
    - ["smrp (packet sim)"] / ["pim (packet sim)"] — the packet-level
      restoration-latency simulation of §4.4, carrying the
      [recovery.total.q] / [recovery.phase.*.q] sketches and the
      [net.frame_drops] / [proto.members_disrupted] sim-time series.

    The topology variants record into {e aligned} distribution names
    ([rd.q], [delay.q]) so the dashboard's comparison tables line up one
    row per metric with one column per variant.

    Scenario evaluation fans out over {!Pool.map}; recording happens on the
    orchestrating domain after the fan-out joins, and the packet simulation
    is sequential, so the report is byte-identical whatever [jobs]. *)

type config = {
  seed : int;
  scenarios : int;  (** Random topologies per variant. *)
  d_values : float list;  (** [D_thresh] sweep for the SMRP variants. *)
  latency_runs : int;  (** Packet-level simulation runs (0 disables). *)
  latency : Latency.config;  (** Packet-simulation parameters. *)
}

val default : config
(** Reference campaign: 20 topologies, D_thresh ∈ {0.1, 0.3}, 3 packet
    runs. *)

val quick : config
(** Scaled-down campaign for smoke tests and CI: 4 topologies, one
    D_thresh, 1 packet run with shortened settle/run windows. *)

val run : ?jobs:int -> config -> Smrp_obs.Report.t
(** Execute the campaign.  [jobs] caps the scenario fan-out (default
    {!Pool.default_jobs}); any value yields a byte-identical report. *)
