module Rng = Smrp_rng.Rng
module Graph = Smrp_graph.Graph
module Subgraph = Smrp_graph.Subgraph
module Waxman = Smrp_topology.Waxman
module Transit_stub = Smrp_topology.Transit_stub
module Tree = Smrp_core.Tree
module Spf = Smrp_core.Spf
module Smrp = Smrp_core.Smrp
module Query_join = Smrp_core.Query
module Reshape = Smrp_core.Reshape
module Failure = Smrp_core.Failure
module Recovery = Smrp_core.Recovery
module Hierarchy = Smrp_core.Hierarchy
module Stats = Smrp_metrics.Stats
module Table = Smrp_metrics.Table

let pct s = Printf.sprintf "%5.1f%% ± %.1f" (100.0 *. s.Stats.mean) (100.0 *. s.Stats.ci95)

(* Mean over members of the worst-case local-detour RD reduction of [tree]
   vs the SPF baseline, and the mean relative delay increase. *)
let tree_vs_spf ~spf_tree ~tree ~members =
  let rd_rels =
    List.filter_map
      (fun m ->
        let rd t =
          match Failure.worst_case_for_member t m with
          | None -> None
          | Some f ->
              Option.map
                (fun d -> d.Recovery.recovery_distance)
                (Recovery.local_detour t f ~member:m)
        in
        match (rd spf_tree, rd tree) with
        | Some b, Some i when b > 0.0 -> Some (Stats.relative_reduction ~baseline:b ~improved:i)
        | _ -> None)
      members
  in
  let delay_rels =
    List.map
      (fun m ->
        Stats.relative_increase
          ~baseline:(Tree.delay_to_source spf_tree m)
          ~changed:(Tree.delay_to_source tree m))
      members
  in
  ( (match rd_rels with [] -> 0.0 | _ -> Stats.mean rd_rels),
    match delay_rels with [] -> 0.0 | _ -> Stats.mean delay_rels )

let scenario_graph_and_group ~seed ~n ~group_size ~extra =
  let rng = Rng.create seed in
  let topo_rng = Rng.split rng in
  let member_rng = Rng.split rng in
  let topo = Waxman.generate topo_rng ~n ~alpha:0.2 ~beta:0.2 in
  let chosen = Array.of_list (Rng.sample_without_replacement member_rng (group_size + extra + 1) n) in
  Rng.shuffle member_rng chosen;
  ( topo.Waxman.graph,
    chosen.(0),
    Array.to_list (Array.sub chosen 1 group_size),
    Array.to_list (Array.sub chosen (1 + group_size) extra) )

module Reshaping = struct
  type row = {
    scenarios : int;
    switches_per_scenario : float;
    rd_before : Stats.summary;
    rd_after : Stats.summary;
    delay_before : Stats.summary;
    delay_after : Stats.summary;
  }

  let d_thresh = 0.3

  let run_one seed =
    let graph, source, initial, latecomers =
      scenario_graph_and_group ~seed ~n:100 ~group_size:30 ~extra:15
    in
    let smrp = Smrp.build ~d_thresh graph ~source ~members:initial in
    (* Churn: every other initial member leaves, the latecomers join — the
       §3.2.3 situation where the tree grows skewed. *)
    List.iteri (fun i m -> if i mod 2 = 0 then Smrp.leave smrp m) initial;
    List.iter (Smrp.join ~d_thresh smrp) latecomers;
    let members = Tree.members smrp in
    let spf_tree = Spf.build graph ~source ~members in
    let rd_before, delay_before = tree_vs_spf ~spf_tree ~tree:smrp ~members in
    let stats = Reshape.stabilize ~d_thresh smrp in
    let rd_after, delay_after = tree_vs_spf ~spf_tree ~tree:smrp ~members in
    (float_of_int stats.Reshape.switches, rd_before, rd_after, delay_before, delay_after)

  let run ?jobs ?(seed = 11) ?(scenarios = 50) () =
    let rng = Rng.create seed in
    let seeds = List.init scenarios (fun _ -> Int64.to_int (Rng.bits64 rng) land 0x3FFFFFFF) in
    let results = Pool.map ?jobs run_one seeds in
    let pick f = List.map f results in
    {
      scenarios;
      switches_per_scenario = Stats.mean (pick (fun (s, _, _, _, _) -> s));
      rd_before = Stats.summarize (pick (fun (_, b, _, _, _) -> b));
      rd_after = Stats.summarize (pick (fun (_, _, a, _, _) -> a));
      delay_before = Stats.summarize (pick (fun (_, _, _, d, _) -> d));
      delay_after = Stats.summarize (pick (fun (_, _, _, _, d) -> d));
    }

  let render r =
    let t = Table.create ~columns:[ "tree"; "RD reduction vs SPF"; "delay penalty" ] in
    Table.add_row t [ "after churn (skewed)"; pct r.rd_before; pct r.delay_before ];
    Table.add_row t [ "after reshaping"; pct r.rd_after; pct r.delay_after ];
    Printf.sprintf
      "Ablation: tree reshaping under churn (§3.2.3; %d scenarios, %.1f switches each)\n%s\n"
      r.scenarios r.switches_per_scenario (Table.render t)
end

module Query = struct
  type row = {
    scenarios : int;
    rd_full : Stats.summary;
    rd_query : Stats.summary;
    delay_full : Stats.summary;
    delay_query : Stats.summary;
  }

  let d_thresh = 0.3

  let run_one seed =
    let graph, source, members, _ = scenario_graph_and_group ~seed ~n:100 ~group_size:30 ~extra:0 in
    let spf_tree = Spf.build graph ~source ~members in
    let full = Smrp.build ~d_thresh graph ~source ~members in
    let query = Query_join.build ~d_thresh graph ~source ~members in
    let rd_full, delay_full = tree_vs_spf ~spf_tree ~tree:full ~members in
    let rd_query, delay_query = tree_vs_spf ~spf_tree ~tree:query ~members in
    (rd_full, rd_query, delay_full, delay_query)

  let run ?jobs ?(seed = 12) ?(scenarios = 50) () =
    let rng = Rng.create seed in
    let seeds = List.init scenarios (fun _ -> Int64.to_int (Rng.bits64 rng) land 0x3FFFFFFF) in
    let results = Pool.map ?jobs run_one seeds in
    let pick f = List.map f results in
    {
      scenarios;
      rd_full = Stats.summarize (pick (fun (a, _, _, _) -> a));
      rd_query = Stats.summarize (pick (fun (_, b, _, _) -> b));
      delay_full = Stats.summarize (pick (fun (_, _, c, _) -> c));
      delay_query = Stats.summarize (pick (fun (_, _, _, d) -> d));
    }

  let render r =
    let t = Table.create ~columns:[ "knowledge"; "RD reduction vs SPF"; "delay penalty" ] in
    Table.add_row t [ "full topology"; pct r.rd_full; pct r.delay_full ];
    Table.add_row t [ "query scheme (§3.3.1)"; pct r.rd_query; pct r.delay_query ];
    Printf.sprintf
      "Ablation: topology knowledge (%d scenarios)\n%s\n\
       (the query scheme sees fewer candidates, so part of the gain is lost)\n"
      r.scenarios (Table.render t)
end

module Hierarchical = struct
  type row = {
    scenarios : int;
    failures : int;
    confined_fraction : float;
    flat_escape_fraction : float;
    rd_hier : Stats.summary;
    rd_flat : Stats.summary;
  }

  let d_thresh = 0.3

  (* A failure inside one member stub domain: an on-tree link of the
     domain's sub-tree that is not a bridge of the domain subgraph, so that
     recovery is physically possible. *)
  let domain_failure (dom : Hierarchy.domain) =
    let bridges = Smrp_graph.Connectivity.bridges dom.Hierarchy.sub.Subgraph.graph in
    match List.filter (fun e -> not (List.mem e bridges)) (Tree.tree_edges dom.Hierarchy.tree) with
    | [] -> None
    | sub_eid :: _ -> Some (sub_eid, dom.Hierarchy.sub.Subgraph.edge_from_sub.(sub_eid))

  let stub_of ts v =
    match ts.Transit_stub.roles.(v) with
    | Transit_stub.Stub d -> Some d
    | Transit_stub.Transit _ -> None

  let run_one seed =
    let rng = Rng.create seed in
    let ts = Transit_stub.generate rng Transit_stub.default_params in
    let stub_nodes =
      List.concat (List.init ts.Transit_stub.stub_count (Transit_stub.nodes_of_stub ts))
    in
    let pool = Array.of_list stub_nodes in
    Rng.shuffle rng pool;
    let source = pool.(0) in
    let members = Array.to_list (Array.sub pool 1 12) in
    let hier = Hierarchy.build ~d_thresh ts ~source ~members in
    let flat = Hierarchy.flat_equivalent hier in
    let results = ref [] in
    List.iter
      (fun (dom : Hierarchy.domain) ->
        match domain_failure dom with
        | None -> ()
        | Some (_, orig_eid) ->
            let f = Failure.Link orig_eid in
            let recoveries = Hierarchy.recover hier f in
            let flat_members = Failure.affected_members flat f in
            let flat_recoveries =
              List.filter_map (fun m -> Recovery.local_detour flat f ~member:m) flat_members
            in
            let escapes =
              List.length
                (List.filter
                   (fun d ->
                     List.exists
                       (fun v -> stub_of ts v <> Some dom.Hierarchy.id)
                       d.Recovery.path_nodes)
                   flat_recoveries)
            in
            results :=
              ( List.map (fun r -> r.Hierarchy.recovery_distance) recoveries,
                List.for_all (fun r -> r.Hierarchy.confined) recoveries,
                List.map (fun d -> d.Recovery.recovery_distance) flat_recoveries,
                escapes,
                List.length flat_recoveries )
              :: !results)
      (Hierarchy.member_domains hier);
    !results

  let run ?jobs ?(seed = 13) ?(scenarios = 20) () =
    let rng = Rng.create seed in
    let seeds = List.init scenarios (fun _ -> Int64.to_int (Rng.bits64 rng) land 0x3FFFFFFF) in
    let all = List.concat (Pool.map ?jobs run_one seeds) in
    let hier_rds = List.concat_map (fun (h, _, _, _, _) -> h) all in
    let flat_rds = List.concat_map (fun (_, _, f, _, _) -> f) all in
    let confined = List.length (List.filter (fun (_, c, _, _, _) -> c) all) in
    let escapes = List.fold_left (fun acc (_, _, _, e, _) -> acc + e) 0 all in
    let flat_total = List.fold_left (fun acc (_, _, _, _, n) -> acc + n) 0 all in
    {
      scenarios;
      failures = List.length all;
      confined_fraction =
        (match all with [] -> 1.0 | _ -> float_of_int confined /. float_of_int (List.length all));
      flat_escape_fraction =
        (if flat_total = 0 then 0.0 else float_of_int escapes /. float_of_int flat_total);
      rd_hier = Stats.summarize (if hier_rds = [] then [ 0.0 ] else hier_rds);
      rd_flat = Stats.summarize (if flat_rds = [] then [ 0.0 ] else flat_rds);
    }

  let render r =
    Printf.sprintf
      "Ablation: hierarchical recovery (§3.3.3; %d stub-link failures over %d transit-stub \
       networks)\n\
       recoveries confined to owning domain: %5.1f%% (hierarchical)  vs  %5.1f%% of flat \
       detours leaving the domain\n\
       recovery distance: hierarchical %.3f ± %.3f, flat %.3f ± %.3f\n"
      r.failures r.scenarios
      (100.0 *. r.confined_fraction)
      (100.0 *. r.flat_escape_fraction)
      r.rd_hier.Stats.mean r.rd_hier.Stats.ci95 r.rd_flat.Stats.mean r.rd_flat.Stats.ci95
end
