module Rng = Smrp_rng.Rng
module Graph = Smrp_graph.Graph
module Dspf = Smrp_graph.Dspf
module Tree = Smrp_core.Tree
module Failure = Smrp_core.Failure

type model =
  | Independent of { events : int; elements : int }
  | Correlated of { events : int; burst : int }
  | Regional of { events : int; radius : int }
  | Cascading of { events : int; depth : int }
  | Adversarial of { events : int; budget : int; passes : int }

let name = function
  | Independent _ -> "indep"
  | Correlated _ -> "correlated"
  | Regional _ -> "regional"
  | Cascading _ -> "cascade"
  | Adversarial _ -> "adversarial"

let events = function
  | Independent { events; _ }
  | Correlated { events; _ }
  | Regional { events; _ }
  | Cascading { events; _ }
  | Adversarial { events; _ } -> events

(* One incremental-SPF structure per (graph, source), failure overlays
   applied and rolled back around each evaluation.  The cache key is
   physical: campaign cells build a fresh graph per instance, so the reuse
   this buys is exactly the within-instance one — cascade rounds and
   adversarial candidates share one structure instead of rebuilding it. *)
type ws = { mutable cached : (Graph.t * int * Dspf.t) option }

let create_ws () = { cached = None }

let dspf ws g ~source =
  match ws.cached with
  | Some (g', s', d) when g' == g && s' = source -> d
  | _ ->
      let d = Dspf.create g ~source in
      ws.cached <- Some (g, source, d);
      d

let rec flatten f (links, nodes) =
  match f with
  | Failure.Link e -> (e :: links, nodes)
  | Failure.Node v -> (links, v :: nodes)
  | Failure.Multi fs -> List.fold_left (fun acc f -> flatten f acc) (links, nodes) fs

let with_overlay d f k =
  let links, nodes = flatten f ([], []) in
  List.iter (Dspf.fail_edge d) links;
  List.iter (Dspf.fail_node d) nodes;
  let r = k d in
  List.iter (Dspf.restore_edge d) links;
  List.iter (Dspf.restore_node d) nodes;
  r

let disrupted tree f =
  let connected = Failure.tree_connected tree f in
  List.fold_left (fun acc m -> if connected.(m) then acc else acc + 1) 0 (Tree.members tree)

let isolated ws g ~source ~members f =
  with_overlay (dspf ws g ~source) f (fun d ->
      List.fold_left (fun acc m -> if Dspf.reachable d m then acc else acc + 1) 0 members)

(* -- Independent -------------------------------------------------------- *)

let random_non_source rng ~n ~source =
  if n < 2 then None
  else begin
    let v = Rng.int rng (n - 1) in
    Some (if v >= source then v + 1 else v)
  end

let independent rng g ~source ~elements =
  let ecount = Graph.edge_count g and n = Graph.node_count g in
  let parts =
    List.filter_map
      (fun _ ->
        if ecount > 0 && Rng.int rng 3 < 2 then Some (Failure.Link (Rng.int rng ecount))
        else
          Option.map (fun v -> Failure.Node v) (random_non_source rng ~n ~source))
      (List.init (max 1 elements) Fun.id)
  in
  match parts with [] -> None | _ -> Some (Failure.compose parts)

(* -- Correlated (shared-risk link group) -------------------------------- *)

let correlated rng g ~burst =
  let ecount = Graph.edge_count g in
  if ecount = 0 then None
  else begin
    let seed = Rng.int rng ecount in
    let chosen = Hashtbl.create 8 in
    Hashtbl.replace chosen seed ();
    (* Breadth-first over edge adjacency in CSR order: deterministic in the
       seed edge. *)
    let frontier = Queue.create () in
    Queue.push seed frontier;
    while Hashtbl.length chosen < burst && not (Queue.is_empty frontier) do
      let e = Queue.pop frontier in
      let edge = Graph.edge g e in
      List.iter
        (fun u ->
          Graph.iter_neighbors g u (fun _ eid _ ->
              if Hashtbl.length chosen < burst && not (Hashtbl.mem chosen eid) then begin
                Hashtbl.replace chosen eid ();
                Queue.push eid frontier
              end))
        [ edge.Graph.u; edge.Graph.v ]
    done;
    let links = List.sort compare (Hashtbl.fold (fun e () acc -> e :: acc) chosen []) in
    Some (Failure.compose (List.map (fun e -> Failure.Link e) links))
  end

(* -- Regional (hop-radius ball) ----------------------------------------- *)

let regional rng g ~source ~radius =
  let n = Graph.node_count g in
  match random_non_source rng ~n ~source with
  | None -> None
  | Some center ->
      let dist = Array.make n (-1) in
      dist.(center) <- 0;
      let q = Queue.create () in
      Queue.push center q;
      let ball = ref [] in
      while not (Queue.is_empty q) do
        let u = Queue.pop q in
        if u <> source then ball := u :: !ball;
        if dist.(u) < radius then
          Graph.iter_neighbors g u (fun v _ _ ->
              if dist.(v) < 0 then begin
                dist.(v) <- dist.(u) + 1;
                Queue.push v q
              end)
      done;
      let nodes = List.sort compare !ball in
      Some (Failure.compose (List.map (fun v -> Failure.Node v) nodes))

(* -- Cascading (backup-path overload) ----------------------------------- *)

(* A tree link fails; the orphaned child re-routes over the incremental-SPF
   detour; the link now carrying that subtree's traffic fails in the next
   round.  One Dspf, overlays rolled back at the end. *)
let cascading ws rng g ~tree ~depth =
  match Tree.tree_edges tree with
  | [] -> None
  | edges ->
      let edges = List.sort compare edges in
      let e0 = List.nth edges (Rng.int rng (List.length edges)) in
      let edge = Graph.edge g e0 in
      let child =
        if Tree.parent_edge_id tree edge.Graph.u = e0 then edge.Graph.u else edge.Graph.v
      in
      let d = dspf ws g ~source:(Tree.source tree) in
      let failed = ref [ e0 ] in
      Dspf.fail_edge d e0;
      (let continue = ref true in
       let rounds = ref 0 in
       while !continue && !rounds < depth do
         incr rounds;
         let next = Dspf.parent_edge d child in
         if next < 0 || List.mem next !failed then continue := false
         else begin
           failed := next :: !failed;
           Dspf.fail_edge d next
         end
       done);
      List.iter (Dspf.restore_edge d) !failed;
      Some (Failure.compose (List.map (fun e -> Failure.Link e) (List.sort compare !failed)))

(* -- Adversarial (greedy + local-search swap) --------------------------- *)

let adversarial ws _rng g ~tree ~budget ~passes =
  match List.sort compare (Tree.tree_edges tree) with
  | [] -> None
  | candidates ->
      let budget = min budget (List.length candidates) in
      let disrupted_of links =
        disrupted tree (Failure.compose (List.map (fun e -> Failure.Link e) links))
      in
      let source = Tree.source tree in
      let members = Tree.members tree in
      let isolated_of links =
        isolated ws g ~source ~members
          (Failure.compose (List.map (fun e -> Failure.Link e) links))
      in
      (* Greedy: ascending candidate scan with strict improvement keeps the
         smallest-id argmax — deterministic whatever the RNG. *)
      let chosen = ref [] in
      for _ = 1 to budget do
        let best = ref (-1) and best_d = ref (-1) in
        List.iter
          (fun e ->
            if not (List.mem e !chosen) then begin
              let d = disrupted_of (e :: !chosen) in
              if d > !best_d then begin
                best := e;
                best_d := d
              end
            end)
          candidates;
        if !best >= 0 then chosen := !chosen @ [ !best ]
      done;
      (* Local-search refinement: first-improvement swaps; ties on members
         disrupted break towards placements isolating more members, judged
         on the shared incremental-SPF overlay (one structure for every
         candidate, fail/restore around each evaluation). *)
      let cur_d = ref (disrupted_of !chosen) in
      let cur_iso = ref (isolated_of !chosen) in
      for _ = 1 to passes do
        List.iteri
          (fun j _ ->
            List.iter
              (fun e ->
                if not (List.mem e !chosen) then begin
                  let alt = List.mapi (fun k x -> if k = j then e else x) !chosen in
                  let d = disrupted_of alt in
                  if d > !cur_d then begin
                    chosen := alt;
                    cur_d := d;
                    cur_iso := isolated_of alt
                  end
                  else if d = !cur_d then begin
                    let iso = isolated_of alt in
                    if iso > !cur_iso then begin
                      chosen := alt;
                      cur_iso := iso
                    end
                  end
                end)
              candidates)
          !chosen
      done;
      (match !chosen with
      | [] -> None
      | links ->
          Some (Failure.compose (List.map (fun e -> Failure.Link e) (List.sort compare links))))

let draw ws model rng g ~tree =
  let source = Tree.source tree in
  match model with
  | Independent { elements; _ } -> independent rng g ~source ~elements
  | Correlated { burst; _ } -> correlated rng g ~burst
  | Regional { radius; _ } -> regional rng g ~source ~radius
  | Cascading { depth; _ } -> cascading ws rng g ~tree ~depth
  | Adversarial { budget; passes; _ } -> adversarial ws rng g ~tree ~budget ~passes
