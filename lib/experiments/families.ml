module Rng = Smrp_rng.Rng
module Graph = Smrp_graph.Graph
module Waxman = Smrp_topology.Waxman
module Flat_models = Smrp_topology.Flat_models
module Transit_stub = Smrp_topology.Transit_stub
module Tree = Smrp_core.Tree
module Stats = Smrp_metrics.Stats
module Table = Smrp_metrics.Table

type row = {
  family : string;
  average_degree : float;
  rd : Stats.summary;
  delay : Stats.summary;
  cost : Stats.summary;
}

(* One generated topology plus a member pool to draw the group from. *)
type draw = { graph : Graph.t; pool : int list }

let waxman_draw rng =
  let topo = Waxman.generate ~link_delay:`Unit rng ~n:100 ~alpha:0.2 ~beta:0.2 in
  { graph = topo.Waxman.graph; pool = List.init 100 Fun.id }

let pure_random_draw target_degree rng =
  let p = Flat_models.probability_for_degree ~n:100 ~target_degree in
  let topo = Flat_models.pure_random ~link_delay:`Unit rng ~n:100 ~p in
  { graph = topo.Flat_models.graph; pool = List.init 100 Fun.id }

(* Locality parameters chosen so the expected degree matches the target:
   with radius 0.25 roughly 17% of pairs are "near"; p_near : p_far = 6 : 1
   mimics Zegura's locality skew. *)
let locality_draw target_degree rng =
  let near_fraction = 0.17 in
  let ratio = 6.0 in
  let base =
    target_degree /. (99.0 *. ((near_fraction *. ratio) +. (1.0 -. near_fraction)))
  in
  let topo =
    Flat_models.locality ~link_delay:`Unit rng ~n:100 ~radius:0.25
      ~p_near:(Float.min 1.0 (ratio *. base))
      ~p_far:base
  in
  { graph = topo.Flat_models.graph; pool = List.init 100 Fun.id }

let transit_stub_draw rng =
  let topo = Transit_stub.generate rng Transit_stub.default_params in
  let pool =
    List.concat
      (List.init topo.Transit_stub.stub_count (Transit_stub.nodes_of_stub topo))
  in
  { graph = topo.Transit_stub.graph; pool }

let measure_one ~generate (topo_rng, member_rng) =
  let { graph; pool } = generate topo_rng in
  let degree = Graph.average_degree graph in
  let pool = Array.of_list pool in
  Rng.shuffle member_rng pool;
  let source = pool.(0) in
  let members = Array.to_list (Array.sub pool 1 (min 30 (Array.length pool - 1))) in
  let spf_tree, smrp_tree, outcomes = Scenario.evaluate graph ~source ~members ~d_thresh:0.3 in
  let rels =
    List.filter_map
      (fun o ->
        match (o.Scenario.rd_global_spf, o.Scenario.rd_local_smrp) with
        | Some b, Some i when b > 0.0 -> Some (Stats.relative_reduction ~baseline:b ~improved:i)
        | _ -> None)
      outcomes
  in
  let rd = match rels with [] -> None | _ -> Some (Stats.mean rels) in
  let delay =
    Stats.mean
      (List.map
         (fun o -> Stats.relative_increase ~baseline:o.Scenario.delay_spf ~changed:o.Scenario.delay_smrp)
         outcomes)
  in
  let cost =
    Stats.relative_increase ~baseline:(Tree.total_cost spf_tree)
      ~changed:(Tree.total_cost smrp_tree)
  in
  (degree, rd, delay, cost)

let measure_family ?jobs ~seed ~scenarios ~generate name =
  (* The per-scenario RNG pairs are split off sequentially so the stream
     consumed is identical to the historical sequential loop; only the
     (pure) per-scenario measurement fans out. *)
  let rng = Rng.create seed in
  let draws =
    List.init scenarios (fun _ ->
        let topo_rng = Rng.split rng in
        let member_rng = Rng.split rng in
        (topo_rng, member_rng))
  in
  let results = Pool.map ?jobs (measure_one ~generate) draws in
  (* Prepend in scenario order, exactly as the old accumulator loop did, so
     the float-summation order (and thus every mean) is unchanged. *)
  let rd = ref [] and delay = ref [] and cost = ref [] and degree = ref [] in
  List.iter
    (fun (dg, rd_opt, dl, c) ->
      degree := dg :: !degree;
      (match rd_opt with Some v -> rd := v :: !rd | None -> ());
      delay := dl :: !delay;
      cost := c :: !cost)
    results;
  {
    family = name;
    average_degree = Stats.mean !degree;
    rd = Stats.summarize (if !rd = [] then [ 0.0 ] else !rd);
    delay = Stats.summarize !delay;
    cost = Stats.summarize !cost;
  }

let run ?jobs ?(seed = 31) ?(scenarios = 50) ?(target_degree = 4.5) () =
  [
    measure_family ?jobs ~seed ~scenarios ~generate:waxman_draw "waxman";
    measure_family ?jobs ~seed ~scenarios ~generate:(pure_random_draw target_degree) "pure-random";
    measure_family ?jobs ~seed ~scenarios ~generate:(locality_draw target_degree) "locality";
    measure_family ?jobs ~seed ~scenarios ~generate:transit_stub_draw "transit-stub";
  ]

let pct s = Printf.sprintf "%5.1f%% ± %.1f" (100.0 *. s.Stats.mean) (100.0 *. s.Stats.ci95)

let render rows =
  let t =
    Table.create
      ~columns:[ "family"; "avg degree"; "RD reduction"; "delay penalty"; "cost penalty" ]
  in
  List.iter
    (fun r ->
      Table.add_row t
        [ r.family; Printf.sprintf "%.2f" r.average_degree; pct r.rd; pct r.delay; pct r.cost ])
    rows;
  Printf.sprintf
    "Topology families (Zegura et al. [7]; N=100, N_G<=30, D_thresh=0.3, matched density)\n%s\n\
     (SMRP's advantage should persist across generators)\n"
    (Table.render t)
