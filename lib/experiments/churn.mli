(** Membership churn models for campaign cells.

    A churn model turns a seeded RNG into a timed schedule of join/leave
    operations over the nodes of a topology — the "arrival model" axis of
    the campaign matrix.  Dynamic multicast algorithms rank differently
    across arrival models (Waxman-style steady state vs flash crowds vs
    heavy-tailed sessions), so the matrix sweeps them explicitly:

    - {b Static}: the paper's model — the whole group joins at time zero
      and stays (§4.1);
    - {b Flash_crowd}: bursts of geometrically-sized join crowds at random
      instants, members departing after exponential lifetimes;
    - {b Diurnal}: periodic waves — every wave joins a cohort in its first
      half and drains exactly that cohort in its second half, so joins and
      leaves balance wave by wave;
    - {b Heavy_tail}: a uniform arrival stream with Pareto session
      lifetimes (a few members effectively never leave).

    Everything is a pure function of the supplied {!Smrp_rng.Rng.t}: the
    same seed yields the same schedule, run after run and whatever the
    pool's job count.  Distribution draws are exposed ({!geometric},
    {!pareto}) so property tests can pin their moments directly. *)

type model =
  | Static of { group_size : int }
  | Flash_crowd of {
      crowds : int;  (** Burst count over the horizon. *)
      mean_size : float;  (** Geometric mean joins per burst (≥ 1). *)
      spread : float;  (** Burst joins land in [t, t + spread]. *)
      mean_lifetime : float;  (** Exponential mean membership duration. *)
    }
  | Diurnal of { waves : int; wave_size : int }
  | Heavy_tail of {
      arrivals : int;
      alpha : float;  (** Pareto shape (> 1 for a finite mean). *)
      x_min : float;  (** Pareto scale: minimum session lifetime. *)
    }

type op = Join of int | Leave of int

type event = { at : float; op : op }

(** What the draws looked like, for distribution property tests:
    [burst_sizes] are the geometric draws of a flash-crowd model (before
    capping by the free-node pool), [lifetimes] the raw Pareto/exponential
    lifetime draws (before horizon truncation). *)
type stats = { burst_sizes : int list; lifetimes : float list; joins : int; leaves : int }

val name : model -> string
(** Short axis label: ["static"], ["flash"], ["diurnal"], ["heavy"]. *)

val geometric : Smrp_rng.Rng.t -> mean:float -> int
(** Geometric draw on [{1, 2, …}] with the given mean ([mean <= 1] always
    returns 1). *)

val pareto : Smrp_rng.Rng.t -> alpha:float -> x_min:float -> float
(** Pareto draw: [x_min · u^{-1/alpha}]; mean [alpha·x_min/(alpha-1)] for
    [alpha > 1]. *)

val schedule_with_stats :
  model -> Smrp_rng.Rng.t -> n:int -> source:int -> horizon:float -> event list * stats
(** The schedule, sorted by time (draw order breaking ties), plus the raw
    draw statistics.  Joins only ever pick currently-unjoined non-source
    nodes; a burst bigger than the free pool is capped.  Deterministic in
    the RNG state. *)

val schedule : model -> Smrp_rng.Rng.t -> n:int -> source:int -> horizon:float -> event list
