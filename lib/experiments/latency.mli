(** Packet-level restoration-latency experiment (the §1 motivation, after
    [25]): on the same topology and group, compare the time from failure to
    data resumption under

    - {b SMRP}: min-SHR tree, starvation/hello detection, immediate local
      detour;
    - {b PIM/OSPF}: SPF tree, same detection, global re-join gated by the
      unicast reconvergence time.

    The failure is the worst case for a random member: the on-tree link
    incident to the source towards it. *)

type config = {
  scenario : Scenario.config;
  ospf_convergence : float;
  settle_time : float;  (** Sim time for joins and soft state to settle. *)
  run_time : float;  (** Sim time after failure injection. *)
}

val default : config

type side_result = {
  restored : int;  (** Members that resumed receiving data. *)
  disrupted : int;  (** Members that lost service at all. *)
  mean_detection : float;  (** Failure → starvation/hello detection. *)
  mean_restoration : float;  (** Failure → first data after recovery. *)
  control_messages : int;
  episodes : Smrp_obs.Timeline.episode list;
      (** Per-member recovery timelines: the §3.2 detection / signalling /
          installation / first-data decomposition of [mean_restoration]. *)
  metrics : string option;
      (** Rendered metrics registry, when the run was started
          [~with_metrics:true]. *)
}

type result = { seed : int; smrp : side_result; pim : side_result }

val run :
  ?trace_sink:Smrp_obs.Trace.sink ->
  ?with_metrics:bool ->
  ?smrp_metrics:Smrp_obs.Metrics.t ->
  ?pim_metrics:Smrp_obs.Metrics.t ->
  config ->
  result option
(** [None] when every member's worst-case link is a graph bridge (recovery
    impossible); {!run_many} skips such draws.

    [trace_sink] turns on simulation-clock tracing for both sides into the
    one sink — SMRP as trace pid 1, PIM as pid 2 (process names included),
    in Chrome [trace_event] form.  [with_metrics] (default false) collects
    engine/net/protocol metrics per side into {!side_result.metrics}.
    [smrp_metrics] / [pim_metrics] supply external registries for the
    respective side (e.g. a report collector's per-variant registries) —
    the side then records its counters, recovery-latency sketches
    ([recovery.total.q] and friends) and sim-time series
    ([net.frame_drops], [proto.members_disrupted]) into the given
    registry. *)

val run_many : ?seed:int -> ?runs:int -> config -> result list

val render : result list -> string
