(** Large-n scaling sweep: how generation, the incremental SPF and the
    protection tables behave as the topology grows to 10⁵–10⁶ nodes.

    Each row draws one topology with {!Smrp_topology.Scale} (degree held at
    ~8 via {!Smrp_topology.Scale.degree_params}), then measures on it:

    - [gen_s]: the draw, connectivity repair and CSR freeze;
    - [spf_build_s]: {!Smrp_graph.Dspf.create}, the one full Dijkstra a
      protection session ever runs;
    - [spf_repair_us]: mean incremental update for a tree-edge
      fail/restore pair, over a sample of tree edges;
    - [protect_entry_ms]: mean branch-detour precompute per protection
      table entry, over a bounded sample of the sample tree's edges (a
      full [Protect.prepare] costs entries x this — background work a
      session amortises across the inter-failure quiet period);
    - [protect_lookup_ns]: the O(1) table read answering a recovery query.

    The member and entry samples are deliberately small: table precompute
    is per tree edge, and the sweep bounds wall-clock so CI can run it;
    the bench suite measures the same quantities statistically at fixed
    size. *)

type row = {
  model : string;  (** ["waxman"] or ["transit-stub"]. *)
  n : int;
  edges : int;
  avg_degree : float;
  gen_s : float;
  spf_build_s : float;
  spf_repair_us : float;
  tree_edges : int;
  protect_entry_ms : float;
  protect_lookup_ns : float;
}

val run : ?ns:int list -> seed:int -> unit -> row list
(** Two rows (Waxman, transit–stub) per requested size; [ns] defaults to
    [[10_000; 100_000]].  Each draw uses a {!Smrp_rng.Rng.split} of the
    seed, so rows are reproducible independently. *)

val render : row list -> string
(** Fixed-width table, one row per measurement. *)

val to_json : row list -> string
(** Machine-readable report ([smrp-scaling-v1]) for the CI artifact. *)
