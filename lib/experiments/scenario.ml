module Rng = Smrp_rng.Rng
module Graph = Smrp_graph.Graph
module Dijkstra = Smrp_graph.Dijkstra
module Waxman = Smrp_topology.Waxman
module Tree = Smrp_core.Tree
module Spf = Smrp_core.Spf
module Smrp = Smrp_core.Smrp
module Failure = Smrp_core.Failure
module Recovery = Smrp_core.Recovery
module Stats = Smrp_metrics.Stats
module Metrics = Smrp_obs.Metrics

type config = {
  n : int;
  group_size : int;
  alpha : float;
  beta : float;
  d_thresh : float;
  link_delay : Waxman.link_delay;
  seed : int;
}

let default =
  {
    n = 100;
    group_size = 30;
    alpha = 0.2;
    beta = 0.2;
    d_thresh = 0.3;
    (* Hop-count link metric, as GT-ITM scenario files commonly weight
       links.  Under geometric (Euclidean) delays the Fig. 9 trend inverts —
       see EXPERIMENTS.md. *)
    link_delay = `Unit;
    seed = 1;
  }

type member_outcome = {
  member : int;
  rd_local_spf : float option;
  rd_local_smrp : float option;
  rd_global_spf : float option;
  rd_global_smrp : float option;
  delay_spf : float;
  delay_smrp : float;
}

type t = {
  config : config;
  graph : Graph.t;
  source : int;
  members : int list;
  spf_tree : Tree.t;
  smrp_tree : Tree.t;
  average_degree : float;
  cost_spf : float;
  cost_smrp : float;
  outcomes : member_outcome list;
}

(* Worst-case failure for a member in a given tree (§4.3.1), then the
   recovery distance under the given strategy. *)
let recovery_distance ?ws tree member strategy =
  match Failure.worst_case_for_member tree member with
  | None -> None
  | Some f -> begin
      let detour =
        match strategy with
        | `Local -> Recovery.local_detour ?ws tree f ~member
        | `Global -> Recovery.global_detour ?ws tree f ~member
      in
      Option.map (fun d -> d.Recovery.recovery_distance) detour
    end

let evaluate ?ws graph ~source ~members ~d_thresh =
  (* One Dijkstra workspace serves every search of the scenario: both tree
     builds and all four recovery measurements per member. *)
  let ws =
    match ws with
    | Some ws -> ws
    | None -> Dijkstra.workspace ~capacity:(Graph.node_count graph) ()
  in
  let spf_tree = Spf.build ~ws graph ~source ~members in
  let smrp_tree = Smrp.build ~d_thresh ~ws graph ~source ~members in
  let outcome m =
    {
      member = m;
      rd_local_spf = recovery_distance ~ws spf_tree m `Local;
      rd_local_smrp = recovery_distance ~ws smrp_tree m `Local;
      rd_global_spf = recovery_distance ~ws spf_tree m `Global;
      rd_global_smrp = recovery_distance ~ws smrp_tree m `Global;
      delay_spf = Tree.delay_to_source spf_tree m;
      delay_smrp = Tree.delay_to_source smrp_tree m;
    }
  in
  (spf_tree, smrp_tree, List.map outcome members)

let pick_group rng ~n ~group_size =
  (* Source and group drawn together, then the source chosen uniformly
     among them (avoids biasing the source towards low node ids). *)
  let chosen = Array.of_list (Rng.sample_without_replacement rng (group_size + 1) n) in
  Rng.shuffle rng chosen;
  (chosen.(0), Array.to_list (Array.sub chosen 1 group_size))

(* Per-scenario instrumentation.  Instruments resolve through the registry
   lock once per scenario (not per event), then mutate the calling domain's
   shard; a registry shared across a [Pool.map] fan-out therefore merges to
   the same totals as a sequential run.  All counted quantities are
   integers, and the recovery-distance histogram sums hop counts, so under
   the default [`Unit] link metric even its float [sum] is exact. *)
let record m t =
  Metrics.Counter.incr (Metrics.counter m "scenario.runs");
  Metrics.Counter.add (Metrics.counter m "scenario.members") (List.length t.members);
  let recovered = Metrics.counter m "scenario.recovered"
  and isolated = Metrics.counter m "scenario.isolated"
  and rd_hist = Metrics.histogram m ~base:2.0 ~lowest:1.0 ~count:8 "scenario.rd_local_smrp" in
  (* Quantile sketches alongside the coarse histogram: recovery distances
     per strategy/tree and per-member tree delays.  Under the default
     [`Unit] link metric every observation is an integer hop count, so the
     sketch sums merge exactly across domains. *)
  let rd_smrp_q = Metrics.sketch m "scenario.rd_local_smrp.q"
  and rd_spf_q = Metrics.sketch m "scenario.rd_global_spf.q"
  and delay_smrp_q = Metrics.sketch m "scenario.delay_smrp.q"
  and delay_spf_q = Metrics.sketch m "scenario.delay_spf.q" in
  List.iter
    (fun o ->
      (match o.rd_local_smrp with
      | Some rd ->
          Metrics.Counter.incr recovered;
          Metrics.Histogram.observe rd_hist rd;
          Smrp_obs.Sketch.observe rd_smrp_q rd
      | None -> Metrics.Counter.incr isolated);
      Option.iter (Smrp_obs.Sketch.observe rd_spf_q) o.rd_global_spf;
      Smrp_obs.Sketch.observe delay_smrp_q o.delay_smrp;
      Smrp_obs.Sketch.observe delay_spf_q o.delay_spf)
    t.outcomes

let run ?metrics config =
  if config.group_size + 1 > config.n then invalid_arg "Scenario.run: group larger than network";
  let rng = Rng.create config.seed in
  let topo_rng = Rng.split rng in
  let member_rng = Rng.split rng in
  let topo =
    Waxman.generate ~link_delay:config.link_delay topo_rng ~n:config.n ~alpha:config.alpha
      ~beta:config.beta
  in
  let graph = topo.Waxman.graph in
  let source, members = pick_group member_rng ~n:config.n ~group_size:config.group_size in
  (* When run under [Pool.with_instrumentation ~trace], the scenario's
     Dijkstra workspace carries the tracer so every search inside it (tree
     builds, candidate searches, recovery detours) lands in the same
     stitched stream as the pool spans.  Untraced runs keep the bare
     workspace: [set_trace] is never called, the hot path stays a branch. *)
  let ws = Dijkstra.workspace ~capacity:(Graph.node_count graph) () in
  (match Pool.ambient_trace () with
  | Some tr when Smrp_obs.Trace.enabled tr -> Dijkstra.set_trace ws tr
  | _ -> ());
  let spf_tree, smrp_tree, outcomes =
    evaluate ~ws graph ~source ~members ~d_thresh:config.d_thresh
  in
  let t =
    {
      config;
      graph;
      source;
      members;
      spf_tree;
      smrp_tree;
      average_degree = Graph.average_degree graph;
      cost_spf = Tree.total_cost spf_tree;
      cost_smrp = Tree.total_cost smrp_tree;
      outcomes;
    }
  in
  Option.iter (fun m -> record m t) metrics;
  t

(* Deduplicate before the fan-out: sweeps routinely repeat a config (a
   collapsed axis), and [run] is deterministic in it, so each distinct config
   is evaluated once and shared.  Metrics are recorded per {e occurrence} on
   the orchestrating domain after the join — same totals as recording inside
   every worker, byte-identical whatever [jobs]. *)
let run_many ?jobs ?metrics configs =
  let seen = Hashtbl.create 16 in
  let unique =
    List.filter
      (fun c ->
        if Hashtbl.mem seen c then false
        else begin
          Hashtbl.replace seen c ();
          true
        end)
      configs
  in
  let results = Pool.map ?jobs run unique in
  let tbl = Hashtbl.create (List.length unique) in
  List.iter2 (Hashtbl.replace tbl) unique results;
  List.map
    (fun c ->
      let t = Hashtbl.find tbl c in
      Option.iter (fun m -> record m t) metrics;
      t)
    configs

type aggregates = {
  rd_relative : float;
  rd_relative_tree : float;
  delay_relative : float;
  cost_relative : float;
  local_vs_global : float;
}

let mean_reduction pairs =
  let rels =
    List.filter_map
      (fun (baseline, improved) ->
        match (baseline, improved) with
        | Some b, Some i when b > 0.0 -> Some (Stats.relative_reduction ~baseline:b ~improved:i)
        | _ -> None)
      pairs
  in
  match rels with [] -> 0.0 | _ -> Stats.mean rels

let aggregates t =
  let pick f g = List.map (fun o -> (f o, g o)) t.outcomes in
  let delay_rels =
    List.map
      (fun o -> Stats.relative_increase ~baseline:o.delay_spf ~changed:o.delay_smrp)
      t.outcomes
  in
  {
    rd_relative = mean_reduction (pick (fun o -> o.rd_global_spf) (fun o -> o.rd_local_smrp));
    rd_relative_tree = mean_reduction (pick (fun o -> o.rd_local_spf) (fun o -> o.rd_local_smrp));
    delay_relative = (match delay_rels with [] -> 0.0 | _ -> Stats.mean delay_rels);
    cost_relative = Stats.relative_increase ~baseline:t.cost_spf ~changed:t.cost_smrp;
    local_vs_global = mean_reduction (pick (fun o -> o.rd_global_smrp) (fun o -> o.rd_local_smrp));
  }
