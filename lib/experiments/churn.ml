module Rng = Smrp_rng.Rng

type model =
  | Static of { group_size : int }
  | Flash_crowd of { crowds : int; mean_size : float; spread : float; mean_lifetime : float }
  | Diurnal of { waves : int; wave_size : int }
  | Heavy_tail of { arrivals : int; alpha : float; x_min : float }

type op = Join of int | Leave of int

type event = { at : float; op : op }

type stats = { burst_sizes : int list; lifetimes : float list; joins : int; leaves : int }

let name = function
  | Static _ -> "static"
  | Flash_crowd _ -> "flash"
  | Diurnal _ -> "diurnal"
  | Heavy_tail _ -> "heavy"

let geometric rng ~mean =
  if mean <= 1.0 then 1
  else begin
    let p = 1.0 /. mean in
    let u = Rng.float rng 1.0 in
    (* Inverse CDF of the geometric on {1,2,...}; u = 0 maps to 1. *)
    1 + int_of_float (Float.log1p (-.u) /. Float.log1p (-.p))
  end

let pareto rng ~alpha ~x_min =
  let u = Rng.float rng 1.0 in
  x_min *. ((1.0 -. u) ** (-1.0 /. alpha))

(* Free-node pool with O(1) uniform draws: [free] holds the currently
   unjoined non-source nodes, [pos] each node's index in it (-1 = joined or
   source).  Swap-remove keeps the draw uniform and the schedule a pure
   function of the RNG. *)
type pool = { free : int array; mutable free_count : int; pos : int array }

let pool ~n ~source =
  let free = Array.make (max 0 (n - 1)) 0 in
  let pos = Array.make n (-1) in
  let k = ref 0 in
  for v = 0 to n - 1 do
    if v <> source then begin
      free.(!k) <- v;
      pos.(v) <- !k;
      incr k
    end
  done;
  { free; free_count = !k; pos }

let draw_free p rng =
  if p.free_count = 0 then None
  else begin
    let i = Rng.int rng p.free_count in
    let v = p.free.(i) in
    let last = p.free.(p.free_count - 1) in
    p.free.(i) <- last;
    p.pos.(last) <- i;
    p.pos.(v) <- -1;
    p.free_count <- p.free_count - 1;
    Some v
  end

let release p v =
  if p.pos.(v) < 0 then begin
    p.free.(p.free_count) <- v;
    p.pos.(v) <- p.free_count;
    p.free_count <- p.free_count + 1
  end

let schedule_with_stats model rng ~n ~source ~horizon =
  if n < 1 then invalid_arg "Churn.schedule: empty topology";
  if horizon <= 0.0 then invalid_arg "Churn.schedule: non-positive horizon";
  let p = pool ~n ~source in
  let events = ref [] in
  let seq = ref 0 in
  let joins = ref 0 and leaves = ref 0 in
  let emit at op =
    events := (at, !seq, op) :: !events;
    incr seq;
    match op with Join _ -> incr joins | Leave _ -> incr leaves
  in
  (* Draw order is not simulated-time order (burst instants are random), so
     a departed node must not be re-drawn before its scheduled leave time.
     Departures are released back into the free pool only once generation
     reaches a join instant past them; a node whose draw order runs ahead of
     its departure simply stays out of the pool — conservative (slightly
     thinner pool), never a double-join. *)
  let pending = ref [] in
  let add_pending d v =
    pending := List.merge (fun (a, _) (b, _) -> compare (a : float) b) !pending [ (d, v) ]
  in
  let release_until t =
    let rec go = function
      | (d, v) :: rest when d <= t ->
          release p v;
          go rest
      | rest -> pending := rest
    in
    go !pending
  in
  let join at =
    release_until at;
    match draw_free p rng with
    | None -> None
    | Some v ->
        emit at (Join v);
        Some v
  in
  let depart at v =
    emit at (Leave v);
    add_pending at v
  in
  let burst_sizes = ref [] and lifetimes = ref [] in
  (* Session candidates are drawn first (pure RNG phase, where the stats
     are recorded), then assigned nodes in chronological order: the pool
     only ever moves forward in time, so a departure can never be re-drawn
     before its leave instant. *)
  let assign candidates =
    let sorted =
      List.sort
        (fun (a1, s1, _) (a2, s2, _) ->
          match compare (a1 : float) a2 with 0 -> compare (s1 : int) s2 | c -> c)
        candidates
    in
    List.iter
      (fun (at, _, life) ->
        match join at with
        | None -> ()
        | Some v -> if at +. life < horizon then depart (at +. life) v)
      sorted
  in
  (match model with
  | Static { group_size } ->
      for _ = 1 to group_size do
        ignore (join 0.0 : int option)
      done
  | Flash_crowd { crowds; mean_size; spread; mean_lifetime } ->
      (* Burst instants cover the first 60% of the horizon so lifetimes have
         room to play out; sizes are the geometric draws recorded in the
         stats (capped only at assignment time by the free pool). *)
      let candidates = ref [] in
      let cseq = ref 0 in
      for _ = 1 to crowds do
        let t0 = Rng.float rng (0.6 *. horizon) in
        let size = geometric rng ~mean:mean_size in
        burst_sizes := size :: !burst_sizes;
        for _ = 1 to size do
          let at = t0 +. Rng.float rng (max 1e-9 spread) in
          let life = Rng.exponential rng (1.0 /. mean_lifetime) in
          lifetimes := life :: !lifetimes;
          candidates := (at, !cseq, life) :: !candidates;
          incr cseq
        done
      done;
      assign !candidates
  | Diurnal { waves; wave_size } ->
      (* Each wave joins a cohort in its first half and drains exactly that
         cohort in its second half: join/leave balance holds per wave by
         construction, and every pending departure of wave [w] precedes all
         join instants of wave [w+1]. *)
      let period = horizon /. float_of_int (max 1 waves) in
      for w = 0 to waves - 1 do
        let base = float_of_int w *. period in
        let cohort = ref [] in
        for _ = 1 to wave_size do
          match join (base +. Rng.float rng (0.45 *. period)) with
          | None -> ()
          | Some v -> cohort := v :: !cohort
        done;
        List.iter
          (fun v -> depart (base +. (0.5 *. period) +. Rng.float rng (0.45 *. period)) v)
          (List.rev !cohort)
      done
  | Heavy_tail { arrivals; alpha; x_min } ->
      let candidates = ref [] in
      let cseq = ref 0 in
      for _ = 1 to arrivals do
        let at = Rng.float rng (0.8 *. horizon) in
        let life = pareto rng ~alpha ~x_min in
        lifetimes := life :: !lifetimes;
        candidates := (at, !cseq, life) :: !candidates;
        incr cseq
      done;
      assign !candidates);
  let sorted =
    List.sort
      (fun (t1, s1, _) (t2, s2, _) ->
        match compare (t1 : float) t2 with 0 -> compare (s1 : int) s2 | c -> c)
      (List.rev !events)
  in
  ( List.map (fun (at, _, op) -> { at; op }) sorted,
    {
      burst_sizes = List.rev !burst_sizes;
      lifetimes = List.rev !lifetimes;
      joins = !joins;
      leaves = !leaves;
    } )

let schedule model rng ~n ~source ~horizon =
  fst (schedule_with_stats model rng ~n ~source ~horizon)
