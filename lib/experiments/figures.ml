module Rng = Smrp_rng.Rng
module Stats = Smrp_metrics.Stats
module Table = Smrp_metrics.Table
module Waxman = Smrp_topology.Waxman
module Report = Smrp_obs.Report

(* Distinct, reproducible seeds per scenario: one stream per experiment,
   split once per scenario. *)
let scenario_seeds ~seed ~count =
  let rng = Rng.create seed in
  List.init count (fun _ -> Int64.to_int (Rng.bits64 rng) land 0x3FFFFFFF)

(* All data points of a figure fan out through one flat Pool.map — a slow
   config does not serialize behind a fast one — and are regrouped per
   config afterwards, preserving the sequential order exactly.

   With [?report], each config's scenarios are additionally recorded into
   the collector's per-variant registry named by [variants] (aligned with
   [configs]).  Recording happens here on the orchestrator domain, after
   the fan-out has joined, so the resulting report is byte-identical
   whatever [jobs]. *)
let sweep ?jobs ?metrics ?report ?(variants = []) ~seed ~scenarios ~configs () =
  let per_config =
    List.map
      (fun make_config ->
        let seeds = scenario_seeds ~seed ~count:scenarios in
        List.map make_config seeds)
      configs
  in
  let results = ref (Scenario.run_many ?jobs ?metrics (List.concat per_config)) in
  let groups =
    List.map
      (fun cfgs ->
        let k = List.length cfgs in
        let rec take k acc rest =
          if k = 0 then (List.rev acc, rest)
          else match rest with x :: tl -> take (k - 1) (x :: acc) tl | [] -> assert false
        in
        let group, rest = take k [] !results in
        results := rest;
        group)
      per_config
  in
  (match report with
  | Some c when variants <> [] ->
      List.iter2
        (fun name group ->
          let m = Report.variant_metrics c name in
          List.iter (Scenario.record m) group)
        variants groups
  | _ -> ());
  groups

type point_summary = {
  rd : Stats.summary;
  rd_tree : Stats.summary;
  delay : Stats.summary;
  cost : Stats.summary;
  degree : Stats.summary;
}

let summaries runs =
  let aggs = List.map Scenario.aggregates runs in
  {
    rd = Stats.summarize (List.map (fun a -> a.Scenario.rd_relative) aggs);
    rd_tree = Stats.summarize (List.map (fun a -> a.Scenario.rd_relative_tree) aggs);
    delay = Stats.summarize (List.map (fun a -> a.Scenario.delay_relative) aggs);
    cost = Stats.summarize (List.map (fun a -> a.Scenario.cost_relative) aggs);
    degree = Stats.summarize (List.map (fun r -> r.Scenario.average_degree) runs);
  }

let pct s = Printf.sprintf "%5.1f%% ± %.1f" (100.0 *. s.Stats.mean) (100.0 *. s.Stats.ci95)

let num v = Printf.sprintf "%.6f" v

let num_pair s = [ num s.Stats.mean; num s.Stats.ci95 ]

module Fig7 = struct
  type result = {
    points : (float * float) list;
    mean_reduction : float;
    below_diagonal_fraction : float;
    on_diagonal_fraction : float;
  }

  let run ?jobs ?metrics ?report ?(seed = 7) ?(topologies = 5) () =
    let seeds = scenario_seeds ~seed ~count:topologies in
    let scenarios =
      Scenario.run_many ?jobs ?metrics
        (List.map (fun s -> { Scenario.default with seed = s; link_delay = `Euclidean }) seeds)
    in
    (match report with
    | Some c ->
        let m = Report.variant_metrics c "smrp (euclidean)" in
        List.iter (Scenario.record m) scenarios
    | None -> ());
    let points =
      List.concat_map
        (fun scenario ->
          List.filter_map
            (fun o ->
              match (o.Scenario.rd_global_smrp, o.Scenario.rd_local_smrp) with
              | Some g, Some l -> Some (g, l)
              | _ -> None)
            scenario.Scenario.outcomes)
        scenarios
    in
    let reductions =
      List.filter_map
        (fun (g, l) -> if g > 0.0 then Some (Stats.relative_reduction ~baseline:g ~improved:l) else None)
        points
    in
    let fraction pred =
      match points with
      | [] -> 0.0
      | _ -> float_of_int (List.length (List.filter pred points)) /. float_of_int (List.length points)
    in
    {
      points;
      mean_reduction = (match reductions with [] -> 0.0 | _ -> Stats.mean reductions);
      below_diagonal_fraction = fraction (fun (g, l) -> l < g -. 1e-9);
      on_diagonal_fraction = fraction (fun (g, l) -> abs_float (g -. l) <= 1e-9);
    }

  let render r =
    let plot =
      Table.scatter ~xlabel:"RD via global detour" ~ylabel:"RD via local detour" r.points
    in
    Printf.sprintf
      "Figure 7: local vs global detour (SMRP tree, worst-case failures)\n%s\n\
       points: %d; strictly below y=x: %.1f%%; on the diagonal: %.1f%% (above: %.1f%%)\n\
       mean recovery-path reduction: %.1f%% (paper: ~33%%)\n"
      plot (List.length r.points)
      (100.0 *. r.below_diagonal_fraction)
      (100.0 *. r.on_diagonal_fraction)
      (100.0 *. (1.0 -. r.below_diagonal_fraction -. r.on_diagonal_fraction))
      (100.0 *. r.mean_reduction)

  let csv r =
    let t = Table.create ~columns:[ "global_rd"; "local_rd" ] in
    List.iter (fun (g, l) -> Table.add_row t [ num g; num l ]) r.points;
    Table.to_csv t
end

module Fig8 = struct
  type row = {
    d_thresh : float;
    rd : Stats.summary;
    rd_tree : Stats.summary;
    delay : Stats.summary;
    cost : Stats.summary;
  }

  let run ?jobs ?metrics ?report ?(seed = 8) ?(values = [ 0.1; 0.2; 0.3; 0.4 ]) ?(scenarios = 100) () =
    let configs =
      List.map (fun dt s -> { Scenario.default with d_thresh = dt; seed = s }) values
    in
    let variants = List.map (Printf.sprintf "smrp d=%.2f") values in
    List.map2
      (fun dt runs ->
        let s = summaries runs in
        { d_thresh = dt; rd = s.rd; rd_tree = s.rd_tree; delay = s.delay; cost = s.cost })
      values
      (sweep ?jobs ?metrics ?report ~variants ~seed ~scenarios ~configs ())

  let render rows =
    let t =
      Table.create
        ~columns:[ "D_thresh"; "RD reduction"; "RD (tree only)"; "delay penalty"; "cost penalty" ]
    in
    List.iter
      (fun r ->
        Table.add_row t
          [ Printf.sprintf "%.2f" r.d_thresh; pct r.rd; pct r.rd_tree; pct r.delay; pct r.cost ])
      rows;
    Printf.sprintf
      "Figure 8: effect of D_thresh (N=100, N_G=30, alpha=0.2)\n%s\n\
       (paper at 0.3: RD -20%%, delay/cost +5%%; improvement grows with D_thresh)\n"
      (Table.render t)

  let csv rows =
    let t =
      Table.create
        ~columns:
          [
            "d_thresh"; "rd_mean"; "rd_ci95"; "rd_tree_mean"; "rd_tree_ci95"; "delay_mean";
            "delay_ci95"; "cost_mean"; "cost_ci95";
          ]
    in
    List.iter
      (fun r ->
        Table.add_row t
          ((num r.d_thresh :: num_pair r.rd)
          @ num_pair r.rd_tree @ num_pair r.delay @ num_pair r.cost))
      rows;
    Table.to_csv t
end

module Fig9 = struct
  type row = {
    alpha : float;
    average_degree : float;
    rd : Stats.summary;
    delay : Stats.summary;
    cost : Stats.summary;
  }

  let run ?jobs ?metrics ?report ?(seed = 9) ?(values = [ 0.15; 0.2; 0.25; 0.3 ]) ?(scenarios = 100)
      ?(degree_ten_row = true) () =
    let values =
      if degree_ten_row then begin
        let rng = Rng.create (seed + 1) in
        let alpha10 =
          Waxman.calibrate_alpha rng ~n:Scenario.default.Scenario.n
            ~beta:Scenario.default.Scenario.beta ~target_degree:10.0
        in
        values @ [ alpha10 ]
      end
      else values
    in
    let configs = List.map (fun a s -> { Scenario.default with alpha = a; seed = s }) values in
    let variants = List.map (Printf.sprintf "smrp alpha=%.3f") values in
    List.map2
      (fun a runs ->
        let s = summaries runs in
        { alpha = a; average_degree = s.degree.Stats.mean; rd = s.rd; delay = s.delay; cost = s.cost })
      values
      (sweep ?jobs ?metrics ?report ~variants ~seed ~scenarios ~configs ())

  let render rows =
    let t =
      Table.create
        ~columns:[ "alpha"; "avg degree"; "RD reduction"; "delay penalty"; "cost penalty" ]
    in
    List.iter
      (fun r ->
        Table.add_row t
          [
            Printf.sprintf "%.3f" r.alpha;
            Printf.sprintf "%.2f" r.average_degree;
            pct r.rd;
            pct r.delay;
            pct r.cost;
          ])
      rows;
    Printf.sprintf
      "Figure 9: effect of alpha / node degree (N=100, N_G=30, D_thresh=0.3)\n%s\n\
       (paper: improvement shrinks slightly with degree; ~12%% at degree 10)\n"
      (Table.render t)

  let csv rows =
    let t =
      Table.create
        ~columns:
          [
            "alpha"; "avg_degree"; "rd_mean"; "rd_ci95"; "delay_mean"; "delay_ci95"; "cost_mean";
            "cost_ci95";
          ]
    in
    List.iter
      (fun r ->
        Table.add_row t
          ((num r.alpha :: num r.average_degree :: num_pair r.rd)
          @ num_pair r.delay @ num_pair r.cost))
      rows;
    Table.to_csv t
end

module Fig10 = struct
  type row = {
    group_size : int;
    rd : Stats.summary;
    delay : Stats.summary;
    cost : Stats.summary;
  }

  let run ?jobs ?metrics ?report ?(seed = 10) ?(values = [ 20; 30; 40; 50 ]) ?(scenarios = 100) () =
    let configs = List.map (fun ng s -> { Scenario.default with group_size = ng; seed = s }) values in
    let variants = List.map (Printf.sprintf "smrp N_G=%d") values in
    List.map2
      (fun ng runs ->
        let s = summaries runs in
        { group_size = ng; rd = s.rd; delay = s.delay; cost = s.cost })
      values
      (sweep ?jobs ?metrics ?report ~variants ~seed ~scenarios ~configs ())

  let render rows =
    let t =
      Table.create ~columns:[ "N_G"; "RD reduction"; "delay penalty"; "cost penalty" ]
    in
    List.iter
      (fun r ->
        Table.add_row t [ string_of_int r.group_size; pct r.rd; pct r.delay; pct r.cost ])
      rows;
    Printf.sprintf
      "Figure 10: effect of group size (N=100, alpha=0.2, D_thresh=0.3)\n%s\n\
       (paper: steady ~20%% RD reduction at ~5%% overhead, slight decline with N_G)\n"
      (Table.render t)

  let csv rows =
    let t =
      Table.create
        ~columns:
          [ "group_size"; "rd_mean"; "rd_ci95"; "delay_mean"; "delay_ci95"; "cost_mean"; "cost_ci95" ]
    in
    List.iter
      (fun r ->
        Table.add_row t
          ((string_of_int r.group_size :: num_pair r.rd) @ num_pair r.delay @ num_pair r.cost))
      rows;
    Table.to_csv t
end
