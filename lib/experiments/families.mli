(** Topology-family robustness: the Fig. 8 headline comparison repeated on
    each flat random-graph family of Zegura et al. [7] at a matched average
    degree, plus the transit–stub model.  Checks that SMRP's advantage is a
    property of the protocol, not of the Waxman generator. *)

type row = {
  family : string;
  average_degree : float;
  rd : Smrp_metrics.Stats.summary;  (** Full-system RD reduction (Fig. 8 metric). *)
  delay : Smrp_metrics.Stats.summary;
  cost : Smrp_metrics.Stats.summary;
}

val run : ?jobs:int -> ?seed:int -> ?scenarios:int -> ?target_degree:float -> unit -> row list
(** Families: waxman, pure-random, locality, transit-stub; [target_degree]
    defaults to 4.5 (the reference Waxman density).  Scenarios fan out over
    {!Pool.map}; the result is byte-identical whatever [jobs]. *)

val render : row list -> string
