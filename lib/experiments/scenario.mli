(** One simulation scenario of §4: a random Waxman topology, a random
    multicast group, the SPF-built and SMRP-built trees, and the worst-case
    failure measurement for every member.

    Interpretation (see DESIGN.md §3): Figs. 8–10 compare the two
    {e tree-construction protocols} under the same local-detour recovery
    architecture, while Fig. 7 compares the two {e recovery strategies} on
    the SMRP tree.  All four per-member recovery distances are therefore
    recorded. *)

type config = {
  n : int;  (** Network size (paper: 100). *)
  group_size : int;  (** [N_G] (paper: 20–50). *)
  alpha : float;  (** Waxman edge density (paper: 0.15–0.3). *)
  beta : float;  (** Waxman long-edge parameter, fixed (we use 0.2). *)
  d_thresh : float;  (** SMRP delay bound (paper: 0.1–0.4 around 0.3). *)
  link_delay : Smrp_topology.Waxman.link_delay;  (** Link metric model. *)
  seed : int;
}

val default : config
(** The paper's reference setting: N=100, N_G=30, α=0.2, D_thresh=0.3. *)

type member_outcome = {
  member : int;
  rd_local_spf : float option;
      (** Local-detour recovery distance on the SPF tree under that tree's
          worst-case failure; [None] if the member was isolated. *)
  rd_local_smrp : float option;  (** Same on the SMRP tree. *)
  rd_global_spf : float option;  (** Global detour on the SPF tree. *)
  rd_global_smrp : float option;  (** Global detour on the SMRP tree. *)
  delay_spf : float;  (** End-to-end tree delay on the SPF tree. *)
  delay_smrp : float;
}

type t = {
  config : config;
  graph : Smrp_graph.Graph.t;
  source : int;
  members : int list;
  spf_tree : Smrp_core.Tree.t;
  smrp_tree : Smrp_core.Tree.t;
  average_degree : float;
  cost_spf : float;
  cost_smrp : float;
  outcomes : member_outcome list;
}

val run : ?metrics:Smrp_obs.Metrics.t -> config -> t
(** Deterministic in [config] (including [seed]): safe to fan out across
    domains with {!Pool.map}.  With [?metrics], the run records into the
    registry via {!record}.  All counted quantities are integers (and under
    the default [`Unit] link metric the histogram and sketch observations
    are hop counts), so a registry shared across a parallel fan-out merges
    to exactly the sequential totals. *)

val record : Smrp_obs.Metrics.t -> t -> unit
(** Record one evaluated scenario: counters [scenario.runs],
    [scenario.members], [scenario.recovered] / [scenario.isolated] (members
    with / without a defined worst-case local-SMRP recovery), the base-2
    histogram [scenario.rd_local_smrp], and quantile sketches
    [scenario.rd_local_smrp.q], [scenario.rd_global_spf.q],
    [scenario.delay_smrp.q], [scenario.delay_spf.q].  Exposed so report
    builders can record already-run scenarios into per-variant
    registries. *)

val run_many : ?jobs:int -> ?metrics:Smrp_obs.Metrics.t -> config list -> t list
(** [run_many configs] is [List.map run configs] fanned out over
    {!Pool.map}; byte-identical to the sequential map whatever [jobs].
    Duplicate configs (a collapsed sweep axis) are evaluated once and the
    result shared — [run] is deterministic in its config, so the output
    list is unchanged.  [metrics] is recorded once per {e occurrence}
    (not per unique config), on the orchestrating domain after the
    fan-out joins: the same totals as recording inside every run. *)

val evaluate :
  ?ws:Smrp_graph.Dijkstra.workspace ->
  Smrp_graph.Graph.t ->
  source:int ->
  members:int list ->
  d_thresh:float ->
  Smrp_core.Tree.t * Smrp_core.Tree.t * member_outcome list
(** Build the SPF and SMRP trees on a caller-supplied topology and measure
    every member — the core of {!run}, exposed for experiments over other
    topology families. *)

val pick_group : Smrp_rng.Rng.t -> n:int -> group_size:int -> int * int list
(** Draw a source and a member set uniformly (the source is an unbiased
    pick among the drawn nodes). *)

val recovery_distance :
  ?ws:Smrp_graph.Dijkstra.workspace ->
  Smrp_core.Tree.t ->
  int ->
  [ `Local | `Global ] ->
  float option
(** The member's recovery distance on [tree] under that tree's worst-case
    failure for it (§4.3.1), [None] if the member is isolated — the
    per-member measurement behind {!evaluate}, exposed for experiments on
    other tree builds (e.g. the query scheme). *)

(** Per-scenario aggregates: the relative metrics of §4.2 averaged over the
    group (members without a defined baseline are skipped).

    [rd_relative] is the protocol-vs-protocol comparison the paper reports
    in Figs. 8–10: the deployed system recovers by global detour on the SPF
    tree (PIM after unicast reconvergence), SMRP by local detour on its own
    tree.  [rd_relative_tree] isolates the tree-construction contribution
    (local detour on both trees); [local_vs_global] isolates the recovery
    mechanism (both strategies on the SMRP tree, Fig. 7). *)
type aggregates = {
  rd_relative : float;  (** [(RD^SPF_global - RD^SMRP_local) / RD^SPF_global]. *)
  rd_relative_tree : float;  (** [(RD^SPF_local - RD^SMRP_local) / RD^SPF_local]. *)
  delay_relative : float;  (** [(D^SMRP - D^SPF) / D^SPF]. *)
  cost_relative : float;  (** [(Cost^SMRP - Cost^SPF) / Cost^SPF]. *)
  local_vs_global : float;
      (** [(RD^global - RD^local) / RD^global] on the SMRP tree (Fig. 7's
          reduction). *)
}

val aggregates : t -> aggregates
