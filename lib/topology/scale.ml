module Rng = Smrp_rng.Rng
module Graph = Smrp_graph.Graph

type vec = (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t

type t = {
  graph : Graph.t;
  xs : vec;
  ys : vec;
  repaired_edges : int list;
  cutoff : float;
  missed_edge_bound : float;
}

let diag = sqrt 2.0

let default_p_floor = 1e-9

let degree_params ~n ~target_degree =
  if n < 2 then invalid_arg "Scale.degree_params: n must be at least 2";
  if target_degree <= 0.0 then invalid_arg "Scale.degree_params: target_degree must be positive";
  (* For pairs drawn uniformly in the unit square the short-range distance
     density is ~ 2*pi*d, so E[p] = alpha * 2*pi*(beta*l)^2 once beta*l is
     small against the square; solving E[deg] = (n-1) * E[p] for beta at a
     fixed dense alpha keeps the degree constant as n grows. *)
  let alpha = 0.9 in
  let s2 = target_degree /. (float_of_int (n - 1) *. alpha *. 2.0 *. Float.pi) in
  let beta = sqrt s2 /. diag in
  (alpha, Float.min beta 1.0)

(* -- Grid buckets --------------------------------------------------------- *)

(* CSR-of-cells: [start.(c) .. start.(c+1) - 1] of [order] are the nodes of
   cell [c].  Flat int arrays only; nothing allocated per node. *)
type grid = { side : int; start : int array; order : int array }

let cell_of grid x = min (grid.side - 1) (int_of_float (x *. float_of_int grid.side))

let build_grid ~side ~n xs ys =
  let cells = side * side in
  let start = Array.make (cells + 1) 0 in
  let order = Array.make n 0 in
  let g = { side; start; order } in
  for i = 0 to n - 1 do
    let c = (cell_of g ys.{i} * side) + cell_of g xs.{i} in
    start.(c + 1) <- start.(c + 1) + 1
  done;
  for c = 1 to cells do
    start.(c) <- start.(c) + start.(c - 1)
  done;
  let fill = Array.copy start in
  for i = 0 to n - 1 do
    let c = (cell_of g ys.{i} * side) + cell_of g xs.{i} in
    order.(fill.(c)) <- i;
    fill.(c) <- fill.(c) + 1
  done;
  g

(* -- Union-find ----------------------------------------------------------- *)

let rec find parent i =
  let p = parent.(i) in
  if p = i then i
  else begin
    let r = find parent p in
    parent.(i) <- r;
    r
  end

let union parent a b =
  let ra = find parent a and rb = find parent b in
  if ra = rb then false
  else begin
    parent.(ra) <- rb;
    true
  end

(* -- Waxman --------------------------------------------------------------- *)

let min_delay = Waxman.min_delay

let make_delay link_delay rng d =
  match link_delay with
  | `Euclidean -> Float.max min_delay d
  | `Unit -> 1.0
  | `Uniform (lo, hi) ->
      if lo <= 0.0 || hi < lo then invalid_arg "Scale.waxman: bad uniform delay range";
      lo +. Rng.float rng (hi -. lo)

(* Stitch the raw draw into one component.  Minor components (smallest
   first) each connect to the geometrically nearest node outside their own
   component, found by an expanding ring scan over the grid — the O(n²)
   closest-pair scan of {!Waxman.generate} replaced by local search. *)
let repair link_delay rng g grid parent xs ys =
  let n = Graph.node_count g in
  let comp_size = Array.make n 0 in
  for i = 0 to n - 1 do
    let r = find parent i in
    comp_size.(r) <- comp_size.(r) + 1
  done;
  let main_root = ref 0 in
  for i = 0 to n - 1 do
    if comp_size.(i) > comp_size.(!main_root) then main_root := i
  done;
  let minors = ref [] in
  for i = 0 to n - 1 do
    if find parent i = i && i <> !main_root then minors := i :: !minors
  done;
  let minors =
    List.sort (fun a b -> compare comp_size.(a) comp_size.(b)) !minors
  in
  (* Node lists only for the minor components: the common case (one giant
     component, a handful of strays) allocates next to nothing. *)
  let members = Array.make n [] in
  for i = n - 1 downto 0 do
    let r = find parent i in
    if r <> !main_root then members.(r) <- i :: members.(r)
  done;
  let side = grid.side in
  (* Nearest node outside [u]'s current component: scan rings of cells
     around [u] outward; once a ring yields a candidate, scan one more ring
     (a nearer point can sit just across a cell boundary) and stop. *)
  let nearest_outside u =
    let root = find parent u in
    let cx = cell_of grid xs.{u} and cy = cell_of grid ys.{u} in
    let best = ref (-1) and best_d2 = ref infinity in
    let scan_cell gx gy =
      if gx >= 0 && gx < side && gy >= 0 && gy < side then begin
        let c = (gy * side) + gx in
        for k = grid.start.(c) to grid.start.(c + 1) - 1 do
          let v = grid.order.(k) in
          if find parent v <> root then begin
            let dx = xs.{u} -. xs.{v} and dy = ys.{u} -. ys.{v} in
            let d2 = (dx *. dx) +. (dy *. dy) in
            if d2 < !best_d2 then begin
              best := v;
              best_d2 := d2
            end
          end
        done
      end
    in
    let r = ref 0 in
    let last = ref max_int in
    while !r < side + 1 && !r <= !last do
      (if !r = 0 then scan_cell cx cy
       else begin
         for gx = cx - !r to cx + !r do
           scan_cell gx (cy - !r);
           scan_cell gx (cy + !r)
         done;
         for gy = cy - !r + 1 to cy + !r - 1 do
           scan_cell (cx - !r) gy;
           scan_cell (cx + !r) gy
         done
       end);
      if !best >= 0 && !last = max_int then last := !r + 1;
      incr r
    done;
    if !best < 0 then None else Some (!best, sqrt !best_d2)
  in
  let added = ref [] in
  List.iter
    (fun root ->
      (* The component may already have been merged into a previous one;
         its node list is still the right search seed either way. *)
      let best = ref None in
      List.iter
        (fun u ->
          match nearest_outside u with
          | Some (v, d) -> (
              match !best with
              | Some (_, _, bd) when bd <= d -> ()
              | _ -> best := Some (u, v, d))
          | None -> ())
        members.(root);
      match !best with
      | Some (u, v, d) ->
          let id = Graph.add_edge g u v (make_delay link_delay rng d) in
          ignore (union parent u v);
          added := id :: !added
      | None -> ())
    minors;
  List.rev !added

let waxman ?(link_delay = `Euclidean) ?(p_floor = default_p_floor) rng ~n ~alpha ~beta =
  if n <= 0 then invalid_arg "Scale.waxman: n must be positive";
  if alpha <= 0.0 || alpha > 1.0 then invalid_arg "Scale.waxman: alpha out of (0, 1]";
  if beta <= 0.0 || beta > 1.0 then invalid_arg "Scale.waxman: beta out of (0, 1]";
  if p_floor <= 0.0 then invalid_arg "Scale.waxman: p_floor must be positive";
  let xs = Bigarray.(Array1.create float64 c_layout n) in
  let ys = Bigarray.(Array1.create float64 c_layout n) in
  for i = 0 to n - 1 do
    xs.{i} <- Rng.float rng 1.0;
    ys.{i} <- Rng.float rng 1.0
  done;
  let s = beta *. diag in
  (* Pairs beyond [cutoff] have edge probability below [p_floor] and are
     never sampled; the expected number of edges lost to the truncation is
     below [n^2/2 * p_floor] (see .mli). *)
  let cutoff = if p_floor >= alpha then 0.0 else Float.min diag (s *. log (alpha /. p_floor)) in
  let missed_edge_bound =
    if cutoff >= diag then 0.0 else 0.5 *. float_of_int n *. float_of_int (n - 1) *. p_floor
  in
  let side =
    let by_cutoff =
      if cutoff >= 1.0 then 1 else max 1 (int_of_float (1.0 /. Float.max cutoff 1e-6))
    in
    let cap = max 1 (int_of_float (ceil (sqrt (float_of_int n)))) in
    min by_cutoff cap
  in
  let grid = build_grid ~side ~n xs ys in
  let g = Graph.create n in
  let parent = Array.init n (fun i -> i) in
  let cutoff2 = cutoff *. cutoff in
  let consider u v =
    let dx = xs.{u} -. xs.{v} and dy = ys.{u} -. ys.{v} in
    let d2 = (dx *. dx) +. (dy *. dy) in
    if d2 <= cutoff2 then begin
      let d = sqrt d2 in
      let p = alpha *. exp (-.d /. s) in
      if Rng.float rng 1.0 < p then begin
        ignore (Graph.add_edge g u v (make_delay link_delay rng d));
        ignore (union parent u v)
      end
    end
  in
  (* Cell width is 1/side >= cutoff unless the sqrt(n) cap kicked in, so the
     candidate ring radius in cells is usually 1. *)
  let reach = max 1 (int_of_float (ceil (cutoff *. float_of_int side))) in
  let cells = side * side in
  for c = 0 to cells - 1 do
    let cx = c mod side and cy = c / side in
    (* Same cell: each unordered pair once. *)
    for k1 = grid.start.(c) to grid.start.(c + 1) - 1 do
      for k2 = k1 + 1 to grid.start.(c + 1) - 1 do
        consider grid.order.(k1) grid.order.(k2)
      done
    done;
    (* Neighbor cells in the lexicographically-positive half ring, so each
       unordered pair of cells is visited exactly once. *)
    for dy = 0 to reach do
      let dx_lo = if dy = 0 then 1 else -reach in
      for dx = dx_lo to reach do
        let gx = cx + dx and gy = cy + dy in
        if gx >= 0 && gx < side && gy < side then begin
          let c' = (gy * side) + gx in
          for k1 = grid.start.(c) to grid.start.(c + 1) - 1 do
            for k2 = grid.start.(c') to grid.start.(c' + 1) - 1 do
              consider grid.order.(k1) grid.order.(k2)
            done
          done
        end
      done
    done
  done;
  let repaired_edges = repair link_delay rng g grid parent xs ys in
  Graph.freeze g;
  { graph = g; xs; ys; repaired_edges; cutoff; missed_edge_bound }

(* -- Transit–stub --------------------------------------------------------- *)

type ts = {
  ts_graph : Graph.t;
  transit_total : int;
  stub_count : int;
  stub_of : int array;
  stub_gateway : int array;
  stub_attach : int array;
}

let transit_link_delay = 1.0

let access_link_delay = 0.5

let transit_stub rng (p : Transit_stub.params) =
  if
    p.Transit_stub.transit_domains < 1
    || p.Transit_stub.transit_nodes_per_domain < 1
    || p.Transit_stub.stub_nodes < 1
    || p.Transit_stub.stubs_per_transit_node < 0
  then invalid_arg "Scale.transit_stub: bad parameters";
  let tpd = p.Transit_stub.transit_nodes_per_domain in
  let sn = p.Transit_stub.stub_nodes in
  let transit_total = p.Transit_stub.transit_domains * tpd in
  let stub_count = transit_total * p.Transit_stub.stubs_per_transit_node in
  let n = transit_total + (stub_count * sn) in
  let g = Graph.create n in
  let stub_of = Array.make n (-1) in
  (* Transit level: a ring per domain plus one random chord, and one link
     between consecutive domains — the same wiring as
     {!Transit_stub.generate}. *)
  for dom = 0 to p.Transit_stub.transit_domains - 1 do
    let base = dom * tpd in
    if tpd > 1 then
      for i = 0 to tpd - 1 do
        let next = base + ((i + 1) mod tpd) in
        if not (Graph.mem_edge g (base + i) next) then
          ignore (Graph.add_edge g (base + i) next transit_link_delay)
      done;
    if tpd >= 4 then begin
      let a = base + Rng.int rng tpd in
      let b = base + Rng.int rng tpd in
      if a <> b && not (Graph.mem_edge g a b) then
        ignore (Graph.add_edge g a b transit_link_delay)
    end
  done;
  for dom = 0 to p.Transit_stub.transit_domains - 2 do
    let a = (dom * tpd) + Rng.int rng tpd in
    let b = ((dom + 1) * tpd) + Rng.int rng tpd in
    if not (Graph.mem_edge g a b) then ignore (Graph.add_edge g a b (2.0 *. transit_link_delay))
  done;
  (* Stub level, streamed: every stub domain draws its Waxman directly into
     [g] over scratch coordinate buffers reused across stubs — no
     per-stub graph, no per-node allocation. *)
  let sxs = Bigarray.(Array1.create float64 c_layout sn) in
  let sys = Bigarray.(Array1.create float64 c_layout sn) in
  let sparent = Array.make sn 0 in
  let s = p.Transit_stub.stub_beta *. diag in
  let stub_gateway = Array.make (max 1 stub_count) 0 in
  let stub_attach = Array.make (max 1 stub_count) 0 in
  let next_node = ref transit_total in
  let stub_id = ref 0 in
  for transit = 0 to transit_total - 1 do
    for _ = 1 to p.Transit_stub.stubs_per_transit_node do
      let d = !stub_id in
      incr stub_id;
      stub_gateway.(d) <- transit;
      let base = !next_node in
      next_node := base + sn;
      for i = 0 to sn - 1 do
        stub_of.(base + i) <- d;
        sxs.{i} <- Rng.float rng 1.0;
        sys.{i} <- Rng.float rng 1.0;
        sparent.(i) <- i
      done;
      (* Stubs are small: the all-pairs scan is O(stub_nodes²) with
         stub_nodes a (tiny) constant — still linear in total size. *)
      for i = 0 to sn - 1 do
        for j = i + 1 to sn - 1 do
          let dx = sxs.{i} -. sxs.{j} and dy = sys.{i} -. sys.{j} in
          let dist = sqrt ((dx *. dx) +. (dy *. dy)) in
          let prob = p.Transit_stub.stub_alpha *. exp (-.dist /. s) in
          if Rng.float rng 1.0 < prob then begin
            ignore (Graph.add_edge g (base + i) (base + j) (Float.max min_delay dist));
            ignore (union sparent i j)
          end
        done
      done;
      (* Intra-stub connectivity: stitch the closest cross-component pair
         until one component remains. *)
      let rec stitch () =
        let best = ref None in
        for i = 0 to sn - 1 do
          for j = i + 1 to sn - 1 do
            if find sparent i <> find sparent j then begin
              let dx = sxs.{i} -. sxs.{j} and dy = sys.{i} -. sys.{j} in
              let d2 = (dx *. dx) +. (dy *. dy) in
              match !best with
              | Some (bd, _, _) when bd <= d2 -> ()
              | _ -> best := Some (d2, i, j)
            end
          done
        done;
        match !best with
        | None -> ()
        | Some (d2, i, j) ->
            ignore (Graph.add_edge g (base + i) (base + j) (Float.max min_delay (sqrt d2)));
            ignore (union sparent i j);
            stitch ()
      in
      stitch ();
      let attach = base + Rng.int rng sn in
      stub_attach.(d) <- attach;
      ignore (Graph.add_edge g attach transit access_link_delay)
    done
  done;
  Graph.freeze g;
  { ts_graph = g; transit_total; stub_count; stub_of; stub_gateway; stub_attach }
