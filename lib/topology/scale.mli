(** Streaming topology generation for large [n] (10⁵–10⁶ nodes).

    {!Waxman.generate} scans every node pair — O(n²) probability draws and a
    tuple-per-node position array — which caps it at a few thousand nodes.
    This module regenerates the same topology families CSR-natively:

    - node coordinates live in two flat float64 bigarrays;
    - the Waxman pair scan is bucketed on a uniform grid sized to the
      probability cutoff, so only geometrically plausible pairs are
      examined;
    - connectivity repair unions components along locally-nearest links
      found by expanding ring search instead of the O(n²·components)
      closest-pair scan;
    - transit–stub domains stream straight into one graph over reused
      scratch buffers (no per-stub graph allocation).

    The price of the grid cutoff is a truncated tail: pairs whose edge
    probability falls below [p_floor] are never sampled.  The expected
    number of edges lost is below [n²/2 · p_floor] (default [p_floor]
    = 1e-9: under one expected edge up to n = 4·10⁴, ~0.5 at n = 10⁶ —
    and those edges are the longest, least likely ones).  Within the
    cutoff the draw is exact Bernoulli, per pair, like the dense
    generator.  Draw order differs from {!Waxman.generate}, so the two
    produce different (equally distributed) topologies from equal seeds. *)

type vec = (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t

type t = {
  graph : Smrp_graph.Graph.t;  (** Frozen (CSR built) before return. *)
  xs : vec;
  ys : vec;  (** Unit-square coordinates, indexed by node. *)
  repaired_edges : int list;
      (** Edge ids added by the connectivity repair pass. *)
  cutoff : float;
      (** Geometric distance beyond which pairs were not sampled. *)
  missed_edge_bound : float;
      (** Upper bound on the expected number of edges lost to the cutoff
          (0 when the cutoff covers the whole square). *)
}

val degree_params : n:int -> target_degree:float -> float * float
(** [(alpha, beta)] whose expected average degree is [target_degree] at
    size [n], from the short-range closed form
    [E(deg) ≈ (n-1) · alpha · 2π(beta·l)²] — the knob that keeps degree
    constant as [n] grows, where {!Waxman.calibrate_alpha}'s empirical
    bisection would need full draws. *)

val waxman :
  ?link_delay:Waxman.link_delay ->
  ?p_floor:float ->
  Smrp_rng.Rng.t ->
  n:int ->
  alpha:float ->
  beta:float ->
  t
(** Grid-bucketed Waxman draw; [link_delay] defaults to [`Euclidean],
    [p_floor] to 1e-9.  The result is always connected (see
    [repaired_edges]).  Work is O(n + sampled pairs): with degree held
    constant via {!degree_params}, generation at n = 10⁵–10⁶ runs in
    seconds where the dense scan would take hours. *)

(** {2 Transit–stub} *)

type ts = {
  ts_graph : Smrp_graph.Graph.t;  (** Frozen (CSR built) before return. *)
  transit_total : int;  (** Transit routers are nodes [0 .. transit_total-1]. *)
  stub_count : int;
  stub_of : int array;
      (** Per node: its stub domain id, or -1 for transit routers. *)
  stub_gateway : int array;  (** Per stub: the sponsoring transit router. *)
  stub_attach : int array;  (** Per stub: the stub router holding the access link. *)
}

val transit_stub : Smrp_rng.Rng.t -> Transit_stub.params -> ts
(** The {!Transit_stub.generate} wiring (per-domain transit rings with a
    chord, inter-domain links, one connected Waxman stub per sponsorship)
    streamed into a single graph: every stub draws over two reused scratch
    coordinate buffers, so total work and allocation are linear in the node
    count.  Role/gateway bookkeeping uses flat int arrays in place of the
    per-node variant array. *)
