(** Structured run reports: a plain-data model of one experiment campaign —
    per-variant metric totals, quantile-sketch summaries and sim-time
    series — with JSON (de)serialization through [Bench_json], an ASCII
    table renderer, and a self-contained HTML comparison dashboard.

    A report is built from merged {!Metrics} snapshots, one registry per
    {e variant} (e.g. "spf baseline", "smrp d=0.25", "smrp query").  The
    model is deliberately plain data with structural equality: two runs
    that merge to identical snapshots produce equal reports and
    byte-identical JSON, so parallel-vs-sequential identity checks can
    compare rendered reports directly. *)

(** One distribution summary, taken from a non-empty {!Sketch}.  Quantile
    estimates are precomputed (harmonic bucket midpoints clamped to the
    observed extrema); [d_rel_err] is the sketch's worst-case relative
    error bound for estimates in finite buckets. *)
type dist = {
  d_count : int;
  d_sum : float;
  d_min : float;
  d_max : float;
  d_p50 : float;
  d_p90 : float;
  d_p99 : float;
  d_p999 : float;
  d_rel_err : float;
}

(** One variant: association lists in sorted-name order (inherited from
    {!Metrics.snapshot}), so equality is well-defined. *)
type variant = {
  v_name : string;
  v_attrs : (string * string) list;  (** Free-form labels (d_thresh, jobs…). *)
  v_counts : (string * int) list;  (** Counters, plus histogram [.count]s. *)
  v_values : (string * float) list;
      (** Gauges (last and finite [.max]) and histogram [.sum]s; always
          finite. *)
  v_dists : (string * dist) list;  (** Non-empty sketches. *)
  v_series : (string * Series.view) list;
}

type t = { r_title : string; r_meta : (string * string) list; r_variants : variant list }

val of_metrics : name:string -> ?attrs:(string * string) list -> Metrics.t -> variant
(** Snapshot [m] and project it into a variant: counters to [v_counts];
    gauges to [v_values] (non-finite values skipped); histograms to
    [v_counts] as [name.count] and [v_values] as [name.sum]; non-empty
    sketches to [v_dists]; series to [v_series]. *)

val make : title:string -> ?meta:(string * string) list -> variant list -> t

(** {2 Collectors}

    A collector hands out one registry per variant name, thread-safely, so
    experiment drivers ([Figures.figN ?report]) can record each sweep row
    into its own variant while fanning rows out over a pool.  Variants keep
    first-registration order. *)

type collector

val collector : unit -> collector

val variant_metrics : collector -> string -> Metrics.t
(** Get-or-create the registry for a variant name. *)

val collected : collector -> (string * Metrics.t) list
(** Variants in first-registration order. *)

val of_collector : title:string -> ?meta:(string * string) list -> collector -> t

(** {2 Serialization} *)

val to_json : t -> Bench_support.Bench_json.t
(** Schema: [{schema_version; title; meta; variants}], member order fixed,
    so equal reports serialize to byte-identical strings. *)

val of_json : Bench_support.Bench_json.t -> t
(** Inverse of {!to_json}; raises [Invalid_argument] on a missing or
    ill-typed member or an unsupported [schema_version]. *)

val to_string : ?minify:bool -> t -> string

val of_string : string -> t
(** Raises [Bench_json.Parse_error] on malformed JSON, [Invalid_argument]
    on schema violations. *)

(** {2 Renderers} *)

val render_ascii : t -> string
(** Counter, value, distribution and series comparison tables, one column
    per variant (distribution rows carry n/mean/p50/p90/p99/p999/max and
    the error bound; series rows a textual sparkline). *)

val render_html : t -> string
(** A single self-contained HTML document (inline CSS and SVG, no external
    references): per-distribution comparison tables across variants and
    per-series sparkline small-multiples, with light and dark themes. *)
