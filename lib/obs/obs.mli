(** Observability context: one {!Metrics} registry plus one {!Trace} tracer,
    threaded through the simulator ([Engine], [Net], [Protocol]) as a single
    optional value.  Constructing a context with the default {!Trace.noop}
    sink still collects metrics; instrumented code checks
    [Trace.enabled (trace obs)] before doing per-event work. *)

type t

val create : ?pid:int -> ?sink:Trace.sink -> ?metrics:Metrics.t -> unit -> t
(** Defaults: [pid = 0], [sink = Trace.noop], a fresh [Metrics.create ()].
    Pass [?metrics] to record into an external registry — e.g. a
    per-variant report registry shared across simulator components. *)

val metrics : t -> Metrics.t

val trace : t -> Trace.t
