(** Recovery-episode timelines: per-member milestones from a persistent
    failure to data resumption, decomposed into the paper's §3.2 steps —

    - {b detection}: failure → the member declares disruption (starvation
      or hello timeout);
    - {b signalling}: declaration → the (last) detour [Join_Req] leaves the
      member (for a global/PIM recovery this includes the unicast
      reconvergence wait, and for either strategy any retry backoff);
    - {b installation}: signal → forwarding state installed at the merge
      node (the join has propagated hop-by-hop up the detour);
    - {b first data}: installation → the first data packet arrives over the
      restored branch.

    This module is a projection of {!Causal} episodes: the live milestone
    bookkeeping is [Causal.tracker] (driven by the protocol automata), and
    the episode record below is the same type re-exported under the
    original phase vocabulary. *)

type episode = Causal.episode = {
  member : int;
  failure_at : float;
  detected_at : float option;
  signalled_at : float option;
  installed_at : float option;
  first_data_at : float option;
  attempts : int;  (** Detour signalling attempts (> 1 when recoveries raced). *)
}

type phase = Detection | Signalling | Installation | First_data

val phases : phase list
(** In timeline order. *)

val phase_name : phase -> string

val to_causal : phase -> Causal.phase
(** The same interval under {!Causal}'s detect/notify/repair/stabilize
    naming. *)

val phase_durations : episode -> (phase * float option) list
(** Consecutive milestone deltas, [None] where a milestone is missing. *)

val total : episode -> float option
(** Failure → first data, when the episode completed. *)

val render : episode list -> string
(** Fixed-width per-member phase table (durations in seconds). *)
