(** Recovery-episode timelines: per-member milestones from a persistent
    failure to data resumption, decomposed into the paper's §3.2 steps —

    - {b detection}: failure → the member declares disruption (starvation
      or hello timeout);
    - {b signalling}: declaration → the (last) detour [Join_Req] leaves the
      member (for a global/PIM recovery this includes the unicast
      reconvergence wait, and for either strategy any retry backoff);
    - {b installation}: signal → forwarding state installed at the merge
      node (the join has propagated hop-by-hop up the detour);
    - {b first data}: installation → the first data packet arrives over the
      restored branch.

    The recorder is driven by the protocol automata and ignores milestones
    for members without an open episode (so periodic join refreshes after
    restoration don't perturb the record). *)

type episode = {
  member : int;
  failure_at : float;
  detected_at : float option;
  signalled_at : float option;
  installed_at : float option;
  first_data_at : float option;
  attempts : int;  (** Detour signalling attempts (> 1 when recoveries raced). *)
}

type phase = Detection | Signalling | Installation | First_data

val phases : phase list
(** In timeline order. *)

val phase_name : phase -> string

val phase_durations : episode -> (phase * float option) list
(** Consecutive milestone deltas, [None] where a milestone is missing. *)

val total : episode -> float option
(** Failure → first data, when the episode completed. *)

type recorder

val create : unit -> recorder

val note_failure : recorder -> ts:float -> unit

val note_detected : recorder -> member:int -> ts:float -> unit
(** Opens the member's episode; later calls for the same member are ignored
    (first detection wins). No-op before {!note_failure}. *)

val note_signalled : recorder -> member:int -> ts:float -> unit

val note_installed : recorder -> member:int -> ts:float -> unit

val note_first_data : recorder -> member:int -> ts:float -> unit
(** Closes the episode; every milestone for a closed episode is ignored. *)

val episodes : recorder -> episode list
(** Sorted by member id. *)

val episode : recorder -> int -> episode option
(** One member's episode (open or closed), when it exists. *)

val render : episode list -> string
(** Fixed-width per-member phase table (durations in seconds). *)
