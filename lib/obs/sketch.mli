(** Mergeable log-bucket quantile sketch: fixed geometric buckets (the same
    repeated-multiplication edge construction as {!Metrics.Histogram}, so
    bucketing is deterministic across platforms), integer bucket counts, and
    rank-based quantile estimates with a known relative error bound.

    The sketch is the distributional counterpart of a histogram: where the
    histogram's handful of decade buckets answer "roughly where does the
    mass sit", a sketch's denser buckets answer p50/p90/p99/p999 with a
    bounded relative error of [(base - 1) / (base + 1)] (each estimate is
    the harmonic midpoint [2*lo*hi / (lo+hi)] of its bucket — the point
    with the smallest worst-case relative error over it — clamped to the
    observed [min]/[max]).

    {b Merge semantics} mirror the sharded-registry counter rules exactly:
    two sketches with identical layout (same [base], [lowest], bucket
    count) merge by bucket-wise integer addition ([count] adds, [sum] adds,
    [min]/[max] combine); merging sketches with different layouts raises
    [Invalid_argument].  Because bucket counts are integers, a parallel
    fan-out recording into per-domain sketches merges to exactly the
    sequential sketch whatever the scheduling — and when the observed
    values are themselves integers (hop counts), the float [sum] is exact
    too.  A sketch value is single-writer (one domain) like every registry
    instrument; cross-domain aggregation happens at merge time. *)

type t

val create : ?base:float -> ?lowest:float -> ?count:int -> unit -> t
(** Defaults: [base = 1.118], [lowest = 1e-4], [count = 168] bounds plus an
    overflow bucket — covering ~1e-4 .. ~1.2e4 with a ~5.6% relative error
    bound.  [base > 1], [lowest > 0], [count >= 1]. *)

val observe : t -> float -> unit
(** Record one value.  Non-finite values raise [Invalid_argument] (they
    would poison [sum] and serialization). *)

val base : t -> float

val lowest : t -> float

val bucket_count : t -> int
(** Number of finite bounds (the overflow bucket is extra). *)

val count : t -> int

val sum : t -> float

val min_value : t -> float
(** Smallest observed value; [infinity] while empty. *)

val max_value : t -> float
(** Largest observed value; [neg_infinity] while empty. *)

val buckets : t -> (float * int) list
(** [(upper_bound, count)] per bucket in increasing bound order; the final
    overflow bucket reports [infinity].  Counts are per-bucket. *)

val rel_error : t -> float
(** The worst-case relative error of {!quantile} estimates that land in a
    finite bucket: [(base - 1) / (base + 1)]. *)

val quantile : t -> float -> float
(** [quantile t q] with [0 <= q <= 1]: the value at rank [ceil (q * count)]
    (rank 1 for [q = 0]), estimated as the harmonic midpoint of the
    covering bucket and clamped to [[min_value, max_value]]; [q = 0] and
    [q = 1] return the exactly-tracked extrema.  Raises [Invalid_argument]
    on an empty sketch or a [q] outside [0, 1]. *)

val quantile_bounds : t -> float -> float * float
(** The covering bucket's [(lower, upper)] edges for the same rank,
    intersected with [[min_value, max_value]] — a hard interval the true
    quantile lies in. *)

val compatible : t -> t -> bool
(** Same layout ([base], [lowest], bucket count)? *)

val copy : t -> t

val merge_into : into:t -> t -> unit
(** Bucket-wise accumulation of [src] into [into]; an accumulation, not a
    union (merging the same sketch twice double-counts).  Raises
    [Invalid_argument] when the layouts differ. *)

(** A plain-data snapshot of a sketch, as stored in merged
    {!Metrics.snapshot} values: order-insensitive structural equality, no
    mutable state shared with the live sketch. *)
type summary = {
  base : float;
  lowest : float;
  s_count : int;
  s_sum : float;
  s_min : float;
  s_max : float;
  s_buckets : (float * int) list;  (** As {!buckets}. *)
}

val summarize : t -> summary

val summary_quantile : summary -> float -> float
(** {!quantile} computed on a snapshot. *)

val summary_rel_error : summary -> float
