(** Always-on binary flight recorder.

    A fixed-size per-domain ring of packed int records — (scaled-int tick,
    1-byte event code, two operand words) — written straight from the
    engine's int-coded dispatch. Recording is a mask, three stores and a
    counter bump; no allocation. Snapshot/decode merges all per-domain rings
    into one time-ordered stream for the causal analyzer ({!Causal}) and the
    [smrp inspect] crash-dump reader. *)

type recorder
(** A single domain's ring. Writers only ever touch their own recorder. *)

type t
(** A sharded set of per-domain rings. *)

val create : ?capacity:int -> unit -> t
(** [capacity] is records per domain, rounded up to a power of two
    (default 8192). *)

val global : t
(** The process-wide recorder engines attach to by default. *)

val recorder : t -> recorder
(** The calling domain's ring in [t], created on first use. *)

val null : recorder
(** A disabled recorder: {!record} on it is a single predicate check.
    Used to measure recorder overhead ([Engine.create ~flight:Flight.null]). *)

val record : recorder -> tick:int -> code:int -> a:int -> b:int -> unit
(** Append one record. [tick] is truncated to 54 bits, [code] to 8; the
    operand words are stored raw. Hot-path safe: no allocation. *)

val reset : t -> unit
(** Rewind every ring to empty. Existing {!recorder} handles stay valid. *)

val dropped : t -> int
(** Total records overwritten by ring wrap-around since the last reset. *)

val ticks_per_second : float
(** The timestamp scale records are written in; equals
    [Engine.ticks_per_second]. *)

(** {1 Event codes} *)

(* engine: fire (a = handler code, b = event operand a), schedule (tick =
   target tick, a = handler code, b = event id), cancel.
   net: a = packed message, b = (src lsl 31) lor dst.
   proto: a = member (or failed edge for proto_failure); b = hops/merge.
   exec: tick = event index; exec_event a = (kind lsl 32) lor operand,
   exec_violation a = oracle id, b = event index. *)

val ev_fire : int
val ev_schedule : int
val ev_cancel : int
val net_send : int
val net_deliver : int
val net_drop_send : int
val net_drop_flight : int
val net_drop_loss : int
val proto_failure : int
val proto_detected : int
val proto_signal : int
val proto_installed : int
val proto_first_data : int
val proto_reshape : int
val exec_event : int
val exec_violation : int

val code_name : int -> string
val code_of_name : string -> int option
(** Accepts either a symbolic name ("net.send") or a decimal code. *)

(** {1 Decoding} *)

type decoded = {
  d_tick : int;
  d_code : int;
  d_a : int;
  d_b : int;
  d_domain : int;
  d_seq : int;  (** per-domain emission index *)
}

val snapshot : t -> decoded list
(** Merge every domain's ring into one stream ordered by
    (tick, domain, seq). Intended for quiesced or post-mortem use. *)

(** {1 Crash dumps} *)

exception Bad_dump of string

val write_dump : ?dropped:int -> string -> decoded list -> unit
(** Write a text dump: a [smrp-flight-dump 1 <ticks/s>] header, a
    [dropped N] line, then one [domain seq tick code a b] line per record. *)

val read_dump : string -> decoded list * int
(** Read a dump back; returns the records and the dropped count.
    @raise Bad_dump on malformed input. *)
