(** Span/event tracer keyed on the {e simulation} clock, so traces from two
    identical seeded runs are byte-identical and reproducible.  Events carry
    Chrome [trace_event]-style fields ([ph], [pid], [tid], [cat], [args]);
    the JSONL sink writes one Chrome trace event per line (Perfetto and
    [chrome://tracing] load this directly; wrapping the lines in [\[...\]]
    yields the strict JSON-array format).

    Timestamps are simulated seconds; the JSON writer converts to the
    microseconds Chrome expects.  With the {!noop} sink every emit function
    returns immediately ({!enabled} is [false]), so instrumentation costs a
    branch when tracing is off. *)

type phase =
  | Begin  (** Span open ([ph:"B"]); close with a matching {!End} on the same track. *)
  | End  (** Span close ([ph:"E"]). *)
  | Instant  (** Point event ([ph:"i"]). *)
  | Complete of float  (** Span with a known duration in seconds ([ph:"X"]). *)
  | Counter_sample of float  (** Counter track sample ([ph:"C"]). *)
  | Metadata  (** Process/thread naming ([ph:"M"]). *)

type arg = Str of string | Int of int | Float of float

type event = {
  ts : float;  (** Simulated seconds. *)
  name : string;
  cat : string;
  ph : phase;
  pid : int;
  tid : int;
  args : (string * arg) list;
}

type sink

val noop : sink

val ring : capacity:int -> sink
(** In-memory ring buffer keeping the last [capacity] events.  Single-domain
    only — use {!sharded_ring} when several domains share one tracer. *)

val sharded_ring : capacity:int -> sink
(** One ring of [capacity] events {e per domain}: each emitting domain
    pushes to a private ring it installs on first use (a lock-free CAS
    append; the rings of domains that have since terminated are kept).
    Read the merged stream back with {!stitched_contents}. *)

val ring_contents : sink -> event list
(** Buffered events, oldest first; [[]] for non-ring sinks (including
    sharded rings — use {!stitched_contents} for those). *)

val stitched_contents : sink -> event list
(** The sink's buffered events as one stream.  For a {!sharded_ring} every
    event's [tid] is replaced by its emitting domain's id, each per-domain
    ring is ordered by timestamp (stable within equal timestamps), and the
    rings are merged by (ts, domain, emission index) — deterministic, and
    timestamps are monotone per tid by construction.  Only call after the
    emitting domains have quiesced (e.g. after [Pool.map] joined its
    workers).  For a plain {!ring} this is {!ring_contents}; [[]]
    otherwise. *)

val wall_clock : unit -> float
(** [Unix.gettimeofday] — the timestamp source for spans over real
    computation (Dijkstra runs, pool tasks), as opposed to the simulation
    clock used by the protocol instrumentation. *)

val jsonl : (string -> unit) -> sink
(** Calls the function once per event with its JSON rendering (no trailing
    newline). *)

val channel : out_channel -> sink
(** JSONL to a channel, one event per line. *)

type t

val null : t
(** A tracer over the {!noop} sink. *)

val create : ?pid:int -> sink -> t
(** [pid] (default 0) labels every event from this tracer — use distinct
    pids to merge several simulations into one trace file. *)

val enabled : t -> bool
(** [false] iff the sink is {!noop}; check before building expensive args. *)

val instant : t -> ts:float -> ?cat:string -> ?tid:int -> ?args:(string * arg) list -> string -> unit

val begin_span : t -> ts:float -> ?cat:string -> ?tid:int -> ?args:(string * arg) list -> string -> unit

val end_span : t -> ts:float -> ?tid:int -> string -> unit

val complete : t -> ts:float -> dur:float -> ?cat:string -> ?tid:int -> ?args:(string * arg) list -> string -> unit
(** A span whose duration ([dur], seconds) is known at emit time. *)

val counter : t -> ts:float -> ?tid:int -> string -> float -> unit
(** Sample a counter track (renders as a filled area in trace viewers). *)

val process_name : t -> string -> unit
(** Metadata event naming this tracer's [pid] in viewers. *)

val to_json : event -> string
(** One Chrome [trace_event] object (single line, no trailing newline). *)
