(* Fixed-interval ring-buffered time series over the simulation clock.  See
   the interface for the merge contract.  The ring is an array indexed by
   [bucket mod capacity]; each slot remembers which bucket it holds, so
   writing a newer bucket into a slot evicts the older one in O(1) and
   stale slots (left behind when the window jumps forward) are filtered at
   read/merge time rather than eagerly scrubbed. *)

type kind = Sum | Last

type t = {
  kind : kind;
  interval : float;
  cap : int;
  bucket : int array; (* bucket id per slot; -1 = empty *)
  value : float array;
  last_ts : float array; (* last observation time per slot (Last merges) *)
  mutable hi : int; (* highest bucket id seen; -1 while empty *)
  mutable samples : int;
  mutable dropped : int;
}

let create ?(kind = Sum) ?(interval = 1.0) ?(capacity = 512) () =
  if not (Float.is_finite interval) || interval <= 0.0 then
    invalid_arg "Series.create: interval must be positive";
  if capacity < 1 then invalid_arg "Series.create: capacity must be positive";
  {
    kind;
    interval;
    cap = capacity;
    bucket = Array.make capacity (-1);
    value = Array.make capacity 0.0;
    last_ts = Array.make capacity neg_infinity;
    hi = -1;
    samples = 0;
    dropped = 0;
  }

let kind t = t.kind

let interval t = t.interval

let capacity t = t.cap

(* A slot's entry is live iff it holds a bucket inside the current window
   (hi - cap, hi]. *)
let live t idx = idx >= 0 && idx > t.hi - t.cap

let observe t ~ts v =
  if not (Float.is_finite ts) || ts < 0.0 then
    invalid_arg "Series.observe: ts must be finite and non-negative";
  if not (Float.is_finite v) then invalid_arg "Series.observe: non-finite value";
  let idx = int_of_float (ts /. t.interval) in
  if t.hi >= 0 && idx <= t.hi - t.cap then t.dropped <- t.dropped + 1
  else begin
    t.samples <- t.samples + 1;
    if idx > t.hi then t.hi <- idx;
    let slot = idx mod t.cap in
    if t.bucket.(slot) = idx then begin
      (match t.kind with
      | Sum -> t.value.(slot) <- t.value.(slot) +. v
      | Last ->
          (* Program order wins within a series, as Gauge.set does. *)
          t.value.(slot) <- v);
      if ts > t.last_ts.(slot) then t.last_ts.(slot) <- ts
    end
    else begin
      t.bucket.(slot) <- idx;
      t.value.(slot) <- v;
      t.last_ts.(slot) <- ts
    end
  end

let samples t = t.samples

let dropped t = t.dropped

let points t =
  let acc = ref [] in
  for slot = 0 to t.cap - 1 do
    let idx = t.bucket.(slot) in
    if live t idx then acc := (idx, t.value.(slot)) :: !acc
  done;
  List.sort (fun (a, _) (b, _) -> compare a b) !acc
  |> List.map (fun (idx, v) -> (float_of_int idx *. t.interval, v))

let compatible a b = a.kind = b.kind && a.interval = b.interval && a.cap = b.cap

let copy t =
  {
    t with
    bucket = Array.copy t.bucket;
    value = Array.copy t.value;
    last_ts = Array.copy t.last_ts;
  }

let merge_into ~into src =
  if not (compatible into src) then
    invalid_arg "Series.merge_into: series layouts differ (kind/interval/capacity)";
  let new_hi = max into.hi src.hi in
  for slot = 0 to src.cap - 1 do
    let idx = src.bucket.(slot) in
    if live src idx then begin
      if idx <= new_hi - into.cap then into.dropped <- into.dropped + 1
      else begin
        let dslot = idx mod into.cap in
        if into.bucket.(dslot) = idx then begin
          (match into.kind with
          | Sum -> into.value.(dslot) <- into.value.(dslot) +. src.value.(slot)
          | Last ->
              (* Gauge merge per bucket: the greater observation timestamp
                 wins, ties towards the larger value. *)
              let keep_ours =
                into.last_ts.(dslot) > src.last_ts.(slot)
                || (into.last_ts.(dslot) = src.last_ts.(slot)
                   && into.value.(dslot) >= src.value.(slot))
              in
              if not keep_ours then into.value.(dslot) <- src.value.(slot));
          if src.last_ts.(slot) > into.last_ts.(dslot) then
            into.last_ts.(dslot) <- src.last_ts.(slot)
        end
        else begin
          (* Either empty, or a bucket now outside the merged window: two
             live buckets within one window cannot share a slot. *)
          into.bucket.(dslot) <- idx;
          into.value.(dslot) <- src.value.(slot);
          into.last_ts.(dslot) <- src.last_ts.(slot)
        end
      end
    end
  done;
  into.hi <- new_hi;
  into.samples <- into.samples + src.samples;
  into.dropped <- into.dropped + src.dropped

type view = {
  v_kind : kind;
  v_interval : float;
  v_points : (float * float) list;
  v_dropped : int;
}

let view t =
  { v_kind = t.kind; v_interval = t.interval; v_points = points t; v_dropped = t.dropped }
