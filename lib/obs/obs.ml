type t = { metrics : Metrics.t; trace : Trace.t }

let create ?(pid = 0) ?(sink = Trace.noop) ?metrics () =
  let metrics = match metrics with Some m -> m | None -> Metrics.create () in
  { metrics; trace = Trace.create ~pid sink }

let metrics t = t.metrics

let trace t = t.trace
