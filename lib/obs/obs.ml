type t = { metrics : Metrics.t; trace : Trace.t }

let create ?(pid = 0) ?(sink = Trace.noop) () =
  { metrics = Metrics.create (); trace = Trace.create ~pid sink }

let metrics t = t.metrics

let trace t = t.trace
