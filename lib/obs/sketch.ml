(* Mergeable log-bucket quantile sketch.  See the interface for the merge
   and error-bound contract.  Bucket edges are built by repeated
   multiplication and searched linearly, exactly as Metrics.Histogram does,
   so bucketing never depends on platform [log]/[exp] rounding. *)

type t = {
  base : float;
  lowest : float;
  bounds : float array; (* strictly increasing upper bounds *)
  counts : int array; (* length = Array.length bounds + 1 (overflow) *)
  mutable count : int;
  mutable sum : float;
  mutable min_v : float; (* +inf while empty *)
  mutable max_v : float; (* -inf while empty *)
}

let create ?(base = 1.118) ?(lowest = 1e-4) ?(count = 168) () =
  if base <= 1.0 then invalid_arg "Sketch.create: base must exceed 1";
  if lowest <= 0.0 then invalid_arg "Sketch.create: lowest must be positive";
  if count < 1 then invalid_arg "Sketch.create: need at least one bucket";
  let bounds = Array.make count lowest in
  for i = 1 to count - 1 do
    bounds.(i) <- bounds.(i - 1) *. base
  done;
  {
    base;
    lowest;
    bounds;
    counts = Array.make (count + 1) 0;
    count = 0;
    sum = 0.0;
    min_v = infinity;
    max_v = neg_infinity;
  }

let index bounds v =
  let n = Array.length bounds in
  let rec find i = if i = n || v <= bounds.(i) then i else find (i + 1) in
  find 0

let observe t v =
  if not (Float.is_finite v) then invalid_arg "Sketch.observe: non-finite value";
  t.count <- t.count + 1;
  t.sum <- t.sum +. v;
  if v < t.min_v then t.min_v <- v;
  if v > t.max_v then t.max_v <- v;
  let i = index t.bounds v in
  t.counts.(i) <- t.counts.(i) + 1

let base t = t.base

let lowest t = t.lowest

let bucket_count t = Array.length t.bounds

let count t = t.count

let sum t = t.sum

let min_value t = t.min_v

let max_value t = t.max_v

let buckets t =
  let n = Array.length t.bounds in
  List.init (n + 1) (fun i -> ((if i = n then infinity else t.bounds.(i)), t.counts.(i)))

(* The worst case of the harmonic-midpoint estimate below over a bucket
   (lo, lo*base]: equal relative error at both edges, (base-1)/(base+1). *)
let rel_error_of_base base = (base -. 1.0) /. (base +. 1.0)

let rel_error t = rel_error_of_base t.base

(* The bucket covering rank [ceil (q * count)] (rank 1 at q = 0), as an
   index into a counts array laid out like [t.counts]. *)
let rank_bucket ~counts ~total q =
  if total = 0 then invalid_arg "Sketch.quantile: empty sketch";
  if not (Float.is_finite q) || q < 0.0 || q > 1.0 then
    invalid_arg "Sketch.quantile: q outside [0, 1]";
  let rank = max 1 (int_of_float (ceil (q *. float_of_int total))) in
  let n = Array.length counts in
  let rec walk i acc =
    if i = n - 1 then i
    else
      let acc = acc + counts.(i) in
      if acc >= rank then i else walk (i + 1) acc
  in
  walk 0 0

(* Bucket edges: bucket 0 is (0, bounds.(0)], bucket i is
   (bounds.(i-1), bounds.(i)], the overflow bucket is (bounds.(n-1), inf).
   Finite buckets estimate at the harmonic midpoint 2*lo*hi/(lo+hi) — the
   point minimizing the worst-case relative error over the bucket, equal to
   (base-1)/(base+1) at both edges; unbounded buckets use the nearest
   finite edge.  Everything then clamps to the observed extrema. *)
let bucket_edges bounds i =
  let n = Array.length bounds in
  if i = 0 then (0.0, bounds.(0))
  else if i = n then (bounds.(n - 1), infinity)
  else (bounds.(i - 1), bounds.(i))

let clamp ~lo ~hi v = Float.max lo (Float.min hi v)

let estimate ~bounds ~min_v ~max_v i =
  let lo, hi = bucket_edges bounds i in
  let raw =
    if i = 0 then hi
    else if hi = infinity then lo
    else 2.0 *. lo *. hi /. (lo +. hi)
  in
  clamp ~lo:min_v ~hi:max_v raw

let quantile t q =
  let i = rank_bucket ~counts:t.counts ~total:t.count q in
  (* The extreme ranks are tracked exactly; buckets only refine between. *)
  if q = 0.0 then t.min_v
  else if q = 1.0 then t.max_v
  else estimate ~bounds:t.bounds ~min_v:t.min_v ~max_v:t.max_v i

let quantile_bounds t q =
  let i = rank_bucket ~counts:t.counts ~total:t.count q in
  let lo, hi = bucket_edges t.bounds i in
  (Float.max lo t.min_v, Float.min hi t.max_v)

let compatible a b =
  a.base = b.base && a.lowest = b.lowest && Array.length a.bounds = Array.length b.bounds

let copy t =
  {
    t with
    bounds = Array.copy t.bounds;
    counts = Array.copy t.counts;
  }

let merge_into ~into src =
  if not (compatible into src) then
    invalid_arg "Sketch.merge_into: sketch layouts differ (base/lowest/bucket count)";
  Array.iteri (fun i c -> into.counts.(i) <- into.counts.(i) + c) src.counts;
  into.count <- into.count + src.count;
  into.sum <- into.sum +. src.sum;
  if src.min_v < into.min_v then into.min_v <- src.min_v;
  if src.max_v > into.max_v then into.max_v <- src.max_v

type summary = {
  base : float;
  lowest : float;
  s_count : int;
  s_sum : float;
  s_min : float;
  s_max : float;
  s_buckets : (float * int) list;
}

let summarize (t : t) =
  {
    base = t.base;
    lowest = t.lowest;
    s_count = t.count;
    s_sum = t.sum;
    s_min = t.min_v;
    s_max = t.max_v;
    s_buckets = buckets t;
  }

let summary_quantile s q =
  (* Rebuild the array views the shared walk expects; the final (infinite)
     bound carries the overflow count. *)
  let counts = Array.of_list (List.map snd s.s_buckets) in
  let finite = List.filter (fun (b, _) -> b <> infinity) s.s_buckets in
  let bounds = Array.of_list (List.map fst finite) in
  let i = rank_bucket ~counts ~total:s.s_count q in
  if q = 0.0 then s.s_min
  else if q = 1.0 then s.s_max
  else estimate ~bounds ~min_v:s.s_min ~max_v:s.s_max i

let summary_rel_error s = rel_error_of_base s.base
