(** Causal recovery-episode analyzer.

    Owns the recovery-episode record and the live milestone tracker
    (formerly [Timeline.recorder] — {!Timeline} is now a projection of
    these episodes), plus a post-mortem stitcher that rebuilds
    failure-rooted causal chains from decoded {!Flight} records. *)

type episode = {
  member : int;
  failure_at : float;
  detected_at : float option;
  signalled_at : float option;
  installed_at : float option;
  first_data_at : float option;
  attempts : int;
}

(** The paper's recovery window (§3.2): detect → notify → repair →
    stabilize, mapped onto the failure→detected, detected→signalled,
    signalled→installed and installed→first-data intervals. *)
type phase = Detect | Notify | Repair | Stabilize

val phases : phase list
val phase_name : phase -> string

val phase_durations : episode -> (phase * float option) list
val total : episode -> float option

(** {1 Live tracker} *)

type tracker

val create : unit -> tracker
val note_failure : tracker -> ts:float -> unit
val note_detected : tracker -> member:int -> ts:float -> unit
val note_signalled : tracker -> member:int -> ts:float -> unit
val note_installed : tracker -> member:int -> ts:float -> unit
val note_first_data : tracker -> member:int -> ts:float -> unit
val episode : tracker -> int -> episode option
val episodes : tracker -> episode list

val disrupted : tracker -> int -> bool
(** An episode is open for this member (detected, no first data yet). *)

val detected_at : tracker -> int -> float option
val restored_at : tracker -> int -> float option

(** {1 Oracle and exec-event tables} *)

val oracle_id : string -> int
(** Stable small-int id for a `lib/check` oracle name; 0 = unknown. *)

val oracle_name : int -> string

val kind_join : int
val kind_leave : int
val kind_fail : int
val kind_reshape : int

val pack_exec_event : kind:int -> operand:int -> int
val exec_event_kind : int -> int
val exec_event_operand : int -> int
val phase_of_kind : int -> phase

(** {1 Post-mortem stitching} *)

type violation = {
  v_oracle : string;
  v_phase : phase;
  v_index : int;  (** schedule event index the oracle fired on *)
  v_member : int;  (** node operand of the violating event, -1 if none *)
}

type analysis = {
  a_episodes : episode list;
  a_violations : violation list;
  a_counts : (int * int) list;  (** event code → record count, code-sorted *)
  a_messages : int;  (** net.send records *)
  a_drops : int;  (** net.drop_* records *)
  a_dropped : int;  (** records lost to ring wrap-around *)
  a_span : (int * int) option;  (** min/max tick seen *)
}

val of_records : ?dropped:int -> Flight.decoded list -> analysis
(** Stitch a decoded record stream into failure-rooted episodes. Supports
    multiple failure roots: a member restored under one root can open a
    fresh episode under the next. Exec-level records (event-index ticks)
    root episodes and attribute violations to phases. *)

val render : analysis -> string
(** Human-readable summary: record counts, per-episode critical-path
    breakdown, and each violation with the recovery phase it hit. *)

val openmetrics_of_episodes : episode list -> string
val to_openmetrics : analysis -> string
(** OpenMetrics-style text exposition (ends with [# EOF]). *)

val observe_into : Metrics.t -> analysis -> unit
(** Feed per-phase and total recovery durations into [causal.*.q]
    sketches on [m]. *)
