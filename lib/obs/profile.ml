(* Performance-observability recorder: named phases with wall-clock and
   GC-counter deltas, plus per-domain pool-worker utilisation.

   Phases are recorded by the orchestrating domain around coarse stages of
   a run (build, sweep, render); workers are recorded by [Pool.map] (one
   record per worker domain per fan-out).  Both append to mutex-guarded
   lists, so a recorder can be shared freely; the per-task hot path touches
   only the worker's own handle (no lock, no contention).

   OCaml 5 GC counters ([Gc.quick_stat]) are views from the calling domain;
   a phase that fans work out to other domains reports the orchestrator's
   own allocation, not the workers' — the per-worker [minor_words] delta
   covers those. *)

type gc_delta = {
  minor_words : float;
  major_words : float;
  promoted_words : float;
  minor_collections : int;
  major_collections : int;
  compactions : int;
}

type phase = { name : string; wall_s : float; gc : gc_delta }

type worker = {
  domain : int;
  tasks : int;
  busy_s : float;
  wall_s : float; (* worker lifetime: spawn-to-exit inside the fan-out *)
  minor_words : float;
}

type t = {
  lock : Mutex.t;
  mutable phases : phase list; (* newest first *)
  mutable workers : worker list; (* newest first *)
}

let create () = { lock = Mutex.create (); phases = []; workers = [] }

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let gc_delta (a : Gc.stat) (b : Gc.stat) =
  {
    minor_words = b.Gc.minor_words -. a.Gc.minor_words;
    major_words = b.Gc.major_words -. a.Gc.major_words;
    promoted_words = b.Gc.promoted_words -. a.Gc.promoted_words;
    minor_collections = b.Gc.minor_collections - a.Gc.minor_collections;
    major_collections = b.Gc.major_collections - a.Gc.major_collections;
    compactions = b.Gc.compactions - a.Gc.compactions;
  }

let phase t name f =
  let t0 = Unix.gettimeofday () in
  let g0 = Gc.quick_stat () in
  let record () =
    let wall_s = Unix.gettimeofday () -. t0 in
    let gc = gc_delta g0 (Gc.quick_stat ()) in
    with_lock t (fun () -> t.phases <- { name; wall_s; gc } :: t.phases)
  in
  Fun.protect ~finally:record f

(* -- Pool workers ------------------------------------------------------- *)

type worker_handle = {
  prof : t;
  domain : int;
  mutable tasks : int;
  mutable busy : float;
  started : float;
  minor0 : float;
}

let worker_start prof =
  {
    prof;
    domain = (Domain.self () :> int);
    tasks = 0;
    busy = 0.0;
    started = Unix.gettimeofday ();
    minor0 = (Gc.quick_stat ()).Gc.minor_words;
  }

let worker_task h f =
  let t0 = Unix.gettimeofday () in
  let record () =
    h.busy <- h.busy +. (Unix.gettimeofday () -. t0);
    h.tasks <- h.tasks + 1
  in
  Fun.protect ~finally:record f

let worker_stop h =
  let w =
    {
      domain = h.domain;
      tasks = h.tasks;
      busy_s = h.busy;
      wall_s = Unix.gettimeofday () -. h.started;
      minor_words = (Gc.quick_stat ()).Gc.minor_words -. h.minor0;
    }
  in
  with_lock h.prof (fun () -> h.prof.workers <- w :: h.prof.workers)

let phases t = with_lock t (fun () -> List.rev t.phases)

let workers t =
  with_lock t (fun () ->
      List.sort (fun (a : worker) (b : worker) -> compare (a.domain, a.wall_s) (b.domain, b.wall_s)) t.workers)

let mwords w = w /. 1e6

let render t =
  let buf = Buffer.create 512 in
  let phases = phases t and workers = workers t in
  if phases <> [] then begin
    Buffer.add_string buf
      (Printf.sprintf "%-24s %9s %10s %10s %10s %6s %6s\n" "phase" "wall(s)" "minor(Mw)"
         "major(Mw)" "promo(Mw)" "min-gc" "maj-gc");
    List.iter
      (fun p ->
        Buffer.add_string buf
          (Printf.sprintf "%-24s %9.3f %10.2f %10.2f %10.2f %6d %6d\n" p.name p.wall_s
             (mwords p.gc.minor_words) (mwords p.gc.major_words) (mwords p.gc.promoted_words)
             p.gc.minor_collections p.gc.major_collections))
      phases
  end;
  if workers <> [] then begin
    if phases <> [] then Buffer.add_char buf '\n';
    Buffer.add_string buf
      (Printf.sprintf "%-8s %7s %9s %9s %6s %10s\n" "domain" "tasks" "busy(s)" "idle(s)" "util%"
         "minor(Mw)");
    let total_tasks = ref 0 and total_busy = ref 0.0 in
    List.iter
      (fun (w : worker) ->
        total_tasks := !total_tasks + w.tasks;
        total_busy := !total_busy +. w.busy_s;
        let idle = Float.max 0.0 (w.wall_s -. w.busy_s) in
        let util = if w.wall_s > 0.0 then 100.0 *. w.busy_s /. w.wall_s else 0.0 in
        Buffer.add_string buf
          (Printf.sprintf "%-8d %7d %9.3f %9.3f %6.1f %10.2f\n" w.domain w.tasks w.busy_s idle util
             (mwords w.minor_words)))
      workers;
    Buffer.add_string buf
      (Printf.sprintf "%-8s %7d %9.3f   (%d worker record(s))\n" "total" !total_tasks !total_busy
         (List.length workers))
  end;
  Buffer.contents buf
