(* Structured run reports.  See the interface for the model; this file is
   the projection from merged Metrics snapshots plus three encoders (JSON,
   ASCII tables, HTML dashboard).  Everything is deterministic: association
   lists keep Metrics.snapshot's sorted-name order, JSON member order is
   fixed, and the renderers iterate those lists in order — equal reports
   produce byte-identical output. *)

module J = Bench_support.Bench_json

type dist = {
  d_count : int;
  d_sum : float;
  d_min : float;
  d_max : float;
  d_p50 : float;
  d_p90 : float;
  d_p99 : float;
  d_p999 : float;
  d_rel_err : float;
}

type variant = {
  v_name : string;
  v_attrs : (string * string) list;
  v_counts : (string * int) list;
  v_values : (string * float) list;
  v_dists : (string * dist) list;
  v_series : (string * Series.view) list;
}

type t = { r_title : string; r_meta : (string * string) list; r_variants : variant list }

let dist_of_summary (s : Sketch.summary) =
  {
    d_count = s.Sketch.s_count;
    d_sum = s.Sketch.s_sum;
    d_min = s.Sketch.s_min;
    d_max = s.Sketch.s_max;
    d_p50 = Sketch.summary_quantile s 0.50;
    d_p90 = Sketch.summary_quantile s 0.90;
    d_p99 = Sketch.summary_quantile s 0.99;
    d_p999 = Sketch.summary_quantile s 0.999;
    d_rel_err = Sketch.summary_rel_error s;
  }

let of_metrics ~name ?(attrs = []) m =
  let counts = ref [] and values = ref [] and dists = ref [] and series = ref [] in
  List.iter
    (fun (mname, v) ->
      match v with
      | Metrics.Counter_value n -> counts := (mname, n) :: !counts
      | Metrics.Gauge_value { last; max } ->
          if Float.is_finite last then values := (mname, last) :: !values;
          if Float.is_finite max && max <> last then
            values := (mname ^ ".max", max) :: !values
      | Metrics.Histogram_value { count; sum; _ } ->
          counts := (mname ^ ".count", count) :: !counts;
          if Float.is_finite sum then values := (mname ^ ".sum", sum) :: !values
      | Metrics.Sketch_value s ->
          if s.Sketch.s_count > 0 then dists := (mname, dist_of_summary s) :: !dists
      | Metrics.Series_value view -> series := (mname, view) :: !series)
    (Metrics.snapshot m);
  (* Snapshot order is sorted by name; suffixed entries (name.max, .count,
     .sum) can land out of order, so re-sort each projection. *)
  let by_name l = List.sort (fun (a, _) (b, _) -> String.compare a b) (List.rev l) in
  {
    v_name = name;
    v_attrs = attrs;
    v_counts = by_name !counts;
    v_values = by_name !values;
    v_dists = by_name !dists;
    v_series = by_name !series;
  }

let make ~title ?(meta = []) variants = { r_title = title; r_meta = meta; r_variants = variants }

(* -- Collectors --------------------------------------------------------- *)

type collector = {
  c_lock : Mutex.t;
  mutable c_variants : (string * Metrics.t) list; (* reverse registration order *)
}

let collector () = { c_lock = Mutex.create (); c_variants = [] }

let variant_metrics c name =
  Mutex.lock c.c_lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock c.c_lock)
    (fun () ->
      match List.assoc_opt name c.c_variants with
      | Some m -> m
      | None ->
          let m = Metrics.create () in
          c.c_variants <- (name, m) :: c.c_variants;
          m)

let collected c =
  Mutex.lock c.c_lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock c.c_lock)
    (fun () -> List.rev c.c_variants)

let of_collector ~title ?meta c =
  make ~title ?meta (List.map (fun (name, m) -> of_metrics ~name m) (collected c))

(* -- JSON --------------------------------------------------------------- *)

let schema_version = 1.0

let str_obj l = J.Obj (List.map (fun (k, v) -> (k, J.Str v)) l)

let json_of_dist d =
  J.Obj
    [
      ("count", J.Num (float_of_int d.d_count));
      ("sum", J.Num d.d_sum);
      ("min", J.Num d.d_min);
      ("max", J.Num d.d_max);
      ("p50", J.Num d.d_p50);
      ("p90", J.Num d.d_p90);
      ("p99", J.Num d.d_p99);
      ("p999", J.Num d.d_p999);
      ("rel_err", J.Num d.d_rel_err);
    ]

let json_of_series (v : Series.view) =
  J.Obj
    [
      ("kind", J.Str (match v.Series.v_kind with Series.Sum -> "sum" | Series.Last -> "last"));
      ("interval", J.Num v.Series.v_interval);
      ("points", J.List (List.map (fun (t, x) -> J.List [ J.Num t; J.Num x ]) v.Series.v_points));
      ("dropped", J.Num (float_of_int v.Series.v_dropped));
    ]

let json_of_variant v =
  J.Obj
    [
      ("name", J.Str v.v_name);
      ("attrs", str_obj v.v_attrs);
      ("counts", J.Obj (List.map (fun (k, n) -> (k, J.Num (float_of_int n))) v.v_counts));
      ("values", J.Obj (List.map (fun (k, x) -> (k, J.Num x)) v.v_values));
      ("dists", J.Obj (List.map (fun (k, d) -> (k, json_of_dist d)) v.v_dists));
      ("series", J.Obj (List.map (fun (k, s) -> (k, json_of_series s)) v.v_series));
    ]

let to_json r =
  J.Obj
    [
      ("schema_version", J.Num schema_version);
      ("title", J.Str r.r_title);
      ("meta", str_obj r.r_meta);
      ("variants", J.List (List.map json_of_variant r.r_variants));
    ]

let fail fmt = Printf.ksprintf invalid_arg fmt

let get name j =
  match J.member name j with
  | Some v -> v
  | None -> fail "Report.of_json: missing member %S" name

let num name j =
  match J.to_num (get name j) with
  | Some f -> f
  | None -> fail "Report.of_json: member %S is not a number" name

let int_mem name j =
  let f = num name j in
  if Float.is_integer f then int_of_float f
  else fail "Report.of_json: member %S is not an integer" name

let str name j =
  match J.to_str (get name j) with
  | Some s -> s
  | None -> fail "Report.of_json: member %S is not a string" name

let str_assoc name j =
  List.map
    (fun (k, v) ->
      match J.to_str v with
      | Some s -> (k, s)
      | None -> fail "Report.of_json: %S entry %S is not a string" name k)
    (J.obj_members (get name j))

let dist_of_json j =
  {
    d_count = int_mem "count" j;
    d_sum = num "sum" j;
    d_min = num "min" j;
    d_max = num "max" j;
    d_p50 = num "p50" j;
    d_p90 = num "p90" j;
    d_p99 = num "p99" j;
    d_p999 = num "p999" j;
    d_rel_err = num "rel_err" j;
  }

let series_of_json j =
  let kind =
    match str "kind" j with
    | "sum" -> Series.Sum
    | "last" -> Series.Last
    | k -> fail "Report.of_json: unknown series kind %S" k
  in
  let points =
    match get "points" j with
    | J.List l ->
        List.map
          (function
            | J.List [ J.Num t; J.Num v ] -> (t, v)
            | _ -> fail "Report.of_json: series point is not a [t, v] pair")
          l
    | _ -> fail "Report.of_json: member \"points\" is not a list"
  in
  (* [dropped] is absent from pre-v4 reports; default 0. *)
  let dropped = match J.member "dropped" j with Some _ -> int_mem "dropped" j | None -> 0 in
  { Series.v_kind = kind; v_interval = num "interval" j; v_points = points; v_dropped = dropped }

let variant_of_json j =
  {
    v_name = str "name" j;
    v_attrs = str_assoc "attrs" j;
    v_counts =
      List.map
        (fun (k, v) ->
          match J.to_num v with
          | Some f when Float.is_integer f -> (k, int_of_float f)
          | _ -> fail "Report.of_json: count %S is not an integer" k)
        (J.obj_members (get "counts" j));
    v_values =
      List.map
        (fun (k, v) ->
          match J.to_num v with
          | Some f -> (k, f)
          | None -> fail "Report.of_json: value %S is not a number" k)
        (J.obj_members (get "values" j));
    v_dists = List.map (fun (k, v) -> (k, dist_of_json v)) (J.obj_members (get "dists" j));
    v_series = List.map (fun (k, v) -> (k, series_of_json v)) (J.obj_members (get "series" j));
  }

let of_json j =
  let v = num "schema_version" j in
  if v <> schema_version then fail "Report.of_json: unsupported schema_version %g" v;
  let variants =
    match get "variants" j with
    | J.List l -> List.map variant_of_json l
    | _ -> fail "Report.of_json: member \"variants\" is not a list"
  in
  { r_title = str "title" j; r_meta = str_assoc "meta" j; r_variants = variants }

let to_string ?minify r = J.to_string ?minify (to_json r)

let of_string s = of_json (J.parse s)

(* -- Shared renderer helpers -------------------------------------------- *)

let fg = Printf.sprintf "%g"

(* Row names appearing in any variant, first-seen order (the lists are
   already name-sorted per variant, so this is sorted too). *)
let row_names project variants =
  List.fold_left
    (fun acc v ->
      List.fold_left
        (fun acc (name, _) -> if List.mem name acc then acc else acc @ [ name ])
        acc (project v))
    [] variants
  |> List.sort String.compare

let mean d = if d.d_count = 0 then 0.0 else d.d_sum /. float_of_int d.d_count

(* -- ASCII renderer ------------------------------------------------------ *)

let spark_levels = " .:-=+*#%@"

(* Downsample a series to at most [width] cells over its bucket span and
   map values onto the ten ASCII levels.  [lo]/[hi] give the shared scale
   (so variants of the same series are comparable). *)
let ascii_spark ?(width = 40) ~lo ~hi (v : Series.view) =
  match v.Series.v_points with
  | [] -> ""
  | pts ->
      let t0 = fst (List.hd pts) in
      let t1 = fst (List.nth pts (List.length pts - 1)) in
      let span_buckets = int_of_float ((t1 -. t0) /. v.Series.v_interval) + 1 in
      let cells = min width span_buckets in
      let acc = Array.make cells nan in
      List.iter
        (fun (t, x) ->
          let frac = if t1 = t0 then 0.0 else (t -. t0) /. (t1 -. t0) in
          let c = min (cells - 1) (int_of_float (frac *. float_of_int cells)) in
          (* Sum cells add their points; Last cells keep the latest. *)
          match v.Series.v_kind with
          | Series.Sum -> acc.(c) <- (if Float.is_nan acc.(c) then x else acc.(c) +. x)
          | Series.Last -> acc.(c) <- x)
        pts;
      let range = hi -. lo in
      String.init cells (fun i ->
          if Float.is_nan acc.(i) then ' '
          else
            let frac = if range <= 0.0 then 1.0 else (acc.(i) -. lo) /. range in
            let l = int_of_float (frac *. 9.0) in
            spark_levels.[max 0 (min 9 l)])

let series_scale variants name =
  (* Shared [lo, hi] across every variant's instance of series [name]. *)
  let lo = ref infinity and hi = ref neg_infinity in
  List.iter
    (fun v ->
      match List.assoc_opt name v.v_series with
      | None -> ()
      | Some view ->
          List.iter
            (fun (_, x) ->
              if x < !lo then lo := x;
              if x > !hi then hi := x)
            view.Series.v_points)
    variants;
  let lo = if !lo = infinity then 0.0 else Float.min 0.0 !lo in
  let hi = if !hi = neg_infinity then 1.0 else !hi in
  (lo, hi)

let render_ascii r =
  let buf = Buffer.create 1024 in
  let pr fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  pr "run report: %s\n" r.r_title;
  if r.r_meta <> [] then
    pr "  %s\n" (String.concat "  " (List.map (fun (k, v) -> k ^ "=" ^ v) r.r_meta));
  let variants = r.r_variants in
  let vname_w =
    List.fold_left (fun w v -> max w (String.length v.v_name)) (String.length "variant") variants
  in
  (* Scalar tables: one row per metric name, one column per variant. *)
  let table title project render_cell =
    let names = row_names project variants in
    if names <> [] then begin
      pr "\n%s\n" title;
      let name_w = List.fold_left (fun w n -> max w (String.length n)) 0 names in
      let cell_w = max 10 (vname_w + 1) in
      pr "  %-*s" name_w "";
      List.iter (fun v -> pr " %*s" cell_w v.v_name) variants;
      pr "\n";
      List.iter
        (fun n ->
          pr "  %-*s" name_w n;
          List.iter
            (fun v ->
              let cell =
                match List.assoc_opt n (project v) with
                | Some x -> render_cell x
                | None -> "-"
              in
              pr " %*s" cell_w cell)
            variants;
          pr "\n")
        names
    end
  in
  table "counters" (fun v -> v.v_counts) string_of_int;
  table "values" (fun v -> v.v_values) fg;
  (* Distributions: a block per metric, a row per variant. *)
  let dist_names = row_names (fun v -> v.v_dists) variants in
  if dist_names <> [] then begin
    pr "\ndistributions%*s %8s %9s %9s %9s %9s %9s %9s\n"
      (max 0 (vname_w - 9)) "" "n" "mean" "p50" "p90" "p99" "p999" "max";
    List.iter
      (fun n ->
        let err =
          match
            List.find_map (fun v -> List.assoc_opt n v.v_dists) variants
          with
          | Some d -> Printf.sprintf " (est ±%.1f%%)" (100.0 *. d.d_rel_err)
          | None -> ""
        in
        pr "  %s%s\n" n err;
        List.iter
          (fun v ->
            match List.assoc_opt n v.v_dists with
            | None -> ()
            | Some d ->
                pr "    %-*s %8d %9s %9s %9s %9s %9s %9s\n" vname_w v.v_name d.d_count
                  (fg (mean d)) (fg d.d_p50) (fg d.d_p90) (fg d.d_p99) (fg d.d_p999)
                  (fg d.d_max))
          variants)
      dist_names
  end;
  (* Series: a block per metric, a sparkline per variant on a shared scale. *)
  let series_names = row_names (fun v -> v.v_series) variants in
  if series_names <> [] then begin
    pr "\nseries\n";
    List.iter
      (fun n ->
        let lo, hi = series_scale variants n in
        pr "  %s  [scale %s..%s]\n" n (fg lo) (fg hi);
        List.iter
          (fun v ->
            match List.assoc_opt n v.v_series with
            | None -> ()
            | Some view ->
                let pts = view.Series.v_points in
                let dropped =
                  if view.Series.v_dropped > 0 then
                    Printf.sprintf " (%d dropped)" view.Series.v_dropped
                  else ""
                in
                pr "    %-*s |%s| %d pts%s\n" vname_w v.v_name
                  (ascii_spark ~lo ~hi view) (List.length pts) dropped)
          variants)
      series_names
  end;
  Buffer.contents buf

(* -- HTML renderer ------------------------------------------------------- *)

let html_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (function
      | '&' -> Buffer.add_string buf "&amp;"
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | '"' -> Buffer.add_string buf "&quot;"
      | c -> Buffer.add_char buf c)
    s;
  buf

let esc s = Buffer.contents (html_escape s)

(* Categorical slots (reference palette, fixed order, never cycled);
   variants beyond the eighth wear the muted ink. *)
let palette_light =
  [| "#2a78d6"; "#eb6834"; "#1baf7a"; "#eda100"; "#e87ba4"; "#008300"; "#4a3aa7"; "#e34948" |]

let palette_dark =
  [| "#3987e5"; "#d95926"; "#199e70"; "#c98500"; "#d55181"; "#008300"; "#9085e9"; "#e66767" |]

let style_block nvariants =
  let buf = Buffer.create 2048 in
  let pr fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let slots = min nvariants (Array.length palette_light) in
  pr "<style>\n";
  pr ":root { color-scheme: light dark; }\n";
  pr "body { margin: 0; background: #f9f9f7; }\n";
  pr ".viz-root {\n  color-scheme: light;\n";
  pr "  --surface-1: #fcfcfb;\n  --text-primary: #0b0b0b;\n";
  pr "  --text-secondary: #52514e;\n  --text-muted: #898781;\n";
  pr "  --grid: #e1e0d9;\n  --baseline: #c3c2b7;\n";
  pr "  --border: rgba(11,11,11,0.10);\n";
  for i = 0 to slots - 1 do
    pr "  --series-%d: %s;\n" (i + 1) palette_light.(i)
  done;
  pr "}\n";
  pr "@media (prefers-color-scheme: dark) {\n";
  pr "  body { background: #0d0d0d; }\n";
  pr "  .viz-root {\n    color-scheme: dark;\n";
  pr "    --surface-1: #1a1a19;\n    --text-primary: #ffffff;\n";
  pr "    --text-secondary: #c3c2b7;\n    --text-muted: #898781;\n";
  pr "    --grid: #2c2c2a;\n    --baseline: #383835;\n";
  pr "    --border: rgba(255,255,255,0.10);\n";
  for i = 0 to slots - 1 do
    pr "    --series-%d: %s;\n" (i + 1) palette_dark.(i)
  done;
  pr "  }\n}\n";
  pr
    ".viz-root { font-family: system-ui, -apple-system, \"Segoe UI\", sans-serif;\n\
    \  color: var(--text-primary); background: var(--surface-1);\n\
    \  max-width: 72rem; margin: 1.5rem auto; padding: 1.5rem 2rem;\n\
    \  border: 1px solid var(--border); border-radius: 8px; }\n";
  pr "h1 { font-size: 1.3rem; margin: 0 0 0.25rem; }\n";
  pr "h2 { font-size: 1.05rem; margin: 1.75rem 0 0.5rem; }\n";
  pr "h3 { font-size: 0.9rem; font-weight: 600; margin: 1rem 0 0.25rem; }\n";
  pr ".meta, .err, .sub { color: var(--text-secondary); font-size: 0.8rem; }\n";
  pr ".legend { display: flex; flex-wrap: wrap; gap: 0.25rem 1rem; margin: 0.75rem 0; }\n";
  pr ".legend span { font-size: 0.85rem; color: var(--text-secondary); }\n";
  pr
    ".swatch { display: inline-block; width: 10px; height: 10px; border-radius: 2px;\n\
    \  margin-right: 0.4rem; vertical-align: baseline; }\n";
  pr "table { border-collapse: collapse; font-size: 0.85rem; }\n";
  pr
    "th, td { text-align: right; padding: 0.25rem 0.75rem; border-bottom: 1px solid var(--grid);\n\
    \  font-variant-numeric: tabular-nums; color: var(--text-primary); }\n";
  pr "th { color: var(--text-muted); font-weight: 500; }\n";
  pr "th:first-child, td:first-child { text-align: left; }\n";
  pr ".cards { display: flex; flex-wrap: wrap; gap: 1rem; }\n";
  pr
    ".card { border: 1px solid var(--grid); border-radius: 6px; padding: 0.5rem 0.75rem;\n\
    \  min-width: 17rem; }\n";
  pr ".card .name { font-size: 0.8rem; color: var(--text-secondary); }\n";
  pr ".spark polyline { fill: none; stroke-width: 2; }\n";
  pr ".spark .baseline { stroke: var(--baseline); stroke-width: 1; }\n";
  pr ".spark .hit { fill: transparent; }\n";
  pr "details { margin-top: 0.4rem; font-size: 0.8rem; color: var(--text-secondary); }\n";
  pr "summary { cursor: pointer; }\n";
  pr "footer { margin-top: 2rem; font-size: 0.75rem; color: var(--text-muted); }\n";
  pr "</style>\n";
  Buffer.contents buf

let variant_color i =
  if i < Array.length palette_light then Printf.sprintf "var(--series-%d)" (i + 1)
  else "var(--text-muted)"

(* One sparkline card: an inline SVG polyline on the shared [lo, hi] scale,
   per-point hover targets with native tooltips, and a data table behind a
   disclosure. *)
let html_spark buf ~color ~lo ~hi (view : Series.view) =
  let pr fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let w = 260.0 and h = 56.0 and pad = 4.0 in
  match view.Series.v_points with
  | [] -> pr "<p class=\"sub\">no samples</p>\n"
  | pts ->
      let t0 = fst (List.hd pts) in
      let t1 = fst (List.nth pts (List.length pts - 1)) in
      let x t = if t1 = t0 then w /. 2.0 else pad +. ((t -. t0) /. (t1 -. t0) *. (w -. (2.0 *. pad))) in
      let y v =
        let range = hi -. lo in
        let frac = if range <= 0.0 then 0.5 else (v -. lo) /. range in
        h -. pad -. (frac *. (h -. (2.0 *. pad)))
      in
      pr "<svg class=\"spark\" viewBox=\"0 0 %g %g\" width=\"%g\" height=\"%g\" role=\"img\">\n" w h w h;
      pr "<line class=\"baseline\" x1=\"%g\" y1=\"%g\" x2=\"%g\" y2=\"%g\"/>\n" pad (y lo)
        (w -. pad) (y lo);
      pr "<polyline stroke=\"%s\" points=\"" color;
      List.iter (fun (t, v) -> pr "%.1f,%.1f " (x t) (y v)) pts;
      pr "\"/>\n";
      List.iter
        (fun (t, v) ->
          pr "<circle class=\"hit\" cx=\"%.1f\" cy=\"%.1f\" r=\"6\"><title>t=%s: %s</title></circle>\n"
            (x t) (y v) (fg t) (fg v))
        pts;
      pr "</svg>\n";
      let dropped =
        if view.Series.v_dropped > 0 then Printf.sprintf ", %d dropped" view.Series.v_dropped
        else ""
      in
      pr "<div class=\"sub\">%d pts, t %s..%s%s</div>\n" (List.length pts) (fg t0) (fg t1) dropped;
      pr "<details><summary>data</summary><table><tr><th>t</th><th>value</th></tr>\n";
      List.iter (fun (t, v) -> pr "<tr><td>%s</td><td>%s</td></tr>\n" (fg t) (fg v)) pts;
      pr "</table></details>\n"

let render_html r =
  let buf = Buffer.create 8192 in
  let pr fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let variants = r.r_variants in
  let slot = List.mapi (fun i v -> (v.v_name, i)) variants in
  let color_of name = variant_color (List.assoc name slot) in
  pr "<!DOCTYPE html>\n<html lang=\"en\">\n<head>\n<meta charset=\"utf-8\"/>\n";
  pr "<meta name=\"viewport\" content=\"width=device-width, initial-scale=1\"/>\n";
  pr "<title>%s</title>\n" (esc r.r_title);
  Buffer.add_string buf (style_block (List.length variants));
  pr "</head>\n<body>\n<div class=\"viz-root\">\n";
  pr "<header><h1>%s</h1>\n" (esc r.r_title);
  if r.r_meta <> [] then
    pr "<p class=\"meta\">%s</p>\n"
      (String.concat " &middot; "
         (List.map (fun (k, v) -> esc k ^ "=" ^ esc v) r.r_meta));
  pr "</header>\n";
  if variants <> [] then begin
    pr "<div class=\"legend\">\n";
    List.iter
      (fun v ->
        let attrs =
          if v.v_attrs = [] then ""
          else
            " ("
            ^ String.concat ", " (List.map (fun (k, x) -> esc k ^ "=" ^ esc x) v.v_attrs)
            ^ ")"
        in
        pr "<span><i class=\"swatch\" style=\"background:%s\"></i>%s%s</span>\n"
          (color_of v.v_name) (esc v.v_name) attrs)
      variants;
    pr "</div>\n"
  end;
  (* Distributions: a comparison table per metric. *)
  let dist_names = row_names (fun v -> v.v_dists) variants in
  if dist_names <> [] then begin
    pr "<section>\n<h2>Distributions</h2>\n";
    List.iter
      (fun n ->
        let err =
          match List.find_map (fun v -> List.assoc_opt n v.v_dists) variants with
          | Some d -> Printf.sprintf " <span class=\"err\">estimates &plusmn;%.1f%%</span>" (100.0 *. d.d_rel_err)
          | None -> ""
        in
        pr "<h3>%s%s</h3>\n<table>\n" (esc n) err;
        pr
          "<tr><th>variant</th><th>n</th><th>mean</th><th>p50</th><th>p90</th><th>p99</th><th>p999</th><th>max</th></tr>\n";
        List.iter
          (fun v ->
            match List.assoc_opt n v.v_dists with
            | None -> ()
            | Some d ->
                pr
                  "<tr><td><i class=\"swatch\" style=\"background:%s\"></i>%s</td><td>%d</td><td>%s</td><td>%s</td><td>%s</td><td>%s</td><td>%s</td><td>%s</td></tr>\n"
                  (color_of v.v_name) (esc v.v_name) d.d_count (fg (mean d)) (fg d.d_p50)
                  (fg d.d_p90) (fg d.d_p99) (fg d.d_p999) (fg d.d_max))
          variants;
        pr "</table>\n")
      dist_names;
    pr "</section>\n"
  end;
  (* Series: small multiples, one card per variant, shared y scale. *)
  let series_names = row_names (fun v -> v.v_series) variants in
  if series_names <> [] then begin
    pr "<section>\n<h2>Sim-time series</h2>\n";
    List.iter
      (fun n ->
        let lo, hi = series_scale variants n in
        pr "<h3>%s <span class=\"err\">scale %s..%s</span></h3>\n<div class=\"cards\">\n" (esc n)
          (fg lo) (fg hi);
        List.iter
          (fun v ->
            match List.assoc_opt n v.v_series with
            | None -> ()
            | Some view ->
                pr "<div class=\"card\">\n<div class=\"name\"><i class=\"swatch\" style=\"background:%s\"></i>%s</div>\n"
                  (color_of v.v_name) (esc v.v_name);
                html_spark buf ~color:(color_of v.v_name) ~lo ~hi view;
                pr "</div>\n")
          variants;
        pr "</div>\n")
      series_names;
    pr "</section>\n"
  end;
  (* Scalar tables. *)
  let scalar_table title project render_cell =
    let names = row_names project variants in
    if names <> [] then begin
      pr "<section>\n<h2>%s</h2>\n<table>\n<tr><th></th>" title;
      List.iter (fun v -> pr "<th>%s</th>" (esc v.v_name)) variants;
      pr "</tr>\n";
      List.iter
        (fun n ->
          pr "<tr><td>%s</td>" (esc n);
          List.iter
            (fun v ->
              match List.assoc_opt n (project v) with
              | Some x -> pr "<td>%s</td>" (render_cell x)
              | None -> pr "<td>-</td>")
            variants;
          pr "</tr>\n")
        names;
      pr "</table>\n</section>\n"
    end
  in
  scalar_table "Counters" (fun v -> v.v_counts) string_of_int;
  scalar_table "Values" (fun v -> v.v_values) fg;
  pr "<footer>report schema v%g</footer>\n" schema_version;
  pr "</div>\n</body>\n</html>\n";
  Buffer.contents buf
