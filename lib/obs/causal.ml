(* Causal recovery-episode analyzer.

   Two halves:

   - [tracker]: live milestone bookkeeping for one protocol run (failure →
     detected → signalled → installed → first data), moved here from
     Timeline so the timeline module is a pure projection of these
     episodes. Guards are load-bearing: first detection wins, milestones
     only move on an open episode, a re-install only counts after a newer
     signalling attempt.

   - [of_records]: post-mortem stitching of decoded {!Flight} records into
     failure-rooted causal chains. Unlike the live tracker it supports
     multiple failure roots (a member restored under root N can open a new
     episode under root N+1) and folds `lib/check` violation records into
     the episode stream, attributing each to a recovery phase. *)

type episode = {
  member : int;
  failure_at : float;
  detected_at : float option;
  signalled_at : float option;
  installed_at : float option;
  first_data_at : float option;
  attempts : int;
}

(* The paper's recovery window, §3.2: detect → notify → repair → stabilize. *)
type phase = Detect | Notify | Repair | Stabilize

let phases = [ Detect; Notify; Repair; Stabilize ]

let phase_name = function
  | Detect -> "detect"
  | Notify -> "notify"
  | Repair -> "repair"
  | Stabilize -> "stabilize"

let delta a b = match (a, b) with Some a, Some b -> Some (b -. a) | _ -> None
let ticks_per_second = Flight.ticks_per_second

let phase_durations e =
  [
    (Detect, delta (Some e.failure_at) e.detected_at);
    (Notify, delta e.detected_at e.signalled_at);
    (Repair, delta e.signalled_at e.installed_at);
    (Stabilize, delta e.installed_at e.first_data_at);
  ]

let total e = delta (Some e.failure_at) e.first_data_at

(* -- Live tracker (formerly Timeline.recorder) --------------------------- *)

type cell = {
  mutable detected : float option;
  mutable signalled : float option;
  mutable installed : float option;
  mutable first_data : float option;
  mutable attempts : int;
}

type tracker = { mutable failure_at : float option; tbl : (int, cell) Hashtbl.t }

let create () = { failure_at = None; tbl = Hashtbl.create 8 }

let note_failure r ~ts = if r.failure_at = None then r.failure_at <- Some ts

let open_cell r member =
  match Hashtbl.find_opt r.tbl member with
  | Some c when c.first_data = None -> Some c
  | _ -> None

let note_detected r ~member ~ts =
  if r.failure_at <> None && not (Hashtbl.mem r.tbl member) then
    Hashtbl.add r.tbl member
      { detected = Some ts; signalled = None; installed = None; first_data = None; attempts = 0 }

let note_signalled r ~member ~ts =
  match open_cell r member with
  | Some c ->
      c.signalled <- Some ts;
      c.attempts <- c.attempts + 1
  | None -> ()

let note_installed r ~member ~ts =
  match open_cell r member with
  | Some c -> begin
      (* Keep the first installation of the latest signalling attempt:
         periodic join refreshes re-confirm state at the merge node and
         must not push the milestone forward. *)
      match (c.installed, c.signalled) with
      | None, _ -> c.installed <- Some ts
      | Some inst, Some s when s > inst -> c.installed <- Some ts
      | _ -> ()
    end
  | None -> ()

let note_first_data r ~member ~ts =
  match open_cell r member with Some c -> c.first_data <- Some ts | None -> ()

let freeze failure_at member (c : cell) =
  {
    member;
    failure_at;
    detected_at = c.detected;
    signalled_at = c.signalled;
    installed_at = c.installed;
    first_data_at = c.first_data;
    attempts = c.attempts;
  }

let episode r member =
  match r.failure_at with
  | None -> None
  | Some failure_at -> Option.map (freeze failure_at member) (Hashtbl.find_opt r.tbl member)

let episodes r =
  match r.failure_at with
  | None -> []
  | Some failure_at ->
      Hashtbl.fold (fun member c acc -> freeze failure_at member c :: acc) r.tbl []
      |> List.sort (fun a b -> compare a.member b.member)

(* Queries used by Protocol in place of its former per-member float arrays. *)

let disrupted r member = open_cell r member <> None
let detected_at r member = Option.bind (Hashtbl.find_opt r.tbl member) (fun c -> c.detected)
let restored_at r member = Option.bind (Hashtbl.find_opt r.tbl member) (fun c -> c.first_data)

(* -- Oracle table -------------------------------------------------------- *)

(* Every oracle name `lib/check` can emit, in a stable order so violation
   records can carry a small int. Index 0 is reserved for "unknown". *)
let oracle_names =
  [|
    "unknown";
    "join";
    "join-delay-bound";
    "join-differential";
    "query-differential";
    "reshape-membership";
    "engine-differential";
    "exception";
    "structure";
    "members-connected";
    "bookkeeping";
    "avoids-failure";
    "protected-scope";
    "protected-distance";
    "protected-replay";
    "protected-differential";
    "protected-accounting";
    "recovery-distance";
    "recovery-replay";
    "recovery-accounting";
  |]

let oracle_id name =
  let n = Array.length oracle_names in
  let rec go i = if i >= n then 0 else if oracle_names.(i) = name then i else go (i + 1) in
  go 1

let oracle_name id = if id > 0 && id < Array.length oracle_names then oracle_names.(id) else "unknown"

(* -- Exec event kinds ---------------------------------------------------- *)

let kind_join = 0
let kind_leave = 1
let kind_fail = 2
let kind_reshape = 3

let pack_exec_event ~kind ~operand = (kind lsl 32) lor (operand land 0xFFFFFFFF)
let exec_event_kind a = a lsr 32
let exec_event_operand a = a land 0xFFFFFFFF

(* Which recovery phase a violating schedule event belongs to: joins and
   leaves exercise the signal/regraft machinery (Repair), failures the
   detection path (Detect), reshapes the stabilization pass (Stabilize). *)
let phase_of_kind k =
  if k = kind_fail then Detect else if k = kind_reshape then Stabilize else Repair

(* -- Post-mortem stitching ----------------------------------------------- *)

type violation = {
  v_oracle : string;
  v_phase : phase;
  v_index : int; (* schedule event index the oracle fired on *)
  v_member : int; (* node operand of the violating event, -1 if none *)
}

type analysis = {
  a_episodes : episode list;
  a_violations : violation list;
  a_counts : (int * int) list; (* event code -> record count, code-sorted *)
  a_messages : int; (* net.send records *)
  a_drops : int; (* net.drop_* records *)
  a_dropped : int; (* ring overwrites: records lost to wrap-around *)
  a_span : (int * int) option; (* min/max tick seen *)
}

let order (a : Flight.decoded) (b : Flight.decoded) =
  let c = compare a.Flight.d_tick b.Flight.d_tick in
  if c <> 0 then c
  else
    let c = compare a.Flight.d_domain b.Flight.d_domain in
    if c <> 0 then c else compare a.Flight.d_seq b.Flight.d_seq

(* Chain under construction during stitching. *)
type chain = {
  ch_member : int;
  ch_failure : float;
  mutable ch_detected : float option;
  mutable ch_signalled : float option;
  mutable ch_installed : float option;
  mutable ch_first_data : float option;
  mutable ch_attempts : int;
}

let freeze_chain ch =
  {
    member = ch.ch_member;
    failure_at = ch.ch_failure;
    detected_at = ch.ch_detected;
    signalled_at = ch.ch_signalled;
    installed_at = ch.ch_installed;
    first_data_at = ch.ch_first_data;
    attempts = ch.ch_attempts;
  }

let of_records ?(dropped = 0) records =
  let records = List.sort order records in
  let seconds tick = float_of_int tick /. ticks_per_second in
  let root = ref None in
  let open_chains : (int, chain) Hashtbl.t = Hashtbl.create 8 in
  let closed = ref [] in
  let violations = ref [] in
  let counts : (int, int) Hashtbl.t = Hashtbl.create 16 in
  let messages = ref 0 in
  let drops = ref 0 in
  let span = ref None in
  (* last exec.event seen, for violation attribution: (kind, operand) *)
  let last_exec = ref None in
  let bump code = Hashtbl.replace counts code (1 + Option.value ~default:0 (Hashtbl.find_opt counts code)) in
  List.iter
    (fun (r : Flight.decoded) ->
      let tick = r.Flight.d_tick and code = r.Flight.d_code in
      bump code;
      span :=
        Some
          (match !span with
          | None -> (tick, tick)
          | Some (lo, hi) -> (min lo tick, max hi tick));
      let ts = seconds tick in
      if code = Flight.proto_failure then root := Some ts
      else if code = Flight.proto_detected then begin
        match !root with
        | Some failure when not (Hashtbl.mem open_chains r.Flight.d_a) ->
            Hashtbl.add open_chains r.Flight.d_a
              {
                ch_member = r.Flight.d_a;
                ch_failure = failure;
                ch_detected = Some ts;
                ch_signalled = None;
                ch_installed = None;
                ch_first_data = None;
                ch_attempts = 0;
              }
        | _ -> ()
      end
      else if code = Flight.proto_signal then begin
        match Hashtbl.find_opt open_chains r.Flight.d_a with
        | Some ch ->
            ch.ch_signalled <- Some ts;
            ch.ch_attempts <- ch.ch_attempts + 1
        | None -> ()
      end
      else if code = Flight.proto_installed then begin
        match Hashtbl.find_opt open_chains r.Flight.d_a with
        | Some ch -> begin
            match (ch.ch_installed, ch.ch_signalled) with
            | None, _ -> ch.ch_installed <- Some ts
            | Some inst, Some s when s > inst -> ch.ch_installed <- Some ts
            | _ -> ()
          end
        | None -> ()
      end
      else if code = Flight.proto_first_data then begin
        match Hashtbl.find_opt open_chains r.Flight.d_a with
        | Some ch ->
            ch.ch_first_data <- Some ts;
            (* Close the episode: a later failure root may re-open this
               member with a fresh chain. *)
            Hashtbl.remove open_chains r.Flight.d_a;
            closed := freeze_chain ch :: !closed
        | None -> ()
      end
      else if code = Flight.net_send then incr messages
      else if code = Flight.net_drop_send || code = Flight.net_drop_flight
              || code = Flight.net_drop_loss then incr drops
      else if code = Flight.exec_event then begin
        let kind = exec_event_kind r.Flight.d_a in
        last_exec := Some (kind, exec_event_operand r.Flight.d_a);
        (* A schedule-level failure event roots subsequent episodes even in
           tree-level (engine-less) runs, where ticks are event indices. *)
        if kind = kind_fail then root := Some ts
      end
      else if code = Flight.exec_violation then begin
        let kind, operand = Option.value ~default:(-1, -1) !last_exec in
        let phase = if kind < 0 then Repair else phase_of_kind kind in
        let member = if kind = kind_join || kind = kind_leave then operand else -1 in
        violations :=
          { v_oracle = oracle_name r.Flight.d_a; v_phase = phase; v_index = r.Flight.d_b; v_member = member }
          :: !violations
      end)
    records;
  let episodes =
    Hashtbl.fold (fun _ ch acc -> freeze_chain ch :: acc) open_chains !closed
    |> List.sort (fun (a : episode) (b : episode) ->
           let c = compare a.failure_at b.failure_at in
           if c <> 0 then c else compare a.member b.member)
  in
  {
    a_episodes = episodes;
    a_violations = List.rev !violations;
    a_counts =
      Hashtbl.fold (fun c n acc -> (c, n) :: acc) counts []
      |> List.sort (fun (a, _) (b, _) -> compare a b);
    a_messages = !messages;
    a_drops = !drops;
    a_dropped = dropped;
    a_span = !span;
  }

(* -- Rendering ----------------------------------------------------------- *)

let pp_opt = function Some d -> Printf.sprintf "%.6fs" d | None -> "-"

let render a =
  let buf = Buffer.create 512 in
  let pr fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let n = List.fold_left (fun acc (_, c) -> acc + c) 0 a.a_counts in
  (match a.a_span with
  | Some (lo, hi) -> pr "flight: %d records (%d dropped), ticks %d..%d\n" n a.a_dropped lo hi
  | None -> pr "flight: %d records (%d dropped)\n" n a.a_dropped);
  List.iter (fun (c, k) -> pr "  %-18s %d\n" (Flight.code_name c) k) a.a_counts;
  if a.a_messages > 0 || a.a_drops > 0 then
    pr "net: %d messages sent, %d dropped\n" a.a_messages a.a_drops;
  pr "episodes: %d\n" (List.length a.a_episodes);
  List.iter
    (fun e ->
      pr "  member %d: failure at %.6fs" e.member e.failure_at;
      List.iter (fun (p, d) -> pr "  %s %s" (phase_name p) (pp_opt d)) (phase_durations e);
      pr "  total %s (attempts %d)\n" (pp_opt (total e)) e.attempts)
    a.a_episodes;
  if a.a_violations <> [] then begin
    pr "violations: %d\n" (List.length a.a_violations);
    List.iter
      (fun v ->
        pr "  event %d: oracle %s violated during %s phase%s\n" v.v_index v.v_oracle
          (phase_name v.v_phase)
          (if v.v_member >= 0 then Printf.sprintf " (member %d)" v.v_member else ""))
      a.a_violations
  end;
  Buffer.contents buf

(* -- OpenMetrics exposition ---------------------------------------------- *)

let openmetrics_of_episodes eps =
  let buf = Buffer.create 512 in
  let pr fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  pr "# TYPE smrp_recovery_episodes gauge\n";
  pr "smrp_recovery_episodes %d\n" (List.length eps);
  pr "# TYPE smrp_recovery_phase_seconds gauge\n";
  List.iter
    (fun e ->
      List.iter
        (fun (p, d) ->
          match d with
          | Some d -> pr "smrp_recovery_phase_seconds{member=\"%d\",phase=\"%s\"} %g\n" e.member (phase_name p) d
          | None -> ())
        (phase_durations e))
    eps;
  pr "# TYPE smrp_recovery_seconds gauge\n";
  List.iter
    (fun e ->
      match total e with
      | Some d -> pr "smrp_recovery_seconds{member=\"%d\",attempts=\"%d\"} %g\n" e.member e.attempts d
      | None -> ())
    eps;
  Buffer.contents buf

let to_openmetrics a =
  let buf = Buffer.create 512 in
  let pr fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let n = List.fold_left (fun acc (_, c) -> acc + c) 0 a.a_counts in
  pr "# TYPE smrp_flight_records counter\n";
  pr "smrp_flight_records_total %d\n" n;
  pr "# TYPE smrp_flight_dropped counter\n";
  pr "smrp_flight_dropped_total %d\n" a.a_dropped;
  pr "# TYPE smrp_net_messages counter\n";
  pr "smrp_net_messages_total %d\n" a.a_messages;
  pr "# TYPE smrp_net_drops counter\n";
  pr "smrp_net_drops_total %d\n" a.a_drops;
  Buffer.add_string buf (openmetrics_of_episodes a.a_episodes);
  pr "# TYPE smrp_violations counter\n";
  List.iter
    (fun v ->
      pr "smrp_violations_total{oracle=\"%s\",phase=\"%s\"} 1\n" v.v_oracle (phase_name v.v_phase))
    a.a_violations;
  pr "# EOF\n";
  Buffer.contents buf

(* -- Feeding the sketch machinery ---------------------------------------- *)

let observe_into m a =
  let q_total = Metrics.sketch m "causal.total.q" in
  let sketches =
    List.map (fun p -> (p, Metrics.sketch m ("causal.phase." ^ phase_name p ^ ".q"))) phases
  in
  List.iter
    (fun e ->
      List.iter
        (fun (p, d) ->
          match d with Some d -> Sketch.observe (List.assoc p sketches) d | None -> ())
        (phase_durations e);
      match total e with Some d -> Sketch.observe q_total d | None -> ())
    a.a_episodes
