(** Domain-sharded metrics registry: named counters, gauges, histograms,
    quantile {!Sketch}es and sim-time {!Series}
    with a deterministic merged snapshot/render order (sorted by name), so
    two identical seeded simulation runs produce byte-identical metric
    dumps — whether they ran on one domain or many.

    {b Sharding model.}  Each domain that touches a registry gets a private
    shard; an instrument handle returned by {!counter} / {!gauge} /
    {!histogram} belongs to the calling domain's shard and must only be
    mutated by that domain.  The mutation hot path is therefore a plain
    unsynchronized increment; registration and {!snapshot} take the
    registry mutex.  {!snapshot} merges all shards: counters add, gauges
    keep the value with the greatest {!Gauge.set} timestamp (ties towards
    the larger value) and the max of maxima, histograms (identical bucket
    bounds required) add bucket-wise.

    Counter and bucket totals are integers, so a parallel run merges to
    exactly the sequential snapshot; histogram [sum] is additionally exact
    when the observed values are integers (hop counts, event counts).
    Snapshots race-free: concurrent increments cannot tear a word-sized
    field, but only quiescent snapshots (taken after workers joined) are
    guaranteed exact.

    Instruments are created through a registry and cached by name {e per
    shard}: asking for the same name twice in one domain returns the same
    instrument; asking for an existing name with a different kind raises
    [Invalid_argument] (at registration within a shard, at merge across
    shards). *)

type t
(** A registry. *)

val create : unit -> t

val shard_count : t -> int
(** Number of domains that have touched this registry so far. *)

module Counter : sig
  type t

  val incr : t -> unit

  val add : t -> int -> unit
  (** [add c n] with [n >= 0]. *)

  val value : t -> int
  (** This shard's count only; use {!snapshot} for the merged total. *)
end

module Gauge : sig
  type t

  val set : t -> ?ts:float -> float -> unit
  (** Within a shard, program order wins: [set] overwrites the last value
      unconditionally.  [ts] (default [neg_infinity]) defines the
      cross-shard merge: the shard with the greatest timestamp supplies the
      merged last value, ties broken towards the larger value.  Stamp sets
      with a monotone clock (e.g. the simulation clock) to make "last"
      well-defined across domains. *)

  val value : t -> float

  val last_ts : t -> float
  (** Timestamp of the last [set] ([neg_infinity] if unstamped). *)

  val max_value : t -> float
  (** High-water mark over the gauge's lifetime ([neg_infinity] before the
      first [set]). *)
end

module Histogram : sig
  (** Fixed log-scale buckets: bucket [i] (0-based) counts observations
      [v] with [lowest *. base^(i-1) < v <= lowest *. base^i], bucket 0
      counts [v <= lowest], and a final overflow bucket counts everything
      above the largest bound.  Bucket edges are found by repeated
      multiplication, not [log], so bucketing is deterministic across
      platforms. *)

  type t

  val observe : t -> float -> unit

  val count : t -> int

  val sum : t -> float

  val buckets : t -> (float * int) list
  (** [(upper_bound, count)] per bucket, in increasing bound order; the
      overflow bucket reports [infinity] as its bound.  Counts are
      per-bucket, not cumulative. *)
end

val counter : t -> string -> Counter.t

val gauge : t -> string -> Gauge.t

val histogram : t -> ?base:float -> ?lowest:float -> ?count:int -> string -> Histogram.t
(** Defaults: [base = 10.], [lowest = 1e-3], [count = 8] bounds (plus the
    overflow bucket) — with the defaults, bounds 1e-3 .. 1e4.  [base > 1],
    [lowest > 0], [count >= 1].  Registering the same name with different
    bucket parameters in different domains is detected at merge time
    ([Invalid_argument]). *)

val sketch : t -> ?base:float -> ?lowest:float -> ?count:int -> string -> Sketch.t
(** A {!Sketch.t} instrument (dense log buckets for quantile estimates);
    defaults as {!Sketch.create}.  Sketches merge across shards by
    bucket-wise addition; layout mismatches (base/lowest/bucket count)
    raise [Invalid_argument] at merge time, like histogram bounds. *)

val series : t -> ?kind:Series.kind -> ?interval:float -> ?capacity:int -> string -> Series.t
(** A {!Series.t} instrument (fixed-interval sim-time ring); defaults as
    {!Series.create}.  Series merge across shards bucket-wise per their
    kind ([Sum] adds, [Last] follows gauge timestamp rules); layout
    mismatches (kind/interval/capacity) raise [Invalid_argument] at merge
    time. *)

type value =
  | Counter_value of int
  | Gauge_value of { last : float; max : float }
  | Histogram_value of { count : int; sum : float; buckets : (float * int) list }
  | Sketch_value of Sketch.summary
  | Series_value of Series.view

val snapshot : t -> (string * value) list
(** All instruments merged across shards, sorted by name.  Raises
    [Invalid_argument] on cross-shard kind clashes or histogram bound
    mismatches. *)

val merge_into : into:t -> t -> unit
(** [merge_into ~into src] folds [src]'s merged totals into [into]'s
    calling-domain shard, creating missing instruments (histograms keep
    [src]'s exact bounds).  This is an accumulation — calling it twice with
    the same [src] double-counts.  Raises [Invalid_argument] on kind or
    bucket-bound mismatches. *)

val render : t -> string
(** Human-readable dump of {!snapshot}, one instrument per line (histograms
    add one indented line per non-empty bucket). *)
