(** Metrics registry: named counters, gauges and histograms with a
    deterministic snapshot/render order (sorted by name), so two identical
    seeded simulation runs produce byte-identical metric dumps.

    Instruments are created through a registry and cached by name: asking
    for the same name twice returns the same instrument; asking for an
    existing name with a different kind raises [Invalid_argument]. *)

type t
(** A registry. *)

val create : unit -> t

module Counter : sig
  type t

  val incr : t -> unit

  val add : t -> int -> unit
  (** [add c n] with [n >= 0]. *)

  val value : t -> int
end

module Gauge : sig
  type t

  val set : t -> float -> unit

  val value : t -> float

  val max_value : t -> float
  (** High-water mark over the gauge's lifetime ([neg_infinity] before the
      first [set]). *)
end

module Histogram : sig
  (** Fixed log-scale buckets: bucket [i] (0-based) counts observations
      [v] with [lowest *. base^(i-1) < v <= lowest *. base^i], bucket 0
      counts [v <= lowest], and a final overflow bucket counts everything
      above the largest bound.  Bucket edges are found by repeated
      multiplication, not [log], so bucketing is deterministic across
      platforms. *)

  type t

  val observe : t -> float -> unit

  val count : t -> int

  val sum : t -> float

  val buckets : t -> (float * int) list
  (** [(upper_bound, count)] per bucket, in increasing bound order; the
      overflow bucket reports [infinity] as its bound.  Counts are
      per-bucket, not cumulative. *)
end

val counter : t -> string -> Counter.t

val gauge : t -> string -> Gauge.t

val histogram : t -> ?base:float -> ?lowest:float -> ?count:int -> string -> Histogram.t
(** Defaults: [base = 10.], [lowest = 1e-3], [count = 8] bounds (plus the
    overflow bucket) — with the defaults, bounds 1e-3 .. 1e4.  [base > 1],
    [lowest > 0], [count >= 1]. *)

type value =
  | Counter_value of int
  | Gauge_value of { last : float; max : float }
  | Histogram_value of { count : int; sum : float; buckets : (float * int) list }

val snapshot : t -> (string * value) list
(** All instruments, sorted by name. *)

val render : t -> string
(** Human-readable dump of {!snapshot}, one instrument per line (histograms
    add one indented line per non-empty bucket). *)
