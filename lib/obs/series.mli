(** Sim-clock time-series sampler: a fixed-interval, ring-buffered record
    of a metric over {e simulated} time, with the same exact-merge
    discipline as the sharded registry's counters and gauges.

    Observations at simulation time [ts] land in bucket
    [floor (ts / interval)]; the ring keeps the most recent [capacity]
    buckets and silently drops observations older than the ring's window
    (counted in {!dropped}).  Two kinds:

    - [Sum]: observations within a bucket add — the counter-rate shape
      (e.g. frame drops per second).  Cross-shard merge adds bucket-wise,
      so integer-valued observations merge exactly.
    - [Last]: the last observation in a bucket wins — the sampled-gauge
      shape (e.g. live members).  Within a series program order wins;
      cross-shard merge follows gauge semantics per bucket: the greater
      observation timestamp supplies the value, ties broken towards the
      larger value.

    {b Exactness caveat}: per-shard rings evict independently, so a merged
    parallel snapshot equals the sequential one provided no shard evicted a
    bucket the merged ring would keep — guaranteed whenever each shard's
    observed bucket span stays within [capacity] (size the ring for the run
    length).  A series value is single-writer (one domain), like every
    registry instrument. *)

type kind = Sum | Last

type t

val create : ?kind:kind -> ?interval:float -> ?capacity:int -> unit -> t
(** Defaults: [kind = Sum], [interval = 1.0] (simulated seconds),
    [capacity = 512] buckets.  [interval > 0], [capacity >= 1]. *)

val kind : t -> kind

val interval : t -> float

val capacity : t -> int

val observe : t -> ts:float -> float -> unit
(** Record [v] at simulation time [ts >= 0] (non-finite or negative [ts],
    or a non-finite [v], raises [Invalid_argument]). *)

val samples : t -> int
(** Observations accepted (including into since-evicted buckets). *)

val dropped : t -> int
(** Observations discarded because their bucket had already left the
    ring's window. *)

val points : t -> (float * float) list
(** Non-empty buckets in time order, as [(bucket start time, value)]. *)

val compatible : t -> t -> bool
(** Same [kind], [interval] and [capacity]? *)

val copy : t -> t

val merge_into : into:t -> t -> unit
(** Fold [src] into [into] bucket-wise per the kind's rule, then trim to
    the merged ring's window.  An accumulation for [Sum] (merging the same
    series twice double-counts).  Raises [Invalid_argument] when the
    layouts differ. *)

(** Plain-data snapshot, as stored in merged {!Metrics.snapshot} values.
    [v_dropped] counts buckets that scrolled out of the ring before the
    snapshot — non-zero means the points no longer cover the full run. *)
type view = {
  v_kind : kind;
  v_interval : float;
  v_points : (float * float) list;
  v_dropped : int;
}

val view : t -> view
