type phase =
  | Begin
  | End
  | Instant
  | Complete of float
  | Counter_sample of float
  | Metadata

type arg = Str of string | Int of int | Float of float

type event = {
  ts : float;
  name : string;
  cat : string;
  ph : phase;
  pid : int;
  tid : int;
  args : (string * arg) list;
}

type sink =
  | Noop
  | Ring of { capacity : int; q : event Queue.t }
  | Emit of (string -> unit)
  | Sharded of { capacity : int; rings : (int * event Queue.t) list Atomic.t }
      (* One ring per domain, keyed by domain id.  The list is immutable
         and grows by CAS, so lookups never lock; each ring is only pushed
         by its owning domain. *)

let noop = Noop

let wall_clock = Unix.gettimeofday

let ring ~capacity =
  if capacity < 1 then invalid_arg "Trace.ring: capacity must be positive";
  Ring { capacity; q = Queue.create () }

let sharded_ring ~capacity =
  if capacity < 1 then invalid_arg "Trace.sharded_ring: capacity must be positive";
  Sharded { capacity; rings = Atomic.make [] }

let ring_contents = function
  | Ring { q; _ } -> List.of_seq (Queue.to_seq q)
  | Noop | Emit _ | Sharded _ -> []

(* The calling domain's ring, installed on first emit. *)
let my_ring rings =
  let id = (Domain.self () :> int) in
  let find l = List.assoc_opt id l in
  match find (Atomic.get rings) with
  | Some q -> q
  | None ->
      let q = Queue.create () in
      let rec install () =
        let cur = Atomic.get rings in
        match find cur with
        | Some q -> q
        | None -> if Atomic.compare_and_set rings cur ((id, q) :: cur) then q else install ()
      in
      install ()

(* Stitch the per-domain rings into one stream: every event's [tid] becomes
   its domain id, each ring is sorted by timestamp (stable, so same-ts
   events keep emission order), and the rings are merged by
   (ts, domain, emission index) — a total order, hence deterministic, that
   preserves per-tid timestamp monotonicity by construction.

   Only call once the emitting domains have quiesced (e.g. after the
   [Pool.map] that drove them has joined its workers). *)
let stitched_contents = function
  | Ring _ as s -> ring_contents s
  | Noop | Emit _ -> []
  | Sharded { rings; _ } ->
      let tagged =
        List.concat_map
          (fun (domain, q) ->
            List.mapi (fun i e -> (e.ts, domain, i, { e with tid = domain })) (List.of_seq (Queue.to_seq q)))
          (Atomic.get rings)
      in
      let cmp (ts1, d1, i1, _) (ts2, d2, i2, _) =
        match Float.compare ts1 ts2 with
        | 0 -> ( match compare d1 d2 with 0 -> compare i1 i2 | c -> c)
        | c -> c
      in
      List.map (fun (_, _, _, e) -> e) (List.sort cmp tagged)

let jsonl f = Emit f

let channel oc =
  Emit
    (fun line ->
      output_string oc line;
      output_char oc '\n')

type t = { sink : sink; pid : int }

let null = { sink = Noop; pid = 0 }

let create ?(pid = 0) sink = { sink; pid }

let enabled t = t.sink <> Noop

(* -- JSON rendering ----------------------------------------------------- *)

let escape_into buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

let json_float f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%.17g" f

let to_json e =
  let buf = Buffer.create 128 in
  let field_str key v =
    Buffer.add_string buf (Printf.sprintf ",\"%s\":\"" key);
    escape_into buf v;
    Buffer.add_char buf '"'
  in
  let ph, extra =
    match e.ph with
    | Begin -> ("B", None)
    | End -> ("E", None)
    | Instant -> ("i", None)
    | Complete dur -> ("X", Some (Printf.sprintf "\"dur\":%s" (json_float (dur *. 1e6))))
    | Counter_sample v -> ("C", Some (Printf.sprintf "\"cv\":%s" (json_float v)))
    | Metadata -> ("M", None)
  in
  Buffer.add_string buf (Printf.sprintf "{\"ph\":\"%s\",\"ts\":%s" ph (json_float (e.ts *. 1e6)));
  (match extra with
  | Some s ->
      Buffer.add_char buf ',';
      Buffer.add_string buf s
  | None -> ());
  field_str "name" e.name;
  if e.cat <> "" then field_str "cat" e.cat;
  Buffer.add_string buf (Printf.sprintf ",\"pid\":%d,\"tid\":%d" e.pid e.tid);
  let args =
    (* Chrome renders a counter track from args; fold the sample value in. *)
    match e.ph with
    | Counter_sample v -> ("value", Float v) :: e.args
    | _ -> e.args
  in
  if args <> [] then begin
    Buffer.add_string buf ",\"args\":{";
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_char buf '"';
        escape_into buf k;
        Buffer.add_string buf "\":";
        match v with
        | Str s ->
            Buffer.add_char buf '"';
            escape_into buf s;
            Buffer.add_char buf '"'
        | Int n -> Buffer.add_string buf (string_of_int n)
        | Float f -> Buffer.add_string buf (json_float f))
      args;
    Buffer.add_char buf '}'
  end;
  Buffer.add_char buf '}';
  Buffer.contents buf

(* -- Emission ----------------------------------------------------------- *)

let emit t e =
  match t.sink with
  | Noop -> ()
  | Ring { capacity; q } ->
      Queue.push e q;
      if Queue.length q > capacity then ignore (Queue.pop q)
  | Sharded { capacity; rings } ->
      let q = my_ring rings in
      Queue.push e q;
      if Queue.length q > capacity then ignore (Queue.pop q)
  | Emit f -> f (to_json e)

let event t ~ts ~ph ?(cat = "") ?(tid = 0) ?(args = []) name =
  if t.sink <> Noop then emit t { ts; name; cat; ph; pid = t.pid; tid; args }

let instant t ~ts ?cat ?tid ?args name = event t ~ts ~ph:Instant ?cat ?tid ?args name

let begin_span t ~ts ?cat ?tid ?args name = event t ~ts ~ph:Begin ?cat ?tid ?args name

let end_span t ~ts ?tid name = event t ~ts ~ph:End ?tid name

let complete t ~ts ~dur ?cat ?tid ?args name = event t ~ts ~ph:(Complete dur) ?cat ?tid ?args name

let counter t ~ts ?tid name v = event t ~ts ~ph:(Counter_sample v) ?tid name

let process_name t name =
  event t ~ts:0.0 ~ph:Metadata ~args:[ ("name", Str name) ] "process_name"
