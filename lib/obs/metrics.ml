(* Domain-sharded metrics registry.

   Each domain that touches a registry gets a private shard (a name ->
   instrument table of its own); instrument mutation is therefore a plain
   unsynchronized field update — the hot path an instrumented simulator pays
   per event is one increment, exactly as in the single-domain design.  The
   registry mutex guards only the rare operations: shard creation,
   instrument registration, and the merge performed by [snapshot] /
   [merge_into].

   Merge semantics (applied shard-by-shard in increasing domain-id order):
   - counters add;
   - gauges keep the value with the greatest user-supplied timestamp
     (ties broken towards the larger value), and the max of the maxima;
   - histograms require identical bucket bounds and add bucket-wise
     (count and sum add too).

   Exactness: counter and bucket totals are integers, so parallel and
   sequential runs of the same work merge to identical snapshots whatever
   the scheduling.  Histogram [sum] is a float accumulation — it is exact
   (hence schedule-independent) when the observed values are integers
   (e.g. hop counts), and subject to the usual non-associativity of float
   addition otherwise.  Snapshots taken while other domains are still
   mutating instruments are safe (word-sized reads cannot tear) but only
   quiescent snapshots — e.g. after [Pool.map] has joined its workers — are
   guaranteed exact. *)

module Counter = struct
  type t = { mutable n : int }

  let incr c = c.n <- c.n + 1

  let add c n =
    if n < 0 then invalid_arg "Metrics.Counter.add: negative increment";
    c.n <- c.n + n

  let value c = c.n
end

module Gauge = struct
  type t = { mutable last : float; mutable last_ts : float; mutable max : float }

  (* Within a shard, program order wins: [set] overwrites [last]
     unconditionally.  [ts] (default [neg_infinity]) only matters when
     shards are merged: the shard with the greatest timestamp supplies the
     merged [last].  Stamp sets with a monotone clock (e.g. the simulation
     clock) to make cross-domain "last" well-defined. *)
  let set g ?(ts = neg_infinity) v =
    g.last <- v;
    g.last_ts <- ts;
    if v > g.max then g.max <- v

  let value g = g.last

  let last_ts g = g.last_ts

  let max_value g = g.max
end

module Histogram = struct
  type t = {
    bounds : float array; (* strictly increasing upper bounds *)
    counts : int array; (* length = Array.length bounds + 1 (overflow) *)
    mutable count : int;
    mutable sum : float;
  }

  let make ~base ~lowest ~n =
    if base <= 1.0 then invalid_arg "Metrics.histogram: base must exceed 1";
    if lowest <= 0.0 then invalid_arg "Metrics.histogram: lowest must be positive";
    if n < 1 then invalid_arg "Metrics.histogram: need at least one bucket";
    let bounds = Array.make n lowest in
    for i = 1 to n - 1 do
      bounds.(i) <- bounds.(i - 1) *. base
    done;
    { bounds; counts = Array.make (n + 1) 0; count = 0; sum = 0.0 }

  (* First bucket whose bound covers [v]; linear scan keeps the edge test
     identical to the bound construction (no log rounding). *)
  let index h v =
    let n = Array.length h.bounds in
    let rec find i = if i = n || v <= h.bounds.(i) then i else find (i + 1) in
    find 0

  let observe h v =
    h.count <- h.count + 1;
    h.sum <- h.sum +. v;
    let i = index h v in
    h.counts.(i) <- h.counts.(i) + 1

  let count h = h.count

  let sum h = h.sum

  let buckets h =
    let n = Array.length h.bounds in
    List.init (n + 1) (fun i ->
        ((if i = n then infinity else h.bounds.(i)), h.counts.(i)))
end

type instrument =
  | C of Counter.t
  | G of Gauge.t
  | H of Histogram.t
  | S of Sketch.t
  | Ts of Series.t

type shard = { domain : int; tbl : (string, instrument) Hashtbl.t }

type t = { lock : Mutex.t; mutable shards : shard list (* unordered *) }

let create () = { lock = Mutex.create (); shards = [] }

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

(* The calling domain's shard, created on first touch.  Must be called with
   the lock held. *)
let shard_locked t =
  let id = (Domain.self () :> int) in
  match List.find_opt (fun s -> s.domain = id) t.shards with
  | Some s -> s
  | None ->
      let s = { domain = id; tbl = Hashtbl.create 16 } in
      t.shards <- s :: t.shards;
      s

let shard_count t = with_lock t (fun () -> List.length t.shards)

let kind = function
  | C _ -> "counter"
  | G _ -> "gauge"
  | H _ -> "histogram"
  | S _ -> "sketch"
  | Ts _ -> "series"

let register t name make wanted =
  with_lock t (fun () ->
      let shard = shard_locked t in
      match Hashtbl.find_opt shard.tbl name with
      | Some existing ->
          if kind existing <> wanted then
            invalid_arg
              (Printf.sprintf "Metrics: %S already registered as a %s" name (kind existing));
          existing
      | None ->
          let inst = make () in
          Hashtbl.add shard.tbl name inst;
          inst)

let counter t name =
  match register t name (fun () -> C { Counter.n = 0 }) "counter" with
  | C c -> c
  | _ -> assert false

let gauge t name =
  match
    register t name
      (fun () -> G { Gauge.last = 0.0; last_ts = neg_infinity; max = neg_infinity })
      "gauge"
  with
  | G g -> g
  | _ -> assert false

let histogram t ?(base = 10.0) ?(lowest = 1e-3) ?(count = 8) name =
  match register t name (fun () -> H (Histogram.make ~base ~lowest ~n:count)) "histogram" with
  | H h -> h
  | _ -> assert false

let sketch t ?base ?lowest ?count name =
  match register t name (fun () -> S (Sketch.create ?base ?lowest ?count ())) "sketch" with
  | S s -> s
  | _ -> assert false

let series t ?kind ?interval ?capacity name =
  match register t name (fun () -> Ts (Series.create ?kind ?interval ?capacity ())) "series" with
  | Ts s -> s
  | _ -> assert false

(* -- Merge -------------------------------------------------------------- *)

(* A merged instrument: a value-level copy of one shard's instrument that
   later shards fold into.  Gauges keep their merge timestamp here (the
   public [value] type below does not expose it). *)
type minst =
  | MC of int
  | MG of { last : float; last_ts : float; max : float }
  | MH of { bounds : float array; counts : int array; count : int; sum : float }
  | MS of Sketch.t (* private copy, mutated only by the merge fold *)
  | MT of Series.t (* likewise *)

let minst_of_instrument = function
  | C c -> MC c.Counter.n
  | G g -> MG { last = g.Gauge.last; last_ts = g.Gauge.last_ts; max = g.Gauge.max }
  | H h ->
      MH
        {
          bounds = Array.copy h.Histogram.bounds;
          counts = Array.copy h.Histogram.counts;
          count = h.Histogram.count;
          sum = h.Histogram.sum;
        }
  | S s -> MS (Sketch.copy s)
  | Ts s -> MT (Series.copy s)

let minst_kind = function
  | MC _ -> "counter"
  | MG _ -> "gauge"
  | MH _ -> "histogram"
  | MS _ -> "sketch"
  | MT _ -> "series"

let merge_minst name a b =
  match (a, b) with
  | MC x, MC y -> MC (x + y)
  | MG x, MG y ->
      let last, last_ts =
        if x.last_ts > y.last_ts then (x.last, x.last_ts)
        else if y.last_ts > x.last_ts then (y.last, y.last_ts)
        else (Float.max x.last y.last, x.last_ts)
      in
      MG { last; last_ts; max = Float.max x.max y.max }
  | MH x, MH y ->
      if x.bounds <> y.bounds then
        invalid_arg
          (Printf.sprintf "Metrics: histogram %S bucket bounds differ across shards" name);
      MH
        {
          bounds = x.bounds;
          counts = Array.map2 ( + ) x.counts y.counts;
          count = x.count + y.count;
          sum = x.sum +. y.sum;
        }
  | MS x, MS y ->
      if not (Sketch.compatible x y) then
        invalid_arg
          (Printf.sprintf "Metrics: sketch %S layouts differ across shards" name);
      Sketch.merge_into ~into:x y;
      MS x
  | MT x, MT y ->
      if not (Series.compatible x y) then
        invalid_arg
          (Printf.sprintf "Metrics: series %S layouts differ across shards" name);
      Series.merge_into ~into:x y;
      MT x
  | _ ->
      invalid_arg
        (Printf.sprintf "Metrics: %S registered as a %s in one domain and a %s in another" name
           (minst_kind a) (minst_kind b))

(* All instruments merged across shards, sorted by name.  Shards are folded
   in increasing domain-id order so the (already order-insensitive) merge is
   also procedurally deterministic. *)
let merged t =
  with_lock t (fun () ->
      let acc = Hashtbl.create 32 in
      let shards = List.sort (fun a b -> compare a.domain b.domain) t.shards in
      List.iter
        (fun s ->
          Hashtbl.iter
            (fun name inst ->
              let m = minst_of_instrument inst in
              match Hashtbl.find_opt acc name with
              | None -> Hashtbl.add acc name m
              | Some prev -> Hashtbl.replace acc name (merge_minst name prev m))
            s.tbl)
        shards;
      Hashtbl.fold (fun name m l -> (name, m) :: l) acc []
      |> List.sort (fun (a, _) (b, _) -> String.compare a b))

type value =
  | Counter_value of int
  | Gauge_value of { last : float; max : float }
  | Histogram_value of { count : int; sum : float; buckets : (float * int) list }
  | Sketch_value of Sketch.summary
  | Series_value of Series.view

let value_of_minst = function
  | MC n -> Counter_value n
  | MG { last; max; _ } -> Gauge_value { last; max }
  | MH { bounds; counts; count; sum } ->
      let n = Array.length bounds in
      Histogram_value
        {
          count;
          sum;
          buckets = List.init (n + 1) (fun i -> ((if i = n then infinity else bounds.(i)), counts.(i)));
        }
  | MS s -> Sketch_value (Sketch.summarize s)
  | MT s -> Series_value (Series.view s)

let snapshot t = List.map (fun (name, m) -> (name, value_of_minst m)) (merged t)

(* Fold [src]'s merged totals into [into]'s calling-domain shard.  Missing
   instruments are created (histograms with [src]'s exact bounds); existing
   ones must agree on kind and bounds.  Calling this twice with the same
   [src] double-counts — it is an accumulation, not a union. *)
let merge_into ~into src =
  let entries = merged src in
  List.iter
    (fun (name, m) ->
      match m with
      | MC n -> Counter.add (counter into name) n
      | MG { last; last_ts; max } ->
          let g = gauge into name in
          let keep_ours =
            g.Gauge.last_ts > last_ts
            || (g.Gauge.last_ts = last_ts && g.Gauge.last >= last)
          in
          if not keep_ours then begin
            g.Gauge.last <- last;
            g.Gauge.last_ts <- last_ts
          end;
          if max > g.Gauge.max then g.Gauge.max <- max
      | MH { bounds; counts; count; sum } ->
          let h =
            match
              register into name
                (fun () ->
                  H
                    {
                      Histogram.bounds = Array.copy bounds;
                      counts = Array.make (Array.length bounds + 1) 0;
                      count = 0;
                      sum = 0.0;
                    })
                "histogram"
            with
            | H h -> h
            | _ -> assert false
          in
          if h.Histogram.bounds <> bounds then
            invalid_arg
              (Printf.sprintf "Metrics: histogram %S bucket bounds differ across registries" name);
          Array.iteri (fun i c -> h.Histogram.counts.(i) <- h.Histogram.counts.(i) + c) counts;
          h.Histogram.count <- h.Histogram.count + count;
          h.Histogram.sum <- h.Histogram.sum +. sum
      | MS src_s ->
          let s =
            match
              register into name
                (fun () ->
                  S
                    (Sketch.create ~base:(Sketch.base src_s) ~lowest:(Sketch.lowest src_s)
                       ~count:(Sketch.bucket_count src_s) ()))
                "sketch"
            with
            | S s -> s
            | _ -> assert false
          in
          if not (Sketch.compatible s src_s) then
            invalid_arg
              (Printf.sprintf "Metrics: sketch %S layouts differ across registries" name);
          Sketch.merge_into ~into:s src_s
      | MT src_ts ->
          let ts =
            match
              register into name
                (fun () ->
                  Ts
                    (Series.create ~kind:(Series.kind src_ts)
                       ~interval:(Series.interval src_ts)
                       ~capacity:(Series.capacity src_ts) ()))
                "series"
            with
            | Ts ts -> ts
            | _ -> assert false
          in
          if not (Series.compatible ts src_ts) then
            invalid_arg
              (Printf.sprintf "Metrics: series %S layouts differ across registries" name);
          Series.merge_into ~into:ts src_ts)
    entries

let render t =
  let buf = Buffer.create 256 in
  List.iter
    (fun (name, v) ->
      match v with
      | Counter_value n -> Buffer.add_string buf (Printf.sprintf "counter    %-40s %d\n" name n)
      | Gauge_value { last; max } ->
          Buffer.add_string buf
            (Printf.sprintf "gauge      %-40s %g (max %g)\n" name last
               (if max = neg_infinity then last else max))
      | Histogram_value { count; sum; buckets } ->
          Buffer.add_string buf
            (Printf.sprintf "histogram  %-40s count=%d sum=%g\n" name count sum);
          List.iter
            (fun (bound, n) ->
              if n > 0 then
                Buffer.add_string buf
                  (if bound = infinity then Printf.sprintf "             le +inf : %d\n" n
                   else Printf.sprintf "             le %-6g: %d\n" bound n))
            buckets
      | Sketch_value s ->
          if s.Sketch.s_count = 0 then
            Buffer.add_string buf (Printf.sprintf "sketch     %-40s count=0\n" name)
          else
            Buffer.add_string buf
              (Printf.sprintf
                 "sketch     %-40s count=%d sum=%g p50=%g p90=%g p99=%g p999=%g max=%g\n" name
                 s.Sketch.s_count s.Sketch.s_sum
                 (Sketch.summary_quantile s 0.50)
                 (Sketch.summary_quantile s 0.90)
                 (Sketch.summary_quantile s 0.99)
                 (Sketch.summary_quantile s 0.999)
                 s.Sketch.s_max)
      | Series_value v ->
          let pts = v.Series.v_points in
          let dropped =
            if v.Series.v_dropped > 0 then Printf.sprintf " dropped=%d" v.Series.v_dropped
            else ""
          in
          (match (pts, List.rev pts) with
          | (t0, _) :: _, (t1, last) :: _ ->
              Buffer.add_string buf
                (Printf.sprintf "series     %-40s points=%d span=[%g, %g] last=%g%s\n" name
                   (List.length pts) t0 t1 last dropped)
          | _ ->
              Buffer.add_string buf (Printf.sprintf "series     %-40s points=0%s\n" name dropped)))
    (snapshot t);
  Buffer.contents buf
