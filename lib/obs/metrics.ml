module Counter = struct
  type t = { mutable n : int }

  let incr c = c.n <- c.n + 1

  let add c n =
    if n < 0 then invalid_arg "Metrics.Counter.add: negative increment";
    c.n <- c.n + n

  let value c = c.n
end

module Gauge = struct
  type t = { mutable last : float; mutable max : float }

  let set g v =
    g.last <- v;
    if v > g.max then g.max <- v

  let value g = g.last

  let max_value g = g.max
end

module Histogram = struct
  type t = {
    bounds : float array; (* strictly increasing upper bounds *)
    counts : int array; (* length = Array.length bounds + 1 (overflow) *)
    mutable count : int;
    mutable sum : float;
  }

  let make ~base ~lowest ~n =
    if base <= 1.0 then invalid_arg "Metrics.histogram: base must exceed 1";
    if lowest <= 0.0 then invalid_arg "Metrics.histogram: lowest must be positive";
    if n < 1 then invalid_arg "Metrics.histogram: need at least one bucket";
    let bounds = Array.make n lowest in
    for i = 1 to n - 1 do
      bounds.(i) <- bounds.(i - 1) *. base
    done;
    { bounds; counts = Array.make (n + 1) 0; count = 0; sum = 0.0 }

  (* First bucket whose bound covers [v]; linear scan keeps the edge test
     identical to the bound construction (no log rounding). *)
  let index h v =
    let n = Array.length h.bounds in
    let rec find i = if i = n || v <= h.bounds.(i) then i else find (i + 1) in
    find 0

  let observe h v =
    h.count <- h.count + 1;
    h.sum <- h.sum +. v;
    let i = index h v in
    h.counts.(i) <- h.counts.(i) + 1

  let count h = h.count

  let sum h = h.sum

  let buckets h =
    let n = Array.length h.bounds in
    List.init (n + 1) (fun i ->
        ((if i = n then infinity else h.bounds.(i)), h.counts.(i)))
end

type instrument = C of Counter.t | G of Gauge.t | H of Histogram.t

type t = { tbl : (string, instrument) Hashtbl.t }

let create () = { tbl = Hashtbl.create 16 }

let kind = function C _ -> "counter" | G _ -> "gauge" | H _ -> "histogram"

let register t name inst wanted =
  match Hashtbl.find_opt t.tbl name with
  | Some existing ->
      if kind existing <> wanted then
        invalid_arg
          (Printf.sprintf "Metrics: %S already registered as a %s" name (kind existing));
      existing
  | None ->
      Hashtbl.add t.tbl name inst;
      inst

let counter t name =
  match register t name (C { Counter.n = 0 }) "counter" with
  | C c -> c
  | _ -> assert false

let gauge t name =
  match register t name (G { Gauge.last = 0.0; max = neg_infinity }) "gauge" with
  | G g -> g
  | _ -> assert false

let histogram t ?(base = 10.0) ?(lowest = 1e-3) ?(count = 8) name =
  match register t name (H (Histogram.make ~base ~lowest ~n:count)) "histogram" with
  | H h -> h
  | _ -> assert false

type value =
  | Counter_value of int
  | Gauge_value of { last : float; max : float }
  | Histogram_value of { count : int; sum : float; buckets : (float * int) list }

let snapshot t =
  Hashtbl.fold
    (fun name inst acc ->
      let v =
        match inst with
        | C c -> Counter_value (Counter.value c)
        | G g -> Gauge_value { last = Gauge.value g; max = Gauge.max_value g }
        | H h ->
            Histogram_value
              { count = Histogram.count h; sum = Histogram.sum h; buckets = Histogram.buckets h }
      in
      (name, v) :: acc)
    t.tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let render t =
  let buf = Buffer.create 256 in
  List.iter
    (fun (name, v) ->
      match v with
      | Counter_value n -> Buffer.add_string buf (Printf.sprintf "counter    %-40s %d\n" name n)
      | Gauge_value { last; max } ->
          Buffer.add_string buf
            (Printf.sprintf "gauge      %-40s %g (max %g)\n" name last
               (if max = neg_infinity then last else max))
      | Histogram_value { count; sum; buckets } ->
          Buffer.add_string buf
            (Printf.sprintf "histogram  %-40s count=%d sum=%g\n" name count sum);
          List.iter
            (fun (bound, n) ->
              if n > 0 then
                Buffer.add_string buf
                  (if bound = infinity then Printf.sprintf "             le +inf : %d\n" n
                   else Printf.sprintf "             le %-6g: %d\n" bound n))
            buckets)
    (snapshot t);
  Buffer.contents buf
