(* Recovery-episode timelines, as a projection of {!Causal} episodes.

   The milestone bookkeeping (failure → detected → signalled → installed →
   first data) lives in [Causal.tracker]; this module keeps the original
   paper-phase vocabulary and the fixed-width table renderer on top of the
   shared episode record. *)

type episode = Causal.episode = {
  member : int;
  failure_at : float;
  detected_at : float option;
  signalled_at : float option;
  installed_at : float option;
  first_data_at : float option;
  attempts : int;
}

type phase = Detection | Signalling | Installation | First_data

let phases = [ Detection; Signalling; Installation; First_data ]

let phase_name = function
  | Detection -> "detection"
  | Signalling -> "signalling"
  | Installation -> "installation"
  | First_data -> "first data"

let to_causal = function
  | Detection -> Causal.Detect
  | Signalling -> Causal.Notify
  | Installation -> Causal.Repair
  | First_data -> Causal.Stabilize

let phase_durations e =
  let d = Causal.phase_durations e in
  List.map (fun p -> (p, List.assoc (to_causal p) d)) phases

let total = Causal.total

let render eps =
  let buf = Buffer.create 256 in
  let cell = function Some d -> Printf.sprintf "%10.3f" d | None -> "         -" in
  Buffer.add_string buf
    (Printf.sprintf "%8s %10s %10s %10s %10s %10s %9s\n" "member" "detect(s)" "signal(s)"
       "install(s)" "1st-data(s)" "total(s)" "attempts");
  List.iter
    (fun e ->
      let d = phase_durations e in
      Buffer.add_string buf
        (Printf.sprintf "%8d %s %s %s %s %s %9d\n" e.member
           (cell (List.assoc Detection d))
           (cell (List.assoc Signalling d))
           (cell (List.assoc Installation d))
           (cell (List.assoc First_data d))
           (cell (total e)) e.attempts))
    eps;
  Buffer.contents buf
