type episode = {
  member : int;
  failure_at : float;
  detected_at : float option;
  signalled_at : float option;
  installed_at : float option;
  first_data_at : float option;
  attempts : int;
}

type phase = Detection | Signalling | Installation | First_data

let phases = [ Detection; Signalling; Installation; First_data ]

let phase_name = function
  | Detection -> "detection"
  | Signalling -> "signalling"
  | Installation -> "installation"
  | First_data -> "first data"

let delta a b = match (a, b) with Some a, Some b -> Some (b -. a) | _ -> None

let phase_durations e =
  [
    (Detection, delta (Some e.failure_at) e.detected_at);
    (Signalling, delta e.detected_at e.signalled_at);
    (Installation, delta e.signalled_at e.installed_at);
    (First_data, delta e.installed_at e.first_data_at);
  ]

let total e = delta (Some e.failure_at) e.first_data_at

(* Mutable working state; [episodes] freezes it into the public record. *)
type cell = {
  mutable detected : float option;
  mutable signalled : float option;
  mutable installed : float option;
  mutable first_data : float option;
  mutable attempts : int;
}

type recorder = { mutable failure_at : float option; tbl : (int, cell) Hashtbl.t }

let create () = { failure_at = None; tbl = Hashtbl.create 8 }

let note_failure r ~ts = if r.failure_at = None then r.failure_at <- Some ts

let open_cell r member =
  match Hashtbl.find_opt r.tbl member with
  | Some c when c.first_data = None -> Some c
  | _ -> None

let note_detected r ~member ~ts =
  if r.failure_at <> None && not (Hashtbl.mem r.tbl member) then
    Hashtbl.add r.tbl member
      { detected = Some ts; signalled = None; installed = None; first_data = None; attempts = 0 }

let note_signalled r ~member ~ts =
  match open_cell r member with
  | Some c ->
      c.signalled <- Some ts;
      c.attempts <- c.attempts + 1
  | None -> ()

let note_installed r ~member ~ts =
  match open_cell r member with
  | Some c -> begin
      (* Keep the first installation of the latest signalling attempt:
         periodic join refreshes re-confirm state at the merge node and
         must not push the milestone forward. *)
      match (c.installed, c.signalled) with
      | None, _ -> c.installed <- Some ts
      | Some inst, Some s when s > inst -> c.installed <- Some ts
      | _ -> ()
    end
  | None -> ()

let note_first_data r ~member ~ts =
  match open_cell r member with Some c -> c.first_data <- Some ts | None -> ()

let freeze failure_at member (c : cell) =
  {
    member;
    failure_at;
    detected_at = c.detected;
    signalled_at = c.signalled;
    installed_at = c.installed;
    first_data_at = c.first_data;
    attempts = c.attempts;
  }

let episode r member =
  match r.failure_at with
  | None -> None
  | Some failure_at -> Option.map (freeze failure_at member) (Hashtbl.find_opt r.tbl member)

let episodes r =
  match r.failure_at with
  | None -> []
  | Some failure_at ->
      Hashtbl.fold (fun member c acc -> freeze failure_at member c :: acc) r.tbl []
      |> List.sort (fun a b -> compare a.member b.member)

let render eps =
  let buf = Buffer.create 256 in
  let cell = function Some d -> Printf.sprintf "%10.3f" d | None -> "         -" in
  Buffer.add_string buf
    (Printf.sprintf "%8s %10s %10s %10s %10s %10s %9s\n" "member" "detect(s)" "signal(s)"
       "install(s)" "1st-data(s)" "total(s)" "attempts");
  List.iter
    (fun e ->
      let d = phase_durations e in
      Buffer.add_string buf
        (Printf.sprintf "%8d %s %s %s %s %s %9d\n" e.member
           (cell (List.assoc Detection d))
           (cell (List.assoc Signalling d))
           (cell (List.assoc Installation d))
           (cell (List.assoc First_data d))
           (cell (total e)) e.attempts))
    eps;
  Buffer.contents buf
