(* Always-on flight recorder: a fixed-size per-domain ring of packed int
   records written straight from the engine's int-coded dispatch.

   Each record is three consecutive words in an int bigarray:

     word0 = (tick land tick_mask) lsl 8  lor  (code land 0xff)
     word1 = operand a (raw int, full width)
     word2 = operand b (raw int, full width)

   Ticks are the engine's scaled-int timestamps (Engine.ticks_per_second =
   1e7); 54 bits of tick cover ~57 years of simulated time, so the masking
   wrap is documented rather than defended against. The hot path is a mask,
   three unsafe stores and a sequence bump — no allocation, one predictable
   branch (`mask >= 0`, false only for the [null] recorder).

   Rings are sharded per domain with the same CAS-list idiom as
   Trace.Sharded: a writer only ever touches its own ring, [snapshot] merges
   all rings into one (tick, domain, seq)-ordered stream. Snapshotting while
   other domains are still writing is racy in the same benign way as the
   trace ring — intended use is post-mortem (crash dumps) or quiesced
   (end of run). *)

type buffer = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t

type recorder = {
  buf : buffer;
  mask : int; (* capacity - 1 (power of two); -1 disables recording *)
  mutable seq : int; (* records ever written; slot = seq land mask *)
  dom : int;
}

type t = { capacity : int; rings : recorder list Atomic.t }

let tick_bits = 54
let tick_mask = (1 lsl tick_bits) - 1

(* The timestamp scale records are written in. Must match
   Engine.ticks_per_second; pinned by a test. *)
let ticks_per_second = 1e7

let default_capacity = 8192

let rec pow2 n k = if k >= n then k else pow2 n (k * 2)

let create ?(capacity = default_capacity) () =
  let capacity = pow2 (max 2 capacity) 2 in
  { capacity; rings = Atomic.make [] }

let global = create ()

let recorder t =
  let dom = (Domain.self () :> int) in
  let rec claim () =
    let rings = Atomic.get t.rings in
    match List.find_opt (fun r -> r.dom = dom) rings with
    | Some r -> r
    | None ->
        let r =
          {
            buf = Bigarray.Array1.create Bigarray.int Bigarray.c_layout (3 * t.capacity);
            mask = t.capacity - 1;
            seq = 0;
            dom;
          }
        in
        if Atomic.compare_and_set t.rings rings (r :: rings) then r else claim ()
  in
  claim ()

let null =
  { buf = Bigarray.Array1.create Bigarray.int Bigarray.c_layout 3; mask = -1; seq = 0; dom = -1 }

let[@inline] record r ~tick ~code ~a ~b =
  if r.mask >= 0 then begin
    let i = (r.seq land r.mask) * 3 in
    Bigarray.Array1.unsafe_set r.buf i (((tick land tick_mask) lsl 8) lor (code land 0xff));
    Bigarray.Array1.unsafe_set r.buf (i + 1) a;
    Bigarray.Array1.unsafe_set r.buf (i + 2) b;
    r.seq <- r.seq + 1
  end

let reset t = List.iter (fun r -> r.seq <- 0) (Atomic.get t.rings)

let dropped t =
  List.fold_left
    (fun acc r -> acc + max 0 (r.seq - (r.mask + 1)))
    0 (Atomic.get t.rings)

(* -- Event codes --------------------------------------------------------- *)

let ev_fire = 1
let ev_schedule = 2
let ev_cancel = 3
let net_send = 10
let net_deliver = 11
let net_drop_send = 12
let net_drop_flight = 13
let net_drop_loss = 14
let proto_failure = 20
let proto_detected = 21
let proto_signal = 22
let proto_installed = 23
let proto_first_data = 24
let proto_reshape = 25
let exec_event = 30
let exec_violation = 31

let code_table =
  [
    (ev_fire, "engine.fire");
    (ev_schedule, "engine.schedule");
    (ev_cancel, "engine.cancel");
    (net_send, "net.send");
    (net_deliver, "net.deliver");
    (net_drop_send, "net.drop_send");
    (net_drop_flight, "net.drop_flight");
    (net_drop_loss, "net.drop_loss");
    (proto_failure, "proto.failure");
    (proto_detected, "proto.detected");
    (proto_signal, "proto.signal");
    (proto_installed, "proto.installed");
    (proto_first_data, "proto.first_data");
    (proto_reshape, "proto.reshape");
    (exec_event, "exec.event");
    (exec_violation, "exec.violation");
  ]

let code_name c =
  match List.assoc_opt c code_table with
  | Some n -> n
  | None -> Printf.sprintf "code.%d" c

let code_of_name n =
  match List.find_opt (fun (_, s) -> s = n) code_table with
  | Some (c, _) -> Some c
  | None -> (
      match int_of_string_opt n with Some c when c >= 0 && c < 256 -> Some c | _ -> None)

(* -- Decoding ------------------------------------------------------------ *)

type decoded = {
  d_tick : int;
  d_code : int;
  d_a : int;
  d_b : int;
  d_domain : int;
  d_seq : int;
}

let decode_ring r =
  let cap = r.mask + 1 in
  let n = min r.seq cap in
  let out = ref [] in
  for k = r.seq - 1 downto r.seq - n do
    let i = (k land r.mask) * 3 in
    let w0 = Bigarray.Array1.unsafe_get r.buf i in
    out :=
      {
        d_tick = w0 lsr 8;
        d_code = w0 land 0xff;
        d_a = Bigarray.Array1.unsafe_get r.buf (i + 1);
        d_b = Bigarray.Array1.unsafe_get r.buf (i + 2);
        d_domain = r.dom;
        d_seq = k;
      }
      :: !out
  done;
  !out

let order a b =
  let c = compare a.d_tick b.d_tick in
  if c <> 0 then c
  else
    let c = compare a.d_domain b.d_domain in
    if c <> 0 then c else compare a.d_seq b.d_seq

let snapshot t =
  Atomic.get t.rings
  |> List.concat_map (fun r -> if r.mask >= 0 then decode_ring r else [])
  |> List.sort order

(* -- Crash dumps --------------------------------------------------------- *)

let dump_magic = "smrp-flight-dump"
let dump_version = 1

let write_dump ?(dropped = 0) path records =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      Printf.fprintf oc "%s %d %g\n" dump_magic dump_version ticks_per_second;
      Printf.fprintf oc "dropped %d\n" dropped;
      List.iter
        (fun r ->
          Printf.fprintf oc "%d %d %d %d %d %d\n" r.d_domain r.d_seq r.d_tick r.d_code r.d_a
            r.d_b)
        records)

exception Bad_dump of string

let read_dump path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let header = try input_line ic with End_of_file -> "" in
      (match String.split_on_char ' ' header with
      | magic :: version :: _ when magic = dump_magic && version = string_of_int dump_version
        ->
          ()
      | _ -> raise (Bad_dump (Printf.sprintf "%s: not a flight dump (header %S)" path header)));
      let dropped =
        match String.split_on_char ' ' (try input_line ic with End_of_file -> "") with
        | [ "dropped"; n ] -> ( match int_of_string_opt n with Some n -> n | None -> 0)
        | _ -> raise (Bad_dump (Printf.sprintf "%s: missing dropped header" path))
      in
      let records = ref [] in
      (try
         while true do
           let line = input_line ic in
           if String.trim line <> "" then
             match List.filter_map int_of_string_opt (String.split_on_char ' ' line) with
             | [ d_domain; d_seq; d_tick; d_code; d_a; d_b ] ->
                 records := { d_tick; d_code; d_a; d_b; d_domain; d_seq } :: !records
             | _ -> raise (Bad_dump (Printf.sprintf "%s: malformed record %S" path line))
         done
       with End_of_file -> ());
      (List.rev !records, dropped))
