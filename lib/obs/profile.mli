(** Performance-observability recorder: named phases (wall clock +
    [Gc.quick_stat] deltas) and per-domain pool-worker utilisation (tasks
    claimed, busy vs. idle wall time).

    A recorder is domain-safe: phases and worker records append under a
    mutex; the per-task path mutates only the worker's own handle.  GC
    counters are the calling domain's view (OCaml 5 keeps per-domain
    allocation counters), so a phase that fans out to worker domains
    reports the orchestrator's own allocation — the per-worker
    [minor_words] covers the rest. *)

type gc_delta = {
  minor_words : float;
  major_words : float;
  promoted_words : float;
  minor_collections : int;
  major_collections : int;
  compactions : int;
}

type phase = { name : string; wall_s : float; gc : gc_delta }

type worker = {
  domain : int;  (** Domain id (the tid used in stitched traces). *)
  tasks : int;  (** Tasks claimed and run by this worker. *)
  busy_s : float;  (** Wall time spent inside tasks. *)
  wall_s : float;  (** Worker lifetime inside the fan-out; idle = wall - busy. *)
  minor_words : float;  (** Minor-heap words allocated by this domain. *)
}

type t

val create : unit -> t

val phase : t -> string -> (unit -> 'a) -> 'a
(** [phase t name f] runs [f], recording wall time and GC deltas around it
    (also on exception). *)

type worker_handle
(** Per-worker mutable state; owned by the domain that called
    {!worker_start}. *)

val worker_start : t -> worker_handle

val worker_task : worker_handle -> (unit -> 'a) -> 'a
(** Times one claimed task (counted also on exception). *)

val worker_stop : worker_handle -> unit
(** Seals the worker's record into the recorder. *)

val phases : t -> phase list
(** In recording order. *)

val workers : t -> worker list
(** Sorted by domain id.  One record per worker per fan-out, so a recorder
    spanning several [Pool.map] calls accumulates multiple records. *)

val render : t -> string
(** Phase table plus per-worker utilisation table. *)
