(** Hierarchical timer wheel keyed on the scaled-int simulation clock.

    Seven levels of 32 slots each: level [l] has slot width [32^l] ticks, so
    the wheel spans [32^7] ticks (~3436 simulated seconds at the engine's
    100 ns tick) before entries spill into an unsorted overflow list that is
    cascaded back in as the clock approaches.  Per-level occupancy bitmaps
    let the search skip empty regions in O(levels) instead of tick-by-tick.

    Entries at equal ticks pop in ascending [seq] (FIFO scheduling order):
    level-0 slots are kept seq-sorted — direct schedules append in order, and
    the rare cascade that appends out of order re-sorts the slot.  The pop
    sequence is therefore identical to {!Engine_reference}'s for any
    workload, which the engine-differential tests assert. *)

type t

val create : unit -> t

val add : t -> tick:int -> seq:int -> eid:int -> unit
(** Insert event [eid] at [tick] (absolute, in ticks).  [seq] must be
    globally unique and monotone in scheduling order. *)

val min_tick : t -> int
(** Tick of the earliest pending entry; [max_int] when empty.  May cascade
    higher-level slots down as a side effect. *)

val pop_min : t -> int
(** Remove and return the [eid] with the smallest [(tick, seq)]; [-1] when
    empty. *)

val length : t -> int
