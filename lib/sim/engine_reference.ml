(* Binary heap on (tick, seq), int-specialised: three parallel int arrays and
   hand-inlined sift loops.  seq is globally unique, so the order is total
   and pops are deterministic — the property the wheel is differentially
   tested against. *)

type t = {
  mutable tick : int array;
  mutable seq : int array;
  mutable eid : int array;
  mutable n : int;
}

let create () = { tick = Array.make 64 0; seq = Array.make 64 0; eid = Array.make 64 0; n = 0 }

let length t = t.n

let[@inline] less t i j =
  t.tick.(i) < t.tick.(j) || (t.tick.(i) = t.tick.(j) && t.seq.(i) < t.seq.(j))

let[@inline] swap t i j =
  let tk = t.tick.(i) and sq = t.seq.(i) and ev = t.eid.(i) in
  t.tick.(i) <- t.tick.(j);
  t.seq.(i) <- t.seq.(j);
  t.eid.(i) <- t.eid.(j);
  t.tick.(j) <- tk;
  t.seq.(j) <- sq;
  t.eid.(j) <- ev

let grow t =
  let cap = Array.length t.tick in
  let ncap = cap * 2 in
  let ext a = Array.append a (Array.make cap 0) in
  ignore ncap;
  t.tick <- ext t.tick;
  t.seq <- ext t.seq;
  t.eid <- ext t.eid

let add t ~tick ~seq ~eid =
  if t.n = Array.length t.tick then grow t;
  let i = ref t.n in
  t.tick.(!i) <- tick;
  t.seq.(!i) <- seq;
  t.eid.(!i) <- eid;
  t.n <- t.n + 1;
  while !i > 0 && less t !i ((!i - 1) / 2) do
    swap t !i ((!i - 1) / 2);
    i := (!i - 1) / 2
  done

let min_tick t = if t.n = 0 then max_int else t.tick.(0)

let pop_min t =
  if t.n = 0 then -1
  else begin
    let res = t.eid.(0) in
    t.n <- t.n - 1;
    if t.n > 0 then begin
      t.tick.(0) <- t.tick.(t.n);
      t.seq.(0) <- t.seq.(t.n);
      t.eid.(0) <- t.eid.(t.n);
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let m = ref !i in
        if l < t.n && less t l !m then m := l;
        if r < t.n && less t r !m then m := r;
        if !m = !i then continue := false
        else begin
          swap t !i !m;
          i := !m
        end
      done
    end;
    res
  end
