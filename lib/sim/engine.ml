module Metrics = Smrp_obs.Metrics
module Flight = Smrp_obs.Flight

(* Engine v2: the facade owns the clock, the pooled event table and all
   instrumentation; the queue behind it is a pure (tick, seq) -> eid
   priority structure with two interchangeable implementations.  Sharing
   everything but the queue is what makes the wheel-vs-reference
   differential trivial: identical pop order implies identical behavior. *)

type impl = Wheel | Reference

type queue = Q_wheel of Engine_wheel.t | Q_ref of Engine_reference.t

(* Handles pack (generation, id) into an int: bit 62 tags periodic series,
   bits 31..61 are the slot generation, bits 0..30 the slot id.  A stale
   handle (generation mismatch after slot recycling) cancels nothing. *)
type handle = int

let id_mask = (1 lsl 31) - 1
let series_tag = 1 lsl 62

(* Event slot states in [ev_state]. *)
let st_free = '\000'
let st_live = '\001'
let st_cancelled = '\002'

type meters = {
  scheduled : Metrics.Counter.t;
  fired : Metrics.Counter.t;
  skipped : Metrics.Counter.t; (* popped already-cancelled *)
  cancelled_pending : Metrics.Counter.t; (* cancelled, not yet popped *)
  depth : Metrics.Gauge.t; (* live events only *)
}

type t = {
  mutable clock : float;
  mutable seq : int; (* global scheduling sequence: FIFO ties *)
  queue : queue;
  (* event pool (struct of arrays; free list threaded through ev_next) *)
  mutable ev_tick : int array;
  mutable ev_code : int array;
  mutable ev_a : int array;
  mutable ev_b : int array;
  mutable ev_gen : int array;
  mutable ev_next : int array;
  mutable ev_state : Bytes.t;
  mutable ev_free : int;
  mutable live : int;
  (* closure table for code-0 (closure-dispatch) events *)
  mutable cls : (unit -> unit) array;
  mutable cls_next : int array;
  mutable cls_free : int;
  (* registered int-code handlers; code 0 is the closure dispatcher *)
  mutable handlers : (int -> int -> unit) array;
  mutable n_handlers : int;
  (* periodic series ([every]) control slots *)
  mutable sr_state : Bytes.t; (* free / live / cancelled *)
  mutable sr_gen : int array;
  mutable sr_next : int array;
  mutable sr_free : int;
  mutable n_fired : int;
  mutable fp : int;
  obs : Smrp_obs.Obs.t option;
  meters : meters option;
  flight : Flight.recorder; (* always-on ring; Flight.null to disable *)
}

let ticks_per_second = 1e7
let tick_of_time time = int_of_float (Float.round (time *. ticks_per_second))
let time_of_tick tick = float_of_int tick /. ticks_per_second

let dummy_action () = ()
let dummy_handler _ _ = ()

let free_chain n off = Array.init n (fun i -> if i = n - 1 then -1 else off + i + 1)

let create ?obs ?flight ?(impl = Wheel) () =
  let flight =
    match flight with Some f -> f | None -> Flight.recorder Flight.global
  in
  let meters =
    Option.map
      (fun o ->
        let m = Smrp_obs.Obs.metrics o in
        {
          scheduled = Metrics.counter m "engine.events_scheduled";
          fired = Metrics.counter m "engine.events_fired";
          skipped = Metrics.counter m "engine.events_cancelled";
          cancelled_pending = Metrics.counter m "engine.events_cancelled_pending";
          depth = Metrics.gauge m "engine.queue_depth";
        })
      obs
  in
  let cap = 64 in
  {
    clock = 0.0;
    seq = 0;
    queue = (match impl with Wheel -> Q_wheel (Engine_wheel.create ()) | Reference -> Q_ref (Engine_reference.create ()));
    ev_tick = Array.make cap 0;
    ev_code = Array.make cap 0;
    ev_a = Array.make cap 0;
    ev_b = Array.make cap 0;
    ev_gen = Array.make cap 0;
    ev_next = free_chain cap 0;
    ev_state = Bytes.make cap st_free;
    ev_free = 0;
    live = 0;
    cls = Array.make cap dummy_action;
    cls_next = free_chain cap 0;
    cls_free = 0;
    handlers = Array.make 8 dummy_handler;
    n_handlers = 1;
    sr_state = Bytes.make 16 st_free;
    sr_gen = Array.make 16 0;
    sr_next = free_chain 16 0;
    sr_free = 0;
    n_fired = 0;
    fp = 0;
    obs;
    meters;
    flight;
  }

let obs t = t.obs
let flight t = t.flight
let now t = t.clock
let pending t = t.live
let events_fired t = t.n_fired
let fingerprint t = t.fp

(* -- Queue dispatch ------------------------------------------------------ *)

let[@inline] q_add t ~tick ~seq ~eid =
  match t.queue with
  | Q_wheel w -> Engine_wheel.add w ~tick ~seq ~eid
  | Q_ref r -> Engine_reference.add r ~tick ~seq ~eid

let[@inline] q_pop t =
  match t.queue with Q_wheel w -> Engine_wheel.pop_min w | Q_ref r -> Engine_reference.pop_min r

let[@inline] q_min t =
  match t.queue with Q_wheel w -> Engine_wheel.min_tick w | Q_ref r -> Engine_reference.min_tick r

(* -- Pool management ----------------------------------------------------- *)

let grow_events t =
  let cap = Array.length t.ev_tick in
  let ext a = Array.append a (Array.make cap 0) in
  t.ev_tick <- ext t.ev_tick;
  t.ev_code <- ext t.ev_code;
  t.ev_a <- ext t.ev_a;
  t.ev_b <- ext t.ev_b;
  t.ev_gen <- ext t.ev_gen;
  t.ev_next <- Array.append t.ev_next (free_chain cap cap);
  t.ev_state <- Bytes.cat t.ev_state (Bytes.make cap st_free);
  t.ev_free <- cap

let[@inline] alloc_event t =
  if t.ev_free = -1 then grow_events t;
  let eid = t.ev_free in
  t.ev_free <- t.ev_next.(eid);
  eid

(* Free an event slot: bump the generation so stale handles miss. *)
let[@inline] release_event t eid =
  Bytes.unsafe_set t.ev_state eid st_free;
  t.ev_gen.(eid) <- (t.ev_gen.(eid) + 1) land id_mask;
  t.ev_next.(eid) <- t.ev_free;
  t.ev_free <- eid

let grow_closures t =
  let cap = Array.length t.cls in
  t.cls <- Array.append t.cls (Array.make cap dummy_action);
  t.cls_next <- Array.append t.cls_next (free_chain cap cap);
  t.cls_free <- cap

let[@inline] alloc_closure t f =
  if t.cls_free = -1 then grow_closures t;
  let c = t.cls_free in
  t.cls_free <- t.cls_next.(c);
  t.cls.(c) <- f;
  c

let[@inline] release_closure t c =
  t.cls.(c) <- dummy_action;
  t.cls_next.(c) <- t.cls_free;
  t.cls_free <- c

(* -- Metering helpers ---------------------------------------------------- *)

(* Depth is the live count — lazy-deleted queue residents excluded
   (previously the gauge read the raw queue length, over-reporting when
   cancels piled up).  Stamped with sim time so merged gauges resolve by
   the simulation's own clock, not wall-clock or shard order. *)
let[@inline] note_depth t m = Metrics.Gauge.set m.depth ~ts:t.clock (float_of_int t.live)

(* -- Scheduling ---------------------------------------------------------- *)

let schedule_event t ~tick ~code ~a ~b =
  let eid = alloc_event t in
  t.ev_tick.(eid) <- tick;
  t.ev_code.(eid) <- code;
  t.ev_a.(eid) <- a;
  t.ev_b.(eid) <- b;
  Bytes.unsafe_set t.ev_state eid st_live;
  t.live <- t.live + 1;
  let seq = t.seq in
  t.seq <- seq + 1;
  q_add t ~tick ~seq ~eid;
  (* Flight record at the *target* tick: avoids a float->tick conversion of
     the current clock on the scheduling hot path. *)
  Flight.record t.flight ~tick ~code:Flight.ev_schedule ~a:code ~b:eid;
  (match t.meters with
  | Some m ->
      Metrics.Counter.incr m.scheduled;
      note_depth t m
  | None -> ());
  (t.ev_gen.(eid) lsl 31) lor eid

let schedule_at t ~time action =
  if time < t.clock then invalid_arg "Engine.schedule_at: time in the past";
  let c = alloc_closure t action in
  schedule_event t ~tick:(tick_of_time time) ~code:0 ~a:c ~b:0

let schedule t ~delay action =
  if delay < 0.0 then invalid_arg "Engine.schedule: negative delay";
  schedule_at t ~time:(t.clock +. delay) action

let register t f =
  let code = t.n_handlers in
  if code = Array.length t.handlers then
    t.handlers <- Array.append t.handlers (Array.make (Array.length t.handlers) dummy_handler);
  t.handlers.(code) <- f;
  t.n_handlers <- code + 1;
  code

let schedule_code t ~delay ~code ~a ~b =
  if delay < 0.0 then invalid_arg "Engine.schedule_code: negative delay";
  if code <= 0 || code >= t.n_handlers then invalid_arg "Engine.schedule_code: unknown code";
  ignore (schedule_event t ~tick:(tick_of_time (t.clock +. delay)) ~code ~a ~b : handle)

(* -- Cancellation -------------------------------------------------------- *)

let cancel_event t h =
  let eid = h land id_mask in
  let gen = (h lsr 31) land id_mask in
  if
    eid < Array.length t.ev_tick
    && Bytes.unsafe_get t.ev_state eid = st_live
    && t.ev_gen.(eid) = gen
  then begin
    Bytes.unsafe_set t.ev_state eid st_cancelled;
    t.live <- t.live - 1;
    Flight.record t.flight ~tick:t.ev_tick.(eid) ~code:Flight.ev_cancel ~a:t.ev_code.(eid)
      ~b:eid;
    match t.meters with
    | Some m ->
        Metrics.Counter.incr m.cancelled_pending;
        note_depth t m
    | None -> ()
  end

let cancel_series t h =
  let sid = h land id_mask in
  let gen = (h lsr 31) land id_mask in
  if sid < Array.length t.sr_gen && Bytes.get t.sr_state sid = st_live && t.sr_gen.(sid) = gen
  then Bytes.set t.sr_state sid st_cancelled

let cancel t h = if h land series_tag <> 0 then cancel_series t h else cancel_event t h

(* -- Periodic series ----------------------------------------------------- *)

let grow_series t =
  let cap = Array.length t.sr_gen in
  t.sr_gen <- Array.append t.sr_gen (Array.make cap 0);
  t.sr_next <- Array.append t.sr_next (free_chain cap cap);
  t.sr_state <- Bytes.cat t.sr_state (Bytes.make cap st_free);
  t.sr_free <- cap

let alloc_series t =
  if t.sr_free = -1 then grow_series t;
  let sid = t.sr_free in
  t.sr_free <- t.sr_next.(sid);
  Bytes.set t.sr_state sid st_live;
  sid

let release_series t sid =
  Bytes.set t.sr_state sid st_free;
  t.sr_gen.(sid) <- (t.sr_gen.(sid) + 1) land id_mask;
  t.sr_next.(sid) <- t.sr_free;
  t.sr_free <- sid

let every t ~period ?(jitter = fun () -> 0.0) action =
  if period <= 0.0 then invalid_arg "Engine.every: period must be positive";
  (* One control slot governs the whole series; each firing re-arms.  The
     slot is reclaimed by the firing that observes the cancellation, so a
     pending wrapper event never outlives its slot. *)
  let sid = alloc_series t in
  let gen = t.sr_gen.(sid) in
  let rec arm () =
    let delay = Float.max 0.0 (period +. jitter ()) in
    ignore (schedule t ~delay fire : handle)
  and fire () =
    if Bytes.get t.sr_state sid = st_cancelled then release_series t sid
    else begin
      action ();
      if Bytes.get t.sr_state sid = st_cancelled then release_series t sid else arm ()
    end
  in
  arm ();
  series_tag lor (gen lsl 31) lor sid

(* -- Execution ----------------------------------------------------------- *)

let step t =
  let eid = q_pop t in
  if eid = -1 then false
  else begin
    let state = Bytes.unsafe_get t.ev_state eid in
    let tick = t.ev_tick.(eid) in
    let code = t.ev_code.(eid) in
    let a = t.ev_a.(eid) in
    let b = t.ev_b.(eid) in
    (* Float.max: [run ~until] may have advanced the clock past this tick's
       quantized float by a sub-tick margin. *)
    t.clock <- Float.max t.clock (time_of_tick tick);
    release_event t eid;
    if state = st_cancelled then begin
      if code = 0 then release_closure t a;
      (match t.meters with
      | Some m ->
          Metrics.Counter.incr m.skipped;
          note_depth t m
      | None -> ())
    end
    else begin
      t.live <- t.live - 1;
      t.n_fired <- t.n_fired + 1;
      t.fp <- (((t.fp lxor tick) * 1099511628211) + code) land max_int;
      Flight.record t.flight ~tick ~code:Flight.ev_fire ~a:code ~b:a;
      (match t.meters with
      | Some m ->
          Metrics.Counter.incr m.fired;
          note_depth t m
      | None -> ());
      if code = 0 then begin
        let f = t.cls.(a) in
        release_closure t a;
        f ()
      end
      else t.handlers.(code) a b
    end;
    true
  end

let run ?until t =
  let continue () =
    let tick = q_min t in
    if tick = max_int then false
    else match until with None -> true | Some limit -> time_of_tick tick <= limit
  in
  while continue () && step t do
    ()
  done;
  match until with Some limit -> t.clock <- Float.max t.clock limit | None -> ()
