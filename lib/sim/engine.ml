module Heap = Smrp_graph.Heap
module Metrics = Smrp_obs.Metrics

type handle = { mutable cancelled : bool }

type event = { handle : handle; action : unit -> unit }

(* Pre-resolved instruments so the per-event cost with observability on is a
   field increment, not a registry lookup. *)
type meters = {
  scheduled : Metrics.Counter.t;
  fired : Metrics.Counter.t;
  skipped : Metrics.Counter.t; (* popped already-cancelled *)
  depth : Metrics.Gauge.t;
}

type t = {
  mutable clock : float;
  queue : event Heap.t;
  obs : Smrp_obs.Obs.t option;
  meters : meters option;
}

let create ?obs () =
  let meters =
    Option.map
      (fun o ->
        let m = Smrp_obs.Obs.metrics o in
        {
          scheduled = Metrics.counter m "engine.events_scheduled";
          fired = Metrics.counter m "engine.events_fired";
          skipped = Metrics.counter m "engine.events_cancelled";
          depth = Metrics.gauge m "engine.queue_depth";
        })
      obs
  in
  { clock = 0.0; queue = Heap.create (); obs; meters }

let obs t = t.obs

let now t = t.clock

let schedule_at t ~time action =
  if time < t.clock then invalid_arg "Engine.schedule_at: time in the past";
  let handle = { cancelled = false } in
  Heap.add t.queue time { handle; action };
  (match t.meters with
  | Some m ->
      Metrics.Counter.incr m.scheduled;
      (* Stamped with sim time so merged gauges resolve by the simulation's
         own clock, not wall-clock or shard order. *)
      Metrics.Gauge.set m.depth ~ts:t.clock (float_of_int (Heap.length t.queue))
  | None -> ());
  handle

let schedule t ~delay action =
  if delay < 0.0 then invalid_arg "Engine.schedule: negative delay";
  schedule_at t ~time:(t.clock +. delay) action

let cancel handle = handle.cancelled <- true

let every t ~period ?(jitter = fun () -> 0.0) action =
  if period <= 0.0 then invalid_arg "Engine.every: period must be positive";
  (* One outer handle controls the whole series; each firing re-arms. *)
  let master = { cancelled = false } in
  let rec arm () =
    let delay = Float.max 0.0 (period +. jitter ()) in
    ignore
      (schedule t ~delay (fun () ->
           if not master.cancelled then begin
             action ();
             if not master.cancelled then arm ()
           end))
  in
  arm ();
  master

let step t =
  match Heap.pop_min t.queue with
  | None -> false
  | Some (time, ev) ->
      t.clock <- time;
      (match t.meters with
      | Some m ->
          Metrics.Gauge.set m.depth ~ts:time (float_of_int (Heap.length t.queue));
          Metrics.Counter.incr (if ev.handle.cancelled then m.skipped else m.fired)
      | None -> ());
      if not ev.handle.cancelled then ev.action ();
      true

let run ?until t =
  let continue () =
    match until with
    | None -> true
    | Some limit -> (
        match Heap.peek_min t.queue with Some (time, _) -> time <= limit | None -> false)
  in
  while continue () && step t do
    ()
  done;
  match until with
  | Some limit when Heap.length t.queue > 0 -> t.clock <- Float.max t.clock limit
  | Some limit when t.clock < limit -> t.clock <- limit
  | _ -> ()

let pending t = Heap.length t.queue
