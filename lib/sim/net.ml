module Graph = Smrp_graph.Graph
module Metrics = Smrp_obs.Metrics
module Trace = Smrp_obs.Trace
module Flight = Smrp_obs.Flight

type meters = {
  m_sent : Metrics.Counter.t;
  m_delivered : Metrics.Counter.t;
  m_lost : Metrics.Counter.t;
  m_dropped_send : Metrics.Counter.t;
  m_dropped_flight : Metrics.Counter.t;
  m_drop_series : Smrp_obs.Series.t; (* drops per sim second, all causes *)
}

(* In-flight frames live in a pooled struct-of-arrays table; delivery is a
   single registered engine code whose payload word is the frame slot, so a
   send allocates nothing (the generic ['msg] column is the one lazily
   created array, reused across frames). *)
type 'msg t = {
  engine : Engine.t;
  graph : Graph.t;
  handler : 'msg t -> at:int -> from:int -> eid:int -> 'msg -> unit;
  on_drop : ('msg -> unit) option;
  link_down : bool array;
  node_down : bool array;
  mutable loss : (Smrp_rng.Rng.t * float) option;
  mutable frames_sent : int;
  mutable frames_delivered : int;
  mutable frames_lost : int;
  mutable dropped_send_failure : int; (* rejected at send: link/endpoint down *)
  mutable dropped_in_flight : int; (* link/endpoint died during propagation *)
  msg_label : ('msg -> string) option;
  msg_int : 'msg -> int; (* packed wire form for flight records; 0 if opaque *)
  flight : Flight.recorder; (* the engine's ring *)
  trace : Trace.t;
  meters : meters option;
  (* frame pool (free list threaded through fr_next) *)
  mutable fr_src : int array;
  mutable fr_dst : int array;
  mutable fr_eid : int array;
  mutable fr_next : int array;
  mutable fr_sent : float array;
  mutable fr_msg : 'msg array; (* length 0 until the first send *)
  mutable fr_free : int;
  mutable deliver_code : int;
}

let frame_cap0 = 64

let free_chain n off = Array.init n (fun i -> if i = n - 1 then -1 else off + i + 1)

let engine t = t.engine

let graph t = t.graph

let link_up t eid = not t.link_down.(eid)

let node_up t v = not t.node_down.(v)

let label t msg = match t.msg_label with Some f -> f msg | None -> "frame"

let meter t f = match t.meters with Some m -> Metrics.Counter.incr (f m) | None -> ()

(* One frame failed to reach its destination (any cause): a point on the
   drops-per-sim-second series. *)
let meter_drop t =
  match t.meters with
  | Some m -> Smrp_obs.Series.observe m.m_drop_series ~ts:(Engine.now t.engine) 1.0
  | None -> ()

(* A frame (or its payload) is gone for good: give the layer above a chance
   to reclaim whatever the message indexes. *)
let[@inline] drop t msg = match t.on_drop with Some f -> f msg | None -> ()

(* Flight record for a wire event: a = the packed message, b = src/dst. *)
let[@inline] flight_record t ~code ~src ~dst msg =
  Flight.record t.flight
    ~tick:(Engine.tick_of_time (Engine.now t.engine))
    ~code ~a:(t.msg_int msg)
    ~b:((src lsl 31) lor dst)

let grow_frames t =
  let cap = Array.length t.fr_src in
  let ext a = Array.append a (Array.make cap 0) in
  t.fr_src <- ext t.fr_src;
  t.fr_dst <- ext t.fr_dst;
  t.fr_eid <- ext t.fr_eid;
  t.fr_next <- Array.append t.fr_next (free_chain cap cap);
  t.fr_sent <- Array.append t.fr_sent (Array.make cap 0.0);
  t.fr_msg <- Array.append t.fr_msg (Array.make cap t.fr_msg.(0));
  t.fr_free <- cap

let[@inline] alloc_frame t msg =
  if Array.length t.fr_msg = 0 then t.fr_msg <- Array.make (Array.length t.fr_src) msg;
  if t.fr_free = -1 then grow_frames t;
  let s = t.fr_free in
  t.fr_free <- t.fr_next.(s);
  s

let[@inline] release_frame t s =
  t.fr_next.(s) <- t.fr_free;
  t.fr_free <- s

let deliver t slot =
  let src = t.fr_src.(slot) in
  let dst = t.fr_dst.(slot) in
  let eid = t.fr_eid.(slot) in
  let sent_at = t.fr_sent.(slot) in
  let msg = t.fr_msg.(slot) in
  release_frame t slot;
  (* The wire may have gone down while the frame was in flight. *)
  if (not t.link_down.(eid)) && (not t.node_down.(src)) && not t.node_down.(dst) then begin
    t.frames_delivered <- t.frames_delivered + 1;
    flight_record t ~code:Flight.net_deliver ~src ~dst msg;
    meter t (fun m -> m.m_delivered);
    if Trace.enabled t.trace then
      Trace.complete t.trace ~ts:sent_at
        ~dur:(Engine.now t.engine -. sent_at)
        ~cat:"net" ~tid:src
        ~args:[ ("dst", Trace.Int dst) ]
        (label t msg);
    t.handler t ~at:dst ~from:src ~eid msg
  end
  else begin
    t.dropped_in_flight <- t.dropped_in_flight + 1;
    flight_record t ~code:Flight.net_drop_flight ~src ~dst msg;
    meter t (fun m -> m.m_dropped_flight);
    meter_drop t;
    if Trace.enabled t.trace then
      Trace.instant t.trace ~ts:(Engine.now t.engine) ~cat:"net" ~tid:src
        ~args:[ ("dst", Trace.Int dst) ]
        ("drop.in_flight:" ^ label t msg);
    drop t msg
  end

let create ?obs ?msg_label ?msg_int ?on_drop engine graph ~handler =
  let obs = match obs with Some _ as o -> o | None -> Engine.obs engine in
  let meters =
    Option.map
      (fun o ->
        let m = Smrp_obs.Obs.metrics o in
        {
          m_sent = Metrics.counter m "net.frames_sent";
          m_delivered = Metrics.counter m "net.frames_delivered";
          m_lost = Metrics.counter m "net.frames_lost";
          m_dropped_send = Metrics.counter m "net.frames_dropped_failure_at_send";
          m_dropped_flight = Metrics.counter m "net.frames_dropped_failure_in_flight";
          m_drop_series = Metrics.series m ~kind:Smrp_obs.Series.Sum "net.frame_drops";
        })
      obs
  in
  let t =
    {
      engine;
      graph;
      handler;
      on_drop;
      link_down = Array.make (Graph.edge_count graph) false;
      node_down = Array.make (Graph.node_count graph) false;
      loss = None;
      frames_sent = 0;
      frames_delivered = 0;
      frames_lost = 0;
      dropped_send_failure = 0;
      dropped_in_flight = 0;
      msg_label;
      msg_int = (match msg_int with Some f -> f | None -> fun _ -> 0);
      flight = Engine.flight engine;
      trace = (match obs with Some o -> Smrp_obs.Obs.trace o | None -> Trace.null);
      meters;
      fr_src = Array.make frame_cap0 0;
      fr_dst = Array.make frame_cap0 0;
      fr_eid = Array.make frame_cap0 0;
      fr_next = free_chain frame_cap0 0;
      fr_sent = Array.make frame_cap0 0.0;
      fr_msg = [||];
      fr_free = 0;
      deliver_code = 0;
    }
  in
  t.deliver_code <- Engine.register engine (fun slot _ -> deliver t slot);
  t

let send t ~src ~dst msg =
  match Graph.edge_between t.graph src dst with
  | None -> invalid_arg "Net.send: nodes not adjacent"
  | Some e ->
      let eid = e.Graph.id in
      if t.link_down.(eid) || t.node_down.(src) || t.node_down.(dst) then begin
        t.dropped_send_failure <- t.dropped_send_failure + 1;
        flight_record t ~code:Flight.net_drop_send ~src ~dst msg;
        meter t (fun m -> m.m_dropped_send);
        meter_drop t;
        if Trace.enabled t.trace then
          Trace.instant t.trace ~ts:(Engine.now t.engine) ~cat:"net" ~tid:src
            ~args:[ ("dst", Trace.Int dst) ]
            ("drop.down:" ^ label t msg);
        drop t msg;
        false
      end
      else begin
        t.frames_sent <- t.frames_sent + 1;
        flight_record t ~code:Flight.net_send ~src ~dst msg;
        meter t (fun m -> m.m_sent);
        let lost =
          match t.loss with
          | Some (rng, rate) when Smrp_rng.Rng.float rng 1.0 < rate ->
              t.frames_lost <- t.frames_lost + 1;
              flight_record t ~code:Flight.net_drop_loss ~src ~dst msg;
              meter t (fun m -> m.m_lost);
              meter_drop t;
              if Trace.enabled t.trace then
                Trace.instant t.trace ~ts:(Engine.now t.engine) ~cat:"net" ~tid:src
                  ~args:[ ("dst", Trace.Int dst) ]
                  ("drop.loss:" ^ label t msg);
              drop t msg;
              true
          | _ -> false
        in
        if not lost then begin
          let slot = alloc_frame t msg in
          t.fr_src.(slot) <- src;
          t.fr_dst.(slot) <- dst;
          t.fr_eid.(slot) <- eid;
          t.fr_sent.(slot) <- Engine.now t.engine;
          t.fr_msg.(slot) <- msg;
          Engine.schedule_code t.engine ~delay:e.Graph.delay ~code:t.deliver_code ~a:slot ~b:0
        end;
        true
      end

let fail_link t eid = t.link_down.(eid) <- true

let fail_node t v = t.node_down.(v) <- true

let restore_link t eid = t.link_down.(eid) <- false

let restore_node t v = t.node_down.(v) <- false

let as_failure t =
  let downs = ref [] in
  Array.iteri (fun i d -> if d then downs := Smrp_core.Failure.Link i :: !downs) t.link_down;
  Array.iteri (fun v d -> if d then downs := Smrp_core.Failure.Node v :: !downs) t.node_down;
  match !downs with [ f ] -> Some f | _ -> None

let set_loss t ~rng ~rate =
  if rate < 0.0 || rate >= 1.0 then invalid_arg "Net.set_loss: rate out of [0, 1)";
  t.loss <- Some (rng, rate)

let frames_sent t = t.frames_sent

let frames_delivered t = t.frames_delivered

let frames_lost t = t.frames_lost

let frames_dropped_failure t = t.dropped_send_failure + t.dropped_in_flight

let counters t =
  [
    ("sent", t.frames_sent);
    ("delivered", t.frames_delivered);
    ("lost", t.frames_lost);
    ("dropped_failure_at_send", t.dropped_send_failure);
    ("dropped_failure_in_flight", t.dropped_in_flight);
  ]
