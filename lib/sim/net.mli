(** Message-passing network over a graph: unicast frames between neighbours
    with per-link propagation delay, plus link/node failure injection.

    Frames in flight when their link or an endpoint fails are dropped at
    delivery time — the receiving interface is down, which is exactly how a
    persistent failure manifests to the protocol above. *)

type 'msg t

val create :
  ?obs:Smrp_obs.Obs.t ->
  ?msg_label:('msg -> string) ->
  ?msg_int:('msg -> int) ->
  ?on_drop:('msg -> unit) ->
  Engine.t ->
  Smrp_graph.Graph.t ->
  handler:('msg t -> at:int -> from:int -> eid:int -> 'msg -> unit) ->
  'msg t
(** [handler] is invoked at delivery time on the receiving node; [eid] is
    the id of the edge the frame arrived on (useful for flat per-link
    state without an edge lookup).

    [msg_int] gives the packed wire form of a message for flight-recorder
    records (sends, deliveries and every drop cause are recorded into the
    engine's ring with operands [(msg_int msg, (src lsl 31) lor dst)]);
    opaque messages record 0.

    [on_drop] is called with the message of every frame that will never be
    delivered — rejected at send time, Bernoulli-lost, or killed in flight
    — so layers that index side payloads by message can reclaim them.

    [obs] defaults to the engine's context ({!Engine.obs}); when present the
    net maintains [net.frames_*] counters and, when its trace sink is live,
    emits one trace event per frame (a complete span over the propagation
    delay on delivery, an instant on any drop), named by [msg_label]
    (default ["frame"]) and placed on the sending node's track. *)

val engine : 'msg t -> Engine.t

val graph : 'msg t -> Smrp_graph.Graph.t

val send : 'msg t -> src:int -> dst:int -> 'msg -> bool
(** Send over the (existing) link [src]–[dst]; returns whether the frame was
    put on the wire (i.e. the link and both endpoints were up at send time).
    Raises [Invalid_argument] if the nodes are not adjacent. *)

val fail_link : 'msg t -> int -> unit
(** Take an edge down (by id). *)

val fail_node : 'msg t -> int -> unit
(** Kill a router: all its incident links stop delivering. *)

val restore_link : 'msg t -> int -> unit

val restore_node : 'msg t -> int -> unit

val link_up : 'msg t -> int -> bool

val node_up : 'msg t -> int -> bool

val as_failure : 'msg t -> Smrp_core.Failure.t option
(** The current failure scenario, when exactly one component is down —
    convenience for driving the core library's detour computations from
    simulator state. *)

val set_loss : 'msg t -> rng:Smrp_rng.Rng.t -> rate:float -> unit
(** Bernoulli frame loss: each frame is dropped at delivery with probability
    [rate] (drawn from [rng], so runs stay reproducible).  Models the
    transient losses the soft-state machinery (§3.2) must absorb. *)

val frames_sent : 'msg t -> int
(** Total frames accepted onto a wire: the control-overhead metric. *)

val frames_delivered : 'msg t -> int
(** Frames that reached their destination's handler. *)

val frames_lost : 'msg t -> int
(** Frames dropped by the Bernoulli loss process (not by failures). *)

val frames_dropped_failure : 'msg t -> int
(** Frames dropped because a link or endpoint was down — rejected at send
    time or killed in flight — as opposed to Bernoulli loss. *)

val counters : 'msg t -> (string * int) list
(** Frame accounting by outcome: [sent], [delivered], [lost] (Bernoulli),
    [dropped_failure_at_send], [dropped_failure_in_flight].  [sent] counts
    frames accepted onto a wire, so
    [sent = delivered + lost + dropped_failure_in_flight + in-flight] and
    send-time failure drops are outside [sent]. *)
