(* Hierarchical timer wheel over the scaled-int sim clock.

   Layout: [levels] levels of [wheel_size] slots.  Level [l] has slot width
   [w_l = wheel_size^l] ticks and span [wheel_size^(l+1)]; an entry at
   absolute tick T lives at level [l] slot [(T lsr (slot_bits*l)) land mask]
   where [l] is the smallest level whose span exceeds [T - hand].  [hand] is
   a lower bound on the minimum pending tick (not the engine clock): it
   moves down only when an [add] lands below it, and up when the min search
   proves a tighter bound.  Ticks beyond the top level's span go to an
   unsorted overflow list scanned for its min (rare by construction: the
   horizon is ~3436 simulated seconds at the engine's 100 ns tick).

   Slot lists are singly linked through a parallel-array entry pool; a
   per-level occupancy bitmap makes the min search O(levels) bit scans
   rather than a slot walk.  Level-0 slots stay sorted by [seq] so that
   equal-tick entries pop in scheduling order: direct adds are seq-monotone
   and append at the tail, and the rare cascade that would break tail order
   triggers an insertion re-sort of that one slot.

   Two invariants carry the min search:

   - INV0: every level-0 entry satisfies [tick < hand + wheel_size].  This
     makes the level-0 slot interpretation exact (each slot holds a single
     tick value and its position relative to the hand's slot determines
     which 32-tick window it is in).  Placements establish it, raising the
     hand preserves it, and the one operation that can break it — an [add]
     below the current hand — re-places all level-0 entries.
   - INV1: for every level >= 1 the slot containing [hand] is empty, so the
     search may start strictly after the hand's slot index and read a
     lagging index as next-window.  Exact placements cannot land in the
     hand's slot (such a delta would fit a lower level); [fixup] cascades
     any slot the hand moves into.

   Higher-level slot starts computed from a stale hand are lower bounds on
   the true start, so a premature cascade is safe: entries are simply
   re-placed (possibly one level up, where their placement becomes exact
   relative to the tightened hand) and the search repeats. *)

let slot_bits = 5
let wheel_size = 1 lsl slot_bits (* 32 *)
let mask = wheel_size - 1
let levels = 7
let horizon = 1 lsl (slot_bits * levels) (* 32^7 ticks *)

type t = {
  (* entry pool: parallel arrays linked through [enext]; [free] heads the
     free list (threaded through [enext] as well) *)
  mutable etick : int array;
  mutable eseq : int array;
  mutable eeid : int array;
  mutable enext : int array;
  mutable free : int;
  mutable cap : int;
  (* slot ring: [head]/[tail] indexed by [level * wheel_size + slot] *)
  head : int array;
  tail : int array;
  bits : int array; (* per-level occupancy bitmap *)
  mutable overflow : int; (* unsorted list of beyond-horizon entries *)
  mutable hand : int; (* lower bound on the min pending tick *)
  mutable n : int;
}

let create () =
  let cap = 64 in
  {
    etick = Array.make cap 0;
    eseq = Array.make cap 0;
    eeid = Array.make cap 0;
    enext = Array.init cap (fun i -> if i = cap - 1 then -1 else i + 1);
    free = 0;
    cap;
    head = Array.make (levels * wheel_size) (-1);
    tail = Array.make (levels * wheel_size) (-1);
    bits = Array.make levels 0;
    overflow = -1;
    hand = 0;
    n = 0;
  }

let length t = t.n

let grow t =
  let ncap = t.cap * 2 in
  let ext a = Array.append a (Array.make t.cap 0) in
  t.etick <- ext t.etick;
  t.eseq <- ext t.eseq;
  t.eeid <- ext t.eeid;
  t.enext <- ext t.enext;
  for i = t.cap to ncap - 1 do
    t.enext.(i) <- (if i = ncap - 1 then -1 else i + 1)
  done;
  t.free <- t.cap;
  t.cap <- ncap

let[@inline] alloc t =
  if t.free = -1 then grow t;
  let e = t.free in
  t.free <- t.enext.(e);
  e

let[@inline] release t e =
  t.enext.(e) <- t.free;
  t.free <- e

(* Count trailing zeros of a non-zero value that fits 32 bits, via de
   Bruijn multiplication. *)
let ctz_table =
  let tab = Array.make 32 0 in
  let db = 0x077CB531 in
  for i = 0 to 31 do
    tab.(((db lsl i) land 0xFFFFFFFF) lsr 27) <- i
  done;
  tab

let[@inline] ctz b = ctz_table.((((b land -b) * 0x077CB531) land 0xFFFFFFFF) lsr 27)

(* Insertion-sort a level-0 slot list by [seq]; slots are tiny and this
   runs only when a cascade appended out of scheduling order. *)
let sort_slot t s =
  let sorted = ref (-1) in
  let e = ref t.head.(s) in
  while !e <> -1 do
    let nxt = t.enext.(!e) in
    let sq = t.eseq.(!e) in
    if !sorted = -1 || sq < t.eseq.(!sorted) then begin
      t.enext.(!e) <- !sorted;
      sorted := !e
    end
    else begin
      let p = ref !sorted in
      while t.enext.(!p) <> -1 && t.eseq.(t.enext.(!p)) < sq do
        p := t.enext.(!p)
      done;
      t.enext.(!e) <- t.enext.(!p);
      t.enext.(!p) <- !e
    end;
    e := nxt
  done;
  t.head.(s) <- !sorted;
  let tl = ref !sorted in
  while !tl <> -1 && t.enext.(!tl) <> -1 do
    tl := t.enext.(!tl)
  done;
  t.tail.(s) <- !tl

(* Place entry [e] (tick/seq/eid already set) relative to [t.hand]. *)
let place t e =
  let tick = t.etick.(e) in
  let delta = tick - t.hand in
  if delta >= horizon then begin
    t.enext.(e) <- t.overflow;
    t.overflow <- e
  end
  else begin
    (* smallest level whose span (wheel_size^(l+1)) exceeds delta *)
    let l = ref 0 in
    let span = ref wheel_size in
    while delta >= !span do
      incr l;
      span := !span lsl slot_bits
    done;
    let l = !l in
    let s = (l lsl slot_bits) lor ((tick lsr (slot_bits * l)) land mask) in
    t.enext.(e) <- -1;
    let tl = t.tail.(s) in
    if tl = -1 then begin
      t.head.(s) <- e;
      t.tail.(s) <- e;
      t.bits.(l) <- t.bits.(l) lor (1 lsl (s land mask))
    end
    else begin
      t.enext.(tl) <- e;
      t.tail.(s) <- e;
      (* level-0 slots must stay seq-sorted for FIFO pops *)
      if l = 0 && t.eseq.(tl) > t.eseq.(e) then sort_slot t s
    end
  end

(* Detach slot [s] of level [l] and re-place each entry relative to the
   current [hand]. *)
let cascade t l s =
  let e = ref t.head.(s) in
  t.head.(s) <- -1;
  t.tail.(s) <- -1;
  t.bits.(l) <- t.bits.(l) land lnot (1 lsl (s land mask));
  while !e <> -1 do
    let nxt = t.enext.(!e) in
    place t !e;
    e := nxt
  done

(* Re-establish INV1 after the hand moved: empty the hand's slot at every
   higher level.  Cascaded entries re-place exactly relative to the current
   hand and exact placements never land in the hand's slot, so one top-down
   sweep suffices. *)
let fixup t =
  for l = levels - 1 downto 1 do
    let i = (t.hand lsr (slot_bits * l)) land mask in
    if t.bits.(l) land (1 lsl i) <> 0 then cascade t l ((l lsl slot_bits) lor i)
  done

(* Move overflow entries now within the horizon into the wheel. *)
let drain_overflow t =
  let keep = ref (-1) in
  let e = ref t.overflow in
  t.overflow <- -1;
  while !e <> -1 do
    let nxt = t.enext.(!e) in
    if t.etick.(!e) - t.hand < horizon then place t !e
    else begin
      t.enext.(!e) <- !keep;
      keep := !e
    end;
    e := nxt
  done;
  t.overflow <- !keep

let add t ~tick ~seq ~eid =
  if t.n = 0 then t.hand <- tick
  else if tick < t.hand then begin
    (* Lowering the hand invalidates INV0 (level-0 windows) and possibly
       INV1; re-place the level-0 population and sweep the hand's slots.
       Rare: the facade only schedules at or after the sim clock, so this
       fires only before the first run or after an over-tightened search. *)
    t.hand <- tick;
    let b = ref t.bits.(0) in
    while !b <> 0 do
      let i = ctz !b in
      b := !b land (!b - 1);
      cascade t 0 i
    done;
    fixup t
  end;
  let e = alloc t in
  t.etick.(e) <- tick;
  t.eseq.(e) <- seq;
  t.eeid.(e) <- eid;
  t.n <- t.n + 1;
  place t e

(* Find the minimum pending tick, cascading higher-level slots down until
   the minimum lives at level 0.  Returns [max_int] when empty. *)
let rec find_min t =
  if t.n = 0 then max_int
  else begin
    (* Level-0 candidate: first occupied slot cyclically from the hand's
       slot; indices below it hold the next 32-tick window (exact under
       INV0). *)
    let idx0 = t.hand land mask in
    let base0 = t.hand - idx0 in
    let b0 = t.bits.(0) in
    let cand0 =
      if b0 = 0 then max_int
      else
        let hi = b0 land (-1 lsl idx0) in
        if hi <> 0 then base0 + ctz hi else base0 + wheel_size + ctz b0
    in
    (* Higher levels: interpreted start of the first occupied slot strictly
       after the hand's slot index (empty under INV1); a stale hand can
       only under-estimate the start, which is safe. *)
    let best_s = ref max_int and best_l = ref (-1) and best_slot = ref (-1) in
    for l = 1 to levels - 1 do
      let b = t.bits.(l) in
      if b <> 0 then begin
        let shift = slot_bits * l in
        let cur = (t.hand lsr shift) land mask in
        let hi = if cur = mask then 0 else b land (-1 lsl (cur + 1)) in
        let i, wrapped = if hi <> 0 then (ctz hi, 0) else (ctz b, wheel_size) in
        let slot_num = (t.hand asr shift) - cur + wrapped + i in
        let s = slot_num lsl shift in
        if s < !best_s then begin
          best_s := s;
          best_l := l;
          best_slot := (l lsl slot_bits) lor i
        end
      end
    done;
    let omin = ref max_int in
    let e = ref t.overflow in
    while !e <> -1 do
      if t.etick.(!e) < !omin then omin := t.etick.(!e);
      e := t.enext.(!e)
    done;
    if cand0 < !best_s && cand0 < !omin then begin
      (* cand0 is the exact min; tightening the hand to it cannot land in
         an occupied higher slot (its interpreted start would have bounded
         best_s by cand0). *)
      t.hand <- cand0;
      cand0
    end
    else begin
      t.hand <- min cand0 (min !best_s !omin);
      if !omin <= !best_s then drain_overflow t
      else cascade t !best_l !best_slot;
      fixup t;
      find_min t
    end
  end

let min_tick t = find_min t

let pop_min t =
  let tick = find_min t in
  if tick = max_int then -1
  else begin
    let s = tick land mask in
    let e = t.head.(s) in
    let nxt = t.enext.(e) in
    t.head.(s) <- nxt;
    if nxt = -1 then begin
      t.tail.(s) <- -1;
      t.bits.(0) <- t.bits.(0) land lnot (1 lsl s)
    end;
    let eid = t.eeid.(e) in
    release t e;
    t.n <- t.n - 1;
    t.hand <- tick;
    eid
  end
