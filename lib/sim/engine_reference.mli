(** Reference event queue for the simulation engine: a binary heap ordered
    lexicographically by [(tick, seq)].

    This is the retained descendant of the original float-keyed heap engine,
    re-keyed on the scaled-int simulation clock so that it is directly
    comparable with {!Engine_wheel}: for any schedule/cancel workload the two
    queues must pop the exact same [(tick, seq)] sequence.  The {!Engine}
    facade uses it as the differential-testing oracle ([`Reference]). *)

type t

val create : unit -> t

val add : t -> tick:int -> seq:int -> eid:int -> unit
(** Insert event [eid] at [tick].  [seq] is the globally unique, monotone
    scheduling sequence number used to order equal ticks FIFO. *)

val min_tick : t -> int
(** Tick of the earliest pending entry; [max_int] when empty. *)

val pop_min : t -> int
(** Remove and return the [eid] with the smallest [(tick, seq)]; [-1] when
    empty. *)

val length : t -> int
