(** Packet-level SMRP: every control interaction of §3.2 — explicit
    [Join_Req]/[Leave_Req] signalling hop by hop, soft-state tree maintenance
    with periodic refreshes and expiry, hello-based liveness, periodic data
    from the source — driven by the {!Engine} over a {!Net}.

    Path {e selection} uses the same full-topology computation the paper
    assumes of members (§3.2.2, "we assume that NR has knowledge of the
    network topology"); everything that determines {e latency} — detection,
    signalling propagation, state installation, data resumption — happens
    through timed messages.

    The restoration-latency experiment this enables mirrors the paper's
    motivation ([25]): a PIM-style member must wait for unicast
    reconvergence ([ospf_convergence]) before its global re-join, while an
    SMRP member signals its local detour as soon as starvation is
    detected. *)

type recovery_strategy = Local | Global

type join_mode =
  | Oracle  (** Full topology knowledge, as §3.2.2 assumes of members. *)
  | Query_scheme
      (** The §3.3.1 message exchange: the joiner queries through its
          neighbours, each query travels the neighbour's unicast path until
          the first on-tree node, which answers with its SHR; after
          [query_timeout] the joiner selects among the answers (degrading to
          the full-knowledge join when none arrived). *)

type config = {
  hello_period : float;
  hello_dead_factor : float;  (** Missed-hello multiplier declaring a link dead. *)
  refresh_period : float;
  hold_factor : float;  (** Soft-state lifetime in refresh periods. *)
  data_period : float;
  starvation_factor : float;  (** Data silence (in data periods) before a member
                                  declares disruption. *)
  ospf_convergence : float;  (** Unicast reconvergence time gating global re-joins. *)
  strategy : recovery_strategy;
  join_mode : join_mode;
  query_timeout : float;  (** How long a query-scheme joiner collects answers. *)
  reshape_period : float option;
      (** Condition-II timer (§3.2.3): when set, every member periodically
          re-runs path selection and switches make-before-break (join the
          new upstream, then prune the old).  Disabled while a failure is
          being recovered.  [None] (default) disables reshaping. *)
  d_thresh : float;
}

val default_config : config
(** Periods in simulated seconds: hello 1.0 (dead at 3.5), refresh 5.0 (hold
    3×), data 0.1 (starvation at 5×), OSPF convergence 5.0, local recovery,
    oracle joins (query timeout 2.0 when enabled), [D_thresh] 0.3. *)

type msg
(** Wire message, packed into one int: a 3-bit type tag plus either an
    immediate payload (data sequence number) or an index into an internal
    side pool holding the variable-length part (join / query paths).
    Opaque to callers — inspect traffic through {!message_breakdown} or the
    [proto.sent.*] counters. *)

type member_report = {
  member : int;
  detected : float option;
      (** Failure-to-detection delay; [None] when never disrupted. *)
  restored : float option;
      (** Failure-to-restoration delay; [None] when never disrupted {e or}
          never restored (e.g. the failure isolated the member). *)
  data_received : int;
}

type t

val create :
  ?config:config -> ?obs:Smrp_obs.Obs.t -> Engine.t -> Smrp_graph.Graph.t -> source:int -> t
(** [obs] defaults to the engine's context ({!Engine.obs}) and is passed on
    to the {!Net} the protocol creates.  When present, the protocol keeps
    per-type [proto.sent.*] counters and [recovery.phase.*] histograms in
    the metrics registry, and — when the trace sink is live — emits
    recovery spans (one per disrupted member, on the member's track) plus
    instants for the failure, detection, detour signalling, merge-node
    installation, first data, query finalisation and reshape switches. *)

val net : t -> msg Net.t

val tree : t -> Smrp_core.Tree.t
(** The control-plane view of the tree (kept in lock-step with the
    distributed state as joins complete). *)

val join : t -> int -> unit
(** Schedule a member's join now (selection per the session's protocol,
    signalling hop-by-hop). *)

val leave : t -> int -> unit

val start : t -> unit
(** Arm the source's data stream and all periodic machinery. *)

val inject_link_failure : t -> int -> unit
(** Fail an edge now; members detect and recover per the configured
    strategy. *)

val reports : t -> member_report list
(** Per-member disruption accounting (call after running the engine). *)

val control_messages : t -> int
(** Control frames sent so far (everything except [Data]). *)

val data_messages : t -> int

val message_breakdown : t -> (string * int) list
(** Frames sent so far by type: hello, join_req, refresh, prune, data —
    the §3.3.2 overhead accounting. *)

val timeline : t -> Smrp_obs.Timeline.episode list
(** Recovery-episode milestones per disrupted member, always recorded
    (failure → detection → detour signal → installation → first data);
    the per-phase decomposition behind {!reports}'s two scalars. *)

val phase_table : t -> string
(** {!timeline} rendered as a fixed-width per-member phase table. *)
