module Graph = Smrp_graph.Graph
module Tree = Smrp_core.Tree
module Spf = Smrp_core.Spf
module Smrp = Smrp_core.Smrp
module Failure = Smrp_core.Failure
module Recovery = Smrp_core.Recovery
module Reshape = Smrp_core.Reshape
module Metrics = Smrp_obs.Metrics
module Trace = Smrp_obs.Trace
module Timeline = Smrp_obs.Timeline

type recovery_strategy = Local | Global

type join_mode = Oracle | Query_scheme

type config = {
  hello_period : float;
  hello_dead_factor : float;
  refresh_period : float;
  hold_factor : float;
  data_period : float;
  starvation_factor : float;
  ospf_convergence : float;
  strategy : recovery_strategy;
  join_mode : join_mode;
  query_timeout : float;
  reshape_period : float option;
      (* Condition-II timer (§3.2.3); [None] disables reshaping. *)
  d_thresh : float;
}

let default_config =
  {
    hello_period = 1.0;
    hello_dead_factor = 3.5;
    refresh_period = 5.0;
    hold_factor = 3.0;
    data_period = 0.1;
    starvation_factor = 5.0;
    ospf_convergence = 5.0;
    strategy = Local;
    join_mode = Oracle;
    query_timeout = 2.0;
    reshape_period = None;
    d_thresh = 0.3;
  }

type msg =
  | Hello
  | Join_req of { requester : int; remaining : int list }
  | Query of { requester : int; path : int list (* requester-first, including self hops *) }
  | Query_resp of { shr : int; tree_delay : float; path : int list; back : int list }
  | Refresh
  | Prune
  | Data of { seq : int }

type node_state = {
  mutable member : bool;
  mutable parent : int option;
  children : (int, float) Hashtbl.t; (* child -> soft-state expiry *)
  hello_seen : (int, float) Hashtbl.t;
  mutable last_data : float;
  mutable last_forwarded_seq : int;
  mutable data_received : int;
  mutable recovering : bool;
  mutable query_responses : (int * float * int list) list;
      (* (SHR, merge tree delay, path requester..merge) collected while a
         query-scheme join is pending *)
  mutable attach : int list; (* stored hops towards the merge node, for
                                 periodic join refresh (PIM-style) *)
  mutable disrupted_at : float option;
  mutable last_attempt : float;
  mutable restored_at : float option;
}

type member_report = {
  member : int;
  detected : float option;
  restored : float option;
  data_received : int;
}

(* Pre-resolved instruments (message counters by type, recovery-phase
   histograms) so the hot send path pays one increment when metrics are on. *)
type meters = {
  p_hello : Metrics.Counter.t;
  p_query : Metrics.Counter.t;
  p_join : Metrics.Counter.t;
  p_refresh : Metrics.Counter.t;
  p_prune : Metrics.Counter.t;
  p_data : Metrics.Counter.t;
  h_phase : (Timeline.phase * Metrics.Histogram.t) list;
  h_total : Metrics.Histogram.t;
  (* Quantile sketches beside the decade histograms: per-episode recovery
     latency (detection -> first data) and its per-phase breakdown. *)
  q_phase : (Timeline.phase * Smrp_obs.Sketch.t) list;
  q_total : Smrp_obs.Sketch.t;
  s_disrupted : Smrp_obs.Series.t; (* members currently disrupted, over sim time *)
}

type t = {
  engine : Engine.t;
  config : config;
  graph : Graph.t;
  source : int;
  mutable net : msg Net.t option; (* set right after creation *)
  nodes : node_state array;
  mutable tree : Tree.t;
  mutable failure : Failure.t option;
  mutable failure_time : float;
  mutable control_sent : int;
  mutable data_sent : int;
  mutable hello_sent : int;
  mutable query_sent : int;
  mutable join_sent : int;
  mutable refresh_sent : int;
  mutable prune_sent : int;
  mutable next_seq : int;
  mutable disrupted_now : int; (* members detected-but-not-yet-restored *)
  timeline : Timeline.recorder;
  trace : Trace.t;
  meters : meters option;
}

let net t = Option.get t.net

let tree t = t.tree

let fresh_node () =
  {
    member = false;
    parent = None;
    children = Hashtbl.create 4;
    hello_seen = Hashtbl.create 4;
    last_data = neg_infinity;
    last_forwarded_seq = -1;
    data_received = 0;
    recovering = false;
    query_responses = [];
    attach = [];
    disrupted_at = None;
    last_attempt = neg_infinity;
    restored_at = None;
  }

let msg_label = function
  | Hello -> "hello"
  | Join_req _ -> "join_req"
  | Query _ -> "query"
  | Query_resp _ -> "query_resp"
  | Refresh -> "refresh"
  | Prune -> "prune"
  | Data _ -> "data"

let send t ~src ~dst msg =
  let m = t.meters in
  let meter f = match m with Some m -> Metrics.Counter.incr (f m) | None -> () in
  (match msg with
  | Data _ ->
      t.data_sent <- t.data_sent + 1;
      meter (fun m -> m.p_data)
  | Hello ->
      t.control_sent <- t.control_sent + 1;
      t.hello_sent <- t.hello_sent + 1;
      meter (fun m -> m.p_hello)
  | Query _ | Query_resp _ ->
      t.control_sent <- t.control_sent + 1;
      t.query_sent <- t.query_sent + 1;
      meter (fun m -> m.p_query)
  | Join_req _ ->
      t.control_sent <- t.control_sent + 1;
      t.join_sent <- t.join_sent + 1;
      meter (fun m -> m.p_join)
  | Refresh ->
      t.control_sent <- t.control_sent + 1;
      t.refresh_sent <- t.refresh_sent + 1;
      meter (fun m -> m.p_refresh)
  | Prune ->
      t.control_sent <- t.control_sent + 1;
      t.prune_sent <- t.prune_sent + 1;
      meter (fun m -> m.p_prune));
  ignore (Net.send (net t) ~src ~dst msg)

let hold_time t = t.config.hold_factor *. t.config.refresh_period

(* Distributed on-tree test: the node believes it has an upstream. *)
let dist_on_tree t v = v = t.source || t.nodes.(v).parent <> None

let rec maybe_prune t v =
  let st = t.nodes.(v) in
  if v <> t.source && (not st.member) && Hashtbl.length st.children = 0 then begin
    match st.parent with
    | Some p ->
        st.parent <- None;
        send t ~src:v ~dst:p Prune
    | None -> ()
  end

and handle t ~at ~from msg =
  let st = t.nodes.(at) in
  let now = Engine.now t.engine in
  match msg with
  | Hello -> Hashtbl.replace st.hello_seen from now
  | Refresh -> Hashtbl.replace st.children from (now +. hold_time t)
  | Prune ->
      Hashtbl.remove st.children from;
      maybe_prune t at
  | Query { requester; path } ->
      if at <> requester && not (List.mem at path) then begin
        if dist_on_tree t at && Tree.is_on_tree t.tree at then begin
          (* First on-tree node met: answer with the (deferred, 3.3.2) SHR
             and route the response back along the traversed path. *)
          match List.rev path with
          | back_first :: back_rest ->
              send t ~src:at ~dst:back_first
                (Query_resp
                   {
                     shr = Tree.shr t.tree at;
                     tree_delay = Tree.delay_to_source t.tree at;
                     path = path @ [ at ];
                     back = back_rest;
                   })
          | [] -> ()
        end
        else begin
          (* Forward along our unicast next hop towards the source. *)
          match Smrp_graph.Dijkstra.shortest_path t.graph ~src:at ~dst:t.source with
          | Some (_, _ :: next :: _, _) when (not (List.mem next path)) && next <> requester ->
              send t ~src:at ~dst:next (Query { requester; path = path @ [ at ] })
          | _ -> ()
        end
      end
  | Query_resp { shr; tree_delay; path; back } -> begin
      match back with
      | next :: rest -> send t ~src:at ~dst:next (Query_resp { shr; tree_delay; path; back = rest })
      | [] -> st.query_responses <- (shr, tree_delay, path) :: st.query_responses
    end
  | Join_req { requester; remaining } -> begin
      Hashtbl.replace st.children from (now +. hold_time t);
      match remaining with
      | [] ->
          (* We are the merge node: the requester's forwarding state is now
             installed along the whole attach path. *)
          Timeline.note_installed t.timeline ~member:requester ~ts:now;
          if Trace.enabled t.trace then
            Trace.instant t.trace ~ts:now ~cat:"proto" ~tid:requester
              ~args:[ ("merge", Trace.Int at) ]
              "join.installed"
      | next :: rest ->
          (* Forward when we have no upstream — or when our upstream is
             stale (no data for a starvation window): a disconnected relay
             must adopt the detour rather than black-hole the re-join. *)
          let starving =
            now -. st.last_data > t.config.starvation_factor *. t.config.data_period
          in
          if (not (dist_on_tree t at)) || (at <> t.source && starving) then begin
            st.parent <- Some next;
            send t ~src:at ~dst:next (Join_req { requester; remaining = rest })
          end
    end
  | Data { seq } ->
      st.last_data <- now;
      if st.member then begin
        st.data_received <- st.data_received + 1;
        match (st.disrupted_at, st.restored_at) with
        | Some _, None ->
            st.restored_at <- Some now;
            st.recovering <- false;
            t.disrupted_now <- t.disrupted_now - 1;
            Timeline.note_first_data t.timeline ~member:at ~ts:now;
            (match t.meters with
            | Some m ->
                Smrp_obs.Series.observe m.s_disrupted ~ts:now (float_of_int t.disrupted_now)
            | None -> ());
            (match (t.meters, Timeline.episode t.timeline at) with
            | Some m, Some ep ->
                List.iter
                  (fun (phase, dur) ->
                    match dur with
                    | Some d ->
                        Option.iter (fun h -> Metrics.Histogram.observe h d)
                          (List.assoc_opt phase m.h_phase);
                        Option.iter (fun q -> Smrp_obs.Sketch.observe q d)
                          (List.assoc_opt phase m.q_phase)
                    | None -> ())
                  (Timeline.phase_durations ep);
                Option.iter
                  (fun d ->
                    Metrics.Histogram.observe m.h_total d;
                    Smrp_obs.Sketch.observe m.q_total d)
                  (Timeline.total ep)
            | _ -> ());
            if Trace.enabled t.trace then begin
              Trace.instant t.trace ~ts:now ~cat:"recovery" ~tid:at "first_data";
              Trace.end_span t.trace ~ts:now ~tid:at "recovery"
            end
        | _ -> ()
      end;
      (* Forward fresh packets only: duplicates (transient double
         attachment) and loops die here. *)
      if seq > st.last_forwarded_seq then begin
        st.last_forwarded_seq <- seq;
        let expired = ref [] in
        Hashtbl.iter
          (fun child expiry ->
            if expiry < now then expired := child :: !expired
            else if child <> from then send t ~src:at ~dst:child (Data { seq }))
          st.children;
        List.iter (Hashtbl.remove st.children) !expired;
        if !expired <> [] then maybe_prune t at
      end

let create ?(config = default_config) ?obs engine graph ~source =
  let obs = match obs with Some _ as o -> o | None -> Engine.obs engine in
  let meters =
    Option.map
      (fun o ->
        let m = Smrp_obs.Obs.metrics o in
        let phase_histogram p =
          (* 1 ms .. 100 s in decades comfortably spans the default periods
             (data 0.1 s, hello 1 s, OSPF reconvergence 5 s). *)
          (p, Metrics.histogram m ~base:10.0 ~lowest:1e-3 ~count:6
                ("recovery.phase." ^ String.map (function ' ' -> '_' | c -> c) (Timeline.phase_name p)))
        in
        {
          p_hello = Metrics.counter m "proto.sent.hello";
          p_query = Metrics.counter m "proto.sent.query";
          p_join = Metrics.counter m "proto.sent.join_req";
          p_refresh = Metrics.counter m "proto.sent.refresh";
          p_prune = Metrics.counter m "proto.sent.prune";
          p_data = Metrics.counter m "proto.sent.data";
          h_phase = List.map phase_histogram Timeline.phases;
          h_total = Metrics.histogram m ~base:10.0 ~lowest:1e-3 ~count:6 "recovery.total";
          q_phase =
            List.map
              (fun p ->
                ( p,
                  Metrics.sketch m
                    ("recovery.phase."
                    ^ String.map (function ' ' -> '_' | c -> c) (Timeline.phase_name p)
                    ^ ".q") ))
              Timeline.phases;
          q_total = Metrics.sketch m "recovery.total.q";
          s_disrupted = Metrics.series m ~kind:Smrp_obs.Series.Last "proto.members_disrupted";
        })
      obs
  in
  let t =
    {
      engine;
      config;
      graph;
      source;
      net = None;
      nodes = Array.init (Graph.node_count graph) (fun _ -> fresh_node ());
      tree = Tree.create graph ~source;
      failure = None;
      failure_time = nan;
      control_sent = 0;
      data_sent = 0;
      hello_sent = 0;
      query_sent = 0;
      join_sent = 0;
      refresh_sent = 0;
      prune_sent = 0;
      next_seq = 0;
      disrupted_now = 0;
      timeline = Timeline.create ();
      trace = (match obs with Some o -> Smrp_obs.Obs.trace o | None -> Trace.null);
      meters;
    }
  in
  let net =
    Net.create ?obs ~msg_label engine graph ~handler:(fun _ ~at ~from msg -> handle t ~at ~from msg)
  in
  t.net <- Some net;
  t

(* Issue a Join_req along an attach path given merge-node-first (as the core
   library produces them). *)
let signal_join t ~requester ~attach_nodes =
  let now = Engine.now t.engine in
  match List.rev attach_nodes with
  | [] | [ _ ] ->
      (* Already attached: nothing to signal, the "installation" is
         instantaneous for the recovery timeline. *)
      Timeline.note_signalled t.timeline ~member:requester ~ts:now;
      Timeline.note_installed t.timeline ~member:requester ~ts:now
  | me :: next :: rest ->
      assert (me = requester);
      let st = t.nodes.(requester) in
      if st.parent = None && requester <> t.source then st.parent <- Some next;
      st.attach <- next :: rest;
      Timeline.note_signalled t.timeline ~member:requester ~ts:now;
      if Trace.enabled t.trace then
        Trace.instant t.trace ~ts:now ~cat:"proto" ~tid:requester
          ~args:[ ("hops", Trace.Int (List.length rest + 1)) ]
          "join.signal";
      send t ~src:requester ~dst:next (Join_req { requester; remaining = rest })

(* Full-knowledge path selection (§3.2.2): min-SHR for SMRP, unicast
   shortest path for the PIM baseline. *)
let oracle_join t m =
  let attach_nodes, attach_edges =
    match t.config.strategy with
    | Local -> begin
        if Tree.is_on_tree t.tree m then ([ m ], [])
        else
          match Smrp.spf_distance t.tree m with
          | None -> invalid_arg "Protocol.join: source unreachable"
          | Some spf_dist -> begin
              match
                Smrp.select ~d_thresh:t.config.d_thresh ~spf_distance:spf_dist
                  (Smrp.candidates t.tree ~joiner:m)
              with
              | Some c -> (c.Smrp.attach_nodes, c.Smrp.attach_edges)
              | None -> invalid_arg "Protocol.join: no connection to the tree"
            end
      end
    | Global -> Spf.attach_path t.tree m
  in
  (match (attach_nodes, attach_edges) with
  | [ _ ], [] -> ()
  | nodes, edges -> Tree.graft t.tree ~nodes ~edges);
  if not (Tree.is_member t.tree m) then Tree.add_member t.tree m;
  signal_join t ~requester:m ~attach_nodes

(* Turn a collected query response into a candidate the selection criterion
   understands. *)
let candidate_of_response t (shr, tree_delay, path) =
  let rec edges_of = function
    | a :: (b :: _ as rest) -> (
        match Graph.edge_between t.graph a b with
        | Some e -> e.Graph.id :: edges_of rest
        | None -> invalid_arg "Protocol: query path not a walk")
    | _ -> []
  in
  let edges = edges_of path in
  let attach_delay =
    List.fold_left (fun acc eid -> acc +. (Graph.edge t.graph eid).Graph.delay) 0.0 edges
  in
  match List.rev path with
  | merge :: _ ->
      {
        Smrp.merge;
        attach_nodes = List.rev path;
        attach_edges = List.rev edges;
        attach_delay;
        total_delay = attach_delay +. tree_delay;
        shr;
      }
  | [] -> invalid_arg "Protocol: empty query path"

let finalize_query_join t m =
  let st = t.nodes.(m) in
  if st.member && st.attach = [] && not (Tree.is_on_tree t.tree m) then begin
    let responses = st.query_responses in
    st.query_responses <- [];
    if Trace.enabled t.trace then
      Trace.instant t.trace ~ts:(Engine.now t.engine) ~cat:"proto" ~tid:m
        ~args:[ ("responses", Trace.Int (List.length responses)) ]
        "query.finalize";
    let graftable c =
      (* The merge node must still be on-tree and the interior still off-tree
         (another join may have raced us during the query round trip). *)
      match c.Smrp.attach_nodes with
      | merge :: interior_and_self ->
          Tree.is_on_tree t.tree merge
          && List.for_all
               (fun v -> v = m || not (Tree.is_on_tree t.tree v))
               interior_and_self
      | [] -> false
    in
    let candidates = List.filter graftable (List.map (candidate_of_response t) responses) in
    match Smrp.spf_distance t.tree m with
    | None -> ()
    | Some spf_dist -> (
        match Smrp.select ~d_thresh:t.config.d_thresh ~spf_distance:spf_dist candidates with
        | Some c ->
            Tree.graft t.tree ~nodes:c.Smrp.attach_nodes ~edges:c.Smrp.attach_edges;
            Tree.add_member t.tree m;
            signal_join t ~requester:m ~attach_nodes:c.Smrp.attach_nodes
        | None ->
            (* No query was answered in time: degrade to the full-knowledge
               join, as Query.join degrades to SPF in the core library. *)
            oracle_join t m)
  end

let join t m =
  if m = t.source then invalid_arg "Protocol.join: the source cannot join";
  let st = t.nodes.(m) in
  if st.member then invalid_arg "Protocol.join: already a member";
  st.member <- true;
  st.last_data <- Engine.now t.engine;
  match t.config.join_mode with
  | Oracle -> oracle_join t m
  | Query_scheme ->
      if Tree.is_on_tree t.tree m then begin
        if not (Tree.is_member t.tree m) then Tree.add_member t.tree m
      end
      else begin
        st.query_responses <- [];
        List.iter
          (fun (nb, _) -> send t ~src:m ~dst:nb (Query { requester = m; path = [ m ] }))
          (Graph.neighbors t.graph m);
        ignore
          (Engine.schedule t.engine ~delay:t.config.query_timeout (fun () ->
               finalize_query_join t m))
      end

(* Condition-II reshape at a member (§3.2.3): re-run path selection with the
   subtree discounted; on a switch, install the new path make-before-break —
   join the new upstream first, then release the old one. *)
let reshape_node t r =
  let st = t.nodes.(r) in
  if
    st.member && dist_on_tree t r && r <> t.source && (not st.recovering)
    && t.failure = None
    && Tree.is_on_tree t.tree r
  then begin
    let old_parent = st.parent in
    if Reshape.try_reshape ~d_thresh:t.config.d_thresh t.tree r then begin
      if Trace.enabled t.trace then
        Trace.instant t.trace ~ts:(Engine.now t.engine) ~cat:"proto" ~tid:r "reshape.switch";
      match Tree.path_to_source t.tree r with
      | _ :: (next :: _ as rest) ->
          st.parent <- Some next;
          st.attach <- rest;
          send t ~src:r ~dst:next (Join_req { requester = r; remaining = List.tl rest });
          (match old_parent with
          | Some p when p <> next ->
              (* Break after make: hold the old branch until the join has
                 propagated up the new path and data has flowed back down —
                 a full round trip at the new path's delay, plus margin. *)
              let round_trip = 2.0 *. Tree.delay_to_source t.tree r in
              ignore
                (Engine.schedule t.engine
                   ~delay:(round_trip +. (2.0 *. t.config.data_period))
                   (fun () -> send t ~src:r ~dst:p Prune))
          | _ -> ())
      | _ -> ()
    end
  end

let leave t m =
  let st = t.nodes.(m) in
  if not st.member then invalid_arg "Protocol.leave: not a member";
  st.member <- false;
  st.attach <- [];
  maybe_prune t m;
  if Tree.is_member t.tree m then Tree.remove_member t.tree m

let recover_member t m =
  let st = t.nodes.(m) in
  let f = Option.get t.failure in
  let detour =
    match t.config.strategy with
    | Local -> Recovery.local_detour t.tree f ~member:m
    | Global -> Recovery.global_detour t.tree f ~member:m
  in
  match detour with
  | None -> () (* isolated: stays disrupted *)
  | Some d ->
      (match d.Recovery.path_edges with
      | [] -> () (* already re-attached through an earlier repair *)
      | _ ->
          Tree.graft t.tree
            ~nodes:(List.rev d.Recovery.path_nodes)
            ~edges:(List.rev d.Recovery.path_edges));
      if not (Tree.is_member t.tree m) then Tree.add_member t.tree m;
      (* Clear the stale upstream so the join installs the detour. *)
      st.parent <- None;
      signal_join t ~requester:m ~attach_nodes:(List.rev d.Recovery.path_nodes)

let declare_disrupted t m =
  let st = t.nodes.(m) in
  if not st.recovering then begin
    let now = Engine.now t.engine in
    st.recovering <- true;
    st.last_attempt <- now;
    let first = st.disrupted_at = None in
    if first then begin
      st.disrupted_at <- Some now;
      t.disrupted_now <- t.disrupted_now + 1;
      match t.meters with
      | Some mt -> Smrp_obs.Series.observe mt.s_disrupted ~ts:now (float_of_int t.disrupted_now)
      | None -> ()
    end;
    Timeline.note_detected t.timeline ~member:m ~ts:now;
    if Trace.enabled t.trace then
      if first then begin
        Trace.begin_span t.trace ~ts:now ~cat:"recovery" ~tid:m
          ~args:
            [
              ("strategy", Trace.Str (match t.config.strategy with Local -> "local" | Global -> "global"));
            ]
          "recovery";
        Trace.instant t.trace ~ts:now ~cat:"recovery" ~tid:m "detected"
      end
      else Trace.instant t.trace ~ts:now ~cat:"recovery" ~tid:m "recovery.retry";
    match t.config.strategy with
    | Local -> recover_member t m
    | Global ->
        (* PIM must wait for the unicast tables to reconverge ([25]). *)
        ignore (Engine.schedule t.engine ~delay:t.config.ospf_convergence (fun () -> recover_member t m))
  end

let start t =
  (* Source data stream. *)
  ignore
    (Engine.every t.engine ~period:t.config.data_period (fun () ->
         let seq = t.next_seq in
         t.next_seq <- seq + 1;
         let st = t.nodes.(t.source) in
         st.last_forwarded_seq <- seq;
         let now = Engine.now t.engine in
         let expired = ref [] in
         Hashtbl.iter
           (fun child expiry ->
             if expiry < now then expired := child :: !expired
             else send t ~src:t.source ~dst:child (Data { seq }))
           st.children;
         List.iter (Hashtbl.remove st.children) !expired));
  (* Hellos on every live link. *)
  ignore
    (Engine.every t.engine ~period:t.config.hello_period (fun () ->
         for v = 0 to Graph.node_count t.graph - 1 do
           if Net.node_up (net t) v then
             List.iter
               (fun (nb, eid) -> if Net.link_up (net t) eid then send t ~src:v ~dst:nb Hello)
               (Graph.neighbors t.graph v)
         done));
  (* Refreshes from every attached node towards its parent, and PIM-style
     periodic join refresh from members along their stored attach paths —
     this re-instantiates any hop whose state was lost (dropped frames,
     expired entries). *)
  ignore
    (Engine.every t.engine ~period:t.config.refresh_period (fun () ->
         Array.iteri
           (fun v (st : node_state) ->
             (match st.parent with Some p -> send t ~src:v ~dst:p Refresh | None -> ());
             if st.member then begin
               match st.attach with
               | next :: rest -> send t ~src:v ~dst:next (Join_req { requester = v; remaining = rest })
               | [] -> ()
             end)
           t.nodes));
  (* Condition-II reshaping timer (when enabled). *)
  (match t.config.reshape_period with
  | Some period ->
      ignore
        (Engine.every t.engine ~period (fun () ->
             Array.iteri (fun v (st : node_state) -> if st.member then reshape_node t v) t.nodes))
  | None -> ());
  (* Starvation detector at members; hello-timeout detector for the node
     right below a failed link. *)
  ignore
    (Engine.every t.engine ~period:t.config.data_period (fun () ->
         let now = Engine.now t.engine in
         let starve = t.config.starvation_factor *. t.config.data_period in
         (* A recovery that has not brought data back well past its expected
            completion is retried (e.g. it raced another member's repair).
            Global recoveries only complete after the reconvergence wait. *)
         let retry_after =
           (2.0 *. starve)
           +. (match t.config.strategy with Global -> t.config.ospf_convergence | Local -> 0.0)
         in
         Array.iteri
           (fun v (st : node_state) ->
             if st.member && t.failure <> None && now -. st.last_data > starve then begin
               if not st.recovering then declare_disrupted t v
               else if st.restored_at = None && now -. st.last_attempt > retry_after then begin
                 st.recovering <- false;
                 declare_disrupted t v
               end
             end)
           t.nodes));
  ignore
    (Engine.every t.engine ~period:t.config.hello_period (fun () ->
         let now = Engine.now t.engine in
         let dead = t.config.hello_dead_factor *. t.config.hello_period in
         Array.iteri
           (fun v (st : node_state) ->
             match st.parent with
             | Some p when st.member && not st.recovering -> begin
                 match Hashtbl.find_opt st.hello_seen p with
                 | Some seen when now -. seen > dead && t.failure <> None -> declare_disrupted t v
                 | _ -> ()
               end
             | _ -> ())
           t.nodes))

let inject_link_failure t eid =
  if t.failure <> None then invalid_arg "Protocol.inject_link_failure: one failure per run";
  Net.fail_link (net t) eid;
  t.failure <- Some (Failure.Link eid);
  t.failure_time <- Engine.now t.engine;
  Timeline.note_failure t.timeline ~ts:t.failure_time;
  if Trace.enabled t.trace then
    Trace.instant t.trace ~ts:t.failure_time ~cat:"recovery"
      ~args:[ ("link", Trace.Int eid) ]
      "failure";
  (* Control-plane view: keep only the structure that still receives data;
     disconnected members re-enter through their recoveries. *)
  t.tree <- Recovery.surviving_tree t.tree (Failure.Link eid)

let reports t =
  let acc = ref [] in
  Array.iteri
    (fun v (st : node_state) ->
      if st.member || st.disrupted_at <> None then
        acc :=
          {
            member = v;
            detected = Option.map (fun d -> d -. t.failure_time) st.disrupted_at;
            restored = Option.map (fun r -> r -. t.failure_time) st.restored_at;
            data_received = st.data_received;
          }
          :: !acc)
    t.nodes;
  List.rev !acc

let control_messages t = t.control_sent

let data_messages t = t.data_sent

let message_breakdown t =
  [
    ("hello", t.hello_sent);
    ("query", t.query_sent);
    ("join_req", t.join_sent);
    ("refresh", t.refresh_sent);
    ("prune", t.prune_sent);
    ("data", t.data_sent);
  ]

let timeline t = Timeline.episodes t.timeline

let phase_table t = Timeline.render (Timeline.episodes t.timeline)
