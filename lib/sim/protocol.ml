module Graph = Smrp_graph.Graph
module Tree = Smrp_core.Tree
module Spf = Smrp_core.Spf
module Smrp = Smrp_core.Smrp
module Failure = Smrp_core.Failure
module Recovery = Smrp_core.Recovery
module Reshape = Smrp_core.Reshape
module Metrics = Smrp_obs.Metrics
module Trace = Smrp_obs.Trace
module Timeline = Smrp_obs.Timeline
module Causal = Smrp_obs.Causal
module Flight = Smrp_obs.Flight

type recovery_strategy = Local | Global

type join_mode = Oracle | Query_scheme

type config = {
  hello_period : float;
  hello_dead_factor : float;
  refresh_period : float;
  hold_factor : float;
  data_period : float;
  starvation_factor : float;
  ospf_convergence : float;
  strategy : recovery_strategy;
  join_mode : join_mode;
  query_timeout : float;
  reshape_period : float option;
      (* Condition-II timer (§3.2.3); [None] disables reshaping. *)
  d_thresh : float;
}

let default_config =
  {
    hello_period = 1.0;
    hello_dead_factor = 3.5;
    refresh_period = 5.0;
    hold_factor = 3.0;
    data_period = 0.1;
    starvation_factor = 5.0;
    ospf_convergence = 5.0;
    strategy = Local;
    join_mode = Oracle;
    query_timeout = 2.0;
    reshape_period = None;
    d_thresh = 0.3;
  }

(* Wire messages are packed ints: the low 3 bits are the type tag, the rest
   is either an immediate payload (data sequence number) or a slot index
   into a side pool holding the variable-length part (join / query paths).
   Hot-path messages (hello, refresh, prune, data) carry no pool slot, so
   sending them allocates nothing at all. *)
type msg = int

let tag_hello = 0
let tag_refresh = 1
let tag_prune = 2
let tag_data = 3
let tag_join = 4
let tag_query = 5
let tag_resp = 6

let msg_hello = tag_hello
let msg_refresh = tag_refresh
let msg_prune = tag_prune
let[@inline] msg_data seq = (seq lsl 3) lor tag_data
let[@inline] msg_join slot = (slot lsl 3) lor tag_join
let[@inline] msg_query slot = (slot lsl 3) lor tag_query
let[@inline] msg_resp slot = (slot lsl 3) lor tag_resp

type member_report = {
  member : int;
  detected : float option;
  restored : float option;
  data_received : int;
}

(* Pre-resolved instruments (message counters by type, recovery-phase
   histograms) so the hot send path pays one increment when metrics are on. *)
type meters = {
  p_hello : Metrics.Counter.t;
  p_query : Metrics.Counter.t;
  p_join : Metrics.Counter.t;
  p_refresh : Metrics.Counter.t;
  p_prune : Metrics.Counter.t;
  p_data : Metrics.Counter.t;
  h_phase : (Timeline.phase * Metrics.Histogram.t) list;
  h_total : Metrics.Histogram.t;
  (* Quantile sketches beside the decade histograms: per-episode recovery
     latency (detection -> first data) and its per-phase breakdown. *)
  q_phase : (Timeline.phase * Smrp_obs.Sketch.t) list;
  q_total : Smrp_obs.Sketch.t;
  s_disrupted : Smrp_obs.Series.t; (* members currently disrupted, over sim time *)
}

(* Per-node soft state as struct-of-arrays: flat int/float/bool columns
   indexed by node id instead of per-node records full of Hashtbls.  Children
   are per-node (id, expiry) growable parallel arrays scanned inline — child
   sets are small (tree degree) so a scan beats hashing.  Hello liveness is
   one flat float per directed edge endpoint.  [nan] / [neg_infinity] /
   [-1] stand in for the absent case of what used to be options. *)
type t = {
  engine : Engine.t;
  config : config;
  graph : Graph.t;
  source : int;
  mutable net : msg Net.t option; (* set right after creation *)
  mutable tree : Tree.t;
  mutable failure : Failure.t option;
  mutable failure_time : float;
  mutable control_sent : int;
  mutable data_sent : int;
  mutable hello_sent : int;
  mutable query_sent : int;
  mutable join_sent : int;
  mutable refresh_sent : int;
  mutable prune_sent : int;
  mutable next_seq : int;
  mutable disrupted_now : int; (* members detected-but-not-yet-restored *)
  (* node columns *)
  n_member : bool array;
  n_parent : int array; (* -1 = none *)
  n_last_data : float array;
  n_last_forwarded : int array;
  n_data_received : int array;
  n_recovering : bool array;
  (* disruption/restoration timestamps live in [causal]: the milestone
     tracker is the single source of truth for episode bookkeeping *)
  n_last_attempt : float array;
  n_responses : (int * float * int list) list array;
      (* (SHR, merge tree delay, path requester..merge) collected while a
         query-scheme join is pending — cold, kept as lists *)
  (* children: parallel (id, soft-state expiry) arrays per node *)
  ch_id : int array array;
  ch_expiry : float array array;
  ch_n : int array;
  (* stored hops towards the merge node, for periodic join refresh
     (PIM-style): at_path.(v).(0..at_len v) is next-hop-first *)
  at_path : int array array;
  at_len : int array;
  (* last hello arrival per directed edge endpoint: index 2*eid + side,
     side 0 = the edge's [u] endpoint heard it *)
  hello_seen : float array;
  (* side pools for variable-length message payloads *)
  mutable j_req : int array;
  mutable j_path : int array array;
  mutable j_plen : int array;
  mutable j_idx : int array;
  mutable j_next : int array;
  mutable j_free : int;
  mutable q_req : int array;
  mutable q_path : int array array;
  mutable q_plen : int array;
  mutable q_next : int array;
  mutable q_free : int;
  mutable r_shr : int array;
  mutable r_delay : float array;
  mutable r_path : int array array;
  mutable r_plen : int array;
  mutable r_back : int array;
  mutable r_next : int array;
  mutable r_free : int;
  causal : Causal.tracker;
  flight : Flight.recorder; (* the engine's ring; milestone records *)
  trace : Trace.t;
  meters : meters option;
}

let net t = Option.get t.net

let tree t = t.tree

let free_chain n off = Array.init n (fun i -> if i = n - 1 then -1 else off + i + 1)

let msg_label m =
  match m land 7 with
  | 0 -> "hello"
  | 1 -> "refresh"
  | 2 -> "prune"
  | 3 -> "data"
  | 4 -> "join_req"
  | 5 -> "query"
  | _ -> "query_resp"

(* -- Payload pools ------------------------------------------------------- *)

(* Each pool slot owns a reusable path buffer; [ensure] grows it without
   preserving contents (callers overwrite), [ensure_keep] preserves for
   in-place appends. *)
let ensure paths s n =
  if Array.length paths.(s) < n then paths.(s) <- Array.make (max 8 n) 0

let ensure_keep paths s n =
  if Array.length paths.(s) < n then begin
    let na = Array.make (max 8 (2 * n)) 0 in
    Array.blit paths.(s) 0 na 0 (Array.length paths.(s));
    paths.(s) <- na
  end

let alloc_join t =
  if t.j_free = -1 then begin
    let cap = Array.length t.j_req in
    t.j_req <- Array.append t.j_req (Array.make cap 0);
    t.j_path <- Array.append t.j_path (Array.make cap [||]);
    t.j_plen <- Array.append t.j_plen (Array.make cap 0);
    t.j_idx <- Array.append t.j_idx (Array.make cap 0);
    t.j_next <- Array.append t.j_next (free_chain cap cap);
    t.j_free <- cap
  end;
  let s = t.j_free in
  t.j_free <- t.j_next.(s);
  s

let[@inline] free_join t s =
  t.j_next.(s) <- t.j_free;
  t.j_free <- s

let alloc_query t =
  if t.q_free = -1 then begin
    let cap = Array.length t.q_req in
    t.q_req <- Array.append t.q_req (Array.make cap 0);
    t.q_path <- Array.append t.q_path (Array.make cap [||]);
    t.q_plen <- Array.append t.q_plen (Array.make cap 0);
    t.q_next <- Array.append t.q_next (free_chain cap cap);
    t.q_free <- cap
  end;
  let s = t.q_free in
  t.q_free <- t.q_next.(s);
  s

let[@inline] free_query t s =
  t.q_next.(s) <- t.q_free;
  t.q_free <- s

let alloc_resp t =
  if t.r_free = -1 then begin
    let cap = Array.length t.r_shr in
    t.r_shr <- Array.append t.r_shr (Array.make cap 0);
    t.r_delay <- Array.append t.r_delay (Array.make cap 0.0);
    t.r_path <- Array.append t.r_path (Array.make cap [||]);
    t.r_plen <- Array.append t.r_plen (Array.make cap 0);
    t.r_back <- Array.append t.r_back (Array.make cap 0);
    t.r_next <- Array.append t.r_next (free_chain cap cap);
    t.r_free <- cap
  end;
  let s = t.r_free in
  t.r_free <- t.r_next.(s);
  s

let[@inline] free_resp t s =
  t.r_next.(s) <- t.r_free;
  t.r_free <- s

(* A slot-carrying frame that will never be delivered must still return its
   pool slot; Net calls this for every dropped frame. *)
let reclaim t m =
  let slot = m asr 3 in
  match m land 7 with
  | 4 -> free_join t slot
  | 5 -> free_query t slot
  | 6 -> free_resp t slot
  | _ -> ()

(* -- Sending ------------------------------------------------------------- *)

let send t ~src ~dst m =
  let mt = t.meters in
  let meter f = match mt with Some mt -> Metrics.Counter.incr (f mt) | None -> () in
  (match m land 7 with
  | 3 ->
      t.data_sent <- t.data_sent + 1;
      meter (fun m -> m.p_data)
  | 0 ->
      t.control_sent <- t.control_sent + 1;
      t.hello_sent <- t.hello_sent + 1;
      meter (fun m -> m.p_hello)
  | 5 | 6 ->
      t.control_sent <- t.control_sent + 1;
      t.query_sent <- t.query_sent + 1;
      meter (fun m -> m.p_query)
  | 4 ->
      t.control_sent <- t.control_sent + 1;
      t.join_sent <- t.join_sent + 1;
      meter (fun m -> m.p_join)
  | 1 ->
      t.control_sent <- t.control_sent + 1;
      t.refresh_sent <- t.refresh_sent + 1;
      meter (fun m -> m.p_refresh)
  | _ ->
      t.control_sent <- t.control_sent + 1;
      t.prune_sent <- t.prune_sent + 1;
      meter (fun m -> m.p_prune));
  ignore (Net.send (net t) ~src ~dst m : bool)

let hold_time t = t.config.hold_factor *. t.config.refresh_period

(* Distributed on-tree test: the node believes it has an upstream. *)
let[@inline] dist_on_tree t v = v = t.source || t.n_parent.(v) >= 0

(* -- Children (inline scans over small parallel arrays) ------------------ *)

let child_refresh t v child expiry =
  let ids = t.ch_id.(v) in
  let n = t.ch_n.(v) in
  let i = ref 0 in
  while !i < n && ids.(!i) <> child do
    incr i
  done;
  if !i < n then t.ch_expiry.(v).(!i) <- expiry
  else begin
    if n = Array.length ids then begin
      let cap = max 4 (2 * n) in
      let nid = Array.make cap 0 and nex = Array.make cap 0.0 in
      Array.blit ids 0 nid 0 n;
      Array.blit t.ch_expiry.(v) 0 nex 0 n;
      t.ch_id.(v) <- nid;
      t.ch_expiry.(v) <- nex
    end;
    t.ch_id.(v).(n) <- child;
    t.ch_expiry.(v).(n) <- expiry;
    t.ch_n.(v) <- n + 1
  end

let child_remove t v child =
  let ids = t.ch_id.(v) in
  let n = t.ch_n.(v) in
  let i = ref 0 in
  while !i < n && ids.(!i) <> child do
    incr i
  done;
  if !i < n then begin
    ids.(!i) <- ids.(n - 1);
    t.ch_expiry.(v).(!i) <- t.ch_expiry.(v).(n - 1);
    t.ch_n.(v) <- n - 1
  end

let maybe_prune t v =
  if v <> t.source && (not t.n_member.(v)) && t.ch_n.(v) = 0 then begin
    let p = t.n_parent.(v) in
    if p >= 0 then begin
      t.n_parent.(v) <- -1;
      send t ~src:v ~dst:p msg_prune
    end
  end

(* Fan a data packet out to live children, expiring stale entries in place
   (swap-remove keeps the scan index valid). *)
let fanout_data t v ~except ~now ~seq =
  let i = ref 0 in
  while !i < t.ch_n.(v) do
    if t.ch_expiry.(v).(!i) < now then begin
      let n = t.ch_n.(v) - 1 in
      t.ch_id.(v).(!i) <- t.ch_id.(v).(n);
      t.ch_expiry.(v).(!i) <- t.ch_expiry.(v).(n);
      t.ch_n.(v) <- n
    end
    else begin
      let child = t.ch_id.(v).(!i) in
      if child <> except then send t ~src:v ~dst:child (msg_data seq);
      incr i
    end
  done

(* -- Message handling ---------------------------------------------------- *)

let handle_data t ~at ~from seq =
  let now = Engine.now t.engine in
  t.n_last_data.(at) <- now;
  if t.n_member.(at) then begin
    t.n_data_received.(at) <- t.n_data_received.(at) + 1;
    if Causal.disrupted t.causal at then begin
      t.n_recovering.(at) <- false;
      t.disrupted_now <- t.disrupted_now - 1;
      Flight.record t.flight ~tick:(Engine.tick_of_time now) ~code:Flight.proto_first_data
        ~a:at ~b:0;
      Causal.note_first_data t.causal ~member:at ~ts:now;
      (match t.meters with
      | Some m -> Smrp_obs.Series.observe m.s_disrupted ~ts:now (float_of_int t.disrupted_now)
      | None -> ());
      (match (t.meters, Causal.episode t.causal at) with
      | Some m, Some ep ->
          List.iter
            (fun (phase, dur) ->
              match dur with
              | Some d ->
                  Option.iter (fun h -> Metrics.Histogram.observe h d)
                    (List.assoc_opt phase m.h_phase);
                  Option.iter (fun q -> Smrp_obs.Sketch.observe q d)
                    (List.assoc_opt phase m.q_phase)
              | None -> ())
            (Timeline.phase_durations ep);
          Option.iter
            (fun d ->
              Metrics.Histogram.observe m.h_total d;
              Smrp_obs.Sketch.observe m.q_total d)
            (Timeline.total ep)
      | _ -> ());
      if Trace.enabled t.trace then begin
        Trace.instant t.trace ~ts:now ~cat:"recovery" ~tid:at "first_data";
        Trace.end_span t.trace ~ts:now ~tid:at "recovery"
      end
    end
  end;
  (* Forward fresh packets only: duplicates (transient double attachment)
     and loops die here. *)
  if seq > t.n_last_forwarded.(at) then begin
    t.n_last_forwarded.(at) <- seq;
    let before = t.ch_n.(at) in
    fanout_data t at ~except:from ~now ~seq;
    if t.ch_n.(at) < before then maybe_prune t at
  end

let handle_join t ~at ~from slot =
  let now = Engine.now t.engine in
  child_refresh t at from (now +. hold_time t);
  let idx = t.j_idx.(slot) in
  if idx >= t.j_plen.(slot) then begin
    (* We are the merge node: the requester's forwarding state is now
       installed along the whole attach path. *)
    let requester = t.j_req.(slot) in
    free_join t slot;
    Flight.record t.flight ~tick:(Engine.tick_of_time now) ~code:Flight.proto_installed
      ~a:requester ~b:at;
    Causal.note_installed t.causal ~member:requester ~ts:now;
    if Trace.enabled t.trace then
      Trace.instant t.trace ~ts:now ~cat:"proto" ~tid:requester
        ~args:[ ("merge", Trace.Int at) ]
        "join.installed"
  end
  else begin
    (* Forward when we have no upstream — or when our upstream is stale (no
       data for a starvation window): a disconnected relay must adopt the
       detour rather than black-hole the re-join. *)
    let starving =
      now -. t.n_last_data.(at) > t.config.starvation_factor *. t.config.data_period
    in
    if (not (dist_on_tree t at)) || (at <> t.source && starving) then begin
      let next = t.j_path.(slot).(idx) in
      t.n_parent.(at) <- next;
      t.j_idx.(slot) <- idx + 1;
      send t ~src:at ~dst:next (msg_join slot)
    end
    else free_join t slot
  end

let handle_query t ~at slot =
  let requester = t.q_req.(slot) in
  let path = t.q_path.(slot) in
  let plen = t.q_plen.(slot) in
  let on_path v =
    let rec go i = i < plen && (path.(i) = v || go (i + 1)) in
    go 0
  in
  if at = requester || on_path at then free_query t slot
  else if dist_on_tree t at && Tree.is_on_tree t.tree at then begin
    (* First on-tree node met: answer with the (deferred, 3.3.2) SHR and
       route the response back along the traversed path. *)
    let r = alloc_resp t in
    t.r_shr.(r) <- Tree.shr t.tree at;
    t.r_delay.(r) <- Tree.delay_to_source t.tree at;
    ensure t.r_path r (plen + 1);
    Array.blit path 0 t.r_path.(r) 0 plen;
    t.r_path.(r).(plen) <- at;
    t.r_plen.(r) <- plen + 1;
    (* Walk back down the recorded path: first hop is the last traversed
       node, then indices plen-2 .. 0 (the requester records). *)
    t.r_back.(r) <- plen - 2;
    let back_first = path.(plen - 1) in
    free_query t slot;
    send t ~src:at ~dst:back_first (msg_resp r)
  end
  else begin
    (* Forward along our unicast next hop towards the source. *)
    match Smrp_graph.Dijkstra.shortest_path t.graph ~src:at ~dst:t.source with
    | Some (_, _ :: next :: _, _) when (not (on_path next)) && next <> requester ->
        ensure_keep t.q_path slot (plen + 1);
        t.q_path.(slot).(plen) <- at;
        t.q_plen.(slot) <- plen + 1;
        send t ~src:at ~dst:next (msg_query slot)
    | _ -> free_query t slot
  end

let handle_resp t ~at slot =
  let back = t.r_back.(slot) in
  if back >= 0 then begin
    let next = t.r_path.(slot).(back) in
    t.r_back.(slot) <- back - 1;
    send t ~src:at ~dst:next (msg_resp slot)
  end
  else begin
    (* We are the requester: record the answer for the pending selection.
       Cold path — materializing a list here is fine. *)
    let path = ref [] in
    for i = t.r_plen.(slot) - 1 downto 0 do
      path := t.r_path.(slot).(i) :: !path
    done;
    t.n_responses.(at) <- (t.r_shr.(slot), t.r_delay.(slot), !path) :: t.n_responses.(at);
    free_resp t slot
  end

let handle t ~at ~from ~eid m =
  match m land 7 with
  | 3 -> handle_data t ~at ~from (m asr 3)
  | 0 ->
      let e = Graph.edge t.graph eid in
      let side = if at = e.Graph.u then 0 else 1 in
      t.hello_seen.((2 * eid) + side) <- Engine.now t.engine
  | 1 -> child_refresh t at from (Engine.now t.engine +. hold_time t)
  | 2 ->
      child_remove t at from;
      maybe_prune t at
  | 4 -> handle_join t ~at ~from (m asr 3)
  | 5 -> handle_query t ~at (m asr 3)
  | _ -> handle_resp t ~at (m asr 3)

let create ?(config = default_config) ?obs engine graph ~source =
  let obs = match obs with Some _ as o -> o | None -> Engine.obs engine in
  let meters =
    Option.map
      (fun o ->
        let m = Smrp_obs.Obs.metrics o in
        let phase_histogram p =
          (* 1 ms .. 100 s in decades comfortably spans the default periods
             (data 0.1 s, hello 1 s, OSPF reconvergence 5 s). *)
          (p, Metrics.histogram m ~base:10.0 ~lowest:1e-3 ~count:6
                ("recovery.phase." ^ String.map (function ' ' -> '_' | c -> c) (Timeline.phase_name p)))
        in
        {
          p_hello = Metrics.counter m "proto.sent.hello";
          p_query = Metrics.counter m "proto.sent.query";
          p_join = Metrics.counter m "proto.sent.join_req";
          p_refresh = Metrics.counter m "proto.sent.refresh";
          p_prune = Metrics.counter m "proto.sent.prune";
          p_data = Metrics.counter m "proto.sent.data";
          h_phase = List.map phase_histogram Timeline.phases;
          h_total = Metrics.histogram m ~base:10.0 ~lowest:1e-3 ~count:6 "recovery.total";
          q_phase =
            List.map
              (fun p ->
                ( p,
                  Metrics.sketch m
                    ("recovery.phase."
                    ^ String.map (function ' ' -> '_' | c -> c) (Timeline.phase_name p)
                    ^ ".q") ))
              Timeline.phases;
          q_total = Metrics.sketch m "recovery.total.q";
          s_disrupted = Metrics.series m ~kind:Smrp_obs.Series.Last "proto.members_disrupted";
        })
      obs
  in
  let n = Graph.node_count graph in
  let pool0 = 16 in
  let t =
    {
      engine;
      config;
      graph;
      source;
      net = None;
      tree = Tree.create graph ~source;
      failure = None;
      failure_time = nan;
      control_sent = 0;
      data_sent = 0;
      hello_sent = 0;
      query_sent = 0;
      join_sent = 0;
      refresh_sent = 0;
      prune_sent = 0;
      next_seq = 0;
      disrupted_now = 0;
      n_member = Array.make n false;
      n_parent = Array.make n (-1);
      n_last_data = Array.make n neg_infinity;
      n_last_forwarded = Array.make n (-1);
      n_data_received = Array.make n 0;
      n_recovering = Array.make n false;
      n_last_attempt = Array.make n neg_infinity;
      n_responses = Array.make n [];
      ch_id = Array.make n [||];
      ch_expiry = Array.make n [||];
      ch_n = Array.make n 0;
      at_path = Array.make n [||];
      at_len = Array.make n 0;
      hello_seen = Array.make (2 * Graph.edge_count graph) neg_infinity;
      j_req = Array.make pool0 0;
      j_path = Array.make pool0 [||];
      j_plen = Array.make pool0 0;
      j_idx = Array.make pool0 0;
      j_next = free_chain pool0 0;
      j_free = 0;
      q_req = Array.make pool0 0;
      q_path = Array.make pool0 [||];
      q_plen = Array.make pool0 0;
      q_next = free_chain pool0 0;
      q_free = 0;
      r_shr = Array.make pool0 0;
      r_delay = Array.make pool0 0.0;
      r_path = Array.make pool0 [||];
      r_plen = Array.make pool0 0;
      r_back = Array.make pool0 0;
      r_next = free_chain pool0 0;
      r_free = 0;
      causal = Causal.create ();
      flight = Engine.flight engine;
      trace = (match obs with Some o -> Smrp_obs.Obs.trace o | None -> Trace.null);
      meters;
    }
  in
  let net =
    Net.create ?obs ~msg_label ~msg_int:(fun m -> m) ~on_drop:(reclaim t) engine graph
      ~handler:(fun _ ~at ~from ~eid m -> handle t ~at ~from ~eid m)
  in
  t.net <- Some net;
  t

(* Store the attach hops (next-hop-first) for periodic join refresh. *)
let set_attach t v hops =
  let len = List.length hops in
  if Array.length t.at_path.(v) < len then t.at_path.(v) <- Array.make (max 4 len) 0;
  List.iteri (fun i h -> t.at_path.(v).(i) <- h) hops;
  t.at_len.(v) <- len

(* Allocate a join slot carrying [remaining] (the hops after the first
   destination). *)
let join_slot_of_list t ~requester remaining =
  let s = alloc_join t in
  let len = List.length remaining in
  t.j_req.(s) <- requester;
  ensure t.j_path s len;
  List.iteri (fun i h -> t.j_path.(s).(i) <- h) remaining;
  t.j_plen.(s) <- len;
  t.j_idx.(s) <- 0;
  s

(* Issue a Join_req along an attach path given merge-node-first (as the core
   library produces them). *)
let signal_join t ~requester ~attach_nodes =
  let now = Engine.now t.engine in
  match List.rev attach_nodes with
  | [] | [ _ ] ->
      (* Already attached: nothing to signal, the "installation" is
         instantaneous for the recovery timeline. *)
      Flight.record t.flight ~tick:(Engine.tick_of_time now) ~code:Flight.proto_signal
        ~a:requester ~b:0;
      Causal.note_signalled t.causal ~member:requester ~ts:now;
      Flight.record t.flight ~tick:(Engine.tick_of_time now) ~code:Flight.proto_installed
        ~a:requester ~b:requester;
      Causal.note_installed t.causal ~member:requester ~ts:now
  | me :: next :: rest ->
      assert (me = requester);
      if t.n_parent.(requester) < 0 && requester <> t.source then
        t.n_parent.(requester) <- next;
      set_attach t requester (next :: rest);
      Flight.record t.flight ~tick:(Engine.tick_of_time now) ~code:Flight.proto_signal
        ~a:requester ~b:(List.length rest + 1);
      Causal.note_signalled t.causal ~member:requester ~ts:now;
      if Trace.enabled t.trace then
        Trace.instant t.trace ~ts:now ~cat:"proto" ~tid:requester
          ~args:[ ("hops", Trace.Int (List.length rest + 1)) ]
          "join.signal";
      send t ~src:requester ~dst:next (msg_join (join_slot_of_list t ~requester rest))

(* Full-knowledge path selection (§3.2.2): min-SHR for SMRP, unicast
   shortest path for the PIM baseline. *)
let oracle_join t m =
  let attach_nodes, attach_edges =
    match t.config.strategy with
    | Local -> begin
        if Tree.is_on_tree t.tree m then ([ m ], [])
        else
          match Smrp.spf_distance t.tree m with
          | None -> invalid_arg "Protocol.join: source unreachable"
          | Some spf_dist -> begin
              match
                Smrp.select ~d_thresh:t.config.d_thresh ~spf_distance:spf_dist
                  (Smrp.candidates t.tree ~joiner:m)
              with
              | Some c -> (c.Smrp.attach_nodes, c.Smrp.attach_edges)
              | None -> invalid_arg "Protocol.join: no connection to the tree"
            end
      end
    | Global -> Spf.attach_path t.tree m
  in
  (match (attach_nodes, attach_edges) with
  | [ _ ], [] -> ()
  | nodes, edges -> Tree.graft t.tree ~nodes ~edges);
  if not (Tree.is_member t.tree m) then Tree.add_member t.tree m;
  signal_join t ~requester:m ~attach_nodes

(* Turn a collected query response into a candidate the selection criterion
   understands. *)
let candidate_of_response t (shr, tree_delay, path) =
  let rec edges_of = function
    | a :: (b :: _ as rest) -> (
        match Graph.edge_between t.graph a b with
        | Some e -> e.Graph.id :: edges_of rest
        | None -> invalid_arg "Protocol: query path not a walk")
    | _ -> []
  in
  let edges = edges_of path in
  let attach_delay =
    List.fold_left (fun acc eid -> acc +. (Graph.edge t.graph eid).Graph.delay) 0.0 edges
  in
  match List.rev path with
  | merge :: _ ->
      {
        Smrp.merge;
        attach_nodes = List.rev path;
        attach_edges = List.rev edges;
        attach_delay;
        total_delay = attach_delay +. tree_delay;
        shr;
      }
  | [] -> invalid_arg "Protocol: empty query path"

let finalize_query_join t m =
  if t.n_member.(m) && t.at_len.(m) = 0 && not (Tree.is_on_tree t.tree m) then begin
    let responses = t.n_responses.(m) in
    t.n_responses.(m) <- [];
    if Trace.enabled t.trace then
      Trace.instant t.trace ~ts:(Engine.now t.engine) ~cat:"proto" ~tid:m
        ~args:[ ("responses", Trace.Int (List.length responses)) ]
        "query.finalize";
    let graftable c =
      (* The merge node must still be on-tree and the interior still off-tree
         (another join may have raced us during the query round trip). *)
      match c.Smrp.attach_nodes with
      | merge :: interior_and_self ->
          Tree.is_on_tree t.tree merge
          && List.for_all
               (fun v -> v = m || not (Tree.is_on_tree t.tree v))
               interior_and_self
      | [] -> false
    in
    let candidates = List.filter graftable (List.map (candidate_of_response t) responses) in
    match Smrp.spf_distance t.tree m with
    | None -> ()
    | Some spf_dist -> (
        match Smrp.select ~d_thresh:t.config.d_thresh ~spf_distance:spf_dist candidates with
        | Some c ->
            Tree.graft t.tree ~nodes:c.Smrp.attach_nodes ~edges:c.Smrp.attach_edges;
            Tree.add_member t.tree m;
            signal_join t ~requester:m ~attach_nodes:c.Smrp.attach_nodes
        | None ->
            (* No query was answered in time: degrade to the full-knowledge
               join, as Query.join degrades to SPF in the core library. *)
            oracle_join t m)
  end

let join t m =
  if m = t.source then invalid_arg "Protocol.join: the source cannot join";
  if t.n_member.(m) then invalid_arg "Protocol.join: already a member";
  t.n_member.(m) <- true;
  t.n_last_data.(m) <- Engine.now t.engine;
  match t.config.join_mode with
  | Oracle -> oracle_join t m
  | Query_scheme ->
      if Tree.is_on_tree t.tree m then begin
        if not (Tree.is_member t.tree m) then Tree.add_member t.tree m
      end
      else begin
        t.n_responses.(m) <- [];
        List.iter
          (fun (nb, _) ->
            let s = alloc_query t in
            t.q_req.(s) <- m;
            ensure t.q_path s 1;
            t.q_path.(s).(0) <- m;
            t.q_plen.(s) <- 1;
            send t ~src:m ~dst:nb (msg_query s))
          (Graph.neighbors t.graph m);
        ignore
          (Engine.schedule t.engine ~delay:t.config.query_timeout (fun () ->
               finalize_query_join t m))
      end

(* Condition-II reshape at a member (§3.2.3): re-run path selection with the
   subtree discounted; on a switch, install the new path make-before-break —
   join the new upstream first, then release the old one. *)
let reshape_node t r =
  if
    t.n_member.(r) && dist_on_tree t r && r <> t.source
    && (not t.n_recovering.(r))
    && t.failure = None
    && Tree.is_on_tree t.tree r
  then begin
    let old_parent = t.n_parent.(r) in
    if Reshape.try_reshape ~d_thresh:t.config.d_thresh t.tree r then begin
      Flight.record t.flight
        ~tick:(Engine.tick_of_time (Engine.now t.engine))
        ~code:Flight.proto_reshape ~a:r ~b:old_parent;
      if Trace.enabled t.trace then
        Trace.instant t.trace ~ts:(Engine.now t.engine) ~cat:"proto" ~tid:r "reshape.switch";
      match Tree.path_to_source t.tree r with
      | _ :: (next :: _ as rest) ->
          t.n_parent.(r) <- next;
          set_attach t r rest;
          send t ~src:r ~dst:next (msg_join (join_slot_of_list t ~requester:r (List.tl rest)));
          if old_parent >= 0 && old_parent <> next then begin
            (* Break after make: hold the old branch until the join has
               propagated up the new path and data has flowed back down —
               a full round trip at the new path's delay, plus margin. *)
            let round_trip = 2.0 *. Tree.delay_to_source t.tree r in
            ignore
              (Engine.schedule t.engine
                 ~delay:(round_trip +. (2.0 *. t.config.data_period))
                 (fun () -> send t ~src:r ~dst:old_parent msg_prune))
          end
      | _ -> ()
    end
  end

let leave t m =
  if not t.n_member.(m) then invalid_arg "Protocol.leave: not a member";
  t.n_member.(m) <- false;
  t.at_len.(m) <- 0;
  maybe_prune t m;
  if Tree.is_member t.tree m then Tree.remove_member t.tree m

let recover_member t m =
  let f = Option.get t.failure in
  let detour =
    match t.config.strategy with
    | Local -> Recovery.local_detour t.tree f ~member:m
    | Global -> Recovery.global_detour t.tree f ~member:m
  in
  match detour with
  | None -> () (* isolated: stays disrupted *)
  | Some d ->
      (match d.Recovery.path_edges with
      | [] -> () (* already re-attached through an earlier repair *)
      | _ ->
          Tree.graft t.tree
            ~nodes:(List.rev d.Recovery.path_nodes)
            ~edges:(List.rev d.Recovery.path_edges));
      if not (Tree.is_member t.tree m) then Tree.add_member t.tree m;
      (* Clear the stale upstream so the join installs the detour. *)
      t.n_parent.(m) <- -1;
      signal_join t ~requester:m ~attach_nodes:(List.rev d.Recovery.path_nodes)

let declare_disrupted t m =
  if not t.n_recovering.(m) then begin
    let now = Engine.now t.engine in
    t.n_recovering.(m) <- true;
    t.n_last_attempt.(m) <- now;
    let first = Causal.detected_at t.causal m = None in
    if first then begin
      t.disrupted_now <- t.disrupted_now + 1;
      match t.meters with
      | Some mt -> Smrp_obs.Series.observe mt.s_disrupted ~ts:now (float_of_int t.disrupted_now)
      | None -> ()
    end;
    Flight.record t.flight ~tick:(Engine.tick_of_time now) ~code:Flight.proto_detected ~a:m
      ~b:0;
    Causal.note_detected t.causal ~member:m ~ts:now;
    if Trace.enabled t.trace then
      if first then begin
        Trace.begin_span t.trace ~ts:now ~cat:"recovery" ~tid:m
          ~args:
            [
              ("strategy", Trace.Str (match t.config.strategy with Local -> "local" | Global -> "global"));
            ]
          "recovery";
        Trace.instant t.trace ~ts:now ~cat:"recovery" ~tid:m "detected"
      end
      else Trace.instant t.trace ~ts:now ~cat:"recovery" ~tid:m "recovery.retry";
    match t.config.strategy with
    | Local -> recover_member t m
    | Global ->
        (* PIM must wait for the unicast tables to reconverge ([25]). *)
        ignore (Engine.schedule t.engine ~delay:t.config.ospf_convergence (fun () -> recover_member t m))
  end

let start t =
  (* Source data stream. *)
  ignore
    (Engine.every t.engine ~period:t.config.data_period (fun () ->
         let seq = t.next_seq in
         t.next_seq <- seq + 1;
         t.n_last_forwarded.(t.source) <- seq;
         let now = Engine.now t.engine in
         fanout_data t t.source ~except:(-1) ~now ~seq));
  (* Hellos on every live link. *)
  ignore
    (Engine.every t.engine ~period:t.config.hello_period (fun () ->
         for v = 0 to Graph.node_count t.graph - 1 do
           if Net.node_up (net t) v then
             List.iter
               (fun (nb, eid) -> if Net.link_up (net t) eid then send t ~src:v ~dst:nb msg_hello)
               (Graph.neighbors t.graph v)
         done));
  (* Refreshes from every attached node towards its parent, and PIM-style
     periodic join refresh from members along their stored attach paths —
     this re-instantiates any hop whose state was lost (dropped frames,
     expired entries). *)
  ignore
    (Engine.every t.engine ~period:t.config.refresh_period (fun () ->
         for v = 0 to Array.length t.n_parent - 1 do
           let p = t.n_parent.(v) in
           if p >= 0 then send t ~src:v ~dst:p msg_refresh;
           if t.n_member.(v) && t.at_len.(v) > 0 then begin
             let next = t.at_path.(v).(0) in
             let s = alloc_join t in
             let len = t.at_len.(v) - 1 in
             t.j_req.(s) <- v;
             ensure t.j_path s len;
             Array.blit t.at_path.(v) 1 t.j_path.(s) 0 len;
             t.j_plen.(s) <- len;
             t.j_idx.(s) <- 0;
             send t ~src:v ~dst:next (msg_join s)
           end
         done));
  (* Condition-II reshaping timer (when enabled). *)
  (match t.config.reshape_period with
  | Some period ->
      ignore
        (Engine.every t.engine ~period (fun () ->
             for v = 0 to Array.length t.n_member - 1 do
               if t.n_member.(v) then reshape_node t v
             done))
  | None -> ());
  (* Starvation detector at members; hello-timeout detector for the node
     right below a failed link. *)
  ignore
    (Engine.every t.engine ~period:t.config.data_period (fun () ->
         let now = Engine.now t.engine in
         let starve = t.config.starvation_factor *. t.config.data_period in
         (* A recovery that has not brought data back well past its expected
            completion is retried (e.g. it raced another member's repair).
            Global recoveries only complete after the reconvergence wait. *)
         let retry_after =
           (2.0 *. starve)
           +. (match t.config.strategy with Global -> t.config.ospf_convergence | Local -> 0.0)
         in
         for v = 0 to Array.length t.n_member - 1 do
           if t.n_member.(v) && t.failure <> None && now -. t.n_last_data.(v) > starve then begin
             if not t.n_recovering.(v) then declare_disrupted t v
             else if
               Causal.restored_at t.causal v = None && now -. t.n_last_attempt.(v) > retry_after
             then begin
               t.n_recovering.(v) <- false;
               declare_disrupted t v
             end
           end
         done));
  ignore
    (Engine.every t.engine ~period:t.config.hello_period (fun () ->
         let now = Engine.now t.engine in
         let dead = t.config.hello_dead_factor *. t.config.hello_period in
         for v = 0 to Array.length t.n_parent - 1 do
           let p = t.n_parent.(v) in
           if p >= 0 && t.n_member.(v) && not t.n_recovering.(v) then begin
             match Graph.edge_between t.graph v p with
             | Some e ->
                 let side = if v = e.Graph.u then 0 else 1 in
                 let seen = t.hello_seen.((2 * e.Graph.id) + side) in
                 if seen > neg_infinity && now -. seen > dead && t.failure <> None then
                   declare_disrupted t v
             | None -> ()
           end
         done))

let inject_link_failure t eid =
  if t.failure <> None then invalid_arg "Protocol.inject_link_failure: one failure per run";
  Net.fail_link (net t) eid;
  t.failure <- Some (Failure.Link eid);
  t.failure_time <- Engine.now t.engine;
  Flight.record t.flight ~tick:(Engine.tick_of_time t.failure_time) ~code:Flight.proto_failure
    ~a:eid ~b:0;
  Causal.note_failure t.causal ~ts:t.failure_time;
  if Trace.enabled t.trace then
    Trace.instant t.trace ~ts:t.failure_time ~cat:"recovery"
      ~args:[ ("link", Trace.Int eid) ]
      "failure";
  (* Control-plane view: keep only the structure that still receives data;
     disconnected members re-enter through their recoveries. *)
  t.tree <- Recovery.surviving_tree t.tree (Failure.Link eid)

let reports t =
  let acc = ref [] in
  for v = Array.length t.n_member - 1 downto 0 do
    if t.n_member.(v) || Causal.detected_at t.causal v <> None then
      acc :=
        {
          member = v;
          detected = Option.map (fun ts -> ts -. t.failure_time) (Causal.detected_at t.causal v);
          restored = Option.map (fun ts -> ts -. t.failure_time) (Causal.restored_at t.causal v);
          data_received = t.n_data_received.(v);
        }
        :: !acc
  done;
  !acc

let control_messages t = t.control_sent

let data_messages t = t.data_sent

let message_breakdown t =
  [
    ("hello", t.hello_sent);
    ("query", t.query_sent);
    ("join_req", t.join_sent);
    ("refresh", t.refresh_sent);
    ("prune", t.prune_sent);
    ("data", t.data_sent);
  ]

let timeline t = Causal.episodes t.causal

let phase_table t = Timeline.render (Causal.episodes t.causal)
