(** Discrete-event simulation engine: a virtual clock over a scaled-int
    tick domain and a time-ordered event queue.

    Engine v2 runs the hot loop allocation-free: sim times quantize to
    integer ticks of 100 ns, pending events live in a pooled
    struct-of-arrays table keyed by int ids, cancellation is an O(1)
    generation-stamped lazy delete, and dispatch goes through small int
    event codes ([register] / [schedule_code]) so layered protocols can
    schedule without closure allocation.  Closure scheduling ([schedule] /
    [schedule_at] / [every]) is still available for cold paths and keeps
    the original semantics.

    Events at equal times fire in scheduling order (FIFO) — guaranteed, and
    pinned by a regression test; the float-heap engine this replaces only
    provided it by accident of heap layout.

    Two queue implementations sit behind the same facade: the default
    hierarchical timer wheel ([`Wheel]) and the retained binary heap
    ([`Reference]) used as a differential-testing oracle.  For any
    workload the two must produce identical event sequences; [fingerprint]
    exists to check exactly that cheaply. *)

type t

type handle
(** A cancellable scheduled event (or periodic series).  Handles are
    generation-stamped ints: cancelling a handle whose event already fired
    — even if the underlying slot has been recycled — is a safe no-op. *)

type impl = Wheel | Reference

val ticks_per_second : float
(** Clock resolution: 1e7 ticks per simulated second (100 ns per tick).
    Times quantize to the nearest tick on scheduling. *)

val tick_of_time : float -> int
(** Nearest-tick quantization of a time in seconds. *)

val time_of_tick : int -> float

val create :
  ?obs:Smrp_obs.Obs.t -> ?flight:Smrp_obs.Flight.recorder -> ?impl:impl -> unit -> t
(** With [obs], the engine maintains [engine.events_scheduled] /
    [engine.events_fired] / [engine.events_cancelled] (popped after
    cancellation) / [engine.events_cancelled_pending] (cancelled, not yet
    popped) counters and an [engine.queue_depth] gauge in the context's
    metrics registry.  The depth gauge counts {e live} events only —
    lazy-deleted entries still in the queue do not inflate it.

    [flight] is the always-on flight recorder ring: every schedule, fire
    and cancel writes one packed record. Defaults to the calling domain's
    ring in [Flight.global]; pass [Flight.null] to disable recording. *)

val obs : t -> Smrp_obs.Obs.t option
(** The context given at creation: layers built over the engine ([Net],
    [Protocol]) inherit it by default, so one [create ~obs] instruments the
    whole simulation. *)

val flight : t -> Smrp_obs.Flight.recorder
(** The flight-recorder ring given at creation; [Net] and [Protocol]
    record their wire and milestone events into the same ring. *)

val now : t -> float

val schedule : t -> delay:float -> (unit -> unit) -> handle
(** [schedule t ~delay f] runs [f] at [now t +. delay].  [delay >= 0]. *)

val schedule_at : t -> time:float -> (unit -> unit) -> handle
(** Absolute-time variant; [time] must not be in the past. *)

val cancel : t -> handle -> unit
(** O(1) lazy delete.  Idempotent; cancelling a fired event is a no-op. *)

val every : t -> period:float -> ?jitter:(unit -> float) -> (unit -> unit) -> handle
(** [every t ~period f] runs [f] now + period, then each period (+ optional
    jitter per firing) until the returned handle is cancelled. *)

val register : t -> (int -> int -> unit) -> int
(** [register t f] installs [f] as an int-coded event handler and returns
    its code (>= 1).  [schedule_code] events with that code call [f a b] on
    dispatch — no closure is allocated per event.  Handlers are expected to
    be registered up front, once per layer. *)

val schedule_code : t -> delay:float -> code:int -> a:int -> b:int -> unit
(** Allocation-free scheduling: at [now t +. delay] the handler registered
    for [code] is called with the two int payload words.  [delay >= 0];
    [code] must come from [register]. *)

val run : ?until:float -> t -> unit
(** Process events in time order; stops when the queue empties or the clock
    would pass [until]. *)

val step : t -> bool
(** Process one event; [false] when the queue is empty. *)

val pending : t -> int
(** Number of live (not cancelled) scheduled events. *)

val events_fired : t -> int
(** Total events dispatched so far (excludes cancelled pops). *)

val fingerprint : t -> int
(** Rolling hash over the [(tick, code)] sequence of every fired event.
    Two engines that processed the same workload in the same order have
    equal fingerprints — the cheap half of the wheel-vs-reference
    differential oracle. *)
