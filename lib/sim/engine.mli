(** Discrete-event simulation engine: a virtual clock and a time-ordered
    queue of callbacks.  Events at equal times fire in scheduling order, so
    runs are deterministic. *)

type t

type handle
(** A cancellable scheduled event. *)

val create : ?obs:Smrp_obs.Obs.t -> unit -> t
(** With [obs], the engine maintains [engine.events_scheduled] /
    [engine.events_fired] / [engine.events_cancelled] counters and an
    [engine.queue_depth] gauge in the context's metrics registry. *)

val obs : t -> Smrp_obs.Obs.t option
(** The context given at creation: layers built over the engine ([Net],
    [Protocol]) inherit it by default, so one [create ~obs] instruments the
    whole simulation. *)

val now : t -> float

val schedule : t -> delay:float -> (unit -> unit) -> handle
(** [schedule t ~delay f] runs [f] at [now t +. delay].  [delay >= 0]. *)

val schedule_at : t -> time:float -> (unit -> unit) -> handle
(** Absolute-time variant; [time] must not be in the past. *)

val cancel : handle -> unit
(** Idempotent; cancelling a fired event is a no-op. *)

val every : t -> period:float -> ?jitter:(unit -> float) -> (unit -> unit) -> handle
(** [every t ~period f] runs [f] now + period, then each period (+ optional
    jitter per firing) until the returned handle is cancelled. *)

val run : ?until:float -> t -> unit
(** Process events in time order; stops when the queue empties or the clock
    would pass [until]. *)

val step : t -> bool
(** Process one event; [false] when the queue is empty. *)

val pending : t -> int
