(** Invariant oracles for the fuzzing harness.

    Every oracle recomputes its ground truth from scratch, independently of
    the incremental bookkeeping the protocol stack maintains (the SHR cache,
    [N_R] counters, cached delays, CSR Dijkstra): an oracle that trusted the
    hot path it is auditing would be worthless.  The differential oracles
    therefore run on {!Smrp_graph.Dijkstra.run_reference}, the retained
    pre-CSR implementation. *)

type violation = { oracle : string; message : string }

(** {2 From-scratch recomputation} *)

val recompute_n_r : Smrp_core.Tree.t -> int array
(** [N_R] per node, recomputed by walking every member's tree path (Eq. 1
    ground truth); zero off-tree. *)

val recompute_shr : Smrp_core.Tree.t -> int array
(** [SHR(S,R)] per Eq. 2 over {!recompute_n_r}; meaningful for on-tree
    nodes. *)

(** {2 Structural oracles} (run after every event) *)

val structure : Smrp_core.Tree.t -> violation option
(** {!Smrp_core.Tree.validate}: acyclic, source-rooted, parent/child and
    delay consistency, pruning discipline. *)

val members_connected : Smrp_core.Tree.t -> violation option
(** Every member is on-tree and its tree path ends at the source. *)

val bookkeeping : Smrp_core.Tree.t -> violation option
(** The tree's incremental [N_R] and [SHR] equal the from-scratch
    recomputation, node by node. *)

val avoids_failure : Smrp_core.Tree.t -> Smrp_core.Failure.t -> violation option
(** No failed node or link is part of the tree (persistent failures must
    never be routed through by joins, repairs or reshaping). *)

(** {2 Join differential oracle} *)

type naive_candidate = {
  merge : int;
  attach_delay : float;
  total_delay : float;
  shr : int;
}

val naive_candidates :
  ?failure:Smrp_core.Failure.t -> Smrp_core.Tree.t -> joiner:int -> naive_candidate list
(** The exhaustive merge-point scan of §3.2.1, computed with the reference
    Dijkstra and the recomputed SHR: one candidate per on-tree node
    admitting a tree-avoiding connection, ordered by merge id. *)

val naive_select :
  d_thresh:float -> spf_distance:float -> naive_candidate list -> naive_candidate option
(** The Path Selection Criterion replicated naively (bound filter, then
    minimise [(SHR, delay, id)]; fallback to lowest delay), mirroring
    [Smrp.select]/[Smrp.join_where] tie-break for tie-break. *)

(** {2 Repair oracle} *)

val repair_replay :
  pre:Smrp_core.Tree.t ->
  failure:Smrp_core.Failure.t ->
  repairs:Smrp_core.Session.repair list ->
  post:Smrp_core.Tree.t ->
  lost:int list ->
  violation option
(** Audit one {!Smrp_core.Session.fail} episode against the pre-failure tree:

    - each detour's [RD_R] equals the delay over its own path edges;
    - each detour uses only surviving nodes/links, and only links that are
      {e new} at the moment it grafts (replaying the staged repair from a
      freshly rebuilt surviving tree);
    - the replayed tree matches [post] edge-for-edge and member-for-member;
    - members are conserved: repaired + lost = affected + dead. *)

val protected_replay :
  pre:Smrp_core.Tree.t ->
  failure:Smrp_core.Failure.t ->
  repairs:Smrp_core.Session.repair list ->
  post:Smrp_core.Tree.t ->
  lost:int list ->
  violation option
(** Audit a table-lookup repair episode (every repair carries the
    [`Protected] strategy; each one re-attached a whole orphaned branch):

    - the failure has the shape the fast path is allowed to answer (one
      link on a tree edge, or one non-source on-tree node);
    - exactly the orphaned branch roots were repaired, once each;
    - each detour's [RD_R] equals the delay over its path edges, the path
      survives the failure, and [new_total_delay] is consistent with the
      repaired tree;
    - differentially, each detour equals (merge point and [RD_R]) a
      from-scratch {!Smrp_core.Recovery.branch_detour} over the pre-failure
      tree with eligibility — on-tree, outside the orphaned region, alive,
      still serving members after the pruning — recomputed naively, sharing
      none of the tables' cached Euler tour, arenas or version stamps;
    - nobody is lost but the failed routers themselves: the surviving
      member set is conserved wholesale. *)
