module Graph = Smrp_graph.Graph
module Dijkstra = Smrp_graph.Dijkstra
module Paths = Smrp_graph.Paths
module Tree = Smrp_core.Tree
module Failure = Smrp_core.Failure
module Recovery = Smrp_core.Recovery
module Session = Smrp_core.Session

type violation = { oracle : string; message : string }

let violation oracle fmt = Format.kasprintf (fun message -> Some { oracle; message }) fmt

(* Delays accumulate in different association orders on the two sides of a
   differential check (Dijkstra sums from the joiner outward, the tree from
   the merge point down), so float comparisons get a small absolute slack. *)
let eps = 1e-6

(* -- From-scratch recomputation ---------------------------------------- *)

let recompute_n_r t =
  let n = Graph.node_count (Tree.graph t) in
  let a = Array.make n 0 in
  List.iter
    (fun m -> List.iter (fun v -> a.(v) <- a.(v) + 1) (Tree.path_to_source t m))
    (Tree.members t);
  a

let recompute_shr t =
  let n_r = recompute_n_r t in
  let n = Graph.node_count (Tree.graph t) in
  let a = Array.make n 0 in
  let source = Tree.source t in
  List.iter
    (fun v ->
      a.(v) <-
        List.fold_left
          (fun acc r -> if r = source then acc else acc + n_r.(r))
          0 (Tree.path_to_source t v))
    (Tree.on_tree_nodes t);
  a

(* -- Structural oracles ------------------------------------------------- *)

let structure t =
  match Tree.validate t with
  | Ok () -> None
  | Error msg -> violation "structure" "%s" msg

let members_connected t =
  let source = Tree.source t in
  let rec check = function
    | [] -> None
    | m :: rest ->
        if not (Tree.is_on_tree t m) then violation "members-connected" "member %d is off-tree" m
        else begin
          match List.rev (Tree.path_to_source t m) with
          | last :: _ when last = source -> check rest
          | _ -> violation "members-connected" "member %d's tree path misses the source" m
        end
  in
  check (Tree.members t)

let bookkeeping t =
  let n_r = recompute_n_r t in
  let shr = recompute_shr t in
  let n = Graph.node_count (Tree.graph t) in
  let rec check v =
    if v >= n then None
    else if Tree.subtree_members t v <> n_r.(v) then
      violation "bookkeeping" "node %d records N_R = %d, recomputation says %d" v
        (Tree.subtree_members t v) n_r.(v)
    else if Tree.is_on_tree t v && Tree.shr t v <> shr.(v) then
      violation "bookkeeping" "node %d reports SHR = %d, recomputation says %d" v (Tree.shr t v)
        shr.(v)
    else check (v + 1)
  in
  check 0

let avoids_failure t f =
  let g = Tree.graph t in
  let bad_node = List.find_opt (fun v -> not (Failure.node_ok f v)) (Tree.on_tree_nodes t) in
  match bad_node with
  | Some v -> violation "avoids-failure" "failed node %d is on the tree" v
  | None -> (
      match List.find_opt (fun e -> not (Failure.edge_ok g f e)) (Tree.tree_edges t) with
      | Some e -> violation "avoids-failure" "failed link %d carries the tree" e
      | None -> None)

(* -- Join differential oracle ------------------------------------------- *)

type naive_candidate = { merge : int; attach_delay : float; total_delay : float; shr : int }

let naive_candidates ?failure t ~joiner =
  let g = Tree.graph t in
  let alive v = match failure with None -> true | Some f -> Failure.node_ok f v in
  let absorb v = Tree.is_on_tree t v && alive v in
  let result =
    match failure with
    | None -> Dijkstra.run_reference ~absorb g ~source:joiner
    | Some f ->
        Dijkstra.run_reference ~node_ok:alive
          ~edge_ok:(fun e -> Failure.edge_ok g f e)
          ~absorb g ~source:joiner
  in
  let shr = recompute_shr t in
  let acc = ref [] in
  for merge = Graph.node_count g - 1 downto 0 do
    if merge <> joiner && absorb merge && Dijkstra.reachable result merge then begin
      let attach_delay = Option.get (Dijkstra.distance result merge) in
      acc :=
        {
          merge;
          attach_delay;
          total_delay = attach_delay +. Tree.delay_to_source t merge;
          shr = shr.(merge);
        }
        :: !acc
    end
  done;
  !acc

(* Mirrors [Smrp.join_where]'s selection loop — including its exact epsilon
   and tie-breaks — over the naive candidate list (already in ascending
   merge order). *)
let naive_select ~d_thresh ~spf_distance cands =
  let bound_epsilon = 1e-9 in
  let bound = ((1.0 +. d_thresh) *. spf_distance) +. bound_epsilon in
  let best = ref None in
  let fallback = ref None in
  List.iter
    (fun c ->
      (match !fallback with
      | Some f when f.total_delay <= c.total_delay -> ()
      | _ -> fallback := Some c);
      if c.total_delay <= bound then begin
        match !best with
        | None -> best := Some c
        | Some b ->
            if
              c.shr < b.shr
              || (c.shr = b.shr && c.total_delay < b.total_delay -. bound_epsilon)
            then best := Some c
      end)
    cands;
  match !best with Some _ as b -> b | None -> !fallback

(* -- Repair oracle ------------------------------------------------------ *)

let sorted_edges t = List.sort compare (Tree.tree_edges t)

(* -- Protected-repair oracle -------------------------------------------- *)

(* Differential for the table-lookup recovery path.  A [`Protected] repair
   re-attached a whole orphaned branch, so instead of replaying a staged
   member-by-member rebuild the oracle recomputes every branch detour from
   scratch over the pre-failure tree — the same eligibility semantics the
   tables bake in, but none of the cached state (Euler tour, path arenas,
   version stamps) — and demands the lookup answered with exactly that
   detour. *)
let protected_replay ~pre ~failure ~repairs ~post ~lost =
  let g = Tree.graph pre in
  let source = Tree.source pre in
  (* The fast path only fires for a single link on a tree edge or a single
     non-source on-tree node; [cut] roots the whole orphaned region and
     [roots] are its branch roots, one repair each. *)
  let scope =
    match failure with
    | Failure.Link eid ->
        let e = Graph.edge g eid in
        if Tree.is_on_tree pre e.Graph.u && Tree.parent_edge_id pre e.Graph.u = eid then
          Some (e.Graph.u, [ e.Graph.u ])
        else if Tree.is_on_tree pre e.Graph.v && Tree.parent_edge_id pre e.Graph.v = eid then
          Some (e.Graph.v, [ e.Graph.v ])
        else None
    | Failure.Node v ->
        if v <> source && Tree.is_on_tree pre v then Some (v, Tree.children pre v) else None
    | Failure.Multi _ -> None
  in
  match scope with
  | None -> violation "protected-scope" "a protected repair fired for an out-of-scope failure"
  | Some (cut, roots) ->
      let in_cut v = Tree.is_on_tree pre v && List.mem cut (Tree.path_to_source pre v) in
      (* Surviving members below each node: N_R recomputed with the orphaned
         region's members removed — merge eligibility after the post-failure
         pruning (the source always qualifies). *)
      let surviving = Array.make (Graph.node_count g) 0 in
      List.iter
        (fun m ->
          if not (in_cut m) then
            List.iter (fun v -> surviving.(v) <- surviving.(v) + 1) (Tree.path_to_source pre m))
        (Tree.members pre);
      let eligible v =
        Tree.is_on_tree pre v
        && (not (in_cut v))
        && Failure.node_ok failure v
        && (v = source || surviving.(v) > 0)
      in
      let dead = List.filter (fun m -> not (Failure.node_ok failure m)) (Tree.members pre) in
      let rec check_each = function
        | [] -> None
        | { Session.detour = d; _ } :: rest ->
            let root = d.Recovery.member in
            let rd = Paths.delay_of_edges g d.Recovery.path_edges in
            if not (List.mem root roots) then
              violation "protected-scope" "repair root %d is not an orphaned branch root" root
            else if abs_float (d.Recovery.recovery_distance -. rd) > eps then
              violation "protected-distance"
                "branch %d reports RD = %g but its detour links sum to %g" root
                d.Recovery.recovery_distance rd
            else if List.exists (fun v -> not (Failure.node_ok failure v)) d.Recovery.path_nodes
            then violation "protected-distance" "branch %d's detour crosses the failed node" root
            else if List.exists (fun e -> not (Failure.edge_ok g failure e)) d.Recovery.path_edges
            then violation "protected-distance" "branch %d's detour crosses the failed link" root
            else if not (Tree.is_on_tree post d.Recovery.merge) then
              violation "protected-replay" "branch %d's merge node %d is off the repaired tree"
                root d.Recovery.merge
            else if
              abs_float
                (d.Recovery.new_total_delay -. (rd +. Tree.delay_to_source post d.Recovery.merge))
              > eps
            then
              violation "protected-distance"
                "branch %d's total delay %g disagrees with RD + merge delay in the repaired tree"
                root d.Recovery.new_total_delay
            else begin
              match Recovery.branch_detour pre failure ~root ~eligible with
              | None ->
                  violation "protected-differential"
                    "the from-scratch branch search finds no detour for branch %d, the table \
                     answered one"
                    root
              | Some fresh ->
                  if fresh.Recovery.merge <> d.Recovery.merge then
                    violation "protected-differential"
                      "branch %d merges at %d; the from-scratch search selects %d" root
                      d.Recovery.merge fresh.Recovery.merge
                  else if abs_float (fresh.Recovery.recovery_distance -. rd) > eps then
                    violation "protected-differential"
                      "branch %d's RD is %g; the from-scratch search computes %g" root rd
                      fresh.Recovery.recovery_distance
                  else check_each rest
            end
      in
      let sorted l = List.sort compare l in
      (match check_each repairs with
      | Some _ as v -> v
      | None ->
          let repair_roots =
            sorted (List.map (fun r -> r.Session.detour.Recovery.member) repairs)
          in
          if repair_roots <> sorted roots then
            violation "protected-accounting" "branch roots %s repaired, expected %s"
              (String.concat "," (List.map string_of_int repair_roots))
              (String.concat "," (List.map string_of_int (sorted roots)))
          else if sorted lost <> sorted dead then
            violation "protected-accounting"
              "lost members %s, but under protection only failed routers lose service (%s)"
              (String.concat "," (List.map string_of_int (sorted lost)))
              (String.concat "," (List.map string_of_int (sorted dead)))
          else begin
            let expect =
              sorted (List.filter (fun m -> Failure.node_ok failure m) (Tree.members pre))
            in
            if sorted (Tree.members post) <> expect then
              violation "protected-accounting"
                "protection dropped a surviving member (post members %s, expected %s)"
                (String.concat "," (List.map string_of_int (sorted (Tree.members post))))
                (String.concat "," (List.map string_of_int expect))
            else None
          end)

let repair_replay ~pre ~failure ~repairs ~post ~lost =
  let g = Tree.graph pre in
  let affected = Failure.affected_members pre failure in
  let dead = List.filter (fun m -> not (Failure.node_ok failure m)) (Tree.members pre) in
  let repaired = List.map (fun r -> r.Session.detour.Recovery.member) repairs in
  let replay = Recovery.surviving_tree pre failure in
  let rec apply = function
    | [] -> None
    | { Session.detour = d; _ } :: rest ->
        let m = d.Recovery.member in
        let rd = Paths.delay_of_edges g d.Recovery.path_edges in
        if abs_float (d.Recovery.recovery_distance -. rd) > eps then
          violation "recovery-distance"
            "member %d reports RD = %g but its new links sum to %g" m
            d.Recovery.recovery_distance rd
        else if List.exists (fun v -> not (Failure.node_ok failure v)) d.Recovery.path_nodes then
          violation "recovery-distance" "member %d's detour crosses a failed node" m
        else if
          List.exists (fun e -> not (Failure.edge_ok g failure e)) d.Recovery.path_edges
        then violation "recovery-distance" "member %d's detour crosses a failed link" m
        else begin
          let current = Tree.tree_edges replay in
          match List.find_opt (fun e -> List.mem e current) d.Recovery.path_edges with
          | Some e ->
              violation "recovery-distance"
                "member %d's RD counts link %d which the tree already carries" m e
          | None -> (
              match
                (match d.Recovery.path_edges with
                | [] -> Tree.add_member replay m
                | _ ->
                    Tree.graft replay
                      ~nodes:(List.rev d.Recovery.path_nodes)
                      ~edges:(List.rev d.Recovery.path_edges);
                    Tree.add_member replay m)
              with
              | () -> apply rest
              | exception Invalid_argument msg ->
                  violation "recovery-replay" "replaying member %d's repair failed: %s" m msg)
        end
  in
  match apply repairs with
  | Some _ as v -> v
  | None ->
      if sorted_edges replay <> sorted_edges post then
        violation "recovery-replay" "replayed repair yields a different tree edge set"
      else if Tree.members replay <> Tree.members post then
        violation "recovery-replay" "replayed repair yields a different member set"
      else begin
        (* Conservation: every pre-failure member is exactly one of repaired,
           lost, dead, or untouched-and-still-served. *)
        let expected_gone = List.sort compare (affected @ dead) in
        let actual_gone = List.sort compare (repaired @ lost) in
        if expected_gone <> actual_gone then
          violation "recovery-accounting"
            "affected+dead members %s but repaired+lost %s"
            (String.concat "," (List.map string_of_int expected_gone))
            (String.concat "," (List.map string_of_int actual_gone))
        else None
      end
