(** Deterministic case executor: drives one {!Case.t} through
    {!Smrp_core.Session} and runs the {!Oracle} battery after every applied
    event.

    Events that are inapplicable in the current state (joining a member
    twice, leaving a non-member, joining a node the active failures
    disconnect, failing the source's router) are {e skipped}, not errors:
    the generator emits schedules against a membership model, not the full
    protocol state, and a skip keeps replay deterministic.  Unexpected
    exceptions from the protocol stack are violations, not crashes. *)

(** Deliberate bugs the executor can inject, to prove the oracles catch
    what they claim to catch (and to exercise the shrinker). *)
type bug =
  | No_bug
  | Skip_n_r_update
      (** After each applied join, drop one [N_R] increment at the joiner —
          the "router forgets to update SHR bookkeeping" fault of Eq. 1/2.
          Caught by the structure/bookkeeping oracles. *)
  | Drop_member_on_reshape
      (** A Condition-II sweep silently unsubscribes a member — the
          make-before-break property violated.  Caught by the reshape
          membership oracle. *)

val bug_of_string : string -> (bug, string) result

val bug_to_string : bug -> string

type stats = {
  applied : int;
  skipped : int;
  repairs : int;  (** Detours grafted across all failure events. *)
  protected : int;
      (** Of [repairs], how many were answered from the protection tables
          (whole-branch [`Protected] re-attachments); 0 unless {!run} was
          given [~protection:true]. *)
  lost : int;  (** Members permanently isolated. *)
  switches : int;  (** Reshaping path switches. *)
}

type violation = {
  index : int;  (** Position of the offending event in [case.events]. *)
  event : Case.event;
  oracle : string;
  message : string;
}

type outcome = Pass of stats | Fail of violation

val run : ?bug:bug -> ?protection:bool -> Case.t -> outcome
(** [~protection:true] (default false) runs the session with the
    precomputed-protection layer armed ({!Smrp_core.Session.create}); failure
    events repaired from the tables are audited by
    {!Oracle.protected_replay} instead of {!Oracle.repair_replay}, and every
    other oracle runs unchanged. *)

val fails : ?bug:bug -> ?protection:bool -> Case.t -> bool
(** [true] iff {!run} returns [Fail] — the shrinker's predicate. *)

val run_engine_diff : Case.t -> outcome
(** Execute the case through {!Engine_diff} instead of the tree-level
    session: the same event schedule drives a packet-level simulation on
    both the timer-wheel and the reference-heap engines, and the run fails
    unless every observable — engine fingerprint, frame accounting, member
    reports — is byte-identical.  The violation (oracle
    ["engine-differential"]) anchors at event 0 because the property is a
    whole-run comparison. *)

val pp_violation : Format.formatter -> violation -> unit
