(** Campaign driver: generate → execute → (on violation) shrink.

    Each run draws its case from an {!Smrp_rng.Rng.split} stream of the root
    seed, so run [i] of seed [s] is the same case forever — a campaign
    failure report is reproducible from [(seed, run)] alone, and the shrunk
    repro file makes it portable. *)

type config = {
  seed : int;
  runs : int;
  bug : Exec.bug;  (** Deliberate fault to inject (oracle self-test). *)
  params : Gen.params;
  max_failures : int;  (** Stop the campaign after this many failures (default 1). *)
  engine_diff : bool;
      (** Run {!Exec.run_engine_diff} instead of the tree-level executor:
          each case replays as a packet-level simulation on both the
          timer-wheel and reference-heap engines and must produce
          byte-identical outcomes.  [bug] is ignored in this mode. *)
  protection : bool;
      (** Arm the precomputed-protection layer in every session: failures
          answered from the {!Smrp_core.Protect} tables are audited by the
          {!Oracle.protected_replay} differential.  Ignored under
          [engine_diff]. *)
}

val default : config
(** seed 42, 500 runs, no bug, default generator, stop at the first failure,
    tree-level executor. *)

type failure = {
  run : int;  (** Campaign iteration that failed. *)
  case : Case.t;  (** The original draw. *)
  shrunk : Case.t;  (** Minimized by {!Shrink.shrink}. *)
  violation : Exec.violation;  (** The violation the {e shrunk} case exhibits. *)
}

type report = {
  runs : int;
  applied : int;  (** Events applied across the whole campaign. *)
  skipped : int;
  repairs : int;
  protected : int;  (** Of [repairs], answered from the protection tables. *)
  lost : int;
  switches : int;
  failures : failure list;
}

val run : config -> report

val replay : ?bug:Exec.bug -> ?engine_diff:bool -> ?protection:bool -> Case.t -> Exec.outcome
(** Re-execute one case (e.g. loaded from a repro file), through the
    engine-differential replay when [engine_diff] is set. *)

val render : report -> string
(** Human-readable campaign summary (one paragraph, plus each failure's
    violation and shrunk case). *)
