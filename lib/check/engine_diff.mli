(** Engine-differential oracle: one fuzz case, two event queues.

    A {!Case.t}'s event schedule is replayed as a full packet-level
    simulation twice — once on the production timer-wheel engine
    ({!Smrp_sim.Engine.Wheel}), once on the retained binary-heap engine
    ({!Smrp_sim.Engine.Reference}) — and every observable outcome is
    rendered to a canonical byte string: engine fingerprint and event
    counts, per-type frame accounting, and the per-member reports.  The two
    strings must be byte-identical; any divergence means the wheel ordered,
    dropped or duplicated an event the heap did not.

    Joins, leaves and failures are guarded against harness-local state only
    (never against engine-dependent simulation state), so both replays make
    the same injection decisions by construction. *)

type outcome = {
  applied : int;  (** Events injected into the simulation. *)
  skipped : int;  (** Events inapplicable at their scheduled time. *)
  mismatch : string option;
      (** [None] when the runs agree; otherwise the first digest line on
          which they differ, both renderings quoted. *)
}

val check : Case.t -> outcome
