module Rng = Smrp_rng.Rng

type config = {
  seed : int;
  runs : int;
  bug : Exec.bug;
  params : Gen.params;
  max_failures : int;
  engine_diff : bool;
  protection : bool;
}

let default =
  {
    seed = 42;
    runs = 500;
    bug = Exec.No_bug;
    params = Gen.default;
    max_failures = 1;
    engine_diff = false;
    protection = false;
  }

type failure = { run : int; case : Case.t; shrunk : Case.t; violation : Exec.violation }

type report = {
  runs : int;
  applied : int;
  skipped : int;
  repairs : int;
  protected : int;
  lost : int;
  switches : int;
  failures : failure list;
}

let replay ?bug ?(engine_diff = false) ?(protection = false) case =
  if engine_diff then Exec.run_engine_diff case else Exec.run ?bug ~protection case

let run config =
  let rng = Rng.create config.seed in
  let report =
    ref
      {
        runs = 0;
        applied = 0;
        skipped = 0;
        repairs = 0;
        protected = 0;
        lost = 0;
        switches = 0;
        failures = [];
      }
  in
  let bug = match config.bug with Exec.No_bug -> None | b -> Some b in
  let execute case =
    if config.engine_diff then Exec.run_engine_diff case
    else Exec.run ?bug ~protection:config.protection case
  in
  let case_fails case = match execute case with Exec.Fail _ -> true | Exec.Pass _ -> false in
  (let continue = ref true in
   let i = ref 0 in
   while !continue && !i < config.runs do
     let case_rng = Rng.split rng in
     let case = Gen.case ~params:config.params case_rng in
     (match execute case with
     | Exec.Pass s ->
         report :=
           {
             !report with
             runs = !report.runs + 1;
             applied = !report.applied + s.Exec.applied;
             skipped = !report.skipped + s.Exec.skipped;
             repairs = !report.repairs + s.Exec.repairs;
             protected = !report.protected + s.Exec.protected;
             lost = !report.lost + s.Exec.lost;
             switches = !report.switches + s.Exec.switches;
           }
     | Exec.Fail _ ->
         let shrunk = Shrink.shrink ~fails:case_fails case in
         let violation =
           match execute shrunk with
           | Exec.Fail v -> v
           | Exec.Pass _ -> assert false (* shrink only returns failing cases *)
         in
         report :=
           {
             !report with
             runs = !report.runs + 1;
             failures = !report.failures @ [ { run = !i; case; shrunk; violation } ];
           };
         if List.length !report.failures >= config.max_failures then continue := false);
     incr i
   done);
  !report

let render r =
  let buf = Buffer.create 512 in
  Printf.bprintf buf
    "fuzz: %d run(s), %d event(s) applied (%d skipped), %d repair(s)%s, %d lost member(s), %d \
     reshape switch(es)\n"
    r.runs r.applied r.skipped r.repairs
    (if r.protected > 0 then Printf.sprintf " (%d from protection tables)" r.protected else "")
    r.lost r.switches;
  (match r.failures with
  | [] -> Buffer.add_string buf "fuzz: all invariants held\n"
  | fs ->
      List.iter
        (fun f ->
          Printf.bprintf buf
            "fuzz: VIOLATION on run %d (original: %d events over %d nodes; shrunk: %d events \
             over %d nodes)\n"
            f.run
            (Case.event_count f.case)
            f.case.Case.n
            (Case.event_count f.shrunk)
            f.shrunk.Case.n;
          Printf.bprintf buf "  %s\n"
            (Format.asprintf "%a" Exec.pp_violation f.violation);
          Printf.bprintf buf "%s\n" (Format.asprintf "  @[<v>%a@]" Case.pp f.shrunk))
        fs);
  Buffer.contents buf
