let take n l = List.filteri (fun i _ -> i < n) l

let drop n l = List.filteri (fun i _ -> i >= n) l

(* -- Event passes ------------------------------------------------------- *)

let without_events case i count =
  {
    case with
    Case.events = take i case.Case.events @ drop (i + count) case.Case.events;
  }

(* Chunked greedy deletion: larger chunks first so long schedules collapse
   in few predicate calls, then singles to a local fixpoint. *)
let shrink_events ~fails case =
  let rec pass case chunk =
    let len = List.length case.Case.events in
    if chunk < 1 then case
    else begin
      let rec scan case i =
        if i + chunk > List.length case.Case.events then case
        else begin
          let candidate = without_events case i chunk in
          if fails candidate then scan candidate i else scan case (i + 1)
        end
      in
      let case = scan case 0 in
      pass case (if chunk > len / 2 then len / 2 else chunk / 2)
    end
  in
  let len = List.length case.Case.events in
  if len = 0 then case else pass case (max 1 (len / 2))

(* Halve large failure groups (regional balls, correlated bursts, cascade
   chains) before trying singles: a k-element Fail shrinks through its
   halves in O(log k) predicate calls where the singles pass would need
   k calls per level — and the halves preserve adjacency structure the
   singles destroy. *)
let shrink_fail_halves ~fails case =
  let try_replace case i ev =
    let events = List.mapi (fun j e -> if j = i then ev else e) case.Case.events in
    let candidate = { case with Case.events } in
    if fails candidate then Some candidate else None
  in
  let rebuild elements =
    let links = List.filter_map (function `Link l -> Some l | `Node _ -> None) elements in
    let nodes = List.filter_map (function `Node v -> Some v | `Link _ -> None) elements in
    Case.Fail { links; nodes }
  in
  let rec go case i =
    if i >= List.length case.Case.events then case
    else begin
      match List.nth case.Case.events i with
      | Case.Fail { links; nodes } when List.length links + List.length nodes > 2 ->
          let elements =
            List.map (fun l -> `Link l) links @ List.map (fun v -> `Node v) nodes
          in
          let k = List.length elements in
          let halves = [ take (k / 2) elements; drop (k / 2) elements ] in
          let rec first = function
            | [] -> go case (i + 1)
            | es :: rest -> (
                match try_replace case i (rebuild es) with
                (* Same index again: keep halving until the group is small
                   or no half reproduces. *)
                | Some candidate -> go candidate i
                | None -> first rest)
          in
          first halves
      | _ -> go case (i + 1)
    end
  in
  go case 0

(* Split correlated failures: try each single element of a multi-element
   Fail event. *)
let shrink_fail_elements ~fails case =
  let try_replace case i ev =
    let events = List.mapi (fun j e -> if j = i then ev else e) case.Case.events in
    let candidate = { case with Case.events } in
    if fails candidate then Some candidate else None
  in
  let rec go case i =
    if i >= List.length case.Case.events then case
    else begin
      match List.nth case.Case.events i with
      | Case.Fail { links; nodes } when List.length links + List.length nodes > 1 ->
          let singles =
            List.map (fun l -> Case.Fail { links = [ l ]; nodes = [] }) links
            @ List.map (fun v -> Case.Fail { links = []; nodes = [ v ] }) nodes
          in
          let rec first = function
            | [] -> go case (i + 1)
            | ev :: rest -> (
                match try_replace case i ev with
                | Some candidate -> go candidate (i + 1)
                | None -> first rest)
          in
          first singles
      | _ -> go case (i + 1)
    end
  in
  go case 0

(* -- Edge pass ---------------------------------------------------------- *)

(* Removing edge [e] renumbers every id above it; failure events referencing
   [e] itself lose that element (and disappear when emptied). *)
let without_edge case e =
  let edges = List.filteri (fun i _ -> i <> e) case.Case.edges in
  let remap l = List.filter_map (fun l' -> if l' = e then None else Some (if l' > e then l' - 1 else l')) l in
  let events =
    List.filter_map
      (fun ev ->
        match ev with
        | Case.Fail { links; nodes } ->
            let links = remap links in
            if links = [] && nodes = [] then None else Some (Case.Fail { links; nodes })
        | other -> Some other)
      case.Case.events
  in
  { case with Case.edges; events }

let shrink_edges ~fails case =
  let rec go case e =
    if e < 0 then case
    else begin
      let candidate = without_edge case e in
      if fails candidate then go candidate (e - 1) else go case (e - 1)
    end
  in
  go case (List.length case.Case.edges - 1)

(* -- Node pass ---------------------------------------------------------- *)

let referenced_nodes case =
  let used = Array.make case.Case.n false in
  used.(case.Case.source) <- true;
  List.iter
    (fun (u, v, _) ->
      used.(u) <- true;
      used.(v) <- true)
    case.Case.edges;
  List.iter
    (fun ev ->
      match ev with
      | Case.Join v | Case.Leave v -> used.(v) <- true
      | Case.Fail { nodes; _ } -> List.iter (fun v -> used.(v) <- true) nodes
      | Case.Reshape -> ())
    case.Case.events;
  used

let compact_nodes ~fails case =
  let used = referenced_nodes case in
  let n' = Array.fold_left (fun acc u -> if u then acc + 1 else acc) 0 used in
  if n' = case.Case.n then case
  else begin
    let remap = Array.make case.Case.n (-1) in
    let next = ref 0 in
    Array.iteri
      (fun v u ->
        if u then begin
          remap.(v) <- !next;
          incr next
        end)
      used;
    let candidate =
      {
        case with
        Case.n = n';
        source = remap.(case.Case.source);
        edges = List.map (fun (u, v, d) -> (remap.(u), remap.(v), d)) case.Case.edges;
        events =
          List.map
            (fun ev ->
              match ev with
              | Case.Join v -> Case.Join remap.(v)
              | Case.Leave v -> Case.Leave remap.(v)
              | Case.Fail { links; nodes } ->
                  Case.Fail { links; nodes = List.map (fun v -> remap.(v)) nodes }
              | Case.Reshape -> Case.Reshape)
            case.Case.events;
      }
    in
    if fails candidate then candidate else case
  end

(* -- Driver ------------------------------------------------------------- *)

let size case = (List.length case.Case.events, List.length case.Case.edges, case.Case.n)

let shrink ~fails case =
  if not (fails case) then case
  else begin
    let rec fixpoint case iterations =
      if iterations = 0 then case
      else begin
        let case' =
          case |> shrink_events ~fails |> shrink_fail_halves ~fails
          |> shrink_fail_elements ~fails |> shrink_edges ~fails |> compact_nodes ~fails
        in
        if size case' = size case then case' else fixpoint case' (iterations - 1)
      end
    in
    fixpoint case 8
  end
