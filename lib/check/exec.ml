module Graph = Smrp_graph.Graph
module Tree = Smrp_core.Tree
module Smrp = Smrp_core.Smrp
module Query = Smrp_core.Query
module Failure = Smrp_core.Failure
module Recovery = Smrp_core.Recovery
module Session = Smrp_core.Session
module Flight = Smrp_obs.Flight
module Causal = Smrp_obs.Causal

type bug = No_bug | Skip_n_r_update | Drop_member_on_reshape

let bug_of_string = function
  | "none" -> Ok No_bug
  | "skip-shr" -> Ok Skip_n_r_update
  | "drop-member" -> Ok Drop_member_on_reshape
  | s -> Error (Printf.sprintf "unknown bug %S (expected none, skip-shr or drop-member)" s)

let bug_to_string = function
  | No_bug -> "none"
  | Skip_n_r_update -> "skip-shr"
  | Drop_member_on_reshape -> "drop-member"

type stats = {
  applied : int;
  skipped : int;
  repairs : int;
  protected : int;
  lost : int;
  switches : int;
}

type violation = { index : int; event : Case.event; oracle : string; message : string }

type outcome = Pass of stats | Fail of violation

let eps = 1e-6

(* Events are folded with an explicit result so one violation stops the
   run; each step yields what happened plus any stat increments. *)
type step =
  | Applied of { repairs : int; protected : int; lost : int; switches : int }
  | Skipped
  | Bad of Oracle.violation

let applied = Applied { repairs = 0; protected = 0; lost = 0; switches = 0 }

let bad (v : Oracle.violation) = Bad v

let check checks =
  let rec first = function
    | [] -> applied
    | c :: rest -> ( match c () with Some v -> bad v | None -> first rest)
  in
  first checks

(* -- Join -------------------------------------------------------------- *)

(* The delay-bound oracle (§3.2.2) plus the differential oracle: the join
   the session executed must match the exhaustive naive merge-point scan,
   merge node and delay alike. *)
let smrp_join_checks s ~d_thresh ~spf ~pre_on_tree ~expected ~bounded_exists m () =
  let tree = Session.tree s in
  if not (Tree.is_member tree m) then
    Some { Oracle.oracle = "join"; message = Printf.sprintf "join of %d did not subscribe it" m }
  else begin
    let delay = Tree.delay_to_source tree m in
    let bound = ((1.0 +. d_thresh) *. spf) +. 1e-9 in
    if bounded_exists && delay > bound +. eps then
      Some
        {
          Oracle.oracle = "join-delay-bound";
          message =
            Printf.sprintf
              "member %d joined at delay %g, over the bound %g despite a bounded candidate" m
              delay bound;
        }
    else begin
      let actual_merge =
        List.find_opt (fun v -> pre_on_tree.(v)) (Tree.path_to_source tree m)
      in
      match (actual_merge, expected) with
      | Some got, Some (exp : Oracle.naive_candidate) ->
          if got <> exp.Oracle.merge then
            Some
              {
                Oracle.oracle = "join-differential";
                message =
                  Printf.sprintf "member %d merged at %d; the naive scan selects %d" m got
                    exp.Oracle.merge;
              }
          else if abs_float (delay -. exp.Oracle.total_delay) > eps then
            Some
              {
                Oracle.oracle = "join-differential";
                message =
                  Printf.sprintf "member %d joined at delay %g; the naive scan computes %g" m
                    delay exp.Oracle.total_delay;
              }
          else None
      | None, _ ->
          Some
            {
              Oracle.oracle = "join";
              message = Printf.sprintf "member %d's new path never meets the old tree" m;
            }
      | _, None -> None
    end
  end

(* §3.3.1 differential: every query-discovered candidate must be a (possibly
   longer) connection to a merge point the full-topology scan also knows,
   and when the query's choice meets the delay bound, the full-topology
   selection can only be at least as good on SHR. *)
let query_join_checks s ~d_thresh ~spf ~pre_on_tree ~qcands ~full m () =
  let tree = Session.tree s in
  let unsound =
    List.find_opt
      (fun (q : Smrp.candidate) ->
        not
          (List.exists
             (fun (f : Oracle.naive_candidate) ->
               f.Oracle.merge = q.Smrp.merge
               && f.Oracle.attach_delay <= q.Smrp.attach_delay +. eps)
             full))
      qcands
  in
  match unsound with
  | Some q ->
      Some
        {
          Oracle.oracle = "query-differential";
          message =
            Printf.sprintf
              "query candidate at merge %d (delay %g) beats the exhaustive scan or names an \
               unknown merge point"
              q.Smrp.merge q.Smrp.attach_delay;
        }
  | None -> (
      match Smrp.select ~d_thresh ~spf_distance:spf qcands with
      | None -> None (* the session fell back to the SPF join *)
      | Some chosen ->
          let delay = Tree.delay_to_source tree m in
          let got = List.find_opt (fun v -> pre_on_tree.(v)) (Tree.path_to_source tree m) in
          if got <> Some chosen.Smrp.merge then
            Some
              {
                Oracle.oracle = "query-differential";
                message =
                  Printf.sprintf
                    "query join of %d merged at %s; selection over the query answers picks %d" m
                    (match got with Some v -> string_of_int v | None -> "?")
                    chosen.Smrp.merge;
              }
          else if abs_float (delay -. chosen.Smrp.total_delay) > eps then
            Some
              {
                Oracle.oracle = "query-differential";
                message =
                  Printf.sprintf "query join of %d landed at delay %g, selection computes %g" m
                    delay chosen.Smrp.total_delay;
              }
          else begin
            let bound = ((1.0 +. d_thresh) *. spf) +. 1e-9 in
            let full_best = Oracle.naive_select ~d_thresh ~spf_distance:spf full in
            match full_best with
            | Some fb
              when chosen.Smrp.total_delay <= bound
                   && fb.Oracle.total_delay <= bound
                   && fb.Oracle.shr > chosen.Smrp.shr ->
                Some
                  {
                    Oracle.oracle = "query-differential";
                    message =
                      Printf.sprintf
                        "full-topology selection (SHR %d) is worse than the partial-topology one \
                         (SHR %d) — the query set cannot beat the exhaustive scan"
                        fb.Oracle.shr chosen.Smrp.shr;
                  }
            | _ -> None
          end)

let apply_join s (case : Case.t) ~bug m =
  let tree = Session.tree s in
  let failure = Session.active_failure s in
  let dead = match failure with Some f -> not (Failure.node_ok f m) | None -> false in
  if Tree.is_member tree m || dead then Skipped
  else
    match Smrp.spf_distance ?failure tree m with
    | None -> Skipped
    | Some spf ->
        let inject_bug () =
          if bug = Skip_n_r_update then
            Tree.unsafe_tweak_subtree_members (Session.tree s) m (-1)
        in
        if Tree.is_on_tree tree m then begin
          (* Relay subscription: zero-cost, path kept verbatim. *)
          let d0 = Tree.delay_to_source tree m in
          Session.join s m;
          inject_bug ();
          check
            [
              (fun () ->
                if abs_float (Tree.delay_to_source (Session.tree s) m -. d0) > eps then
                  Some
                    {
                      Oracle.oracle = "join";
                      message =
                        Printf.sprintf "relay subscription of %d changed its path delay" m;
                    }
                else None);
            ]
        end
        else begin
          let pre_on_tree =
            Array.init (Graph.node_count (Tree.graph tree)) (fun v -> Tree.is_on_tree tree v)
          in
          let d_thresh = case.Case.d_thresh in
          match (case.Case.protocol, failure) with
          | Case.Spf, _ ->
              Session.join s m;
              applied
          | Case.Smrp, _ | Case.Smrp_query, Some _ ->
              let cands = Oracle.naive_candidates ?failure tree ~joiner:m in
              if cands = [] then Skipped
              else begin
                let bound = ((1.0 +. d_thresh) *. spf) +. 1e-9 in
                let bounded_exists =
                  List.exists (fun c -> c.Oracle.total_delay <= bound) cands
                in
                let expected = Oracle.naive_select ~d_thresh ~spf_distance:spf cands in
                Session.join s m;
                inject_bug ();
                check
                  [ smrp_join_checks s ~d_thresh ~spf ~pre_on_tree ~expected ~bounded_exists m ]
              end
          | Case.Smrp_query, None ->
              let qcands = Query.candidates tree ~joiner:m in
              let full = Oracle.naive_candidates tree ~joiner:m in
              if full = [] then Skipped
              else begin
                Session.join s m;
                inject_bug ();
                check [ query_join_checks s ~d_thresh ~spf ~pre_on_tree ~qcands ~full m ]
              end
        end

(* -- Fail -------------------------------------------------------------- *)

let lost_since events pre_len =
  let rec drop n l = if n = 0 then l else match l with [] -> [] | _ :: tl -> drop (n - 1) tl in
  List.filter_map (function Session.Lost m -> Some m | _ -> None) (drop pre_len events)

let apply_fail s (case : Case.t) ev =
  match Case.failure ev with
  | None -> Skipped
  | Some f ->
      let kills_source =
        match ev with
        | Case.Fail { nodes; _ } -> List.mem case.Case.source nodes
        | _ -> false
      in
      if kills_source then Skipped
      else begin
        let pre = Session.tree s in
        let pre_events = List.length (Session.events s) in
        let repairs = Session.fail s f in
        let f_all = Option.get (Session.active_failure s) in
        let lost = lost_since (Session.events s) pre_events in
        (* The session either answered from the protection tables (every
           repair is [`Protected] — the fallback is all-or-nothing) or ran
           the staged search; each gets its own oracle. *)
        let protected_run =
          List.exists (fun r -> r.Session.strategy = `Protected) repairs
        in
        match
          if protected_run then
            Oracle.protected_replay ~pre ~failure:f_all ~repairs ~post:(Session.tree s) ~lost
          else Oracle.repair_replay ~pre ~failure:f_all ~repairs ~post:(Session.tree s) ~lost
        with
        | Some v -> bad v
        | None ->
            Applied
              {
                repairs = List.length repairs;
                protected = (if protected_run then List.length repairs else 0);
                lost = List.length lost;
                switches = 0;
              }
      end

(* -- Reshape ----------------------------------------------------------- *)

let apply_reshape s ~bug =
  let pre_members = Tree.members (Session.tree s) in
  let switches = Session.reshape_all s in
  if bug = Drop_member_on_reshape then begin
    match Tree.members (Session.tree s) with
    | m :: _ -> Tree.remove_member (Session.tree s) m
    | [] -> ()
  end;
  let post_members = Tree.members (Session.tree s) in
  if pre_members <> post_members then
    bad
      {
        Oracle.oracle = "reshape-membership";
        message =
          Printf.sprintf "reshaping changed the member set (%d members before, %d after)"
            (List.length pre_members) (List.length post_members);
      }
  else Applied { repairs = 0; protected = 0; lost = 0; switches }

(* -- Driver ------------------------------------------------------------ *)

let common_oracles s () =
  let tree = Session.tree s in
  match Oracle.structure tree with
  | Some v -> Some v
  | None -> (
      match Oracle.members_connected tree with
      | Some v -> Some v
      | None -> (
          match Oracle.bookkeeping tree with
          | Some v -> Some v
          | None -> (
              match Session.active_failure s with
              | Some f -> Oracle.avoids_failure tree f
              | None -> None)))

(* Flight records for the tree-level driver: no engine, so the pseudo-tick
   is the schedule event index. One record per event before it executes,
   one per oracle violation — enough for `smrp inspect` to rebuild the
   causal story of a failing case. *)
let record_event fl index ev =
  let kind, operand =
    match ev with
    | Case.Join m -> (Causal.kind_join, m)
    | Case.Leave m -> (Causal.kind_leave, m)
    | Case.Fail { links; nodes } -> (Causal.kind_fail, List.length links + List.length nodes)
    | Case.Reshape -> (Causal.kind_reshape, 0)
  in
  Flight.record fl ~tick:index ~code:Flight.exec_event
    ~a:(Causal.pack_exec_event ~kind ~operand)
    ~b:index

let record_violation fl index oracle =
  Flight.record fl ~tick:index ~code:Flight.exec_violation ~a:(Causal.oracle_id oracle)
    ~b:index

let run ?(bug = No_bug) ?(protection = false) (case : Case.t) =
  let fl = Flight.recorder Flight.global in
  let g = Case.graph case in
  let protocol =
    match case.Case.protocol with
    | Case.Spf -> Session.Spf
    | Case.Smrp -> Session.Smrp { d_thresh = case.Case.d_thresh }
    | Case.Smrp_query -> Session.Smrp_query { d_thresh = case.Case.d_thresh }
  in
  let s = Session.create ~protection g ~source:case.Case.source ~protocol in
  let stats = ref { applied = 0; skipped = 0; repairs = 0; protected = 0; lost = 0; switches = 0 } in
  let rec go index = function
    | [] -> Pass !stats
    | ev :: rest -> (
        record_event fl index ev;
        let step =
          match
            match ev with
            | Case.Join m -> apply_join s case ~bug m
            | Case.Leave m ->
                if Tree.is_member (Session.tree s) m then begin
                  Session.leave s m;
                  applied
                end
                else Skipped
            | Case.Fail _ -> apply_fail s case ev
            | Case.Reshape -> apply_reshape s ~bug
          with
          | step -> step
          | exception exn ->
              bad
                {
                  Oracle.oracle = "exception";
                  message = Printf.sprintf "event raised %s" (Printexc.to_string exn);
                }
        in
        match step with
        | Bad { Oracle.oracle; message } ->
            record_violation fl index oracle;
            Fail { index; event = ev; oracle; message }
        | Skipped ->
            stats := { !stats with skipped = !stats.skipped + 1 };
            go (index + 1) rest
        | Applied d -> (
            stats :=
              {
                applied = !stats.applied + 1;
                skipped = !stats.skipped;
                repairs = !stats.repairs + d.repairs;
                protected = !stats.protected + d.protected;
                lost = !stats.lost + d.lost;
                switches = !stats.switches + d.switches;
              };
            match common_oracles s () with
            | Some { Oracle.oracle; message } ->
                record_violation fl index oracle;
                Fail { index; event = ev; oracle; message }
            | None -> go (index + 1) rest))
  in
  go 0 case.Case.events

let fails ?bug ?protection case =
  match run ?bug ?protection case with Fail _ -> true | Pass _ -> false

(* -- Engine differential ------------------------------------------------ *)

(* The whole-run oracle has no single offending event; violations anchor at
   the schedule head so the report and shrinker machinery apply unchanged. *)
let anchor (case : Case.t) =
  match case.Case.events with ev :: _ -> ev | [] -> Case.Reshape

let run_engine_diff (case : Case.t) =
  match Engine_diff.check case with
  | { Engine_diff.mismatch = None; applied; skipped } ->
      Pass { applied; skipped; repairs = 0; protected = 0; lost = 0; switches = 0 }
  | { Engine_diff.mismatch = Some message; _ } ->
      record_violation (Flight.recorder Flight.global) 0 "engine-differential";
      Fail { index = 0; event = anchor case; oracle = "engine-differential"; message }
  | exception exn ->
      Fail
        {
          index = 0;
          event = anchor case;
          oracle = "exception";
          message = Printf.sprintf "engine-differential replay raised %s" (Printexc.to_string exn);
        }

let pp_violation ppf v =
  Format.fprintf ppf "event %d (%a): oracle %S: %s" v.index Case.pp_event v.event v.oracle
    v.message
