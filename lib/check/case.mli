(** Self-contained, replayable fuzz cases.

    A case carries everything {!Exec.run} needs to reproduce a run
    bit-for-bit: an explicit topology (node count plus an edge list whose
    positions are the edge ids), the session parameters, and the event
    schedule.  Cases serialize to JSON (via {!Bench_support.Bench_json}) so a
    failing draw survives as a repro file that replays across machines and
    commits; {!Shrink} rewrites cases structurally, which is why the topology
    is explicit rather than a generator seed. *)

type protocol = Spf | Smrp | Smrp_query

type event =
  | Join of int
  | Leave of int
  | Fail of { links : int list; nodes : int list }
      (** One persistent failure event; more than one element models the
          correlated (SRLG-style) failures of the transient-failure
          literature. *)
  | Reshape  (** A Condition-II timer fire: one {!Smrp_core.Reshape.stabilize} sweep. *)

type t = {
  n : int;  (** Node count; nodes are [0 .. n-1]. *)
  edges : (int * int * float) list;
      (** [(u, v, delay)] with cost = delay; list position is the edge id. *)
  source : int;
  protocol : protocol;
  d_thresh : float;
  events : event list;
}

val graph : t -> Smrp_graph.Graph.t
(** Build the topology; edge ids equal positions in [edges]. *)

val failure : event -> Smrp_core.Failure.t option
(** The composed failure of a [Fail] event; [None] for other events or an
    empty element list. *)

val event_count : t -> int

val to_json : t -> Bench_support.Bench_json.t

val of_json : Bench_support.Bench_json.t -> (t, string) result
(** Validates ranges (nodes, edge ids, delays) so a hand-edited repro fails
    loudly rather than crashing the executor. *)

val save : string -> t -> unit

val load : string -> (t, string) result

val pp_event : Format.formatter -> event -> unit

val pp : Format.formatter -> t -> unit
