(** Greedy case minimizer.

    Given a failing case and the failure predicate (normally
    [Exec.fails ?bug]), repeatedly applies reduction passes and keeps every
    candidate that still fails:

    - {b events}: chunked-then-single greedy deletion (delta-debugging
      style), plus binary halving of large failure groups (regional balls,
      correlated bursts, cascade chains) and then splitting what remains
      into single elements;
    - {b edges}: deleting one graph edge at a time, remapping the edge ids
      failure events refer to;
    - {b nodes}: compacting away isolated nodes nothing references,
      renumbering the survivors.

    Passes loop until a full round makes no progress.  The result fails the
    same predicate (possibly via a different oracle — standard shrinking
    semantics) and is usually a handful of events over a handful of
    nodes. *)

val shrink : fails:(Case.t -> bool) -> Case.t -> Case.t
(** [shrink ~fails case] requires [fails case = true] and returns a minimal
    failing case; returns [case] unchanged if it does not fail. *)
