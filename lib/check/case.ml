module Json = Bench_support.Bench_json
module Graph = Smrp_graph.Graph
module Failure = Smrp_core.Failure

type protocol = Spf | Smrp | Smrp_query

type event =
  | Join of int
  | Leave of int
  | Fail of { links : int list; nodes : int list }
  | Reshape

type t = {
  n : int;
  edges : (int * int * float) list;
  source : int;
  protocol : protocol;
  d_thresh : float;
  events : event list;
}

let graph t =
  let g = Graph.create t.n in
  List.iter (fun (u, v, delay) -> ignore (Graph.add_edge g u v delay)) t.edges;
  g

let failure = function
  | Fail { links = []; nodes = [] } | Join _ | Leave _ | Reshape -> None
  | Fail { links; nodes } ->
      Some
        (Failure.compose
           (List.map (fun e -> Failure.Link e) links @ List.map (fun v -> Failure.Node v) nodes))

let event_count t = List.length t.events

let protocol_name = function Spf -> "spf" | Smrp -> "smrp" | Smrp_query -> "smrp-query"

let format_tag = "smrp-fuzz-repro"

let json_of_event e =
  let ilist l = Json.List (List.map (fun i -> Json.Num (float_of_int i)) l) in
  match e with
  | Join v -> Json.Obj [ ("op", Json.Str "join"); ("node", Json.Num (float_of_int v)) ]
  | Leave v -> Json.Obj [ ("op", Json.Str "leave"); ("node", Json.Num (float_of_int v)) ]
  | Fail { links; nodes } ->
      Json.Obj [ ("op", Json.Str "fail"); ("links", ilist links); ("nodes", ilist nodes) ]
  | Reshape -> Json.Obj [ ("op", Json.Str "reshape") ]

let to_json t =
  Json.Obj
    [
      ("format", Json.Str format_tag);
      ("version", Json.Num 1.0);
      ( "topology",
        Json.Obj
          [
            ("nodes", Json.Num (float_of_int t.n));
            ("source", Json.Num (float_of_int t.source));
            ( "edges",
              Json.List
                (List.map
                   (fun (u, v, d) ->
                     Json.List
                       [ Json.Num (float_of_int u); Json.Num (float_of_int v); Json.Num d ])
                   t.edges) );
          ] );
      ( "protocol",
        Json.Obj
          [ ("name", Json.Str (protocol_name t.protocol)); ("d_thresh", Json.Num t.d_thresh) ]
      );
      ("events", Json.List (List.map json_of_event t.events));
    ]

(* -- Parsing (with range validation) ----------------------------------- *)

exception Bad of string

let fail fmt = Printf.ksprintf (fun s -> raise (Bad s)) fmt

let get what f j = match f j with Some x -> x | None -> fail "%s: wrong type or missing" what

let int_of what j =
  let x = get what Json.to_num j in
  let i = int_of_float x in
  if float_of_int i <> x then fail "%s: not an integer" what;
  i

let member what k j = match Json.member k j with Some v -> v | None -> fail "%s: missing %S" what k

let node_in_range what n v = if v < 0 || v >= n then fail "%s: node %d out of range" what v

let of_json j =
  try
    (match Json.member "format" j with
    | Some (Json.Str s) when s = format_tag -> ()
    | _ -> fail "not a %s file" format_tag);
    let topo = member "case" "topology" j in
    let n = int_of "nodes" (member "topology" "nodes" topo) in
    if n < 1 then fail "topology: needs at least one node";
    let source = int_of "source" (member "topology" "source" topo) in
    node_in_range "source" n source;
    let edges =
      match member "topology" "edges" topo with
      | Json.List es ->
          List.map
            (fun e ->
              match e with
              | Json.List [ u; v; d ] ->
                  let u = int_of "edge endpoint" u and v = int_of "edge endpoint" v in
                  node_in_range "edge" n u;
                  node_in_range "edge" n v;
                  if u = v then fail "edge: self-loop at %d" u;
                  let d = get "edge delay" Json.to_num d in
                  if not (d > 0.0) then fail "edge: non-positive delay";
                  (u, v, d)
              | _ -> fail "edge: expected [u, v, delay]")
            es
      | _ -> fail "topology: edges must be a list"
    in
    let ecount = List.length edges in
    let protocol, d_thresh =
      let p = member "case" "protocol" j in
      let name = get "protocol name" Json.to_str (member "protocol" "name" p) in
      let d = get "d_thresh" Json.to_num (member "protocol" "d_thresh" p) in
      if d < 0.0 then fail "protocol: negative d_thresh";
      ( (match name with
        | "spf" -> Spf
        | "smrp" -> Smrp
        | "smrp-query" -> Smrp_query
        | other -> fail "protocol: unknown name %S" other),
        d )
    in
    let ints what j =
      match j with
      | Json.List l -> List.map (int_of what) l
      | _ -> fail "%s: expected a list" what
    in
    let events =
      match member "case" "events" j with
      | Json.List es ->
          List.map
            (fun e ->
              match Json.member "op" e with
              | Some (Json.Str "join") ->
                  let v = int_of "join node" (member "join" "node" e) in
                  node_in_range "join" n v;
                  Join v
              | Some (Json.Str "leave") ->
                  let v = int_of "leave node" (member "leave" "node" e) in
                  node_in_range "leave" n v;
                  Leave v
              | Some (Json.Str "fail") ->
                  let links = ints "fail links" (member "fail" "links" e) in
                  List.iter
                    (fun l -> if l < 0 || l >= ecount then fail "fail: edge %d out of range" l)
                    links;
                  let nodes = ints "fail nodes" (member "fail" "nodes" e) in
                  List.iter (node_in_range "fail" n) nodes;
                  Fail { links; nodes }
              | Some (Json.Str "reshape") -> Reshape
              | _ -> fail "event: missing or unknown op")
            es
      | _ -> fail "events: expected a list"
    in
    (* Duplicate edges would make Graph.create raise at replay time. *)
    let seen = Hashtbl.create 16 in
    List.iter
      (fun (u, v, _) ->
        let k = (min u v, max u v) in
        if Hashtbl.mem seen k then fail "edge: duplicate %d--%d" u v;
        Hashtbl.add seen k ())
      edges;
    Ok { n; edges; source; protocol; d_thresh; events }
  with
  | Bad msg -> Error msg
  | Json.Parse_error msg -> Error msg

let save file t =
  let oc = open_out file in
  output_string oc (Json.to_string (to_json t));
  output_char oc '\n';
  close_out oc

let load file =
  match open_in file with
  | exception Sys_error msg -> Error msg
  | ic ->
      let len = in_channel_length ic in
      let s = really_input_string ic len in
      close_in ic;
      (match Json.parse s with
      | exception Json.Parse_error msg -> Error msg
      | j -> of_json j)

let pp_event ppf = function
  | Join v -> Format.fprintf ppf "join %d" v
  | Leave v -> Format.fprintf ppf "leave %d" v
  | Fail { links; nodes } ->
      Format.fprintf ppf "fail";
      List.iter (Format.fprintf ppf " link:%d") links;
      List.iter (Format.fprintf ppf " node:%d") nodes
  | Reshape -> Format.fprintf ppf "reshape"

let pp ppf t =
  Format.fprintf ppf "@[<v>case: %d nodes, %d edges, source %d, %s (D_thresh %g), %d events"
    t.n (List.length t.edges) t.source (protocol_name t.protocol) t.d_thresh
    (List.length t.events);
  List.iteri (fun i e -> Format.fprintf ppf "@,  %2d: %a" i pp_event e) t.events;
  Format.fprintf ppf "@]"
