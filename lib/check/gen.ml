module Graph = Smrp_graph.Graph
module Rng = Smrp_rng.Rng
module Waxman = Smrp_topology.Waxman
module Transit_stub = Smrp_topology.Transit_stub

type params = {
  min_nodes : int;
  max_nodes : int;
  max_events : int;
  transit_stub_share : float;
}

let default = { min_nodes = 8; max_nodes = 36; max_events = 24; transit_stub_share = 0.25 }

let edges_of_graph g =
  List.rev (Graph.fold_edges (fun acc e -> (e.Graph.u, e.Graph.v, e.Graph.delay) :: acc) [] g)

let topology params rng =
  if Rng.float rng 1.0 < params.transit_stub_share then begin
    let p =
      {
        Transit_stub.transit_domains = 1 + Rng.int rng 2;
        transit_nodes_per_domain = 2 + Rng.int rng 2;
        stubs_per_transit_node = 1;
        stub_nodes = 2 + Rng.int rng 3;
        stub_alpha = 0.6;
        stub_beta = 0.6;
      }
    in
    (Transit_stub.generate rng p).Transit_stub.graph
  end
  else begin
    let n = params.min_nodes + Rng.int rng (params.max_nodes - params.min_nodes + 1) in
    let alpha = 0.15 +. Rng.float rng 0.3 in
    let beta = 0.2 +. Rng.float rng 0.4 in
    let link_delay = if Rng.bool rng then `Euclidean else `Unit in
    (Waxman.generate ~link_delay rng ~n ~alpha ~beta).Waxman.graph
  end

(* The schedule model tracks intended membership and failed elements so the
   draw is mostly applicable; the executor's skip logic covers the rest
   (e.g. joins that active failures have disconnected). *)
let schedule params rng g ~source =
  let n = Graph.node_count g in
  let edge_count = Graph.edge_count g in
  let members = Hashtbl.create 16 in
  let failed_links = Hashtbl.create 8 in
  let failed_nodes = Hashtbl.create 8 in
  let len = 4 + Rng.int rng (max 1 (params.max_events - 3)) in
  let fresh_node () =
    let candidates =
      List.filter
        (fun v -> v <> source && (not (Hashtbl.mem members v)) && not (Hashtbl.mem failed_nodes v))
        (List.init n Fun.id)
    in
    match candidates with [] -> None | l -> Some (List.nth l (Rng.int rng (List.length l)))
  in
  let some_member () =
    match Hashtbl.fold (fun m () acc -> m :: acc) members [] with
    | [] -> None
    | l -> Some (List.nth (List.sort compare l) (Rng.int rng (List.length l)))
  in
  let fresh_link () =
    if edge_count = 0 || Hashtbl.length failed_links >= max 1 (edge_count / 4) then None
    else begin
      let e = Rng.int rng edge_count in
      if Hashtbl.mem failed_links e then None else Some e
    end
  in
  let fail_element () =
    (* 2/3 links, 1/3 nodes; node failures may hit members (the Lost path). *)
    if Rng.int rng 3 < 2 then
      match fresh_link () with
      | Some e ->
          Hashtbl.replace failed_links e ();
          Some ([ e ], [])
      | None -> None
    else begin
      let v = Rng.int rng n in
      if v = source || Hashtbl.mem failed_nodes v then None
      else begin
        Hashtbl.replace failed_nodes v ();
        Hashtbl.remove members v;
        Some ([], [ v ])
      end
    end
  in
  let join () =
    match fresh_node () with
    | Some v ->
        Hashtbl.replace members v ();
        Some (Case.Join v)
    | None -> None
  in
  (* Regional outage: a hop-1 ball around a random centre, capped so the
     case stays mostly repairable.  Everything in the ball goes down at
     once — the executor's Lost path and the repair search both get
     exercised against a spatially clustered hole. *)
  let regional_ball () =
    let center = Rng.int rng n in
    if center = source || Hashtbl.mem failed_nodes center then None
    else begin
      let ball = ref [ center ] in
      Graph.iter_neighbors g center (fun v _ _ ->
          if
            v <> source
            && (not (Hashtbl.mem failed_nodes v))
            && not (List.mem v !ball)
          then ball := v :: !ball);
      let ball = List.filteri (fun i _ -> i < 4) (List.rev !ball) in
      List.iter
        (fun v ->
          Hashtbl.replace failed_nodes v ();
          Hashtbl.remove members v)
        ball;
      Some (Case.Fail { links = []; nodes = ball })
    end
  in
  (* Cascading-style chain: a seed link plus adjacent links, as when a
     failure's re-routed traffic overloads the next link along.  The walk
     is deterministic in CSR order; the RNG picks the seed and length. *)
  let chain () =
    if edge_count = 0 then None
    else begin
      let e0 = Rng.int rng edge_count in
      if Hashtbl.mem failed_links e0 then None
      else begin
        let chain = ref [ e0 ] in
        let cur = ref e0 in
        let len = 2 + Rng.int rng 2 in
        (try
           for _ = 2 to len do
             let e = Graph.edge g !cur in
             let next = ref (-1) in
             let probe u =
               Graph.iter_neighbors g u (fun _ eid _ ->
                   if
                     !next < 0 && eid <> !cur
                     && (not (List.mem eid !chain))
                     && not (Hashtbl.mem failed_links eid)
                   then next := eid)
             in
             probe e.Graph.u;
             probe e.Graph.v;
             if !next < 0 then raise Exit;
             chain := !next :: !chain;
             cur := !next
           done
         with Exit -> ());
        List.iter (fun e -> Hashtbl.replace failed_links e ()) !chain;
        Some (Case.Fail { links = List.rev !chain; nodes = [] })
      end
    end
  in
  let event i =
    (* Open every schedule with churn so failures have a tree to break. *)
    let roll = if i < 2 then 0 else Rng.int rng 100 in
    if roll < 45 then join ()
    else if roll < 60 then
      match some_member () with
      | Some m ->
          Hashtbl.remove members m;
          Some (Case.Leave m)
      | None -> join ()
    else if roll < 74 then
      match fail_element () with
      | Some (links, nodes) -> Some (Case.Fail { links; nodes })
      | None -> join ()
    else if roll < 80 then begin
      (* Correlated double failure. *)
      match (fail_element (), fail_element ()) with
      | Some (l1, n1), Some (l2, n2) -> Some (Case.Fail { links = l1 @ l2; nodes = n1 @ n2 })
      | Some (links, nodes), None | None, Some (links, nodes) ->
          Some (Case.Fail { links; nodes })
      | None, None -> join ()
    end
    else if roll < 85 then begin
      match regional_ball () with Some ev -> Some ev | None -> join ()
    end
    else if roll < 90 then begin
      match chain () with Some ev -> Some ev | None -> join ()
    end
    else Some Case.Reshape
  in
  List.filter_map event (List.init len Fun.id)

let case ?(params = default) rng =
  let g = topology params rng in
  let n = Graph.node_count g in
  let edges = edges_of_graph g in
  let source = Rng.int rng n in
  let protocol =
    match Rng.int rng 10 with
    | 0 | 1 -> Case.Spf
    | 2 | 3 -> Case.Smrp_query
    | _ -> Case.Smrp
  in
  let d_thresh = Rng.pick rng [| 0.0; 0.1; 0.3; 0.3; 0.5 |] in
  let events = schedule params rng g ~source in
  { Case.n; edges; source; protocol; d_thresh; events }
