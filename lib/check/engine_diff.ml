module Graph = Smrp_graph.Graph
module Tree = Smrp_core.Tree
module Smrp = Smrp_core.Smrp
module Engine = Smrp_sim.Engine
module Net = Smrp_sim.Net
module Protocol = Smrp_sim.Protocol

type outcome = { applied : int; skipped : int; mismatch : string option }

(* One schedule slot per case event; the tail gives hellos, refreshes,
   Condition-II sweeps and any recovery time to play out after the last
   injected event. *)
let event_spacing = 0.75

let settle_tail = 25.0

let reshape_period = 6.0

let config_of (case : Case.t) =
  let strategy, join_mode =
    match case.Case.protocol with
    | Case.Spf -> (Protocol.Global, Protocol.Oracle)
    | Case.Smrp -> (Protocol.Local, Protocol.Oracle)
    | Case.Smrp_query -> (Protocol.Local, Protocol.Query_scheme)
  in
  {
    Protocol.default_config with
    Protocol.strategy;
    join_mode;
    d_thresh = case.Case.d_thresh;
    reshape_period = Some reshape_period;
  }

let float_field = function None -> "-" | Some f -> Printf.sprintf "%h" f

(* Replay the case's event schedule as a packet-level simulation on one
   engine implementation and render everything observable about the run —
   engine accounting, per-type frame counts, and the member reports — to a
   canonical byte string.  The guards mirror Exec's skip discipline against
   harness-local state only, so both replays make identical decisions by
   construction and any divergence indicts the event queue. *)
let digest impl (case : Case.t) =
  let g = Case.graph case in
  let engine = Engine.create ~impl () in
  let p = Protocol.create ~config:(config_of case) engine g ~source:case.Case.source in
  let member = Array.make case.Case.n false in
  let failed = ref false in
  let applied = ref 0 in
  let skipped = ref 0 in
  let at i f =
    ignore
      (Engine.schedule_at engine
         ~time:(1.0 +. (event_spacing *. float_of_int i))
         (fun () -> if f () then incr applied else incr skipped))
  in
  Protocol.start p;
  List.iteri
    (fun i ev ->
      match ev with
      | Case.Join m ->
          (* Joins fire only while the network is healthy: the protocol's
             path selection is failure-unaware (§3.2.2 assumes topology
             knowledge, not failure knowledge), so a join injected after
             the failure would attach across the dead link — a scenario
             outside the paper's join→fail→recover experiment shape and
             one that both engines would mangle identically anyway. *)
          at i (fun () ->
              if
                (not !failed)
                && m <> case.Case.source
                && (not member.(m))
                && Smrp.spf_distance (Protocol.tree p) m <> None
              then begin
                Protocol.join p m;
                member.(m) <- true;
                true
              end
              else false)
      | Case.Leave m ->
          at i (fun () ->
              if member.(m) then begin
                Protocol.leave p m;
                member.(m) <- false;
                true
              end
              else false)
      | Case.Fail { links; nodes = _ } ->
          (* The protocol stack models one persistent link failure per run;
             node failures and further links are skipped, as Exec skips
             events the target cannot express. *)
          at i (fun () ->
              match links with
              | l :: _ when not !failed ->
                  failed := true;
                  Protocol.inject_link_failure p l;
                  true
              | _ -> false)
      | Case.Reshape ->
          (* Condition-II sweeps run on the periodic timer armed above. *)
          at i (fun () -> false))
    case.Case.events;
  let horizon =
    1.0 +. (event_spacing *. float_of_int (List.length case.Case.events)) +. settle_tail
  in
  Engine.run ~until:horizon engine;
  let buf = Buffer.create 512 in
  Printf.bprintf buf "engine.fingerprint=%x\n" (Engine.fingerprint engine);
  Printf.bprintf buf "engine.events_fired=%d\n" (Engine.events_fired engine);
  Printf.bprintf buf "engine.pending=%d\n" (Engine.pending engine);
  List.iter (fun (k, v) -> Printf.bprintf buf "net.%s=%d\n" k v) (Net.counters (Protocol.net p));
  List.iter
    (fun (k, v) -> Printf.bprintf buf "proto.sent.%s=%d\n" k v)
    (Protocol.message_breakdown p);
  List.iter
    (fun (r : Protocol.member_report) ->
      Printf.bprintf buf "report member=%d detected=%s restored=%s data_received=%d\n"
        r.Protocol.member (float_field r.Protocol.detected) (float_field r.Protocol.restored)
        r.Protocol.data_received)
    (Protocol.reports p);
  (!applied, !skipped, Buffer.contents buf)

let first_diff wheel reference =
  let rec go = function
    | a :: tl, b :: tl' -> if String.equal a b then go (tl, tl') else Some (a, b)
    | a :: _, [] -> Some (a, "<missing>")
    | [], b :: _ -> Some ("<missing>", b)
    | [], [] -> None
  in
  go (String.split_on_char '\n' wheel, String.split_on_char '\n' reference)

let check (case : Case.t) =
  let applied, skipped, wheel = digest Engine.Wheel case in
  let _, _, reference = digest Engine.Reference case in
  if String.equal wheel reference then { applied; skipped; mismatch = None }
  else
    let mismatch =
      match first_diff wheel reference with
      | Some (w, r) ->
          Some (Printf.sprintf "timer-wheel run reports %S, reference-heap run reports %S" w r)
      | None -> Some "digests differ" (* unreachable: unequal strings diverge somewhere *)
    in
    { applied; skipped; mismatch }
