(** Seeded random case generation.

    Topologies mix the paper's two families — flat Waxman graphs and small
    GT-ITM-style transit–stub hierarchies — and event schedules mix join and
    leave churn, single and correlated link/node failures, regional outages
    (a hop-radius node ball), cascading-style chains of adjacent links, and
    Condition-II reshape timer fires.  All failure shapes reduce to the one
    [Fail {links; nodes}] case event, so the repro JSON format is
    unchanged.  The schedule is drawn against a lightweight
    membership model so most events are applicable; the executor skips the
    rest.  Everything is a pure function of the supplied {!Smrp_rng.Rng.t},
    so one root seed reproduces a whole campaign. *)

type params = {
  min_nodes : int;  (** Waxman node-count floor (default 8). *)
  max_nodes : int;  (** Waxman node-count ceiling (default 36). *)
  max_events : int;  (** Schedule length ceiling (default 24). *)
  transit_stub_share : float;
      (** Probability of drawing a transit–stub topology instead of a flat
          Waxman one (default 0.25). *)
}

val default : params

val case : ?params:params -> Smrp_rng.Rng.t -> Case.t
