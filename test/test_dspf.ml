module Rng = Smrp_rng.Rng
module Graph = Smrp_graph.Graph
module Dijkstra = Smrp_graph.Dijkstra
module Dspf = Smrp_graph.Dspf
module Waxman = Smrp_topology.Waxman
module Transit_stub = Smrp_topology.Transit_stub

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* Exact-equality differential: after every mutation the incremental
   structure must agree with a fresh [run_reference] over the surviving
   elements — bit-identical distances, no epsilon. *)
let agree_with_reference t =
  let g = Dspf.graph t in
  let src = Dspf.source t in
  if Dspf.node_failed t src then begin
    for v = 0 to Graph.node_count g - 1 do
      if Dspf.distance t v <> None then
        Alcotest.failf "node %d reachable under a dead source" v
    done
  end
  else begin
    let r =
      Dijkstra.run_reference
        ~node_ok:(fun v -> not (Dspf.node_failed t v))
        ~edge_ok:(fun eid -> not (Dspf.edge_failed t eid))
        g ~source:src
    in
    for v = 0 to Graph.node_count g - 1 do
      match (Dspf.distance t v, Dijkstra.distance r v) with
      | None, None -> ()
      | Some a, Some b when a = b -> ()
      | a, b ->
          let s = function None -> "unreachable" | Some d -> Printf.sprintf "%.17g" d in
          Alcotest.failf "node %d: dspf=%s reference=%s" v (s a) (s b)
    done
  end;
  (* Tree pointers must certify the distances they claim. *)
  check "verify" true (Dspf.verify t)

(* -- Hand-pinned cases -------------------------------------------------- *)

let path_graph delays =
  let n = Array.length delays + 1 in
  let g = Graph.create n in
  Array.iteri (fun i d -> ignore (Graph.add_edge g i (i + 1) d)) delays;
  g

let pinned_chain () =
  (* 0 -1- 1 -1- 2 -1- 3, plus a long bypass 0 -5- 3. *)
  let g = path_graph [| 1.0; 1.0; 1.0 |] in
  let bypass = Graph.add_edge g 0 3 5.0 in
  let t = Dspf.create g ~source:0 in
  agree_with_reference t;
  check "d3" true (Dspf.distance t 3 = Some 3.0);
  (* Cutting 1-2 re-routes 2 and 3 over the bypass. *)
  Dspf.fail_edge t 1;
  agree_with_reference t;
  check "d3 via bypass" true (Dspf.distance t 3 = Some 5.0);
  check "d2 via bypass" true (Dspf.distance t 2 = Some 6.0);
  (* Cutting the bypass too disconnects the tail. *)
  Dspf.fail_edge t bypass;
  agree_with_reference t;
  check "2 unreachable" true (Dspf.distance t 2 = None);
  check "3 unreachable" true (Dspf.distance t 3 = None);
  (* Restoration heals exactly. *)
  Dspf.restore_edge t 1;
  agree_with_reference t;
  check "d3 healed" true (Dspf.distance t 3 = Some 3.0)

let pinned_source_subtree_disconnect () =
  (* The failure severs the source's only outgoing tree edge: the whole
     tree below the source is the affected subtree. *)
  let g = path_graph [| 1.0; 1.0; 1.0; 1.0 |] in
  let t = Dspf.create g ~source:0 in
  Dspf.fail_edge t 0;
  agree_with_reference t;
  for v = 1 to 4 do
    check "cut off" true (Dspf.distance t v = None)
  done;
  check "source still zero" true (Dspf.distance t 0 = Some 0.0);
  Dspf.restore_edge t 0;
  agree_with_reference t;
  check "healed" true (Dspf.distance t 4 = Some 4.0)

let pinned_source_failure () =
  let g = path_graph [| 1.0; 2.0 |] in
  let t = Dspf.create g ~source:0 in
  Dspf.fail_node t 0;
  agree_with_reference t;
  check "source dead" true (Dspf.distance t 0 = None);
  Dspf.restore_node t 0;
  agree_with_reference t;
  check "rebuilt" true (Dspf.distance t 2 = Some 3.0)

let pinned_interior_node_failure () =
  (* Star-with-ring: killing the hub forces ring detours. *)
  let g = Graph.create 5 in
  ignore (Graph.add_edge g 0 1 1.0);
  ignore (Graph.add_edge g 1 2 1.0);
  ignore (Graph.add_edge g 1 3 1.0);
  ignore (Graph.add_edge g 2 4 1.0);
  ignore (Graph.add_edge g 3 4 1.0);
  ignore (Graph.add_edge g 0 2 10.0);
  let t = Dspf.create g ~source:0 in
  agree_with_reference t;
  Dspf.fail_node t 1;
  agree_with_reference t;
  check "2 via long arc" true (Dspf.distance t 2 = Some 10.0);
  check "4 via long arc" true (Dspf.distance t 4 = Some 11.0);
  Dspf.restore_node t 1;
  agree_with_reference t;
  check "2 healed" true (Dspf.distance t 2 = Some 2.0)

let pinned_repeated_fail_restore () =
  (* Hammer the same tree edge: state must be idempotent and exact over
     many cycles, including double-fail / double-restore no-ops. *)
  let g = path_graph [| 1.0; 1.0; 1.0 |] in
  ignore (Graph.add_edge g 0 3 9.0);
  let t = Dspf.create g ~source:0 in
  for _ = 1 to 20 do
    Dspf.fail_edge t 1;
    Dspf.fail_edge t 1;
    agree_with_reference t;
    Dspf.restore_edge t 1;
    Dspf.restore_edge t 1;
    agree_with_reference t
  done;
  check "back to base" true (Dspf.distance t 3 = Some 3.0)

let pinned_set_delay () =
  (* [run_reference] reads the graph's own delays, so overlay-delay cases
     are pinned on exact distances plus the from-scratch [verify]. *)
  let g = path_graph [| 1.0; 1.0 |] in
  let alt = Graph.add_edge g 0 2 3.0 in
  let t = Dspf.create g ~source:0 in
  check "base" true (Dspf.distance t 2 = Some 2.0);
  (* Increase on a tree edge: downstream subtree re-routes. *)
  Dspf.set_delay t 1 10.0;
  check "verify after increase" true (Dspf.verify t);
  check "rerouted" true (Dspf.distance t 2 = Some 3.0);
  (* Decrease below the alternative: grow-cascade takes it back. *)
  Dspf.set_delay t 1 0.5;
  check "verify after decrease" true (Dspf.verify t);
  check "back" true (Dspf.distance t 2 = Some 1.5);
  (* Delay change on a dead edge applies at restoration. *)
  Dspf.fail_edge t alt;
  Dspf.set_delay t alt 0.25;
  check "verify on dead edge" true (Dspf.verify t);
  Dspf.restore_edge t alt;
  check "verify after restore" true (Dspf.verify t);
  check "restored with new delay" true (Dspf.distance t 2 = Some 0.25);
  Alcotest.check_raises "positive delay required"
    (Invalid_argument "Dspf.set_delay: delay must be positive") (fun () ->
      Dspf.set_delay t 0 0.0)

let pinned_locality () =
  (* A leaf-edge failure must not touch the rest of the tree. *)
  let g = path_graph [| 1.0; 1.0; 1.0; 1.0; 1.0 |] in
  let t = Dspf.create g ~source:0 in
  let before = (Dspf.stats t).Dspf.touched in
  Dspf.fail_edge t 4;
  let after = (Dspf.stats t).Dspf.touched in
  agree_with_reference t;
  check_int "only the leaf touched" 1 (after - before)

(* -- Randomized mutation-sequence differential --------------------------- *)

type mutation = Fail_edge | Restore_edge | Fail_node | Restore_node | Set_delay

let fail_restore_mutations = [| Fail_edge; Restore_edge; Fail_node; Restore_node |]
let all_mutations = [| Fail_edge; Restore_edge; Fail_node; Restore_node; Set_delay |]

let apply_mutation rng t ~source mu =
  let g = Dspf.graph t in
  let m = Graph.edge_count g in
  let n = Graph.node_count g in
  match mu with
  | Fail_edge -> Dspf.fail_edge t (Rng.int rng m)
  | Restore_edge -> Dspf.restore_edge t (Rng.int rng m)
  | Fail_node ->
      (* Keep the source alive in most steps so the tree stays
         interesting; kill it outright now and then. *)
      let v = Rng.int rng n in
      Dspf.fail_node t (if v = source && Rng.int rng 4 <> 0 then (v + 1) mod n else v)
  | Restore_node -> Dspf.restore_node t (Rng.int rng n)
  | Set_delay ->
      let eid = Rng.int rng m in
      Dspf.set_delay t eid (0.05 +. Rng.float rng 5.0)

(* Apply [steps] random fail/restore mutations, checking exact agreement
   with [run_reference] after every single one.  Returns the number of
   mutations performed (no-ops on already-dead/live elements still count
   as checks).  [set_delay] is excluded here — the reference reads the
   graph's own delays, not the overlay — and exercised by
   {!delay_overlay_run} against the from-scratch recompute instead. *)
let differential_run rng g ~source ~steps =
  let t = Dspf.create g ~source in
  agree_with_reference t;
  for _ = 1 to steps do
    apply_mutation rng t ~source (Rng.pick rng fail_restore_mutations);
    agree_with_reference t
  done;
  steps

(* Mixed run including delay overrides, validated after every mutation by
   [Dspf.verify] — a from-scratch Dijkstra over the same overlay. *)
let delay_overlay_run rng g ~source ~steps =
  let t = Dspf.create g ~source in
  check "verify initial" true (Dspf.verify t);
  for _ = 1 to steps do
    apply_mutation rng t ~source (Rng.pick rng all_mutations);
    if not (Dspf.verify t) then Alcotest.fail "dspf diverged from recompute"
  done;
  steps

let random_waxman_differential () =
  let rng = Rng.create 20250809 in
  let total = ref 0 in
  for case = 1 to 4 do
    let topo_rng = Rng.split rng in
    let mut_rng = Rng.split rng in
    let w = Waxman.generate topo_rng ~n:(40 + (10 * case)) ~alpha:0.2 ~beta:0.25 in
    total := !total + differential_run mut_rng w.Waxman.graph ~source:0 ~steps:160
  done;
  check "≥640 waxman mutations" true (!total >= 640)

let random_transit_stub_differential () =
  let rng = Rng.create 77031 in
  let total = ref 0 in
  for _ = 1 to 3 do
    let topo_rng = Rng.split rng in
    let mut_rng = Rng.split rng in
    let ts = Transit_stub.generate topo_rng Transit_stub.default_params in
    total := !total + differential_run mut_rng ts.Transit_stub.graph ~source:0 ~steps:160
  done;
  check "≥480 transit-stub mutations" true (!total >= 480)

let random_delay_overlay_differential () =
  let rng = Rng.create 5150 in
  let total = ref 0 in
  for _ = 1 to 2 do
    let topo_rng = Rng.split rng in
    let mut_rng = Rng.split rng in
    let w = Waxman.generate topo_rng ~n:45 ~alpha:0.2 ~beta:0.25 in
    total := !total + delay_overlay_run mut_rng w.Waxman.graph ~source:0 ~steps:120
  done;
  check "≥240 overlay mutations" true (!total >= 240)

let stats_count_ops () =
  let g = path_graph [| 1.0; 1.0 |] in
  let t = Dspf.create g ~source:0 in
  Dspf.fail_edge t 0;
  Dspf.fail_edge t 0 (* no-op *);
  Dspf.restore_edge t 0;
  let s = Dspf.stats t in
  check_int "ops" 2 s.Dspf.ops;
  check "touched bounded" true (s.Dspf.touched <= 3 * Graph.node_count g)

let create_rejects_bad_source () =
  let g = Graph.create 3 in
  Alcotest.check_raises "out of range"
    (Invalid_argument "Dspf.create: source out of range") (fun () ->
      ignore (Dspf.create g ~source:3))

let () =
  Alcotest.run "dspf"
    [
      ( "pinned",
        [
          Alcotest.test_case "chain fail/restore" `Quick pinned_chain;
          Alcotest.test_case "source subtree disconnect" `Quick pinned_source_subtree_disconnect;
          Alcotest.test_case "source failure" `Quick pinned_source_failure;
          Alcotest.test_case "interior node failure" `Quick pinned_interior_node_failure;
          Alcotest.test_case "repeated fail/restore same edge" `Quick pinned_repeated_fail_restore;
          Alcotest.test_case "set_delay" `Quick pinned_set_delay;
          Alcotest.test_case "leaf failure locality" `Quick pinned_locality;
        ] );
      ( "differential",
        [
          Alcotest.test_case "waxman ≥640 mutations" `Quick random_waxman_differential;
          Alcotest.test_case "transit-stub ≥480 mutations" `Quick random_transit_stub_differential;
          Alcotest.test_case "delay overlay ≥240 mutations" `Quick random_delay_overlay_differential;
        ] );
      ( "api",
        [
          Alcotest.test_case "stats count ops" `Quick stats_count_ops;
          Alcotest.test_case "create rejects bad source" `Quick create_rejects_bad_source;
        ] );
    ]
